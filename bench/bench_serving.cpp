// bench_serving — batched serving throughput of the deployed TBNet engine.
//
// Sweeps the inference batch size over the ResNet-style zoo model and emits
// one JSON document with throughput (imgs/s), per-batch latency percentiles
// (p50/p95/p99 from LatencyRecorder), and world-switch counts, plus an
// InferenceServer section exercising request coalescing with concurrent
// submitters. The engine under test is the deployed steady state: BN folded
// into conv weights, conv/dense+activation fused into GEMM epilogues, and
// weights pre-packed into microkernel panels at construction.
//
// Timing model: compute runs at host speed; the REE<->TEE world-switch and
// shared-memory transfer latencies of the paper's testbed (DeviceProfile
// rpi3, 50us/switch, 1GB/s channel) are injected into every TA invocation by
// TeeSession::simulate_timing. That is the overhead axis batching amortizes:
// a batch of N crosses the world O(stages) times instead of O(N * stages).
// Pass --no-device-timing for raw host numbers (pure simulator cost).
//
// The sweep runs single-threaded (TBNET_THREADS=1 unless the caller already
// pinned it) so the batch-16 vs batch-1 ratio isolates batching itself.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "models/model_zoo.h"
#include "runtime/deployed.h"
#include "runtime/measurements.h"
#include "runtime/server.h"
#include "tee/device_profile.h"
#include "tee/optee_api.h"
#include "tensor/rng.h"
#include "tensor/threadpool.h"

namespace {

using namespace tbnet;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct SweepPoint {
  int64_t batch = 0;
  int64_t images = 0;
  int64_t batches = 0;
  double imgs_per_s = 0.0;
  double batch_p50_ms = 0.0;
  double batch_p95_ms = 0.0;
  double batch_p99_ms = 0.0;
  double switches_per_image = 0.0;
  double overhead_ms_per_image = 0.0;  ///< injected switch/transfer stall
};

SweepPoint run_sweep_point(runtime::DeployedTBNet& engine, int64_t batch,
                           int64_t target_images, Rng& rng) {
  const Tensor input = Tensor::randn(Shape{batch, 3, 32, 32}, rng);
  engine.infer_batch(input);  // warmup: arena growth, TA state, page faults

  SweepPoint p;
  p.batch = batch;
  const int64_t switches_before = engine.world_switches();
  const double overhead_before = engine.session().simulated_overhead_s();
  runtime::LatencyRecorder rec;
  const auto t0 = Clock::now();
  while (p.images < target_images) {
    const auto b0 = Clock::now();
    engine.infer_batch(input);
    rec.record(seconds_since(b0));
    p.images += batch;
    ++p.batches;
  }
  const double total_s = seconds_since(t0);
  p.imgs_per_s = static_cast<double>(p.images) / total_s;
  p.batch_p50_ms = rec.percentile(50.0) * 1e3;
  p.batch_p95_ms = rec.percentile(95.0) * 1e3;
  p.batch_p99_ms = rec.percentile(99.0) * 1e3;
  p.switches_per_image =
      static_cast<double>(engine.world_switches() - switches_before) /
      static_cast<double>(p.images);
  p.overhead_ms_per_image =
      (engine.session().simulated_overhead_s() - overhead_before) * 1e3 /
      static_cast<double>(p.images);
  return p;
}

// ---- overload soak (PR 7) -------------------------------------------------
// Open-loop load generation: a submitter fires at a fixed offered rate
// regardless of completions (unlike the closed-loop sections above, where
// waiting submitters implicitly throttle to the service rate). That is the
// regime where an unbounded queue diverges — latency grows with soak length
// — and where the bounded queue + shedding + deadlines must keep goodput
// and accepted-latency flat. Goodput divides Ok answers by the full wall
// time including drain, so an unbounded backlog pays for itself honestly.

struct SoakConfig {
  double offered_imgs_per_s = 0.0;
  double seconds = 0.0;
  bool bounded = true;
  double fault_rate = 0.0;
};

struct SoakPoint {
  double offered_x = 0.0;  ///< offered load as a multiple of 1x capacity
  double offered_imgs_per_s = 0.0;
  double soak_seconds = 0.0;
  int64_t submitted = 0;
  int64_t ok = 0;
  int64_t rejected = 0;
  int64_t shed = 0;
  int64_t expired = 0;
  int64_t engine_errors = 0;
  int64_t retries = 0;
  int64_t faults_injected = 0;
  double goodput_imgs_per_s = 0.0;
  double accepted_p50_ms = 0.0;  ///< total_s of Ok requests only
  double accepted_p99_ms = 0.0;
  double batch_p99_ms = 0.0;
};

SoakPoint run_soak(runtime::DeployedTBNet& engine, tee::TeeContext& ctx,
                   const SoakConfig& sc) {
  runtime::InferenceServer::Config scfg;
  scfg.max_batch = 16;
  scfg.max_queue_delay = std::chrono::microseconds(2000);
  if (sc.bounded) {
    scfg.queue_capacity = 64;
    scfg.admission = runtime::AdmissionPolicy::kShedOldest;
    scfg.default_deadline = std::chrono::milliseconds(100);
  }
  const int64_t retries_before = engine.retries();
  const int64_t faults_before = ctx.faults().faults_injected();
  ctx.faults().set_rate(sc.fault_rate);

  SoakPoint p;
  p.offered_imgs_per_s = sc.offered_imgs_per_s;
  p.soak_seconds = sc.seconds;
  runtime::LatencyRecorder accepted;
  runtime::ServingStats stats;
  double wall_s = 0.0;
  {
    runtime::InferenceServer server(
        [&engine](const Tensor& nchw) { return engine.infer_batch(nchw); },
        scfg);
    Rng srng(31);
    std::vector<Tensor> pool;
    for (int i = 0; i < 32; ++i) {
      pool.push_back(Tensor::randn(Shape{3, 32, 32}, srng));
    }
    std::vector<std::future<runtime::InferenceResult>> futures;
    const auto interval =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::duration<double>(1.0 / sc.offered_imgs_per_s));
    const auto t0 = Clock::now();
    const auto end_at =
        t0 + std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::duration<double>(sc.seconds));
    auto next = t0;
    while (Clock::now() < end_at) {
      futures.push_back(server.submit(pool[futures.size() % pool.size()]));
      next += interval;
      std::this_thread::sleep_until(next);
    }
    server.drain();
    stats = server.stats();
    p.submitted = static_cast<int64_t>(futures.size());
    for (auto& f : futures) {
      runtime::InferenceResult r = f.get();
      if (r.ok()) {
        ++p.ok;
        accepted.record(r.total_s);
      }
    }
    wall_s = seconds_since(t0);
  }
  ctx.faults().set_rate(0.0);

  p.rejected = stats.rejected;
  p.shed = stats.shed;
  p.expired = stats.expired;
  p.engine_errors = stats.engine_errors;
  p.retries = engine.retries() - retries_before;
  p.faults_injected = ctx.faults().faults_injected() - faults_before;
  p.goodput_imgs_per_s =
      wall_s > 0.0 ? static_cast<double>(p.ok) / wall_s : 0.0;
  p.accepted_p50_ms = accepted.percentile(50.0) * 1e3;
  p.accepted_p99_ms = accepted.percentile(99.0) * 1e3;
  p.batch_p99_ms = stats.batch_latency.percentile(99.0) * 1e3;
  return p;
}

// ---- chaos soak (PR 8) ----------------------------------------------------
// Supervision under a real kill: two workers with independent engines serve
// an open-loop 2x load; halfway through, one worker's TEE permanently
// faults (every boundary crossing raises PermanentFault), tripping its
// circuit breaker. The supervisor retries DeployedTBNet::reopen under
// backoff — failing while the fault persists — until the "operator fixes
// the device" at 70% of the soak, after which recovery re-admits the
// worker. The gate (tools/check_bench_regression.py): goodput after
// recovery within 5% of pre-kill goodput, and zero unresolved futures.

struct ChaosPoint {
  double soak_seconds = 0.0;
  double offered_imgs_per_s = 0.0;
  int64_t submitted = 0;
  int64_t ok = 0;
  int64_t unresolved = 0;  ///< futures not ready after drain — must be 0
  double kill_at_s = 0.0;
  double heal_at_s = 0.0;
  double recovery_time_s = -1.0;  ///< kill -> worker re-admitted (-1: never)
  double goodput_pre_kill = 0.0;
  double goodput_during_quarantine = 0.0;
  double goodput_after_recovery = 0.0;
  runtime::ServingStats stats;
};

ChaosPoint run_chaos(const core::TwoBranchModel& tb,
                     const tee::DeviceProfile& profile, bool device_timing,
                     double offered_imgs_per_s, double seconds) {
  // Independent worlds/engines per worker, like the worker sweep: killing
  // worker 1's TEE must not perturb worker 0.
  std::vector<std::unique_ptr<tee::SecureWorld>> worlds;
  std::vector<std::unique_ptr<tee::TeeContext>> tee_ctxs;
  std::vector<std::unique_ptr<runtime::DeployedTBNet>> engines;
  std::vector<runtime::InferenceServer::BatchFn> fns;
  std::vector<runtime::InferenceServer::RecoverFn> recover;
  Rng crng(41);
  const Tensor canary = Tensor::randn(Shape{1, 3, 32, 32}, crng);
  for (int w = 0; w < 2; ++w) {
    worlds.push_back(
        std::make_unique<tee::SecureWorld>(profile.secure_mem_budget));
    tee_ctxs.push_back(std::make_unique<tee::TeeContext>(*worlds.back()));
    engines.push_back(std::make_unique<runtime::DeployedTBNet>(
        tb, *tee_ctxs.back(), "tbnet-chaos-" + std::to_string(w),
        runtime::DeployedTBNet::Options{.max_batch = 64}));
    if (device_timing) engines.back()->session().simulate_timing(profile);
    engines.back()->infer_batch(Tensor::randn(Shape{4, 3, 32, 32}, crng));
    runtime::DeployedTBNet* eng = engines.back().get();
    fns.push_back([eng](const Tensor& nchw) { return eng->infer_batch(nchw); });
    // Recovery = full session re-establishment: tear down, re-deploy the TA
    // image (re-verifying its checksums), reopen, canary-infer. Throws while
    // the injected permanent fault persists — the supervisor backs off.
    recover.push_back([eng, canary] { eng->reopen(canary); });
  }

  runtime::InferenceServer::Config scfg;
  scfg.max_batch = 16;
  scfg.max_queue_delay = std::chrono::microseconds(2000);
  scfg.queue_capacity = 64;
  scfg.admission = runtime::AdmissionPolicy::kShedOldest;
  scfg.default_deadline = std::chrono::milliseconds(100);
  scfg.breaker_threshold = 1;
  scfg.recovery_backoff = std::chrono::milliseconds(2);
  scfg.recovery_max_backoff = std::chrono::milliseconds(50);

  ChaosPoint p;
  p.soak_seconds = seconds;
  p.offered_imgs_per_s = offered_imgs_per_s;
  p.kill_at_s = seconds * 0.5;
  p.heal_at_s = seconds * 0.7;
  {
    runtime::InferenceServer server(std::move(fns), std::move(recover), scfg);
    Rng srng(43);
    std::vector<Tensor> pool;
    for (int i = 0; i < 32; ++i) {
      pool.push_back(Tensor::randn(Shape{3, 32, 32}, srng));
    }
    std::vector<std::future<runtime::InferenceResult>> futures;
    std::vector<double> submit_s;
    const auto interval = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::duration<double>(1.0 / offered_imgs_per_s));
    const auto t0 = Clock::now();
    auto next = t0;
    bool killed = false, healed = false;
    double recovered_at = -1.0;
    while (true) {
      const double now_s = seconds_since(t0);
      if (now_s >= seconds) break;
      if (!killed && now_s >= p.kill_at_s) {
        // Permanent session loss on worker 1: every TEE boundary crossing
        // (open/invoke) now raises PermanentFault, including the reopens
        // the supervisor attempts.
        tee_ctxs[1]->faults().set_rate(1.0, /*permanent_fraction=*/1.0);
        killed = true;
      }
      if (killed && !healed && now_s >= p.heal_at_s) {
        tee_ctxs[1]->faults().set_rate(0.0);
        healed = true;
      }
      if (killed && recovered_at < 0.0 && server.stats().recoveries >= 1) {
        recovered_at = now_s;
      }
      submit_s.push_back(now_s);
      futures.push_back(server.submit(pool[futures.size() % pool.size()]));
      next += interval;
      std::this_thread::sleep_until(next);
    }
    if (!healed) {
      tee_ctxs[1]->faults().set_rate(0.0);
      healed = true;
    }
    // The worker may still be mid-backoff when submission ends; wait for the
    // recovery (bounded) so recovery_time_s and the after-window are real.
    const auto recovery_deadline = Clock::now() + std::chrono::seconds(10);
    while (recovered_at < 0.0 && Clock::now() < recovery_deadline) {
      if (server.stats().recoveries >= 1) {
        recovered_at = seconds_since(t0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    server.drain();
    p.stats = server.stats();
    p.submitted = static_cast<int64_t>(futures.size());
    if (recovered_at >= 0.0) p.recovery_time_s = recovered_at - p.kill_at_s;

    // Classify Ok completions (completion time = submit + total) into the
    // three windows; each goodput is ok-in-window over window length. The
    // tail after submission stopped is excluded from every window.
    const double t_end = seconds;
    const double t_rec = recovered_at >= 0.0 ? recovered_at : t_end;
    int64_t ok_pre = 0, ok_during = 0, ok_after = 0;
    for (size_t i = 0; i < futures.size(); ++i) {
      if (futures[i].wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        ++p.unresolved;  // drain() returned with a pending future: a bug
        continue;
      }
      const runtime::InferenceResult r = futures[i].get();
      if (!r.ok()) continue;
      ++p.ok;
      const double done_s = submit_s[i] + r.total_s;
      if (done_s < p.kill_at_s) {
        ++ok_pre;
      } else if (done_s < t_rec) {
        ++ok_during;
      } else if (done_s <= t_end) {
        ++ok_after;
      }
    }
    p.goodput_pre_kill = static_cast<double>(ok_pre) / p.kill_at_s;
    if (t_rec > p.kill_at_s) {
      p.goodput_during_quarantine =
          static_cast<double>(ok_during) / (t_rec - p.kill_at_s);
    }
    if (t_end > t_rec) {
      p.goodput_after_recovery =
          static_cast<double>(ok_after) / (t_end - t_rec);
    }
  }
  return p;
}

// ---- elastic soak (PR 10) -------------------------------------------------
// Worker autoscaling under a stepped load: 1x -> 10x -> 1x offered load,
// each for a third of the soak. The fixed single-worker pool is the
// baseline the PR-7 soak gates; the elastic server (min 1 / max 4 workers,
// same bounded queue) must match or beat its goodput while shedding
// strictly less — the spare slots absorb the 10x step, and the 1x thirds
// give the scale-down path room to park workers again without stranding
// any in-flight future.

struct ElasticLeg {
  int64_t submitted = 0;
  int64_t ok = 0;
  int64_t unresolved = 0;  ///< futures not ready after drain (must be 0)
  double goodput_imgs_per_s = 0.0;
  double shed_rate = 0.0;  ///< (submitted - ok) / submitted: all drop causes
  runtime::ServingStats stats;
};

/// Open-loop stepped load (1x / 10x / 1x, phase_s each) against `server`.
ElasticLeg drive_stepped_load(runtime::InferenceServer& server,
                              double capacity, double phase_s) {
  ElasticLeg leg;
  Rng srng(47);
  std::vector<Tensor> pool;
  for (int i = 0; i < 32; ++i) {
    pool.push_back(Tensor::randn(Shape{3, 32, 32}, srng));
  }
  std::vector<std::future<runtime::InferenceResult>> futures;
  const double steps[3] = {1.0, 10.0, 1.0};
  const auto t0 = Clock::now();
  for (int phase = 0; phase < 3; ++phase) {
    const auto interval =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::duration<double>(1.0 / (capacity * steps[phase])));
    const auto end_at =
        t0 + std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::duration<double>(phase_s *
                                               static_cast<double>(phase + 1)));
    auto next = Clock::now();
    while (Clock::now() < end_at) {
      futures.push_back(server.submit(pool[futures.size() % pool.size()]));
      next += interval;
      std::this_thread::sleep_until(next);
    }
  }
  server.drain();
  leg.stats = server.stats();
  leg.submitted = static_cast<int64_t>(futures.size());
  for (auto& f : futures) {
    if (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      ++leg.unresolved;  // drain() returned with this future dangling
      continue;
    }
    if (f.get().ok()) ++leg.ok;
  }
  const double wall_s = seconds_since(t0);
  leg.goodput_imgs_per_s =
      wall_s > 0.0 ? static_cast<double>(leg.ok) / wall_s : 0.0;
  leg.shed_rate =
      leg.submitted > 0
          ? static_cast<double>(leg.submitted - leg.ok) /
                static_cast<double>(leg.submitted)
          : 0.0;
  return leg;
}

struct ElasticPoint {
  double soak_seconds = 0.0;
  ElasticLeg fixed;
  ElasticLeg elastic;
};

ElasticPoint run_elastic(const core::TwoBranchModel& tb,
                         const tee::DeviceProfile& profile,
                         bool device_timing, double capacity,
                         double seconds) {
  runtime::InferenceServer::Config scfg;
  scfg.max_batch = 16;
  scfg.max_queue_delay = std::chrono::microseconds(2000);
  scfg.queue_capacity = 64;
  scfg.admission = runtime::AdmissionPolicy::kShedOldest;
  scfg.default_deadline = std::chrono::milliseconds(100);

  ElasticPoint p;
  p.soak_seconds = seconds;
  const double phase_s = seconds / 3.0;

  // Both servers deploy their engines through the same factory shape, so
  // the fixed baseline pays the identical deploy path as every elastic
  // slot (own secure world, own TA session, own arena).
  struct Slots {
    std::mutex mu;
    std::vector<std::unique_ptr<tee::SecureWorld>> worlds;
    std::vector<std::unique_ptr<tee::TeeContext>> ctxs;
    std::vector<std::unique_ptr<runtime::DeployedTBNet>> engines;
  };
  const auto make_factory = [&tb, &profile, device_timing](Slots& slots) {
    return [&tb, &profile, device_timing, &slots](int worker) {
      // Invocations are serial by contract (construction thread, then the
      // supervisor); the lock just makes that independence obvious.
      std::lock_guard<std::mutex> lock(slots.mu);
      slots.worlds.push_back(
          std::make_unique<tee::SecureWorld>(profile.secure_mem_budget));
      slots.ctxs.push_back(
          std::make_unique<tee::TeeContext>(*slots.worlds.back()));
      slots.engines.push_back(std::make_unique<runtime::DeployedTBNet>(
          tb, *slots.ctxs.back(), "tbnet-elastic-" + std::to_string(worker),
          runtime::DeployedTBNet::Options{.max_batch = 64}));
      if (device_timing) {
        slots.engines.back()->session().simulate_timing(profile);
      }
      runtime::DeployedTBNet* eng = slots.engines.back().get();
      runtime::InferenceServer::BatchFn fn =
          [eng](const Tensor& nchw) { return eng->infer_batch(nchw); };
      return std::make_pair(std::move(fn),
                            runtime::InferenceServer::RecoverFn{});
    };
  };

  {
    Slots slots;  // outlives the server (declared first)
    runtime::InferenceServer::Config fixed_cfg = scfg;
    fixed_cfg.min_workers = 1;
    fixed_cfg.max_workers = 1;
    runtime::InferenceServer server(make_factory(slots), fixed_cfg);
    p.fixed = drive_stepped_load(server, capacity, phase_s);
  }
  {
    Slots slots;
    runtime::InferenceServer::Config elastic_cfg = scfg;
    elastic_cfg.min_workers = 1;
    elastic_cfg.max_workers = 4;
    elastic_cfg.autoscale_interval = std::chrono::milliseconds(20);
    elastic_cfg.autoscale_cooldown = std::chrono::milliseconds(150);
    runtime::InferenceServer server(make_factory(slots), elastic_cfg);
    p.elastic = drive_stepped_load(server, capacity, phase_s);
  }
  return p;
}

void print_soak_point(const SoakPoint& p, double goodput_1x,
                      const char* trailer) {
  std::printf(
      "      {\"offered_x\": %.2f, \"offered_imgs_per_s\": %.1f, "
      "\"soak_seconds\": %.2f, \"submitted\": %lld, \"ok\": %lld, "
      "\"rejected\": %lld, \"shed\": %lld, \"expired\": %lld, "
      "\"engine_errors\": %lld, \"retries\": %lld, "
      "\"faults_injected\": %lld, \"goodput_imgs_per_s\": %.2f, "
      "\"goodput_vs_1x\": %.3f, \"shed_rate\": %.3f, "
      "\"accepted_p50_ms\": %.3f, \"accepted_p99_ms\": %.3f, "
      "\"batch_p99_ms\": %.3f}%s\n",
      p.offered_x, p.offered_imgs_per_s, p.soak_seconds,
      static_cast<long long>(p.submitted), static_cast<long long>(p.ok),
      static_cast<long long>(p.rejected), static_cast<long long>(p.shed),
      static_cast<long long>(p.expired),
      static_cast<long long>(p.engine_errors),
      static_cast<long long>(p.retries),
      static_cast<long long>(p.faults_injected), p.goodput_imgs_per_s,
      goodput_1x > 0.0 ? p.goodput_imgs_per_s / goodput_1x : 0.0,
      p.submitted > 0
          ? static_cast<double>(p.shed + p.rejected + p.expired) /
                static_cast<double>(p.submitted)
          : 0.0,
      p.accepted_p50_ms, p.accepted_p99_ms, p.batch_p99_ms, trailer);
}

}  // namespace

int main(int argc, char** argv) {
  // Single-thread by default so the sweep isolates batching, not the pool.
  setenv("TBNET_THREADS", "1", /*overwrite=*/0);

  bool device_timing = true;
  bool chaos = false;
  double width = 0.125;
  int64_t target_images = 192;
  double soak_seconds = 2.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-device-timing") == 0) {
      device_timing = false;
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos = true;
    } else if (std::strncmp(argv[i], "--width=", 8) == 0) {
      width = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--images=", 9) == 0) {
      target_images = std::atoll(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--soak-seconds=", 15) == 0) {
      soak_seconds = std::atof(argv[i] + 15);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--no-device-timing] [--chaos] [--width=W] "
                   "[--images=N] [--soak-seconds=S]\n",
                   argv[0]);
      return 2;
    }
  }

  models::ModelConfig cfg;
  cfg.family = models::Family::kResNet;
  cfg.depth = 20;
  cfg.classes = 10;
  cfg.width_mult = width;
  cfg.seed = 17;

  const nn::Sequential victim = models::build_victim(cfg);
  const core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
  const tee::DeviceProfile profile = tee::DeviceProfile::rpi3();

  tee::SecureWorld world(profile.secure_mem_budget);
  tee::TeeContext ctx(world);
  runtime::DeployedTBNet engine(tb, ctx, "tbnet-serving",
                                runtime::DeployedTBNet::Options{.max_batch = 64});
  if (device_timing) engine.session().simulate_timing(profile);

  Rng rng(23);
  const std::vector<int64_t> batches = {1, 2, 4, 8, 16, 32};
  std::vector<SweepPoint> sweep;
  for (int64_t b : batches) {
    sweep.push_back(run_sweep_point(engine, b, target_images, rng));
  }

  double tput1 = 0.0, tput16 = 0.0;
  for (const SweepPoint& p : sweep) {
    if (p.batch == 1) tput1 = p.imgs_per_s;
    if (p.batch == 16) tput16 = p.imgs_per_s;
  }

  // Server section: concurrent single-image submitters riding coalesced
  // batches through the same engine.
  runtime::InferenceServer::Config scfg;
  scfg.max_batch = 16;
  scfg.max_queue_delay = std::chrono::microseconds(2000);
  runtime::ServingStats server_stats;
  {
    runtime::InferenceServer server(
        [&engine](const Tensor& nchw) { return engine.infer_batch(nchw); },
        scfg);
    const int64_t per_thread = 48;
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&server, per_thread, t] {
        Rng trng(100 + static_cast<uint64_t>(t));
        std::vector<std::future<runtime::InferenceResult>> futures;
        for (int64_t i = 0; i < per_thread; ++i) {
          futures.push_back(
              server.submit(Tensor::randn(Shape{3, 32, 32}, trng)));
        }
        for (auto& f : futures) f.get();
      });
    }
    for (auto& th : submitters) th.join();
    server.drain();
    server_stats = server.stats();
  }

  // Inter-op scaling: the same submit load against 1 vs 2 dispatch workers,
  // each worker owning a fully independent engine (own secure world, own
  // TA session, own ExecutionContext/arena). Intra-op threads stay at
  // TBNET_THREADS (1 by default here), so the workers ratio isolates
  // dispatch-level parallelism — ~1.0x on a 1-vCPU builder, > 1 on real
  // cores (the CI artifact records the hosted runner's number).
  struct WorkerPoint {
    int workers = 0;
    int intra_op_width = 0;
    double imgs_per_s = 0.0;
    runtime::ServingStats stats;
  };
  std::vector<WorkerPoint> worker_sweep;
  // PR 10 default fix: each worker's engine caps its intra-op shards at
  // pool_threads / nworkers, so N workers submit ~pool_threads chunks total
  // instead of N x pool_threads (a no-op at this bench's TBNET_THREADS=1;
  // the width_cap section below measures the effect on real cores).
  const int pool_threads = ThreadPool::global().num_threads();
  for (int nworkers : {1, 2}) {
    // Dedicated worlds/engines per run so each sweep point starts cold-free
    // (one warmup batch each) and nothing is shared across workers.
    std::vector<std::unique_ptr<tee::SecureWorld>> worlds;
    std::vector<std::unique_ptr<tee::TeeContext>> tee_ctxs;
    std::vector<std::unique_ptr<runtime::DeployedTBNet>> engines;
    std::vector<runtime::InferenceServer::BatchFn> fns;
    Rng wrng(29);
    for (int w = 0; w < nworkers; ++w) {
      worlds.push_back(
          std::make_unique<tee::SecureWorld>(profile.secure_mem_budget));
      tee_ctxs.push_back(std::make_unique<tee::TeeContext>(*worlds.back()));
      engines.push_back(std::make_unique<runtime::DeployedTBNet>(
          tb, *tee_ctxs.back(), "tbnet-worker-" + std::to_string(w),
          runtime::DeployedTBNet::Options{.max_batch = 64}));
      if (device_timing) engines.back()->session().simulate_timing(profile);
      engines.back()->set_intra_op_width(
          std::max(1, pool_threads / nworkers));
      engines.back()->infer_batch(Tensor::randn(Shape{4, 3, 32, 32}, wrng));
      runtime::DeployedTBNet* eng = engines.back().get();
      fns.push_back(
          [eng](const Tensor& nchw) { return eng->infer_batch(nchw); });
    }
    WorkerPoint p;
    p.workers = nworkers;
    p.intra_op_width = std::max(1, pool_threads / nworkers);
    runtime::InferenceServer server(std::move(fns), scfg);
    const int64_t per_thread = 48;
    const auto t0 = Clock::now();
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&server, per_thread, t] {
        Rng trng(200 + static_cast<uint64_t>(t));
        std::vector<std::future<runtime::InferenceResult>> futures;
        for (int64_t i = 0; i < per_thread; ++i) {
          futures.push_back(
              server.submit(Tensor::randn(Shape{3, 32, 32}, trng)));
        }
        for (auto& f : futures) f.get();
      });
    }
    for (auto& th : submitters) th.join();
    server.drain();
    p.imgs_per_s = 4.0 * static_cast<double>(per_thread) /
                   std::chrono::duration<double>(Clock::now() - t0).count();
    p.stats = server.stats();
    worker_sweep.push_back(std::move(p));
  }

  // ---- intra-op width cap: 2 workers, full width vs pool/2 -----------
  // The sweep above pins TBNET_THREADS=1, where the cap cannot matter; this
  // section swaps in a hardware-width pool and measures the same 2-worker
  // closed-loop load with each engine sharding at full width (2x
  // oversubscription) vs capped at half. Meaningful only on >= 2 real
  // cores; CI notes the ratio warn-only for that reason.
  struct WidthCapPoint {
    int hardware_threads = 0;
    int workers = 2;
    int capped_width = 0;
    double imgs_per_s_uncapped = 0.0;
    double imgs_per_s_capped = 0.0;
  };
  WidthCapPoint width_cap;
  {
    ThreadPool hw_pool(0);  // hardware_concurrency
    ThreadPool::set_global_for_testing(&hw_pool);
    width_cap.hardware_threads = hw_pool.num_threads();
    width_cap.capped_width =
        std::max(1, width_cap.hardware_threads / width_cap.workers);
    std::vector<std::unique_ptr<tee::SecureWorld>> worlds;
    std::vector<std::unique_ptr<tee::TeeContext>> tee_ctxs;
    std::vector<std::unique_ptr<runtime::DeployedTBNet>> engines;
    Rng wrng(37);
    for (int w = 0; w < width_cap.workers; ++w) {
      worlds.push_back(
          std::make_unique<tee::SecureWorld>(profile.secure_mem_budget));
      tee_ctxs.push_back(std::make_unique<tee::TeeContext>(*worlds.back()));
      engines.push_back(std::make_unique<runtime::DeployedTBNet>(
          tb, *tee_ctxs.back(), "tbnet-width-" + std::to_string(w),
          runtime::DeployedTBNet::Options{.max_batch = 64}));
      if (device_timing) engines.back()->session().simulate_timing(profile);
      engines.back()->infer_batch(Tensor::randn(Shape{4, 3, 32, 32}, wrng));
    }
    for (const bool capped : {false, true}) {
      std::vector<runtime::InferenceServer::BatchFn> fns;
      for (auto& e : engines) {
        e->set_intra_op_width(capped ? width_cap.capped_width : 0);
        runtime::DeployedTBNet* eng = e.get();
        fns.push_back(
            [eng](const Tensor& nchw) { return eng->infer_batch(nchw); });
      }
      runtime::InferenceServer server(std::move(fns), scfg);
      const int64_t per_thread = 48;
      const auto t0 = Clock::now();
      std::vector<std::thread> submitters;
      for (int t = 0; t < 4; ++t) {
        submitters.emplace_back([&server, per_thread, t] {
          Rng trng(300 + static_cast<uint64_t>(t));
          std::vector<std::future<runtime::InferenceResult>> futures;
          for (int64_t i = 0; i < per_thread; ++i) {
            futures.push_back(
                server.submit(Tensor::randn(Shape{3, 32, 32}, trng)));
          }
          for (auto& f : futures) f.get();
        });
      }
      for (auto& th : submitters) th.join();
      server.drain();
      const double imgs_per_s =
          4.0 * static_cast<double>(per_thread) /
          std::chrono::duration<double>(Clock::now() - t0).count();
      (capped ? width_cap.imgs_per_s_capped
              : width_cap.imgs_per_s_uncapped) = imgs_per_s;
    }
    ThreadPool::set_global_for_testing(nullptr);
  }

  // ---- overload soak: bounded queue vs unbounded baseline ------------
  // 1x capacity is the closed-loop batch-16 throughput measured above; the
  // bounded points (capacity 64, shed-oldest, 100 ms deadline) must hold
  // goodput and accepted-p99 flat at 2x and 10x offered load, while the
  // unbounded baseline's request p99 grows with soak length at the same
  // 10x. A bounded 2x point also runs with a 1% transient fault rate to
  // show retry absorbing faults under load.
  std::vector<SoakPoint> soak_bounded;
  SoakPoint soak_faulty;
  std::vector<SoakPoint> soak_unbounded;
  const double capacity = tput16 > 0.0 ? tput16 : 100.0;
  if (soak_seconds > 0.0) {
    for (double x : {1.0, 2.0, 10.0}) {
      SoakConfig sc;
      sc.offered_imgs_per_s = capacity * x;
      sc.seconds = soak_seconds;
      sc.bounded = true;
      SoakPoint p = run_soak(engine, ctx, sc);
      p.offered_x = x;
      soak_bounded.push_back(p);
    }
    {
      SoakConfig sc;
      sc.offered_imgs_per_s = capacity * 2.0;
      sc.seconds = soak_seconds * 0.5;
      sc.bounded = true;
      sc.fault_rate = 0.01;
      soak_faulty = run_soak(engine, ctx, sc);
      soak_faulty.offered_x = 2.0;
    }
    // Short soaks: an unbounded 10x backlog must still be drained (and is
    // charged to goodput), so the submission windows stay small.
    for (double frac : {0.25, 0.5}) {
      SoakConfig sc;
      sc.offered_imgs_per_s = capacity * 10.0;
      sc.seconds = soak_seconds * frac;
      sc.bounded = false;
      SoakPoint p = run_soak(engine, ctx, sc);
      p.offered_x = 10.0;
      soak_unbounded.push_back(p);
    }
  }

  // ---- chaos soak: kill one of two workers mid-run -------------------
  ChaosPoint chaos_point;
  if (chaos) {
    const double chaos_seconds = soak_seconds > 0.0 ? soak_seconds : 2.0;
    chaos_point =
        run_chaos(tb, profile, device_timing, capacity * 2.0, chaos_seconds);
  }

  // ---- elastic soak: autoscaled pool vs fixed single worker ----------
  ElasticPoint elastic_point;
  if (soak_seconds > 0.0) {
    elastic_point =
        run_elastic(tb, profile, device_timing, capacity, soak_seconds);
  }

  // ---- JSON ----------------------------------------------------------
  std::printf("{\n");
  std::printf("  \"model\": \"%s\",\n", cfg.name().c_str());
  std::printf("  \"stages\": %d,\n", engine.num_stages());
  std::printf("  \"device_timing\": %s,\n",
              device_timing ? "\"raspberry-pi-3b/op-tee\"" : "null");
  std::printf("  \"threads\": %s,\n", std::getenv("TBNET_THREADS"));
  std::printf("  \"isa\": \"%s\",\n", server_stats.isa.c_str());
  std::printf("  \"int8_isa\": \"%s\",\n", server_stats.int8_isa.c_str());
  // REE-side scratch high-water mark (packed weights + per-call workspace);
  // with fused im2col→panel lowering this excludes any column matrices.
  std::printf("  \"workspace_bytes\": %lld,\n",
              static_cast<long long>(engine.workspace_bytes()));
  std::printf("  \"sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    std::printf(
        "    {\"batch\": %lld, \"images\": %lld, \"imgs_per_s\": %.2f, "
        "\"batch_p50_ms\": %.3f, \"batch_p95_ms\": %.3f, "
        "\"batch_p99_ms\": %.3f, "
        "\"world_switches_per_image\": %.3f, "
        "\"injected_overhead_ms_per_image\": %.4f}%s\n",
        static_cast<long long>(p.batch), static_cast<long long>(p.images),
        p.imgs_per_s, p.batch_p50_ms, p.batch_p95_ms, p.batch_p99_ms,
        p.switches_per_image, p.overhead_ms_per_image,
        i + 1 < sweep.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"speedup_batch16_vs_batch1\": %.3f,\n",
              tput1 > 0.0 ? tput16 / tput1 : 0.0);
  std::printf("  \"server\": {\n");
  std::printf("    \"requests\": %lld,\n",
              static_cast<long long>(server_stats.requests));
  std::printf("    \"batches\": %lld,\n",
              static_cast<long long>(server_stats.batches));
  std::printf("    \"mean_batch_size\": %.2f,\n",
              server_stats.mean_batch_size());
  std::printf("    \"request_p50_ms\": %.3f,\n",
              server_stats.request_latency.percentile(50.0) * 1e3);
  std::printf("    \"request_p95_ms\": %.3f,\n",
              server_stats.request_latency.percentile(95.0) * 1e3);
  std::printf("    \"request_p99_ms\": %.3f,\n",
              server_stats.request_latency.percentile(99.0) * 1e3);
  std::printf("    \"batch_p50_ms\": %.3f,\n",
              server_stats.batch_latency.percentile(50.0) * 1e3);
  std::printf("    \"batch_p95_ms\": %.3f,\n",
              server_stats.batch_latency.percentile(95.0) * 1e3);
  std::printf("    \"batch_p99_ms\": %.3f\n",
              server_stats.batch_latency.percentile(99.0) * 1e3);
  std::printf("  },\n");
  double tput_1w = 0.0, tput_2w = 0.0;
  std::printf("  \"server_workers\": [\n");
  for (size_t i = 0; i < worker_sweep.size(); ++i) {
    const WorkerPoint& p = worker_sweep[i];
    if (p.workers == 1) tput_1w = p.imgs_per_s;
    if (p.workers == 2) tput_2w = p.imgs_per_s;
    std::printf(
        "    {\"workers\": %d, \"intra_op_width\": %d, \"imgs_per_s\": %.2f, "
        "\"request_p50_ms\": %.3f, \"request_p99_ms\": %.3f, "
        "\"mean_batch_size\": %.2f, \"max_queue_depth\": %lld, "
        "\"worker_utilization\": [",
        p.workers, p.intra_op_width, p.imgs_per_s,
        p.stats.request_latency.percentile(50.0) * 1e3,
        p.stats.request_latency.percentile(99.0) * 1e3,
        p.stats.mean_batch_size(),
        static_cast<long long>(p.stats.max_queue_depth));
    for (size_t w = 0; w < p.stats.per_worker.size(); ++w) {
      std::printf("%s%.3f", w == 0 ? "" : ", ",
                  p.stats.worker_utilization(static_cast<int>(w)));
    }
    std::printf("]}%s\n", i + 1 < worker_sweep.size() ? "," : "");
  }
  std::printf("  ],\n");
  // Inter-op dispatch scaling; bounded by physical cores (the "threads"
  // field above is the INTRA-op width each worker uses).
  std::printf("  \"speedup_workers2_vs_1\": %.3f,\n",
              tput_1w > 0.0 ? tput_2w / tput_1w : 0.0);
  // Oversubscription fix receipts: same 2-worker load, engines sharding at
  // full pool width (before) vs capped at pool/2 (after). Only meaningful
  // on >= 2 hardware threads; CI reports the ratio warn-only.
  std::printf("  \"width_cap\": {\n");
  std::printf("    \"hardware_threads\": %d,\n", width_cap.hardware_threads);
  std::printf("    \"workers\": %d,\n", width_cap.workers);
  std::printf("    \"capped_width\": %d,\n", width_cap.capped_width);
  std::printf("    \"imgs_per_s_uncapped\": %.2f,\n",
              width_cap.imgs_per_s_uncapped);
  std::printf("    \"imgs_per_s_capped\": %.2f,\n",
              width_cap.imgs_per_s_capped);
  std::printf("    \"speedup_capped_vs_uncapped\": %.3f\n",
              width_cap.imgs_per_s_uncapped > 0.0
                  ? width_cap.imgs_per_s_capped /
                        width_cap.imgs_per_s_uncapped
                  : 0.0);
  std::printf("  },\n");
  if (soak_bounded.empty()) {
    std::printf("  \"soak\": null,\n");
  } else {
    const double goodput_1x = soak_bounded.front().goodput_imgs_per_s;
    std::printf("  \"soak\": {\n");
    std::printf("    \"capacity_imgs_per_s\": %.2f,\n", capacity);
    std::printf("    \"queue_capacity\": 64,\n");
    std::printf("    \"admission\": \"shed_oldest\",\n");
    std::printf("    \"deadline_ms\": 100.0,\n");
    std::printf("    \"bounded\": [\n");
    for (size_t i = 0; i < soak_bounded.size(); ++i) {
      print_soak_point(soak_bounded[i], goodput_1x,
                       i + 1 < soak_bounded.size() ? "," : "");
    }
    std::printf("    ],\n");
    std::printf("    \"bounded_fault_rate_0p01\": [\n");
    print_soak_point(soak_faulty, goodput_1x, "");
    std::printf("    ],\n");
    std::printf("    \"unbounded_10x\": [\n");
    for (size_t i = 0; i < soak_unbounded.size(); ++i) {
      print_soak_point(soak_unbounded[i], goodput_1x,
                       i + 1 < soak_unbounded.size() ? "," : "");
    }
    std::printf("    ],\n");
    // The two machine-portable headlines: bounded goodput held at 10x
    // offered load (gated by tools/check_bench_regression.py and CI), and
    // the unbounded baseline's p99 growing with soak length at fixed load
    // (the divergence the admission control exists to prevent).
    double goodput_vs_1x_at_10x = 0.0;
    for (const SoakPoint& p : soak_bounded) {
      if (p.offered_x == 10.0 && goodput_1x > 0.0) {
        goodput_vs_1x_at_10x = p.goodput_imgs_per_s / goodput_1x;
      }
    }
    std::printf("    \"goodput_vs_1x\": %.3f,\n", goodput_vs_1x_at_10x);
    const double p99_short = soak_unbounded.front().accepted_p99_ms;
    const double p99_long = soak_unbounded.back().accepted_p99_ms;
    std::printf("    \"unbounded_p99_growth\": %.3f\n",
                p99_short > 0.0 ? p99_long / p99_short : 0.0);
    std::printf("  },\n");
  }
  if (soak_seconds <= 0.0) {
    std::printf("  \"elastic\": null,\n");
  } else {
    const ElasticPoint& e = elastic_point;
    std::printf("  \"elastic\": {\n");
    std::printf("    \"soak_seconds\": %.2f,\n", e.soak_seconds);
    std::printf("    \"capacity_imgs_per_s\": %.2f,\n", capacity);
    std::printf("    \"load_steps_x\": [1.0, 10.0, 1.0],\n");
    std::printf("    \"min_workers\": 1,\n");
    std::printf("    \"max_workers\": 4,\n");
    std::printf(
        "    \"fixed\": {\"submitted\": %lld, \"ok\": %lld, "
        "\"goodput_imgs_per_s\": %.2f, \"shed_rate\": %.3f, "
        "\"unresolved\": %lld},\n",
        static_cast<long long>(e.fixed.submitted),
        static_cast<long long>(e.fixed.ok), e.fixed.goodput_imgs_per_s,
        e.fixed.shed_rate, static_cast<long long>(e.fixed.unresolved));
    std::printf(
        "    \"elastic\": {\"submitted\": %lld, \"ok\": %lld, "
        "\"goodput_imgs_per_s\": %.2f, \"shed_rate\": %.3f, "
        "\"unresolved\": %lld, \"scale_ups\": %lld, "
        "\"scale_downs\": %lld},\n",
        static_cast<long long>(e.elastic.submitted),
        static_cast<long long>(e.elastic.ok), e.elastic.goodput_imgs_per_s,
        e.elastic.shed_rate, static_cast<long long>(e.elastic.unresolved),
        static_cast<long long>(e.elastic.stats.scale_ups),
        static_cast<long long>(e.elastic.stats.scale_downs));
    // The machine-portable headlines the CI gate reads: the autoscaled pool
    // must hold goodput at least at the fixed baseline while shedding
    // strictly less, reach beyond min_workers at the 10x step, and resolve
    // every future.
    std::printf("    \"workers_high_water\": %lld,\n",
                static_cast<long long>(e.elastic.stats.workers_high_water));
    std::printf("    \"goodput_elastic_vs_fixed\": %.3f,\n",
                e.fixed.goodput_imgs_per_s > 0.0
                    ? e.elastic.goodput_imgs_per_s /
                          e.fixed.goodput_imgs_per_s
                    : 0.0);
    std::printf("    \"shed_rate_fixed\": %.3f,\n", e.fixed.shed_rate);
    std::printf("    \"shed_rate_elastic\": %.3f,\n", e.elastic.shed_rate);
    std::printf("    \"shed_rate_elastic_vs_fixed\": %.3f,\n",
                e.fixed.shed_rate > 0.0
                    ? e.elastic.shed_rate / e.fixed.shed_rate
                    : 0.0);
    std::printf("    \"unresolved\": %lld\n",
                static_cast<long long>(e.fixed.unresolved +
                                       e.elastic.unresolved));
    std::printf("  },\n");
  }
  if (!chaos) {
    std::printf("  \"chaos\": null\n");
  } else {
    const ChaosPoint& c = chaos_point;
    std::printf("  \"chaos\": {\n");
    std::printf("    \"workers\": 2,\n");
    std::printf("    \"soak_seconds\": %.2f,\n", c.soak_seconds);
    std::printf("    \"offered_imgs_per_s\": %.1f,\n", c.offered_imgs_per_s);
    std::printf("    \"kill_at_s\": %.3f,\n", c.kill_at_s);
    std::printf("    \"heal_at_s\": %.3f,\n", c.heal_at_s);
    std::printf("    \"submitted\": %lld,\n",
                static_cast<long long>(c.submitted));
    std::printf("    \"ok\": %lld,\n", static_cast<long long>(c.ok));
    std::printf("    \"unresolved\": %lld,\n",
                static_cast<long long>(c.unresolved));
    std::printf("    \"quarantines\": %lld,\n",
                static_cast<long long>(c.stats.quarantines));
    std::printf("    \"recoveries\": %lld,\n",
                static_cast<long long>(c.stats.recoveries));
    std::printf("    \"requeued\": %lld,\n",
                static_cast<long long>(c.stats.requeued));
    std::printf("    \"canary_failures\": %lld,\n",
                static_cast<long long>(c.stats.canary_failures));
    std::printf("    \"engine_errors\": %lld,\n",
                static_cast<long long>(c.stats.engine_errors));
    std::printf("    \"integrity_errors\": %lld,\n",
                static_cast<long long>(c.stats.integrity_errors));
    std::printf("    \"recovery_time_s\": %.3f,\n", c.recovery_time_s);
    std::printf("    \"goodput_pre_kill\": %.2f,\n", c.goodput_pre_kill);
    std::printf("    \"goodput_during_quarantine\": %.2f,\n",
                c.goodput_during_quarantine);
    std::printf("    \"goodput_after_recovery\": %.2f,\n",
                c.goodput_after_recovery);
    // The machine-portable headline: service restored to pre-kill goodput
    // (gate: >= 0.95) with every submitted future resolved (gate: 0).
    std::printf("    \"recovery_ratio\": %.3f\n",
                c.goodput_pre_kill > 0.0
                    ? c.goodput_after_recovery / c.goodput_pre_kill
                    : 0.0);
    std::printf("  }\n");
  }
  std::printf("}\n");
  return 0;
}
