// Table 3 — inference latency (seconds) on the simulated Raspberry Pi 3B /
// OP-TEE device: the full victim executed inside the TEE (baseline) vs.
// TBNet's split execution (M_R in the REE, pruned M_T in the TEE, one-way
// per-stage transfers, pipelined across the two cores).
//
// Paper (CIFAR10): VGG18 2.3983s -> 1.9589s (1.22x), ResNet20 3.7425s ->
// 3.2667s (1.15x). Absolute seconds depend on the device profile; the
// reduction factor is the reproducible shape.
//
// A wall-clock cross-check runs the real layer kernels on this host for both
// schedules' TEE-side work to confirm the analytic MAC ratios are sane.

#include <chrono>
#include <cstdio>

#include "common.h"
#include "runtime/measurements.h"
#include "tee/cost_model.h"

namespace {

double host_seconds_for(tbnet::nn::Layer& model, const tbnet::Tensor& input,
                        int reps) {
  using clock = std::chrono::steady_clock;
  model.forward(input, false);  // warm-up
  const auto t0 = clock::now();
  for (int i = 0; i < reps; ++i) model.forward(input, false);
  const auto t1 = clock::now();
  return std::chrono::duration<double>(t1 - t0).count() / reps;
}

}  // namespace

int main() {
  using namespace tbnet;
  const bool paper_scale = bench::paper_scale_requested();
  bench::print_header(
      "Table 3: inference latency, full-victim-in-TEE vs. TBNet (CIFAR10)");
  const tee::CostModel cm(tee::DeviceProfile::rpi3());
  std::printf("Device profile: %s\n", cm.profile().name.c_str());
  std::printf("  REE %.0f MMAC/s, TEE %.0f MMAC/s, switch %.0f us, channel %.1f GB/s\n\n",
              cm.profile().ree_macs_per_s / 1e6,
              cm.profile().tee_macs_per_s / 1e6,
              cm.profile().world_switch_s * 1e6,
              cm.profile().channel_bytes_per_s / 1e9);

  const bench::Setup setups[] = {
      bench::vgg18_cifar10(paper_scale),
      bench::resnet20_cifar10(paper_scale),
  };
  const double paper_base[] = {2.3983, 3.7425};
  const double paper_tbnet[] = {1.9589, 3.2667};

  std::printf("%-22s | %12s %12s %10s | paper: base/TBNet (red.)\n", "Model",
              "Baseline (s)", "TBNet (s)", "Reduction");
  std::printf("%s\n", std::string(98, '-').c_str());
  for (size_t i = 0; i < 2; ++i) {
    bench::Artifacts a = bench::get_or_build(setups[i]);
    const Shape img{3, 32, 32};
    const auto vfp = runtime::measure_victim(a.victim, img);
    const auto tfp = runtime::measure_two_branch(a.model, img);
    const double baseline =
        simulate_full_tee(cm, vfp.stage_macs, vfp.input_bytes).makespan_s;
    const double split = simulate_two_branch(cm, tfp.stages).makespan_s;
    std::printf("%-22s | %12.4f %12.4f %9.2fx | %.4f/%.4f (%.2fx)\n",
                setups[i].label.c_str(), baseline, split, baseline / split,
                paper_base[i], paper_tbnet[i], paper_base[i] / paper_tbnet[i]);
  }

  // Host wall-clock cross-check: run the actual TEE-side computation
  // (victim vs. secure branch) with the real kernels.
  std::printf("\nHost wall-clock cross-check (real kernels, batch 1):\n");
  for (size_t i = 0; i < 2; ++i) {
    bench::Artifacts a = bench::get_or_build(setups[i], /*verbose=*/false);
    Rng rng(3);
    Tensor x = Tensor::randn(Shape{1, 3, 32, 32}, rng);
    const double victim_s = host_seconds_for(a.victim, x, 5);
    // Secure branch alone (its compute is what occupies the TEE core).
    double secure_s = 0.0;
    {
      Tensor fused = x;
      using clock = std::chrono::steady_clock;
      const auto t0 = clock::now();
      for (int rep = 0; rep < 5; ++rep) {
        Tensor f = x;
        for (int s = 0; s < a.model.num_stages(); ++s) {
          f = a.model.stage(s).secure->forward(f, false);
        }
      }
      secure_s = std::chrono::duration<double>(clock::now() - t0).count() / 5;
    }
    std::printf("  %-20s victim %.4f s, pruned M_T %.4f s (ratio %.2fx)\n",
                setups[i].label.c_str(), victim_s, secure_s,
                victim_s / secure_s);
  }
  std::printf(
      "\nShape check: reduction factors in the paper's 1.1-1.3x band come\n"
      "from pruned TEE work + pipelined REE execution, not absolute speed.\n");
  return 0;
}
