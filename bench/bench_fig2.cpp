// Fig. 2 — attacker fine-tunes the extracted M_R of VGG18 with a varying
// fraction of the training dataset (1%..100%), on both datasets. The paper's
// claim: even with 100% of the data the attacker stays below TBNet's
// accuracy (e.g. 65.59% vs. 68.37% on CIFAR100), because (1) the rolled-back
// M_R architecture is a downgraded victim and (2) M_T's contribution is
// missing.

#include <cstdio>
#include <string>
#include <vector>

#include "attack/attacks.h"
#include "common.h"

namespace {

void run_sweep(const tbnet::bench::Setup& setup) {
  using namespace tbnet;
  const bench::Artifacts a = bench::get_or_build(setup);
  const auto train = bench::train_set(setup);
  const auto test = bench::test_set(setup);
  core::TwoBranchModel model = a.model.clone();

  attack::FineTuneConfig ft;
  ft.train.epochs = 4;  // a determined attacker's budget at CI scale
  ft.train.batch_size = 64;
  ft.train.lr = 0.02;
  ft.train.augment = false;
  const std::vector<double> fractions = {0.01, 0.1, 0.25, 1.0};
  const auto sweep = attack::fine_tune_sweep(model, train, test, fractions, ft);

  std::printf("\n%s  (TBNet accuracy: %s)\n", setup.label.c_str(),
              bench::pct(a.report.final_acc).c_str());
  std::printf("  %-12s %-10s  %s\n", "data avail.", "attacker", "");
  for (const auto& point : sweep) {
    const int bar = static_cast<int>(point.accuracy * 50);
    std::printf("  %10.0f%%  %s  |%s\n", 100.0 * point.fraction,
                bench::pct(point.accuracy).c_str(),
                std::string(static_cast<size_t>(bar), '#').c_str());
  }
  const int tbnet_bar = static_cast<int>(a.report.final_acc * 50);
  std::printf("  %10s   %s  |%s  <- TBNet (defender)\n", "--",
              bench::pct(a.report.final_acc).c_str(),
              std::string(static_cast<size_t>(tbnet_bar), '=').c_str());
  const bool below = sweep.back().accuracy < a.report.final_acc;
  std::printf("  Shape check: attacker@100%% < TBNet: %s\n",
              below ? "yes" : "NO (investigate)");
}

}  // namespace

int main() {
  using namespace tbnet;
  const bool paper_scale = bench::paper_scale_requested();
  bench::print_header(
      "Fig. 2: attacker fine-tuning M_R (VGG18) vs. data availability");
  run_sweep(bench::vgg18_cifar10(paper_scale));
  run_sweep(bench::vgg18_cifar100(paper_scale));
  return 0;
}
