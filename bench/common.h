#pragma once
// Shared infrastructure for the experiment harnesses (one binary per paper
// table/figure, see DESIGN.md §4).
//
// Every experiment starts from the same four trained pipelines
// ({VGG18, ResNet20} x {CIFAR10-like, CIFAR100-like}); building one involves
// real training, so finished artifacts (victim + finalized two-branch model
// + headline numbers) are cached on disk under ./tbnet_bench_cache/ and
// shared across bench binaries. Delete the directory to retrain.
//
// Scale note: the default configurations are CPU-sized (width-multiplied
// models, synthetic data, few epochs) so the full bench suite runs in
// minutes. Set TBNET_BENCH_SCALE=paper to train substantially larger
// configurations (slower, closer to the paper's operating point).

#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/two_branch.h"
#include "data/synthetic_cifar.h"
#include "models/model_zoo.h"
#include "models/trainer.h"
#include "nn/sequential.h"

namespace tbnet::bench {

/// Full description of one experiment pipeline.
struct Setup {
  std::string label;          ///< e.g. "VGG18 / CIFAR10"
  std::string dataset_label;  ///< "CIFAR10" or "CIFAR100"
  models::ModelConfig model;
  int64_t classes = 10;
  int64_t train_size = 400;
  int64_t test_size = 200;
  double difficulty = 0.55;
  uint64_t data_seed = 77;
  models::TrainConfig victim_train;
  core::PipelineConfig pipeline;

  /// Cache key: stable digest of everything that affects the artifacts.
  std::string key() const;
};

/// The four paper configurations (scaled). `scale_up` uses larger models and
/// more training (TBNET_BENCH_SCALE=paper).
Setup vgg18_cifar10(bool scale_up = false);
Setup vgg18_cifar100(bool scale_up = false);
Setup resnet20_cifar10(bool scale_up = false);
Setup resnet20_cifar100(bool scale_up = false);
bool paper_scale_requested();

/// Datasets for a setup (train split 0, test split 1).
data::SyntheticCifar train_set(const Setup& s);
data::SyntheticCifar test_set(const Setup& s);

/// Finished experiment artifacts.
struct Artifacts {
  nn::Sequential victim;        ///< trained victim model
  core::TwoBranchModel model;   ///< finalized TBNet (post step 6)
  double victim_acc = 0.0;
  core::PipelineReport report;
};

/// Loads the artifacts from cache or trains them (and caches).
Artifacts get_or_build(const Setup& s, bool verbose = true);

/// Formatting helpers shared by the harness binaries.
void print_header(const std::string& title);
std::string pct(double fraction);
std::string mib(int64_t bytes);

/// Renders a horizontal ASCII histogram of `values` with `bins` buckets.
void print_histogram(const std::string& title,
                     const std::vector<float>& values, int bins = 20);

}  // namespace tbnet::bench
