// Table 1 — "The performance of TBNet and its protection against direct
// model usage": victim accuracy, TBNet (fused) accuracy, attacker
// direct-use accuracy of the extracted M_R, and the security gap, for
// {VGG18, ResNet20} x {CIFAR10, CIFAR100}.
//
// Expected shape (paper, absolute numbers are testbed-specific):
//   * TBNet accuracy ~= victim accuracy (small security-performance cost),
//   * attacker accuracy far below TBNet (>= 20% gap),
//   * the gap is most extreme for ResNet (M_R lacks the skip connections,
//     so the extracted plain chain is close to useless: 10-20%).

#include <cstdio>

#include "attack/attacks.h"
#include "common.h"

namespace {

struct PaperRow {
  double victim, tbnet, attack;
};

}  // namespace

int main() {
  using namespace tbnet;
  const bool paper_scale = bench::paper_scale_requested();
  bench::print_header(
      "Table 1: TBNet accuracy vs. attacker direct-use accuracy");
  std::printf(
      "Workloads are synthetic CIFAR-shaped datasets (see DESIGN.md); compare"
      " trends,\nnot absolute numbers. Paper values shown for reference.\n\n");

  const bench::Setup setups[] = {
      bench::vgg18_cifar10(paper_scale),
      bench::resnet20_cifar10(paper_scale),
      bench::vgg18_cifar100(paper_scale),
      bench::resnet20_cifar100(paper_scale),
  };
  const PaperRow paper[] = {
      {91.29, 90.72, 69.80},  // VGG18 / CIFAR10
      {92.27, 91.68, 10.00},  // ResNet20 / CIFAR10
      {67.41, 68.37, 42.64},  // VGG18 / CIFAR100
      {71.03, 69.49, 20.29},  // ResNet20 / CIFAR100
  };

  std::printf("%-22s | %9s %9s %9s %9s | paper (V/T/A)\n", "Model / Dataset",
              "Victim", "TBNet", "Attack", "Gap");
  std::printf("%s\n", std::string(96, '-').c_str());
  bool all_gaps_positive = true;
  for (size_t i = 0; i < 4; ++i) {
    const bench::Artifacts a = bench::get_or_build(setups[i]);
    const auto test = bench::test_set(setups[i]);
    // Tab. 1's Attack Acc. = direct use of the extracted M_R.
    core::TwoBranchModel model = a.model.clone();
    const double attack = attack::direct_use_accuracy(model, test);
    const double gap = a.report.final_acc - attack;
    all_gaps_positive &= gap > 0.0;
    std::printf("%-22s | %9s %9s %9s %9s | %.2f/%.2f/%.2f\n",
                setups[i].label.c_str(), bench::pct(a.victim_acc).c_str(),
                bench::pct(a.report.final_acc).c_str(),
                bench::pct(attack).c_str(), bench::pct(gap).c_str(),
                paper[i].victim, paper[i].tbnet, paper[i].attack);
  }
  std::printf("\nShape check: security gap positive in every row: %s\n",
              all_gaps_positive ? "yes" : "NO (investigate)");
  return 0;
}
