// Micro-benchmarks (google-benchmark) for the hot kernels behind every
// experiment: GEMM, im2col convolution, BatchNorm, channel gather, and the
// OP-TEE-style invoke round-trip. These are the numbers to watch when
// porting the runtime to a real device.

#include <benchmark/benchmark.h>

#include "core/two_branch.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "tee/optee_api.h"
#include "tensor/gemm.h"

namespace {

using namespace tbnet;

void BM_GemmNN(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn(Shape{n, n}, rng);
  Tensor b = Tensor::randn(Shape{n, n}, rng);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    gemm_nn(n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmNN)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2dForward(benchmark::State& state) {
  const int64_t c = state.range(0);
  Rng rng(2);
  nn::Conv2d conv(c, c, {.kernel = 3, .stride = 1, .pad = 1, .bias = false},
                  rng);
  Tensor x = Tensor::randn(Shape{1, c, 32, 32}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * conv.macs(x.shape()));
}
BENCHMARK(BM_Conv2dForward)->Arg(16)->Arg(32)->Arg(64);

void BM_Conv2dBackward(benchmark::State& state) {
  const int64_t c = state.range(0);
  Rng rng(3);
  nn::Conv2d conv(c, c, {.kernel = 3, .stride = 1, .pad = 1, .bias = false},
                  rng);
  Tensor x = Tensor::randn(Shape{1, c, 32, 32}, rng);
  Tensor y = conv.forward(x, true);
  Tensor g = Tensor::randn(y.shape(), rng);
  for (auto _ : state) {
    conv.zero_grad();
    Tensor dx = conv.backward(g);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(16)->Arg(32);

void BM_BatchNormForwardTrain(benchmark::State& state) {
  Rng rng(4);
  nn::BatchNorm2d bn(64);
  Tensor x = Tensor::randn(Shape{8, 64, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = bn.forward(x, true);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() * x.numel() * 4);
}
BENCHMARK(BM_BatchNormForwardTrain);

void BM_GatherChannels(benchmark::State& state) {
  Rng rng(5);
  Tensor x = Tensor::randn(Shape{1, 128, 16, 16}, rng);
  std::vector<int64_t> map;
  for (int64_t i = 0; i < 128; i += 2) map.push_back(i);
  for (auto _ : state) {
    Tensor y = core::gather_channels(x, map);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_GatherChannels);

class NoopTA : public tee::TrustedApp {
 public:
  uint32_t invoke(uint32_t, const std::vector<uint8_t>&,
                  std::vector<uint8_t>& out, tee::TaContext&) override {
    out = {0};
    return tee::kTeeSuccess;
  }
};

void BM_TeeInvokeRoundTrip(benchmark::State& state) {
  tee::SecureWorld world;
  world.install("noop", std::make_unique<NoopTA>());
  tee::TeeContext ctx(world);
  tee::TeeSession session = ctx.open_session("noop");
  std::vector<uint8_t> payload(static_cast<size_t>(state.range(0)), 42);
  std::vector<uint8_t> out;
  for (auto _ : state) {
    session.invoke(1, payload, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TeeInvokeRoundTrip)->Arg(1024)->Arg(64 * 1024);

}  // namespace

BENCHMARK_MAIN();
