// bench_kernels — machine-readable microbenchmarks for the dense-compute
// hot path. Emits one JSON document (BENCH_kernels.json in CI) with
// single-thread GFLOP/s per GEMM shape for the scalar reference kernel
// ("before": the PR-1 register-blocked kernel, still selectable at runtime
// via TBNET_DETERMINISTIC=1) and the packed SIMD kernel ("after"), a
// 1/2/4-thread scaling sweep on large shapes, nested-parallel_for scaling
// (work-stealing vs the inline-serial path), fused-lowering vs materialized
// conv timings (with arena footprints), depthwise row-kernel timings (SIMD
// vs scalar reference, and fused dw→pw vs back-to-back layers), and
// fused-epilogue conv timings. The
// shape list is the im2col GEMMs a CIFAR-scale ResNet victim actually
// produces, so the speedup column tracks the serving-relevant sizes rather
// than only square LINPACK-style GEMMs.
//
// Usage: bench_kernels [--quick]
//   --quick  small shapes / fewer reps; the CI smoke configuration.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <thread>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/depthwise.h"
#include "nn/fuse.h"
#include "nn/quant.h"
#include "nn/sequential.h"
#include "nn/activations.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/pack.h"
#include "tensor/rng.h"
#include "tensor/simd.h"
#include "tensor/threadpool.h"

namespace {

using namespace tbnet;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct GemmShape {
  const char* name;
  int64_t m, n, k;
  bool quick;  ///< included in the --quick CI smoke subset
};

// ResNet20/CIFAR im2col shapes (m = out_c, n = out_h*out_w, k = in_c*9) and
// a few generic square sizes for context.
const GemmShape kShapes[] = {
    {"resnet_stem_3to16_32x32", 16, 1024, 27, true},
    {"resnet_s1_16to16_32x32", 16, 1024, 144, true},
    {"resnet_s2_16to32_16x16", 32, 256, 144, true},
    {"resnet_s2_32to32_16x16", 32, 256, 288, false},
    {"resnet_s3_32to64_8x8", 64, 64, 288, false},
    {"resnet_s3_64to64_8x8", 64, 64, 576, true},
    {"dense_head_64to10_b1", 1, 10, 64, true},
    {"square_64", 64, 64, 64, false},
    {"square_128", 128, 128, 128, false},
    {"square_256", 256, 256, 256, false},
};

using GemmFn = void (*)(const ExecutionContext&, int64_t, int64_t, int64_t,
                        float, const float*, const float*, float, float*);

/// Best-of-reps GFLOP/s for one kernel on one shape.
double bench_gemm(GemmFn fn, const ExecutionContext& ctx, const GemmShape& s,
                  const Tensor& a, const Tensor& b, Tensor& c, int reps) {
  fn(ctx, s.m, s.n, s.k, 1.0f, a.data(), b.data(), 0.0f, c.data());  // warmup
  const double flops = 2.0 * static_cast<double>(s.m) *
                       static_cast<double>(s.n) * static_cast<double>(s.k);
  // Batch calls so tiny shapes are timed over >= ~1e7 flops per sample.
  const int inner = std::max<int>(1, static_cast<int>(1e7 / flops));
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    for (int i = 0; i < inner; ++i) {
      fn(ctx, s.m, s.n, s.k, 1.0f, a.data(), b.data(), 0.0f, c.data());
    }
    const double dt = seconds_since(t0);
    best = std::max(best, flops * inner / dt / 1e9);
  }
  return best;
}

void gemm_packed_entry(const ExecutionContext& ctx, int64_t m, int64_t n,
                       int64_t k, float alpha, const float* a, const float* b,
                       float beta, float* c) {
  gemm_nn(ctx, m, n, k, alpha, a, b, beta, c);
}

/// Int8 GEMM throughput on the same shape, measured end to end the way the
/// serving path runs it: pre-packed s8 weight panels, quantize-on-pack u8 B
/// panels produced from the f32 activation matrix, i32 accumulation, and the
/// dequant+ReLU epilogue. GFLOP/s-equivalent (2mnk ops over wall time) so
/// the number reads directly against the f32 packed column.
double bench_int8_gemm(const ExecutionContext& ctx, const GemmShape& s,
                       const Tensor& a, const Tensor& b, int reps) {
  const nn::ActQuant act = nn::act_quant_from_range(-4.0f, 4.0f);  // randn B
  const nn::QuantizedWeights qw =
      nn::quantize_weights(a.data(), s.m, s.k, act);
  std::vector<int8_t> apack(
      static_cast<size_t>(packdetail::packed_a_i8_bytes(s.m, s.k)));
  packdetail::pack_a_i8(s.m, s.k, qw.q.data(), s.k, apack.data());
  std::vector<float> es(static_cast<size_t>(s.m)), et(es);
  nn::compose_quant_epilogue(qw, nullptr, nullptr, s.m, es.data(), et.data());
  const simd::QuantEpilogue qep{es.data(), et.data(), simd::Act::kReLU};
  const float inv = 1.0f / qw.act.scale;
  const int32_t zp = qw.act.zero_point;
  const float* bp = b.data();
  const int64_t n = s.n;
  Tensor c(Shape{s.m, s.n});
  const auto produce = [bp, n, inv, zp](int64_t kk, int64_t kc, int64_t j0,
                                        int nr, uint8_t* panel) {
    const simd::QuantizeU7GroupFn qgroup = simd::quantize_u7_group();
    const int64_t kg = (kc + simd::kKG - 1) / simd::kKG;
    for (int64_t gi = 0; gi < kg; ++gi) {
      uint8_t* grp = panel + gi * simd::kNR * simd::kKG;
      const float* row = bp + (kk + gi * simd::kKG) * n + j0;
      if (gi * simd::kKG + simd::kKG <= kc && nr == simd::kNR) {
        qgroup(row, row + n, row + 2 * n, row + 3 * n, grp, inv, zp);
        continue;
      }
      for (int64_t j = 0; j < simd::kNR; ++j) {
        for (int64_t t = 0; t < simd::kKG; ++t) {
          const int64_t p = gi * simd::kKG + t;
          grp[j * simd::kKG + t] =
              p < kc && j < nr
                  ? simd::quantize_u7(bp[(kk + p) * n + j0 + j], inv, zp)
                  : uint8_t{0};
        }
      }
    }
  };
  const auto run = [&] {
    packdetail::run_packed_i8_producer(ctx, s.m, s.n, s.k, apack.data(),
                                       produce, c.data(), s.n, qep);
  };
  run();  // warmup
  const double flops = 2.0 * static_cast<double>(s.m) *
                       static_cast<double>(s.n) * static_cast<double>(s.k);
  const int inner = std::max<int>(1, static_cast<int>(1e7 / flops));
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    for (int i = 0; i < inner; ++i) run();
    best = std::max(best, flops * inner / seconds_since(t0) / 1e9);
  }
  return best;
}

/// Raw microkernel throughput on L1-resident panels — the practical ceiling
/// any driver-level number should be read against (cloud vCPUs vary widely
/// in AVX turbo behavior).
double micro_roofline_gflops(int reps) {
  const int64_t kc = 576;
  std::vector<float> a(static_cast<size_t>(simd::kMR * kc), 1.1f);
  std::vector<float> b(static_cast<size_t>(simd::kNR * kc), 2.2f);
  std::vector<float> c(static_cast<size_t>(simd::kMR * simd::kNR), 0.0f);
  const simd::MicroKernelFn micro = simd::micro_kernel();
  const double flops = 2.0 * simd::kMR * simd::kNR * kc;
  const int inner = 20000;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    for (int i = 0; i < inner; ++i) {
      micro(kc, a.data(), b.data(), simd::kNR, c.data(), simd::kNR, simd::kMR,
            simd::kNR, 1.0f, 0.0f, nullptr);
    }
    best = std::max(best, flops * inner / seconds_since(t0) / 1e9);
  }
  return best;
}

// Shapes big enough that the column-panel sharding has work to distribute;
// scaling numbers are only meaningful when the host actually has the cores
// (the emitted hardware_threads field says whether it does).
struct MtShape {
  const char* name;
  int64_t m, n, k;
  bool quick;
};

const MtShape kMtShapes[] = {
    {"mt_conv_64x4096x576", 64, 4096, 576, true},  // batch-4 8x8 conv GEMM
    {"mt_square_512", 512, 512, 512, false},
};

/// Packed-GEMM GFLOP/s on a dedicated pool of `threads` workers.
double bench_gemm_threads(const MtShape& s, int threads, const Tensor& a,
                          const Tensor& b, Tensor& c, int reps) {
  ThreadPool pool(threads);
  ExecutionContext ctx;
  ctx.set_pool(&pool);
  GemmShape gs{s.name, s.m, s.n, s.k, s.quick};
  return bench_gemm(&gemm_packed_entry, ctx, gs, a, b, c, reps);
}

/// Nested parallel_for scaling: the serving shape where a pool task (an
/// outer dispatch chunk) issues its own parallel_for. The PR-4 scheduler ran
/// nested chunks inline, serially; the work-stealing pool queues them on the
/// issuing worker's deque where idle threads steal. The benchmark stages
/// exactly that: an outer parallel_for over `threads` chunks whose LAST
/// chunk runs a heavy inner loop — the other chunks finish instantly, so
/// their threads are free to steal — and compares the inner loop executed
/// (a) serially over the same chunk boundaries (the PR-4 inline behavior)
/// and (b) as a real nested parallel_for. On a 1-vCPU builder the two are
/// necessarily ~equal; on a multi-core host (b) must win, which the CI gate
/// on the hosted runner checks (`speedup` > 1.0 when hardware_threads >= 2).
struct NestedPoint {
  int threads = 0;
  double inline_ms = 0.0;
  double stolen_ms = 0.0;
};

NestedPoint bench_nested(int threads, int reps) {
  const int64_t n = 1 << 15;
  std::vector<float> out(static_cast<size_t>(n));
  auto work = [&out](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      float acc = static_cast<float>(i) * 1e-3f;
      for (int k = 0; k < 400; ++k) acc = acc * 0.9999f + 1e-4f;
      out[static_cast<size_t>(i)] = acc;
    }
  };
  ThreadPool pool(threads);
  const int64_t outer_n = threads;
  const int64_t outer_chunk = pool.chunk_size(outer_n);  // 1
  const int64_t heavy = (outer_n - 1) * outer_chunk;     // last chunk
  const int64_t inner_chunk = pool.chunk_size(n);
  NestedPoint p;
  p.threads = threads;
  auto best_ms = [&](auto&& run_inner) {
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = Clock::now();
      pool.parallel_for(outer_n, [&](int64_t b, int64_t) {
        if (b == heavy) run_inner();
      });
      best = std::min(best, seconds_since(t0) * 1e3);
    }
    return best;
  };
  p.inline_ms = best_ms([&] {
    // The PR-4 inline path: same chunk boundaries, one thread.
    for (int64_t b = 0; b < n; b += inner_chunk) {
      work(b, std::min(n, b + inner_chunk));
    }
  });
  p.stolen_ms = best_ms([&] { pool.parallel_for(n, work); });
  return p;
}

struct LowerShape {
  const char* name;
  int64_t in_c, out_c, hw, kernel, stride, pad;
  bool quick;
};

const LowerShape kLowerShapes[] = {
    {"lower_conv3x3_16c_32x32", 16, 16, 32, 3, 1, 1, true},
    {"lower_conv3x3_64c_8x8", 64, 64, 8, 3, 1, 1, false},
    {"lower_stem_3to16_32x32", 3, 16, 32, 3, 1, 1, false},
    {"lower_pw1x1_64c_16x16", 64, 64, 16, 1, 1, 0, true},  // direct path
};

struct LowerPoint {
  const char* name;
  double fused_ms = 0.0;
  double materialized_ms = 0.0;
  double int8_ms = 0.0;
  int64_t fused_arena_kb = 0;
  int64_t materialized_arena_kb = 0;
  int64_t int8_arena_kb = 0;
};

/// Fused im2col→panel lowering (the Conv2d forward path) vs the PR-2
/// materializing path (full im2col into an arena column buffer, consumed in
/// place). Both run with a pre-packed weight, so the delta is pure lowering;
/// the arena columns record the per-call scratch each path needs.
LowerPoint bench_lowering(const LowerShape& ls, int reps) {
  Rng rng(55);
  nn::Conv2d conv(ls.in_c, ls.out_c,
                  nn::Conv2d::Options{.kernel = ls.kernel, .stride = ls.stride,
                                      .pad = ls.pad, .bias = false},
                  rng);
  const Tensor x = Tensor::randn(Shape{1, ls.in_c, ls.hw, ls.hw}, rng);
  Conv2dGeom g;
  g.in_c = ls.in_c;
  g.in_h = g.in_w = ls.hw;
  g.kernel_h = g.kernel_w = ls.kernel;
  g.stride_h = g.stride_w = ls.stride;
  g.pad_h = g.pad_w = ls.pad;
  const int64_t rows = g.col_rows(), cols = g.col_cols();

  LowerPoint p;
  p.name = ls.name;
  auto best_ms = [&](auto&& fn) {
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = Clock::now();
      for (int i = 0; i < 8; ++i) fn();
      best = std::min(best, seconds_since(t0) / 8.0 * 1e3);
    }
    return best;
  };
  {
    // Weight panels live in their own context (a deployed engine's arena);
    // the scratch context then shows the pure per-call footprint.
    ExecutionContext weights_ctx;
    conv.prepare_inference(weights_ctx);
    ExecutionContext ctx;
    conv.forward(ctx, x, false);  // warmup (scratch growth)
    p.fused_arena_kb = ctx.arena().capacity_bytes() / 1024;
    p.fused_ms = best_ms([&] { conv.forward(ctx, x, false); });
  }
  {
    ExecutionContext ctx;
    std::vector<float> apack(
        static_cast<size_t>(packdetail::packed_a_floats(ls.out_c, rows)));
    packdetail::pack_a_rowmajor(ls.out_c, rows, conv.weight().data(), rows,
                                apack.data());
    Tensor out(Shape{1, ls.out_c, g.out_h(), g.out_w()});
    auto run_once = [&] {
      ArenaScope scope(ctx.arena());
      float* colbuf = ctx.arena().alloc(rows * cols);
      im2col(ctx, g, x.data(), colbuf);
      packdetail::run_packed_b_rowmajor(ctx.pool(), ls.out_c, cols, rows, 1.0f,
                                        apack.data(), colbuf, cols, 0.0f,
                                        out.data(), cols, GemmEpilogue{});
    };
    run_once();  // warmup
    p.materialized_arena_kb = ctx.arena().capacity_bytes() / 1024;
    p.materialized_ms = best_ms(run_once);
  }
  {
    // Quantize-on-pack: the int8 producer path must stay within the f32
    // fused lowering's scratch envelope (u8 slabs are a quarter the bytes;
    // the S/T epilogue composition adds 2 * out_c floats per call).
    nn::Conv2d qconv = conv;
    ExecutionContext cal_ctx;
    nn::quantize_for_inference(qconv, cal_ctx, x);
    ExecutionContext weights_ctx;
    qconv.prepare_inference(weights_ctx);
    ExecutionContext ctx;
    qconv.forward(ctx, x, false);  // warmup (scratch growth)
    p.int8_arena_kb = ctx.arena().capacity_bytes() / 1024;
    p.int8_ms = best_ms([&] { qconv.forward(ctx, x, false); });
  }
  return p;
}

struct DwShape {
  const char* name;
  int64_t channels, hw, stride;
  bool quick;
};

// MobileNet-style 3x3 depthwise maps; stride 2 exercises the deinterleaved
// vector loads.
const DwShape kDwShapes[] = {
    {"dw3x3_32c_32x32_s1", 32, 32, 1, true},
    {"dw3x3_64c_16x16_s1", 64, 16, 1, false},
    {"dw3x3_32c_32x32_s2", 32, 32, 2, true},
    {"dw3x3_128c_8x8_s1", 128, 8, 1, false},
};

struct DwPoint {
  const char* name;
  double flops = 0.0;
  double scalar_ms = 0.0;
  double simd_ms = 0.0;
};

/// Depthwise row kernel vs the scalar per-pixel reference, single image,
/// fused per-channel affine + ReLU on both sides (the deployed shape).
DwPoint bench_depthwise(const DwShape& ds, int reps) {
  Rng rng(66);
  nn::DepthwiseConv2d dw(
      ds.channels, {.kernel = 3, .stride = ds.stride, .pad = 1, .bias = false},
      rng);
  const Tensor x = Tensor::randn(Shape{1, ds.channels, ds.hw, ds.hw}, rng);
  std::vector<float> scale(static_cast<size_t>(ds.channels), 0.9f);
  std::vector<float> shift(static_cast<size_t>(ds.channels), 0.05f);
  ExecutionContext ctx;
  const int64_t out_hw = (ds.hw + 2 - 3) / ds.stride + 1;
  DwPoint p;
  p.name = ds.name;
  p.flops = 2.0 * static_cast<double>(ds.channels * out_hw * out_hw * 9);
  auto best_ms = [&](auto&& fn) {
    fn();  // warmup
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = Clock::now();
      for (int i = 0; i < 8; ++i) fn();
      best = std::min(best, seconds_since(t0) / 8.0 * 1e3);
    }
    return best;
  };
  p.scalar_ms = best_ms([&] {
    dw.forward_reference(ctx, x, scale.data(), shift.data(),
                         simd::Act::kReLU);
  });
  p.simd_ms = best_ms([&] {
    dw.forward_fused(ctx, x, scale.data(), shift.data(), simd::Act::kReLU);
  });
  return p;
}

struct DwPwShape {
  const char* name;
  int64_t channels, out_c, hw, stride;
  bool quick;
};

const DwPwShape kDwPwShapes[] = {
    {"dwpw_32to64_32x32_s1", 32, 64, 32, 1, true},
    {"dwpw_64to128_16x16_s1", 64, 128, 16, 1, false},
    {"dwpw_32to64_32x32_s2", 32, 64, 32, 2, false},
};

struct DwPwPoint {
  const char* name;
  double flops = 0.0;
  double unfused_ms = 0.0;
  double fused_ms = 0.0;
};

/// Fused depthwise→pointwise (panel producer, no intermediate map) vs
/// running the two fused layers back to back. Both use the pre-packed
/// pointwise weight, so the delta is the intermediate materialization.
DwPwPoint bench_dwpw(const DwPwShape& s, int reps) {
  Rng rng(67);
  nn::DepthwiseConv2d dw(
      s.channels, {.kernel = 3, .stride = s.stride, .pad = 1, .bias = false},
      rng);
  nn::Conv2d pw(s.channels, s.out_c,
                {.kernel = 1, .stride = 1, .pad = 0, .bias = false}, rng);
  const Tensor x = Tensor::randn(Shape{1, s.channels, s.hw, s.hw}, rng);
  ExecutionContext weights_ctx;
  pw.prepare_inference(weights_ctx);
  ExecutionContext ctx;
  const int64_t out_hw = (s.hw + 2 - 3) / s.stride + 1;
  DwPwPoint p;
  p.name = s.name;
  p.flops = 2.0 * static_cast<double>(s.channels * out_hw * out_hw) *
            static_cast<double>(9 + s.out_c);
  auto best_ms = [&](auto&& fn) {
    fn();  // warmup
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = Clock::now();
      for (int i = 0; i < 8; ++i) fn();
      best = std::min(best, seconds_since(t0) / 8.0 * 1e3);
    }
    return best;
  };
  p.unfused_ms = best_ms([&] {
    const Tensor mid =
        dw.forward_fused(ctx, x, nullptr, nullptr, simd::Act::kReLU);
    pw.forward_fused(ctx, mid, nullptr, nullptr, simd::Act::kReLU);
  });
  p.fused_ms = best_ms([&] {
    GemmEpilogue ep;
    ep.act = simd::Act::kReLU;
    nn::forward_depthwise_pointwise(ctx, x, dw, nullptr, nullptr,
                                    simd::Act::kReLU, pw, ep);
  });
  return p;
}

struct ConvPoint {
  const char* name;
  double unfused_ms = 0.0;
  double fused_ms = 0.0;
};

/// Conv+BN+ReLU block eval latency: unprepared (three passes) vs. prepared
/// (folded into one fused GEMM epilogue pass).
ConvPoint bench_fused_conv(const char* name, int64_t c, int64_t hw, int reps) {
  Rng rng(77);
  nn::Sequential seq;
  seq.emplace<nn::Conv2d>(
      c, c, nn::Conv2d::Options{.kernel = 3, .stride = 1, .pad = 1,
                                .bias = false},
      rng);
  seq.emplace<nn::BatchNorm2d>(c);
  seq.emplace<nn::ReLU>();
  nn::Sequential fused = seq;
  ExecutionContext ctx;
  fused.prepare_inference(ctx);

  const Tensor x = Tensor::randn(Shape{1, c, hw, hw}, rng);
  ConvPoint p;
  p.name = name;
  auto time_ms = [&](nn::Sequential& model) {
    model.forward(ctx, x, false);  // warmup (arena growth)
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = Clock::now();
      for (int i = 0; i < 8; ++i) model.forward(ctx, x, false);
      best = std::min(best, seconds_since(t0) / 8.0 * 1e3);
    }
    return best;
  };
  p.unfused_ms = time_ms(seq);
  p.fused_ms = time_ms(fused);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  // Single-thread by default: the acceptance metric is per-core GFLOP/s.
  setenv("TBNET_THREADS", "1", /*overwrite=*/0);

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 2;
    }
  }
  const int reps = quick ? 3 : 7;

  ExecutionContext ctx;
  Rng rng(42);

  std::printf("{\n");
  std::printf("  \"bench\": \"kernels\",\n");
  std::printf("  \"isa\": \"%s\",\n", simd::isa_name());
  std::printf("  \"int8_isa\": \"%s\",\n", simd::int8_isa_name());
  std::printf("  \"fast_kernels\": %s,\n",
              simd::fast_kernels_enabled() ? "true" : "false");
  // Quoted so a preset empty/odd TBNET_THREADS cannot break the JSON.
  const char* threads = std::getenv("TBNET_THREADS");
  std::printf("  \"threads\": \"%s\",\n",
              threads != nullptr && *threads != '\0' ? threads : "default");
  std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
  std::printf("  \"gemm\": [\n");

  double log_speedup_sum = 0.0;
  int resnet_count = 0;
  double min_resnet_speedup = 1e30;
  struct I8Entry {
    const GemmShape* s;
    double f32_gflops;
    double i8_gflops;
  };
  std::vector<I8Entry> i8_entries;
  bool first = true;
  for (const GemmShape& s : kShapes) {
    if (quick && !s.quick) continue;
    const Tensor a = Tensor::randn(Shape{s.m, s.k}, rng);
    const Tensor b = Tensor::randn(Shape{s.k, s.n}, rng);
    Tensor c(Shape{s.m, s.n});
    const double ref = bench_gemm(&gemm_nn_reference, ctx, s, a, b, c, reps);
    const double packed = bench_gemm(&gemm_packed_entry, ctx, s, a, b, c,
                                     reps);
    const double speedup = packed / ref;
    log_speedup_sum += std::log(speedup);
    if (std::strncmp(s.name, "resnet", 6) == 0) {
      ++resnet_count;
      min_resnet_speedup = std::min(min_resnet_speedup, speedup);
    }
    // Narrow logit heads stay f32 in the quantized engine (nn/quant.h
    // eligibility), so the dense head is not an int8 serving shape.
    if (std::strncmp(s.name, "dense_head", 10) != 0) {
      i8_entries.push_back({&s, packed, bench_int8_gemm(ctx, s, a, b, reps)});
    }
    std::printf(
        "%s    {\"name\": \"%s\", \"m\": %lld, \"n\": %lld, \"k\": %lld, "
        "\"ref_gflops\": %.2f, \"packed_gflops\": %.2f, \"speedup\": %.2f}",
        first ? "" : ",\n", s.name, static_cast<long long>(s.m),
        static_cast<long long>(s.n), static_cast<long long>(s.k), ref, packed,
        speedup);
    first = false;
  }
  int shape_count = 0;
  for (const GemmShape& s : kShapes) {
    if (!quick || s.quick) ++shape_count;
  }
  std::printf("\n  ],\n");
  std::printf("  \"geomean_speedup\": %.2f,\n",
              std::exp(log_speedup_sum / shape_count));
  std::printf("  \"min_resnet_speedup\": %.2f,\n",
              resnet_count > 0 ? min_resnet_speedup : 0.0);

  // Int8 vs f32 packed, per shape plus the geomean the acceptance gate
  // reads. "gflops" columns are GFLOP/s-equivalent: 2mnk over wall time.
  std::printf("  \"int8_gemm\": [\n");
  double i8_log_sum = 0.0;
  first = true;
  for (const I8Entry& e : i8_entries) {
    const double vs = e.i8_gflops / e.f32_gflops;
    i8_log_sum += std::log(vs);
    std::printf(
        "%s    {\"name\": \"i8_%s\", \"m\": %lld, \"n\": %lld, \"k\": %lld, "
        "\"f32_gflops\": %.2f, \"int8_gflops\": %.2f, \"vs_f32\": %.2f}",
        first ? "" : ",\n", e.s->name, static_cast<long long>(e.s->m),
        static_cast<long long>(e.s->n), static_cast<long long>(e.s->k),
        e.f32_gflops, e.i8_gflops, vs);
    first = false;
  }
  std::printf("\n  ],\n");
  std::printf("  \"int8_geomean_vs_f32\": %.2f,\n",
              i8_entries.empty()
                  ? 0.0
                  : std::exp(i8_log_sum /
                             static_cast<double>(i8_entries.size())));
  std::printf("  \"micro_roofline_gflops\": %.2f,\n",
              micro_roofline_gflops(reps));

  // 1/2/4-thread scaling on dedicated pools. hardware_threads is emitted so
  // the numbers are interpretable: oversubscribed pools on a small builder
  // legitimately scale at ~1.0x.
  std::printf("  \"hardware_threads\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"thread_scaling\": [\n");
  first = true;
  for (const MtShape& s : kMtShapes) {
    if (quick && !s.quick) continue;
    const Tensor a = Tensor::randn(Shape{s.m, s.k}, rng);
    const Tensor b = Tensor::randn(Shape{s.k, s.n}, rng);
    Tensor c(Shape{s.m, s.n});
    const double t1 = bench_gemm_threads(s, 1, a, b, c, reps);
    const double t2 = bench_gemm_threads(s, 2, a, b, c, reps);
    const double t4 = bench_gemm_threads(s, 4, a, b, c, reps);
    std::printf(
        "%s    {\"name\": \"%s\", \"m\": %lld, \"n\": %lld, \"k\": %lld, "
        "\"gflops_1t\": %.2f, \"gflops_2t\": %.2f, \"gflops_4t\": %.2f, "
        "\"scaling_2t\": %.2f, \"scaling_4t\": %.2f}",
        first ? "" : ",\n", s.name, static_cast<long long>(s.m),
        static_cast<long long>(s.n), static_cast<long long>(s.k), t1, t2, t4,
        t2 / t1, t4 / t1);
    first = false;
  }
  std::printf("\n  ],\n");

  // Nested parallel_for: work-stealing vs the PR-4 inline-serial path, in
  // the exact outer/inner shape the serving workers produce. speedup > 1.0
  // requires real cores; the CI job on the multi-core hosted runner gates
  // on it.
  std::printf("  \"nested_scaling\": [\n");
  {
    const int nested_threads[] = {2, 4};
    first = true;
    for (int t : nested_threads) {
      const NestedPoint p = bench_nested(t, reps);
      std::printf(
          "%s    {\"name\": \"nested_pf_%dt\", \"threads\": %d, "
          "\"inline_ms\": %.4f, \"stolen_ms\": %.4f, \"speedup\": %.2f}",
          first ? "" : ",\n", t, p.threads, p.inline_ms, p.stolen_ms,
          p.inline_ms / p.stolen_ms);
      first = false;
    }
  }
  std::printf("\n  ],\n");

  std::printf("  \"conv_lowering\": [\n");
  first = true;
  for (const LowerShape& ls : kLowerShapes) {
    if (quick && !ls.quick) continue;
    const LowerPoint p = bench_lowering(ls, reps);
    std::printf(
        "%s    {\"name\": \"%s\", \"fused_ms\": %.4f, "
        "\"materialized_ms\": %.4f, \"int8_ms\": %.4f, \"speedup\": %.2f, "
        "\"fused_arena_kb\": %lld, \"materialized_arena_kb\": %lld, "
        "\"int8_arena_kb\": %lld}",
        first ? "" : ",\n", p.name, p.fused_ms, p.materialized_ms, p.int8_ms,
        p.materialized_ms / p.fused_ms,
        static_cast<long long>(p.fused_arena_kb),
        static_cast<long long>(p.materialized_arena_kb),
        static_cast<long long>(p.int8_arena_kb));
    first = false;
  }
  std::printf("\n  ],\n");

  // Depthwise: SIMD row kernel vs scalar reference, and fused dw→pw vs the
  // two layers back to back. `flops` rides along so the regression gate can
  // apply its min-flop noise floor uniformly.
  std::printf("  \"depthwise\": [\n");
  first = true;
  for (const DwShape& ds : kDwShapes) {
    if (quick && !ds.quick) continue;
    const DwPoint p = bench_depthwise(ds, reps);
    std::printf(
        "%s    {\"name\": \"%s\", \"channels\": %lld, \"hw\": %lld, "
        "\"stride\": %lld, \"flops\": %.0f, \"scalar_ms\": %.4f, "
        "\"simd_ms\": %.4f, \"speedup\": %.2f}",
        first ? "" : ",\n", p.name, static_cast<long long>(ds.channels),
        static_cast<long long>(ds.hw), static_cast<long long>(ds.stride),
        p.flops, p.scalar_ms, p.simd_ms, p.scalar_ms / p.simd_ms);
    first = false;
  }
  std::printf("\n  ],\n");

  std::printf("  \"depthwise_fused\": [\n");
  first = true;
  for (const DwPwShape& s : kDwPwShapes) {
    if (quick && !s.quick) continue;
    const DwPwPoint p = bench_dwpw(s, reps);
    std::printf(
        "%s    {\"name\": \"%s\", \"channels\": %lld, \"out_c\": %lld, "
        "\"hw\": %lld, \"stride\": %lld, \"flops\": %.0f, "
        "\"unfused_ms\": %.4f, \"fused_ms\": %.4f, \"speedup\": %.2f}",
        first ? "" : ",\n", p.name, static_cast<long long>(s.channels),
        static_cast<long long>(s.out_c), static_cast<long long>(s.hw),
        static_cast<long long>(s.stride), p.flops, p.unfused_ms, p.fused_ms,
        p.unfused_ms / p.fused_ms);
    first = false;
  }
  std::printf("\n  ],\n");

  std::printf("  \"fused_conv\": [\n");
  std::vector<ConvPoint> convs;
  convs.push_back(bench_fused_conv("conv3x3_bn_relu_16c_32x32", 16, 32, reps));
  if (!quick) {
    convs.push_back(
        bench_fused_conv("conv3x3_bn_relu_64c_8x8", 64, 8, reps));
  }
  for (size_t i = 0; i < convs.size(); ++i) {
    std::printf(
        "    {\"name\": \"%s\", \"unfused_ms\": %.4f, \"fused_ms\": %.4f, "
        "\"speedup\": %.2f}%s\n",
        convs[i].name, convs[i].unfused_ms, convs[i].fused_ms,
        convs[i].unfused_ms / convs[i].fused_ms,
        i + 1 < convs.size() ? "," : "");
  }
  std::printf("  ]\n");
  std::printf("}\n");
  return 0;
}
