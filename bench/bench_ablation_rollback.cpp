// Ablation B — what rollback finalization (step 6) buys.
//
// Runs the pipeline with and without rollback on the same victim and
// compares: fused accuracy, attacker direct-use accuracy, architectural
// divergence (stages where arch(M_R) != arch(M_T)) and the REE model size.
// Without rollback the attacker can read M_T's architecture directly off
// M_R — divergence 0 — which is precisely the leak step 6 closes.

#include <cstdio>

#include "common.h"
#include "core/pipeline.h"

int main() {
  using namespace tbnet;
  bench::print_header("Ablation B: rollback finalization on/off");

  bench::Setup setup = bench::vgg18_cifar10(false);
  setup.model.depth = 11;  // same family, single-core-sized
  setup.label = "VGG11 / CIFAR10";
  setup.victim_train.epochs = 4;
  setup.pipeline.transfer.epochs = 4;
  setup.pipeline.prune.max_iterations = 2;

  const auto train = bench::train_set(setup);
  const auto test = bench::test_set(setup);
  nn::Sequential victim = models::build_victim(setup.model);
  models::train_classifier(victim, train, test, setup.victim_train);
  std::printf("victim: %s accuracy %s\n\n", setup.label.c_str(),
              bench::pct(models::evaluate(victim, test)).c_str());

  std::printf("%-16s | %10s %11s %12s %14s\n", "variant", "TBNet acc",
              "attack acc", "divergence", "M_R bytes");
  std::printf("%s\n", std::string(72, '-').c_str());
  for (const bool rollback : {false, true}) {
    core::TwoBranchModel model = models::build_two_branch(victim, setup.model);
    const auto points = models::prune_points(setup.model);
    core::PipelineConfig pc = setup.pipeline;
    pc.rollback = rollback;
    core::TbnetPipeline pipeline(pc);
    const core::PipelineReport r = pipeline.run(model, points, train, test);
    std::printf("%-16s | %10s %11s %9d/%zu %14s\n",
                rollback ? "with rollback" : "no rollback",
                bench::pct(r.final_acc).c_str(),
                bench::pct(r.attack_direct_acc).c_str(), r.arch_divergence,
                points.size(), bench::mib(r.exposed_bytes_final).c_str());
  }
  std::printf(
      "\nReading: rollback restores pre-prune parameters to M_R (slightly\n"
      "larger REE model, accuracy recovered) and makes every recently pruned\n"
      "interface diverge, so the TEE architecture cannot be inferred.\n");
  return 0;
}
