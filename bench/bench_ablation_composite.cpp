// Ablation A — why Alg. 1 sums the BN weights of both branches.
//
// Compares the paper's composite criterion |gamma_R + gamma_T| against
// single-branch alternatives on the same pipeline:
//   * composite (paper): channel importance = contribution of the *merged*
//     feature map, matching the element-wise fusion add;
//   * sum-of-abs |gamma_R| + |gamma_T|: close cousin, ignores cancellation;
//   * secure-only: prune by gamma_T alone (ignores what the REE contributes).
// Reported: fused accuracy after pruning and the secure-branch size.

#include <cstdio>

#include "common.h"
#include "core/pipeline.h"

namespace {

struct Variant {
  const char* name;
  tbnet::core::PruneConfig::Criterion criterion;
};

}  // namespace

int main() {
  using namespace tbnet;
  bench::print_header(
      "Ablation A: composite-BN pruning criterion (Alg. 1 line 4)");

  bench::Setup setup = bench::resnet20_cifar10(false);
  // Fresh, smaller runs (criterion is not part of the cache key).
  setup.model.width_mult = 0.25;
  setup.victim_train.epochs = 4;
  setup.pipeline.transfer.epochs = 4;
  setup.pipeline.prune.max_iterations = 2;

  const auto train = bench::train_set(setup);
  const auto test = bench::test_set(setup);
  nn::Sequential victim = models::build_victim(setup.model);
  models::train_classifier(victim, train, test, setup.victim_train);
  const double victim_acc = models::evaluate(victim, test);
  std::printf("victim: %s accuracy %s\n\n", setup.label.c_str(),
              bench::pct(victim_acc).c_str());

  const Variant variants[] = {
      {"composite |gR+gT| (paper)",
       core::PruneConfig::Criterion::kAbsCompositeSum},
      {"sum-of-abs |gR|+|gT|", core::PruneConfig::Criterion::kSumOfAbs},
  };
  std::printf("%-28s | %10s %10s %14s\n", "criterion", "TBNet acc",
              "iters", "M_T bytes");
  std::printf("%s\n", std::string(70, '-').c_str());
  for (const Variant& v : variants) {
    core::TwoBranchModel model = models::build_two_branch(victim, setup.model);
    const auto points = models::prune_points(setup.model);
    core::PipelineConfig pc = setup.pipeline;
    pc.prune.criterion = v.criterion;
    core::TbnetPipeline pipeline(pc);
    const core::PipelineReport r = pipeline.run(model, points, train, test);
    std::printf("%-28s | %10s %10d %14s\n", v.name,
                bench::pct(r.final_acc).c_str(), r.accepted_prune_iterations,
                bench::mib(r.secure_bytes_final).c_str());
  }
  std::printf(
      "\nReading: both criteria prune effectively on healthy models; the\n"
      "composite form is the faithful one because it ranks channels by the\n"
      "importance of the *fused* feature map the TEE actually consumes.\n");
  return 0;
}
