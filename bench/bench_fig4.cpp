// Fig. 4 — distribution of BatchNorm scale weights (gamma) in M_R and M_T
// after knowledge transfer. The paper's observation: knowledge is
// distributed across both branches, and M_R's gammas concentrate at lower
// values than M_T's (channels with small gammas contribute less), i.e. the
// secure branch absorbs the larger share of importance.
//
// This harness re-runs step 1-2 only (initialization + knowledge transfer,
// no pruning) and prints the two gamma histograms plus summary statistics.

#include <cmath>
#include <cstdio>

#include "common.h"
#include "core/knowledge_transfer.h"
#include "models/trainer.h"

int main() {
  using namespace tbnet;
  const bool paper_scale = bench::paper_scale_requested();
  bench::print_header(
      "Fig. 4: BN scale (gamma) distributions after knowledge transfer");

  bench::Setup setup = bench::vgg18_cifar10(paper_scale);
  if (!paper_scale) {
    // Single-core CI budget: the gamma-distribution shift is visible after a
    // few epochs because lambda is scaled up (see bench/common.cpp).
    setup.victim_train.epochs = 5;
    setup.pipeline.transfer.epochs = 6;
  }
  const auto train = bench::train_set(setup);
  const auto test = bench::test_set(setup);

  std::printf("[build] %s victim + knowledge transfer (no pruning)\n",
              setup.label.c_str());
  nn::Sequential victim = models::build_victim(setup.model);
  models::train_classifier(victim, train, test, setup.victim_train);

  core::TwoBranchModel model = models::build_two_branch(victim, setup.model);
  const auto points = models::prune_points(setup.model);
  core::knowledge_transfer(model, points, train, test,
                           setup.pipeline.transfer);

  const core::BnGammas g = core::collect_bn_gammas(model, points);
  std::printf("\n");
  bench::print_histogram("gamma distribution, M_R (exposed branch)",
                         g.exposed);
  std::printf("\n");
  bench::print_histogram("gamma distribution, M_T (secure branch)", g.secure);

  auto mean = [](const std::vector<float>& v) {
    double s = 0;
    for (float x : v) s += x;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
  };
  const double mean_r = mean(g.exposed), mean_t = mean(g.secure);
  std::printf("\nmean gamma: M_R %.4f vs M_T %.4f\n", mean_r, mean_t);
  std::printf(
      "Shape check: on average M_R channels carry lower BN weights than\n"
      "M_T's (knowledge shifted into the secure branch): %s\n",
      mean_r < mean_t ? "yes" : "NO (investigate)");
  return 0;
}
