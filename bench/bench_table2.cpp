// Table 2 — necessity of the unsecured branch: compare TBNet's fused
// accuracy against the best possible standalone M_T (same secure branch,
// retrained on the full training set with no REE contribution).
//
// Paper: VGG18 91.29% -> 87.57% (drop 3.72%), ResNet20 92.27% -> 89.41%
// (drop 2.86%) on CIFAR10 — i.e. the intermediate results transmitted from
// the REE are necessary for full performance.

#include <cstdio>

#include "common.h"
#include "core/knowledge_transfer.h"

int main() {
  using namespace tbnet;
  const bool paper_scale = bench::paper_scale_requested();
  bench::print_header(
      "Table 2: TBNet vs. best-possible standalone M_T (CIFAR10)");

  const bench::Setup setups[] = {
      bench::vgg18_cifar10(paper_scale),
      bench::resnet20_cifar10(paper_scale),
  };
  const double paper_tbnet[] = {91.29, 92.27};
  const double paper_mt[] = {87.57, 89.41};

  std::printf("%-22s | %10s %14s %9s | paper (TBNet/M_T/drop)\n",
              "Model", "TBNet", "M_T alone", "Drop");
  std::printf("%s\n", std::string(92, '-').c_str());
  for (size_t i = 0; i < 2; ++i) {
    const bench::Artifacts a = bench::get_or_build(setups[i]);
    const auto train = bench::train_set(setups[i]);
    const auto test = bench::test_set(setups[i]);

    // Remove M_R; retrain M_T standalone with the entire training dataset.
    core::TwoBranchModel standalone = a.model.clone();
    core::TransferConfig rc;
    rc.epochs = 4;
    rc.batch_size = 64;
    rc.lr = 0.02;
    rc.lambda = 0.0;
    rc.augment = false;
    const auto r = core::retrain_secure_standalone(standalone, train, test, rc);

    const double drop = a.report.final_acc - r.final_acc;
    std::printf("%-22s | %10s %14s %9s | %.2f/%.2f/%.2f\n",
                setups[i].label.c_str(),
                bench::pct(a.report.final_acc).c_str(),
                bench::pct(r.final_acc).c_str(), bench::pct(drop).c_str(),
                paper_tbnet[i], paper_mt[i], paper_tbnet[i] - paper_mt[i]);
  }
  std::printf(
      "\nShape check: a positive drop means the REE branch's intermediate\n"
      "results contribute to accuracy — the unsecured branch is necessary.\n");
  return 0;
}
