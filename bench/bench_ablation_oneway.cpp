// Ablation C — why one-way context switching matters (paper §2.3 + §3.2).
//
// DarkneTZ-style layer partitioning exposes both the inputs entering the TEE
// (plaintext feature maps in REE memory) and the outputs it releases; the
// substitute-layer attack distills the hidden layers from those pairs and
// approaches victim accuracy. TBNet's one-way design removes the pairs
// entirely: the attacker is reduced to the (much weaker) direct use of M_R.
// The OneWayChannel also mechanically rejects any TEE->REE payload.

#include <cstdio>

#include "attack/attacks.h"
#include "common.h"
#include "runtime/deployed.h"
#include "tee/optee_api.h"

int main() {
  using namespace tbnet;
  bench::print_header(
      "Ablation C: one-way vs. two-way transfers under substitute attack");

  const bench::Setup setup = bench::vgg18_cifar10(false);
  const bench::Artifacts a = bench::get_or_build(setup);
  const auto train = bench::train_set(setup);
  const auto test = bench::test_set(setup);
  const double victim_acc = a.victim_acc;

  // --- Prior art: partition deployment (last 3 stages in the TEE). -------
  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  nn::Sequential victim = a.victim;  // deep copy
  runtime::PartitionDeployment partition(victim, victim.size() - 3, ctx);

  attack::SubstituteConfig sc;
  sc.query_budget = 160;
  sc.train.epochs = 8;
  sc.train.batch_size = 64;
  sc.train.lr = 0.02;
  sc.train.augment = false;
  const attack::SubstituteResult sub =
      attack::substitute_layer_attack(partition, victim, train, test, sc);

  // --- TBNet: the same attacker only has M_R. -----------------------------
  core::TwoBranchModel model = a.model.clone();
  const double direct = attack::direct_use_accuracy(model, test);

  std::printf("victim accuracy: %s\n\n", bench::pct(victim_acc).c_str());
  std::printf("%-44s | %10s\n", "attack scenario", "stolen acc");
  std::printf("%s\n", std::string(60, '-').c_str());
  std::printf("%-44s | %10s\n",
              "partition (two-way): substitute-layer attack",
              bench::pct(sub.accuracy).c_str());
  std::printf("%-44s | %10s\n", "TBNet (one-way): direct use of M_R",
              bench::pct(direct).c_str());
  std::printf("\nqueries used by the substitute attack: %d\n",
              sub.queries_used);

  // --- Mechanical enforcement demo. ---------------------------------------
  tee::OneWayChannel channel;  // TBNet policy
  bool blocked = false;
  try {
    channel.push(tee::World::kSecure, tee::World::kNormal, 64 * 1024);
  } catch (const tee::SecurityViolation&) {
    blocked = true;
  }
  std::printf(
      "\nOneWayChannel: 64 KiB TEE->REE feature-map push %s.\n",
      blocked ? "rejected (SecurityViolation)" : "ALLOWED (bug!)");
  std::printf(
      "Shape check: substitute attack recovers most of the victim on the\n"
      "partition baseline but has no input/output pairs to train on under\n"
      "TBNet: %s\n",
      (sub.accuracy > direct && blocked) ? "yes" : "NO (investigate)");
  return 0;
}
