// Fig. 3 — TEE secure memory usage: full victim in the TEE (baseline) vs.
// TBNet's secure branch M_T, for all four model/dataset pairs. The paper
// reports reductions of 1.68x / 2.45x / 1.46x / 1.9x; the 2.45x headline is
// VGG18/CIFAR10.
//
// Accounting: model parameters + BN buffers + peak activation working set,
// byte-accurate from the layer shapes (runtime::measure_*), matching what
// the simulated trusted application actually allocates from the
// SecureMemoryPool during inference.

#include <cstdio>
#include <string>

#include "common.h"
#include "runtime/measurements.h"

int main() {
  using namespace tbnet;
  const bool paper_scale = bench::paper_scale_requested();
  bench::print_header("Fig. 3: secure (TEE) memory usage, baseline vs. TBNet");

  const bench::Setup setups[] = {
      bench::vgg18_cifar10(paper_scale),
      bench::resnet20_cifar10(paper_scale),
      bench::vgg18_cifar100(paper_scale),
      bench::resnet20_cifar100(paper_scale),
  };
  const double paper_reduction[] = {2.45, 1.9, 1.68, 1.46};

  std::printf("%-22s | %14s %14s %10s | paper\n", "Model / Dataset",
              "Baseline", "TBNet M_T", "Reduction");
  std::printf("%s\n", std::string(88, '-').c_str());
  for (size_t i = 0; i < 4; ++i) {
    const bench::Artifacts a = bench::get_or_build(setups[i]);
    const Shape img{3, 32, 32};
    const auto vfp = runtime::measure_victim(a.victim, img);
    const auto tfp = runtime::measure_two_branch(a.model, img);
    const double reduction = static_cast<double>(vfp.total_bytes) /
                             static_cast<double>(tfp.secure_total_bytes);
    std::printf("%-22s | %14s %14s %9.2fx | %.2fx\n", setups[i].label.c_str(),
                bench::mib(vfp.total_bytes).c_str(),
                bench::mib(tfp.secure_total_bytes).c_str(), reduction,
                paper_reduction[i]);
    // Bar chart, scaled to the baseline.
    const int base_bar = 48;
    const int tb_bar = static_cast<int>(
        base_bar * static_cast<double>(tfp.secure_total_bytes) /
        static_cast<double>(vfp.total_bytes));
    std::printf("  baseline |%s\n",
                std::string(static_cast<size_t>(base_bar), '#').c_str());
    std::printf("  tbnet    |%s\n",
                std::string(static_cast<size_t>(tb_bar), '#').c_str());
  }
  std::printf(
      "\nShape check: TBNet's M_T always needs less secure memory than the\n"
      "whole victim; the reduction grows with how far pruning could go.\n");
  return 0;
}
