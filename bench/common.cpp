#include "common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "nn/serialize.h"

namespace tbnet::bench {
namespace {

constexpr const char* kCacheDir = "tbnet_bench_cache";
constexpr uint32_t kCacheVersion = 6;

uint64_t fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

Setup base_setup(bool scale_up) {
  Setup s;
  if (scale_up) {
    s.train_size = 4000;
    s.test_size = 1000;
  }
  // Victim recipe: the paper's SGD(momentum 0.9, weight decay 1e-4) with
  // step LR; the base lr is scaled down from the paper's 0.1 — these CPU
  // configurations are ~100x smaller and deep narrow VGGs diverge at 0.1.
  s.victim_train.epochs = scale_up ? 30 : 8;
  s.victim_train.batch_size = 64;
  s.victim_train.lr = 0.02;
  s.victim_train.momentum = 0.9;
  s.victim_train.weight_decay = 1e-4;
  s.victim_train.lr_step = scale_up ? 20 : 100;
  s.victim_train.augment = false;
  s.victim_train.seed = 17;

  // Step 2: knowledge transfer. The paper uses lambda = 1e-4 over hundreds
  // of epochs; the sparsity displacement integrates lambda * lr * steps, so
  // the short CI-scale runs use a proportionally larger lambda to land at
  // the same operating point (paper value under TBNET_BENCH_SCALE=paper).
  s.pipeline.transfer.epochs = scale_up ? 20 : 8;
  s.pipeline.transfer.batch_size = 64;
  s.pipeline.transfer.lr = 0.03;
  s.pipeline.transfer.lambda = scale_up ? 1e-4 : 2e-3;
  s.pipeline.transfer.augment = false;
  s.pipeline.transfer.seed = 19;

  // Steps 3-5: p = 10%, theta_drop scaled to the noisier small runs.
  s.pipeline.prune.ratio = 0.10;
  s.pipeline.prune.acc_drop_budget = scale_up ? 0.02 : 0.06;
  s.pipeline.prune.max_iterations = scale_up ? 8 : 4;
  s.pipeline.prune.min_channels = 2;
  s.pipeline.prune.finetune.epochs = scale_up ? 3 : 1;
  s.pipeline.prune.finetune.batch_size = 64;
  s.pipeline.prune.finetune.lr = 0.02;
  s.pipeline.prune.finetune.lambda = 1e-4;
  s.pipeline.prune.finetune.augment = false;

  // Step 6 + recovery fine-tune of M_T (M_R frozen).
  s.pipeline.rollback = true;
  s.pipeline.recovery.epochs = scale_up ? 3 : 2;
  s.pipeline.recovery.batch_size = 64;
  s.pipeline.recovery.lr = 0.02;
  s.pipeline.recovery.lambda = 0.0;
  s.pipeline.recovery.augment = false;
  return s;
}

}  // namespace

bool paper_scale_requested() {
  const char* v = std::getenv("TBNET_BENCH_SCALE");
  return v != nullptr && std::string(v) == "paper";
}

Setup vgg18_cifar10(bool scale_up) {
  Setup s = base_setup(scale_up);
  s.label = "VGG18 / CIFAR10";
  s.dataset_label = "CIFAR10";
  s.model.family = models::Family::kVgg;
  s.model.depth = 18;
  s.model.classes = 10;
  s.model.width_mult = scale_up ? 0.5 : 0.125;
  s.model.seed = 101;
  s.classes = 10;
  return s;
}

Setup vgg18_cifar100(bool scale_up) {
  Setup s = vgg18_cifar10(scale_up);
  // Scaled stand-in for CIFAR-100: more classes, same geometry. 25 classes
  // keeps per-class sample counts workable at CI scale; the trend the paper
  // reports (more classes -> lower absolute accuracy, larger security gap)
  // is preserved. TBNET_BENCH_SCALE=paper uses the full 100.
  s.label = "VGG18 / CIFAR100";
  s.dataset_label = "CIFAR100";
  s.classes = scale_up ? 100 : 20;
  s.model.classes = s.classes;
  s.data_seed = 78;
  return s;
}

Setup resnet20_cifar10(bool scale_up) {
  Setup s = base_setup(scale_up);
  s.label = "ResNet20 / CIFAR10";
  s.dataset_label = "CIFAR10";
  s.model.family = models::Family::kResNet;
  s.model.depth = 20;
  s.model.classes = 10;
  s.model.width_mult = scale_up ? 1.0 : 0.25;
  s.model.seed = 202;
  s.classes = 10;
  return s;
}

Setup resnet20_cifar100(bool scale_up) {
  Setup s = resnet20_cifar10(scale_up);
  s.label = "ResNet20 / CIFAR100";
  s.dataset_label = "CIFAR100";
  s.classes = scale_up ? 100 : 20;
  s.model.classes = s.classes;
  s.data_seed = 79;
  return s;
}

std::string Setup::key() const {
  std::ostringstream os;
  os << kCacheVersion << '|' << label << '|'
     << static_cast<int>(model.family) << '|' << model.depth << '|'
     << model.classes << '|' << model.width_mult << '|' << model.seed << '|'
     << classes << '|' << train_size << '|' << test_size << '|' << difficulty
     << '|' << data_seed << '|' << victim_train.epochs << '|'
     << victim_train.lr << '|' << pipeline.transfer.epochs << '|'
     << pipeline.transfer.lambda << '|' << pipeline.prune.ratio << '|'
     << pipeline.prune.max_iterations << '|'
     << pipeline.prune.acc_drop_budget << '|' << pipeline.recovery.epochs;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fnv1a(os.str())));
  return buf;
}

data::SyntheticCifar train_set(const Setup& s) {
  data::SyntheticCifar::Options opt;
  opt.classes = s.classes;
  opt.samples = s.train_size;
  opt.image_size = 32;
  opt.seed = s.data_seed;
  opt.split = 0;
  opt.difficulty = s.difficulty;
  return data::SyntheticCifar(opt);
}

data::SyntheticCifar test_set(const Setup& s) {
  data::SyntheticCifar::Options opt;
  opt.classes = s.classes;
  opt.samples = s.test_size;
  opt.image_size = 32;
  opt.seed = s.data_seed;
  opt.split = 1;
  opt.difficulty = s.difficulty;
  return data::SyntheticCifar(opt);
}

namespace {

void write_report(std::ostream& os, const core::PipelineReport& r,
                  double victim_acc) {
  const double vals[] = {victim_acc,
                         r.transfer_acc,
                         r.pruned_acc,
                         r.final_acc,
                         r.attack_direct_acc,
                         static_cast<double>(r.accepted_prune_iterations),
                         static_cast<double>(r.rollback_applied ? 1 : 0),
                         static_cast<double>(r.remapped_stages),
                         static_cast<double>(r.arch_divergence),
                         static_cast<double>(r.secure_bytes_initial),
                         static_cast<double>(r.secure_bytes_final),
                         static_cast<double>(r.exposed_bytes_final)};
  os.write(reinterpret_cast<const char*>(vals), sizeof(vals));
}

void read_report(std::istream& is, core::PipelineReport* r,
                 double* victim_acc) {
  double vals[12] = {};
  is.read(reinterpret_cast<char*>(vals), sizeof(vals));
  if (!is) throw std::runtime_error("bench cache: truncated report");
  *victim_acc = vals[0];
  r->transfer_acc = vals[1];
  r->pruned_acc = vals[2];
  r->final_acc = vals[3];
  r->attack_direct_acc = vals[4];
  r->accepted_prune_iterations = static_cast<int>(vals[5]);
  r->rollback_applied = vals[6] != 0.0;
  r->remapped_stages = static_cast<int>(vals[7]);
  r->arch_divergence = static_cast<int>(vals[8]);
  r->secure_bytes_initial = static_cast<int64_t>(vals[9]);
  r->secure_bytes_final = static_cast<int64_t>(vals[10]);
  r->exposed_bytes_final = static_cast<int64_t>(vals[11]);
}

}  // namespace

Artifacts get_or_build(const Setup& s, bool verbose) {
  namespace fs = std::filesystem;
  fs::create_directories(kCacheDir);
  const fs::path path = fs::path(kCacheDir) / (s.key() + ".bin");

  if (fs::exists(path)) {
    std::ifstream f(path, std::ios::binary);
    if (f) {
      try {
        Artifacts a;
        auto victim = nn::load_model(f);
        auto* seq = dynamic_cast<nn::Sequential*>(victim.get());
        if (seq == nullptr) throw std::runtime_error("bad victim in cache");
        a.victim = std::move(*seq);
        a.model = core::load_two_branch(f);
        read_report(f, &a.report, &a.victim_acc);
        if (verbose) {
          std::printf("[cache] %s <- %s\n", s.label.c_str(),
                      path.string().c_str());
        }
        return a;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[cache] %s unreadable (%s); rebuilding\n",
                     path.string().c_str(), e.what());
      }
    }
  }

  if (verbose) {
    std::printf("[build] %s (victim %d epochs, transfer %d epochs, <=%d prune iters)\n",
                s.label.c_str(), s.victim_train.epochs,
                s.pipeline.transfer.epochs, s.pipeline.prune.max_iterations);
    std::fflush(stdout);
  }
  const data::SyntheticCifar train = train_set(s);
  const data::SyntheticCifar test = test_set(s);

  Artifacts a;
  a.victim = models::build_victim(s.model);
  models::train_classifier(a.victim, train, test, s.victim_train);
  a.victim_acc = models::evaluate(a.victim, test);

  a.model = models::build_two_branch(a.victim, s.model);
  const auto points = models::prune_points(s.model);
  core::TbnetPipeline pipeline(s.pipeline);
  a.report = pipeline.run(a.model, points, train, test);

  std::ofstream f(path, std::ios::binary);
  if (f) {
    nn::save_model(f, a.victim);
    core::save_two_branch(f, a.model);
    write_report(f, a.report, a.victim_acc);
  }
  return a;
}

void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

std::string pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%6.2f%%", 100.0 * fraction);
  return buf;
}

std::string mib(int64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f MiB",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

void print_histogram(const std::string& title,
                     const std::vector<float>& values, int bins) {
  if (values.empty()) return;
  float lo = values[0], hi = values[0];
  for (float v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi - lo < 1e-9f) hi = lo + 1e-9f;
  std::vector<int> counts(static_cast<size_t>(bins), 0);
  for (float v : values) {
    int b = static_cast<int>((v - lo) / (hi - lo) * bins);
    b = std::clamp(b, 0, bins - 1);
    counts[static_cast<size_t>(b)]++;
  }
  const int max_count = *std::max_element(counts.begin(), counts.end());
  std::printf("%s  (n=%zu, min=%.4f, max=%.4f)\n", title.c_str(),
              values.size(), lo, hi);
  for (int b = 0; b < bins; ++b) {
    const float left = lo + (hi - lo) * static_cast<float>(b) / bins;
    const int width =
        max_count > 0 ? counts[static_cast<size_t>(b)] * 50 / max_count : 0;
    std::printf("  %8.4f | %-50s %d\n", left,
                std::string(static_cast<size_t>(width), '#').c_str(),
                counts[static_cast<size_t>(b)]);
  }
}

}  // namespace tbnet::bench
