// Tests for the attacker toolkit: extraction, direct use, fine-tuning and
// the substitute-layer attack against partition baselines.

#include <gtest/gtest.h>

#include "attack/attacks.h"
#include "core/knowledge_transfer.h"
#include "data/synthetic_cifar.h"
#include "models/model_zoo.h"
#include "models/trainer.h"
#include "tee/optee_api.h"

namespace tbnet::attack {
namespace {

models::ModelConfig tiny_cfg(int64_t classes = 4) {
  models::ModelConfig cfg;
  cfg.family = models::Family::kVgg;
  cfg.depth = 11;
  cfg.classes = classes;
  cfg.width_mult = 0.125;
  cfg.seed = 13;
  return cfg;
}

data::SyntheticCifar tiny_set(int64_t n, uint32_t split, int64_t classes = 4) {
  data::SyntheticCifar::Options opt;
  opt.classes = classes;
  opt.samples = n;
  opt.image_size = 32;
  opt.seed = 31;
  opt.split = split;
  opt.difficulty = 0.25;
  return data::SyntheticCifar(opt);
}

TEST(Extraction, MatchesExposedOnlyForward) {
  const auto cfg = tiny_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
  nn::Sequential stolen = extract_exposed_model(tb);
  Rng rng(1);
  Tensor x = Tensor::randn(Shape{2, 3, 32, 32}, rng);
  EXPECT_TRUE(allclose(stolen.forward(x, false),
                       tb.forward_exposed_only(x, false), 0.0f, 0.0f));
}

TEST(Extraction, IsACopyNotAView) {
  const auto cfg = tiny_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
  nn::Sequential stolen = extract_exposed_model(tb);
  (*tb.params_exposed()[0].value)[0] += 10.0f;
  Rng rng(2);
  Tensor x = Tensor::randn(Shape{1, 3, 32, 32}, rng);
  EXPECT_FALSE(allclose(stolen.forward(x, false),
                        tb.forward_exposed_only(x, false)));
}

TEST(DirectUse, EqualsEvaluateOfExtractedModel) {
  const auto cfg = tiny_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
  const auto test = tiny_set(60, 1);
  nn::Sequential stolen = extract_exposed_model(tb);
  EXPECT_DOUBLE_EQ(direct_use_accuracy(tb, test),
                   models::evaluate(stolen, test));
}

TEST(FineTune, ImprovesOverDirectUseWithFullData) {
  const auto cfg = tiny_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  // Give the victim (hence M_R) some skill first, then damage is visible.
  const auto train = tiny_set(160, 0);
  const auto test = tiny_set(80, 1);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);

  FineTuneConfig ft;
  ft.train.epochs = 3;
  ft.train.batch_size = 32;
  ft.train.lr = 0.05;
  ft.train.augment = false;
  const double direct = direct_use_accuracy(tb, test);
  const FineTuneResult r = fine_tune_attack(tb, train, test, 1.0, ft);
  EXPECT_EQ(r.fraction, 1.0);
  EXPECT_GT(r.accuracy, direct);
  EXPECT_GT(r.accuracy, 0.3);  // chance = 0.25
}

TEST(FineTune, SweepReturnsOnePointPerFraction) {
  const auto cfg = tiny_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
  const auto train = tiny_set(80, 0);
  const auto test = tiny_set(40, 1);
  FineTuneConfig ft;
  ft.train.epochs = 1;
  ft.train.batch_size = 32;
  ft.train.augment = false;
  const auto sweep = fine_tune_sweep(tb, train, test, {0.1, 0.5, 1.0}, ft);
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_DOUBLE_EQ(sweep[0].fraction, 0.1);
  EXPECT_DOUBLE_EQ(sweep[2].fraction, 1.0);
  for (const auto& p : sweep) {
    EXPECT_GE(p.accuracy, 0.0);
    EXPECT_LE(p.accuracy, 1.0);
  }
}

TEST(FineTune, MoreDataHelpsTheAttacker) {
  // The qualitative shape of paper Fig. 2: attacker accuracy grows with
  // data availability (compare the extremes to dodge training noise).
  const auto cfg = tiny_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  const auto train = tiny_set(200, 0);
  const auto test = tiny_set(80, 1);
  models::TrainConfig vt;
  vt.epochs = 3;
  vt.batch_size = 32;
  vt.augment = false;
  models::train_classifier(victim, train, test, vt);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);

  FineTuneConfig ft;
  ft.train.epochs = 2;
  ft.train.batch_size = 32;
  ft.train.lr = 0.02;
  ft.train.augment = false;
  const auto sweep = fine_tune_sweep(tb, train, test, {0.02, 1.0}, ft);
  EXPECT_GE(sweep[1].accuracy + 0.05, sweep[0].accuracy);
}

TEST(Substitute, BreaksPartitionDeployment) {
  // The §2.3 story: with plaintext (input, output) pairs of the TEE layers,
  // the attacker distills substitute layers approaching victim accuracy —
  // this is exactly why TBNet enforces one-way transfers.
  const auto cfg = tiny_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  const auto train = tiny_set(200, 0);
  const auto test = tiny_set(80, 1);
  models::TrainConfig vt;
  vt.epochs = 4;
  vt.batch_size = 32;
  vt.augment = false;
  models::train_classifier(victim, train, test, vt);
  const double victim_acc = models::evaluate(victim, test);

  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  runtime::PartitionDeployment deployment(victim, victim.size() - 3, ctx);

  SubstituteConfig sc;
  sc.query_budget = 160;
  sc.train.epochs = 12;
  sc.train.batch_size = 32;
  sc.train.lr = 0.02;
  sc.train.augment = false;
  const SubstituteResult r =
      substitute_layer_attack(deployment, victim, train, test, sc);
  EXPECT_EQ(r.queries_used, 160);
  // The stolen model recovers most of the victim's skill.
  EXPECT_GT(r.accuracy, 0.5 * victim_acc);
  EXPECT_GT(r.accuracy, 0.3);  // well above chance
}

TEST(Substitute, ZeroQueriesYieldsNothing) {
  const auto cfg = tiny_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  const auto test = tiny_set(40, 1);
  data::SyntheticCifar::Options empty_opt;
  empty_opt.classes = 4;
  empty_opt.samples = 0;
  empty_opt.image_size = 32;
  const data::SyntheticCifar empty(empty_opt);
  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  runtime::PartitionDeployment deployment(victim, 3, ctx);
  SubstituteConfig sc;
  sc.train.epochs = 1;
  const SubstituteResult r =
      substitute_layer_attack(deployment, victim, empty, test, sc);
  EXPECT_EQ(r.queries_used, 0);
  EXPECT_EQ(r.accuracy, 0.0);
}

}  // namespace
}  // namespace tbnet::attack
