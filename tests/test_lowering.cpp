// Tests for the zero-materialization conv lowering path and the
// multi-threaded packed GEMM driver: fused im2col→panel producer vs the
// materialized column matrix (bit parity across edge geometries), the direct
// 1x1 in-place path, arena high-water accounting (no column buffer on the
// packed path), pool-size determinism, the packed gemm_tn variant, and the
// DepthwiseConv2d bias (model format v2, loader back-compat).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/two_branch.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/depthwise.h"
#include "nn/fuse.h"
#include "nn/sequential.h"
#include "nn/serialize.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/pack.h"
#include "tensor/rng.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"
#include "tensor/threadpool.h"

namespace tbnet {
namespace {

void expect_close(const Tensor& got, const Tensor& want, float rtol = 1e-4f,
                  float atol = 1e-5f) {
  ASSERT_EQ(got.shape(), want.shape());
  for (int64_t i = 0; i < got.numel(); ++i) {
    const float tol = atol + rtol * std::fabs(want[i]);
    ASSERT_NEAR(got[i], want[i], tol) << "at flat index " << i;
  }
}

struct ConvCase {
  const char* name;
  int64_t in_c, out_c, ih, iw, kernel, stride, pad;
};

// Edge geometries: padding, stride 2, 1x1 (direct and strided), a kernel
// wider than the pad, ragged oh*ow (not a multiple of the vector width),
// k < kBlockK and k crossing the packed driver's k-block (in_c*9 > 640).
const ConvCase kConvCases[] = {
    {"stem_3x3_pad1", 3, 16, 32, 32, 3, 1, 1},
    {"ragged_3x3_pad1", 8, 6, 11, 9, 3, 1, 1},
    {"ragged_3x3_stride2", 8, 6, 11, 9, 3, 2, 1},
    {"k5_pad2", 4, 5, 7, 7, 5, 1, 2},
    {"pw_1x1_direct", 16, 8, 8, 8, 1, 1, 0},
    {"pw_1x1_stride2", 16, 8, 9, 9, 1, 2, 0},
    {"deep_k_crosses_block", 80, 4, 8, 8, 3, 1, 1},
    {"no_pad_3x3", 2, 3, 6, 6, 3, 1, 0},
};

/// The materialized packed path the fused lowering replaced: full im2col
/// into a column buffer, consumed in place by the packed driver. Identical
/// values in identical accumulation order — the fused path must match it
/// bit for bit.
Tensor conv_materialized_packed(const ExecutionContext& ctx,
                                const nn::Conv2d& conv, const Conv2dGeom& g,
                                const Tensor& x) {
  const int64_t rows = g.col_rows(), cols = g.col_cols();
  const int64_t out_c = conv.out_channels();
  std::vector<float> colbuf(static_cast<size_t>(rows * cols));
  std::vector<float> apack(
      static_cast<size_t>(packdetail::packed_a_floats(out_c, rows)));
  packdetail::pack_a_rowmajor(out_c, rows, conv.weight().data(), rows,
                              apack.data());
  const int64_t n = x.dim(0);
  Tensor out(Shape{n, out_c, g.out_h(), g.out_w()});
  const int64_t in_stride = g.in_c * g.in_h * g.in_w;
  for (int64_t i = 0; i < n; ++i) {
    im2col(g, x.data() + i * in_stride, colbuf.data());
    packdetail::run_packed_b_rowmajor(ctx.pool(), out_c, cols, rows, 1.0f,
                                      apack.data(), colbuf.data(), cols, 0.0f,
                                      out.data() + i * out_c * cols, cols,
                                      GemmEpilogue{});
  }
  return out;
}

Conv2dGeom geom_of(const ConvCase& c) {
  Conv2dGeom g;
  g.in_c = c.in_c;
  g.in_h = c.ih;
  g.in_w = c.iw;
  g.kernel_h = g.kernel_w = c.kernel;
  g.stride_h = g.stride_w = c.stride;
  g.pad_h = g.pad_w = c.pad;
  return g;
}

// ------------------------------------------------ fused lowering parity ----

TEST(FusedLowering, PanelProducerMatchesMaterializedIm2col) {
  // Pure data check, independent of the kernel mode: every panel the fused
  // producer writes must hold exactly the bytes the materialized column
  // matrix holds at the same coordinates.
  Rng rng(21);
  for (const ConvCase& c : kConvCases) {
    const Conv2dGeom g = geom_of(c);
    const Tensor img = Tensor::randn(Shape{c.in_c, c.ih, c.iw}, rng);
    const int64_t rows = g.col_rows(), cols = g.col_cols();
    std::vector<float> colbuf(static_cast<size_t>(rows * cols));
    im2col(g, img.data(), colbuf.data());
    const int64_t stride = simd::kNR;
    std::vector<float> panel(static_cast<size_t>(stride));
    for (int64_t kk : {int64_t{0}, rows / 2, rows - 1}) {
      for (int64_t j0 = 0; j0 < cols; j0 += stride) {
        const int nr = static_cast<int>(std::min<int64_t>(stride, cols - j0));
        const int64_t kc = std::min<int64_t>(rows - kk, 3);
        panel.assign(static_cast<size_t>(kc * stride), -7.0f);
        im2col_pack_panel(g, img.data(), kk, kc, j0, nr, stride, panel.data());
        for (int64_t p = 0; p < kc; ++p) {
          for (int64_t j = 0; j < stride; ++j) {
            const float want =
                j < nr ? colbuf[static_cast<size_t>((kk + p) * cols + j0 + j)]
                       : 0.0f;
            ASSERT_EQ(panel[static_cast<size_t>(p * stride + j)], want)
                << c.name << " kk=" << kk << " j0=" << j0 << " p=" << p
                << " j=" << j;
          }
        }
      }
    }
  }
}

TEST(FusedLowering, ConvForwardMatchesMaterializedBitwise) {
  if (!simd::fast_kernels_enabled()) {
    GTEST_SKIP() << "TBNET_DETERMINISTIC=1 runs the materializing reference "
                    "path itself";
  }
  ExecutionContext ctx;
  Rng rng(22);
  for (const ConvCase& c : kConvCases) {
    nn::Conv2d conv(c.in_c, c.out_c,
                    {.kernel = c.kernel, .stride = c.stride, .pad = c.pad,
                     .bias = false},
                    rng);
    const Conv2dGeom g = geom_of(c);
    const Tensor x = Tensor::randn(Shape{2, c.in_c, c.ih, c.iw}, rng);
    const Tensor got = conv.forward(ctx, x, false);
    const Tensor want = conv_materialized_packed(ctx, conv, g, x);
    ASSERT_EQ(got.shape(), want.shape()) << c.name;
    for (int64_t i = 0; i < got.numel(); ++i) {
      ASSERT_EQ(got[i], want[i]) << c.name << " at " << i;
    }
  }
}

TEST(FusedLowering, ConvForwardMatchesScalarReference) {
  // Cross-implementation tolerance check (FMA vs scalar): ~1e-6 relative at
  // these CIFAR-scale depths; the suite-wide 1e-4 bound is asserted.
  ExecutionContext ctx;
  Rng rng(23);
  for (const ConvCase& c : kConvCases) {
    nn::Conv2d conv(c.in_c, c.out_c,
                    {.kernel = c.kernel, .stride = c.stride, .pad = c.pad,
                     .bias = false},
                    rng);
    const Conv2dGeom g = geom_of(c);
    const int64_t rows = g.col_rows(), cols = g.col_cols();
    const Tensor x = Tensor::randn(Shape{1, c.in_c, c.ih, c.iw}, rng);
    const Tensor got = conv.forward(ctx, x, false);
    std::vector<float> colbuf(static_cast<size_t>(rows * cols));
    im2col(g, x.data(), colbuf.data());
    Tensor want(got.shape());
    gemm_nn_reference(ctx, c.out_c, cols, rows, 1.0f, conv.weight().data(),
                      colbuf.data(), 0.0f, want.data());
    expect_close(got, want);
  }
}

// ------------------------------------------------ arena accounting ---------

TEST(FusedLowering, ConvForwardDoesNotMaterializeColumnMatrix) {
  if (!simd::fast_kernels_enabled()) {
    GTEST_SKIP() << "the deterministic reference path materializes by design";
  }
  Rng rng(24);
  nn::Conv2d conv(16, 16, {.kernel = 3, .stride = 1, .pad = 1, .bias = false},
                  rng);
  const Tensor x = Tensor::randn(Shape{1, 16, 32, 32}, rng);
  ExecutionContext ctx;
  conv.forward(ctx, x, false);
  // PR-2 allocated the full [in_c*kh*kw, oh*ow] column matrix from the
  // arena; the fused path's high-water mark is the per-call A pack plus the
  // per-chunk panel slabs — an order of magnitude below it.
  const int64_t colbuf_floats = 16 * 3 * 3 * 32 * 32;
  EXPECT_GT(ctx.arena().capacity_floats(), 0);
  EXPECT_LT(ctx.arena().capacity_floats(), colbuf_floats / 2);
}

TEST(FusedLowering, Direct1x1UsesInputInPlace) {
  if (!simd::fast_kernels_enabled()) {
    GTEST_SKIP() << "reference-mode arena use differs";
  }
  Rng rng(25);
  nn::Conv2d conv(64, 64, {.kernel = 1, .stride = 1, .pad = 0, .bias = false},
                  rng);
  const Tensor x = Tensor::randn(Shape{1, 64, 32, 32}, rng);
  ExecutionContext ctx;
  conv.forward(ctx, x, false);
  // No lowering at all: the arena holds only the per-call weight pack.
  const int64_t colbuf_floats = 64 * 32 * 32;
  EXPECT_LT(ctx.arena().capacity_floats(), colbuf_floats / 2);
}

// ------------------------------------------------ pool-size determinism ----

TEST(ThreadedGemm, BitsIndependentOfPoolSize) {
  Rng rng(26);
  const int64_t m = 64, n = 1024, k = 288;
  const Tensor a = Tensor::randn(Shape{m, k}, rng);
  const Tensor b = Tensor::randn(Shape{k, n}, rng);
  Tensor base(Shape{m, n});
  {
    ThreadPool pool(1);
    ExecutionContext ctx;
    ctx.set_pool(&pool);
    gemm_nn(ctx, m, n, k, 1.0f, a.data(), b.data(), 0.0f, base.data());
  }
  for (int threads : {2, 3, 4}) {
    ThreadPool pool(threads);
    ExecutionContext ctx;
    ctx.set_pool(&pool);
    Tensor got(Shape{m, n});
    gemm_nn(ctx, m, n, k, 1.0f, a.data(), b.data(), 0.0f, got.data());
    for (int64_t i = 0; i < got.numel(); ++i) {
      ASSERT_EQ(got[i], base[i]) << "threads=" << threads << " at " << i;
    }
  }
}

TEST(ThreadedGemm, FusedConvBitsIndependentOfPoolSize) {
  Rng rng(27);
  nn::Conv2d conv(8, 12, {.kernel = 3, .stride = 1, .pad = 1, .bias = false},
                  rng);
  const Tensor x = Tensor::randn(Shape{2, 8, 19, 17}, rng);  // ragged panels
  Tensor base;
  {
    ThreadPool pool(1);
    ExecutionContext ctx;
    ctx.set_pool(&pool);
    base = conv.forward(ctx, x, false);
  }
  for (int threads : {2, 4}) {
    ThreadPool pool(threads);
    ExecutionContext ctx;
    ctx.set_pool(&pool);
    const Tensor got = conv.forward(ctx, x, false);
    for (int64_t i = 0; i < got.numel(); ++i) {
      ASSERT_EQ(got[i], base[i]) << "threads=" << threads << " at " << i;
    }
  }
}

// ------------------------------------------------ packed gemm_tn -----------

TEST(PackedGemmTn, MatchesReference) {
  ExecutionContext ctx;
  Rng rng(28);
  const struct { int64_t m, n, k; } shapes[] = {
      {144, 64, 16},   // conv backward dcols: rows x cols, k = out_c
      {64, 33, 48},    // ragged n
      {10, 100, 700},  // k crosses the packed k-block (batch*spatial axis)
      {5, 10, 20},     // n < kNR: stays on the streaming reference kernel
  };
  for (const auto& s : shapes) {
    const Tensor at = Tensor::randn(Shape{s.k, s.m}, rng);
    const Tensor b = Tensor::randn(Shape{s.k, s.n}, rng);
    for (float beta : {0.0f, 1.0f}) {
      Tensor got = Tensor::randn(Shape{s.m, s.n}, rng);
      Tensor want = got;
      gemm_tn(ctx, s.m, s.n, s.k, 1.0f, at.data(), b.data(), beta, got.data());
      gemm_tn_reference(ctx, s.m, s.n, s.k, 1.0f, at.data(), b.data(), beta,
                        want.data());
      ASSERT_EQ(got.shape(), want.shape());
      for (int64_t i = 0; i < got.numel(); ++i) {
        const float tol = 1e-4f + 1e-4f * std::fabs(want[i]);
        ASSERT_NEAR(got[i], want[i], tol)
            << "m=" << s.m << " n=" << s.n << " k=" << s.k << " beta=" << beta
            << " at " << i;
      }
    }
  }
}

TEST(PackedGemmTn, BitwiseMatchesGemmNnOnTransposedA) {
  if (!simd::fast_kernels_enabled()) {
    GTEST_SKIP() << "reference gemm_tn walks k outermost; only the packed "
                    "paths share panels";
  }
  // pack_a_from_at produces byte-identical panels to pack_a_rowmajor on the
  // un-transposed matrix, so the two entry points agree bit for bit.
  ExecutionContext ctx;
  Rng rng(29);
  const int64_t m = 14, n = 50, k = 90;
  const Tensor a = Tensor::randn(Shape{m, k}, rng);
  Tensor at(Shape{k, m});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) at[p * m + i] = a[i * k + p];
  }
  const Tensor b = Tensor::randn(Shape{k, n}, rng);
  Tensor c_nn(Shape{m, n}), c_tn(Shape{m, n});
  gemm_nn(ctx, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c_nn.data());
  gemm_tn(ctx, m, n, k, 1.0f, at.data(), b.data(), 0.0f, c_tn.data());
  for (int64_t i = 0; i < c_nn.numel(); ++i) {
    ASSERT_EQ(c_tn[i], c_nn[i]) << "at " << i;
  }
}

// ------------------------------------------------ depthwise bias -----------

TEST(DepthwiseBias, ForwardAppliesBias) {
  Rng rng(30);
  nn::DepthwiseConv2d with_bias(
      4, {.kernel = 3, .stride = 1, .pad = 1, .bias = true}, rng);
  Rng rng2(30);  // same weights
  nn::DepthwiseConv2d without(
      4, {.kernel = 3, .stride = 1, .pad = 1, .bias = false}, rng2);
  for (int64_t c = 0; c < 4; ++c) {
    with_bias.bias()[c] = 0.25f * static_cast<float>(c) - 0.5f;
  }
  const Tensor x = Tensor::randn(Shape{2, 4, 6, 6}, rng);
  const Tensor got = with_bias.forward(x, false);
  Tensor want = without.forward(x, false);
  const int64_t hw = 6 * 6;
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t c = 0; c < 4; ++c) {
      float* plane = want.data() + (i * 4 + c) * hw;
      for (int64_t t = 0; t < hw; ++t) plane[t] += with_bias.bias()[c];
    }
  }
  expect_close(got, want, 1e-6f, 1e-6f);
  ASSERT_EQ(with_bias.params().size(), 2u);
  EXPECT_EQ(with_bias.params()[1].name, "bias");
  EXPECT_FALSE(with_bias.params()[1].apply_weight_decay);
}

TEST(DepthwiseBias, BiasGradAccumulatesPerChannel) {
  Rng rng(31);
  nn::DepthwiseConv2d dw(3, {.kernel = 3, .stride = 1, .pad = 1, .bias = true},
                         rng);
  const Tensor x = Tensor::randn(Shape{2, 3, 5, 5}, rng);
  const Tensor y = dw.forward(x, true);
  const Tensor dy = Tensor::randn(y.shape(), rng);
  dw.backward(dy);
  const int64_t hw = 5 * 5;
  for (int64_t c = 0; c < 3; ++c) {
    float want = 0.0f;
    for (int64_t i = 0; i < 2; ++i) {
      const float* p = dy.data() + (i * 3 + c) * hw;
      for (int64_t t = 0; t < hw; ++t) want += p[t];
    }
    Tensor* bg = dw.params()[1].grad;
    ASSERT_NE(bg, nullptr);
    EXPECT_NEAR((*bg)[c], want, 1e-4f + 1e-4f * std::fabs(want)) << "c=" << c;
  }
}

TEST(DepthwiseBias, FoldedModelSerializesAndRoundTrips) {
  Rng rng(32);
  nn::Sequential seq;
  seq.emplace<nn::DepthwiseConv2d>(
      5, nn::DepthwiseConv2d::Options{.kernel = 3, .stride = 1, .pad = 1},
      rng);
  seq.emplace<nn::BatchNorm2d>(5);
  seq.emplace<nn::ReLU>();
  auto* bn = seq.find_nth<nn::BatchNorm2d>(0);
  for (int64_t c = 0; c < 5; ++c) {
    bn->gamma()[c] = 0.7f + 0.1f * static_cast<float>(c);
    bn->beta()[c] = 0.2f - 0.06f * static_cast<float>(c);
    bn->running_mean()[c] = 0.1f * static_cast<float>(c % 3);
    bn->running_var()[c] = 0.4f + 0.2f * static_cast<float>(c % 2);
  }
  const Tensor x = Tensor::randn(Shape{1, 5, 7, 7}, rng);
  const Tensor want = seq.forward(x, false);

  nn::Sequential folded = seq;
  ASSERT_EQ(nn::fold_batchnorm_inference(folded), 1);
  expect_close(folded.forward(x, false), want);

  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  nn::save_model(ss, folded);
  auto loaded = nn::load_model(ss);
  expect_close(loaded->forward(x, false), want);
}

TEST(DepthwiseBias, SelectChannelsKeepsBias) {
  Rng rng(33);
  nn::DepthwiseConv2d dw(4, {.kernel = 3, .stride = 1, .pad = 1, .bias = true},
                         rng);
  for (int64_t c = 0; c < 4; ++c) dw.bias()[c] = static_cast<float>(c);
  dw.select_channels({3, 1});
  ASSERT_EQ(dw.channels(), 2);
  EXPECT_EQ(dw.bias()[0], 3.0f);
  EXPECT_EQ(dw.bias()[1], 1.0f);
}

// Byte-level writers mirroring the serializer, for crafting legacy streams.
void put_u32(std::string& s, uint32_t v) {
  s.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void put_i64(std::string& s, int64_t v) {
  s.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void put_string(std::string& s, const std::string& v) {
  put_u32(s, static_cast<uint32_t>(v.size()));
  s.append(v);
}
void put_tensor(std::string& s, const Tensor& t) {
  put_u32(s, static_cast<uint32_t>(t.shape().ndim()));
  for (int64_t d : t.shape().dims()) put_i64(s, d);
  s.append(reinterpret_cast<const char*>(t.data()),
           static_cast<size_t>(t.numel()) * sizeof(float));
}

TEST(DepthwiseBias, LoadsVersion1StreamsWithoutBias) {
  // A v1 DepthwiseConv2d record has no has_bias flag; the loader must
  // accept it and construct a bias-free layer.
  Rng rng(34);
  nn::DepthwiseConv2d reference(
      3, {.kernel = 3, .stride = 2, .pad = 1, .bias = false}, rng);
  std::string bytes;
  bytes.append("TBNM", 4);
  put_u32(bytes, 1);  // legacy version
  put_string(bytes, "DepthwiseConv2d");
  put_i64(bytes, 3);  // channels
  put_i64(bytes, 3);  // kernel
  put_i64(bytes, 2);  // stride
  put_i64(bytes, 1);  // pad
  put_tensor(bytes, reference.weight());

  std::istringstream is(bytes, std::ios::binary);
  auto loaded = nn::load_model(is);
  auto* dw = dynamic_cast<nn::DepthwiseConv2d*>(loaded.get());
  ASSERT_NE(dw, nullptr);
  EXPECT_FALSE(dw->has_bias());
  const Tensor x = Tensor::randn(Shape{1, 3, 8, 8}, rng);
  expect_close(loaded->forward(x, false), reference.forward(x, false), 0.0f,
               0.0f);
}

TEST(DepthwiseBias, LoadsUnversionedTwoBranchStreamsAsV1) {
  // Two-branch streams from builds before model format v2 start directly
  // with the stage count and contain v1 layer records; the loader must
  // parse them bias-free rather than reading a weight dim as the bias flag.
  Rng rng(36);
  nn::DepthwiseConv2d reference(
      2, {.kernel = 3, .stride = 1, .pad = 1, .bias = false}, rng);
  std::string bytes;
  put_i64(bytes, 1);  // legacy layout: stage count first, no sentinel
  put_i64(bytes, 0);  // empty channel map
  put_i64(bytes, 1);  // fused
  put_string(bytes, "ReLU");  // exposed branch (version-independent record)
  put_string(bytes, "DepthwiseConv2d");  // secure branch, v1 record
  put_i64(bytes, 2);  // channels
  put_i64(bytes, 3);  // kernel
  put_i64(bytes, 1);  // stride
  put_i64(bytes, 1);  // pad
  put_tensor(bytes, reference.weight());

  std::istringstream is(bytes, std::ios::binary);
  core::TwoBranchModel model = core::load_two_branch(is);
  ASSERT_EQ(model.num_stages(), 1);
  auto* dw = dynamic_cast<nn::DepthwiseConv2d*>(model.stage(0).secure.get());
  ASSERT_NE(dw, nullptr);
  EXPECT_FALSE(dw->has_bias());

  // And the current (sentinel-versioned) format round-trips a biased layer.
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  core::save_two_branch(ss, model);
  core::TwoBranchModel reloaded = core::load_two_branch(ss);
  EXPECT_EQ(reloaded.num_stages(), 1);
}

TEST(DepthwiseBias, RejectsUnknownFutureVersion) {
  std::string bytes;
  bytes.append("TBNM", 4);
  put_u32(bytes, nn::kModelFormatVersion + 1);
  std::istringstream is(bytes, std::ios::binary);
  EXPECT_THROW(nn::load_model(is), std::runtime_error);
}

// ------------------------------------------------ hoisted BN composition ---

TEST(Fusion, PreparedPlanCachesComposedBn) {
  if (!simd::fast_kernels_enabled()) {
    GTEST_SKIP() << "no fusion plan under TBNET_DETERMINISTIC=1";
  }
  Rng rng(35);
  nn::Sequential seq;
  seq.emplace<nn::Conv2d>(
      3, 8, nn::Conv2d::Options{.kernel = 3, .stride = 1, .pad = 1,
                                .bias = false},
      rng);
  seq.emplace<nn::BatchNorm2d>(8);
  seq.emplace<nn::ReLU>();
  ExecutionContext ctx;
  seq.prepare_inference(ctx);
  const Tensor x = Tensor::randn(Shape{1, 3, 6, 6}, rng);
  const Tensor before = seq.forward(ctx, x, false);
  // A prepared model is frozen (Layer::prepare_inference contract): the
  // composed scale/shift were hoisted to prepare time, so editing the BN
  // afterwards must not change the fused output.
  seq.find_nth<nn::BatchNorm2d>(0)->gamma()[0] = 123.0f;
  const Tensor after = seq.forward(ctx, x, false);
  for (int64_t i = 0; i < before.numel(); ++i) {
    ASSERT_EQ(after[i], before[i]) << "at " << i;
  }
}

}  // namespace
}  // namespace tbnet
