// Tests for the data module: synthetic dataset, subsets, loader, augment.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/augment.h"
#include "data/dataloader.h"
#include "data/synthetic_cifar.h"

namespace tbnet::data {
namespace {

SyntheticCifar::Options small_opts() {
  SyntheticCifar::Options opt;
  opt.classes = 10;
  opt.samples = 100;
  opt.image_size = 16;
  opt.seed = 5;
  return opt;
}

TEST(SyntheticCifar, ShapesAndLabels) {
  SyntheticCifar ds(small_opts());
  EXPECT_EQ(ds.size(), 100);
  EXPECT_EQ(ds.num_classes(), 10);
  const Sample s = ds.get(13);
  EXPECT_EQ(s.image.shape(), Shape({3, 16, 16}));
  EXPECT_EQ(s.label, 3);  // balanced: label = index % classes
}

TEST(SyntheticCifar, DeterministicPerIndex) {
  SyntheticCifar a(small_opts()), b(small_opts());
  const Sample sa = a.get(7), sb = b.get(7);
  EXPECT_TRUE(allclose(sa.image, sb.image, 0.0f, 0.0f));
}

TEST(SyntheticCifar, DifferentSeedsProduceDifferentImages) {
  auto opt = small_opts();
  SyntheticCifar a(opt);
  opt.seed = 6;
  SyntheticCifar b(opt);
  EXPECT_FALSE(allclose(a.get(0).image, b.get(0).image));
}

TEST(SyntheticCifar, TrainAndTestSplitsDecorrelated) {
  auto [train, test] = SyntheticCifar::make_split(10, 50, 50, 3, 16);
  EXPECT_FALSE(allclose(train.get(0).image, test.get(0).image));
  EXPECT_EQ(train.get(0).label, test.get(0).label);
}

TEST(SyntheticCifar, SameClassSharesStructure) {
  // Images of the same class must be more similar (correlated) than images
  // of different classes, otherwise nothing is learnable.
  auto opt = small_opts();
  opt.difficulty = 0.3;
  SyntheticCifar ds(opt);
  auto corr = [](const Tensor& a, const Tensor& b) {
    double num = 0, da = 0, db = 0;
    for (int64_t i = 0; i < a.numel(); ++i) {
      num += a[i] * b[i];
      da += a[i] * a[i];
      db += b[i] * b[i];
    }
    return num / std::sqrt(da * db + 1e-9);
  };
  // get(0) and get(10) are both class 0; get(5) is class 5.
  const double same = corr(ds.get(0).image, ds.get(10).image);
  const double diff = corr(ds.get(0).image, ds.get(5).image);
  EXPECT_GT(same, diff);
}

TEST(SyntheticCifar, RejectsBadOptions) {
  auto opt = small_opts();
  opt.classes = 1;
  EXPECT_THROW(SyntheticCifar{opt}, std::invalid_argument);
  opt = small_opts();
  opt.difficulty = 1.5;
  EXPECT_THROW(SyntheticCifar{opt}, std::invalid_argument);
  SyntheticCifar ds(small_opts());
  EXPECT_THROW(ds.get(-1), std::out_of_range);
  EXPECT_THROW(ds.get(100), std::out_of_range);
}

TEST(Subset, FractionOfSelectsExpectedCount) {
  SyntheticCifar ds(small_opts());
  const SubsetDataset half = fraction_of(ds, 0.5, 1);
  EXPECT_EQ(half.size(), 50);
  const SubsetDataset one = fraction_of(ds, 0.01, 1);
  EXPECT_EQ(one.size(), 1);
  const SubsetDataset all = fraction_of(ds, 1.0, 1);
  EXPECT_EQ(all.size(), 100);
  EXPECT_THROW(fraction_of(ds, 1.5, 1), std::invalid_argument);
}

TEST(Subset, DeterministicBySeedAndDisjointOrderings) {
  SyntheticCifar ds(small_opts());
  const SubsetDataset a = fraction_of(ds, 0.3, 9);
  const SubsetDataset b = fraction_of(ds, 0.3, 9);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.get(i).label, b.get(i).label);
  }
}

TEST(DataLoader, CoversDatasetOnceWithoutShuffle) {
  SyntheticCifar ds(small_opts());
  DataLoader::Options lo;
  lo.batch_size = 32;
  lo.shuffle = false;
  DataLoader loader(ds, lo);
  loader.start_epoch(0);
  Batch batch;
  int64_t total = 0;
  int batches = 0;
  while (loader.next(batch)) {
    total += batch.size();
    ++batches;
  }
  EXPECT_EQ(total, 100);
  EXPECT_EQ(batches, 4);  // 32+32+32+4
  EXPECT_EQ(loader.batches_per_epoch(), 4);
}

TEST(DataLoader, DropLastSkipsPartialBatch) {
  SyntheticCifar ds(small_opts());
  DataLoader::Options lo;
  lo.batch_size = 32;
  lo.shuffle = false;
  lo.drop_last = true;
  DataLoader loader(ds, lo);
  loader.start_epoch(0);
  Batch batch;
  int64_t total = 0;
  while (loader.next(batch)) total += batch.size();
  EXPECT_EQ(total, 96);
}

TEST(DataLoader, ShuffleChangesOrderButKeepsMultiset) {
  SyntheticCifar ds(small_opts());
  DataLoader::Options lo;
  lo.batch_size = 100;
  lo.shuffle = true;
  DataLoader loader(ds, lo);
  loader.start_epoch(0);
  Batch b0;
  ASSERT_TRUE(loader.next(b0));
  loader.start_epoch(1);
  Batch b1;
  ASSERT_TRUE(loader.next(b1));
  EXPECT_NE(b0.labels, b1.labels);  // different epoch, different deal
  auto l0 = b0.labels, l1 = b1.labels;
  std::sort(l0.begin(), l0.end());
  std::sort(l1.begin(), l1.end());
  EXPECT_EQ(l0, l1);
}

TEST(DataLoader, EpochsAreReproducible) {
  SyntheticCifar ds(small_opts());
  DataLoader::Options lo;
  lo.batch_size = 16;
  lo.shuffle = true;
  lo.augment = true;
  DataLoader a(ds, lo), b(ds, lo);
  a.start_epoch(3);
  b.start_epoch(3);
  Batch ba, bb;
  ASSERT_TRUE(a.next(ba));
  ASSERT_TRUE(b.next(bb));
  EXPECT_EQ(ba.labels, bb.labels);
  EXPECT_TRUE(allclose(ba.images, bb.images, 0.0f, 0.0f));
}

TEST(CollectBatch, StacksRequestedIndices) {
  SyntheticCifar ds(small_opts());
  Batch b = collect_batch(ds, {3, 7});
  EXPECT_EQ(b.size(), 2);
  EXPECT_EQ(b.labels[0], 3);
  EXPECT_EQ(b.labels[1], 7);
  EXPECT_THROW(collect_batch(ds, {}), std::invalid_argument);
}

TEST(Augment, FlipIsInvolution) {
  Rng rng(4);
  Tensor img = Tensor::randn(Shape{3, 8, 8}, rng);
  EXPECT_TRUE(allclose(flip_horizontal(flip_horizontal(img)), img, 0.0f, 0.0f));
}

TEST(Augment, FlipMirrorsColumns) {
  Tensor img = Tensor::from({1, 2, 3, 4}).reshaped(Shape{1, 1, 4});
  Tensor f = flip_horizontal(img);
  EXPECT_FLOAT_EQ(f[0], 4.0f);
  EXPECT_FLOAT_EQ(f[3], 1.0f);
}

TEST(Augment, PadCropPreservesShapeAndShifts) {
  Rng rng(5);
  Tensor img = Tensor::randn(Shape{1, 6, 6}, rng);
  Tensor out = random_pad_crop(img, 2, rng);
  EXPECT_EQ(out.shape(), img.shape());
  EXPECT_TRUE(allclose(random_pad_crop(img, 0, rng), img, 0.0f, 0.0f));
}

TEST(Augment, StandardRecipeIsDeterministicGivenRng) {
  Rng r1(6), r2(6);
  Rng img_rng(7);
  Tensor img = Tensor::randn(Shape{3, 8, 8}, img_rng);
  EXPECT_TRUE(allclose(augment_standard(img, r1), augment_standard(img, r2),
                       0.0f, 0.0f));
}

}  // namespace
}  // namespace tbnet::data
