// Tests for the TBNet core: two-branch model semantics, channel gather /
// scatter, Alg. 1 pruning, rollback finalization, knowledge transfer and the
// end-to-end pipeline on miniature models.

#include <gtest/gtest.h>

#include <cmath>

#include "core/knowledge_transfer.h"
#include "core/pipeline.h"
#include "core/pruner.h"
#include "core/rollback.h"
#include "core/two_branch.h"
#include "data/synthetic_cifar.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "nn/pool.h"
#include "nn/residual.h"
#include "nn/sequential.h"
#include "tensor/ops.h"

namespace tbnet::core {
namespace {

using nn::BatchNorm2d;
using nn::Conv2d;
using nn::Dense;
using nn::Flatten;
using nn::GlobalAvgPool2d;
using nn::ReLU;
using nn::ResidualBlock;
using nn::Sequential;

std::unique_ptr<Sequential> conv_stage(int64_t in_c, int64_t out_c, Rng& rng) {
  auto s = std::make_unique<Sequential>();
  s->emplace<Conv2d>(in_c, out_c,
                     Conv2d::Options{.kernel = 3, .stride = 1, .pad = 1,
                                     .bias = false},
                     rng);
  s->emplace<BatchNorm2d>(out_c);
  s->emplace<ReLU>();
  return s;
}

std::unique_ptr<Sequential> head_stage(int64_t in_c, int64_t classes,
                                       Rng& rng) {
  auto s = std::make_unique<Sequential>();
  s->emplace<GlobalAvgPool2d>();
  s->emplace<Flatten>();
  s->emplace<Dense>(in_c, classes, rng);
  return s;
}

/// 2 conv stages + head, both branches, VGG-style. Prunable interfaces at
/// stages 0 and 1.
TwoBranchModel tiny_vgg_two_branch(int64_t width, int64_t classes,
                                   uint64_t seed) {
  Rng rng_r(seed), rng_t(seed ^ 0xBEEF);
  TwoBranchModel model;
  model.add_stage(conv_stage(3, width, rng_r), conv_stage(3, width, rng_t));
  model.add_stage(conv_stage(width, width, rng_r),
                  conv_stage(width, width, rng_t));
  model.add_stage(head_stage(width, classes, rng_r),
                  head_stage(width, classes, rng_t));
  return model;
}

std::vector<PrunePoint> tiny_vgg_points() {
  return {{PrunePoint::Kind::kInterface, 0}, {PrunePoint::Kind::kInterface, 1}};
}

data::SyntheticCifar tiny_dataset(int64_t samples, uint32_t split,
                                  int64_t classes = 4) {
  data::SyntheticCifar::Options opt;
  opt.classes = classes;
  opt.samples = samples;
  opt.image_size = 12;
  opt.seed = 21;
  opt.split = split;
  opt.difficulty = 0.25;
  return data::SyntheticCifar(opt);
}

// ------------------------------------------------------- gather/scatter ----

TEST(GatherChannels, SelectsAndOrders) {
  Tensor x = Tensor::from({1, 2, 3, 4, 5, 6, 7, 8}).reshaped(Shape{1, 4, 1, 2});
  Tensor y = gather_channels(x, {2, 0});
  EXPECT_EQ(y.shape(), Shape({1, 2, 1, 2}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], 6.0f);
  EXPECT_FLOAT_EQ(y[2], 1.0f);
  EXPECT_FLOAT_EQ(y[3], 2.0f);
}

TEST(GatherChannels, EmptyMapIsIdentity) {
  Rng rng(1);
  Tensor x = Tensor::randn(Shape{2, 3, 2, 2}, rng);
  EXPECT_TRUE(allclose(gather_channels(x, {}), x, 0.0f, 0.0f));
}

TEST(GatherChannels, WorksOnLogits) {
  Tensor x = Tensor::from({1, 2, 3, 4}).reshaped(Shape{2, 2});
  Tensor y = gather_channels(x, {1});
  EXPECT_EQ(y.shape(), Shape({2, 1}));
  EXPECT_FLOAT_EQ(y[0], 2.0f);
  EXPECT_FLOAT_EQ(y[1], 4.0f);
}

TEST(GatherChannels, OutOfRangeThrows) {
  Tensor x(Shape{1, 2, 1, 1});
  EXPECT_THROW(gather_channels(x, {2}), std::out_of_range);
}

TEST(ScatterChannels, IsAdjointOfGather) {
  Rng rng(2);
  const std::vector<int64_t> map = {3, 1, 4};
  Tensor x = Tensor::randn(Shape{2, 6, 3, 3}, rng);
  Tensor y = Tensor::randn(Shape{2, 3, 3, 3}, rng);
  Tensor gx = gather_channels(x, map);
  Tensor sy = scatter_channels(y, map, x.shape());
  double lhs = 0, rhs = 0;
  for (int64_t i = 0; i < gx.numel(); ++i) lhs += gx[i] * y[i];
  for (int64_t i = 0; i < x.numel(); ++i) rhs += x[i] * sy[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(ScatterChannels, IdentityRequiresMatchingShape) {
  Tensor g(Shape{1, 2, 1, 1});
  EXPECT_THROW(scatter_channels(g, {}, Shape{1, 3, 1, 1}),
               std::invalid_argument);
}

// -------------------------------------------------------- TwoBranchModel ---

TEST(TwoBranchModel, FusedForwardMatchesManualComputation) {
  TwoBranchModel model = tiny_vgg_two_branch(4, 3, 7);
  Rng rng(3);
  Tensor x = Tensor::randn(Shape{2, 3, 6, 6}, rng);

  // Manual: out_R/out_T per stage with element-wise adds.
  Tensor out_r = x, fused = x;
  for (int i = 0; i < model.num_stages(); ++i) {
    out_r = model.stage(i).exposed->forward(out_r, false);
    Tensor out_t = model.stage(i).secure->forward(fused, false);
    out_t.add_(out_r);
    fused = out_t;
  }
  Tensor got = model.forward(x, false);
  EXPECT_TRUE(allclose(got, fused, 1e-5f, 1e-5f));
}

TEST(TwoBranchModel, ExposedOnlyIgnoresSecureBranch) {
  TwoBranchModel model = tiny_vgg_two_branch(4, 3, 8);
  Rng rng(4);
  Tensor x = Tensor::randn(Shape{1, 3, 6, 6}, rng);
  Tensor manual = x;
  for (int i = 0; i < model.num_stages(); ++i) {
    manual = model.stage(i).exposed->forward(manual, false);
  }
  EXPECT_TRUE(allclose(model.forward_exposed_only(x, false), manual, 1e-6f,
                       1e-6f));
}

TEST(TwoBranchModel, SecureOnlySkipsFusion) {
  TwoBranchModel model = tiny_vgg_two_branch(4, 3, 9);
  Rng rng(5);
  Tensor x = Tensor::randn(Shape{1, 3, 6, 6}, rng);
  Tensor manual = x;
  for (int i = 0; i < model.num_stages(); ++i) {
    manual = model.stage(i).secure->forward(manual, false);
  }
  EXPECT_TRUE(allclose(model.forward_secure_only(x, false), manual, 1e-6f,
                       1e-6f));
}

TEST(TwoBranchModel, GradientCheckThroughFusion) {
  TwoBranchModel model = tiny_vgg_two_branch(3, 2, 10);
  Rng rng(6);
  Tensor x = Tensor::randn(Shape{2, 3, 5, 5}, rng);
  Tensor y = model.forward(x, true);
  Tensor w = Tensor::randn(y.shape(), rng);
  model.zero_grad();
  model.backward(w);

  auto params = model.params();
  std::vector<Tensor> analytic;
  for (auto& p : params) analytic.push_back(*p.grad);

  auto loss_at = [&]() {
    Tensor yy = model.forward(x, true);
    double s = 0;
    for (int64_t i = 0; i < yy.numel(); ++i) s += w[i] * yy[i];
    return s;
  };
  const float eps = 1e-2f;
  Rng pick(61);
  int checked = 0;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& value = *params[pi].value;
    for (int s = 0; s < 4; ++s) {
      const int64_t i = pick.uniform_int(value.numel());
      const float orig = value[i];
      const double l0 = loss_at();
      value[i] = orig + eps;
      const double lp = loss_at();
      value[i] = orig - eps;
      const double lm = loss_at();
      value[i] = orig;
      const double fp = (lp - l0) / eps, fm = (l0 - lm) / eps;
      if (std::fabs(fp - fm) > 0.02 * std::max(1.0, std::fabs(fp + fm) / 2)) {
        continue;  // ReLU kink
      }
      const double fd = (fp + fm) / 2;
      EXPECT_NEAR(analytic[pi][i], fd, 0.03 * std::max(1.0, std::fabs(fd)))
          << params[pi].name << "[" << i << "]";
      ++checked;
    }
  }
  EXPECT_GT(checked, 20);  // the kink filter must not reject everything
}

TEST(TwoBranchModel, FreezeExposedLeavesExposedUntouched) {
  TwoBranchModel model = tiny_vgg_two_branch(4, 3, 11);
  Rng rng(7);
  Tensor x = Tensor::randn(Shape{2, 3, 6, 6}, rng);
  // Snapshot exposed weights.
  std::vector<Tensor> before;
  for (auto& p : model.params_exposed()) before.push_back(*p.value);

  Tensor y = model.forward(x, true, /*train_exposed=*/false);
  Tensor grad = Tensor::randn(y.shape(), rng);
  model.zero_grad();
  model.backward(grad, /*freeze_exposed=*/true);
  // All exposed grads must be zero; secure grads mostly non-zero.
  for (auto& p : model.params_exposed()) {
    EXPECT_FLOAT_EQ(p.grad->abs_sum(), 0.0f) << p.name;
  }
  double secure_grad_mass = 0;
  for (auto& p : model.params_secure()) secure_grad_mass += p.grad->abs_sum();
  EXPECT_GT(secure_grad_mass, 0.0);
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_TRUE(allclose(*model.params_exposed()[i].value, before[i], 0.0f,
                         0.0f));
  }
}

TEST(TwoBranchModel, BackwardWithoutForwardThrows) {
  TwoBranchModel model = tiny_vgg_two_branch(4, 3, 12);
  EXPECT_THROW(model.backward(Tensor(Shape{1, 3})), std::logic_error);
}

TEST(TwoBranchModel, MixedModeBackwardRejected) {
  TwoBranchModel model = tiny_vgg_two_branch(4, 3, 13);
  Rng rng(8);
  Tensor x = Tensor::randn(Shape{1, 3, 6, 6}, rng);
  Tensor y = model.forward(x, true, /*train_exposed=*/false);
  // Exposed ran in eval mode: full backward is illegal, frozen backward OK.
  EXPECT_THROW(model.backward(y, /*freeze_exposed=*/false), std::logic_error);
}

TEST(TwoBranchModel, CloneIsIndependent) {
  TwoBranchModel model = tiny_vgg_two_branch(4, 3, 14);
  TwoBranchModel copy = model.clone();
  Rng rng(9);
  Tensor x = Tensor::randn(Shape{1, 3, 6, 6}, rng);
  EXPECT_TRUE(allclose(model.forward(x, false), copy.forward(x, false), 0.0f,
                       0.0f));
  (*model.params()[0].value)[0] += 1.0f;
  EXPECT_FALSE(allclose(model.forward(x, false), copy.forward(x, false)));
}

TEST(TwoBranchModel, ByteAccounting) {
  TwoBranchModel model = tiny_vgg_two_branch(4, 3, 15);
  // Stage 0: conv 3*4*9 + bn 4*4 floats; stage 1: conv 4*4*9 + bn 16;
  // head: dense 4*3+3.
  const int64_t expected =
      (3 * 4 * 9 + 16 + 4 * 4 * 9 + 16 + 4 * 3 + 3) * 4;
  EXPECT_EQ(model.secure_param_bytes(), expected);
  EXPECT_EQ(model.exposed_param_bytes(), expected);
  EXPECT_EQ(model.secure_bn_channels(), 8);
}

// ---------------------------------------------------------- compute_keep ---

TEST(ComputeKeep, ThresholdsByCompositeWeight) {
  TwoBranchModel model = tiny_vgg_two_branch(4, 3, 16);
  const auto points = tiny_vgg_points();
  // Hand-set gammas: point 0 channels get composites {0.2, 1.2, 2.2, 3.2},
  // point 1 gets {15, 16, 17, 18}.
  for (int p = 0; p < 2; ++p) {
    const ResolvedPoint rp = resolve_point(model, points[p]);
    for (int64_t c = 0; c < 4; ++c) {
      rp.bn_exposed->gamma()[c] = (p == 0) ? 0.0f : 5.0f;
      rp.bn_secure->gamma()[c] = (p == 0) ? 0.2f + static_cast<float>(c)
                                          : 10.0f + static_cast<float>(c);
    }
  }
  // ratio 0.25 over 8 channels -> prune the 2 smallest composites (0.2 and
  // 1.2), both in point 0; point 1 is untouched.
  auto keep = compute_keep_lists(model, points, 0.25, 1,
                                 PruneConfig::Criterion::kAbsCompositeSum);
  ASSERT_EQ(keep.size(), 2u);
  EXPECT_EQ(keep[0], (std::vector<int64_t>{2, 3}));
  EXPECT_EQ(keep[1], (std::vector<int64_t>{0, 1, 2, 3}));
}

TEST(ComputeKeep, CriterionVariantsDifferOnCancellation) {
  // |gR + gT| treats opposite-sign pairs as unimportant; |gR| + |gT| does
  // not — the distinction the ablation bench measures.
  TwoBranchModel model = tiny_vgg_two_branch(4, 3, 161);
  const auto points = tiny_vgg_points();
  const ResolvedPoint rp = resolve_point(model, points[0]);
  // Channel 0: perfectly cancelling pair; others strongly positive.
  for (int64_t c = 0; c < 4; ++c) {
    rp.bn_exposed->gamma()[c] = (c == 0) ? 2.0f : 3.0f;
    rp.bn_secure->gamma()[c] = (c == 0) ? -2.0f : 3.0f;
  }
  const ResolvedPoint rp1 = resolve_point(model, points[1]);
  for (int64_t c = 0; c < 4; ++c) {
    rp1.bn_exposed->gamma()[c] = 10.0f;
    rp1.bn_secure->gamma()[c] = 10.0f;
  }
  auto composite = compute_keep_lists(
      model, points, 0.125, 1, PruneConfig::Criterion::kAbsCompositeSum);
  auto sum_abs = compute_keep_lists(model, points, 0.125, 1,
                                    PruneConfig::Criterion::kSumOfAbs);
  // Composite prunes the cancelling channel 0 ...
  EXPECT_EQ(composite[0], (std::vector<int64_t>{1, 2, 3}));
  // ... while sum-of-abs sees it as important (|2|+|-2| = 4 > 3+3? no: 6).
  // Channel 0 scores 4 under sum-of-abs vs 6 for others: still the smallest,
  // but above the global threshold only if another point has smaller values.
  EXPECT_EQ(sum_abs[0].size(), 3u);
}

TEST(ComputeKeep, MinChannelsFloor) {
  TwoBranchModel model = tiny_vgg_two_branch(4, 3, 17);
  const auto points = tiny_vgg_points();
  // Make every channel of point 0 tiny: naive thresholding would empty it.
  const ResolvedPoint rp = resolve_point(model, points[0]);
  for (int64_t c = 0; c < 4; ++c) {
    rp.bn_exposed->gamma()[c] = 1e-4f * (c + 1);
    rp.bn_secure->gamma()[c] = 0.0f;
  }
  auto keep = compute_keep_lists(model, points, 0.5, 2,
                                 PruneConfig::Criterion::kAbsCompositeSum);
  EXPECT_EQ(keep[0].size(), 2u);
  // The floor keeps the strongest channels, in index order.
  EXPECT_EQ(keep[0], (std::vector<int64_t>{2, 3}));
}

class KeepRatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(KeepRatioSweep, KeepsAreSortedSubsetsAndRespectRatio) {
  const double ratio = GetParam();
  TwoBranchModel model = tiny_vgg_two_branch(8, 3, 18);
  const auto points = tiny_vgg_points();
  auto keep = compute_keep_lists(model, points, ratio, 1,
                                 PruneConfig::Criterion::kAbsCompositeSum);
  int64_t kept = 0, total = 0;
  for (size_t p = 0; p < keep.size(); ++p) {
    EXPECT_TRUE(std::is_sorted(keep[p].begin(), keep[p].end()));
    EXPECT_GE(keep[p].size(), 1u);
    kept += static_cast<int64_t>(keep[p].size());
    total += resolve_point(model, points[p]).bn_secure->channels();
  }
  // At most ~ratio of channels pruned (floor can keep a few extra).
  EXPECT_GE(kept, total - static_cast<int64_t>(ratio * total) - 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, KeepRatioSweep,
                         ::testing::Values(0.0, 0.1, 0.3, 0.6));

// ------------------------------------------------------ apply_channel_keep -

TEST(ApplyKeep, InterfaceShrinksBothBranchesAndConsumers) {
  TwoBranchModel model = tiny_vgg_two_branch(6, 3, 19);
  apply_channel_keep(model, {PrunePoint::Kind::kInterface, 0}, {1, 3, 5});
  const ResolvedPoint rp =
      resolve_point(model, {PrunePoint::Kind::kInterface, 0});
  EXPECT_EQ(rp.bn_exposed->channels(), 3);
  EXPECT_EQ(rp.bn_secure->channels(), 3);
  // Next stage conv must now expect 3 input channels; model still runs.
  Rng rng(10);
  Tensor x = Tensor::randn(Shape{1, 3, 6, 6}, rng);
  EXPECT_EQ(model.forward(x, false).shape(), Shape({1, 3}));
}

TEST(ApplyKeep, LastInterfaceShrinksHeadDense) {
  TwoBranchModel model = tiny_vgg_two_branch(6, 3, 20);
  apply_channel_keep(model, {PrunePoint::Kind::kInterface, 1}, {0, 2});
  auto* head_r =
      dynamic_cast<Sequential*>(model.stage(2).exposed.get());
  ASSERT_NE(head_r, nullptr);
  auto* dense = head_r->find_nth<Dense>(0);
  ASSERT_NE(dense, nullptr);
  EXPECT_EQ(dense->in_features(), 2);
  Rng rng(11);
  Tensor x = Tensor::randn(Shape{1, 3, 6, 6}, rng);
  EXPECT_EQ(model.forward(x, false).shape(), Shape({1, 3}));
}

TEST(ApplyKeep, PreservesKeptChannelComputation) {
  // Interface pruning must keep the *function* of retained channels: the
  // fused output restricted to kept features only depends on kept channels.
  TwoBranchModel model = tiny_vgg_two_branch(4, 2, 21);
  Rng rng(12);
  Tensor x = Tensor::randn(Shape{1, 3, 5, 5}, rng);

  // Reference: compute stage-0 exposed output, keep channels {0, 2}.
  Tensor r0 = model.stage(0).exposed->forward(x, false);
  TwoBranchModel pruned = model.clone();
  apply_channel_keep(pruned, {PrunePoint::Kind::kInterface, 0}, {0, 2});
  Tensor r0_pruned = pruned.stage(0).exposed->forward(x, false);
  EXPECT_TRUE(allclose(r0_pruned, gather_channels(r0, {0, 2}), 1e-5f, 1e-5f));
}

TEST(ApplyKeep, InternalOnResidualPairKeepsInterface) {
  Rng rng_r(22), rng_t(23);
  TwoBranchModel model;
  // Exposed: plain block; secure: residual block (the ResNet pairing).
  ResidualBlock proto(4, 4, 1, rng_t);
  auto plain = std::make_unique<Sequential>(nn::plain_block_like(proto, rng_r));
  model.add_stage(std::move(plain),
                  std::make_unique<ResidualBlock>(4, 4, 1, rng_t));
  apply_channel_keep(model, {PrunePoint::Kind::kInternal, 0}, {1, 2});
  const ResolvedPoint rp =
      resolve_point(model, {PrunePoint::Kind::kInternal, 0});
  EXPECT_EQ(rp.bn_exposed->channels(), 2);
  EXPECT_EQ(rp.bn_secure->channels(), 2);
  Rng rng(13);
  Tensor x = Tensor::randn(Shape{1, 4, 6, 6}, rng);
  EXPECT_EQ(model.forward(x, false).shape(), Shape({1, 4, 6, 6}));
}

TEST(ApplyKeep, EmptyKeepRejected) {
  TwoBranchModel model = tiny_vgg_two_branch(4, 3, 24);
  EXPECT_THROW(apply_channel_keep(model, {PrunePoint::Kind::kInterface, 0}, {}),
               std::invalid_argument);
}

// ------------------------------------------------------ knowledge transfer -

TEST(KnowledgeTransfer, LearnsAboveChance) {
  TwoBranchModel model = tiny_vgg_two_branch(8, 4, 25);
  const auto points = tiny_vgg_points();
  const auto train = tiny_dataset(160, 0);
  const auto test = tiny_dataset(80, 1);

  const double before = evaluate_fused(model, test);

  TransferConfig cfg;
  cfg.epochs = 6;
  cfg.batch_size = 32;
  cfg.lr = 0.05;
  cfg.lambda = 1e-3;
  cfg.augment = false;
  cfg.seed = 5;
  const TransferResult result =
      knowledge_transfer(model, points, train, test, cfg);

  EXPECT_GT(result.final_acc, 0.4);  // chance = 0.25
  EXPECT_GT(result.final_acc, before);
  ASSERT_EQ(result.epochs.size(), 6u);
  EXPECT_GT(result.epochs[0].sparsity_penalty, 0.0);
}

TEST(KnowledgeTransfer, SparsityPenaltyShrinksGammasVsControl) {
  // Two identical runs, one with the Eq. 1 penalty, one without: the
  // penalized run must end with strictly smaller BN scale mass.
  const auto points = tiny_vgg_points();
  const auto train = tiny_dataset(160, 0);
  const auto test = tiny_dataset(80, 1);
  auto mean_abs = [](const std::vector<float>& v) {
    double s = 0;
    for (float x : v) s += std::fabs(x);
    return s / static_cast<double>(v.size());
  };

  double mass[2] = {0.0, 0.0};
  const double lambdas[2] = {0.0, 0.05};
  for (int run = 0; run < 2; ++run) {
    TwoBranchModel model = tiny_vgg_two_branch(8, 4, 26);
    TransferConfig cfg;
    cfg.epochs = 5;
    cfg.batch_size = 32;
    cfg.lr = 0.05;
    cfg.lambda = lambdas[run];
    cfg.augment = false;
    cfg.seed = 5;
    knowledge_transfer(model, points, train, test, cfg);
    const BnGammas g = collect_bn_gammas(model, points);
    mass[run] = mean_abs(g.exposed) + mean_abs(g.secure);
  }
  EXPECT_LT(mass[1], mass[0]);
}

TEST(KnowledgeTransfer, CollectBnGammasCountsMatch) {
  TwoBranchModel model = tiny_vgg_two_branch(8, 4, 26);
  const BnGammas g = collect_bn_gammas(model, tiny_vgg_points());
  EXPECT_EQ(g.exposed.size(), 16u);  // 2 points x 8 channels
  EXPECT_EQ(g.secure.size(), 16u);
}

// ---------------------------------------------------------------- Pruner ---

TEST(Pruner, RunShrinksSecureBranchWithinBudget) {
  TwoBranchModel model = tiny_vgg_two_branch(8, 4, 27);
  const auto points = tiny_vgg_points();
  const auto train = tiny_dataset(160, 0);
  const auto test = tiny_dataset(80, 1);

  TransferConfig warm;
  warm.epochs = 4;
  warm.batch_size = 32;
  warm.lambda = 1e-3;
  warm.augment = false;
  knowledge_transfer(model, points, train, test, warm);

  const int64_t bytes_before = model.secure_param_bytes();
  PruneConfig cfg;
  cfg.ratio = 0.2;
  cfg.acc_drop_budget = 0.5;  // generous: accept every iteration
  cfg.max_iterations = 2;
  cfg.finetune.epochs = 1;
  cfg.finetune.batch_size = 32;
  cfg.finetune.augment = false;
  TwoBranchPruner pruner(cfg);
  const PruneResult result = pruner.run(model, points, train, test);

  EXPECT_TRUE(result.any_accepted);
  EXPECT_EQ(result.accepted_count, 2);
  EXPECT_LT(model.secure_param_bytes(), bytes_before);
  ASSERT_FALSE(result.iterations.empty());
  // Bytes shrink monotonically across accepted iterations.
  int64_t prev = bytes_before;
  for (const auto& it : result.iterations) {
    if (!it.accepted) continue;
    EXPECT_LT(it.secure_param_bytes_after, prev);
    prev = it.secure_param_bytes_after;
  }
  // Keep lists exist for each point and the model still runs.
  ASSERT_EQ(result.last_keep.size(), points.size());
  Rng rng(14);
  Tensor x = Tensor::randn(Shape{1, 3, 12, 12}, rng);
  EXPECT_EQ(model.forward(x, false).shape(), Shape({1, 4}));
}

TEST(Pruner, ZeroBudgetRevertsFirstIteration) {
  TwoBranchModel model = tiny_vgg_two_branch(8, 4, 28);
  const auto points = tiny_vgg_points();
  const auto train = tiny_dataset(120, 0);
  const auto test = tiny_dataset(80, 1);
  const int64_t bytes_before = model.secure_param_bytes();

  PruneConfig cfg;
  cfg.ratio = 0.5;                // savage pruning
  cfg.acc_drop_budget = -1.0;     // impossible: any drop (or none) rejects
  cfg.max_iterations = 3;
  cfg.finetune.epochs = 0;        // no recovery
  TwoBranchPruner pruner(cfg);
  const PruneResult result = pruner.run(model, points, train, test);

  EXPECT_FALSE(result.any_accepted);
  EXPECT_EQ(model.secure_param_bytes(), bytes_before);  // reverted
}

// -------------------------------------------------------------- Rollback ---

TEST(Rollback, RestoresExposedAndInstallsMaps) {
  TwoBranchModel model = tiny_vgg_two_branch(8, 4, 29);
  const auto points = tiny_vgg_points();
  const auto train = tiny_dataset(120, 0);
  const auto test = tiny_dataset(80, 1);

  TransferConfig warm;
  warm.epochs = 2;
  warm.batch_size = 32;
  warm.augment = false;
  knowledge_transfer(model, points, train, test, warm);

  PruneConfig cfg;
  cfg.ratio = 0.25;
  cfg.acc_drop_budget = 1.0;
  cfg.max_iterations = 1;
  cfg.finetune.epochs = 1;
  cfg.finetune.batch_size = 32;
  cfg.finetune.augment = false;
  TwoBranchPruner pruner(cfg);
  PruneResult pr = pruner.run(model, points, train, test);
  ASSERT_TRUE(pr.any_accepted);

  // Keep a copy of the pre-rollback snapshot for checking weights.
  TwoBranchModel pre_copy = pr.pre_last_accepted.clone();
  const RollbackReport rb = rollback_finalize(
      model, std::move(pr.pre_last_accepted), points, pr.last_keep);
  ASSERT_TRUE(rb.applied);
  EXPECT_GT(rb.exposed_bytes_after, rb.exposed_bytes_before);

  // Exposed branch equals the snapshot bit-for-bit.
  for (int i = 0; i < model.num_stages(); ++i) {
    auto got = model.stage(i).exposed->params();
    auto want = pre_copy.stage(i).exposed->params();
    ASSERT_EQ(got.size(), want.size());
    for (size_t p = 0; p < got.size(); ++p) {
      EXPECT_TRUE(allclose(*got[p].value, *want[p].value, 0.0f, 0.0f));
    }
  }
  // Architectural divergence is visible wherever pruning actually removed
  // channels in the last round.
  EXPECT_EQ(architectural_divergence(model, points),
            static_cast<int>(rb.remapped_stages.size()));
  // Fused inference still works, with gather alignment.
  Rng rng(15);
  Tensor x = Tensor::randn(Shape{1, 3, 12, 12}, rng);
  EXPECT_EQ(model.forward(x, false).shape(), Shape({1, 4}));
  // Exposed-only attack path also still works (it is a full network).
  EXPECT_EQ(model.forward_exposed_only(x, false).shape(), Shape({1, 4}));
}

TEST(Rollback, NoAcceptedIterationIsNoOp) {
  TwoBranchModel model = tiny_vgg_two_branch(4, 3, 30);
  TwoBranchModel empty;
  const RollbackReport rb =
      rollback_finalize(model, std::move(empty), tiny_vgg_points(), {});
  EXPECT_FALSE(rb.applied);
}

// -------------------------------------------------------------- Pipeline ---

TEST(Pipeline, EndToEndReportIsConsistent) {
  TwoBranchModel model = tiny_vgg_two_branch(8, 4, 31);
  const auto points = tiny_vgg_points();
  const auto train = tiny_dataset(160, 0);
  const auto test = tiny_dataset(80, 1);

  PipelineConfig cfg;
  cfg.transfer.epochs = 4;
  cfg.transfer.batch_size = 32;
  cfg.transfer.lambda = 1e-3;
  cfg.transfer.augment = false;
  cfg.prune.ratio = 0.2;
  cfg.prune.acc_drop_budget = 0.3;
  cfg.prune.max_iterations = 2;
  cfg.prune.finetune.epochs = 1;
  cfg.prune.finetune.batch_size = 32;
  cfg.prune.finetune.augment = false;
  cfg.recovery.epochs = 1;
  cfg.recovery.batch_size = 32;
  cfg.recovery.augment = false;

  TbnetPipeline pipeline(cfg);
  const PipelineReport report = pipeline.run(model, points, train, test);

  EXPECT_GT(report.transfer_acc, 0.3);
  EXPECT_GT(report.final_acc, 0.3);
  EXPECT_GE(report.secure_bytes_initial, report.secure_bytes_final);
  if (report.rollback_applied) {
    EXPECT_GT(report.exposed_bytes_final, report.secure_bytes_final);
  }
  // The attacker's direct-use accuracy is measured and bounded.
  EXPECT_GE(report.attack_direct_acc, 0.0);
  EXPECT_LE(report.attack_direct_acc, 1.0);
}

}  // namespace
}  // namespace tbnet::core
