// ThreadPool tests: the parallel_for contract (chunking, nesting, FIFO
// fairness) and the PR-5 work-stealing scheduler — helping waits, oldest-
// first steals, nested parallel_for under contention, and bit-identity of
// kernel results issued from inside a pool task. This suite (with
// test_serving and test_depthwise) is the TSan CI job's target: every test
// here must stay race-free, not merely pass.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "nn/conv2d.h"
#include "tensor/execution_context.h"
#include "tensor/gemm.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"
#include "tensor/threadpool.h"

namespace tbnet {
namespace {

// ------------------------------------------------- basic contract ----------

TEST(ThreadPoolEdge, ParallelForZeroIsANoOp) {
  std::atomic<int> calls{0};
  ThreadPool::global().parallel_for(
      0, [&](int64_t, int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  ThreadPool::global().parallel_for(
      -3, [&](int64_t, int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolEdge, GlobalPoolSafeUnderConcurrentUse) {
  // Hammer the shared pool from several threads at once; each caller must
  // see exactly its own full range covered.
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&failures] {
      for (int rep = 0; rep < 50; ++rep) {
        std::atomic<int64_t> covered{0};
        ThreadPool::global().parallel_for(1000, [&](int64_t b, int64_t e) {
          covered.fetch_add(e - b);
        });
        if (covered.load() != 1000) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ThreadPoolEdge, NestedParallelForFromWorkerDoesNotDeadlock) {
  // Regression (PR 4): a parallel_for issued from inside a pool task used to
  // queue chunks and block in the completion wait — with every worker doing
  // the same, the chunks that could release them sat behind the blocked
  // workers forever. The work-stealing pool queues nested chunks on the
  // issuing worker's deque and the issuer executes them in its helping wait,
  // so saturating a small pool with nesting tasks must always complete.
  ThreadPool pool(4);
  for (int rep = 0; rep < 20; ++rep) {
    std::atomic<int64_t> outer_covered{0};
    std::atomic<int64_t> inner_covered{0};
    pool.parallel_for(8, [&](int64_t b, int64_t e) {
      outer_covered.fetch_add(e - b);
      for (int64_t i = b; i < e; ++i) {
        pool.parallel_for(100, [&](int64_t ib, int64_t ie) {
          inner_covered.fetch_add(ie - ib);
        });
      }
    });
    ASSERT_EQ(outer_covered.load(), 8);
    ASSERT_EQ(inner_covered.load(), 8 * 100);
  }
}

TEST(ThreadPoolEdge, NestedParallelForPreservesChunkBoundaries) {
  // A nested parallel_for must split [0, n) at the same chunk_size(n)
  // boundaries as a top-level one: the producer-fed GEMM driver keys
  // per-chunk scratch by begin / chunk_size(n), so any other split would
  // alias its slabs. Stealing may move chunks between threads but must
  // never re-split them.
  ThreadPool pool(3);
  const int64_t n = 10;
  const int64_t chunk = pool.chunk_size(n);
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> nested_chunks;
  pool.parallel_for(1000, [&](int64_t b, int64_t e) {
    if (b != 0) return;  // nest from exactly one task
    pool.parallel_for(n, [&](int64_t ib, int64_t ie) {
      std::lock_guard<std::mutex> lock(mu);
      nested_chunks.push_back({ib, ie});
    });
  });
  ASSERT_FALSE(nested_chunks.empty());
  int64_t covered = 0;
  for (const auto& [b, e] : nested_chunks) {
    EXPECT_EQ(b % chunk, 0) << "chunk origin must be a chunk_size multiple";
    EXPECT_LE(e - b, chunk);
    covered += e - b;
  }
  EXPECT_EQ(covered, n);
}

// ------------------------------------------------- work stealing -----------

TEST(ThreadPoolSteal, BlockedCallerExecutesItsPendingChunksItself) {
  // The helping wait: a caller whose queued chunks nobody picks up must run
  // them itself instead of sleeping. Pin the pool's only worker with a gated
  // foreign job, then issue a parallel_for from the test thread — it has to
  // complete (all chunks on the calling thread) while the worker is still
  // pinned. A sleep-only wait would hang here until the release.
  ThreadPool pool(2);  // caller + 1 worker
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  int pinned = 0;
  auto gate = [&] {
    std::unique_lock<std::mutex> lock(mu);
    ++pinned;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  std::thread t0([&] {
    // Two chunks: the submitting thread gates in chunk 0, the worker gates
    // in chunk 1 (the submitter is inside fn(0, 1) before its helping loop
    // starts, so it cannot reclaim the queued chunk first).
    pool.parallel_for(2, [&](int64_t, int64_t) { gate(); });
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return pinned == 2; });
  }
  // Worker pinned: every chunk of this job must execute on this thread.
  const std::thread::id self = std::this_thread::get_id();
  std::atomic<int64_t> covered{0};
  std::atomic<int> foreign{0};
  pool.parallel_for(4, [&](int64_t b, int64_t e) {
    covered.fetch_add(e - b);
    if (std::this_thread::get_id() != self) foreign.fetch_add(1);
  });
  EXPECT_EQ(covered.load(), 4);
  EXPECT_EQ(foreign.load(), 0) << "only the helping caller was runnable";
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  t0.join();
}

TEST(ThreadPoolSteal, StealsDrainAWorkersDequeOldestFirst) {
  // FIFO fairness across steals: chunks a nested parallel_for pushes onto
  // its worker's deque must be stolen front-first (issue order). Stage it
  // deterministically on a 3-thread pool: the external caller and the
  // nesting worker are both pinned inside their chunk bodies, so the one
  // idle worker is the only thread that can run the nested chunks — and it
  // must take them in push order.
  ThreadPool pool(3);  // caller + workers A, B
  const int64_t inner_n = 9;
  const int64_t inner_chunk = pool.chunk_size(inner_n);  // 3
  ASSERT_EQ(inner_chunk, 3);
  std::mutex mu;
  std::condition_variable cv;
  std::vector<int64_t> steal_order;
  std::vector<std::thread::id> steal_thread;
  std::thread::id nester_id;
  auto stolen_both = [&] { return steal_order.size() == 2; };

  pool.parallel_for(3, [&](int64_t b, int64_t) {
    if (b == 0) {
      // External caller's chunk: pin until the steals happened so the
      // caller's helping loop cannot compete for the nested chunks.
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return stolen_both(); });
      return;
    }
    if (b == 1) {
      // The nesting worker: push [3,6) and [6,9) onto our own deque, then
      // pin inside the inline chunk [0,3) until both are stolen.
      {
        std::lock_guard<std::mutex> lock(mu);
        nester_id = std::this_thread::get_id();
      }
      pool.parallel_for(inner_n, [&](int64_t ib, int64_t) {
        if (ib == 0) {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return stolen_both(); });
          return;
        }
        std::lock_guard<std::mutex> lock(mu);
        steal_order.push_back(ib);
        steal_thread.push_back(std::this_thread::get_id());
        cv.notify_all();
      });
    }
    // b == 2: the thief-to-be finishes instantly and returns to its loop.
  });

  ASSERT_EQ(steal_order.size(), 2u);
  EXPECT_EQ(steal_order[0], 3) << "oldest nested chunk must be stolen first";
  EXPECT_EQ(steal_order[1], 6);
  EXPECT_EQ(steal_thread[0], steal_thread[1]);
  EXPECT_NE(steal_thread[0], nester_id) << "chunks must have been STOLEN";
}

TEST(ThreadPoolSteal, OverflowQueueDrainsConcurrentJobsFifo) {
  // FIFO fairness between jobs from different external threads: with every
  // submitter pinned inside its own first chunk (so none of them can help)
  // and the single worker initially pinned by an older job, the worker must
  // drain the two marked jobs' queued chunks oldest-job-first once
  // released.
  ThreadPool pool(2);  // caller + 1 worker
  std::mutex mu;
  std::condition_variable cv;
  bool release_worker = false, release_all = false;
  int pinned_caller = 0, pinned_worker = 0, queued = 0;
  std::vector<int> order;

  std::thread t0([&] {
    pool.parallel_for(2, [&](int64_t b, int64_t) {
      std::unique_lock<std::mutex> lock(mu);
      if (b == 0) {  // runs on t0 itself
        ++pinned_caller;
        cv.notify_all();
        cv.wait(lock, [&] { return release_all; });
      } else {  // queued chunk: claimed by the worker
        ++pinned_worker;
        cv.notify_all();
        cv.wait(lock, [&] { return release_worker; });
      }
    });
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return pinned_caller == 1 && pinned_worker == 1; });
  }
  // Two marked jobs. Each submitter queues its tagged chunk first (the
  // parallel_for pushes tasks before running chunk 0 on the caller), then
  // pins itself inside chunk 0 — so it never reaches its helping loop while
  // the tagged chunks are pending, and only the worker can run them.
  auto submit_marked = [&](int tag) {
    pool.parallel_for(2, [&, tag](int64_t b, int64_t) {
      std::unique_lock<std::mutex> lock(mu);
      if (b == 0) {
        ++queued;
        cv.notify_all();
        cv.wait(lock, [&] { return release_all; });
      } else {
        order.push_back(tag);
        cv.notify_all();
      }
    });
  };
  std::thread t1([&] { submit_marked(1); });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return queued >= 1; });
  }
  std::thread t2([&] { submit_marked(2); });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return queued >= 2; });
    release_worker = true;
    cv.notify_all();
    // The worker drains the overflow queue alone; oldest job first.
    cv.wait(lock, [&] { return order.size() == 2; });
    release_all = true;
    cv.notify_all();
  }
  t0.join();
  t1.join();
  t2.join();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1) << "older job's chunk must run first (FIFO)";
  EXPECT_EQ(order[1], 2);
}

TEST(ThreadPoolSteal, NestedUnderContentionFromConcurrentJobsStress) {
  // The serving shape: dispatch-level jobs from external threads racing
  // kernel-level nested parallel_fors on the shared pool, including
  // depth-2 nesting. Every job must see exactly its own range covered, on
  // every repetition, with chunk boundaries intact.
  ThreadPool pool(4);
  const int64_t kInner = 401;
  const int64_t inner_chunk = pool.chunk_size(kInner);
  for (int rep = 0; rep < 15; ++rep) {
    std::atomic<int64_t> outer{0}, inner{0}, deep{0}, external{0};
    std::atomic<int> bad_chunk{0};
    std::thread contender([&] {
      for (int j = 0; j < 10; ++j) {
        std::atomic<int64_t> mine{0};
        pool.parallel_for(
            777, [&](int64_t b, int64_t e) { mine.fetch_add(e - b); });
        if (mine.load() != 777) external.fetch_add(1);
      }
    });
    pool.parallel_for(8, [&](int64_t b, int64_t e) {
      outer.fetch_add(e - b);
      for (int64_t i = b; i < e; ++i) {
        pool.parallel_for(kInner, [&](int64_t ib, int64_t ie) {
          if (ib % inner_chunk != 0) bad_chunk.fetch_add(1);
          inner.fetch_add(ie - ib);
          if (ib == 0) {  // depth-2 nesting from inside a stolen chunk
            pool.parallel_for(64, [&](int64_t db, int64_t de) {
              deep.fetch_add(de - db);
            });
          }
        });
      }
    });
    contender.join();
    ASSERT_EQ(outer.load(), 8);
    ASSERT_EQ(inner.load(), 8 * kInner);
    ASSERT_EQ(deep.load(), 8 * 64);
    ASSERT_EQ(external.load(), 0);
    ASSERT_EQ(bad_chunk.load(), 0);
  }
}

TEST(ThreadPoolSteal, NestedKernelResultsAreBitIdenticalToSingleThread) {
  // 1-vs-N bit-identity must survive stealing even when the kernel is
  // issued from INSIDE a pool task (the InferenceServer worker / fused
  // conv pattern): the packed GEMM and the producer-fed conv lowering key
  // scratch by chunk origin, and stealing only relocates chunks.
  Rng rng(91);
  const int64_t m = 48, n = 200, k = 96;
  const Tensor a = Tensor::randn(Shape{m, k}, rng);
  const Tensor b = Tensor::randn(Shape{k, n}, rng);

  ThreadPool solo(1);
  ExecutionContext solo_ctx;
  solo_ctx.set_pool(&solo);
  Tensor c_solo(Shape{m, n});
  gemm_nn(solo_ctx, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c_solo.data());

  nn::Conv2d conv(8, 8, {.kernel = 3, .stride = 1, .pad = 1, .bias = false},
                  rng);
  const Tensor img = Tensor::randn(Shape{2, 8, 16, 16}, rng);
  Tensor conv_solo = conv.forward(solo_ctx, img, false);

  ThreadPool pool(4);
  for (int rep = 0; rep < 10; ++rep) {
    Tensor c_nested(Shape{m, n});
    Tensor conv_nested;
    const int64_t outer_chunk = pool.chunk_size(4);
    pool.parallel_for(4, [&](int64_t ob, int64_t) {
      // Run the kernels from the LAST chunk so they usually land on a
      // worker (the caller takes chunk 0); the other chunks finish fast
      // and their threads contend as thieves.
      if (ob != 3 * outer_chunk) return;
      ExecutionContext nested_ctx;
      nested_ctx.set_pool(&pool);
      gemm_nn(nested_ctx, m, n, k, 1.0f, a.data(), b.data(), 0.0f,
              c_nested.data());
      conv_nested = conv.forward(nested_ctx, img, false);
    });
    for (int64_t i = 0; i < c_solo.numel(); ++i) {
      ASSERT_EQ(c_solo[i], c_nested[i]) << "gemm bit mismatch at " << i;
    }
    ASSERT_EQ(conv_nested.shape(), conv_solo.shape());
    for (int64_t i = 0; i < conv_solo.numel(); ++i) {
      ASSERT_EQ(conv_solo[i], conv_nested[i]) << "conv bit mismatch at " << i;
    }
  }
}

}  // namespace
}  // namespace tbnet
