// Tests for the batched serving path: ExecutionContext / WorkspaceArena,
// batched DeployedTBNet parity with per-image inference (including
// non-identity channel maps), and InferenceServer request coalescing plus
// its PR-5 parallel dispatch workers (one engine per worker, queue-depth
// and per-worker utilization stats). ThreadPool scheduling tests live in
// test_threadpool.cpp.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/pruner.h"
#include "core/rollback.h"
#include "models/model_zoo.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "nn/sequential.h"
#include "runtime/deployed.h"
#include "runtime/server.h"
#include "tee/optee_api.h"
#include "tensor/execution_context.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/threadpool.h"

namespace tbnet::runtime {
namespace {

models::ModelConfig tiny_vgg_cfg() {
  models::ModelConfig cfg;
  cfg.family = models::Family::kVgg;
  cfg.depth = 11;
  cfg.classes = 10;
  cfg.width_mult = 0.125;
  cfg.seed = 9;
  return cfg;
}

models::ModelConfig tiny_resnet_cfg() {
  models::ModelConfig cfg;
  cfg.family = models::Family::kResNet;
  cfg.depth = 20;
  cfg.classes = 10;
  cfg.width_mult = 0.25;
  cfg.seed = 21;
  return cfg;
}

/// Prunes every interface to give the model non-identity channel maps, the
/// shape-aligning machinery the batched TA path must also get right.
core::TwoBranchModel pruned_two_branch(const models::ModelConfig& cfg) {
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
  const auto points = models::prune_points(cfg);
  core::TwoBranchModel snapshot = tb.clone();
  std::vector<std::vector<int64_t>> last_keep;
  for (const auto& point : points) {
    const core::ResolvedPoint rp = core::resolve_point(tb, point);
    std::vector<int64_t> keep;
    for (int64_t c = 0; c < rp.bn_secure->channels(); ++c) {
      if (c % 4 != 1) keep.push_back(c);
    }
    core::apply_channel_keep(tb, point, keep);
    last_keep.push_back(keep);
  }
  core::rollback_finalize(tb, std::move(snapshot), points, last_keep);
  return tb;
}

Tensor random_batch(int64_t n, Rng& rng) {
  return Tensor::randn(Shape{n, 3, 32, 32}, rng);
}

Tensor slice_image(const Tensor& batch, int64_t i) {
  const int64_t stride = batch.numel() / batch.dim(0);
  Tensor img(Shape{batch.dim(1), batch.dim(2), batch.dim(3)});
  const float* src = batch.data() + i * stride;
  std::copy(src, src + stride, img.data());
  return img;
}

// ------------------------------------------------- WorkspaceArena ----------

TEST(WorkspaceArena, RewindReusesStorage) {
  WorkspaceArena arena;
  const auto mark = arena.mark();
  float* a = arena.alloc(1000);
  arena.rewind(mark);
  float* b = arena.alloc(1000);
  EXPECT_EQ(a, b);  // same bytes handed out again
  EXPECT_EQ(arena.block_count(), 1u);
}

TEST(WorkspaceArena, AllocationsAre64ByteAligned) {
  // The packed GEMM panels assume cache-line alignment (simd::kAlign);
  // alignment must hold for every allocation, including odd sizes and
  // across ArenaScope rewind/reuse cycles.
  WorkspaceArena arena;
  const auto aligned = [](const float* p) {
    return reinterpret_cast<uintptr_t>(p) % 64 == 0;
  };
  EXPECT_TRUE(aligned(arena.alloc(1)));
  EXPECT_TRUE(aligned(arena.alloc(3)));       // odd size must not skew the next
  EXPECT_TRUE(aligned(arena.alloc(1000)));
  EXPECT_TRUE(aligned(arena.alloc(1 << 20)));  // forces a fresh block
  for (int rep = 0; rep < 3; ++rep) {
    ArenaScope scope(arena);
    EXPECT_TRUE(aligned(arena.alloc(7)));
    EXPECT_TRUE(aligned(arena.alloc(129)));
    EXPECT_TRUE(aligned(arena.alloc(1 << 19)));
  }
}

TEST(WorkspaceArena, ScopeRestoresAcrossGrowth) {
  WorkspaceArena arena;
  {
    ArenaScope scope(arena);
    arena.alloc(10);
    arena.alloc(1 << 20);  // forces a second block
  }
  const int64_t capacity = arena.capacity_bytes();
  {
    ArenaScope scope(arena);
    arena.alloc(10);
    arena.alloc(1 << 20);
  }
  EXPECT_EQ(arena.capacity_bytes(), capacity);  // no growth on repeat
}

TEST(WorkspaceArena, NoGrowthAfterForwardWarmup) {
  const auto cfg = tiny_vgg_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  ExecutionContext ctx;
  Rng rng(3);
  const Tensor batch = random_batch(4, rng);
  victim.forward(ctx, batch, false);  // warmup populates the arena
  const int64_t capacity = ctx.arena().capacity_bytes();
  const size_t blocks = ctx.arena().block_count();
  EXPECT_GT(capacity, 0);
  for (int i = 0; i < 5; ++i) victim.forward(ctx, batch, false);
  EXPECT_EQ(ctx.arena().capacity_bytes(), capacity);
  EXPECT_EQ(ctx.arena().block_count(), blocks);
}

// ------------------------------------------- context kernel overloads ------

TEST(ExecutionContext, ContextGemmMatchesLegacy) {
  Rng rng(11);
  const Tensor a = Tensor::randn(Shape{7, 13}, rng);
  const Tensor b = Tensor::randn(Shape{13, 9}, rng);
  Tensor c_legacy(Shape{7, 9}), c_ctx(Shape{7, 9});
  gemm_nn(7, 9, 13, 1.0f, a.data(), b.data(), 0.0f, c_legacy.data());
  ExecutionContext ctx;
  gemm_nn(ctx, 7, 9, 13, 1.0f, a.data(), b.data(), 0.0f, c_ctx.data());
  EXPECT_TRUE(allclose(c_legacy, c_ctx, 0.0f, 0.0f));
}

TEST(ExecutionContext, ContextOpsWriteIntoOut) {
  Rng rng(12);
  const Tensor a = Tensor::randn(Shape{5, 6}, rng);
  const Tensor b = Tensor::randn(Shape{5, 6}, rng);
  ExecutionContext ctx;
  Tensor out;
  add(ctx, a, b, out);
  EXPECT_TRUE(allclose(out, add(a, b), 0.0f, 0.0f));
  mul(ctx, a, b, out);  // reuses the existing buffer
  EXPECT_TRUE(allclose(out, mul(a, b), 0.0f, 0.0f));
}

// ---------------------------------------------------- batched engine -------

TEST(DeployedTBNetBatch, BatchedMatchesPerImageBitForBit) {
  const auto cfg = tiny_vgg_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);

  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  DeployedTBNet deployed(tb, ctx);

  Rng rng(5);
  const int64_t n = 6;
  const Tensor batch = random_batch(n, rng);
  const Tensor batched = deployed.infer_batch(batch);
  ASSERT_EQ(batched.shape(), (Shape{n, 10}));
  for (int64_t i = 0; i < n; ++i) {
    const Tensor single = deployed.infer(slice_image(batch, i));
    for (int64_t j = 0; j < 10; ++j) {
      EXPECT_EQ(batched[i * 10 + j], single[j]) << "image " << i;
    }
  }
  // And both match the in-process fused forward on the whole batch — to
  // tight relative tolerance: the engine deploys with BN folded and fused
  // GEMM epilogues (bitwise only under TBNET_DETERMINISTIC=1).
  const Tensor want = tb.forward(batch, false);
  EXPECT_TRUE(allclose(batched, want, 1e-4f, 1e-5f));
}

TEST(DeployedTBNetBatch, BatchedMatchesPerImageWithChannelMaps) {
  const auto cfg = tiny_vgg_cfg();
  core::TwoBranchModel tb = pruned_two_branch(cfg);
  // The rollback finalization must have produced real channel maps,
  // otherwise this test would not cover the alignment path.
  bool has_map = false;
  for (int i = 0; i < tb.num_stages(); ++i) {
    has_map = has_map || !tb.stage(i).channel_map.empty();
  }
  ASSERT_TRUE(has_map);

  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  DeployedTBNet deployed(tb, ctx);

  Rng rng(6);
  const int64_t n = 5;
  const Tensor batch = random_batch(n, rng);
  const Tensor batched = deployed.infer_batch(batch);
  for (int64_t i = 0; i < n; ++i) {
    const Tensor single = deployed.infer(slice_image(batch, i));
    for (int64_t j = 0; j < 10; ++j) {
      EXPECT_EQ(batched[i * 10 + j], single[j]) << "image " << i;
    }
  }
  EXPECT_TRUE(allclose(batched, tb.forward(batch, false), 1e-4f, 1e-5f));
}

TEST(DeployedTBNetBatch, ResNetBatchedMatchesPerImage) {
  const auto cfg = tiny_resnet_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  DeployedTBNet deployed(tb, ctx);
  Rng rng(7);
  const int64_t n = 4;
  const Tensor batch = random_batch(n, rng);
  const Tensor batched = deployed.infer_batch(batch);
  for (int64_t i = 0; i < n; ++i) {
    const Tensor single = deployed.infer(slice_image(batch, i));
    for (int64_t j = 0; j < 10; ++j) {
      EXPECT_EQ(batched[i * 10 + j], single[j]) << "image " << i;
    }
  }
}

TEST(DeployedTBNetBatch, WorldSwitchesAmortizeAcrossTheBatch) {
  const auto cfg = tiny_vgg_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  DeployedTBNet deployed(tb, ctx);
  Rng rng(8);

  deployed.infer_batch(random_batch(1, rng));
  const int64_t per_image = deployed.world_switches();
  deployed.infer_batch(random_batch(16, rng));
  const int64_t per_batch16 = deployed.world_switches() - per_image;
  // A batch of 16 costs exactly the same number of switches as one image.
  EXPECT_EQ(per_batch16, per_image);
}

TEST(DeployedTBNetBatch, PredictBatchReleasesOnlyLabels) {
  const auto cfg = tiny_vgg_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  DeployedTBNet deployed(tb, ctx);
  Rng rng(9);
  const int64_t n = 5;
  const Tensor batch = random_batch(n, rng);
  const Tensor logits = deployed.infer_batch(batch);
  const std::vector<int64_t> labels = deployed.predict_batch(batch);
  ASSERT_EQ(labels.size(), static_cast<size_t>(n));
  const std::vector<int64_t> want = argmax_rows(logits);
  EXPECT_EQ(labels, want);
  EXPECT_EQ(ctx.channel().leaked_bytes(), 0);
}

TEST(DeployedTBNetBatch, RejectsOversizedBatch) {
  const auto cfg = tiny_vgg_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  DeployedTBNet deployed(tb, ctx, "tbnet-small-batch",
                         DeployedTBNet::Options{.max_batch = 2});
  Rng rng(10);
  EXPECT_THROW(deployed.infer_batch(random_batch(3, rng)),
               std::invalid_argument);
}

TEST(TeeSessionTiming, SimulatedOverheadAccumulates) {
  const auto cfg = tiny_vgg_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  DeployedTBNet deployed(tb, ctx);
  deployed.session().simulate_timing(tee::DeviceProfile::rpi3());
  Rng rng(11);
  const auto t0 = std::chrono::steady_clock::now();
  deployed.infer_batch(random_batch(2, rng));
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  const double overhead = deployed.session().simulated_overhead_s();
  EXPECT_GT(overhead, 0.0);
  EXPECT_GE(wall, overhead * 0.9);  // the stall really happened
}

// ------------------------------------------------- InferenceServer ---------

TEST(InferenceServer, CoalescesConcurrentSubmitters) {
  const auto cfg = tiny_vgg_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  DeployedTBNet deployed(tb, ctx);

  InferenceServer::Config scfg;
  scfg.max_batch = 8;
  scfg.max_queue_delay = std::chrono::microseconds(50000);  // plenty of time
  InferenceServer server(
      [&deployed](const Tensor& nchw) { return deployed.infer_batch(nchw); },
      scfg);

  Rng rng(12);
  const int64_t total = 24;
  const Tensor batch = random_batch(total, rng);
  const Tensor want = tb.forward(batch, false);

  // Concurrent submitters, one image each.
  std::vector<std::future<InferenceResult>> results(
      static_cast<size_t>(total));
  {
    std::vector<std::thread> submitters;
    std::atomic<int64_t> next{0};
    for (int t = 0; t < 6; ++t) {
      submitters.emplace_back([&] {
        for (;;) {
          const int64_t i = next.fetch_add(1);
          if (i >= total) return;
          results[static_cast<size_t>(i)] =
              server.submit(slice_image(batch, i));
        }
      });
    }
    for (auto& th : submitters) th.join();
  }

  for (int64_t i = 0; i < total; ++i) {
    InferenceResult r = results[static_cast<size_t>(i)].get();
    ASSERT_EQ(r.logits.numel(), 10);
    // Tolerance vs the in-process model (the engine is folded/fused); which
    // coalesced batch served a request still cannot change its bits.
    for (int64_t j = 0; j < 10; ++j) {
      const float w = want[i * 10 + j];
      EXPECT_NEAR(r.logits[j], w, 1e-5f + 1e-4f * std::fabs(w))
          << "request " << i;
    }
    EXPECT_GE(r.batch_size, 1);
    EXPECT_LE(r.batch_size, scfg.max_batch);
    EXPECT_GE(r.total_s, 0.0);
    EXPECT_GE(r.total_s, r.queue_s);
  }

  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.requests, total);
  EXPECT_GT(stats.batches, 0);
  EXPECT_LT(stats.batches, total);  // coalescing actually happened
  EXPECT_GT(stats.coalesced_images, 0);
  EXPECT_GT(stats.mean_batch_size(), 1.0);
  EXPECT_LE(stats.max_batch_observed, scfg.max_batch);
  EXPECT_EQ(stats.request_latency.count(), total);
  EXPECT_EQ(stats.batch_latency.count(), stats.batches);
  EXPECT_GE(stats.request_latency.percentile(99.0),
            stats.request_latency.percentile(50.0));
}

TEST(InferenceServer, DrainWaitsForAllRequests) {
  Rng rng(13);
  nn::Sequential model;
  model.emplace<nn::Flatten>();
  model.emplace<nn::Dense>(3 * 8 * 8, 4, rng);
  InferenceServer server(
      [&model](const Tensor& nchw) { return model.forward(nchw, false); });
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(server.submit(Tensor::randn(Shape{3, 8, 8}, rng)));
  }
  server.drain();
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
  EXPECT_EQ(server.stats().requests, 10);
}

TEST(InferenceServer, EngineFailureResolvesTypedNotThrown) {
  // PR 7: futures resolve with a typed status — a failing engine or a
  // post-shutdown submit must never make .get() throw.
  InferenceServer server([](const Tensor&) -> Tensor {
    throw std::runtime_error("engine down");
  });
  Rng rng(14);
  auto fut = server.submit(Tensor::randn(Shape{1, 2, 2}, rng));
  InferenceResult r = fut.get();
  EXPECT_EQ(r.status, Status::kEngineError);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("engine down"), std::string::npos) << r.error;
  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.requests, 1);
  EXPECT_EQ(stats.engine_errors, 1);

  server.shutdown();
  InferenceResult post =
      server.submit(Tensor::randn(Shape{1, 2, 2}, rng)).get();
  EXPECT_EQ(post.status, Status::kRejected);
  EXPECT_EQ(server.stats().rejected, 1);
}

TEST(InferenceServer, MalformedShapeIsRejectedAlone) {
  // A bad request must resolve kRejected on its own future; batch-mates
  // submitted around it are served normally (pre-PR-7, the mixed-shape
  // throw inside run_batch failed the whole coalesced batch).
  InferenceServer::Config scfg;
  scfg.max_batch = 8;
  scfg.max_queue_delay = std::chrono::microseconds(20000);
  InferenceServer server(
      [](const Tensor& nchw) { return Tensor(Shape{nchw.dim(0), 2}); }, scfg);
  Rng rng(41);
  auto good0 = server.submit(Tensor::randn(Shape{1, 2, 2}, rng));
  // Wrong rank: not CHW at all.
  auto bad_rank = server.submit(Tensor::randn(Shape{4, 4}, rng));
  // Right rank, wrong shape vs the pinned serving shape.
  auto bad_shape = server.submit(Tensor::randn(Shape{3, 4, 4}, rng));
  auto good1 = server.submit(Tensor::randn(Shape{1, 2, 2}, rng));

  EXPECT_EQ(bad_rank.get().status, Status::kRejected);
  InferenceResult mismatched = bad_shape.get();
  EXPECT_EQ(mismatched.status, Status::kRejected);
  EXPECT_NE(mismatched.error.find("does not match"), std::string::npos)
      << mismatched.error;
  EXPECT_EQ(good0.get().status, Status::kOk);
  EXPECT_EQ(good1.get().status, Status::kOk);

  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.requests, 2);
  EXPECT_EQ(stats.rejected, 2);
  EXPECT_EQ(stats.engine_errors, 0);
}

TEST(InferenceServer, ShutdownDrainsOutstandingWork) {
  Rng rng(15);
  nn::Sequential model;
  model.emplace<nn::Flatten>();
  model.emplace<nn::Dense>(12, 3, rng);
  std::vector<std::future<InferenceResult>> futures;
  {
    InferenceServer::Config scfg;
    scfg.max_batch = 4;
    scfg.max_queue_delay = std::chrono::microseconds(20000);
    InferenceServer server(
        [&model](const Tensor& nchw) { return model.forward(nchw, false); },
        scfg);
    for (int i = 0; i < 7; ++i) {
      futures.push_back(server.submit(Tensor::randn(Shape{3, 2, 2}, rng)));
    }
  }  // destructor = shutdown: must answer everything first
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(f.get().status, Status::kOk);
  }
}

// ------------------------------------------------- LatencyRecorder ---------

TEST(LatencyRecorder, ExactPercentilesBelowCapacity) {
  // Below capacity the reservoir holds every sample, so the bounded
  // recorder must answer percentiles identically to an effectively
  // unbounded one fed the same stream.
  LatencyRecorder bounded(128);
  LatencyRecorder unbounded(1 << 20);
  uint64_t x = 99;
  for (int i = 0; i < 100; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const double v = static_cast<double>(x >> 40) * 1e-6;
    bounded.record(v);
    unbounded.record(v);
  }
  EXPECT_EQ(bounded.count(), 100);
  EXPECT_EQ(bounded.samples().size(), 100u);
  for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_EQ(bounded.percentile(p), unbounded.percentile(p)) << "p" << p;
  }
  EXPECT_EQ(bounded.mean(), unbounded.mean());
  EXPECT_EQ(bounded.min(), unbounded.min());
  EXPECT_EQ(bounded.max(), unbounded.max());
}

TEST(LatencyRecorder, MemoryBoundedAboveCapacityWithExactAggregates) {
  // Past capacity the reservoir stops growing, while count/mean/min/max
  // stay exact running values and percentiles stay plausible estimates.
  const int64_t cap = 64;
  LatencyRecorder rec(cap);
  const int64_t n = 10000;
  double total = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(i % 1000) * 1e-6;
    rec.record(v);
    total += v;
  }
  EXPECT_EQ(rec.count(), n);
  EXPECT_EQ(rec.samples().size(), static_cast<size_t>(cap));
  EXPECT_DOUBLE_EQ(rec.mean(), total / static_cast<double>(n));
  EXPECT_DOUBLE_EQ(rec.min(), 0.0);
  EXPECT_DOUBLE_EQ(rec.max(), 999e-6);
  const double p50 = rec.percentile(50.0);
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p50, 999e-6);
  EXPECT_THROW(LatencyRecorder(0), std::invalid_argument);
}

TEST(InferenceServer, CoalescedImagesCountsOnlyRiders) {
  // coalesced_images counts images beyond the first of each multi-image
  // batch — a lone request coalesces nothing, and a batch of n saves n - 1
  // engine invocations. Stage the batching deterministically: the engine
  // gates inside its first call while three more requests queue, so the
  // schedule is exactly [1, 3].
  std::mutex mu;
  std::condition_variable cv;
  bool first_call_started = false;
  bool release_first_call = false;
  std::atomic<int> calls{0};
  InferenceServer::Config scfg;
  scfg.max_batch = 8;
  scfg.max_queue_delay = std::chrono::microseconds(500);
  InferenceServer server(
      [&](const Tensor& nchw) {
        if (calls.fetch_add(1) == 0) {
          std::unique_lock<std::mutex> lock(mu);
          first_call_started = true;
          cv.notify_all();
          cv.wait(lock, [&] { return release_first_call; });
        }
        return Tensor(Shape{nchw.dim(0), 2});
      },
      scfg);

  Rng rng(77);
  std::vector<std::future<InferenceResult>> futures;
  futures.push_back(server.submit(Tensor::randn(Shape{1, 2, 2}, rng)));
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return first_call_started; });
  }
  // The worker is pinned inside batch #1; these three must coalesce into
  // batch #2.
  for (int i = 0; i < 3; ++i) {
    futures.push_back(server.submit(Tensor::randn(Shape{1, 2, 2}, rng)));
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    release_first_call = true;
    cv.notify_all();
  }
  server.drain();
  for (auto& f : futures) f.get();

  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.requests, 4);
  EXPECT_EQ(stats.batches, 2);
  EXPECT_EQ(stats.max_batch_observed, 3);
  // 2 riders (the batch of 3 minus its first image) — and never more than
  // requests - batches.
  EXPECT_EQ(stats.coalesced_images, 2);
  EXPECT_LE(stats.coalesced_images, stats.requests - stats.batches);
}

// --------------------------------------- parallel dispatch workers ---------

TEST(InferenceServerWorkers, TwoWorkersDispatchBatchesConcurrently) {
  // With two engines the server must run two batches at the same time: both
  // engine calls rendezvous inside the (thread-safe, trivial) engine
  // functions before either returns. A single-worker server can never
  // satisfy the rendezvous — the generous timeout turns a regression into a
  // clean failure instead of a hang.
  std::mutex mu;
  std::condition_variable cv;
  int entered = 0;
  bool both_entered = false;
  auto engine = [&](const Tensor& nchw) {
    {
      std::unique_lock<std::mutex> lock(mu);
      ++entered;
      cv.notify_all();
      both_entered = cv.wait_for(lock, std::chrono::seconds(10),
                                 [&] { return entered >= 2; }) ||
                     both_entered;
    }
    return Tensor(Shape{nchw.dim(0), 2});
  };
  InferenceServer::Config scfg;
  scfg.max_batch = 1;  // one request = one batch: the 2nd must overlap
  scfg.max_queue_delay = std::chrono::microseconds(100);
  InferenceServer server(std::vector<InferenceServer::BatchFn>{engine, engine},
                         scfg);
  ASSERT_EQ(server.workers(), 2);

  Rng rng(31);
  auto f0 = server.submit(Tensor::randn(Shape{1, 2, 2}, rng));
  auto f1 = server.submit(Tensor::randn(Shape{1, 2, 2}, rng));
  f0.get();
  f1.get();
  EXPECT_TRUE(both_entered) << "second batch never overlapped the first";

  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.requests, 2);
  EXPECT_EQ(stats.batches, 2);
  ASSERT_EQ(stats.per_worker.size(), 2u);
  // Whichever worker took batch #1 was pinned inside it, so batch #2 must
  // have gone to the other: exactly one batch each.
  EXPECT_EQ(stats.per_worker[0].batches, 1);
  EXPECT_EQ(stats.per_worker[1].batches, 1);
  EXPECT_GT(stats.per_worker[0].busy_s, 0.0);
  EXPECT_GT(stats.per_worker[1].busy_s, 0.0);
  EXPECT_GT(stats.uptime_s, 0.0);
  EXPECT_GE(stats.worker_utilization(0), 0.0);
  EXPECT_LE(stats.worker_utilization(0), 1.0);
}

TEST(InferenceServerWorkers, QueueDepthHighWaterIsRecorded) {
  // Pin the lone worker inside its first batch while three more requests
  // queue: the submit-side high-water mark must see all three waiting.
  std::mutex mu;
  std::condition_variable cv;
  bool started = false, release = false;
  std::atomic<int> calls{0};
  InferenceServer::Config scfg;
  scfg.max_batch = 1;
  scfg.max_queue_delay = std::chrono::microseconds(100);
  InferenceServer server(
      [&](const Tensor& nchw) {
        if (calls.fetch_add(1) == 0) {
          std::unique_lock<std::mutex> lock(mu);
          started = true;
          cv.notify_all();
          cv.wait(lock, [&] { return release; });
        }
        return Tensor(Shape{nchw.dim(0), 2});
      },
      scfg);
  Rng rng(32);
  std::vector<std::future<InferenceResult>> futures;
  futures.push_back(server.submit(Tensor::randn(Shape{1, 2, 2}, rng)));
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return started; });
  }
  for (int i = 0; i < 3; ++i) {
    futures.push_back(server.submit(Tensor::randn(Shape{1, 2, 2}, rng)));
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  server.drain();
  for (auto& f : futures) f.get();

  const ServingStats stats = server.stats();
  EXPECT_GE(stats.max_queue_depth, 3);
  ASSERT_EQ(stats.per_worker.size(), 1u);
  EXPECT_EQ(stats.per_worker[0].batches, stats.batches);
  EXPECT_EQ(stats.per_worker[0].images, stats.requests);
}

TEST(InferenceServerWorkers, ParallelEnginesServeTheSameModelCorrectly) {
  // The production shape of inter-op parallelism: two independent
  // DeployedTBNet engines (each with its own secure world, session, and
  // ExecutionContext/arena) behind one server. Any request may land on
  // either engine; every answer must match the in-process model.
  const auto cfg = tiny_vgg_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
  tee::SecureWorld world_a, world_b;
  tee::TeeContext ctx_a(world_a), ctx_b(world_b);
  DeployedTBNet engine_a(tb, ctx_a, "tbnet-worker-a");
  DeployedTBNet engine_b(tb, ctx_b, "tbnet-worker-b");

  InferenceServer::Config scfg;
  scfg.max_batch = 4;
  scfg.max_queue_delay = std::chrono::microseconds(2000);
  InferenceServer server(
      std::vector<InferenceServer::BatchFn>{
          [&engine_a](const Tensor& nchw) { return engine_a.infer_batch(nchw); },
          [&engine_b](const Tensor& nchw) { return engine_b.infer_batch(nchw); }},
      scfg);

  Rng rng(33);
  const int64_t total = 16;
  const Tensor batch = random_batch(total, rng);
  const Tensor want = tb.forward(batch, false);
  std::vector<std::future<InferenceResult>> futures;
  for (int64_t i = 0; i < total; ++i) {
    futures.push_back(server.submit(slice_image(batch, i)));
  }
  for (int64_t i = 0; i < total; ++i) {
    InferenceResult r = futures[static_cast<size_t>(i)].get();
    for (int64_t j = 0; j < 10; ++j) {
      const float w = want[i * 10 + j];
      EXPECT_NEAR(r.logits[j], w, 1e-5f + 1e-4f * std::fabs(w))
          << "request " << i;
    }
  }
  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.requests, total);
  ASSERT_EQ(stats.per_worker.size(), 2u);
  int64_t worker_batches = 0, worker_images = 0;
  for (const WorkerStats& w : stats.per_worker) {
    worker_batches += w.batches;
    worker_images += w.images;
  }
  EXPECT_EQ(worker_batches, stats.batches);
  EXPECT_EQ(worker_images, stats.requests);
}

}  // namespace
}  // namespace tbnet::runtime
