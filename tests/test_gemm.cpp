// Tests for the packed SIMD GEMM fast path: edge shapes vs. the scalar
// reference kernels, fused epilogues vs. separate passes, PackedGemm weight
// caching, batch invariance of the microkernel, deploy-time BN folding, and
// the prepared (fused) forward of Sequential / ResidualBlock.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "core/two_branch.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/depthwise.h"
#include "nn/fuse.h"
#include "nn/residual.h"
#include "nn/sequential.h"
#include "nn/serialize.h"
#include "tensor/gemm.h"
#include "tensor/pack.h"
#include "tensor/rng.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"

namespace tbnet {
namespace {

/// Relative-tolerance check sized for fp32 accumulation-order differences.
void expect_close(const Tensor& got, const Tensor& want, float rtol = 1e-4f,
                  float atol = 1e-5f) {
  ASSERT_EQ(got.shape(), want.shape());
  for (int64_t i = 0; i < got.numel(); ++i) {
    const float tol = atol + rtol * std::fabs(want[i]);
    ASSERT_NEAR(got[i], want[i], tol) << "at flat index " << i;
  }
}

// ------------------------------------------------------- edge shapes -------

TEST(PackedGemm, EdgeShapesMatchReference) {
  ExecutionContext ctx;
  Rng rng(1);
  // m=1 (single image dense rows), k<4 (tiny depth), n not a multiple of the
  // vector width, and shapes straddling every tile-edge combination.
  const struct { int64_t m, n, k; } shapes[] = {
      {1, 1, 1},   {1, 5, 3},    {1, 16, 2},  {2, 17, 1},  {3, 33, 7},
      {6, 16, 4},  {7, 31, 13},  {12, 48, 9}, {5, 10, 64}, {13, 100, 129},
      {64, 33, 3}, {6, 16, 300},   // k crosses the reference 256 k-block
      {7, 48, 700}, {13, 33, 1500},  // k crosses the packed driver's k-block
  };
  const struct { float alpha, beta; } coeffs[] = {
      {1.0f, 0.0f}, {2.0f, 0.0f}, {1.0f, 1.0f}, {0.5f, -1.5f}};
  for (const auto& s : shapes) {
    const Tensor a = Tensor::randn(Shape{s.m, s.k}, rng);
    const Tensor b = Tensor::randn(Shape{s.k, s.n}, rng);
    for (const auto& c : coeffs) {
      Tensor got = Tensor::randn(Shape{s.m, s.n}, rng);
      Tensor want = got;
      gemm_nn(ctx, s.m, s.n, s.k, c.alpha, a.data(), b.data(), c.beta,
              got.data());
      gemm_nn_reference(ctx, s.m, s.n, s.k, c.alpha, a.data(), b.data(),
                        c.beta, want.data());
      ASSERT_EQ(got.shape(), want.shape());
      for (int64_t i = 0; i < got.numel(); ++i) {
        const float tol = 1e-4f + 1e-4f * std::fabs(want[i]);
        ASSERT_NEAR(got[i], want[i], tol)
            << "m=" << s.m << " n=" << s.n << " k=" << s.k
            << " alpha=" << c.alpha << " beta=" << c.beta << " at " << i;
      }
    }
  }
}

TEST(PackedGemm, GemmNtMatchesReference) {
  ExecutionContext ctx;
  Rng rng(2);
  const struct { int64_t m, n, k; } shapes[] = {
      {1, 10, 48}, {4, 10, 64}, {9, 33, 17}, {32, 7, 300}};
  for (const auto& s : shapes) {
    const Tensor a = Tensor::randn(Shape{s.m, s.k}, rng);
    const Tensor bt = Tensor::randn(Shape{s.n, s.k}, rng);  // B^T layout
    Tensor got(Shape{s.m, s.n}), want(Shape{s.m, s.n});
    gemm_nt(ctx, s.m, s.n, s.k, 1.0f, a.data(), bt.data(), 0.0f, got.data());
    gemm_nt_reference(ctx, s.m, s.n, s.k, 1.0f, a.data(), bt.data(), 0.0f,
                      want.data());
    expect_close(got, want);
  }
}

TEST(PackedGemm, GemvMatchesReference) {
  Rng rng(3);
  for (int64_t n : {1ll, 3ll, 17ll, 256ll, 1000ll}) {
    const Tensor a = Tensor::randn(Shape{7, n}, rng);
    const Tensor x = Tensor::randn(Shape{n}, rng);
    Tensor got(Shape{7}), want(Shape{7});
    gemv(7, n, 1.5f, a.data(), x.data(), 0.0f, got.data());
    gemv_reference(7, n, 1.5f, a.data(), x.data(), 0.0f, want.data());
    expect_close(got, want);
  }
}

// The microkernel's accumulation order for a C row depends only on k — so a
// row computed inside a big batch is bit-identical to the same row computed
// alone. This is the property the batched serving parity tests lean on.
TEST(PackedGemm, RowsAreBatchInvariantBitForBit) {
  ExecutionContext ctx;
  Rng rng(4);
  const int64_t n = 21, k = 150;
  const Tensor a = Tensor::randn(Shape{13, k}, rng);
  const Tensor b = Tensor::randn(Shape{k, n}, rng);
  Tensor full(Shape{13, n});
  gemm_nn(ctx, 13, n, k, 1.0f, a.data(), b.data(), 0.0f, full.data());
  for (int64_t i = 0; i < 13; ++i) {
    Tensor row(Shape{1, n});
    gemm_nn(ctx, 1, n, k, 1.0f, a.data() + i * k, b.data(), 0.0f, row.data());
    for (int64_t j = 0; j < n; ++j) {
      ASSERT_EQ(row[j], full[i * n + j]) << "row " << i << " col " << j;
    }
  }
}

// --------------------------------------------------------- epilogues -------

TEST(PackedGemm, FusedEpilogueMatchesSeparatePasses) {
  ExecutionContext ctx;
  Rng rng(5);
  // k spans two packed k-blocks, so this also pins the epilogue firing only
  // on the final slice (beta_eff chaining across slices).
  const int64_t m = 11, n = 37, k = 700;
  const Tensor a = Tensor::randn(Shape{m, k}, rng);
  const Tensor b = Tensor::randn(Shape{k, n}, rng);
  const Tensor rs = Tensor::randn(Shape{m}, rng);
  const Tensor rh = Tensor::randn(Shape{m}, rng);
  const Tensor ch = Tensor::randn(Shape{n}, rng);

  GemmEpilogue ep;
  ep.row_scale = rs.data();
  ep.row_shift = rh.data();
  ep.col_shift = ch.data();
  ep.act = simd::Act::kReLU;
  Tensor fused(Shape{m, n});
  gemm_nn(ctx, m, n, k, 1.0f, a.data(), b.data(), 0.0f, fused.data(), ep);

  Tensor want(Shape{m, n});
  gemm_nn(ctx, m, n, k, 1.0f, a.data(), b.data(), 0.0f, want.data());
  apply_epilogue_reference(m, n, want.data(), n, ep);
  expect_close(fused, want);
}

TEST(PackedGemm, ReLU6ClampsInEpilogue) {
  ExecutionContext ctx;
  const int64_t m = 2, n = 20, k = 1;
  Tensor a = Tensor::ones(Shape{m, k});
  Tensor b(Shape{k, n});
  for (int64_t j = 0; j < n; ++j) b[j] = static_cast<float>(j) - 4.0f;
  GemmEpilogue ep;
  ep.act = simd::Act::kReLU6;
  Tensor c(Shape{m, n});
  gemm_nn(ctx, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data(), ep);
  for (int64_t j = 0; j < n; ++j) {
    const float want = std::min(6.0f, std::max(0.0f, b[j]));
    EXPECT_EQ(c[j], want) << "col " << j;
    EXPECT_EQ(c[n + j], want) << "col " << j;
  }
}

// ------------------------------------------------------- PackedGemm --------

TEST(PackedGemm, PrepackedAMatchesUnpackedBitForBit) {
  if (!simd::fast_kernels_enabled()) {
    GTEST_SKIP() << "TBNET_DETERMINISTIC=1 routes gemm_nn to the reference "
                    "kernel; the pre-packed tile path is not comparable "
                    "bitwise";
  }
  ExecutionContext ctx;
  Rng rng(6);
  const int64_t m = 14, n = 50, k = 90;
  const Tensor a = Tensor::randn(Shape{m, k}, rng);
  const Tensor b = Tensor::randn(Shape{k, n}, rng);
  Tensor want(Shape{m, n});
  gemm_nn(ctx, m, n, k, 1.0f, a.data(), b.data(), 0.0f, want.data());

  PackedGemm packed;
  packed.pack_a(m, k, a.data());
  ASSERT_FALSE(packed.empty());
  EXPECT_EQ(packed.rows(), m);
  Tensor got(Shape{m, n});
  packed.run(ctx, n, 1.0f, b.data(), 0.0f, got.data());
  for (int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "at " << i;  // same kernel, same packing
  }
}

TEST(PackedGemm, PrepackedBFromArenaMatchesGemmNt) {
  if (!simd::fast_kernels_enabled()) {
    GTEST_SKIP() << "TBNET_DETERMINISTIC=1 routes gemm_nt to the reference "
                    "kernel; the pre-packed tile path is not comparable "
                    "bitwise";
  }
  ExecutionContext persistent;  // owns the pack, like a deployed engine
  ExecutionContext ctx;
  Rng rng(7);
  // n >= kNR so both sides take the tile path (below kNR the un-packed call
  // legitimately routes to the streaming reference kernel instead).
  const int64_t m = 5, n = 21, k = 33;
  const Tensor x = Tensor::randn(Shape{m, k}, rng);
  const Tensor w = Tensor::randn(Shape{n, k}, rng);  // dense weight [out, in]
  Tensor want(Shape{m, n});
  gemm_nt(ctx, m, n, k, 1.0f, x.data(), w.data(), 0.0f, want.data());

  PackedGemm packed;
  packed.pack_b_transposed(n, k, w.data(), &persistent.arena());
  EXPECT_EQ(packed.cols(), n);
  Tensor got(Shape{m, n});
  packed.run_with_a(ctx, m, 1.0f, x.data(), 0.0f, got.data());
  for (int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "at " << i;
  }
}

TEST(PackedGemm, CopyYieldsEmptyCache) {
  Rng rng(8);
  const Tensor a = Tensor::randn(Shape{4, 8}, rng);
  PackedGemm packed;
  packed.pack_a(4, 8, a.data());
  PackedGemm copy = packed;  // layer clone semantics: must re-prepare
  EXPECT_TRUE(copy.empty());
  EXPECT_FALSE(packed.empty());
}

// -------------------------------------------------- fusion & folding -------

nn::Sequential conv_bn_relu_block(Rng& rng) {
  nn::Sequential seq;
  seq.emplace<nn::Conv2d>(
      3, 13, nn::Conv2d::Options{.kernel = 3, .stride = 1, .pad = 1,
                                 .bias = false},
      rng);
  seq.emplace<nn::BatchNorm2d>(13);
  seq.emplace<nn::ReLU>();
  return seq;
}

/// Trains BN stats away from the identity so folding is actually exercised.
void randomize_bn(nn::BatchNorm2d& bn, Rng& rng) {
  for (int64_t c = 0; c < bn.channels(); ++c) {
    bn.gamma()[c] = 0.5f + 0.1f * static_cast<float>(c % 7);
    bn.beta()[c] = 0.3f - 0.05f * static_cast<float>(c % 5);
    bn.running_mean()[c] = 0.2f * static_cast<float>(c % 3) - 0.1f;
    bn.running_var()[c] = 0.5f + 0.25f * static_cast<float>(c % 4);
  }
  (void)rng;
}

TEST(Fusion, PreparedSequentialMatchesUnfusedEval) {
  Rng rng(9);
  nn::Sequential seq = conv_bn_relu_block(rng);
  randomize_bn(*seq.find_nth<nn::BatchNorm2d>(0), rng);
  nn::Sequential fused = seq;  // deep copy

  const Tensor x = Tensor::randn(Shape{2, 3, 10, 10}, rng);
  const Tensor want = seq.forward(x, false);
  ExecutionContext ctx;
  fused.prepare_inference(ctx);
  const Tensor got = fused.forward(ctx, x, false);
  expect_close(got, want);
  // ReLU really applied in the epilogue.
  for (int64_t i = 0; i < got.numel(); ++i) ASSERT_GE(got[i], 0.0f);
}

TEST(Fusion, FoldBatchnormRemovesBnAndPreservesOutputs) {
  Rng rng(10);
  nn::Sequential seq = conv_bn_relu_block(rng);
  randomize_bn(*seq.find_nth<nn::BatchNorm2d>(0), rng);
  const Tensor x = Tensor::randn(Shape{1, 3, 8, 8}, rng);
  const Tensor want = seq.forward(x, false);

  nn::Sequential folded = seq;
  EXPECT_EQ(nn::fold_batchnorm_inference(folded), 1);
  EXPECT_EQ(folded.size(), 2);  // BN gone
  auto* conv = folded.find_nth<nn::Conv2d>(0);
  ASSERT_NE(conv, nullptr);
  EXPECT_TRUE(conv->has_bias());  // absorbed the BN shift
  expect_close(folded.forward(x, false), want);

  // The folded model serializes as plain Conv2d(+bias) + ReLU.
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  nn::save_model(ss, folded);
  auto loaded = nn::load_model(ss);
  expect_close(loaded->forward(x, false), want);
}

TEST(Fusion, DepthwiseBnReluFusesAtRuntime) {
  Rng rng(11);
  nn::Sequential seq;
  seq.emplace<nn::DepthwiseConv2d>(
      6, nn::DepthwiseConv2d::Options{.kernel = 3, .stride = 1, .pad = 1},
      rng);
  seq.emplace<nn::BatchNorm2d>(6);
  seq.emplace<nn::ReLU>();
  randomize_bn(*seq.find_nth<nn::BatchNorm2d>(0), rng);

  const Tensor x = Tensor::randn(Shape{2, 6, 9, 9}, rng);
  const Tensor want = seq.forward(x, false);
  nn::Sequential fused = seq;
  ExecutionContext ctx;
  fused.prepare_inference(ctx);
  expect_close(fused.forward(ctx, x, false), want);
  // Since the depthwise bias (model format v2), the BN also folds
  // structurally: the shift lands in the new bias and the BN layer goes.
  nn::Sequential folded = seq;
  EXPECT_EQ(nn::fold_batchnorm_inference(folded), 1);
  EXPECT_EQ(folded.size(), 2);
  auto* dw = folded.find_nth<nn::DepthwiseConv2d>(0);
  ASSERT_NE(dw, nullptr);
  EXPECT_TRUE(dw->has_bias());  // absorbed the BN shift
  expect_close(folded.forward(x, false), want);
  EXPECT_LT(nn::serialized_size(folded), nn::serialized_size(seq));
}

TEST(Fusion, PreparedResidualBlockMatchesUnfusedEval) {
  Rng rng(12);
  nn::ResidualBlock block(4, 8, /*stride=*/2, rng);  // downsample path too
  randomize_bn(block.bn1(), rng);
  randomize_bn(block.bn2(), rng);
  randomize_bn(block.down_bn(), rng);
  const Tensor x = Tensor::randn(Shape{2, 4, 12, 12}, rng);
  const Tensor want = block.forward(x, false);

  auto fused = block.clone();
  ExecutionContext ctx;
  fused->prepare_inference(ctx);
  expect_close(fused->forward(ctx, x, false), want);
}

TEST(Fusion, DensePreparedMatchesAndFusesReLU) {
  Rng rng(13);
  nn::Sequential seq;
  seq.emplace<nn::Dense>(40, 21, rng);
  seq.emplace<nn::ReLU>();
  const Tensor x = Tensor::randn(Shape{3, 40}, rng);
  const Tensor want = seq.forward(x, false);

  nn::Sequential fused = seq;
  ExecutionContext ctx;
  fused.prepare_inference(ctx);
  expect_close(fused.forward(ctx, x, false), want);
}

TEST(Fusion, TwoBranchFoldPreservesSequentialStageOutputs) {
  Rng rng(14);
  nn::Sequential stage_e = conv_bn_relu_block(rng);
  nn::Sequential stage_s = conv_bn_relu_block(rng);
  randomize_bn(*stage_e.find_nth<nn::BatchNorm2d>(0), rng);
  randomize_bn(*stage_s.find_nth<nn::BatchNorm2d>(0), rng);
  core::TwoBranchModel tb;
  tb.add_stage(std::make_unique<nn::Sequential>(stage_e),
               std::make_unique<nn::Sequential>(stage_s));

  const Tensor x = Tensor::randn(Shape{1, 3, 8, 8}, rng);
  const Tensor want = tb.forward(x, false);
  core::TwoBranchModel folded = tb.clone();
  EXPECT_EQ(folded.fold_batchnorm(), 2);
  EXPECT_LT(folded.secure_param_bytes(), tb.secure_param_bytes());
  expect_close(folded.forward(x, false), want);
}

}  // namespace
}  // namespace tbnet
