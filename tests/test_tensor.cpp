// Unit tests for the tensor substrate: Shape, Rng, Tensor, GEMM, im2col, ops.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"
#include "tensor/threadpool.h"

namespace tbnet {
namespace {

// ---------------------------------------------------------------- Shape ----

TEST(Shape, NumelAndDims) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.ndim(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.dim(-3), 2);
}

TEST(Shape, EmptyShapeHasNumelOne) {
  Shape s;
  EXPECT_EQ(s.ndim(), 0);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, Strides) {
  Shape s{2, 3, 4};
  const auto st = s.strides();
  ASSERT_EQ(st.size(), 3u);
  EXPECT_EQ(st[0], 12);
  EXPECT_EQ(st[1], 4);
  EXPECT_EQ(st[2], 1);
}

TEST(Shape, DimOutOfRangeThrows) {
  Shape s{2, 3};
  EXPECT_THROW(s.dim(2), std::out_of_range);
  EXPECT_THROW(s.dim(-3), std::out_of_range);
}

TEST(Shape, EqualityAndString) {
  EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
  EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
  EXPECT_EQ(Shape({1, 2}).str(), "[1, 2]");
}

// ------------------------------------------------------------------ Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.uniform_int(17);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 17);
  }
  EXPECT_THROW(rng.uniform_int(0), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to match
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(9);
  Rng child = parent.split();
  // The child stream must not replay the parent stream.
  Rng parent2(9);
  parent2.split();
  EXPECT_NE(child.next_u64(), parent2.next_u64() + 1);  // smoke
}

// --------------------------------------------------------------- Tensor ----

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{3, 4});
  EXPECT_EQ(t.numel(), 12);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FactoryFull) {
  Tensor t = Tensor::full(Shape{2, 2}, 3.5f);
  EXPECT_EQ(t.sum(), 14.0f);
  EXPECT_EQ(t.min(), 3.5f);
  EXPECT_EQ(t.max(), 3.5f);
}

TEST(Tensor, MultiIndexAccess) {
  Tensor t(Shape{2, 3});
  t.at({1, 2}) = 5.0f;
  EXPECT_EQ(t[5], 5.0f);
  EXPECT_EQ(t.at({1, 2}), 5.0f);
  EXPECT_THROW(t.at({2, 0}), std::out_of_range);
  EXPECT_THROW(t.at({0}), std::invalid_argument);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::from({1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped(Shape{2, 3});
  EXPECT_EQ(r.at({1, 0}), 4.0f);
  EXPECT_THROW(t.reshaped(Shape{4, 2}), std::invalid_argument);
}

TEST(Tensor, AxpyAndScale) {
  Tensor a = Tensor::from({1, 2, 3});
  Tensor b = Tensor::from({10, 20, 30});
  a.axpy_(0.5f, b);
  EXPECT_TRUE(allclose(a, Tensor::from({6, 12, 18})));
  a.scale_(2.0f);
  EXPECT_TRUE(allclose(a, Tensor::from({12, 24, 36})));
}

TEST(Tensor, AxpyShapeMismatchThrows) {
  Tensor a(Shape{3});
  Tensor b(Shape{4});
  EXPECT_THROW(a.add_(b), std::invalid_argument);
}

TEST(Tensor, Reductions) {
  Tensor t = Tensor::from({-1, 4, -2, 3});
  EXPECT_FLOAT_EQ(t.sum(), 4.0f);
  EXPECT_FLOAT_EQ(t.mean(), 1.0f);
  EXPECT_FLOAT_EQ(t.abs_sum(), 10.0f);
  EXPECT_EQ(t.argmax(), 1);
  EXPECT_FLOAT_EQ(t.min(), -2.0f);
  EXPECT_FLOAT_EQ(t.max(), 4.0f);
}

TEST(Tensor, RandnIsDeterministicGivenSeed) {
  Rng r1(42), r2(42);
  Tensor a = Tensor::randn(Shape{100}, r1);
  Tensor b = Tensor::randn(Shape{100}, r2);
  EXPECT_TRUE(allclose(a, b, 0.0f, 0.0f));
}

TEST(Tensor, AllcloseDetectsDifference) {
  Tensor a = Tensor::from({1.0f, 2.0f});
  Tensor b = Tensor::from({1.0f, 2.001f});
  EXPECT_FALSE(allclose(a, b, 1e-6f, 1e-6f));
  EXPECT_TRUE(allclose(a, b, 1e-2f, 1e-2f));
}

// ----------------------------------------------------------------- GEMM ----

void naive_gemm(int64_t m, int64_t n, int64_t k, const float* a,
                const float* b, float* c) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0;
      for (int64_t p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
      c[i * n + j] = acc;
    }
  }
}

class GemmSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, MatchesNaiveReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(1000 + m * 31 + n * 7 + k);
  Tensor a = Tensor::randn(Shape{m, k}, rng);
  Tensor b = Tensor::randn(Shape{k, n}, rng);
  Tensor c(Shape{m, n}), ref(Shape{m, n});
  gemm_nn(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  naive_gemm(m, n, k, a.data(), b.data(), ref.data());
  EXPECT_TRUE(allclose(c, ref, 1e-4f, 1e-4f)) << "m=" << m << " n=" << n
                                              << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GemmSizes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(16, 16, 16), std::make_tuple(33, 17, 65),
                      std::make_tuple(64, 128, 27), std::make_tuple(128, 64, 300),
                      std::make_tuple(1, 257, 513)));

TEST(Gemm, TransposedVariantsAgree) {
  const int64_t m = 13, n = 19, k = 23;
  Rng rng(4);
  Tensor a = Tensor::randn(Shape{m, k}, rng);
  Tensor b = Tensor::randn(Shape{k, n}, rng);
  Tensor ref(Shape{m, n});
  naive_gemm(m, n, k, a.data(), b.data(), ref.data());

  // gemm_nt: pass B^T as [n, k].
  Tensor bt(Shape{n, k});
  for (int64_t i = 0; i < k; ++i)
    for (int64_t j = 0; j < n; ++j) bt[j * k + i] = b[i * n + j];
  Tensor c1(Shape{m, n});
  gemm_nt(m, n, k, 1.0f, a.data(), bt.data(), 0.0f, c1.data());
  EXPECT_TRUE(allclose(c1, ref, 1e-4f, 1e-4f));

  // gemm_tn: pass A^T as [k, m].
  Tensor at(Shape{k, m});
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < k; ++j) at[j * m + i] = a[i * k + j];
  Tensor c2(Shape{m, n});
  gemm_tn(m, n, k, 1.0f, at.data(), b.data(), 0.0f, c2.data());
  EXPECT_TRUE(allclose(c2, ref, 1e-4f, 1e-4f));
}

TEST(Gemm, AlphaBetaAccumulation) {
  const int64_t m = 4, n = 4, k = 4;
  Rng rng(5);
  Tensor a = Tensor::randn(Shape{m, k}, rng);
  Tensor b = Tensor::randn(Shape{k, n}, rng);
  Tensor c = Tensor::full(Shape{m, n}, 1.0f);
  Tensor ref(Shape{m, n});
  naive_gemm(m, n, k, a.data(), b.data(), ref.data());
  gemm_nn(m, n, k, 2.0f, a.data(), b.data(), 3.0f, c.data());
  for (int64_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(c[i], 2.0f * ref[i] + 3.0f, 1e-3f);
  }
}

TEST(Gemv, MatchesGemm) {
  const int64_t m = 9, n = 14;
  Rng rng(6);
  Tensor a = Tensor::randn(Shape{m, n}, rng);
  Tensor x = Tensor::randn(Shape{n}, rng);
  Tensor y(Shape{m}), ref(Shape{m});
  gemv(m, n, 1.0f, a.data(), x.data(), 0.0f, y.data());
  gemm_nn(m, 1, n, 1.0f, a.data(), x.data(), 0.0f, ref.data());
  EXPECT_TRUE(allclose(y, ref, 1e-4f, 1e-4f));
}

// --------------------------------------------------------------- im2col ----

TEST(Im2col, IdentityKernelReproducesImage) {
  // 1x1 kernel, stride 1, no pad: cols == image.
  Conv2dGeom g;
  g.in_c = 2;
  g.in_h = 3;
  g.in_w = 3;
  g.kernel_h = g.kernel_w = 1;
  g.pad_h = g.pad_w = 0;
  Rng rng(8);
  Tensor img = Tensor::randn(Shape{2, 3, 3}, rng);
  Tensor cols(Shape{g.col_rows(), g.col_cols()});
  im2col(g, img.data(), cols.data());
  EXPECT_TRUE(allclose(cols.reshaped(img.shape()), img));
}

TEST(Im2col, KnownValues3x3) {
  // Single-channel 3x3 image, 3x3 kernel, pad 1: center column = image.
  Conv2dGeom g;
  g.in_c = 1;
  g.in_h = 3;
  g.in_w = 3;
  g.kernel_h = g.kernel_w = 3;
  g.pad_h = g.pad_w = 1;
  Tensor img = Tensor::from({1, 2, 3, 4, 5, 6, 7, 8, 9}).reshaped(Shape{1, 3, 3});
  Tensor cols(Shape{g.col_rows(), g.col_cols()});
  im2col(g, img.data(), cols.data());
  // Row 4 is the (kh=1, kw=1) center tap: equals the image itself.
  for (int64_t i = 0; i < 9; ++i) EXPECT_EQ(cols[4 * 9 + i], img[i]);
  // Row 0 is the (kh=0, kw=0) tap: top-left neighbor, zero-padded first
  // row/col.
  EXPECT_EQ(cols[0 * 9 + 0], 0.0f);
  EXPECT_EQ(cols[0 * 9 + 4], 1.0f);  // output center sees pixel (0,0)
  EXPECT_EQ(cols[0 * 9 + 8], 5.0f);  // output (2,2) sees pixel (1,1)
}

TEST(Im2col, Col2imIsAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining adjoint
  // property, which is exactly what conv backward relies on.
  Conv2dGeom g;
  g.in_c = 3;
  g.in_h = 7;
  g.in_w = 5;
  g.kernel_h = 3;
  g.kernel_w = 2;
  g.stride_h = 2;
  g.stride_w = 1;
  g.pad_h = 1;
  g.pad_w = 1;
  Rng rng(9);
  Tensor x = Tensor::randn(Shape{g.in_c, g.in_h, g.in_w}, rng);
  Tensor y = Tensor::randn(Shape{g.col_rows(), g.col_cols()}, rng);
  Tensor cols(Shape{g.col_rows(), g.col_cols()});
  im2col(g, x.data(), cols.data());
  Tensor xback(Shape{g.in_c, g.in_h, g.in_w});
  col2im(g, y.data(), xback.data());
  double lhs = 0, rhs = 0;
  for (int64_t i = 0; i < cols.numel(); ++i) lhs += cols[i] * y[i];
  for (int64_t i = 0; i < x.numel(); ++i) rhs += x[i] * xback[i];
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

// ------------------------------------------------------------------ ops ----

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(10);
  Tensor logits = Tensor::randn(Shape{5, 7}, rng, 0.0f, 3.0f);
  Tensor p = softmax2d(logits);
  for (int64_t i = 0; i < 5; ++i) {
    double s = 0;
    for (int64_t j = 0; j < 7; ++j) {
      s += p[i * 7 + j];
      EXPECT_GE(p[i * 7 + j], 0.0f);
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Ops, SoftmaxStableUnderLargeLogits) {
  Tensor logits = Tensor::from({1000.0f, 1001.0f}).reshaped(Shape{1, 2});
  Tensor p = softmax2d(logits);
  EXPECT_NEAR(p[0], 1.0f / (1.0f + std::exp(1.0f)), 1e-5f);
  EXPECT_FALSE(std::isnan(p[0]));
}

TEST(Ops, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(11);
  Tensor logits = Tensor::randn(Shape{4, 6}, rng);
  Tensor lp = log_softmax2d(logits);
  Tensor p = softmax2d(logits);
  for (int64_t i = 0; i < lp.numel(); ++i) {
    EXPECT_NEAR(lp[i], std::log(p[i]), 1e-5f);
  }
}

TEST(Ops, AccuracyCountsCorrectRows) {
  Tensor logits = Tensor::from({0.9f, 0.1f,   // -> 0
                                0.2f, 0.8f,   // -> 1
                                0.6f, 0.4f})  // -> 0
                      .reshaped(Shape{3, 2});
  EXPECT_DOUBLE_EQ(accuracy(logits, {0, 1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 1, 0}), 2.0 / 3.0);
}

TEST(Ops, CrossEntropyKnownValue) {
  // Uniform logits over c classes -> loss = log(c).
  Tensor logits(Shape{2, 4});
  const double loss = softmax_cross_entropy(logits, {0, 3});
  EXPECT_NEAR(loss, std::log(4.0), 1e-6);
}

TEST(Ops, CrossEntropyGradMatchesFiniteDifference) {
  Rng rng(12);
  Tensor logits = Tensor::randn(Shape{3, 5}, rng);
  const std::vector<int64_t> labels = {1, 4, 0};
  Tensor grad;
  softmax_cross_entropy(logits, labels, &grad);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const double fd = (softmax_cross_entropy(lp, labels) -
                       softmax_cross_entropy(lm, labels)) /
                      (2.0 * eps);
    EXPECT_NEAR(grad[i], fd, 1e-3) << "at logit " << i;
  }
}

TEST(Ops, CrossEntropyRejectsBadLabels) {
  Tensor logits(Shape{1, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {3}), std::out_of_range);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}), std::invalid_argument);
}

TEST(Ops, ElementwiseHelpers) {
  Tensor a = Tensor::from({1, 2, 3});
  Tensor b = Tensor::from({4, 5, 6});
  EXPECT_TRUE(allclose(add(a, b), Tensor::from({5, 7, 9})));
  EXPECT_TRUE(allclose(sub(b, a), Tensor::from({3, 3, 3})));
  EXPECT_TRUE(allclose(mul(a, b), Tensor::from({4, 10, 18})));
}

// ------------------------------------------------------------ threadpool ----

TEST(ThreadPool, CoversFullRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  std::function<void(int64_t, int64_t)> fn = [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
  };
  pool.parallel_for(1000, fn);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesEmptyAndTinyRanges) {
  ThreadPool pool(3);
  int count = 0;
  std::function<void(int64_t, int64_t)> fn = [&](int64_t b, int64_t e) {
    count += static_cast<int>(e - b);
  };
  pool.parallel_for(0, fn);
  EXPECT_EQ(count, 0);
  pool.parallel_for(1, fn);
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(2);
  std::atomic<int64_t> total{0};
  std::function<void(int64_t, int64_t)> fn = [&](int64_t b, int64_t e) {
    total += e - b;
  };
  for (int rep = 0; rep < 50; ++rep) pool.parallel_for(97, fn);
  EXPECT_EQ(total.load(), 97 * 50);
}

}  // namespace
}  // namespace tbnet
