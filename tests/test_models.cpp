// Tests for the model zoo: victim builders, two-branch initialization rules,
// prune-point generation and the single-branch trainer.

#include <gtest/gtest.h>

#include "core/pruner.h"
#include "data/synthetic_cifar.h"
#include "models/model_zoo.h"
#include "models/trainer.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/residual.h"

namespace tbnet::models {
namespace {

ModelConfig small_vgg() {
  ModelConfig cfg;
  cfg.family = Family::kVgg;
  cfg.depth = 11;
  cfg.classes = 10;
  cfg.width_mult = 0.25;
  cfg.seed = 3;
  return cfg;
}

ModelConfig small_resnet() {
  ModelConfig cfg;
  cfg.family = Family::kResNet;
  cfg.depth = 20;
  cfg.classes = 10;
  cfg.width_mult = 0.25;
  cfg.seed = 4;
  return cfg;
}

TEST(ModelZoo, VggStageCounts) {
  EXPECT_EQ(num_stages(ModelConfig{.family = Family::kVgg, .depth = 11}), 9);
  EXPECT_EQ(num_stages(ModelConfig{.family = Family::kVgg, .depth = 13}), 11);
  EXPECT_EQ(num_stages(ModelConfig{.family = Family::kVgg, .depth = 16}), 14);
  EXPECT_EQ(num_stages(ModelConfig{.family = Family::kVgg, .depth = 18}), 17);
}

TEST(ModelZoo, ResNetStageCounts) {
  EXPECT_EQ(num_stages(ModelConfig{.family = Family::kResNet, .depth = 20}),
            11);
  EXPECT_EQ(num_stages(ModelConfig{.family = Family::kResNet, .depth = 32}),
            17);
}

TEST(ModelZoo, RejectsUnsupportedDepths) {
  EXPECT_THROW(build_victim(ModelConfig{.family = Family::kVgg, .depth = 15}),
               std::invalid_argument);
  EXPECT_THROW(
      build_victim(ModelConfig{.family = Family::kResNet, .depth = 21}),
      std::invalid_argument);
}

TEST(ModelZoo, VictimForwardShapes) {
  Rng rng(1);
  nn::Sequential vgg = build_victim(small_vgg());
  EXPECT_EQ(vgg.forward(Tensor::randn(Shape{2, 3, 32, 32}, rng), false).shape(),
            Shape({2, 10}));
  nn::Sequential resnet = build_victim(small_resnet());
  EXPECT_EQ(
      resnet.forward(Tensor::randn(Shape{2, 3, 32, 32}, rng), false).shape(),
      Shape({2, 10}));
}

TEST(ModelZoo, Vgg18HasHiddenDense) {
  ModelConfig cfg = small_vgg();
  cfg.depth = 18;
  nn::Sequential victim = build_victim(cfg);
  auto* head = dynamic_cast<nn::Sequential*>(&victim.layer(victim.size() - 1));
  ASSERT_NE(head, nullptr);
  EXPECT_NE(head->find_nth<nn::Dense>(1), nullptr);  // two dense layers
}

TEST(ModelZoo, WidthMultiplierScalesChannels) {
  ModelConfig cfg = small_vgg();
  cfg.width_mult = 1.0;
  nn::Sequential full = build_victim(cfg);
  auto* stage0 = dynamic_cast<nn::Sequential*>(&full.layer(0));
  ASSERT_NE(stage0, nullptr);
  EXPECT_EQ(stage0->find_nth<nn::Conv2d>(0)->out_channels(), 64);
  cfg.width_mult = 0.25;
  nn::Sequential quarter = build_victim(cfg);
  auto* q0 = dynamic_cast<nn::Sequential*>(&quarter.layer(0));
  EXPECT_EQ(q0->find_nth<nn::Conv2d>(0)->out_channels(), 16);
}

TEST(ModelZoo, TwoBranchVggExposedInheritsVictimWeights) {
  const ModelConfig cfg = small_vgg();
  nn::Sequential victim = build_victim(cfg);
  core::TwoBranchModel tb = build_two_branch(victim, cfg);
  ASSERT_EQ(tb.num_stages(), victim.size());

  Rng rng(2);
  Tensor x = Tensor::randn(Shape{1, 3, 32, 32}, rng);
  // M_R alone IS the victim at initialization (paper step 1).
  EXPECT_TRUE(allclose(tb.forward_exposed_only(x, false),
                       victim.forward(x, false), 1e-5f, 1e-5f));
  // M_T has the same architecture but fresh weights: same output shape,
  // different values.
  Tensor t_out = tb.forward_secure_only(x, false);
  EXPECT_EQ(t_out.shape(), Shape({1, 10}));
  EXPECT_FALSE(allclose(t_out, victim.forward(x, false)));
}

TEST(ModelZoo, TwoBranchResNetExposedDropsSkips) {
  const ModelConfig cfg = small_resnet();
  nn::Sequential victim = build_victim(cfg);
  core::TwoBranchModel tb = build_two_branch(victim, cfg);

  int exposed_residuals = 0, secure_residuals = 0;
  for (int i = 0; i < tb.num_stages(); ++i) {
    if (dynamic_cast<nn::ResidualBlock*>(tb.stage(i).exposed.get())) {
      ++exposed_residuals;
    }
    if (dynamic_cast<nn::ResidualBlock*>(tb.stage(i).secure.get())) {
      ++secure_residuals;
    }
  }
  EXPECT_EQ(exposed_residuals, 0);  // main branch only, skips excluded
  EXPECT_EQ(secure_residuals, 9);   // original architecture

  // The plain exposed branch still runs and inherits the victim's main-path
  // conv weights.
  Rng rng(3);
  Tensor x = Tensor::randn(Shape{1, 3, 32, 32}, rng);
  EXPECT_EQ(tb.forward_exposed_only(x, false).shape(), Shape({1, 10}));
  auto* victim_block = dynamic_cast<nn::ResidualBlock*>(&victim.layer(1));
  auto* exposed_block = dynamic_cast<nn::Sequential*>(tb.stage(1).exposed.get());
  ASSERT_NE(victim_block, nullptr);
  ASSERT_NE(exposed_block, nullptr);
  EXPECT_TRUE(allclose(exposed_block->find_nth<nn::Conv2d>(0)->weight(),
                       victim_block->conv1().weight(), 0.0f, 0.0f));
}

TEST(ModelZoo, TwoBranchRejectsMismatchedVictim) {
  nn::Sequential victim = build_victim(small_vgg());
  EXPECT_THROW(build_two_branch(victim, small_resnet()),
               std::invalid_argument);
}

TEST(ModelZoo, PrunePointsMatchFamilies) {
  const auto vgg_points = prune_points(small_vgg());
  EXPECT_EQ(vgg_points.size(), 8u);  // every conv stage
  for (const auto& p : vgg_points) {
    EXPECT_EQ(p.kind, core::PrunePoint::Kind::kInterface);
  }
  const auto res_points = prune_points(small_resnet());
  EXPECT_EQ(res_points.size(), 9u);  // every basic block
  for (const auto& p : res_points) {
    EXPECT_EQ(p.kind, core::PrunePoint::Kind::kInternal);
  }
}

TEST(ModelZoo, PrunePointsResolveOnFreshTwoBranch) {
  for (const ModelConfig& cfg : {small_vgg(), small_resnet()}) {
    nn::Sequential victim = build_victim(cfg);
    core::TwoBranchModel tb = build_two_branch(victim, cfg);
    for (const auto& point : prune_points(cfg)) {
      const core::ResolvedPoint rp = core::resolve_point(tb, point);
      EXPECT_GT(rp.bn_secure->channels(), 0);
    }
  }
}

TEST(ModelZoo, NamesAreDescriptive) {
  EXPECT_EQ(ModelConfig{}.name().substr(0, 3), "VGG");
  ModelConfig r = small_resnet();
  EXPECT_NE(r.name().find("ResNet20"), std::string::npos);
  EXPECT_NE(r.name().find("w="), std::string::npos);
}

TEST(Trainer, LearnsTinyTaskAboveChance) {
  ModelConfig cfg = small_resnet();
  cfg.classes = 4;
  nn::Sequential model = build_victim(cfg);
  auto [train, test] =
      data::SyntheticCifar::make_split(4, 160, 80, 11, 32, 0.25);
  TrainConfig tc;
  tc.epochs = 5;
  tc.batch_size = 32;
  tc.lr = 0.1;
  tc.augment = false;
  const TrainResult r = train_classifier(model, train, test, tc);
  EXPECT_EQ(r.epoch_test_acc.size(), 5u);
  EXPECT_GT(r.final_acc, 0.4);  // chance = 0.25
  EXPECT_DOUBLE_EQ(r.final_acc, evaluate(model, test));
}

TEST(Trainer, BnL1ShrinksGammasVsControl) {
  auto run = [](double l1) {
    ModelConfig cfg;
    cfg.family = Family::kVgg;
    cfg.depth = 11;
    cfg.classes = 4;
    cfg.width_mult = 0.125;
    cfg.seed = 7;
    nn::Sequential model = build_victim(cfg);
    auto [train, test] =
        data::SyntheticCifar::make_split(4, 96, 48, 12, 32, 0.25);
    TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 32;
    tc.bn_l1 = l1;
    tc.augment = false;
    train_classifier(model, train, test, tc);
    double mass = 0;
    for (auto& p : model.params()) {
      if (p.name.size() >= 5 &&
          p.name.compare(p.name.size() - 5, 5, "gamma") == 0) {
        mass += p.value->abs_sum();
      }
    }
    return mass;
  };
  EXPECT_LT(run(0.05), run(0.0));
}

}  // namespace
}  // namespace tbnet::models
