// End-to-end integration tests: the full six-step pipeline on miniature
// models, two-branch serialization, standalone-M_T retraining (Tab. 2
// machinery), deployment equivalence after the whole workflow, and
// determinism of the pipeline given fixed seeds.

#include <gtest/gtest.h>

#include <sstream>

#include "attack/attacks.h"
#include "core/pipeline.h"
#include "data/synthetic_cifar.h"
#include "models/model_zoo.h"
#include "models/trainer.h"
#include "runtime/deployed.h"
#include "runtime/measurements.h"
#include "tee/optee_api.h"

namespace tbnet {
namespace {

models::ModelConfig tiny_cfg(models::Family family) {
  models::ModelConfig cfg;
  cfg.family = family;
  cfg.depth = (family == models::Family::kVgg) ? 11 : 20;
  cfg.classes = 4;
  cfg.width_mult = 0.125;
  cfg.seed = 77;
  return cfg;
}

data::SyntheticCifar tiny_set(int64_t n, uint32_t split) {
  data::SyntheticCifar::Options opt;
  opt.classes = 4;
  opt.samples = n;
  opt.image_size = 32;
  opt.seed = 99;
  opt.split = split;
  opt.difficulty = 0.25;
  return data::SyntheticCifar(opt);
}

core::PipelineConfig fast_pipeline() {
  core::PipelineConfig pc;
  pc.transfer.epochs = 3;
  pc.transfer.batch_size = 32;
  pc.transfer.augment = false;
  pc.prune.ratio = 0.15;
  pc.prune.acc_drop_budget = 0.25;
  pc.prune.max_iterations = 2;
  pc.prune.finetune.epochs = 1;
  pc.prune.finetune.batch_size = 32;
  pc.prune.finetune.augment = false;
  pc.recovery.epochs = 1;
  pc.recovery.batch_size = 32;
  pc.recovery.augment = false;
  return pc;
}

TEST(Integration, TwoBranchSerializationRoundTrip) {
  const auto cfg = tiny_cfg(models::Family::kVgg);
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel model = models::build_two_branch(victim, cfg);
  // Give one stage a non-trivial channel map by pruning + rollback by hand.
  core::TwoBranchModel snapshot = model.clone();
  const auto points = models::prune_points(cfg);
  std::vector<std::vector<int64_t>> keep;
  for (const auto& p : points) {
    const auto rp = core::resolve_point(model, p);
    std::vector<int64_t> k;
    for (int64_t c = 0; c + 1 < rp.bn_secure->channels(); ++c) k.push_back(c);
    core::apply_channel_keep(model, p, k);
    keep.push_back(k);
  }
  core::rollback_finalize(model, std::move(snapshot), points, keep);

  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  core::save_two_branch(ss, model);
  core::TwoBranchModel loaded = core::load_two_branch(ss);

  Rng rng(1);
  Tensor x = Tensor::randn(Shape{2, 3, 32, 32}, rng);
  EXPECT_TRUE(allclose(model.forward(x, false), loaded.forward(x, false),
                       0.0f, 0.0f));
  EXPECT_TRUE(allclose(model.forward_exposed_only(x, false),
                       loaded.forward_exposed_only(x, false), 0.0f, 0.0f));
  EXPECT_EQ(model.stage(0).channel_map, loaded.stage(0).channel_map);
}

TEST(Integration, LoadTwoBranchRejectsGarbage) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ss << "garbage bytes here";
  EXPECT_THROW(core::load_two_branch(ss), std::runtime_error);
}

TEST(Integration, RetrainSecureStandaloneImprovesSecureOnlyAccuracy) {
  const auto cfg = tiny_cfg(models::Family::kVgg);
  const auto train = tiny_set(120, 0);
  const auto test = tiny_set(60, 1);
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel model = models::build_two_branch(victim, cfg);

  const double before = core::evaluate_secure_only(model, test);
  // Snapshot exposed weights: standalone retraining must not touch them.
  std::vector<Tensor> exposed_before;
  for (auto& p : model.params_exposed()) exposed_before.push_back(*p.value);

  core::TransferConfig rc;
  rc.epochs = 4;
  rc.batch_size = 32;
  rc.lr = 0.05;
  rc.augment = false;
  const auto r = core::retrain_secure_standalone(model, train, test, rc);
  EXPECT_GT(r.final_acc, before);
  EXPECT_GT(r.final_acc, 0.3);  // chance = 0.25

  auto exposed_after = model.params_exposed();
  for (size_t i = 0; i < exposed_before.size(); ++i) {
    EXPECT_TRUE(allclose(*exposed_after[i].value, exposed_before[i], 0.0f,
                         0.0f));
  }
}

class PipelineFamilies
    : public ::testing::TestWithParam<models::Family> {};

TEST_P(PipelineFamilies, FullWorkflowThenDeploymentIsConsistent) {
  const auto cfg = tiny_cfg(GetParam());
  const auto train = tiny_set(120, 0);
  const auto test = tiny_set(60, 1);

  nn::Sequential victim = models::build_victim(cfg);
  models::TrainConfig vt;
  vt.epochs = 3;
  vt.batch_size = 32;
  vt.lr = 0.1;
  vt.augment = false;
  models::train_classifier(victim, train, test, vt);

  core::TwoBranchModel model = models::build_two_branch(victim, cfg);
  const auto points = models::prune_points(cfg);
  const auto report =
      core::TbnetPipeline(fast_pipeline()).run(model, points, train, test);

  // Deploy and verify the TA path agrees with the in-process model.
  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  runtime::DeployedTBNet deployed(model, ctx);
  for (int i = 0; i < 3; ++i) {
    const data::Sample s = test.get(i);
    const Tensor want =
        model.forward(s.image.reshaped(Shape{1, 3, 32, 32}), false);
    // Folded/fused engine: tight relative tolerance, not bitwise.
    EXPECT_TRUE(allclose(deployed.infer(s.image), want, 1e-4f, 1e-5f));
  }
  EXPECT_EQ(ctx.channel().leaked_bytes(), 0);

  // The attacker's extracted model agrees with the exposed-only path.
  nn::Sequential stolen = attack::extract_exposed_model(model);
  EXPECT_DOUBLE_EQ(models::evaluate(stolen, test),
                   core::evaluate_exposed_only(model, test));
  // Resource report sanity.
  EXPECT_GT(report.secure_bytes_initial, 0);
  EXPECT_LE(report.secure_bytes_final, report.secure_bytes_initial);
}

INSTANTIATE_TEST_SUITE_P(Families, PipelineFamilies,
                         ::testing::Values(models::Family::kVgg,
                                           models::Family::kResNet));

TEST(Integration, PipelineIsDeterministicGivenSeeds) {
  const auto cfg = tiny_cfg(models::Family::kVgg);
  const auto train = tiny_set(80, 0);
  const auto test = tiny_set(40, 1);

  auto run_once = [&]() {
    nn::Sequential victim = models::build_victim(cfg);
    models::TrainConfig vt;
    vt.epochs = 2;
    vt.batch_size = 32;
    vt.augment = false;
    models::train_classifier(victim, train, test, vt);
    core::TwoBranchModel model = models::build_two_branch(victim, cfg);
    const auto report = core::TbnetPipeline(fast_pipeline())
                            .run(model, models::prune_points(cfg), train, test);
    return std::make_pair(report.final_acc, report.attack_direct_acc);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

TEST(Integration, FootprintMatchesTaAllocationOrder) {
  // The analytic secure_total_bytes must be within the TA's true peak
  // (model + transient activation buffers) by construction of the
  // accounting; assert the relationship holds on a real inference.
  const auto cfg = tiny_cfg(models::Family::kVgg);
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel model = models::build_two_branch(victim, cfg);
  const auto fp = runtime::measure_two_branch(model, Shape{3, 32, 32});

  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  runtime::DeployedTBNet deployed(model, ctx);
  Rng rng(4);
  deployed.infer(Tensor::randn(Shape{3, 32, 32}, rng));
  // Model weights dominate and are always resident.
  EXPECT_GE(world.memory().peak_bytes(), fp.secure_model_bytes);
  // The analytic activation estimate is the same order as the true peak.
  EXPECT_LE(world.memory().peak_bytes(),
            fp.secure_model_bytes + 4 * fp.secure_activation_peak +
                fp.input_bytes);
}

}  // namespace
}  // namespace tbnet
