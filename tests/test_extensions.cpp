// Tests for the extension surface: extra layers (Dropout, LeakyReLU, Tanh,
// Sigmoid, AvgPool2d), Adam + CosineLR, sealed TA images, the JSON report
// writer, the deployment profiler, and the architecture-inference attack.

#include <gtest/gtest.h>

#include <cmath>

#include "attack/attacks.h"
#include "core/pruner.h"
#include "core/report.h"
#include "core/rollback.h"
#include "models/model_zoo.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/optimizer.h"
#include "nn/pool.h"
#include "nn/sequential.h"
#include "nn/serialize.h"
#include "runtime/profiler.h"
#include "tee/sealing.h"

namespace tbnet {
namespace {

// ---------------------------------------------------------------- layers ---

TEST(Dropout, IdentityAtInference) {
  nn::Dropout drop(0.5, 1);
  Rng rng(1);
  Tensor x = Tensor::randn(Shape{4, 8}, rng);
  EXPECT_TRUE(allclose(drop.forward(x, false), x, 0.0f, 0.0f));
}

TEST(Dropout, DropsAboutPAndRescales) {
  nn::Dropout drop(0.25, 7);
  Tensor x = Tensor::ones(Shape{10000});
  Tensor y = drop.forward(x, true);
  int64_t zeros = 0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y[i], 1.0f / 0.75f, 1e-5f);  // inverted scaling
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.numel(), 0.25, 0.02);
}

TEST(Dropout, BackwardUsesSameMask) {
  nn::Dropout drop(0.5, 3);
  Tensor x = Tensor::ones(Shape{64});
  Tensor y = drop.forward(x, true);
  Tensor g = drop.backward(Tensor::ones(Shape{64}));
  for (int64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(y[i] == 0.0f, g[i] == 0.0f) << i;
  }
}

TEST(Dropout, RejectsBadP) {
  EXPECT_THROW(nn::Dropout(-0.1), std::invalid_argument);
  EXPECT_THROW(nn::Dropout(1.0), std::invalid_argument);
}

TEST(LeakyReLU, ForwardAndBackward) {
  nn::LeakyReLU lrelu(0.1f);
  Tensor x = Tensor::from({-2.0f, 3.0f});
  Tensor y = lrelu.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], -0.2f);
  EXPECT_FLOAT_EQ(y[1], 3.0f);
  Tensor g = lrelu.backward(Tensor::from({1.0f, 1.0f}));
  EXPECT_FLOAT_EQ(g[0], 0.1f);
  EXPECT_FLOAT_EQ(g[1], 1.0f);
}

TEST(TanhLayer, MatchesStdTanhAndGradient) {
  nn::Tanh tanh_layer;
  Tensor x = Tensor::from({-1.0f, 0.0f, 2.0f});
  Tensor y = tanh_layer.forward(x, true);
  for (int64_t i = 0; i < 3; ++i) EXPECT_NEAR(y[i], std::tanh(x[i]), 1e-6f);
  Tensor g = tanh_layer.backward(Tensor::ones(Shape{3}));
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(g[i], 1.0f - y[i] * y[i], 1e-6f);
  }
}

TEST(SigmoidLayer, KnownValuesAndGradient) {
  nn::Sigmoid sig;
  Tensor x = Tensor::from({0.0f});
  Tensor y = sig.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.5f);
  Tensor g = sig.backward(Tensor::from({4.0f}));
  EXPECT_FLOAT_EQ(g[0], 1.0f);  // 4 * 0.5 * 0.5
}

TEST(AvgPool2d, ForwardAverages) {
  nn::AvgPool2d pool(2);
  Tensor x = Tensor::from({1, 2, 3, 4}).reshaped(Shape{1, 1, 2, 2});
  Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 2.5f);
}

TEST(AvgPool2d, BackwardSpreadsUniformly) {
  nn::AvgPool2d pool(2);
  Tensor x = Tensor::from({1, 2, 3, 4}).reshaped(Shape{1, 1, 2, 2});
  pool.forward(x, true);
  Tensor g = pool.backward(Tensor::from({8.0f}).reshaped(Shape{1, 1, 1, 1}));
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(g[i], 2.0f);
}

TEST(AvgPool2d, RejectsOversizedWindow) {
  nn::AvgPool2d pool(4);
  EXPECT_THROW(pool.forward(Tensor(Shape{1, 1, 2, 2}), false),
               std::invalid_argument);
}

// ------------------------------------------------------------- optimizers --

TEST(Adam, ConvergesOnQuadratic) {
  // minimize (w - 3)^2; Adam should get close quickly.
  Tensor w = Tensor::from({0.0f});
  Tensor g = Tensor::from({0.0f});
  std::vector<nn::ParamRef> params{{"w", &w, &g, false}};
  nn::Adam adam(0.1);
  for (int i = 0; i < 200; ++i) {
    g[0] = 2.0f * (w[0] - 3.0f);
    adam.step(params);
  }
  EXPECT_NEAR(w[0], 3.0f, 0.05f);
}

TEST(Adam, ResetsOnShapeChange) {
  Tensor w = Tensor::from({0.0f, 0.0f});
  Tensor g = Tensor::from({1.0f, 1.0f});
  std::vector<nn::ParamRef> params{{"w", &w, &g, false}};
  nn::Adam adam(0.1);
  adam.step(params);
  w = Tensor::from({0.0f});
  g = Tensor::from({1.0f});
  adam.step(params);  // must not crash
  EXPECT_LT(w[0], 0.0f);
}

TEST(CosineLR, EndpointsAndMonotone) {
  nn::CosineLR lr(0.1, 10, 0.001);
  EXPECT_NEAR(lr.lr_at(0), 0.1, 1e-9);
  EXPECT_NEAR(lr.lr_at(9), 0.001, 1e-9);
  for (int e = 1; e < 10; ++e) {
    EXPECT_LT(lr.lr_at(e), lr.lr_at(e - 1));
  }
  EXPECT_NEAR(lr.lr_at(25), 0.001, 1e-9);  // clamped past the horizon
}

TEST(SerializeExtensions, NewLayersRoundTrip) {
  Rng rng(5);
  nn::Sequential seq;
  seq.emplace<nn::Dense>(6, 6, rng);
  seq.emplace<nn::LeakyReLU>(0.2f);
  seq.emplace<nn::Tanh>();
  seq.emplace<nn::Sigmoid>();
  seq.emplace<nn::Dropout>(0.3, 11);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  nn::save_model(ss, seq);
  auto loaded = nn::load_model(ss);
  Tensor x = Tensor::randn(Shape{2, 6}, rng);
  EXPECT_TRUE(allclose(seq.forward(x, false), loaded->forward(x, false),
                       0.0f, 0.0f));
}

TEST(SerializeExtensions, AvgPoolRoundTrip) {
  nn::Sequential seq;
  seq.emplace<nn::AvgPool2d>(2, 2);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  nn::save_model(ss, seq);
  auto loaded = nn::load_model(ss);
  Rng rng(6);
  Tensor x = Tensor::randn(Shape{1, 2, 4, 4}, rng);
  EXPECT_TRUE(allclose(seq.forward(x, false), loaded->forward(x, false),
                       0.0f, 0.0f));
}

// ---------------------------------------------------------------- sealing --

TEST(Sealing, RoundTrip) {
  const auto key = tee::DeviceKey::derive("device-0");
  std::vector<uint8_t> secret = {1, 2, 3, 200, 255, 0, 42};
  const tee::SealedBlob blob = tee::seal(key, 99, secret);
  EXPECT_NE(blob.ciphertext, secret);  // actually encrypted
  EXPECT_EQ(tee::unseal(key, blob), secret);
}

TEST(Sealing, WrongKeyRejected) {
  const auto key = tee::DeviceKey::derive("device-0");
  const auto other = tee::DeviceKey::derive("device-1");
  EXPECT_NE(key, other);
  const tee::SealedBlob blob = tee::seal(key, 1, {9, 9, 9});
  EXPECT_THROW(tee::unseal(other, blob), tee::SecurityViolation);
}

TEST(Sealing, TamperDetected) {
  const auto key = tee::DeviceKey::derive("device-0");
  tee::SealedBlob blob = tee::seal(key, 1, std::vector<uint8_t>(100, 7));
  blob.ciphertext[50] ^= 0x01;
  EXPECT_THROW(tee::unseal(key, blob), tee::SecurityViolation);
}

TEST(Sealing, WireFormatRoundTrip) {
  const auto key = tee::DeviceKey::derive("k");
  const tee::SealedBlob blob = tee::seal(key, 77, {5, 4, 3, 2, 1});
  const auto wire = blob.serialize();
  const tee::SealedBlob back = tee::SealedBlob::deserialize(wire);
  EXPECT_EQ(back.nonce, blob.nonce);
  EXPECT_EQ(back.tag, blob.tag);
  EXPECT_EQ(tee::unseal(key, back), (std::vector<uint8_t>{5, 4, 3, 2, 1}));
  EXPECT_THROW(tee::SealedBlob::deserialize({1, 2, 3}),
               std::invalid_argument);
}

TEST(Sealing, DifferentNoncesDifferentCiphertext) {
  const auto key = tee::DeviceKey::derive("k");
  const std::vector<uint8_t> msg(64, 1);
  EXPECT_NE(tee::seal(key, 1, msg).ciphertext,
            tee::seal(key, 2, msg).ciphertext);
}

// ------------------------------------------------------------ JSON report --

TEST(JsonReport, EmitsWellFormedDocument) {
  core::PipelineReport r;
  r.transfer_acc = 0.9;
  r.final_acc = 0.87;
  r.attack_direct_acc = 0.4;
  r.rollback_applied = true;
  r.secure_bytes_final = 12345;
  core::PruneIteration it;
  it.index = 0;
  it.accepted = true;
  it.acc_after_finetune = 0.88;
  r.prune_iterations.push_back(it);

  const std::string json = core::to_json(r, "VGG \"18\"");
  EXPECT_NE(json.find("\"label\":\"VGG \\\"18\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"rollback_applied\":true"), std::string::npos);
  EXPECT_NE(json.find("\"secure_bytes_final\":12345"), std::string::npos);
  EXPECT_NE(json.find("\"prune_iterations\":[{"), std::string::npos);
  // Balanced braces / brackets.
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(JsonReport, WriterRejectsUnbalancedScopes) {
  core::JsonWriter w;
  EXPECT_THROW(w.end_object(), std::logic_error);
}

// -------------------------------------------------------------- profiler ---

TEST(Profiler, ConsistentWithFootprints) {
  models::ModelConfig cfg;
  cfg.family = models::Family::kVgg;
  cfg.depth = 11;
  cfg.classes = 10;
  cfg.width_mult = 0.125;
  cfg.seed = 8;
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel model = models::build_two_branch(victim, cfg);
  const tee::CostModel device(tee::DeviceProfile::rpi3());
  const auto profile =
      runtime::profile_deployment(model, victim, device, Shape{3, 32, 32});

  ASSERT_EQ(profile.stages.size(), static_cast<size_t>(model.num_stages()));
  EXPECT_FALSE(profile.stages.back().fused);
  EXPECT_EQ(profile.stages.back().transfer_bytes, 0);
  EXPECT_GT(profile.latency_reduction(), 0.0);
  EXPECT_GT(profile.memory_reduction(), 0.0);
  const std::string table = runtime::format_profile(profile);
  EXPECT_NE(table.find("latency: baseline"), std::string::npos);
  EXPECT_NE(table.find("secure memory:"), std::string::npos);
}

// ------------------------------------------------- architecture inference --

TEST(ArchInference, FullLeakBeforeRollbackNoneAfter) {
  models::ModelConfig cfg;
  cfg.family = models::Family::kVgg;
  cfg.depth = 11;
  cfg.classes = 10;
  cfg.width_mult = 0.25;
  cfg.seed = 12;
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel model = models::build_two_branch(victim, cfg);
  const auto points = models::prune_points(cfg);

  // Before any pruning the branches are identical: total leak.
  auto leak = attack::infer_tee_architecture(model, points);
  EXPECT_DOUBLE_EQ(leak.leak_fraction, 1.0);

  // Prune every interface once (shared mask) — still identical widths.
  core::TwoBranchModel snapshot = model.clone();
  std::vector<std::vector<int64_t>> keep;
  for (const auto& p : points) {
    const auto rp = core::resolve_point(model, p);
    std::vector<int64_t> k;
    for (int64_t c = 0; c + 2 < rp.bn_secure->channels(); ++c) k.push_back(c);
    core::apply_channel_keep(model, p, k);
    keep.push_back(k);
  }
  leak = attack::infer_tee_architecture(model, points);
  EXPECT_DOUBLE_EQ(leak.leak_fraction, 1.0);

  // Rollback: every interface diverges; the attacker's guess fails
  // everywhere.
  core::rollback_finalize(model, std::move(snapshot), points, keep);
  leak = attack::infer_tee_architecture(model, points);
  EXPECT_DOUBLE_EQ(leak.leak_fraction, 0.0);
}

}  // namespace
}  // namespace tbnet
