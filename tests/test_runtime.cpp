// Tests for the deployment runtime: footprint measurement, the TBNet TA,
// the full-TEE and partition baselines, and the security invariants they
// must satisfy inside the simulated device.

#include <gtest/gtest.h>

#include "core/knowledge_transfer.h"
#include "core/pruner.h"
#include "core/rollback.h"
#include "models/model_zoo.h"
#include "runtime/deployed.h"
#include "runtime/measurements.h"
#include "tee/cost_model.h"

namespace tbnet::runtime {
namespace {

models::ModelConfig tiny_vgg_cfg() {
  models::ModelConfig cfg;
  cfg.family = models::Family::kVgg;
  cfg.depth = 11;
  cfg.classes = 10;
  cfg.width_mult = 0.125;
  cfg.seed = 9;
  return cfg;
}

TEST(Measurements, VictimFootprintConsistency) {
  nn::Sequential victim = models::build_victim(tiny_vgg_cfg());
  const VictimFootprint fp = measure_victim(victim, Shape{3, 32, 32});
  EXPECT_EQ(fp.model_bytes, victim.param_bytes());
  EXPECT_EQ(fp.stage_macs.size(), static_cast<size_t>(victim.size()));
  EXPECT_EQ(fp.input_bytes, 3 * 32 * 32 * 4);
  int64_t total_macs = 0;
  for (int64_t m : fp.stage_macs) total_macs += m;
  EXPECT_EQ(total_macs, victim.macs(Shape{1, 3, 32, 32}));
  EXPECT_GT(fp.activation_peak, 0);
  EXPECT_EQ(fp.total_bytes, fp.model_bytes + fp.activation_peak);
}

TEST(Measurements, TwoBranchFootprintConsistency) {
  const auto cfg = tiny_vgg_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
  const TwoBranchFootprint fp = measure_two_branch(tb, Shape{3, 32, 32});
  EXPECT_EQ(fp.stages.size(), static_cast<size_t>(tb.num_stages()));
  EXPECT_EQ(fp.secure_model_bytes, tb.secure_param_bytes());
  EXPECT_EQ(fp.exposed_model_bytes, tb.exposed_param_bytes());
  // Transfers: one feature map per fused stage; the head stage is not fused
  // (no REE execution, no transfer) — the TBNet output comes from M_T alone.
  int64_t sum = 0;
  for (size_t i = 0; i < fp.stages.size(); ++i) {
    const auto& s = fp.stages[i];
    EXPECT_GT(s.secure_macs, 0);
    if (tb.stage(static_cast<int>(i)).fused) {
      EXPECT_GT(s.transfer_bytes, 0);
      EXPECT_GT(s.exposed_macs, 0);
    } else {
      EXPECT_EQ(s.transfer_bytes, 0);
      EXPECT_EQ(s.exposed_macs, 0);
    }
    sum += s.transfer_bytes;
  }
  EXPECT_FALSE(tb.stage(tb.num_stages() - 1).fused);
  EXPECT_EQ(sum, fp.total_transfer_bytes);
  EXPECT_EQ(fp.secure_total_bytes,
            fp.secure_model_bytes + fp.secure_activation_peak);
}

TEST(Measurements, PrunedSecureBranchShrinksFootprint) {
  const auto cfg = tiny_vgg_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
  const int64_t before =
      measure_two_branch(tb, Shape{3, 32, 32}).secure_total_bytes;
  // Halve every interface.
  for (const auto& point : models::prune_points(cfg)) {
    const core::ResolvedPoint rp = core::resolve_point(tb, point);
    std::vector<int64_t> keep;
    for (int64_t c = 0; c < rp.bn_secure->channels(); c += 2) keep.push_back(c);
    core::apply_channel_keep(tb, point, keep);
  }
  const int64_t after =
      measure_two_branch(tb, Shape{3, 32, 32}).secure_total_bytes;
  EXPECT_LT(after, before);
}

TEST(DeployedTBNet, MatchesInProcessInference) {
  const auto cfg = tiny_vgg_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);

  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  DeployedTBNet deployed(tb, ctx);

  // The engine deploys with BN folded into the conv weights and fused GEMM
  // epilogues, so it matches the in-process forward to tight relative
  // tolerance rather than bitwise (run with TBNET_DETERMINISTIC=1 for
  // bit-identical deployment on the scalar reference kernels).
  Rng rng(5);
  for (int i = 0; i < 3; ++i) {
    Tensor img = Tensor::randn(Shape{3, 32, 32}, rng);
    Tensor want = tb.forward(img.reshaped(Shape{1, 3, 32, 32}), false);
    Tensor got = deployed.infer(img);
    EXPECT_TRUE(allclose(got, want, 1e-4f, 1e-5f)) << "inference " << i;
    EXPECT_EQ(deployed.predict(img), want.argmax());
  }
}

TEST(DeployedTBNet, WorksAfterPruneAndRollback) {
  const auto cfg = tiny_vgg_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
  const auto points = models::prune_points(cfg);

  // Prune every interface to 3/4 width, snapshot, prune again, rollback —
  // giving non-identity channel maps without any training.
  core::TwoBranchModel snapshot = tb.clone();
  std::vector<std::vector<int64_t>> last_keep;
  for (const auto& point : points) {
    const core::ResolvedPoint rp = core::resolve_point(tb, point);
    std::vector<int64_t> keep;
    for (int64_t c = 0; c < rp.bn_secure->channels(); ++c) {
      if (c % 4 != 1) keep.push_back(c);
    }
    core::apply_channel_keep(tb, point, keep);
    last_keep.push_back(keep);
  }
  core::rollback_finalize(tb, std::move(snapshot), points, last_keep);

  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  DeployedTBNet deployed(tb, ctx);
  Rng rng(6);
  Tensor img = Tensor::randn(Shape{3, 32, 32}, rng);
  Tensor want = tb.forward(img.reshaped(Shape{1, 3, 32, 32}), false);
  EXPECT_TRUE(allclose(deployed.infer(img), want, 1e-4f, 1e-5f));
}

TEST(DeployedTBNet, ChannelAccountingAndOneWayHold) {
  const auto cfg = tiny_vgg_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
  const TwoBranchFootprint fp = measure_two_branch(tb, Shape{3, 32, 32});

  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  DeployedTBNet deployed(tb, ctx);
  Rng rng(7);
  deployed.infer(Tensor::randn(Shape{3, 32, 32}, rng));

  // All pushes went into the TEE; nothing leaked out.
  EXPECT_EQ(ctx.channel().leaked_bytes(), 0);
  EXPECT_GT(ctx.channel().bytes_into_tee(), 0);
  // Feature-map payloads dominate; the channel must carry at least the raw
  // feature bytes (headers add a little).
  EXPECT_GE(ctx.channel().bytes_into_tee(),
            fp.total_transfer_bytes + fp.input_bytes);
  // The secure model is resident in TEE memory. The TA ships with
  // inference-mode BN folded into the convs, so its resident size is the
  // folded model's parameter bytes (slightly below the training model's).
  core::TwoBranchModel folded = tb.clone();
  folded.fold_batchnorm();
  EXPECT_GE(world.memory().live_bytes(), folded.secure_param_bytes());
  EXPECT_GT(world.memory().peak_bytes(), world.memory().live_bytes());
}

TEST(DeployedTBNet, ModelTooBigForSecureMemoryFailsLoudly) {
  const auto cfg = tiny_vgg_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
  tee::SecureWorld world(/*budget=*/1024);  // 1 KiB: nothing fits
  tee::TeeContext ctx(world);
  EXPECT_THROW(DeployedTBNet(tb, ctx), tee::SecurityViolation);
}

TEST(FullTeeDeployment, MatchesVictimForward) {
  const auto cfg = tiny_vgg_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  FullTeeDeployment deployed(victim, ctx);
  Rng rng(8);
  Tensor img = Tensor::randn(Shape{3, 32, 32}, rng);
  Tensor want = victim.forward(img.reshaped(Shape{1, 3, 32, 32}), false);
  EXPECT_TRUE(allclose(deployed.infer(img), want, 0.0f, 0.0f));
  EXPECT_EQ(deployed.predict(img), want.argmax());
  // The whole victim is resident in secure memory.
  EXPECT_GE(world.memory().live_bytes(), victim.param_bytes());
}

TEST(PartitionDeployment, SplitsComputationCorrectly) {
  const auto cfg = tiny_vgg_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  PartitionDeployment deployed(victim, /*first_tee_stage=*/3, ctx);
  Rng rng(9);
  Tensor img = Tensor::randn(Shape{3, 32, 32}, rng);
  Tensor want = victim.forward(img.reshaped(Shape{1, 3, 32, 32}), false);
  EXPECT_TRUE(allclose(deployed.infer(img), want, 0.0f, 0.0f));

  // What the attacker observes entering the TEE equals the output of the
  // first 3 stages — plaintext feature maps (DarkneTZ's weakness).
  Tensor x = img.reshaped(Shape{1, 3, 32, 32});
  for (int i = 0; i < 3; ++i) x = victim.layer(i).forward(x, false);
  EXPECT_TRUE(allclose(deployed.observable_tee_input(img), x, 0.0f, 0.0f));
}

TEST(PartitionDeployment, RejectsDegeneratePartitions) {
  const auto cfg = tiny_vgg_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  EXPECT_THROW(PartitionDeployment(victim, 0, ctx), std::invalid_argument);
  EXPECT_THROW(PartitionDeployment(victim, victim.size(), ctx),
               std::invalid_argument);
}

TEST(Latency, TbnetFootprintDrivesTimelineReduction) {
  // End-to-end: pruned two-branch footprint + RPi3 cost model must yield a
  // latency reduction vs. the all-in-TEE victim in the paper's 1.0-1.5x band.
  const auto cfg = tiny_vgg_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
  for (const auto& point : models::prune_points(cfg)) {
    const core::ResolvedPoint rp = core::resolve_point(tb, point);
    std::vector<int64_t> keep;
    for (int64_t c = 0; c < rp.bn_secure->channels(); ++c) {
      if (c % 2 == 0) keep.push_back(c);  // 50% pruned
    }
    core::apply_channel_keep(tb, point, keep);
  }
  const tee::CostModel cm(tee::DeviceProfile::rpi3());
  const VictimFootprint vfp = measure_victim(victim, Shape{3, 32, 32});
  const TwoBranchFootprint tfp = measure_two_branch(tb, Shape{3, 32, 32});
  const double baseline =
      simulate_full_tee(cm, vfp.stage_macs, vfp.input_bytes).makespan_s;
  const double split = simulate_two_branch(cm, tfp.stages).makespan_s;
  EXPECT_LT(split, baseline);
  EXPECT_GT(baseline / split, 1.02);
  EXPECT_LT(baseline / split, 6.0);
}

}  // namespace
}  // namespace tbnet::runtime
