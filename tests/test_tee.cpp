// Tests for the TEE simulator: secure memory, one-way channel, cost model,
// timelines, and the OP-TEE-style session API.

#include <gtest/gtest.h>

#include "tee/channel.h"
#include "tee/cost_model.h"
#include "tee/device_profile.h"
#include "tee/optee_api.h"
#include "tee/secure_memory.h"

namespace tbnet::tee {
namespace {

// -------------------------------------------------------- SecureMemory -----

TEST(SecureMemory, TracksLiveAndPeak) {
  SecureMemoryPool pool;
  {
    auto a = pool.allocate(100, "a");
    EXPECT_EQ(pool.live_bytes(), 100);
    {
      auto b = pool.allocate(50, "b");
      EXPECT_EQ(pool.live_bytes(), 150);
    }
    EXPECT_EQ(pool.live_bytes(), 100);
  }
  EXPECT_EQ(pool.live_bytes(), 0);
  EXPECT_EQ(pool.peak_bytes(), 150);
}

TEST(SecureMemory, EnforcesBudget) {
  SecureMemoryPool pool(128);
  auto a = pool.allocate(100, "model");
  EXPECT_THROW(pool.allocate(29, "too-much"), SecurityViolation);
  auto b = pool.allocate(28, "fits");
  EXPECT_EQ(pool.live_bytes(), 128);
}

TEST(SecureMemory, UnlimitedWhenBudgetZero) {
  SecureMemoryPool pool(0);
  auto a = pool.allocate(1ll << 40, "huge");
  EXPECT_EQ(pool.live_bytes(), 1ll << 40);
}

TEST(SecureMemory, MoveTransfersOwnership) {
  SecureMemoryPool pool;
  auto a = pool.allocate(10, "a");
  SecureMemoryPool::Allocation b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(pool.live_bytes(), 10);
  b.release();
  EXPECT_EQ(pool.live_bytes(), 0);
}

TEST(SecureMemory, RejectsNegative) {
  SecureMemoryPool pool;
  EXPECT_THROW(pool.allocate(-1, "bad"), std::invalid_argument);
}

// ------------------------------------------------------------- Channel -----

TEST(OneWayChannel, AllowsIntoTeeAndCounts) {
  OneWayChannel ch;
  ch.push(World::kNormal, World::kSecure, 1000);
  ch.push(World::kNormal, World::kSecure, 24);
  EXPECT_EQ(ch.transfer_count(), 2);
  EXPECT_EQ(ch.total_bytes(), 1024);
  EXPECT_EQ(ch.bytes_into_tee(), 1024);
  EXPECT_EQ(ch.leaked_bytes(), 0);
}

TEST(OneWayChannel, BlocksTeeToReeUnderOneWayPolicy) {
  OneWayChannel ch;
  EXPECT_THROW(ch.push(World::kSecure, World::kNormal, 8),
               SecurityViolation);
  // Nothing is recorded for the rejected transfer.
  EXPECT_EQ(ch.transfer_count(), 0);
}

TEST(OneWayChannel, BidirectionalPolicyCountsLeaks) {
  OneWayChannel ch(OneWayChannel::Policy::kBidirectional);
  ch.push(World::kSecure, World::kNormal, 4096);
  EXPECT_EQ(ch.leaked_bytes(), 4096);
}

TEST(OneWayChannel, RejectsDegenerateTransfers) {
  OneWayChannel ch;
  EXPECT_THROW(ch.push(World::kNormal, World::kNormal, 1),
               std::invalid_argument);
  EXPECT_THROW(ch.push(World::kNormal, World::kSecure, -1),
               std::invalid_argument);
}

TEST(OneWayChannel, ResetClearsCounters) {
  OneWayChannel ch;
  ch.push(World::kNormal, World::kSecure, 10);
  ch.reset();
  EXPECT_EQ(ch.transfer_count(), 0);
  EXPECT_EQ(ch.total_bytes(), 0);
}

// ----------------------------------------------------------- CostModel -----

TEST(CostModel, TeeSlowerThanRee) {
  CostModel cm(DeviceProfile::rpi3());
  const int64_t macs = 1'000'000;
  EXPECT_GT(cm.compute_seconds(World::kSecure, macs),
            cm.compute_seconds(World::kNormal, macs));
}

TEST(CostModel, MonotoneInMacsAndBytes) {
  CostModel cm(DeviceProfile::rpi3());
  EXPECT_LT(cm.compute_seconds(World::kSecure, 100),
            cm.compute_seconds(World::kSecure, 200));
  EXPECT_LT(cm.transfer_seconds(100), cm.transfer_seconds(1 << 20));
  EXPECT_GT(cm.transfer_seconds(0), 0.0);  // world switch is never free
  EXPECT_THROW(cm.compute_seconds(World::kSecure, -1), std::invalid_argument);
}

class TimelineStages : public ::testing::TestWithParam<int> {};

TEST_P(TimelineStages, TwoBranchNeverBeatsItsOwnTeeWork) {
  // Makespan >= total TEE compute and >= total REE compute (both are lower
  // bounds for any 2-processor schedule).
  const int n = GetParam();
  CostModel cm(DeviceProfile::rpi3());
  std::vector<StageCost> stages;
  for (int i = 0; i < n; ++i) {
    stages.push_back(StageCost{1'000'000 + 100'000 * i,
                               400'000 + 50'000 * i, 4096 * (i + 1)});
  }
  const TimelineResult r = simulate_two_branch(cm, stages);
  EXPECT_GE(r.makespan_s, r.tee_busy_s - 1e-12);
  EXPECT_GE(r.makespan_s, r.ree_busy_s - 1e-12);
  ASSERT_EQ(r.stage_finish_s.size(), static_cast<size_t>(n));
  for (size_t i = 1; i < r.stage_finish_s.size(); ++i) {
    EXPECT_GE(r.stage_finish_s[i], r.stage_finish_s[i - 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TimelineStages, ::testing::Values(1, 3, 8, 17));

TEST(Timeline, PrunedTbnetBeatsFullTeeBaseline) {
  // The paper's headline: full victim in TEE vs pruned secure branch in TEE
  // with the (rolled-back) exposed branch running in the faster REE.
  CostModel cm(DeviceProfile::rpi3());
  std::vector<int64_t> victim_macs(10, 30'000'000);
  const auto baseline =
      simulate_full_tee(cm, victim_macs, 3 * 32 * 32 * 4);
  std::vector<StageCost> tbnet;
  for (int i = 0; i < 10; ++i) {
    // Secure branch pruned to ~45% of the victim's per-stage work.
    tbnet.push_back(StageCost{30'000'000, 13'500'000, 32 * 32 * 64 * 4});
  }
  const auto split = simulate_two_branch(cm, tbnet);
  EXPECT_LT(split.makespan_s, baseline.makespan_s);
  const double reduction = baseline.makespan_s / split.makespan_s;
  EXPECT_GT(reduction, 1.05);
  EXPECT_LT(reduction, 2.5);
}

TEST(Timeline, FullTeeIsSerial) {
  CostModel cm(DeviceProfile::rpi3());
  const auto r = simulate_full_tee(cm, {1'000'000, 2'000'000}, 1000);
  EXPECT_NEAR(r.makespan_s,
              cm.transfer_seconds(1000) +
                  cm.compute_seconds(World::kSecure, 3'000'000),
              1e-12);
}

TEST(Timeline, PartitionChargesBoundaryTransfer) {
  CostModel cm(DeviceProfile::rpi3());
  const std::vector<int64_t> macs = {1'000'000, 1'000'000, 1'000'000};
  const std::vector<int64_t> bytes = {4096, 4096, 40};
  const auto r = simulate_partition(cm, macs, bytes, 1, 12288);
  const double expected = cm.compute_seconds(World::kNormal, 1'000'000) +
                          cm.transfer_seconds(4096) +
                          cm.compute_seconds(World::kSecure, 2'000'000) +
                          cm.switch_seconds();
  EXPECT_NEAR(r.makespan_s, expected, 1e-12);
}

TEST(Timeline, AcceleratedReeImprovesTbnetOnly) {
  // Discussion §5.3: REE-side acceleration (threads/NEON/GPU) speeds TBNet
  // up but leaves the all-in-TEE baseline untouched.
  std::vector<StageCost> stages(6, StageCost{20'000'000, 9'000'000, 65536});
  CostModel slow(DeviceProfile::rpi3());
  CostModel fast(DeviceProfile::rpi3_accelerated_ree(4.0));
  const auto a = simulate_two_branch(slow, stages);
  const auto b = simulate_two_branch(fast, stages);
  EXPECT_LT(b.makespan_s, a.makespan_s);
  std::vector<int64_t> victim(6, 20'000'000);
  EXPECT_NEAR(simulate_full_tee(slow, victim, 12288).makespan_s,
              simulate_full_tee(fast, victim, 12288).makespan_s, 1e-12);
}

// ------------------------------------------------------------ OP-TEE API ---

class EchoTA : public TrustedApp {
 public:
  uint32_t invoke(uint32_t command, const std::vector<uint8_t>& in,
                  std::vector<uint8_t>& out, TaContext&) override {
    if (command == 1) out = in;          // echo (leaks input back!)
    if (command == 2) out = {1, 2, 3};   // small result
    return kTeeSuccess;
  }
};

class GreedyTA : public TrustedApp {
 public:
  void on_install(TaContext& ctx) override {
    alloc_ = ctx.memory->allocate(1 << 20, "greedy/model");
  }
  uint32_t invoke(uint32_t, const std::vector<uint8_t>&,
                  std::vector<uint8_t>&, TaContext& ctx) override {
    auto scratch = ctx.memory->allocate(1 << 20, "greedy/scratch");
    return kTeeSuccess;
  }

 private:
  SecureMemoryPool::Allocation alloc_;
};

TEST(OpteeApi, SessionRoutesCommands) {
  SecureWorld world;
  world.install("echo", std::make_unique<EchoTA>());
  TeeContext ctx(world);
  TeeSession session = ctx.open_session("echo");
  std::vector<uint8_t> out;
  EXPECT_EQ(session.invoke(2, {9, 9}, &out), kTeeSuccess);
  EXPECT_EQ(out, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(ctx.channel().bytes_into_tee(), 2);
}

TEST(OpteeApi, LargeResultsAreBlocked) {
  SecureWorld world;
  world.install("echo", std::make_unique<EchoTA>());
  TeeContext ctx(world);
  TeeSession session = ctx.open_session("echo", /*max_result_bytes=*/16);
  std::vector<uint8_t> big(64, 7);
  std::vector<uint8_t> out;
  // The echo TA tries to return 64 B through a 16 B cap: feature-map-sized
  // returns are exactly what the one-way design forbids.
  EXPECT_THROW(session.invoke(1, big, &out), SecurityViolation);
}

TEST(OpteeApi, UnknownTaThrows) {
  SecureWorld world;
  TeeContext ctx(world);
  EXPECT_THROW(ctx.open_session("missing"), std::invalid_argument);
}

TEST(OpteeApi, InstallClaimsSecureMemory) {
  SecureWorld world(2 << 20);
  world.install("greedy", std::make_unique<GreedyTA>());
  EXPECT_EQ(world.memory().live_bytes(), 1 << 20);
  TeeContext ctx(world);
  TeeSession s = ctx.open_session("greedy");
  EXPECT_EQ(s.invoke(0, {}), kTeeSuccess);
  EXPECT_EQ(world.memory().peak_bytes(), 2 << 20);
}

TEST(OpteeApi, InstallFailsWhenModelDoesNotFit) {
  SecureWorld world(1 << 10);  // 1 KiB budget
  EXPECT_THROW(world.install("greedy", std::make_unique<GreedyTA>()),
               SecurityViolation);
}

TEST(OpteeApi, PackUnpackRoundTrip) {
  std::vector<uint8_t> buf;
  pack_i64(buf, -42);
  const float fs[3] = {1.5f, -2.5f, 3.0f};
  pack_floats(buf, fs, 3);
  size_t off = 0;
  EXPECT_EQ(unpack_i64(buf, &off), -42);
  const auto floats = unpack_floats(buf, &off, 3);
  EXPECT_EQ(floats[1], -2.5f);
  EXPECT_EQ(off, buf.size());
  EXPECT_THROW(unpack_i64(buf, &off), std::out_of_range);
}

}  // namespace
}  // namespace tbnet::tee
