// Fault-tolerance and overload tests (PR 7): the tee::FaultInjector at the
// optee_api boundaries, DeployedTBNet's bounded transient retry, and the
// InferenceServer's admission control (bounded queue + Block/Reject/
// ShedOldest), per-request deadlines, and typed failure accounting. The
// invariant under test throughout: every submitted future resolves with a
// typed status — faults, overload, and shutdown never hang a client or
// poison a sibling batch.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "models/model_zoo.h"
#include "nn/sequential.h"
#include "nn/serialize.h"
#include "runtime/deployed.h"
#include "runtime/server.h"
#include "tee/fault.h"
#include "tee/optee_api.h"
#include "tensor/ops.h"

namespace tbnet::runtime {
namespace {

using tee::FaultInjector;
using Kind = tee::FaultInjector::Kind;

models::ModelConfig tiny_vgg_cfg() {
  models::ModelConfig cfg;
  cfg.family = models::Family::kVgg;
  cfg.depth = 11;
  cfg.classes = 10;
  cfg.width_mult = 0.125;
  cfg.seed = 9;
  return cfg;
}

core::TwoBranchModel tiny_two_branch() {
  const auto cfg = tiny_vgg_cfg();
  nn::Sequential victim = models::build_victim(cfg);
  return models::build_two_branch(victim, cfg);
}

Tensor random_batch(int64_t n, Rng& rng) {
  return Tensor::randn(Shape{n, 3, 32, 32}, rng);
}

Tensor slice_image(const Tensor& batch, int64_t i) {
  const int64_t stride = batch.numel() / batch.dim(0);
  Tensor img(Shape{batch.dim(1), batch.dim(2), batch.dim(3)});
  const float* src = batch.data() + i * stride;
  std::copy(src, src + stride, img.data());
  return img;
}

/// A trivial engine whose FIRST call parks inside the engine until
/// release() — the staging tool that makes queue states deterministic:
/// while the single dispatch worker is pinned, submits queue up (or trip
/// the admission policy) with no race.
struct GatedEngine {
  std::mutex mu;
  std::condition_variable cv;
  bool started = false;
  bool released = false;
  std::atomic<int> calls{0};

  InferenceServer::BatchFn fn() {
    return [this](const Tensor& nchw) {
      if (calls.fetch_add(1) == 0) {
        std::unique_lock<std::mutex> lock(mu);
        started = true;
        cv.notify_all();
        cv.wait(lock, [this] { return released; });
      }
      return Tensor(Shape{nchw.dim(0), 2});
    };
  }
  void wait_started() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return started; });
  }
  void release() {
    std::lock_guard<std::mutex> lock(mu);
    released = true;
    cv.notify_all();
  }
};

Tensor chw(Rng& rng) { return Tensor::randn(Shape{1, 2, 2}, rng); }

// ---------------------------------------------------- FaultInjector --------

TEST(FaultInjector, SeededSamplingIsDeterministic) {
  FaultInjector a(42, 0.5);
  FaultInjector b(42, 0.5);
  int faults = 0;
  for (int i = 0; i < 200; ++i) {
    bool fa = false, fb = false;
    try {
      a.check("invoke");
    } catch (const tee::TransientFault&) {
      fa = true;
    }
    try {
      b.check("invoke");
    } catch (const tee::TransientFault&) {
      fb = true;
    }
    EXPECT_EQ(fa, fb) << "draw " << i;
    faults += fa ? 1 : 0;
  }
  // Same seed, same stream; and a 0.5 rate really fires about half the time.
  EXPECT_EQ(a.faults_injected(), b.faults_injected());
  EXPECT_GT(faults, 50);
  EXPECT_LT(faults, 150);

  FaultInjector never(7, 0.0);
  FaultInjector always(7, 1.0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_NO_THROW(never.check("invoke"));
    EXPECT_THROW(always.check("invoke"), tee::TransientFault);
  }
  FaultInjector permanent(7, 1.0, 1.0);
  EXPECT_THROW(permanent.check("open"), tee::PermanentFault);
  EXPECT_EQ(permanent.permanents_injected(), 1);
  EXPECT_EQ(permanent.transients_injected(), 0);
}

TEST(FaultInjector, ScriptedQueueTargetsExactBoundaries) {
  FaultInjector inj(1, 0.0);
  // kNone lets exactly one crossing pass; the transient fires on the next.
  inj.script(Kind::kNone);
  inj.script(Kind::kTransient);
  EXPECT_EQ(inj.scripted_pending(), 2);
  EXPECT_NO_THROW(inj.check("invoke"));
  EXPECT_THROW(inj.check("transfer"), tee::TransientFault);
  EXPECT_EQ(inj.scripted_pending(), 0);
  EXPECT_NO_THROW(inj.check("invoke"));  // queue drained, rate 0
  EXPECT_EQ(inj.faults_injected(), 1);
  inj.script(Kind::kTransient, 3);
  inj.clear_script();
  EXPECT_NO_THROW(inj.check("invoke"));
}

// ------------------------------------------------- engine retry ------------

TEST(DeployedFaults, TransientFaultsAreRetriedToSuccess) {
  core::TwoBranchModel tb = tiny_two_branch();
  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  DeployedTBNet deployed(tb, ctx);
  Rng rng(5);
  const Tensor batch = random_batch(2, rng);
  const Tensor want = deployed.infer_batch(batch);  // fault-free reference

  // Three consecutive transients on the next invoke: attempts 1-3 fault,
  // attempt 4 (the default budget's last) succeeds.
  ctx.faults().script(Kind::kTransient, 3);
  const Tensor got = deployed.infer_batch(batch);
  EXPECT_EQ(deployed.retries(), 3);
  EXPECT_EQ(ctx.faults().faults_injected(), 3);
  EXPECT_TRUE(allclose(got, want, 0.0f, 0.0f));  // bit-identical replay
}

TEST(DeployedFaults, RetryExhaustionThrowsAndEngineRecovers) {
  core::TwoBranchModel tb = tiny_two_branch();
  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  DeployedTBNet deployed(tb, ctx);
  Rng rng(6);
  const Tensor batch = random_batch(1, rng);
  const Tensor want = deployed.infer_batch(batch);

  ctx.faults().script(Kind::kTransient, 4);  // == default max_attempts
  try {
    deployed.infer_batch(batch);
    FAIL() << "expected retry exhaustion";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("failed after"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(ctx.faults().scripted_pending(), 0);
  // Every fault fired before the TA executed, so the engine is not wedged:
  // the next inference starts from SetInput and matches bit-for-bit.
  EXPECT_TRUE(allclose(deployed.infer_batch(batch), want, 0.0f, 0.0f));
}

TEST(DeployedFaults, PermanentFaultFailsFastWithoutRetry) {
  core::TwoBranchModel tb = tiny_two_branch();
  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  DeployedTBNet deployed(tb, ctx);
  Rng rng(7);
  const Tensor batch = random_batch(1, rng);
  deployed.infer_batch(batch);
  const int64_t retries_before = deployed.retries();

  ctx.faults().script(Kind::kPermanent);
  EXPECT_THROW(deployed.infer_batch(batch), tee::PermanentFault);
  EXPECT_EQ(deployed.retries(), retries_before);  // no budget burned
}

TEST(DeployedFaults, SessionOpenIsRetried) {
  core::TwoBranchModel tb = tiny_two_branch();
  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  ctx.faults().script(Kind::kTransient, 2);
  // Construction crosses the "open" boundary: two transients, then success.
  DeployedTBNet deployed(tb, ctx, "tbnet-open-retry");
  EXPECT_EQ(deployed.retries(), 2);
  Rng rng(8);
  EXPECT_EQ(deployed.infer_batch(random_batch(1, rng)).dim(1), 10);
}

TEST(ServerFaults, RetryExhaustionResolvesEngineError) {
  core::TwoBranchModel tb = tiny_two_branch();
  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  DeployedTBNet deployed(tb, ctx);
  Rng rng(9);
  const Tensor batch = random_batch(2, rng);

  InferenceServer::Config scfg;
  scfg.max_batch = 4;
  scfg.max_queue_delay = std::chrono::microseconds(1000);
  InferenceServer server(
      [&deployed](const Tensor& nchw) { return deployed.infer_batch(nchw); },
      scfg);

  // A healthy request first (also pins the serving shape).
  EXPECT_EQ(server.submit(slice_image(batch, 0)).get().status, Status::kOk);

  ctx.faults().script(Kind::kTransient, 4);
  InferenceResult r = server.submit(slice_image(batch, 1)).get();
  EXPECT_EQ(r.status, Status::kEngineError);
  EXPECT_NE(r.error.find("failed after"), std::string::npos) << r.error;

  // The worker survived the failing batch and keeps serving.
  EXPECT_EQ(server.submit(slice_image(batch, 0)).get().status, Status::kOk);
  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.requests, 3);
  EXPECT_EQ(stats.engine_errors, 1);
}

TEST(ServerFaults, OnePercentTransientRateServesEverythingOk) {
  // The acceptance soak in miniature: a deterministic-seed 1% fault rate
  // (plus two scripted transients so the retry path provably runs) must not
  // cost a single request — bounded retry absorbs every transient.
  core::TwoBranchModel tb = tiny_two_branch();
  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  DeployedTBNet deployed(tb, ctx);
  ctx.faults().set_rate(0.01);
  ctx.faults().script(Kind::kTransient, 2);

  InferenceServer::Config scfg;
  scfg.max_batch = 8;
  scfg.max_queue_delay = std::chrono::microseconds(500);
  InferenceServer server(
      [&deployed](const Tensor& nchw) { return deployed.infer_batch(nchw); },
      scfg);

  Rng rng(10);
  const int64_t total = 96;
  const Tensor batch = random_batch(total, rng);
  std::vector<std::future<InferenceResult>> futures;
  for (int64_t i = 0; i < total; ++i) {
    futures.push_back(server.submit(slice_image(batch, i)));
  }
  int64_t ok = 0;
  for (auto& f : futures) ok += f.get().ok() ? 1 : 0;
  EXPECT_EQ(ok, total);

  // Fold the engine-side counters the way bench_serving does.
  ServingStats stats = server.stats();
  stats.retries = deployed.retries();
  stats.faults_injected = ctx.faults().faults_injected();
  EXPECT_GE(stats.retries, 2);  // the scripted pair, at minimum
  EXPECT_EQ(stats.retries, stats.faults_injected);  // all recovered
  EXPECT_EQ(stats.engine_errors, 0);
  EXPECT_EQ(stats.requests, total);
}

// ---------------------------------------------- admission & deadlines ------

TEST(Admission, RejectPolicyAccountsExactly) {
  GatedEngine gate;
  InferenceServer::Config scfg;
  scfg.max_batch = 1;
  scfg.max_queue_delay = std::chrono::microseconds(100);
  scfg.queue_capacity = 2;
  scfg.admission = AdmissionPolicy::kReject;
  InferenceServer server(gate.fn(), scfg);
  Rng rng(20);

  auto f1 = server.submit(chw(rng));  // claimed by the pinned worker
  gate.wait_started();
  auto f2 = server.submit(chw(rng));  // queued (1/2)
  auto f3 = server.submit(chw(rng));  // queued (2/2) — full
  auto f4 = server.submit(chw(rng));  // rejected, resolves immediately
  auto f5 = server.submit(chw(rng));  // rejected
  ASSERT_EQ(f4.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  InferenceResult r4 = f4.get();
  EXPECT_EQ(r4.status, Status::kRejected);
  EXPECT_NE(r4.error.find("queue full"), std::string::npos) << r4.error;
  EXPECT_EQ(f5.get().status, Status::kRejected);

  gate.release();
  server.drain();
  EXPECT_EQ(f1.get().status, Status::kOk);
  EXPECT_EQ(f2.get().status, Status::kOk);
  EXPECT_EQ(f3.get().status, Status::kOk);

  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.requests, 3);
  EXPECT_EQ(stats.rejected, 2);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.expired, 0);
  // The accounting identity: every submit resolves through exactly one bin.
  EXPECT_EQ(stats.requests + stats.rejected + stats.shed + stats.expired, 5);
}

TEST(Admission, ShedOldestDropsTheFrontAndKeepsTheFreshest) {
  GatedEngine gate;
  InferenceServer::Config scfg;
  scfg.max_batch = 1;
  scfg.max_queue_delay = std::chrono::microseconds(100);
  scfg.queue_capacity = 2;
  scfg.admission = AdmissionPolicy::kShedOldest;
  InferenceServer server(gate.fn(), scfg);
  Rng rng(21);

  auto f1 = server.submit(chw(rng));  // claimed
  gate.wait_started();
  auto f2 = server.submit(chw(rng));  // queued — the oldest
  auto f3 = server.submit(chw(rng));  // queued — full
  auto f4 = server.submit(chw(rng));  // sheds f2, takes its place
  ASSERT_EQ(f2.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  InferenceResult shed = f2.get();
  EXPECT_EQ(shed.status, Status::kRejected);
  EXPECT_NE(shed.error.find("shed"), std::string::npos) << shed.error;

  gate.release();
  server.drain();
  EXPECT_EQ(f1.get().status, Status::kOk);
  EXPECT_EQ(f3.get().status, Status::kOk);
  EXPECT_EQ(f4.get().status, Status::kOk);  // the freshest work survived

  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.requests, 3);
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(stats.requests + stats.rejected + stats.shed + stats.expired, 4);
}

TEST(Admission, BlockPolicyAppliesBackpressure) {
  GatedEngine gate;
  InferenceServer::Config scfg;
  scfg.max_batch = 1;
  scfg.max_queue_delay = std::chrono::microseconds(100);
  scfg.queue_capacity = 1;
  scfg.admission = AdmissionPolicy::kBlock;
  InferenceServer server(gate.fn(), scfg);
  Rng rng(22);

  auto f1 = server.submit(chw(rng));  // claimed
  gate.wait_started();
  auto f2 = server.submit(chw(rng));  // queued — full
  std::atomic<bool> returned{false};
  std::future<InferenceResult> f3;
  std::thread submitter([&] {
    f3 = server.submit(chw(rng));  // must block until the worker frees space
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(returned.load()) << "kBlock submit returned with a full queue";

  gate.release();
  submitter.join();
  EXPECT_TRUE(returned.load());
  server.drain();
  EXPECT_EQ(f1.get().status, Status::kOk);
  EXPECT_EQ(f2.get().status, Status::kOk);
  EXPECT_EQ(f3.get().status, Status::kOk);
  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.requests, 3);
  EXPECT_EQ(stats.rejected + stats.shed + stats.expired, 0);
}

TEST(Admission, DeadlineExpiresInQueueWithoutRunning) {
  GatedEngine gate;
  InferenceServer::Config scfg;
  scfg.max_batch = 1;
  scfg.max_queue_delay = std::chrono::microseconds(100);
  InferenceServer server(gate.fn(), scfg);
  Rng rng(23);

  auto f1 = server.submit(chw(rng));  // claimed; pins the worker
  gate.wait_started();
  // 5 ms deadline, but the worker stays pinned for 30 ms: by claim time the
  // request is dead and must resolve kExpired without an engine call.
  auto f2 = server.submit(chw(rng), std::chrono::milliseconds(5));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  gate.release();
  server.drain();

  EXPECT_EQ(f1.get().status, Status::kOk);
  InferenceResult r2 = f2.get();
  EXPECT_EQ(r2.status, Status::kExpired);
  EXPECT_GE(r2.queue_s, 0.005);

  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.requests, 1);  // only f1 reached the engine
  EXPECT_EQ(stats.expired, 1);
  EXPECT_EQ(gate.calls.load(), 1);
}

TEST(Admission, ShutdownUnderLoadResolvesEveryFuture) {
  GatedEngine gate;
  InferenceServer::Config scfg;
  scfg.max_batch = 1;
  scfg.max_queue_delay = std::chrono::microseconds(100);
  scfg.queue_capacity = 1;
  scfg.admission = AdmissionPolicy::kBlock;
  InferenceServer server(gate.fn(), scfg);
  Rng rng(24);

  auto f1 = server.submit(chw(rng));  // claimed, pinned inside the engine
  gate.wait_started();
  auto f2 = server.submit(chw(rng));  // queued — full
  std::atomic<bool> returned{false};
  std::future<InferenceResult> f3;
  std::thread submitter([&] {
    f3 = server.submit(chw(rng));  // blocks on admission
    returned.store(true);
  });
  // Give the submitter time to park on space_cv_ (the queue stays full while
  // the worker is pinned, so `returned` can only flip once shutdown fires).
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(returned.load());
  std::thread closer([&] { server.shutdown(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.release();  // let the pinned worker finish so shutdown can join
  closer.join();
  submitter.join();

  // Shutdown's contract: the claimed and queued requests are served, the
  // submitter blocked on admission resolves kRejected, nobody hangs.
  EXPECT_EQ(f1.get().status, Status::kOk);
  EXPECT_EQ(f2.get().status, Status::kOk);
  InferenceResult r3 = f3.get();
  EXPECT_EQ(r3.status, Status::kRejected);
  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.requests, 2);
  EXPECT_EQ(stats.rejected, 1);
}

TEST(Admission, ConcurrentOverloadNeverLosesAFuture) {
  // Stress the bookkeeping: many submitters against a tiny shedding queue.
  // Whatever mix of Ok/Rejected results, every future must resolve and the
  // accounting identity must hold exactly.
  InferenceServer::Config scfg;
  scfg.max_batch = 4;
  scfg.max_queue_delay = std::chrono::microseconds(200);
  scfg.queue_capacity = 4;
  scfg.admission = AdmissionPolicy::kShedOldest;
  InferenceServer server(
      [](const Tensor& nchw) {
        std::this_thread::sleep_for(std::chrono::microseconds(300));
        return Tensor(Shape{nchw.dim(0), 2});
      },
      scfg);

  const int threads = 4;
  const int per_thread = 50;
  std::vector<std::vector<std::future<InferenceResult>>> futures(threads);
  {
    std::vector<std::thread> submitters;
    for (int t = 0; t < threads; ++t) {
      submitters.emplace_back([&, t] {
        Rng rng(100 + t);
        for (int i = 0; i < per_thread; ++i) {
          futures[static_cast<size_t>(t)].push_back(server.submit(chw(rng)));
        }
      });
    }
    for (auto& th : submitters) th.join();
  }
  server.drain();
  int64_t ok = 0, failed = 0;
  for (auto& per : futures) {
    for (auto& f : per) {
      ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
                std::future_status::ready);
      InferenceResult r = f.get();
      ok += r.ok() ? 1 : 0;
      failed += r.ok() ? 0 : 1;
    }
  }
  const int64_t submits = static_cast<int64_t>(threads) * per_thread;
  EXPECT_EQ(ok + failed, submits);
  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.requests + stats.rejected + stats.shed + stats.expired,
            submits);
  EXPECT_EQ(stats.requests - stats.engine_errors, ok);
  EXPECT_EQ(stats.rejected + stats.shed + stats.expired + stats.engine_errors,
            failed);
}

// ---------------------------------------- per-site / Nth-crossing scripts --

TEST(FaultInjector, PerSiteNthCrossingTargeting) {
  FaultInjector inj(3, 0.0);
  // Fire on the 2nd future crossing of "invoke"; "transfer" crossings in
  // between must not consume it.
  inj.script_at(Kind::kTransient, "invoke", 2);
  EXPECT_EQ(inj.scripted_pending(), 1);
  EXPECT_NO_THROW(inj.check("invoke"));    // invoke crossing 1
  EXPECT_NO_THROW(inj.check("transfer"));  // other site, no effect
  EXPECT_THROW(inj.check("invoke"), tee::TransientFault);  // crossing 2
  EXPECT_EQ(inj.scripted_pending(), 0);
  EXPECT_NO_THROW(inj.check("invoke"));
  EXPECT_EQ(inj.crossings("invoke"), 3);
  EXPECT_EQ(inj.crossings("transfer"), 1);

  // Targeted entries outrank the FIFO queue on their crossing, and are
  // relative to the CURRENT crossing count (nth = 1 means the next one).
  inj.script_at(Kind::kPermanent, "open");
  inj.script(Kind::kTransient);
  EXPECT_THROW(inj.check("open"), tee::PermanentFault);
  EXPECT_THROW(inj.check("open"), tee::TransientFault);  // FIFO still queued
  inj.script_at(Kind::kTransient, "open", 5);
  inj.clear_script();
  EXPECT_EQ(inj.scripted_pending(), 0);
}

TEST(FaultInjector, CorruptionFlipsPayloadBitsDeterministically) {
  FaultInjector inj(11, 0.0);
  const std::vector<uint8_t> payload(64, 0xAB);
  // Clean crossing: nullopt, nothing counted.
  EXPECT_FALSE(inj.check_transfer("transfer", payload).has_value());
  inj.script_at(Kind::kCorruption, "transfer", 1);
  auto damaged = inj.check_transfer("transfer", payload);
  ASSERT_TRUE(damaged.has_value());
  EXPECT_EQ(damaged->size(), payload.size());
  EXPECT_NE(*damaged, payload);  // 1-8 bit flips landed somewhere
  EXPECT_EQ(inj.corruptions_injected(), 1);
  EXPECT_EQ(inj.faults_injected(), 1);

  // Same seed, same script -> identical damage (replayable chaos).
  FaultInjector twin(11, 0.0);
  EXPECT_FALSE(twin.check_transfer("transfer", payload).has_value());
  twin.script_at(Kind::kCorruption, "transfer", 1);
  EXPECT_EQ(*twin.check_transfer("transfer", payload), *damaged);

  // A corruption outcome at a payload-less crossing (or an empty payload)
  // is consumed without effect — there is nothing to flip.
  inj.script(Kind::kCorruption);
  EXPECT_NO_THROW(inj.check("invoke"));
  inj.script(Kind::kCorruption);
  EXPECT_FALSE(inj.check_transfer("transfer", {}).has_value());
}

// ------------------------------------------------ model-image integrity ----

TEST(Serialize, V4RoundTripsAndRejectsCorruptionTyped) {
  nn::Sequential victim = models::build_victim(tiny_vgg_cfg());
  std::ostringstream os(std::ios::binary);
  nn::save_model(os, victim);
  const std::string bytes = os.str();

  // Round trip: load and re-save reproduces the exact bytes (checksums and
  // framing included).
  std::istringstream is(bytes, std::ios::binary);
  std::unique_ptr<nn::Layer> loaded = nn::load_model(is);
  std::ostringstream os2(std::ios::binary);
  nn::save_model(os2, *loaded);
  EXPECT_EQ(os2.str(), bytes);

  // One flipped bit mid-payload -> typed IntegrityError at load (the same
  // path DeployedTBNet's TA-image deploy takes), never wrong weights.
  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] ^= 0x40;
  std::istringstream bad(corrupt, std::ios::binary);
  EXPECT_THROW(nn::load_model(bad), nn::IntegrityError);

  // Damage in the header checksum itself is also typed.
  std::string bad_header = bytes;
  bad_header[9] ^= 0x01;  // inside the u32 header CRC at offset 8
  std::istringstream bad2(bad_header, std::ios::binary);
  EXPECT_THROW(nn::load_model(bad2), nn::IntegrityError);
}

TEST(Serialize, PreChecksumVersionsStillLoad) {
  // A handcrafted v1 stream: magic, u32 version, one unframed ReLU body
  // (u32 string length + "ReLU"). No header CRC, no section framing.
  std::string v1("TBNM", 4);
  const uint32_t version = 1;
  const uint32_t len = 4;
  v1.append(reinterpret_cast<const char*>(&version), 4);
  v1.append(reinterpret_cast<const char*>(&len), 4);
  v1.append("ReLU", 4);
  std::istringstream is(v1, std::ios::binary);
  std::unique_ptr<nn::Layer> layer = nn::load_model(is);
  ASSERT_NE(layer, nullptr);
  EXPECT_EQ(layer->kind(), "ReLU");
}

TEST(DeployedFaults, CorruptedTransferSurfacesIntegrityFault) {
  core::TwoBranchModel tb = tiny_two_branch();
  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  DeployedTBNet deployed(tb, ctx, "tbnet-corruption");
  Rng rng(21);
  const Tensor batch = random_batch(1, rng);
  const Tensor want = deployed.infer_batch(batch);

  // Corrupt the next payload transfer: the frame checksum catches the
  // flipped bits and the invoke throws typed — no retry (the damage is not
  // transient), and definitely no wrong logits.
  ctx.faults().script_at(Kind::kCorruption, "transfer", 1);
  EXPECT_THROW(deployed.infer_batch(batch), tee::IntegrityFault);
  EXPECT_EQ(ctx.faults().corruptions_injected(), 1);

  // The engine (and its TA) survive; a clean call is bit-identical.
  EXPECT_TRUE(allclose(deployed.infer_batch(batch), want, 0.0f, 0.0f));
}

// ------------------------------------------------------ session recovery --

TEST(DeployedFaults, ReopenRecoversAfterPermanentLoss) {
  core::TwoBranchModel tb = tiny_two_branch();
  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  DeployedTBNet deployed(tb, ctx, "tbnet-reopen");
  Rng rng(22);
  const Tensor batch = random_batch(2, rng);
  const Tensor want = deployed.infer_batch(batch);

  // Permanent session loss: every boundary faults permanently.
  ctx.faults().set_rate(1.0, 1.0);
  EXPECT_THROW(deployed.infer_batch(batch), tee::PermanentFault);

  // Recovery: re-deploy the retained TA image (re-verifying its v4
  // checksums), re-open the session, and prove it with a canary inference.
  ctx.faults().set_rate(0.0);
  deployed.reopen(batch);
  EXPECT_EQ(deployed.reopens(), 1);
  EXPECT_TRUE(allclose(deployed.infer_batch(batch), want, 0.0f, 0.0f));
}

// Regression test for the locking pass that put the engine/TEE
// observability counters behind mutexes (DeployedTBNet retries/reopens,
// TeeSession world_switches / simulated overhead, OneWayChannel byte
// counters, SecureMemoryPool live/peak): a monitor thread polls them WHILE
// the engine runs fault-sprinkled batches on this thread — exactly what
// examples/serving_supervision.cpp and bench_serving do when folding engine
// counters into ServingStats. Before the fix these reads raced the writes
// (the TSan CI leg runs this suite); the monotonicity assertions also pin
// that each counter stays coherent under concurrent access. session_ itself
// is deliberately unguarded (reopen() is externally synchronized by the
// supervision health protocol), so the monitor is stopped before reopen()
// runs below.
TEST(DeployedFaults, CounterPollingWhileServingIsRaceFree) {
  core::TwoBranchModel tb = tiny_two_branch();
  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  DeployedTBNet deployed(tb, ctx, "tbnet-counter-poll");
  Rng rng(31);
  const Tensor batch = random_batch(2, rng);
  deployed.infer_batch(batch);  // warm: panels packed, TA shapes pinned

  std::atomic<bool> done{false};
  std::thread monitor([&] {
    int64_t last_switches = 0, last_retries = 0, last_bytes = 0;
    while (!done.load(std::memory_order_acquire)) {
      const int64_t sw = deployed.world_switches();
      const int64_t rt = deployed.retries();
      const int64_t by = ctx.channel().total_bytes();
      EXPECT_GE(sw, last_switches);
      EXPECT_GE(rt, last_retries);
      EXPECT_GE(by, last_bytes);
      EXPECT_GE(world.memory().peak_bytes(), world.memory().live_bytes());
      EXPECT_GE(deployed.reopens(), 0);
      last_switches = sw;
      last_retries = rt;
      last_bytes = by;
      std::this_thread::yield();
    }
  });
  // A transient sprinkle exercises the retry counter while serving.
  ctx.faults().set_rate(0.05);
  for (int i = 0; i < 30; ++i) {
    try {
      deployed.infer_batch(batch);
    } catch (const std::runtime_error&) {
      // Retry exhaustion needs 4 consecutive 5% draws (~6e-6 per invoke);
      // tolerated here, the subject is the concurrent counter reads.
    }
  }
  ctx.faults().set_rate(0.0);
  done.store(true, std::memory_order_release);
  monitor.join();

  EXPECT_GT(deployed.world_switches(), 0);
  EXPECT_GT(ctx.channel().total_bytes(), 0);
  // With the monitor stopped, the supervisor-style recovery path still
  // counts correctly through the same mutex.
  ctx.faults().script(Kind::kPermanent);
  EXPECT_THROW(deployed.infer_batch(batch), tee::PermanentFault);
  deployed.reopen(batch);
  EXPECT_EQ(deployed.reopens(), 1);
}

// ------------------------------------------------------------ supervision --

TEST(Supervision, QuarantineRequeuesRidersAndDrainStaysExact) {
  // Deterministic kill: worker 0's engine loses its session permanently on
  // every call, worker 1 is healthy (gated so queue states are race-free).
  // Whatever order the workers claim in, both requests must resolve Ok —
  // the failing worker's rider is re-queued, not failed — and drain() must
  // account for the bounced rider exactly.
  GatedEngine gate;
  std::vector<InferenceServer::BatchFn> engines;
  engines.push_back([](const Tensor&) -> Tensor {
    throw tee::PermanentFault("secure session lost");
  });
  engines.push_back(gate.fn());
  InferenceServer::Config scfg;
  scfg.max_batch = 1;  // one rider per batch keeps the interleaving simple
  scfg.max_queue_delay = std::chrono::microseconds(200);
  InferenceServer server(std::move(engines), scfg);

  Rng rng(31);
  auto f1 = server.submit(chw(rng));
  auto f2 = server.submit(chw(rng));
  // Worker 0 dies on whichever request it claims (no RecoverFn -> Dead);
  // that request bounces back to the queue for worker 1.
  while (server.stats().quarantines < 1) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  gate.release();
  server.drain();

  ASSERT_EQ(f1.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  ASSERT_EQ(f2.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f1.get().status, Status::kOk);
  EXPECT_EQ(f2.get().status, Status::kOk);
  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.quarantines, 1);
  EXPECT_EQ(stats.requeued, 1);
  EXPECT_EQ(stats.engine_errors, 0);  // the failure was absorbed by requeue
  EXPECT_EQ(stats.requests, 2);       // identity: 2 submits, 2 served
  EXPECT_EQ(stats.per_worker[0].health, WorkerHealth::kDead);
  EXPECT_EQ(stats.per_worker[0].quarantines, 1);
  EXPECT_EQ(stats.per_worker[1].health, WorkerHealth::kHealthy);
}

TEST(Supervision, ConsecutiveFailuresTripBreakerThenFailFast) {
  // K consecutive kEngineError batches trip the breaker; with no RecoverFn
  // the lone worker dies and later submits resolve kRejected immediately
  // instead of feeding a dead engine.
  std::vector<InferenceServer::BatchFn> engines;
  engines.push_back(
      [](const Tensor&) -> Tensor { throw std::runtime_error("flaky"); });
  InferenceServer::Config scfg;
  scfg.breaker_threshold = 2;
  InferenceServer server(std::move(engines), scfg);

  Rng rng(32);
  // Strike 1: below threshold, rider resolves kEngineError, worker serves on.
  EXPECT_EQ(server.submit(chw(rng)).get().status, Status::kEngineError);
  // Strike 2 trips the breaker. The rider is NOT requeued — with the last
  // worker dead there is nobody to bounce it to — so it also resolves typed.
  EXPECT_EQ(server.submit(chw(rng)).get().status, Status::kEngineError);
  // Fail-fast: no live workers left.
  InferenceResult r = server.submit(chw(rng)).get();
  EXPECT_EQ(r.status, Status::kRejected);
  EXPECT_NE(r.error.find("no live workers"), std::string::npos) << r.error;

  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.quarantines, 1);
  EXPECT_EQ(stats.requeued, 0);
  EXPECT_EQ(stats.requests, 2);
  EXPECT_EQ(stats.engine_errors, 2);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.per_worker[0].health, WorkerHealth::kDead);
  // Identity: 3 submits = 2 served + 1 rejected.
  EXPECT_EQ(stats.requests + stats.rejected + stats.shed + stats.expired, 3);
}

TEST(Supervision, RecoveryLifecycleReAdmitsWorker) {
  // Full kill -> quarantine -> (failed recovery, backoff) -> recover ->
  // re-admit on a single worker. The rider submitted while the worker was
  // broken is re-queued to the worker itself and served after recovery —
  // zero lost futures, no kEngineError ever surfaced.
  std::atomic<bool> broken{false};
  std::vector<InferenceServer::BatchFn> engines;
  engines.push_back([&broken](const Tensor& nchw) -> Tensor {
    if (broken.load()) throw tee::PermanentFault("secure session lost");
    return Tensor(Shape{nchw.dim(0), 2});
  });
  std::vector<InferenceServer::RecoverFn> recovery;
  recovery.push_back([&broken] {
    if (broken.load()) throw std::runtime_error("canary failed: still broken");
  });
  InferenceServer::Config scfg;
  scfg.breaker_threshold = 1;
  scfg.recovery_backoff = std::chrono::microseconds(300);
  scfg.recovery_max_backoff = std::chrono::microseconds(3000);
  InferenceServer server(std::move(engines), std::move(recovery), scfg);

  Rng rng(33);
  EXPECT_EQ(server.submit(chw(rng)).get().status, Status::kOk);

  broken.store(true);
  auto bounced = server.submit(chw(rng));
  // The supervisor must attempt (and fail) recovery while the engine stays
  // broken: quarantine observed, at least one canary failure, no recovery.
  while (server.stats().canary_failures < 1) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_EQ(server.stats().quarantines, 1);
  EXPECT_EQ(server.stats().recoveries, 0);

  broken.store(false);  // the next recovery attempt's canary passes
  InferenceResult r = bounced.get();
  EXPECT_EQ(r.status, Status::kOk);

  server.drain();
  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.recoveries, 1);
  EXPECT_EQ(stats.requeued, 1);
  EXPECT_GE(stats.canary_failures, 1);
  EXPECT_EQ(stats.engine_errors, 0);
  EXPECT_EQ(stats.per_worker[0].health, WorkerHealth::kHealthy);
  EXPECT_EQ(stats.per_worker[0].recoveries, 1);

  // The re-admitted worker serves new traffic.
  EXPECT_EQ(server.submit(chw(rng)).get().status, Status::kOk);
}

TEST(Supervision, WatchdogOverrunTripsBreakerEvenOnSuccess) {
  // A batch that overruns watchdog_timeout marks its worker suspect even
  // though the result was correct: the rider still gets its Ok, but the
  // worker cycles through quarantine + recovery before serving again.
  std::atomic<int> calls{0};
  std::vector<InferenceServer::BatchFn> engines;
  engines.push_back([&calls](const Tensor& nchw) {
    if (calls.fetch_add(1) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return Tensor(Shape{nchw.dim(0), 2});
  });
  std::vector<InferenceServer::RecoverFn> recovery;
  recovery.push_back([] {});  // trivially recovers
  InferenceServer::Config scfg;
  scfg.breaker_threshold = 1;
  scfg.watchdog_timeout = std::chrono::milliseconds(1);
  scfg.recovery_backoff = std::chrono::microseconds(300);
  InferenceServer server(std::move(engines), std::move(recovery), scfg);

  Rng rng(34);
  InferenceResult slow = server.submit(chw(rng)).get();
  EXPECT_EQ(slow.status, Status::kOk);  // success is still delivered
  while (server.stats().recoveries < 1) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const ServingStats mid = server.stats();
  EXPECT_EQ(mid.watchdog_trips, 1);
  EXPECT_EQ(mid.quarantines, 1);
  EXPECT_EQ(mid.requeued, 0);  // nothing failed, nothing bounced
  // Re-admitted and fast again.
  EXPECT_EQ(server.submit(chw(rng)).get().status, Status::kOk);
  EXPECT_EQ(server.stats().watchdog_trips, 1);
}

TEST(Supervision, IntegrityFailureSurfacesTypedStatus) {
  // An engine tripping an integrity check resolves kIntegrityError (first
  // strike, regardless of threshold) — corrupted data is never served.
  std::vector<InferenceServer::BatchFn> engines;
  engines.push_back([](const Tensor&) -> Tensor {
    throw tee::IntegrityFault("transfer frame checksum mismatch");
  });
  InferenceServer::Config scfg;
  scfg.breaker_threshold = 100;  // integrity must trip on strike one anyway
  InferenceServer server(std::move(engines), scfg);

  Rng rng(35);
  InferenceResult r = server.submit(chw(rng)).get();
  EXPECT_EQ(r.status, Status::kIntegrityError);
  EXPECT_FALSE(r.ok());
  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.integrity_errors, 1);
  EXPECT_EQ(stats.engine_errors, 0);
  EXPECT_EQ(stats.quarantines, 1);
  EXPECT_EQ(stats.per_worker[0].health, WorkerHealth::kDead);
}

TEST(Supervision, ChaosIdentityUnderConcurrentLoadAndRecovery) {
  // The lifecycle under real concurrency (TSan food): 4 submitters hammer a
  // 2-worker shedding server while worker 0 is broken mid-run and then
  // recovers. Every future resolves typed and the accounting identity holds
  // exactly, requeues and recoveries included.
  std::atomic<bool> broken{false};
  std::vector<InferenceServer::BatchFn> engines;
  engines.push_back([&broken](const Tensor& nchw) -> Tensor {
    if (broken.load()) throw tee::PermanentFault("secure session lost");
    return Tensor(Shape{nchw.dim(0), 2});
  });
  engines.push_back([](const Tensor& nchw) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return Tensor(Shape{nchw.dim(0), 2});
  });
  std::vector<InferenceServer::RecoverFn> recovery;
  recovery.push_back([&broken] {
    if (broken.load()) throw std::runtime_error("still broken");
  });
  recovery.push_back(nullptr);  // worker 1 is unrecoverable (and never trips)
  InferenceServer::Config scfg;
  scfg.max_batch = 4;
  scfg.max_queue_delay = std::chrono::microseconds(200);
  scfg.queue_capacity = 16;
  scfg.admission = AdmissionPolicy::kShedOldest;
  scfg.breaker_threshold = 1;
  scfg.recovery_backoff = std::chrono::microseconds(300);
  scfg.recovery_max_backoff = std::chrono::microseconds(2000);
  InferenceServer server(std::move(engines), std::move(recovery), scfg);

  const int threads = 4;
  const int per_thread = 50;
  // Worker 0 is broken from the first batch it claims: the trip is
  // guaranteed, not a race against the submit burst. It is healed from the
  // main thread once the quarantine has been observed, so the run also
  // covers at least one failed recovery attempt or the recovery itself.
  broken.store(true);
  std::vector<std::vector<std::future<InferenceResult>>> futures(threads);
  std::vector<std::thread> submitters;
  for (int t = 0; t < threads; ++t) {
    submitters.emplace_back([&, t] {
      Rng rng(300 + t);
      for (int i = 0; i < per_thread; ++i) {
        futures[static_cast<size_t>(t)].push_back(server.submit(chw(rng)));
      }
    });
  }
  while (server.stats().quarantines < 1) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  broken.store(false);
  for (auto& th : submitters) th.join();
  server.drain();

  int64_t ok = 0, rejected = 0, expired = 0, engine_err = 0, integrity = 0;
  for (auto& per : futures) {
    for (auto& f : per) {
      ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
                std::future_status::ready);
      const InferenceResult r = f.get();
      switch (r.status) {
        case Status::kOk: ++ok; break;
        case Status::kRejected: ++rejected; break;
        case Status::kExpired: ++expired; break;
        case Status::kEngineError: ++engine_err; break;
        case Status::kIntegrityError: ++integrity; break;
      }
    }
  }
  const int64_t submits = static_cast<int64_t>(threads) * per_thread;
  const ServingStats stats = server.stats();
  // PR-7 identity, now with bounced riders in play: a requeued request still
  // resolves (and is counted) exactly once.
  EXPECT_EQ(stats.requests + stats.rejected + stats.shed + stats.expired,
            submits);
  EXPECT_EQ(stats.rejected + stats.shed, rejected);
  EXPECT_EQ(stats.expired, expired);
  EXPECT_EQ(stats.engine_errors, engine_err);
  EXPECT_EQ(stats.integrity_errors, integrity);
  EXPECT_EQ(stats.requests - stats.engine_errors - stats.integrity_errors, ok);
  EXPECT_GE(stats.quarantines, 1);  // worker 0 tripped at least once
}

TEST(Supervision, StatusAndHealthNamesAreExhaustive) {
  EXPECT_STREQ(status_name(Status::kOk), "ok");
  EXPECT_STREQ(status_name(Status::kRejected), "rejected");
  EXPECT_STREQ(status_name(Status::kExpired), "expired");
  EXPECT_STREQ(status_name(Status::kEngineError), "engine_error");
  EXPECT_STREQ(status_name(Status::kIntegrityError), "integrity_error");
  EXPECT_STREQ(worker_health_name(WorkerHealth::kHealthy), "healthy");
  EXPECT_STREQ(worker_health_name(WorkerHealth::kQuarantined), "quarantined");
  EXPECT_STREQ(worker_health_name(WorkerHealth::kRecovering), "recovering");
  EXPECT_STREQ(worker_health_name(WorkerHealth::kDead), "dead");
  EXPECT_STREQ(worker_health_name(WorkerHealth::kParked), "parked");
}

}  // namespace
}  // namespace tbnet::runtime
