// Tests for the depthwise-separable (MobileNet-style) extension: the
// DepthwiseConv2d layer, the family builder, and the full TBNet pipeline
// over separable blocks.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/pipeline.h"
#include "core/pruner.h"
#include "data/synthetic_cifar.h"
#include "models/model_zoo.h"
#include "models/trainer.h"
#include "nn/conv2d.h"
#include "nn/depthwise.h"
#include "nn/serialize.h"
#include "runtime/deployed.h"
#include "tee/optee_api.h"

namespace tbnet {
namespace {

models::ModelConfig mobile_cfg(int blocks = 4) {
  models::ModelConfig cfg;
  cfg.family = models::Family::kMobileNet;
  cfg.depth = blocks;
  cfg.classes = 4;
  cfg.width_mult = 0.125;
  cfg.seed = 33;
  return cfg;
}

TEST(DepthwiseConv2d, ShapesAndMacs) {
  Rng rng(1);
  nn::DepthwiseConv2d dw(8, {.kernel = 3, .stride = 2, .pad = 1}, rng);
  const Shape in{2, 8, 16, 16};
  EXPECT_EQ(dw.out_shape(in), Shape({2, 8, 8, 8}));
  EXPECT_EQ(dw.macs(in), 2 * 8 * 8 * 8 * 9);
  EXPECT_THROW(dw.out_shape(Shape{1, 4, 16, 16}), std::invalid_argument);
}

TEST(DepthwiseConv2d, ChannelsAreIndependent) {
  Rng rng(2);
  nn::DepthwiseConv2d dw(2, {.kernel = 3, .stride = 1, .pad = 1}, rng);
  Tensor x = Tensor::randn(Shape{1, 2, 5, 5}, rng);
  Tensor y = dw.forward(x, false);
  // Zeroing channel 1's input must not change channel 0's output.
  Tensor x2 = x;
  for (int64_t p = 0; p < 25; ++p) x2[25 + p] = 0.0f;
  Tensor y2 = dw.forward(x2, false);
  for (int64_t p = 0; p < 25; ++p) EXPECT_FLOAT_EQ(y[p], y2[p]);
}

TEST(DepthwiseConv2d, MatchesFullConvWithDiagonalKernel) {
  // A depthwise conv equals a full conv whose cross-channel taps are zero.
  Rng rng(3);
  nn::DepthwiseConv2d dw(2, {.kernel = 3, .stride = 1, .pad = 1}, rng);
  nn::Conv2d full(2, 2, {.kernel = 3, .stride = 1, .pad = 1, .bias = false},
                  rng);
  full.weight().zero();
  for (int64_t c = 0; c < 2; ++c) {
    for (int64_t k = 0; k < 9; ++k) {
      // full.weight[c, c, ky, kx] = dw.weight[c, ky, kx]
      full.weight()[((c * 2 + c) * 9) + k] = dw.weight()[c * 9 + k];
    }
  }
  Tensor x = Tensor::randn(Shape{2, 2, 6, 6}, rng);
  EXPECT_TRUE(allclose(dw.forward(x, false), full.forward(x, false), 1e-4f,
                       1e-5f));
}

TEST(DepthwiseConv2d, GradientCheck) {
  Rng rng(4);
  nn::DepthwiseConv2d dw(3, {.kernel = 3, .stride = 1, .pad = 1}, rng);
  Tensor x = Tensor::randn(Shape{2, 3, 5, 5}, rng);
  Tensor y = dw.forward(x, true);
  Tensor w = Tensor::randn(y.shape(), rng);
  dw.zero_grad();
  Tensor dx = dw.backward(w);

  auto loss = [&](const Tensor& xx) {
    Tensor yy = dw.forward(xx, true);
    double s = 0;
    for (int64_t i = 0; i < yy.numel(); ++i) s += w[i] * yy[i];
    return s;
  };
  const float eps = 1e-2f;
  Rng pick(5);
  for (int s = 0; s < 20; ++s) {
    const int64_t i = pick.uniform_int(x.numel());
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double fd = (loss(xp) - loss(xm)) / (2 * eps);
    EXPECT_NEAR(dx[i], fd, 2e-2 * std::max(1.0, std::fabs(fd)));
  }
}

TEST(DepthwiseConv2d, SelectChannels) {
  Rng rng(6);
  nn::DepthwiseConv2d dw(4, {.kernel = 3, .stride = 1, .pad = 1}, rng);
  const Tensor w_before = dw.weight();
  dw.select_channels({1, 3});
  EXPECT_EQ(dw.channels(), 2);
  for (int64_t k = 0; k < 9; ++k) {
    EXPECT_FLOAT_EQ(dw.weight()[k], w_before[9 + k]);
    EXPECT_FLOAT_EQ(dw.weight()[9 + k], w_before[27 + k]);
  }
  EXPECT_THROW(dw.select_channels({}), std::invalid_argument);
}

TEST(DepthwiseConv2d, SerializationRoundTrip) {
  Rng rng(7);
  nn::DepthwiseConv2d dw(3, {.kernel = 3, .stride = 2, .pad = 1}, rng);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  nn::save_model(ss, dw);
  auto loaded = nn::load_model(ss);
  Tensor x = Tensor::randn(Shape{1, 3, 8, 8}, rng);
  EXPECT_TRUE(allclose(dw.forward(x, false), loaded->forward(x, false), 0.0f,
                       0.0f));
}

TEST(MobileNet, BuilderShapesAndPrunePoints) {
  const auto cfg = mobile_cfg(4);
  EXPECT_EQ(models::num_stages(cfg), 6);  // stem + 4 blocks + head
  nn::Sequential victim = models::build_victim(cfg);
  Rng rng(8);
  EXPECT_EQ(victim.forward(Tensor::randn(Shape{2, 3, 32, 32}, rng), false)
                .shape(),
            Shape({2, 4}));
  const auto points = models::prune_points(cfg);
  EXPECT_EQ(points.size(), 5u);  // every stage but the head
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
  for (const auto& p : points) {
    EXPECT_GT(core::resolve_point(tb, p).bn_secure->channels(), 0);
  }
}

TEST(MobileNet, InterfacePruningCascadesThroughDepthwise) {
  const auto cfg = mobile_cfg(4);
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
  // Prune the stem output: the next block's depthwise conv, its BN, and the
  // pointwise conv input must all shrink together.
  const core::PrunePoint point{core::PrunePoint::Kind::kInterface, 0};
  const auto rp = core::resolve_point(tb, point);
  std::vector<int64_t> keep;
  for (int64_t c = 0; c + 2 < rp.bn_secure->channels(); ++c) keep.push_back(c);
  core::apply_channel_keep(tb, point, keep);

  Rng rng(9);
  Tensor x = Tensor::randn(Shape{1, 3, 32, 32}, rng);
  EXPECT_EQ(tb.forward(x, false).shape(), Shape({1, 4}));
  EXPECT_EQ(tb.forward_exposed_only(x, false).shape(), Shape({1, 4}));
}

TEST(MobileNet, FullPipelineAndDeployment) {
  const auto cfg = mobile_cfg(3);
  auto [train, test] = data::SyntheticCifar::make_split(4, 96, 48, 44, 32,
                                                        0.3);
  nn::Sequential victim = models::build_victim(cfg);
  models::TrainConfig vt;
  vt.epochs = 2;
  vt.batch_size = 32;
  vt.augment = false;
  models::train_classifier(victim, train, test, vt);

  core::TwoBranchModel model = models::build_two_branch(victim, cfg);
  core::PipelineConfig pc;
  pc.transfer.epochs = 2;
  pc.transfer.batch_size = 32;
  pc.transfer.augment = false;
  pc.prune.ratio = 0.15;
  pc.prune.acc_drop_budget = 0.5;
  pc.prune.max_iterations = 2;
  pc.prune.finetune.epochs = 1;
  pc.prune.finetune.batch_size = 32;
  pc.prune.finetune.augment = false;
  pc.recovery.epochs = 0;
  const auto report = core::TbnetPipeline(pc).run(
      model, models::prune_points(cfg), train, test);
  EXPECT_GT(report.final_acc, 0.0);

  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  runtime::DeployedTBNet deployed(model, ctx);
  const data::Sample s = test.get(0);
  const Tensor want =
      model.forward(s.image.reshaped(Shape{1, 3, 32, 32}), false);
  // Folded/fused engine: tight relative tolerance, not bitwise.
  EXPECT_TRUE(allclose(deployed.infer(s.image), want, 1e-4f, 1e-5f));
}

}  // namespace
}  // namespace tbnet
