// Depthwise SIMD parity suite: the vectorized row kernel vs the scalar
// reference across geometries (stride 1/2, pad 0/1, odd widths narrower
// than the vector width, bias on/off, ReLU/ReLU6), pool-size and batch bit
// invariance, explicit-Act rejection, and the fused depthwise→pointwise
// producer path vs running the two layers separately (bitwise on the fast
// kernels, by the row kernel's segment-invariance contract).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/depthwise.h"
#include "nn/fuse.h"
#include "nn/sequential.h"
#include "tensor/execution_context.h"
#include "tensor/pack.h"
#include "tensor/rng.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"
#include "tensor/threadpool.h"

namespace tbnet {
namespace {

void expect_close(const Tensor& got, const Tensor& want, float rtol = 1e-5f,
                  float atol = 1e-6f) {
  ASSERT_EQ(got.shape(), want.shape());
  for (int64_t i = 0; i < got.numel(); ++i) {
    const float tol = atol + rtol * std::fabs(want[i]);
    ASSERT_NEAR(got[i], want[i], tol) << "at flat index " << i;
  }
}

void expect_bitwise(const Tensor& got, const Tensor& want) {
  ASSERT_EQ(got.shape(), want.shape());
  for (int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "at flat index " << i;
  }
}

struct DwCase {
  const char* name;
  int64_t channels, ih, iw, kernel, stride, pad;
  bool bias;
};

// Edge geometries: both strides, pad 0/1/2, widths narrower than one vector
// (ow < 8) and narrower than a panel (ow < 16), a 1x1 and a 5x5 kernel, and
// maps whose rows are not vector-width multiples.
const DwCase kDwCases[] = {
    {"k3_s1_p1_32x32", 8, 32, 32, 3, 1, 1, false},
    {"k3_s1_p1_bias", 8, 16, 16, 3, 1, 1, true},
    {"k3_s2_p1", 6, 17, 15, 3, 2, 1, false},
    {"k3_s2_p1_bias_even", 4, 16, 16, 3, 2, 1, true},
    {"k3_s1_p0", 5, 12, 11, 3, 1, 0, false},
    {"k3_s2_p0", 5, 13, 13, 3, 2, 0, false},
    {"k5_s1_p2", 3, 14, 14, 5, 1, 2, false},
    {"k5_s2_p2_bias", 3, 15, 15, 5, 2, 2, true},
    {"k1_s1_p0", 7, 9, 9, 1, 1, 0, false},
    {"narrow_ow_lt_vector", 4, 10, 6, 3, 1, 1, false},
    {"narrow_ow_lt_panel", 4, 12, 13, 3, 1, 1, false},
    {"single_pixel_out", 2, 3, 3, 3, 1, 0, false},
};

nn::DepthwiseConv2d make_dw(const DwCase& c, uint64_t seed = 5) {
  Rng rng(seed);
  nn::DepthwiseConv2d dw(c.channels,
                         {.kernel = c.kernel, .stride = c.stride,
                          .pad = c.pad, .bias = c.bias},
                         rng);
  if (c.bias) {
    for (int64_t ch = 0; ch < c.channels; ++ch) {
      dw.bias()[ch] = 0.3f * static_cast<float>(ch) - 0.4f;
    }
  }
  return dw;
}

// ------------------------------------------------ SIMD vs reference --------

TEST(DepthwiseSimd, ForwardMatchesReference) {
  ExecutionContext ctx;
  Rng rng(6);
  for (const DwCase& c : kDwCases) {
    nn::DepthwiseConv2d dw = make_dw(c);
    const Tensor x = Tensor::randn(Shape{2, c.channels, c.ih, c.iw}, rng);
    const Tensor got = dw.forward(ctx, x, false);
    const Tensor want = dw.forward_reference(
        ctx, x, nullptr, c.bias ? dw.bias().data() : nullptr,
        simd::Act::kNone);
    ASSERT_EQ(got.shape(), want.shape()) << c.name;
    for (int64_t i = 0; i < got.numel(); ++i) {
      const float tol = 1e-6f + 1e-5f * std::fabs(want[i]);
      ASSERT_NEAR(got[i], want[i], tol) << c.name << " at " << i;
    }
  }
}

TEST(DepthwiseSimd, FusedAffineAndActsMatchReference) {
  ExecutionContext ctx;
  Rng rng(7);
  for (const DwCase& c : kDwCases) {
    nn::DepthwiseConv2d dw = make_dw(c);
    const Tensor x = Tensor::randn(Shape{1, c.channels, c.ih, c.iw}, rng);
    std::vector<float> scale(static_cast<size_t>(c.channels));
    std::vector<float> shift(static_cast<size_t>(c.channels));
    for (int64_t ch = 0; ch < c.channels; ++ch) {
      scale[static_cast<size_t>(ch)] = 0.5f + 0.2f * static_cast<float>(ch % 3);
      shift[static_cast<size_t>(ch)] = 0.1f * static_cast<float>(ch) - 0.2f;
    }
    for (simd::Act act :
         {simd::Act::kNone, simd::Act::kReLU, simd::Act::kReLU6}) {
      const Tensor got =
          dw.forward_fused(ctx, x, scale.data(), shift.data(), act);
      const Tensor want =
          dw.forward_reference(ctx, x, scale.data(), shift.data(), act);
      ASSERT_EQ(got.shape(), want.shape()) << c.name;
      for (int64_t i = 0; i < got.numel(); ++i) {
        const float tol = 1e-6f + 1e-5f * std::fabs(want[i]);
        ASSERT_NEAR(got[i], want[i], tol)
            << c.name << " act=" << static_cast<int>(act) << " at " << i;
      }
    }
  }
}

TEST(DepthwiseSimd, DeterministicModePinsReferenceBits) {
  if (simd::fast_kernels_enabled()) {
    GTEST_SKIP() << "pinning is observable only under TBNET_DETERMINISTIC=1";
  }
  // With fast kernels disabled, forward must be the reference arithmetic
  // exactly — bit for bit, not to tolerance.
  ExecutionContext ctx;
  Rng rng(8);
  for (const DwCase& c : kDwCases) {
    nn::DepthwiseConv2d dw = make_dw(c);
    const Tensor x = Tensor::randn(Shape{2, c.channels, c.ih, c.iw}, rng);
    expect_bitwise(dw.forward(ctx, x, false),
                   dw.forward_reference(
                       ctx, x, nullptr,
                       c.bias ? dw.bias().data() : nullptr, simd::Act::kNone));
  }
}

// ------------------------------------------------ bit invariance -----------

TEST(DepthwiseSimd, BitsIndependentOfPoolSize) {
  Rng rng(9);
  for (const DwCase& c : kDwCases) {
    nn::DepthwiseConv2d dw = make_dw(c);
    const Tensor x = Tensor::randn(Shape{3, c.channels, c.ih, c.iw}, rng);
    Tensor base;
    {
      ThreadPool pool(1);
      ExecutionContext ctx;
      ctx.set_pool(&pool);
      base = dw.forward(ctx, x, false);
    }
    for (int threads : {2, 4}) {
      ThreadPool pool(threads);
      ExecutionContext ctx;
      ctx.set_pool(&pool);
      const Tensor got = dw.forward(ctx, x, false);
      ASSERT_EQ(got.shape(), base.shape());
      for (int64_t i = 0; i < got.numel(); ++i) {
        ASSERT_EQ(got[i], base[i])
            << c.name << " threads=" << threads << " at " << i;
      }
    }
  }
}

TEST(DepthwiseSimd, BatchMatchesPerImageBitForBit) {
  ExecutionContext ctx;
  Rng rng(10);
  const DwCase c = kDwCases[0];
  nn::DepthwiseConv2d dw = make_dw(c);
  const Tensor batch = Tensor::randn(Shape{4, c.channels, c.ih, c.iw}, rng);
  const Tensor batched = dw.forward(ctx, batch, false);
  const int64_t img_floats = c.channels * c.ih * c.iw;
  for (int64_t i = 0; i < 4; ++i) {
    Tensor one(Shape{1, c.channels, c.ih, c.iw});
    for (int64_t t = 0; t < img_floats; ++t) {
      one[t] = batch[i * img_floats + t];
    }
    const Tensor got = dw.forward(ctx, one, false);
    const int64_t out_floats = got.numel();
    for (int64_t t = 0; t < out_floats; ++t) {
      ASSERT_EQ(got[t], batched[i * out_floats + t]) << "image " << i;
    }
  }
}

// ------------------------------------------------ act dispatch -------------

TEST(DepthwiseSimd, RejectsUnknownActValues) {
  ExecutionContext ctx;
  Rng rng(11);
  nn::DepthwiseConv2d dw(2, {.kernel = 3, .stride = 1, .pad = 1}, rng);
  const Tensor x = Tensor::randn(Shape{1, 2, 4, 4}, rng);
  const auto bogus = static_cast<simd::Act>(7);
  EXPECT_FALSE(simd::act_known(bogus));
  EXPECT_THROW(dw.forward_fused(ctx, x, nullptr, nullptr, bogus),
               std::invalid_argument);
  EXPECT_THROW(dw.forward_reference(ctx, x, nullptr, nullptr, bogus),
               std::invalid_argument);
  EXPECT_NO_THROW(dw.forward_fused(ctx, x, nullptr, nullptr,
                                   simd::Act::kReLU6));
}

// ------------------------------------------------ fused dw→pw --------------

struct DwPwCase {
  const char* name;
  int64_t channels, out_c, ih, iw, stride;
};

// Ragged spatial extents (oh*ow not a panel multiple), stride 2, out_c not a
// microkernel-row multiple, and a channel count crossing the packed driver's
// k-block (kBlockK = 640) so multi-k-block producer panels are exercised.
const DwPwCase kDwPwCases[] = {
    {"mobile_32x32", 16, 24, 32, 32, 1},
    {"mobile_s2", 16, 20, 17, 15, 2},
    {"ragged_small", 6, 5, 9, 7, 1},
    {"k_crosses_block", 648, 8, 6, 6, 1},
};

TEST(DepthwiseFusion, FusedDwPwMatchesUnfusedBitwise) {
  if (!simd::fast_kernels_enabled()) {
    GTEST_SKIP() << "no fusion under TBNET_DETERMINISTIC=1";
  }
  ExecutionContext ctx;
  Rng rng(12);
  for (const DwPwCase& c : kDwPwCases) {
    nn::DepthwiseConv2d dw(
        c.channels, {.kernel = 3, .stride = c.stride, .pad = 1}, rng);
    nn::Conv2d pw(c.channels, c.out_c,
                  {.kernel = 1, .stride = 1, .pad = 0, .bias = false}, rng);
    const Tensor x =
        Tensor::randn(Shape{2, c.channels, c.ih, c.iw}, rng);
    std::vector<float> dscale(static_cast<size_t>(c.channels));
    std::vector<float> dshift(static_cast<size_t>(c.channels));
    for (int64_t ch = 0; ch < c.channels; ++ch) {
      dscale[static_cast<size_t>(ch)] = 0.8f + 0.1f * static_cast<float>(ch % 4);
      dshift[static_cast<size_t>(ch)] = 0.05f * static_cast<float>(ch % 5);
    }
    std::vector<float> pshift(static_cast<size_t>(c.out_c));
    for (int64_t o = 0; o < c.out_c; ++o) {
      pshift[static_cast<size_t>(o)] = 0.02f * static_cast<float>(o) - 0.1f;
    }
    GemmEpilogue pep;
    pep.row_shift = pshift.data();
    pep.act = simd::Act::kReLU;

    const Tensor fused = nn::forward_depthwise_pointwise(
        ctx, x, dw, dscale.data(), dshift.data(), simd::Act::kReLU, pw, pep);

    // Unfused: materialize the depthwise output, then the pointwise conv.
    const Tensor mid = dw.forward_fused(ctx, x, dscale.data(), dshift.data(),
                                        simd::Act::kReLU);
    const Tensor want =
        pw.forward_fused(ctx, mid, nullptr, pshift.data(), simd::Act::kReLU);

    ASSERT_EQ(fused.shape(), want.shape()) << c.name;
    // Bitwise: the row kernel's chains are segment-invariant and the
    // pointwise GEMM sees the same panel values in the same k order either
    // way.
    for (int64_t i = 0; i < fused.numel(); ++i) {
      ASSERT_EQ(fused[i], want[i]) << c.name << " at " << i;
    }
  }
}

TEST(DepthwiseFusion, FusedDwPwBitsIndependentOfPoolSize) {
  if (!simd::fast_kernels_enabled()) {
    GTEST_SKIP() << "no fusion under TBNET_DETERMINISTIC=1";
  }
  Rng rng(13);
  nn::DepthwiseConv2d dw(12, {.kernel = 3, .stride = 1, .pad = 1}, rng);
  nn::Conv2d pw(12, 10, {.kernel = 1, .stride = 1, .pad = 0, .bias = false},
                rng);
  const Tensor x = Tensor::randn(Shape{2, 12, 19, 17}, rng);
  Tensor base;
  {
    ThreadPool pool(1);
    ExecutionContext ctx;
    ctx.set_pool(&pool);
    base = nn::forward_depthwise_pointwise(ctx, x, dw, nullptr, nullptr,
                                           simd::Act::kNone, pw, {});
  }
  for (int threads : {2, 4}) {
    ThreadPool pool(threads);
    ExecutionContext ctx;
    ctx.set_pool(&pool);
    const Tensor got = nn::forward_depthwise_pointwise(
        ctx, x, dw, nullptr, nullptr, simd::Act::kNone, pw, {});
    for (int64_t i = 0; i < got.numel(); ++i) {
      ASSERT_EQ(got[i], base[i]) << "threads=" << threads << " at " << i;
    }
  }
}

TEST(DepthwiseFusion, FusedDwPwRejectsNonPointwiseShapes) {
  ExecutionContext ctx;
  Rng rng(14);
  nn::DepthwiseConv2d dw(4, {.kernel = 3, .stride = 1, .pad = 1}, rng);
  nn::Conv2d not_pw(4, 4, {.kernel = 3, .stride = 1, .pad = 1, .bias = false},
                    rng);
  const Tensor x = Tensor::randn(Shape{1, 4, 8, 8}, rng);
  EXPECT_THROW(nn::forward_depthwise_pointwise(ctx, x, dw, nullptr, nullptr,
                                               simd::Act::kNone, not_pw, {}),
               std::invalid_argument);
}

// A MobileNet-style separable stack: DW-BN-ReLU-PW-BN-ReLU. The prepared
// plan collapses all six layers into one producer-fed step; its output must
// match the layer-by-layer eval forward to fused-epilogue tolerance, and the
// plan must hold the intermediate-free path (arena stays panel-sized).
TEST(DepthwiseFusion, SequentialPlanFusesSeparableBlock) {
  Rng rng(15);
  nn::Sequential seq;
  seq.emplace<nn::DepthwiseConv2d>(
      16, nn::DepthwiseConv2d::Options{.kernel = 3, .stride = 1, .pad = 1},
      rng);
  seq.emplace<nn::BatchNorm2d>(16);
  seq.emplace<nn::ReLU>();
  seq.emplace<nn::Conv2d>(
      16, 24, nn::Conv2d::Options{.kernel = 1, .stride = 1, .pad = 0,
                                  .bias = false},
      rng);
  seq.emplace<nn::BatchNorm2d>(24);
  seq.emplace<nn::ReLU>();
  // Non-trivial BN statistics on both sides.
  for (int bn_idx : {0, 1}) {
    auto* bn = seq.find_nth<nn::BatchNorm2d>(bn_idx);
    for (int64_t ch = 0; ch < bn->channels(); ++ch) {
      bn->gamma()[ch] = 0.6f + 0.05f * static_cast<float>(ch % 7);
      bn->beta()[ch] = 0.1f - 0.03f * static_cast<float>(ch % 5);
      bn->running_mean()[ch] = 0.02f * static_cast<float>(ch % 3);
      bn->running_var()[ch] = 0.5f + 0.1f * static_cast<float>(ch % 4);
    }
  }
  const Tensor x = Tensor::randn(Shape{2, 16, 20, 20}, rng);
  const Tensor want = seq.forward(x, false);  // layer-by-layer eval

  nn::Sequential prepared = seq;
  ExecutionContext ctx;
  prepared.prepare_inference(ctx);
  const Tensor got = prepared.forward(ctx, x, false);
  expect_close(got, want, 1e-4f, 1e-5f);

  if (simd::fast_kernels_enabled()) {
    // The fused step never materializes the depthwise map. The probe needs
    // an intermediate larger than both the arena's minimum block and the
    // producer's per-chunk panel slabs (whose count scales with the pool,
    // so it is charged via the driver's own accounting rather than by
    // pinning a 1-thread pool), or block-granularity rounding would mask a
    // materialization: a 64-channel block (the `channels > 32` fusion gate
    // arm) over a 40x40 map gives a 102400-float intermediate. The arena is
    // pre-sized with the slab accounting plus half the intermediate; a
    // fused forward fits in that and must not push capacity past the slack,
    // while materializing the map could not fit and would force a new
    // block beyond it.
    nn::Sequential sep;
    sep.emplace<nn::DepthwiseConv2d>(
        64, nn::DepthwiseConv2d::Options{.kernel = 3, .stride = 1, .pad = 1},
        rng);
    sep.emplace<nn::ReLU>();
    sep.emplace<nn::Conv2d>(
        64, 32, nn::Conv2d::Options{.kernel = 1, .stride = 1, .pad = 0,
                                    .bias = false},
        rng);
    ExecutionContext fresh;
    sep.prepare_inference(fresh);
    const int64_t mid_floats = 64 * 40 * 40;
    const int64_t slabs =
        packdetail::producer_slab_floats(fresh.pool(), 40 * 40);
    {
      ArenaScope grow(fresh.arena());
      fresh.arena().alloc(slabs + mid_floats / 2);
    }
    const auto before = fresh.arena().capacity_floats();
    const Tensor xa = Tensor::randn(Shape{1, 64, 40, 40}, rng);
    sep.forward(fresh, xa, false);
    EXPECT_LT(fresh.arena().capacity_floats() - before, mid_floats / 2)
        << "fused step must not allocate the depthwise intermediate";
  }
}

TEST(DepthwiseFusion, SizeGatePredicateMatchesMeasuredShapes) {
  // PR 4 measured the producer fusion at ~0.75x on k = 32 over a 32x32 map
  // and ~1.0x+ everywhere else (BENCH_kernels.json "depthwise_fused"): the
  // gate must reject exactly the shallow-AND-wide corner.
  EXPECT_FALSE(nn::fuse_dw_pw_profitable(32, 32 * 32));   // the measured loss
  EXPECT_FALSE(nn::fuse_dw_pw_profitable(16, 64 * 64));   // shallower + wider
  EXPECT_TRUE(nn::fuse_dw_pw_profitable(64, 32 * 32));    // deep enough
  EXPECT_TRUE(nn::fuse_dw_pw_profitable(32, 16 * 16));    // narrow enough
  EXPECT_TRUE(nn::fuse_dw_pw_profitable(64, 16 * 16));    // dwpw_64to128 case
  EXPECT_TRUE(nn::fuse_dw_pw_profitable(128, 128 * 128)); // deep and wide
}

TEST(DepthwiseFusion, PlanGatesShallowWideMapsPerInputShape) {
  // One prepared separable stack, driven at two input sizes through the
  // same plan: the 32x32 map (k = 32, cols = 1024) takes the gated unfused
  // pair, the 8x8 map stays on the producer fusion — and both must match
  // the layer-by-layer eval forward. The gate is dispatch-time because the
  // plan cannot know spatial dims at prepare_inference.
  Rng rng(17);
  nn::Sequential seq;
  seq.emplace<nn::DepthwiseConv2d>(
      32, nn::DepthwiseConv2d::Options{.kernel = 3, .stride = 1, .pad = 1},
      rng);
  seq.emplace<nn::BatchNorm2d>(32);
  seq.emplace<nn::ReLU>();
  seq.emplace<nn::Conv2d>(
      32, 48, nn::Conv2d::Options{.kernel = 1, .stride = 1, .pad = 0,
                                  .bias = false},
      rng);
  seq.emplace<nn::BatchNorm2d>(48);
  seq.emplace<nn::ReLU>();
  for (int bn_idx : {0, 1}) {
    auto* bn = seq.find_nth<nn::BatchNorm2d>(bn_idx);
    for (int64_t ch = 0; ch < bn->channels(); ++ch) {
      bn->gamma()[ch] = 0.7f + 0.04f * static_cast<float>(ch % 5);
      bn->beta()[ch] = 0.05f - 0.02f * static_cast<float>(ch % 3);
      bn->running_mean()[ch] = 0.01f * static_cast<float>(ch % 4);
      bn->running_var()[ch] = 0.6f + 0.08f * static_cast<float>(ch % 6);
    }
  }
  nn::Sequential prepared = seq;
  ExecutionContext ctx;
  prepared.prepare_inference(ctx);
  for (const int64_t hw : {32, 8}) {
    const Tensor x = Tensor::randn(Shape{2, 32, hw, hw}, rng);
    const Tensor want = seq.forward(x, false);  // layer-by-layer eval
    const Tensor got = prepared.forward(ctx, x, false);
    expect_close(got, want, 1e-4f, 1e-5f);
  }
}

TEST(DepthwiseFusion, GatedAndFusedPathsAreBitIdentical) {
  // The gate is a pure latency knob: on the very shape it triggers for, the
  // producer fusion and the back-to-back pair must produce identical bits
  // (this is what makes the dispatch-time switch invisible to parity).
  if (!simd::fast_kernels_enabled()) {
    GTEST_SKIP() << "no fusion plan under TBNET_DETERMINISTIC=1";
  }
  Rng rng(18);
  nn::DepthwiseConv2d dw(
      32, nn::DepthwiseConv2d::Options{.kernel = 3, .stride = 1, .pad = 1},
      rng);
  nn::Conv2d pw(32, 48, nn::Conv2d::Options{.kernel = 1, .stride = 1,
                                            .pad = 0, .bias = false},
                rng);
  ExecutionContext ctx;
  pw.prepare_inference(ctx);
  const Tensor x = Tensor::randn(Shape{1, 32, 32, 32}, rng);
  ASSERT_FALSE(nn::fuse_dw_pw_profitable(32, 32 * 32));
  GemmEpilogue ep;
  ep.act = simd::Act::kReLU;
  const Tensor fused = nn::forward_depthwise_pointwise(
      ctx, x, dw, nullptr, nullptr, simd::Act::kReLU, pw, ep);
  const Tensor mid =
      dw.forward_fused(ctx, x, nullptr, nullptr, simd::Act::kReLU);
  const Tensor unfused =
      pw.forward_fused(ctx, mid, nullptr, nullptr, simd::Act::kReLU);
  ASSERT_EQ(fused.shape(), unfused.shape());
  for (int64_t i = 0; i < fused.numel(); ++i) {
    ASSERT_EQ(fused[i], unfused[i]) << "at " << i;
  }
}

TEST(DepthwiseFusion, PreparedSeparableBlockIsFrozen) {
  if (!simd::fast_kernels_enabled()) {
    GTEST_SKIP() << "no fusion plan under TBNET_DETERMINISTIC=1";
  }
  Rng rng(16);
  nn::Sequential seq;
  seq.emplace<nn::DepthwiseConv2d>(
      8, nn::DepthwiseConv2d::Options{.kernel = 3, .stride = 1, .pad = 1},
      rng);
  seq.emplace<nn::BatchNorm2d>(8);
  seq.emplace<nn::ReLU>();
  seq.emplace<nn::Conv2d>(
      8, 6, nn::Conv2d::Options{.kernel = 1, .stride = 1, .pad = 0,
                                .bias = false},
      rng);
  seq.emplace<nn::BatchNorm2d>(6);
  seq.emplace<nn::ReLU>();
  ExecutionContext ctx;
  seq.prepare_inference(ctx);
  const Tensor x = Tensor::randn(Shape{1, 8, 10, 10}, rng);
  const Tensor before = seq.forward(ctx, x, false);
  // Both BNs' composed affines were hoisted to prepare time; editing them
  // afterwards must not change the fused output (prepared models freeze).
  seq.find_nth<nn::BatchNorm2d>(0)->gamma()[0] = 55.0f;
  seq.find_nth<nn::BatchNorm2d>(1)->gamma()[0] = -9.0f;
  expect_bitwise(seq.forward(ctx, x, false), before);
}

}  // namespace
}  // namespace tbnet
