// Tests for PR 10's elastic serving: the supervisor-hosted autoscaler
// (scale-up under sustained queue depth, cooldown hysteresis, min/max
// bounds, drain exactness across park/unpark) and the priority lanes
// (highest-lane-first batch formation, earliest-deadline-first ordering
// within a lane, lowest-lane-first shedding under kShedOldest). All
// scenarios use synthetic engines so they are fast and TSan-clean; the
// real-model elastic soak lives in bench_serving --soak-seconds.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/server.h"
#include "tensor/tensor.h"

namespace tbnet::runtime {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

/// One-pixel image whose value identifies the request, so an engine can
/// record service order.
Tensor tagged_image(float id) {
  Tensor t(Shape{1, 1, 1});
  t.data()[0] = id;
  return t;
}

/// Minimal valid logits for a batch of n.
Tensor fake_logits(int64_t n) {
  Tensor out(Shape{n, 2});
  for (int64_t i = 0; i < out.numel(); ++i) out.data()[i] = 0.0f;
  return out;
}

/// Engine factory whose engines sleep `work` per batch — long enough for
/// the queue to stay deep across autoscaler ticks — and count how many
/// slots were actually built.
InferenceServer::EngineFactory slow_factory(std::atomic<int>& builds,
                                            milliseconds work) {
  return [&builds, work](int /*worker*/) {
    ++builds;
    InferenceServer::BatchFn engine = [work](const Tensor& nchw) {
      std::this_thread::sleep_for(work);
      return fake_logits(nchw.dim(0));
    };
    return std::make_pair(std::move(engine), InferenceServer::RecoverFn{});
  };
}

/// Polls `pred` until true or the deadline; returns its final value.
template <typename Pred>
bool eventually(Pred pred, milliseconds budget = milliseconds(5000)) {
  const auto until = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < until) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(2));
  }
  return pred();
}

int healthy_workers(const ServingStats& stats) {
  int n = 0;
  for (const auto& w : stats.per_worker) {
    if (w.health == WorkerHealth::kHealthy) ++n;
  }
  return n;
}

int parked_workers(const ServingStats& stats) {
  int n = 0;
  for (const auto& w : stats.per_worker) {
    if (w.health == WorkerHealth::kParked) ++n;
  }
  return n;
}

TEST(Autoscaler, ScalesUpUnderSustainedQueueDepth) {
  std::atomic<int> builds{0};
  InferenceServer::Config cfg;
  cfg.max_batch = 1;
  cfg.max_queue_delay = microseconds(500);
  cfg.min_workers = 1;
  cfg.max_workers = 3;
  cfg.autoscale_interval = microseconds(2000);
  cfg.autoscale_cooldown = microseconds(0);  // every tick may act
  InferenceServer server(slow_factory(builds, milliseconds(5)), cfg);
  EXPECT_EQ(builds.load(), 1);  // lazily built: only min_workers at start
  EXPECT_EQ(server.workers(), 3);  // but all slots exist
  {
    const ServingStats s0 = server.stats();
    EXPECT_EQ(healthy_workers(s0), 1);
    EXPECT_EQ(parked_workers(s0), 2);
    EXPECT_EQ(s0.workers_high_water, 1);
  }

  std::vector<std::future<InferenceResult>> futs;
  for (int i = 0; i < 40; ++i) futs.push_back(server.submit(tagged_image(1)));
  ASSERT_TRUE(eventually(
      [&] { return server.stats().scale_ups >= 1; }))
      << "autoscaler never scaled up under a 40-deep queue";
  for (auto& f : futs) EXPECT_EQ(f.get().status, Status::kOk);

  const ServingStats stats = server.stats();
  EXPECT_GE(stats.scale_ups, 1);
  EXPECT_GE(stats.workers_high_water, 2);
  EXPECT_LE(stats.workers_high_water, 3);
  EXPECT_GE(builds.load(), 2);  // the spawned slot's engine was built
  EXPECT_LE(builds.load(), 3);
  EXPECT_EQ(stats.requests, 40);
}

TEST(Autoscaler, CooldownPreventsFlapping) {
  // A cooldown far longer than the test means the policy may act exactly
  // once no matter how long overload persists — hysteresis, not a rate
  // limiter that eventually lets a burst through.
  std::atomic<int> builds{0};
  InferenceServer::Config cfg;
  cfg.max_batch = 1;
  cfg.max_queue_delay = microseconds(500);
  cfg.min_workers = 1;
  cfg.max_workers = 4;
  cfg.autoscale_interval = microseconds(1000);
  cfg.autoscale_cooldown = std::chrono::minutes(10);
  InferenceServer server(slow_factory(builds, milliseconds(4)), cfg);

  std::vector<std::future<InferenceResult>> futs;
  for (int i = 0; i < 50; ++i) futs.push_back(server.submit(tagged_image(1)));
  for (auto& f : futs) EXPECT_EQ(f.get().status, Status::kOk);

  const ServingStats stats = server.stats();
  EXPECT_LE(stats.scale_ups + stats.scale_downs, 1)
      << "scaled " << stats.scale_ups << " up / " << stats.scale_downs
      << " down inside one cooldown window";
  EXPECT_LE(stats.workers_high_water, 2);
}

TEST(Autoscaler, RespectsMinAndMaxBounds) {
  std::atomic<int> builds{0};
  InferenceServer::Config cfg;
  cfg.max_batch = 1;
  cfg.max_queue_delay = microseconds(500);
  cfg.min_workers = 2;
  cfg.max_workers = 3;
  cfg.autoscale_interval = microseconds(1000);
  cfg.autoscale_cooldown = microseconds(0);
  cfg.scale_down_utilization = 1.0;  // any idle tick may park
  InferenceServer server(slow_factory(builds, milliseconds(4)), cfg);
  EXPECT_EQ(builds.load(), 2);  // min_workers built eagerly

  std::vector<std::future<InferenceResult>> futs;
  for (int i = 0; i < 60; ++i) futs.push_back(server.submit(tagged_image(1)));
  for (auto& f : futs) EXPECT_EQ(f.get().status, Status::kOk);

  // Upper bound: slots beyond max_workers do not exist to activate.
  EXPECT_LE(server.stats().workers_high_water, 3);
  EXPECT_LE(builds.load(), 3);

  // Lower bound: now idle with an always-under-threshold utilization, the
  // pool shrinks — but never below min_workers, no matter how many ticks.
  ASSERT_TRUE(eventually([&] { return server.stats().scale_downs >= 1; }))
      << "idle pool never scaled down";
  std::this_thread::sleep_for(milliseconds(50));  // many more idle ticks
  const ServingStats stats = server.stats();
  EXPECT_EQ(healthy_workers(stats), 2);
  EXPECT_GE(stats.scale_downs, 1);
}

TEST(Autoscaler, ScaleDownKeepsDrainExact) {
  // A full load cycle (spike -> scale-up -> idle -> scale-down -> spike)
  // must strand nothing: every future resolves and the PR-7 accounting
  // identity holds with the pool size changing underneath the queue.
  std::atomic<int> builds{0};
  InferenceServer::Config cfg;
  cfg.max_batch = 2;
  cfg.max_queue_delay = microseconds(500);
  cfg.min_workers = 1;
  cfg.max_workers = 3;
  cfg.autoscale_interval = microseconds(1000);
  cfg.autoscale_cooldown = microseconds(0);
  cfg.scale_down_utilization = 1.0;
  InferenceServer server(slow_factory(builds, milliseconds(3)), cfg);

  int64_t submitted = 0;
  std::vector<std::future<InferenceResult>> futs;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 30; ++i) {
      futs.push_back(server.submit(tagged_image(1)));
      ++submitted;
    }
    // Let the burst drain and the idle autoscaler park workers again.
    eventually([&] { return server.stats().scale_downs > 0; },
               milliseconds(500));
  }
  server.drain();
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_EQ(f.get().status, Status::kOk);
  }
  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.requests + stats.rejected + stats.shed + stats.expired,
            submitted);
  EXPECT_EQ(stats.requests, submitted);  // nothing was dropped in this test
}

TEST(Autoscaler, ParkedMajorityNeverSwallowsWakeups) {
  // Steady state for an elastic server is most slots Parked. Every queued
  // request must still reach the one Healthy worker even though seven
  // non-claimable workers are blocked inside the same server — the lost-
  // wakeup scenario where a queue notification lands on a parked waiter
  // (which cannot claim) while the only claimable worker sleeps on, leaving
  // the request unserved with no further notification ever coming.
  std::atomic<int> builds{0};
  InferenceServer::Config cfg;
  cfg.max_batch = 4;
  cfg.max_queue_delay = microseconds(200);
  cfg.min_workers = 1;
  cfg.max_workers = 8;
  // No tick fires during the test: the seven parked workers stay parked and
  // one-request backlogs never trip the scale-up policy anyway.
  cfg.autoscale_interval = std::chrono::minutes(10);
  InferenceServer server(slow_factory(builds, milliseconds(0)), cfg);

  for (int i = 0; i < 50; ++i) {
    auto fut = server.submit(tagged_image(1));
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(5)),
              std::future_status::ready)
        << "request " << i << " was never claimed (lost wakeup)";
    EXPECT_EQ(fut.get().status, Status::kOk);
  }
  EXPECT_EQ(builds.load(), 1);  // the parked slots never activated
}

/// Single-worker fixed-pool server whose engine blocks its FIRST batch on a
/// gate; everything submitted while it is blocked queues up, which makes
/// lane/ordering behavior at batch formation directly observable.
struct GatedServer {
  std::mutex order_mu;
  std::vector<float> order;  // ids in service order, first (gate) batch too
  std::atomic<bool> entered{false};
  std::promise<void> gate;
  std::shared_future<void> released{gate.get_future().share()};
  std::unique_ptr<InferenceServer> server;

  explicit GatedServer(InferenceServer::Config cfg) {
    InferenceServer::BatchFn engine = [this](const Tensor& nchw) {
      const bool first = !entered.exchange(true);
      if (first) released.wait();
      {
        std::lock_guard<std::mutex> lock(order_mu);
        for (int64_t i = 0; i < nchw.dim(0); ++i) {
          order.push_back(nchw.data()[i]);
        }
      }
      return fake_logits(nchw.dim(0));
    };
    server =
        std::make_unique<InferenceServer>(std::move(engine), std::move(cfg));
  }

  /// Occupies the worker and waits until it is inside the engine.
  std::future<InferenceResult> occupy() {
    auto fut = server->submit(tagged_image(0));
    while (!entered.load()) std::this_thread::yield();
    return fut;
  }

  std::vector<float> service_order() {
    std::lock_guard<std::mutex> lock(order_mu);
    return order;
  }
};

TEST(PriorityLanes, HighLaneServedFirst) {
  InferenceServer::Config cfg;
  cfg.max_batch = 1;
  cfg.max_queue_delay = microseconds(200);
  GatedServer gs(cfg);
  auto blocker = gs.occupy();

  std::vector<std::future<InferenceResult>> futs;
  futs.push_back(gs.server->submit(tagged_image(1), microseconds(0),
                                   Priority::kLow));
  futs.push_back(gs.server->submit(tagged_image(2), microseconds(0),
                                   Priority::kNormal));
  futs.push_back(gs.server->submit(tagged_image(3), microseconds(0),
                                   Priority::kHigh));
  futs.push_back(gs.server->submit(tagged_image(4), microseconds(0),
                                   Priority::kLow));
  futs.push_back(gs.server->submit(tagged_image(5), microseconds(0),
                                   Priority::kHigh));
  gs.gate.set_value();

  EXPECT_EQ(blocker.get().status, Status::kOk);
  for (auto& f : futs) EXPECT_EQ(f.get().status, Status::kOk);
  // High lane first (FIFO within: 3 then 5), then normal, then low.
  EXPECT_EQ(gs.service_order(),
            (std::vector<float>{0, 3, 5, 2, 1, 4}));
}

TEST(PriorityLanes, EarliestDeadlineFirstWithinLane) {
  InferenceServer::Config cfg;
  cfg.max_batch = 1;
  cfg.max_queue_delay = microseconds(200);
  GatedServer gs(cfg);
  auto blocker = gs.occupy();

  // Same lane, deadlines far enough apart (and generous enough) that the
  // EDF insert — not expiry, not submit timing — decides the order.
  std::vector<std::future<InferenceResult>> futs;
  futs.push_back(gs.server->submit(tagged_image(1), milliseconds(8000)));
  futs.push_back(gs.server->submit(tagged_image(2), milliseconds(2000)));
  futs.push_back(gs.server->submit(tagged_image(3), milliseconds(5000)));
  futs.push_back(
      gs.server->submit(tagged_image(4), microseconds(0)));  // no deadline
  gs.gate.set_value();

  EXPECT_EQ(blocker.get().status, Status::kOk);
  for (auto& f : futs) EXPECT_EQ(f.get().status, Status::kOk);
  // 2 (2s) before 3 (5s) before 1 (8s); the deadline-less 4 sorts last.
  EXPECT_EQ(gs.service_order(), (std::vector<float>{0, 2, 3, 1, 4}));
}

TEST(PriorityLanes, ShedOldestDropsLowestLaneFirst) {
  InferenceServer::Config cfg;
  cfg.max_batch = 1;
  cfg.max_queue_delay = microseconds(200);
  cfg.queue_capacity = 2;
  cfg.admission = AdmissionPolicy::kShedOldest;
  GatedServer gs(cfg);
  auto blocker = gs.occupy();

  // Fill the queue with low-priority work...
  auto low1 = gs.server->submit(tagged_image(1), microseconds(0),
                                Priority::kLow);
  auto low2 = gs.server->submit(tagged_image(2), microseconds(0),
                                Priority::kLow);
  // ...then two high-priority arrivals each shed the lowest lane's front.
  auto high1 = gs.server->submit(tagged_image(3), microseconds(0),
                                 Priority::kHigh);
  auto high2 = gs.server->submit(tagged_image(4), microseconds(0),
                                 Priority::kHigh);
  gs.gate.set_value();

  EXPECT_EQ(low1.get().status, Status::kRejected);
  EXPECT_EQ(low2.get().status, Status::kRejected);
  EXPECT_EQ(blocker.get().status, Status::kOk);
  EXPECT_EQ(high1.get().status, Status::kOk);
  EXPECT_EQ(high2.get().status, Status::kOk);

  const ServingStats stats = gs.server->stats();
  EXPECT_EQ(stats.shed, 2);
  // Accounting identity across the shed: 5 submits.
  EXPECT_EQ(stats.requests + stats.rejected + stats.shed + stats.expired, 5);
  EXPECT_EQ(stats.requests, 3);
}

TEST(PriorityLanes, MaxQueueDelayBoundsNoDeadlineRequestBehindDeadlined) {
  // EDF ordering places an early no-deadline arrival BEHIND a later
  // deadlined one, so the lane front is not the oldest request. The
  // coalescing flush bound must still honor the OLDEST arrival's
  // max_queue_delay (it scans every queued request) — a front-only bound
  // would restart the aged request's clock and hold the batch another full
  // max_queue_delay.
  InferenceServer::Config cfg;
  cfg.max_batch = 3;  // strictly more than what queues up: no fullness flush
  cfg.max_queue_delay = milliseconds(200);
  GatedServer gs(cfg);
  auto blocker = gs.occupy();

  // The no-deadline request ages well past max_queue_delay while the worker
  // is occupied; the far-deadline request then sorts ahead of it.
  auto aged = gs.server->submit(tagged_image(1), microseconds(0));
  std::this_thread::sleep_for(milliseconds(400));
  auto fresh = gs.server->submit(tagged_image(2), milliseconds(10000));
  const auto released = std::chrono::steady_clock::now();
  gs.gate.set_value();

  EXPECT_EQ(blocker.get().status, Status::kOk);
  EXPECT_EQ(aged.get().status, Status::kOk);
  EXPECT_EQ(fresh.get().status, Status::kOk);
  const double after_release = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - released)
                                   .count();
  // The aged request's flush deadline passed long ago, so the partial batch
  // flushes immediately; a front-only bound would idle ~200ms more.
  EXPECT_LT(after_release, 0.1)
      << "partial batch idled past the oldest request's max_queue_delay";
  // One batch, EDF order within it: the deadlined request first.
  EXPECT_EQ(gs.service_order(), (std::vector<float>{0, 2, 1}));
}

TEST(PriorityLanes, RequeuedRiderKeepsEdfOrder) {
  // A rider bounced off a tripped worker re-enters its lane at EDF
  // position: a request that arrived while the failing batch ran and holds
  // an EARLIER deadline is served first after recovery. A blind re-queue to
  // the lane front would invert that and break the sort invariant that
  // enqueue_locked's back-walk insertion and the O(1) front-expiry rely on.
  std::mutex order_mu;
  std::vector<float> order;
  std::promise<void> in_failing_batch;
  std::promise<void> release_failing_batch;
  std::shared_future<void> release{release_failing_batch.get_future().share()};
  std::atomic<bool> failed_once{false};

  InferenceServer::BatchFn engine = [&](const Tensor& nchw) -> Tensor {
    if (nchw.data()[0] == 1.0f && !failed_once.exchange(true)) {
      in_failing_batch.set_value();
      release.wait();
      throw std::runtime_error("injected trip");
    }
    {
      std::lock_guard<std::mutex> lock(order_mu);
      for (int64_t i = 0; i < nchw.dim(0); ++i) {
        order.push_back(nchw.data()[i]);
      }
    }
    return fake_logits(nchw.dim(0));
  };
  std::vector<InferenceServer::BatchFn> engines;
  engines.push_back(std::move(engine));
  std::vector<InferenceServer::RecoverFn> recovery;
  recovery.push_back([] {});  // recovery always succeeds

  InferenceServer::Config cfg;
  cfg.max_batch = 1;
  cfg.max_queue_delay = microseconds(200);
  cfg.breaker_threshold = 1;  // the first failed batch trips
  cfg.recovery_backoff = microseconds(500);
  InferenceServer server(std::move(engines), std::move(recovery), cfg);

  auto rider = server.submit(tagged_image(1), milliseconds(8000));
  in_failing_batch.get_future().wait();  // worker is inside the failing batch
  // Arrives mid-batch with the earlier deadline: EDF puts it ahead of the
  // about-to-bounce rider.
  auto urgent = server.submit(tagged_image(2), milliseconds(3000));
  release_failing_batch.set_value();

  EXPECT_EQ(urgent.get().status, Status::kOk);
  EXPECT_EQ(rider.get().status, Status::kOk);
  {
    std::lock_guard<std::mutex> lock(order_mu);
    EXPECT_EQ(order, (std::vector<float>{2, 1}));
  }
  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.requeued, 1);
  EXPECT_EQ(stats.quarantines, 1);
  EXPECT_GE(stats.recoveries, 1);
}

TEST(PriorityLanes, ElasticServerPreservesPriorityAcrossScaleUp) {
  // Priority ordering must survive the pool growing mid-backlog: a scaled-up
  // worker claims from the same lanes, highest first.
  std::atomic<int> builds{0};
  InferenceServer::Config cfg;
  cfg.max_batch = 4;
  cfg.max_queue_delay = microseconds(500);
  cfg.min_workers = 1;
  cfg.max_workers = 2;
  cfg.autoscale_interval = microseconds(1000);
  cfg.autoscale_cooldown = microseconds(0);
  InferenceServer server(slow_factory(builds, milliseconds(2)), cfg);

  std::vector<std::future<InferenceResult>> futs;
  for (int i = 0; i < 20; ++i) {
    const Priority p = i % 2 == 0 ? Priority::kHigh : Priority::kLow;
    futs.push_back(server.submit(tagged_image(1), microseconds(0), p));
  }
  for (auto& f : futs) EXPECT_EQ(f.get().status, Status::kOk);
  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.requests, 20);
  EXPECT_EQ(stats.requests + stats.rejected + stats.shed + stats.expired, 20);
}

}  // namespace
}  // namespace tbnet::runtime
