// Property tests: invariants that must hold across seeds and configurations,
// exercised with parameterized sweeps.

#include <gtest/gtest.h>

#include <cmath>

#include "attack/attacks.h"
#include "core/knowledge_transfer.h"
#include "core/pruner.h"
#include "core/rollback.h"
#include "data/synthetic_cifar.h"
#include "models/model_zoo.h"
#include "nn/serialize.h"
#include "tee/channel.h"
#include "tee/cost_model.h"
#include "tee/sealing.h"

namespace tbnet {
namespace {

// ----------------------------------------------------------- seed sweeps ---

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweep, TwoBranchInitializationInvariants) {
  // For every seed: M_R == victim function (VGG), branches resolve with
  // equal widths at every prune point, and the fused output differs from
  // both single branches (fusion actually mixes).
  const uint64_t seed = GetParam();
  models::ModelConfig cfg;
  cfg.family = models::Family::kVgg;
  cfg.depth = 11;
  cfg.classes = 10;
  cfg.width_mult = 0.125;
  cfg.seed = seed;
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);

  Rng rng(seed ^ 1);
  Tensor x = Tensor::randn(Shape{1, 3, 32, 32}, rng);
  EXPECT_TRUE(allclose(tb.forward_exposed_only(x, false),
                       victim.forward(x, false), 1e-5f, 1e-5f));
  for (const auto& p : models::prune_points(cfg)) {
    const auto rp = core::resolve_point(tb, p);
    EXPECT_EQ(rp.bn_exposed->channels(), rp.bn_secure->channels());
  }
  const Tensor fused = tb.forward(x, false);
  EXPECT_FALSE(allclose(fused, tb.forward_secure_only(x, false)));
}

TEST_P(SeedSweep, SerializationIsLossless) {
  const uint64_t seed = GetParam();
  models::ModelConfig cfg;
  cfg.family = models::Family::kResNet;
  cfg.depth = 20;
  cfg.classes = 10;
  cfg.width_mult = 0.25;
  cfg.seed = seed;
  nn::Sequential victim = models::build_victim(cfg);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  nn::save_model(ss, victim);
  auto loaded = nn::load_model(ss);
  Rng rng(seed ^ 2);
  Tensor x = Tensor::randn(Shape{2, 3, 32, 32}, rng);
  EXPECT_TRUE(allclose(victim.forward(x, false), loaded->forward(x, false),
                       0.0f, 0.0f));
}

TEST_P(SeedSweep, SealingNeverLeaksPlaintext) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  std::vector<uint8_t> msg(256);
  for (auto& b : msg) b = static_cast<uint8_t>(rng.uniform_int(256));
  const auto key = tee::DeviceKey::derive("k" + std::to_string(seed));
  const auto blob = tee::seal(key, seed, msg);
  // No 16-byte window of the plaintext survives in the ciphertext.
  for (size_t i = 0; i + 16 <= msg.size(); i += 16) {
    bool identical = true;
    for (size_t j = 0; j < 16; ++j) {
      if (blob.ciphertext[i + j] != msg[i + j]) {
        identical = false;
        break;
      }
    }
    EXPECT_FALSE(identical) << "plaintext window at " << i;
  }
  EXPECT_EQ(tee::unseal(key, blob), msg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 7u, 42u, 1337u, 99991u));

// ---------------------------------------------------- pruning invariants ---

class PruneRatioProperty : public ::testing::TestWithParam<double> {};

TEST_P(PruneRatioProperty, SharedMaskKeepsBranchesAligned) {
  const double ratio = GetParam();
  models::ModelConfig cfg;
  cfg.family = models::Family::kVgg;
  cfg.depth = 11;
  cfg.classes = 10;
  cfg.width_mult = 0.25;
  cfg.seed = 5;
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
  const auto points = models::prune_points(cfg);

  auto keep = core::compute_keep_lists(
      tb, points, ratio, 2, core::PruneConfig::Criterion::kAbsCompositeSum);
  for (size_t p = 0; p < points.size(); ++p) {
    core::apply_channel_keep(tb, points[p], keep[p]);
  }
  // Invariants: equal widths everywhere, model still functional, monotone
  // keep lists, floor respected.
  for (size_t p = 0; p < points.size(); ++p) {
    const auto rp = core::resolve_point(tb, points[p]);
    EXPECT_EQ(rp.bn_exposed->channels(), rp.bn_secure->channels());
    EXPECT_GE(rp.bn_secure->channels(), 2);
    EXPECT_EQ(rp.bn_secure->channels(),
              static_cast<int64_t>(keep[p].size()));
  }
  Rng rng(6);
  Tensor x = Tensor::randn(Shape{1, 3, 32, 32}, rng);
  EXPECT_EQ(tb.forward(x, false).shape(), Shape({1, 10}));
}

INSTANTIATE_TEST_SUITE_P(Ratios, PruneRatioProperty,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5));

// ----------------------------------------------------- channel invariant ---

class ChannelDirection
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST(ChannelProperty, OnlyNormalToSecureEverSucceeds) {
  for (const auto policy : {tee::OneWayChannel::Policy::kOneWayIntoTee,
                            tee::OneWayChannel::Policy::kBidirectional}) {
    tee::OneWayChannel ch(policy);
    ch.push(tee::World::kNormal, tee::World::kSecure, 128);  // always legal
    if (policy == tee::OneWayChannel::Policy::kOneWayIntoTee) {
      EXPECT_THROW(ch.push(tee::World::kSecure, tee::World::kNormal, 1),
                   tee::SecurityViolation);
      EXPECT_EQ(ch.leaked_bytes(), 0);
    } else {
      ch.push(tee::World::kSecure, tee::World::kNormal, 1);
      EXPECT_EQ(ch.leaked_bytes(), 1);
    }
  }
}

// ------------------------------------------------------ timeline algebra ---

class TimelineScale : public ::testing::TestWithParam<double> {};

TEST_P(TimelineScale, MakespanIsMonotoneInWork) {
  // Scaling every stage's work up must never shorten the schedule.
  const double scale = GetParam();
  tee::CostModel cm(tee::DeviceProfile::rpi3());
  std::vector<tee::StageCost> base, scaled;
  for (int i = 0; i < 6; ++i) {
    tee::StageCost c{2'000'000 + i * 500'000, 1'000'000, 8192};
    base.push_back(c);
    c.exposed_macs = static_cast<int64_t>(c.exposed_macs * scale);
    c.secure_macs = static_cast<int64_t>(c.secure_macs * scale);
    scaled.push_back(c);
  }
  const double m0 = simulate_two_branch(cm, base).makespan_s;
  const double m1 = simulate_two_branch(cm, scaled).makespan_s;
  if (scale >= 1.0) {
    EXPECT_GE(m1 + 1e-12, m0);
  } else {
    EXPECT_LE(m1, m0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, TimelineScale,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0));

// ------------------------------------------------ dataset distributional ---

TEST(DatasetProperty, BalancedLabelsForAnySize) {
  for (int64_t n : {37, 100, 250}) {
    data::SyntheticCifar::Options opt;
    opt.classes = 10;
    opt.samples = n;
    opt.image_size = 16;
    data::SyntheticCifar ds(opt);
    std::vector<int64_t> counts(10, 0);
    for (int64_t i = 0; i < n; ++i) counts[static_cast<size_t>(ds.get(i).label)]++;
    const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
    EXPECT_LE(*hi - *lo, 1) << "n=" << n;  // round-robin balance
  }
}

TEST(DatasetProperty, DifficultyRaisesNoise) {
  // Higher difficulty -> lower correlation between same-class samples.
  auto same_class_corr = [](double difficulty) {
    data::SyntheticCifar::Options opt;
    opt.classes = 10;
    opt.samples = 40;
    opt.image_size = 16;
    opt.difficulty = difficulty;
    data::SyntheticCifar ds(opt);
    double acc = 0;
    int pairs = 0;
    for (int64_t i = 0; i < 10; ++i) {
      const Tensor a = ds.get(i).image;
      const Tensor b = ds.get(i + 10).image;  // same class
      double num = 0, da = 0, db = 0;
      for (int64_t j = 0; j < a.numel(); ++j) {
        num += a[j] * b[j];
        da += a[j] * a[j];
        db += b[j] * b[j];
      }
      acc += num / std::sqrt(da * db + 1e-9);
      ++pairs;
    }
    return acc / pairs;
  };
  EXPECT_GT(same_class_corr(0.1), same_class_corr(0.9));
}

}  // namespace
}  // namespace tbnet
