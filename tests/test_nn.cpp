// Unit tests for the nn layer zoo: forward values, numerical gradient checks
// for every backward pass, pruning edits, optimizer and serialization.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <sstream>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "nn/init.h"
#include "nn/optimizer.h"
#include "nn/pool.h"
#include "nn/residual.h"
#include "nn/sequential.h"
#include "nn/serialize.h"
#include "tensor/ops.h"

namespace tbnet::nn {
namespace {

/// loss(x) = sum(w .* layer(x)); returns analytic dloss/dx and compares a
/// sampled subset of entries against central differences. Also checks the
/// parameter gradients when `check_params` is set.
void check_gradients(Layer& layer, const Tensor& input, uint64_t seed,
                     bool check_params = true, float tol = 2e-2f) {
  Rng rng(seed);
  Tensor x = input;
  Tensor y = layer.forward(x, /*train=*/true);
  const Tensor w = Tensor::randn(y.shape(), rng);

  layer.zero_grad();
  Tensor dx = layer.backward(w);
  ASSERT_EQ(dx.shape().dims(), x.shape().dims());

  auto loss_at = [&](const Tensor& xx) -> double {
    Tensor yy = layer.forward(xx, /*train=*/true);
    double s = 0;
    for (int64_t i = 0; i < yy.numel(); ++i) s += w[i] * yy[i];
    return s;
  };

  // Save parameter gradients before the finite-difference passes clobber the
  // layer's forward cache (they do not touch grads, but forward(train) does
  // recompute caches, which is fine).
  std::vector<Tensor> param_grads;
  for (ParamRef p : layer.params()) param_grads.push_back(*p.grad);

  // The loss is piecewise-linear in ReLU nets, so a finite difference across
  // a kink is garbage. Compare the one-sided slopes on each flank; if they
  // disagree, a ReLU boundary sits inside (or at) the interval — skip the
  // sample. Where they agree the function is locally smooth and the central
  // difference is reliable.
  const float eps = 1e-2f;
  auto fd_or_skip = [&](const std::function<double(float)>& loss_shift,
                        double* fd) -> bool {
    const double l0 = loss_shift(0.0f);
    const double fp = (loss_shift(eps) - l0) / eps;
    const double fm = (l0 - loss_shift(-eps)) / eps;
    if (std::fabs(fp - fm) > 0.02 * std::max(1.0, std::fabs(fp + fm) / 2)) {
      return false;
    }
    *fd = (fp + fm) / 2.0;
    return true;
  };

  Rng pick(seed ^ 0xABCD);
  const int64_t samples = std::min<int64_t>(x.numel(), 24);
  for (int64_t s = 0; s < samples; ++s) {
    const int64_t i = pick.uniform_int(x.numel());
    double fd = 0.0;
    const bool ok = fd_or_skip(
        [&](float d) {
          Tensor xs = x;
          xs[i] += d;
          return loss_at(xs);
        },
        &fd);
    if (!ok) continue;
    const double scale = std::max(1.0, std::fabs(fd));
    EXPECT_NEAR(dx[i], fd, tol * scale) << "input grad at " << i;
  }

  if (!check_params) return;
  auto params = layer.params();
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& value = *params[pi].value;
    const Tensor& analytic = param_grads[pi];
    const int64_t psamples = std::min<int64_t>(value.numel(), 12);
    for (int64_t s = 0; s < psamples; ++s) {
      const int64_t i = pick.uniform_int(value.numel());
      const float orig = value[i];
      double fd = 0.0;
      const bool ok = fd_or_skip(
          [&](float d) {
            value[i] = orig + d;
            const double l = loss_at(x);
            value[i] = orig;
            return l;
          },
          &fd);
      if (!ok) continue;
      const double scale = std::max(1.0, std::fabs(fd));
      EXPECT_NEAR(analytic[i], fd, tol * scale)
          << "param " << params[pi].name << " grad at " << i;
    }
  }
}

// --------------------------------------------------------------- Conv2d ----

TEST(Conv2d, OutShapeAndMacs) {
  Rng rng(1);
  Conv2d conv(3, 8, {.kernel = 3, .stride = 1, .pad = 1, .bias = false}, rng);
  const Shape in{2, 3, 16, 16};
  EXPECT_EQ(conv.out_shape(in), Shape({2, 8, 16, 16}));
  EXPECT_EQ(conv.macs(in), 2 * 8 * 16 * 16 * 3 * 3 * 3);
}

TEST(Conv2d, StrideAndPaddingGeometry) {
  Rng rng(2);
  Conv2d conv(1, 1, {.kernel = 3, .stride = 2, .pad = 0, .bias = false}, rng);
  EXPECT_EQ(conv.out_shape(Shape{1, 1, 7, 9}), Shape({1, 1, 3, 4}));
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  Rng rng(3);
  Conv2d conv(1, 1, {.kernel = 1, .stride = 1, .pad = 0, .bias = false}, rng);
  conv.weight().fill(1.0f);
  Tensor x = Tensor::randn(Shape{1, 1, 4, 4}, rng);
  Tensor y = conv.forward(x, false);
  EXPECT_TRUE(allclose(y, x));
}

TEST(Conv2d, KnownConvolutionValue) {
  Rng rng(4);
  Conv2d conv(1, 1, {.kernel = 3, .stride = 1, .pad = 1, .bias = false}, rng);
  conv.weight().fill(1.0f);  // 3x3 box filter
  Tensor x = Tensor::ones(Shape{1, 1, 3, 3});
  Tensor y = conv.forward(x, false);
  // Center sees 9 ones; corners see 4.
  EXPECT_FLOAT_EQ(y.at({0, 0, 1, 1}), 9.0f);
  EXPECT_FLOAT_EQ(y.at({0, 0, 0, 0}), 4.0f);
  EXPECT_FLOAT_EQ(y.at({0, 0, 0, 1}), 6.0f);
}

TEST(Conv2d, BiasIsAdded) {
  Rng rng(5);
  Conv2d conv(1, 2, {.kernel = 1, .stride = 1, .pad = 0, .bias = true}, rng);
  conv.weight().zero();
  conv.bias()[0] = 1.5f;
  conv.bias()[1] = -2.0f;
  Tensor y = conv.forward(Tensor::ones(Shape{1, 1, 2, 2}), false);
  EXPECT_FLOAT_EQ(y.at({0, 0, 0, 0}), 1.5f);
  EXPECT_FLOAT_EQ(y.at({0, 1, 1, 1}), -2.0f);
}

TEST(Conv2d, GradientCheck) {
  Rng rng(6);
  Conv2d conv(2, 3, {.kernel = 3, .stride = 1, .pad = 1, .bias = true}, rng);
  check_gradients(conv, Tensor::randn(Shape{2, 2, 5, 5}, rng), 61);
}

TEST(Conv2d, GradientCheckStrided) {
  Rng rng(7);
  Conv2d conv(3, 4, {.kernel = 3, .stride = 2, .pad = 1, .bias = false}, rng);
  check_gradients(conv, Tensor::randn(Shape{2, 3, 8, 8}, rng), 71);
}

TEST(Conv2d, PruneOutputChannels) {
  Rng rng(8);
  Conv2d conv(2, 4, {.kernel = 3, .stride = 1, .pad = 1, .bias = true}, rng);
  Tensor x = Tensor::randn(Shape{1, 2, 6, 6}, rng);
  Tensor y_full = conv.forward(x, false);
  conv.select_out_channels({1, 3});
  EXPECT_EQ(conv.out_channels(), 2);
  Tensor y = conv.forward(x, false);
  for (int64_t p = 0; p < 36; ++p) {
    EXPECT_FLOAT_EQ(y[p], y_full[1 * 36 + p]);
    EXPECT_FLOAT_EQ(y[36 + p], y_full[3 * 36 + p]);
  }
}

TEST(Conv2d, PruneInputChannelsMatchesReducedInput) {
  Rng rng(9);
  Conv2d conv(3, 2, {.kernel = 3, .stride = 1, .pad = 1, .bias = false}, rng);
  Tensor x = Tensor::randn(Shape{1, 3, 5, 5}, rng);
  // Zero channel 1 of the input; then pruning channel 1 must be equivalent.
  Tensor x_zeroed = x;
  for (int64_t p = 0; p < 25; ++p) x_zeroed[25 + p] = 0.0f;
  Tensor y_ref = conv.forward(x_zeroed, false);
  conv.select_in_channels({0, 2});
  Tensor x_small(Shape{1, 2, 5, 5});
  for (int64_t p = 0; p < 25; ++p) {
    x_small[p] = x[p];
    x_small[25 + p] = x[2 * 25 + p];
  }
  Tensor y = conv.forward(x_small, false);
  EXPECT_TRUE(allclose(y, y_ref, 1e-4f, 1e-5f));
}

TEST(Conv2d, PruneAllChannelsThrows) {
  Rng rng(10);
  Conv2d conv(2, 2, {.kernel = 1, .stride = 1, .pad = 0, .bias = false}, rng);
  EXPECT_THROW(conv.select_out_channels({}), std::invalid_argument);
  EXPECT_THROW(conv.select_in_channels({}), std::invalid_argument);
  EXPECT_THROW(conv.select_out_channels({5}), std::out_of_range);
}

TEST(Conv2d, RejectsWrongInput) {
  Rng rng(11);
  Conv2d conv(3, 4, {.kernel = 3, .stride = 1, .pad = 1, .bias = false}, rng);
  EXPECT_THROW(conv.forward(Tensor(Shape{1, 2, 8, 8}), false),
               std::invalid_argument);
  EXPECT_THROW(conv.backward(Tensor(Shape{1, 4, 8, 8})), std::logic_error);
}

// ---------------------------------------------------------- BatchNorm2d ----

TEST(BatchNorm2d, NormalizesBatchStatistics) {
  BatchNorm2d bn(2);
  Rng rng(12);
  Tensor x = Tensor::randn(Shape{4, 2, 6, 6}, rng, 3.0f, 2.0f);
  Tensor y = bn.forward(x, /*train=*/true);
  // Per-channel mean ~0, var ~1 after normalization with gamma=1, beta=0.
  for (int64_t c = 0; c < 2; ++c) {
    double mean = 0, var = 0;
    int64_t count = 0;
    for (int64_t n = 0; n < 4; ++n) {
      for (int64_t p = 0; p < 36; ++p) {
        const float v = y[(n * 2 + c) * 36 + p];
        mean += v;
        ++count;
      }
    }
    mean /= count;
    for (int64_t n = 0; n < 4; ++n) {
      for (int64_t p = 0; p < 36; ++p) {
        const double d = y[(n * 2 + c) * 36 + p] - mean;
        var += d * d;
      }
    }
    var /= count;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, RunningStatsConvergeToBatchStats) {
  BatchNorm2d bn(1, 1e-5f, /*momentum=*/0.5f);
  Rng rng(13);
  Tensor x = Tensor::randn(Shape{8, 1, 4, 4}, rng, -1.0f, 0.5f);
  for (int i = 0; i < 20; ++i) bn.forward(x, true);
  EXPECT_NEAR(bn.running_mean()[0], -1.0f, 0.1f);
  EXPECT_NEAR(bn.running_var()[0], 0.25f, 0.05f);
}

TEST(BatchNorm2d, EvalModeUsesRunningStats) {
  BatchNorm2d bn(1);
  bn.running_mean()[0] = 2.0f;
  bn.running_var()[0] = 4.0f;
  bn.gamma()[0] = 3.0f;
  bn.beta()[0] = 1.0f;
  Tensor x = Tensor::full(Shape{1, 1, 1, 1}, 4.0f);
  Tensor y = bn.forward(x, false);
  // (4-2)/2 * 3 + 1 = 4 (up to eps).
  EXPECT_NEAR(y[0], 4.0f, 1e-3f);
}

TEST(BatchNorm2d, GradientCheck) {
  BatchNorm2d bn(3);
  Rng rng(14);
  bn.gamma() = Tensor::randn(Shape{3}, rng, 1.0f, 0.2f);
  bn.beta() = Tensor::randn(Shape{3}, rng, 0.0f, 0.2f);
  check_gradients(bn, Tensor::randn(Shape{3, 3, 4, 4}, rng), 141);
}

TEST(BatchNorm2d, SelectChannels) {
  BatchNorm2d bn(4);
  for (int64_t c = 0; c < 4; ++c) {
    bn.gamma()[c] = static_cast<float>(c);
    bn.running_mean()[c] = 10.0f + static_cast<float>(c);
  }
  bn.select_channels({2, 3});
  EXPECT_EQ(bn.channels(), 2);
  EXPECT_FLOAT_EQ(bn.gamma()[0], 2.0f);
  EXPECT_FLOAT_EQ(bn.running_mean()[1], 13.0f);
  EXPECT_THROW(bn.select_channels({}), std::invalid_argument);
}

// ----------------------------------------------------------------- ReLU ----

TEST(ReLU, ClampsNegatives) {
  ReLU relu;
  Tensor x = Tensor::from({-1.0f, 0.0f, 2.0f});
  Tensor y = relu.forward(x, false);
  EXPECT_TRUE(allclose(y, Tensor::from({0.0f, 0.0f, 2.0f})));
}

TEST(ReLU, BackwardMasks) {
  ReLU relu;
  Tensor x = Tensor::from({-1.0f, 3.0f});
  relu.forward(x, true);
  Tensor dx = relu.backward(Tensor::from({5.0f, 7.0f}));
  EXPECT_TRUE(allclose(dx, Tensor::from({0.0f, 7.0f})));
}

// ----------------------------------------------------------------- Pool ----

TEST(MaxPool2d, ForwardPicksMaxima) {
  MaxPool2d pool(2);
  Tensor x = Tensor::from({1, 2, 3, 4,
                           5, 6, 7, 8,
                           9, 10, 11, 12,
                           13, 14, 15, 16})
                 .reshaped(Shape{1, 1, 4, 4});
  Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y[0], 6.0f);
  EXPECT_FLOAT_EQ(y[3], 16.0f);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  Tensor x = Tensor::from({1, 2, 3, 4}).reshaped(Shape{1, 1, 2, 2});
  pool.forward(x, true);
  Tensor dx = pool.backward(Tensor::from({10.0f}).reshaped(Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(dx[3], 10.0f);
  EXPECT_FLOAT_EQ(dx[0] + dx[1] + dx[2], 0.0f);
}

TEST(MaxPool2d, GradientCheck) {
  Rng rng(15);
  MaxPool2d pool(2);
  check_gradients(pool, Tensor::randn(Shape{2, 2, 6, 6}, rng), 151, false);
}

TEST(GlobalAvgPool2d, ForwardAveragesAndShapes) {
  GlobalAvgPool2d gap;
  Tensor x = Tensor::from({1, 2, 3, 4, 10, 20, 30, 40})
                 .reshaped(Shape{1, 2, 2, 2});
  Tensor y = gap.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({1, 2, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  EXPECT_FLOAT_EQ(y[1], 25.0f);
}

TEST(GlobalAvgPool2d, GradientCheck) {
  Rng rng(16);
  GlobalAvgPool2d gap;
  check_gradients(gap, Tensor::randn(Shape{2, 3, 4, 4}, rng), 161, false);
}

// ---------------------------------------------------------------- Dense ----

TEST(Dense, ForwardKnownValues) {
  Rng rng(17);
  Dense dense(2, 2, rng, true);
  dense.weight() = Tensor(Shape{2, 2}, {1, 2, 3, 4});
  dense.bias() = Tensor(Shape{2}, {0.5f, -0.5f});
  Tensor x = Tensor(Shape{1, 2}, {1, 1});
  Tensor y = dense.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 3.5f);   // 1+2+0.5
  EXPECT_FLOAT_EQ(y[1], 6.5f);   // 3+4-0.5
}

TEST(Dense, GradientCheck) {
  Rng rng(18);
  Dense dense(5, 3, rng, true);
  check_gradients(dense, Tensor::randn(Shape{4, 5}, rng), 181);
}

TEST(Dense, SelectInFeatures) {
  Rng rng(19);
  Dense dense(4, 2, rng, false);
  dense.weight() = Tensor(Shape{2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  dense.select_in_features({0, 3});
  EXPECT_EQ(dense.in_features(), 2);
  EXPECT_FLOAT_EQ(dense.weight()[0], 1.0f);
  EXPECT_FLOAT_EQ(dense.weight()[1], 4.0f);
  EXPECT_FLOAT_EQ(dense.weight()[2], 5.0f);
  EXPECT_FLOAT_EQ(dense.weight()[3], 8.0f);
}

TEST(Dense, SelectInChannelsSpansFeatureBlocks) {
  Rng rng(20);
  Dense dense(6, 1, rng, false);  // 3 channels x 2 features
  dense.weight() = Tensor(Shape{1, 6}, {1, 2, 3, 4, 5, 6});
  dense.select_in_channels({0, 2}, 2);
  EXPECT_EQ(dense.in_features(), 4);
  EXPECT_FLOAT_EQ(dense.weight()[2], 5.0f);
  EXPECT_THROW(dense.select_in_channels({0}, 5), std::invalid_argument);
}

// -------------------------------------------------------------- Flatten ----

TEST(Flatten, RoundTripsThroughBackward) {
  Flatten flat;
  Rng rng(21);
  Tensor x = Tensor::randn(Shape{2, 3, 2, 2}, rng);
  Tensor y = flat.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({2, 12}));
  Tensor dx = flat.backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
  EXPECT_TRUE(allclose(dx, x));
}

// -------------------------------------------------------- ResidualBlock ----

TEST(ResidualBlock, IdentitySkipShape) {
  Rng rng(22);
  ResidualBlock block(4, 4, 1, rng);
  EXPECT_FALSE(block.has_downsample());
  EXPECT_EQ(block.out_shape(Shape{1, 4, 8, 8}), Shape({1, 4, 8, 8}));
}

TEST(ResidualBlock, DownsampleSkipShape) {
  Rng rng(23);
  ResidualBlock block(4, 8, 2, rng);
  EXPECT_TRUE(block.has_downsample());
  EXPECT_EQ(block.out_shape(Shape{1, 4, 8, 8}), Shape({1, 8, 4, 4}));
}

TEST(ResidualBlock, GradientCheckIdentity) {
  Rng rng(24);
  ResidualBlock block(3, 3, 1, rng);
  check_gradients(block, Tensor::randn(Shape{2, 3, 5, 5}, rng), 241);
}

TEST(ResidualBlock, GradientCheckDownsample) {
  Rng rng(25);
  ResidualBlock block(3, 5, 2, rng);
  check_gradients(block, Tensor::randn(Shape{2, 3, 6, 6}, rng), 251);
}

TEST(ResidualBlock, PruneInternalKeepsInterface) {
  Rng rng(26);
  ResidualBlock block(4, 4, 1, rng);
  block.prune_internal({0, 2});
  EXPECT_EQ(block.internal_channels(), 2);
  EXPECT_EQ(block.in_channels(), 4);
  EXPECT_EQ(block.out_channels(), 4);
  Tensor x = Tensor::randn(Shape{1, 4, 6, 6}, rng);
  EXPECT_EQ(block.forward(x, false).shape(), Shape({1, 4, 6, 6}));
}

TEST(ResidualBlock, PlainBlockMirrorsMainBranch) {
  Rng rng(27);
  ResidualBlock block(3, 3, 1, rng);
  Sequential plain = plain_block_like(block, rng);
  copy_main_branch(block, plain);
  // With the skip removed the outputs differ, but the plain block must be a
  // valid network with the same interface.
  Tensor x = Tensor::randn(Shape{1, 3, 5, 5}, rng);
  EXPECT_EQ(plain.out_shape(x.shape()), block.out_shape(x.shape()));
  // The copied conv weights must be identical.
  auto* c1 = plain.find_nth<Conv2d>(0);
  ASSERT_NE(c1, nullptr);
  EXPECT_TRUE(allclose(c1->weight(), block.conv1().weight(), 0.0f, 0.0f));
}

// ----------------------------------------------------------- Sequential ----

TEST(Sequential, ComposesForward) {
  Rng rng(28);
  Sequential seq;
  seq.emplace<Dense>(3, 4, rng);
  seq.emplace<ReLU>();
  seq.emplace<Dense>(4, 2, rng);
  Tensor y = seq.forward(Tensor::randn(Shape{5, 3}, rng), false);
  EXPECT_EQ(y.shape(), Shape({5, 2}));
}

TEST(Sequential, GradientCheck) {
  Rng rng(29);
  Sequential seq;
  seq.emplace<Conv2d>(2, 3, Conv2d::Options{.kernel = 3, .stride = 1, .pad = 1,
                                            .bias = false},
                      rng);
  seq.emplace<BatchNorm2d>(3);
  seq.emplace<ReLU>();
  seq.emplace<GlobalAvgPool2d>();
  seq.emplace<Flatten>();
  seq.emplace<Dense>(3, 2, rng);
  check_gradients(seq, Tensor::randn(Shape{2, 2, 6, 6}, rng), 291);
}

TEST(Sequential, CloneIsDeepCopy) {
  Rng rng(30);
  Sequential seq;
  seq.emplace<Dense>(2, 2, rng);
  auto copy = seq.clone();
  auto* orig = seq.find_nth<Dense>(0);
  auto* cloned = dynamic_cast<Sequential*>(copy.get())->find_nth<Dense>(0);
  ASSERT_NE(cloned, nullptr);
  EXPECT_TRUE(allclose(orig->weight(), cloned->weight(), 0.0f, 0.0f));
  orig->weight().fill(99.0f);
  EXPECT_FALSE(allclose(orig->weight(), cloned->weight()));
}

TEST(Sequential, ParamNamesArePrefixed) {
  Rng rng(31);
  Sequential seq;
  seq.emplace<Conv2d>(1, 1, Conv2d::Options{.kernel = 1, .pad = 0}, rng);
  seq.emplace<BatchNorm2d>(1);
  auto params = seq.params();
  ASSERT_EQ(params.size(), 3u);
  EXPECT_EQ(params[0].name, "0.Conv2d.weight");
  EXPECT_EQ(params[1].name, "1.BatchNorm2d.gamma");
}

TEST(Sequential, MacsAccumulateWithShapePropagation) {
  Rng rng(32);
  Sequential seq;
  seq.emplace<Conv2d>(1, 2, Conv2d::Options{.kernel = 3, .stride = 1, .pad = 1,
                                            .bias = false},
                      rng);
  seq.emplace<MaxPool2d>(2);
  seq.emplace<Conv2d>(2, 4, Conv2d::Options{.kernel = 3, .stride = 1, .pad = 1,
                                            .bias = false},
                      rng);
  const Shape in{1, 1, 8, 8};
  const int64_t conv1 = 2 * 8 * 8 * 9;
  const int64_t pool = 2 * 4 * 4 * 4;
  const int64_t conv2 = 4 * 4 * 4 * 2 * 9;
  EXPECT_EQ(seq.macs(in), conv1 + pool + conv2);
}

// -------------------------------------------------------------- SGD/LR -----

TEST(SGD, PlainStepMovesAgainstGradient) {
  Rng rng(33);
  Tensor w = Tensor::from({1.0f});
  Tensor g = Tensor::from({0.5f});
  std::vector<ParamRef> params{{"w", &w, &g, false}};
  SGD sgd(0.1, /*momentum=*/0.0, /*weight_decay=*/0.0);
  sgd.step(params);
  EXPECT_NEAR(w[0], 1.0f - 0.1f * 0.5f, 1e-6f);
}

TEST(SGD, MomentumAccumulates) {
  Tensor w = Tensor::from({0.0f});
  Tensor g = Tensor::from({1.0f});
  std::vector<ParamRef> params{{"w", &w, &g, false}};
  SGD sgd(0.1, 0.9, 0.0);
  sgd.step(params);  // v = -0.1, w = -0.1
  sgd.step(params);  // v = -0.19, w = -0.29
  EXPECT_NEAR(w[0], -0.29f, 1e-5f);
}

TEST(SGD, WeightDecayOnlyWhereFlagged) {
  Tensor w1 = Tensor::from({1.0f}), g1 = Tensor::from({0.0f});
  Tensor w2 = Tensor::from({1.0f}), g2 = Tensor::from({0.0f});
  std::vector<ParamRef> params{{"a", &w1, &g1, true}, {"b", &w2, &g2, false}};
  SGD sgd(0.1, 0.0, 0.5);
  sgd.step(params);
  EXPECT_NEAR(w1[0], 1.0f - 0.1f * 0.5f, 1e-6f);
  EXPECT_FLOAT_EQ(w2[0], 1.0f);
}

TEST(SGD, VelocityResetsWhenShapeChanges) {
  Tensor w = Tensor::from({0.0f, 0.0f});
  Tensor g = Tensor::from({1.0f, 1.0f});
  std::vector<ParamRef> params{{"w", &w, &g, false}};
  SGD sgd(0.1, 0.9, 0.0);
  sgd.step(params);
  // Simulate pruning: same tensor object, new shape.
  w = Tensor::from({0.0f});
  g = Tensor::from({1.0f});
  sgd.step(params);  // must not crash; velocity reinitialized
  EXPECT_NEAR(w[0], -0.1f, 1e-6f);
}

TEST(StepLR, DropsEveryStep) {
  StepLR lr(0.1, 100, 0.1);
  EXPECT_DOUBLE_EQ(lr.lr_at(0), 0.1);
  EXPECT_DOUBLE_EQ(lr.lr_at(99), 0.1);
  EXPECT_NEAR(lr.lr_at(100), 0.01, 1e-12);
  EXPECT_NEAR(lr.lr_at(250), 0.001, 1e-12);
}

// ---------------------------------------------------------- Serialization --

TEST(Serialize, RoundTripsPlainStack) {
  Rng rng(34);
  Sequential seq;
  seq.emplace<Conv2d>(3, 4, Conv2d::Options{.kernel = 3, .stride = 1, .pad = 1,
                                            .bias = true},
                      rng);
  seq.emplace<BatchNorm2d>(4);
  seq.emplace<ReLU>();
  seq.emplace<MaxPool2d>(2);
  seq.emplace<GlobalAvgPool2d>();
  seq.emplace<Flatten>();
  seq.emplace<Dense>(4, 10, rng);

  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  save_model(ss, seq);
  auto loaded = load_model(ss);

  Tensor x = Tensor::randn(Shape{2, 3, 8, 8}, rng);
  EXPECT_TRUE(allclose(seq.forward(x, false), loaded->forward(x, false),
                       0.0f, 0.0f));
}

TEST(Serialize, RoundTripsResidualBlock) {
  Rng rng(35);
  ResidualBlock block(3, 6, 2, rng);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  save_model(ss, block);
  auto loaded = load_model(ss);
  Tensor x = Tensor::randn(Shape{1, 3, 8, 8}, rng);
  EXPECT_TRUE(allclose(block.forward(x, false), loaded->forward(x, false),
                       0.0f, 0.0f));
}

TEST(Serialize, RoundTripsPrunedResidualBlock) {
  Rng rng(36);
  ResidualBlock block(4, 4, 1, rng);
  block.prune_internal({1, 3});
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  save_model(ss, block);
  auto loaded = load_model(ss);
  Tensor x = Tensor::randn(Shape{1, 4, 6, 6}, rng);
  EXPECT_TRUE(allclose(block.forward(x, false), loaded->forward(x, false),
                       0.0f, 0.0f));
}

TEST(Serialize, RejectsGarbage) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ss << "not a model";
  EXPECT_THROW(load_model(ss), std::runtime_error);
}

TEST(Serialize, SerializedSizeMatchesStream) {
  Rng rng(37);
  Sequential seq;
  seq.emplace<Dense>(8, 4, rng);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  save_model(ss, seq);
  EXPECT_EQ(serialized_size(seq), static_cast<int64_t>(ss.str().size()));
}

// ------------------------------------------------------------------ init ---

TEST(Init, KaimingVarianceMatchesFanIn) {
  Rng rng(38);
  Tensor w(Shape{20000});
  kaiming_normal(w, 50, rng);
  double var = 0.0;
  for (int64_t i = 0; i < w.numel(); ++i) var += w[i] * w[i];
  var /= static_cast<double>(w.numel());
  EXPECT_NEAR(var, 2.0 / 50.0, 0.005);
}

TEST(Init, XavierBounds) {
  Rng rng(39);
  Tensor w(Shape{1000});
  xavier_uniform(w, 10, 10, rng);
  const float a = std::sqrt(6.0f / 20.0f);
  EXPECT_GE(w.min(), -a);
  EXPECT_LE(w.max(), a);
}

}  // namespace
}  // namespace tbnet::nn
