// Int8 quantization suite: microkernel tier parity against the scalar
// reference, driver-vs-naive integer GEMM bit identity, pool-size and
// batch invariance of the quantized layers, end-to-end engine accuracy
// (top-1 agreement + bounded logits error vs the f32 engine over the model
// zoo on synthetic CIFAR), the ~4x TA-image shrink, and format-v3
// serialization round-trips.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>
#include <vector>

#include "data/synthetic_cifar.h"
#include "models/model_zoo.h"
#include "models/trainer.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/quant.h"
#include "nn/sequential.h"
#include "nn/serialize.h"
#include "runtime/deployed.h"
#include "tensor/execution_context.h"
#include "tensor/pack.h"
#include "tensor/rng.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"
#include "tensor/threadpool.h"

namespace tbnet {
namespace {

// ------------------------------------------------------------ helpers ----

/// Packs a row-major u8 B matrix [k, n] into one grouped panel per 16-column
/// strip, mirroring the producer layout contract (pack.h).
std::vector<uint8_t> pack_b_panels_u8(const std::vector<uint8_t>& b, int64_t k,
                                      int64_t n) {
  const int64_t kg = (std::max<int64_t>(k, 1) + simd::kKG - 1) / simd::kKG;
  const int64_t npan = (n + simd::kNR - 1) / simd::kNR;
  std::vector<uint8_t> panels(
      static_cast<size_t>(npan * kg * simd::kNR * simd::kKG), 0);
  for (int64_t jp = 0; jp < npan; ++jp) {
    uint8_t* panel = panels.data() + jp * kg * simd::kNR * simd::kKG;
    for (int64_t p = 0; p < k; ++p) {
      for (int64_t j = 0; j < std::min<int64_t>(simd::kNR, n - jp * simd::kNR);
           ++j) {
        panel[(p / simd::kKG) * simd::kNR * simd::kKG + j * simd::kKG +
              p % simd::kKG] = b[static_cast<size_t>(p * n + jp * simd::kNR + j)];
      }
    }
  }
  return panels;
}

Tensor stack_images(const data::SyntheticCifar& ds, int64_t first,
                    int64_t count) {
  const Shape img = ds.image_shape();
  Tensor batch(Shape{count, img.dim(0), img.dim(1), img.dim(2)});
  const int64_t stride = img.numel();
  for (int64_t i = 0; i < count; ++i) {
    const data::Sample s = ds.get(first + i);
    std::memcpy(batch.data() + i * stride, s.image.data(),
                static_cast<size_t>(stride) * sizeof(float));
  }
  return batch;
}

models::ModelConfig zoo_cfg(models::Family family, int depth, uint64_t seed,
                            double width_mult = 0.125) {
  models::ModelConfig cfg;
  cfg.family = family;
  cfg.depth = depth;
  cfg.classes = 10;
  cfg.width_mult = width_mult;
  cfg.seed = seed;
  return cfg;
}

// ---------------------------------------------------------- quantizers ----

TEST(ActQuant, RangeAlwaysContainsZeroAndPostReluGetsZeroZp) {
  // Post-ReLU range: zero point 0, so padding and true zeros are exact.
  const nn::ActQuant relu = nn::act_quant_from_range(0.0f, 6.35f);
  EXPECT_EQ(relu.zero_point, 0);
  EXPECT_NEAR(relu.scale, 6.35f / 127.0f, 1e-6f);
  // Signed range: zp interior, both ends representable.
  const nn::ActQuant both = nn::act_quant_from_range(-1.0f, 1.0f);
  EXPECT_GT(both.zero_point, 0);
  EXPECT_LT(both.zero_point, 127);
  EXPECT_EQ(simd::quantize_u7(0.0f, 1.0f / both.scale, both.zero_point),
            static_cast<uint8_t>(both.zero_point));
  // All-negative range is extended to include 0 (padding must be exact).
  const nn::ActQuant neg = nn::act_quant_from_range(-2.0f, -1.0f);
  EXPECT_EQ(simd::quantize_u7(0.0f, 1.0f / neg.scale, neg.zero_point),
            static_cast<uint8_t>(neg.zero_point));
  // Degenerate range: identity-ish quantizer, never a zero/negative scale.
  const nn::ActQuant flat = nn::act_quant_from_range(0.0f, 0.0f);
  EXPECT_GT(flat.scale, 0.0f);
}

TEST(ActQuant, WeightQuantizationRoundTripsWithinHalfStep) {
  Rng rng(21);
  const int64_t out = 9, k = 37;
  Tensor w = Tensor::randn(Shape{out, k}, rng);
  const nn::QuantizedWeights qw =
      nn::quantize_weights(w.data(), out, k, nn::ActQuant{});
  ASSERT_EQ(qw.q.size(), static_cast<size_t>(out * k));
  for (int64_t o = 0; o < out; ++o) {
    int32_t sum = 0;
    for (int64_t i = 0; i < k; ++i) {
      const int8_t q = qw.q[static_cast<size_t>(o * k + i)];
      sum += q;
      EXPECT_GE(q, -127);
      EXPECT_LE(q, 127);
      EXPECT_NEAR(static_cast<float>(q) * qw.scale[static_cast<size_t>(o)],
                  w[o * k + i], 0.5f * qw.scale[static_cast<size_t>(o)] + 1e-7f);
    }
    EXPECT_EQ(sum, qw.qsum[static_cast<size_t>(o)]);
  }
}

// ------------------------------------------------------------- kernels ----

/// The dispatched int8 tier must match the scalar reference BIT-for-bit on
/// every tile shape, including ragged edges — this is the exactness contract
/// (u7 x s8 never saturates pmaddubsw) that makes the quantized path
/// deterministic across ISAs.
TEST(Int8Kernel, DispatchMatchesScalarReferenceBitwise) {
  Rng rng(31);
  for (const int64_t k : {1, 3, 4, 7, 64, 129}) {
    const int64_t kg = (k + simd::kKG - 1) / simd::kKG;
    std::vector<int8_t> a(static_cast<size_t>(kg * simd::kMR * simd::kKG), 0);
    std::vector<uint8_t> b(static_cast<size_t>(kg * simd::kNR * simd::kKG), 0);
    // Fill only the real k taps; padding stays zero as the pack contract
    // requires.
    for (int64_t p = 0; p < k; ++p) {
      for (int i = 0; i < simd::kMR; ++i) {
        a[static_cast<size_t>((p / 4) * simd::kMR * 4 + i * 4 + p % 4)] =
            static_cast<int8_t>(static_cast<int64_t>(rng.next_u64() % 255) -
                                127);
      }
      for (int j = 0; j < simd::kNR; ++j) {
        b[static_cast<size_t>((p / 4) * simd::kNR * 4 + j * 4 + p % 4)] =
            static_cast<uint8_t>(rng.next_u64() % 128);
      }
    }
    std::vector<float> scale(simd::kMR), shift(simd::kMR);
    for (int i = 0; i < simd::kMR; ++i) {
      scale[static_cast<size_t>(i)] = 0.001f + 0.01f * static_cast<float>(i);
      shift[static_cast<size_t>(i)] = 0.2f - 0.1f * static_cast<float>(i);
    }
    for (const auto act : {simd::Act::kNone, simd::Act::kReLU}) {
      const simd::QuantEpilogue ep{scale.data(), shift.data(), act};
      for (int mr = 1; mr <= simd::kMR; ++mr) {
        for (const int nr : {1, 5, simd::kNR}) {
          std::vector<float> want(static_cast<size_t>(simd::kMR * simd::kNR),
                                  -1e30f);
          std::vector<float> got = want;
          simd::micro_kernel_i8_reference()(kg, a.data(), b.data(),
                                            want.data(), simd::kNR, mr, nr, ep);
          simd::micro_kernel_i8()(kg, a.data(), b.data(), got.data(),
                                  simd::kNR, mr, nr, ep);
          for (size_t i = 0; i < want.size(); ++i) {
            ASSERT_EQ(got[i], want[i])
                << "k=" << k << " mr=" << mr << " nr=" << nr << " idx=" << i;
          }
        }
      }
    }
  }
}

/// The dispatched bulk group quantizer must produce the same 64 panel bytes
/// as per-element quantize_u7 — producers switch between them at tile edges,
/// so a tier mismatch would silently split one panel between two rounding
/// behaviors.
TEST(Int8Kernel, GroupQuantizerMatchesScalarBitwise) {
  Rng rng(33);
  const simd::QuantizeU7GroupFn qgroup = simd::quantize_u7_group();
  for (const int32_t zp : {0, 37, 127}) {
    for (const float scale : {0.05f, 0.8f}) {
      const float inv = 1.0f / scale;
      alignas(simd::kAlign) float rows[simd::kKG][simd::kNR];
      for (auto& row : rows) {
        for (float& v : row) {
          // Spread across both clamp edges and the interior, ties included.
          v = 8.0f * (static_cast<float>(rng.next_u64() % 2001) / 1000.0f -
                      1.0f);
        }
      }
      rows[0][0] = 0.0f;  // padding value: must land exactly on zp
      uint8_t got[simd::kKG * simd::kNR];
      qgroup(rows[0], rows[1], rows[2], rows[3], got, inv, zp);
      for (int j = 0; j < simd::kNR; ++j) {
        for (int t = 0; t < simd::kKG; ++t) {
          ASSERT_EQ(got[j * simd::kKG + t],
                    simd::quantize_u7(rows[t][j], inv, zp))
              << "zp=" << zp << " scale=" << scale << " j=" << j
              << " t=" << t;
        }
      }
    }
  }
}

/// Pack + driver + kernel against a from-scratch integer GEMM: the i32 dot
/// product must be exact and the epilogue a single fmaf per element.
TEST(Int8Kernel, DriverMatchesNaiveIntegerGemmBitwise) {
  Rng rng(32);
  ExecutionContext ctx;
  for (const auto [m, n, k] :
       {std::tuple<int64_t, int64_t, int64_t>{1, 1, 3},
        {7, 18, 20},
        {24, 33, 130}}) {
    std::vector<int8_t> a(static_cast<size_t>(m * k));
    std::vector<uint8_t> b(static_cast<size_t>(k * n));
    for (auto& v : a) {
      v = static_cast<int8_t>(static_cast<int64_t>(rng.next_u64() % 255) - 127);
    }
    for (auto& v : b) v = static_cast<uint8_t>(rng.next_u64() % 128);
    std::vector<float> scale(static_cast<size_t>(m)), shift(scale);
    for (int64_t i = 0; i < m; ++i) {
      scale[static_cast<size_t>(i)] = 0.002f + 0.0001f * static_cast<float>(i);
      shift[static_cast<size_t>(i)] = 0.1f * static_cast<float>(i % 5 - 2);
    }
    std::vector<float> want(static_cast<size_t>(m * n));
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        int32_t acc = 0;
        for (int64_t p = 0; p < k; ++p) {
          acc += static_cast<int32_t>(a[static_cast<size_t>(i * k + p)]) *
                 static_cast<int32_t>(b[static_cast<size_t>(p * n + j)]);
        }
        want[static_cast<size_t>(i * n + j)] = simd::apply_act(
            std::fmaf(static_cast<float>(acc), scale[static_cast<size_t>(i)],
                      shift[static_cast<size_t>(i)]),
            simd::Act::kReLU);
      }
    }
    std::vector<int8_t> apack(
        static_cast<size_t>(packdetail::packed_a_i8_bytes(m, k)));
    packdetail::pack_a_i8(m, k, a.data(), k, apack.data());
    const std::vector<uint8_t> panels = pack_b_panels_u8(b, k, n);
    const int64_t panel_bytes = packdetail::panel_b_i8_bytes(k);
    std::vector<float> got(static_cast<size_t>(m * n), -1e30f);
    packdetail::run_packed_i8_producer(
        ctx, m, n, k, apack.data(),
        [&](int64_t kk, int64_t kc, int64_t j0, int nr, uint8_t* panel) {
          ASSERT_EQ(kk, 0);
          ASSERT_EQ(kc, k);
          ASSERT_GT(nr, 0);
          std::memcpy(panel,
                      panels.data() + (j0 / simd::kNR) * panel_bytes,
                      static_cast<size_t>(panel_bytes));
        },
        got.data(), n,
        simd::QuantEpilogue{scale.data(), shift.data(), simd::Act::kReLU});
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "m=" << m << " n=" << n << " idx=" << i;
    }
  }
}

// -------------------------------------------------------------- layers ----

/// Quantized conv: close to f32 (half-ulp-of-int8 error bars), and the bits
/// must not depend on the pool size, the batch that surrounded an image, or
/// whether the weight panels were pre-packed (prepare_inference) or packed
/// per call.
TEST(QuantizedLayers, ConvCloseToF32AndPoolAndBatchInvariant) {
  Rng rng(41);
  nn::Conv2d conv(8, 12, {.kernel = 3, .stride = 1, .pad = 1}, rng);
  const Tensor x = Tensor::randn(Shape{3, 8, 10, 9}, rng);
  ExecutionContext ctx;
  const Tensor want = conv.forward(ctx, x, false);

  nn::Conv2d q = conv;
  int count = 0;
  nn::quantize_for_inference(q, ctx, x, &count);
  EXPECT_EQ(count, 1);
  ASSERT_TRUE(q.quantized());
  const Tensor got = q.forward(ctx, x, false);
  ASSERT_EQ(got.shape(), want.shape());
  // Error bound: per-tap quantization error is half a step of each operand;
  // with k = 72 taps over randn data the worst observed error is ~0.10
  // (activation step here is ~4/127 ~ 0.03), so 0.12 gives headroom without
  // letting a scaling bug through.
  for (int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_NEAR(got[i], want[i], 0.12f) << "at " << i;
  }

  // Pool-size bit invariance.
  for (const int threads : {1, 4}) {
    ThreadPool pool(threads);
    ExecutionContext tctx;
    tctx.set_pool(&pool);
    const Tensor t = q.forward(tctx, x, false);
    for (int64_t i = 0; i < t.numel(); ++i) {
      ASSERT_EQ(t[i], got[i]) << "threads=" << threads << " at " << i;
    }
  }
  // Batch invariance: image 1 alone == image 1 in the batch of 3.
  Tensor one(Shape{1, 8, 10, 9});
  std::memcpy(one.data(), x.data() + one.numel(),
              static_cast<size_t>(one.numel()) * sizeof(float));
  const Tensor alone = q.forward(ctx, one, false);
  const int64_t plane = got.numel() / 3;
  for (int64_t i = 0; i < plane; ++i) {
    ASSERT_EQ(alone[i], got[plane + i]) << "at " << i;
  }
  // Pre-packed panels change nothing.
  nn::Conv2d prepped = q;
  ExecutionContext pctx;
  prepped.prepare_inference(pctx);
  const Tensor pre = prepped.forward(pctx, x, false);
  for (int64_t i = 0; i < pre.numel(); ++i) {
    ASSERT_EQ(pre[i], got[i]) << "at " << i;
  }
}

TEST(QuantizedLayers, DenseQuantizesWideHeadsOnlyAndStaysBatchInvariant) {
  Rng rng(42);
  ExecutionContext ctx;
  const Tensor x = Tensor::randn(Shape{5, 40}, rng);
  // Narrow head: left f32 by the eligibility rule.
  nn::Dense narrow(40, 10, rng);
  int count = -1;
  nn::quantize_for_inference(narrow, ctx, x, &count);
  EXPECT_EQ(count, 0);
  EXPECT_FALSE(narrow.quantized());
  // Wide head: quantized, close to f32, batch-invariant.
  nn::Dense wide(40, 32, rng);
  const Tensor want = wide.forward(ctx, x, false);
  nn::quantize_for_inference(wide, ctx, x, &count);
  EXPECT_EQ(count, 1);
  ASSERT_TRUE(wide.quantized());
  const Tensor got = wide.forward(ctx, x, false);
  for (int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_NEAR(got[i], want[i], 0.12f) << "at " << i;
  }
  Tensor row(Shape{1, 40});
  std::memcpy(row.data(), x.data() + 2 * 40, 40 * sizeof(float));
  const Tensor alone = wide.forward(ctx, row, false);
  for (int64_t i = 0; i < 32; ++i) {
    ASSERT_EQ(alone[i], got[2 * 32 + i]) << "at " << i;
  }
}

// ------------------------------------------------------- serialization ----

TEST(QuantSerialization, FormatV3RoundTripsBitIdentically) {
  Rng rng(51);
  nn::Sequential seq;
  seq.emplace<nn::Conv2d>(
      3, 18, nn::Conv2d::Options{.kernel = 3, .stride = 1, .pad = 1}, rng);
  seq.emplace<nn::ReLU>();
  seq.emplace<nn::Conv2d>(
      18, 16,
      nn::Conv2d::Options{.kernel = 1, .stride = 1, .pad = 0, .bias = false},
      rng);
  ExecutionContext ctx;
  const Tensor calib = Tensor::randn(Shape{4, 3, 8, 8}, rng);
  int count = 0;
  nn::quantize_for_inference(seq, ctx, calib, &count);
  EXPECT_EQ(count, 2);
  const int64_t f32_size = [&] {
    nn::Sequential plain;
    Rng r2(51);
    plain.emplace<nn::Conv2d>(
        3, 18, nn::Conv2d::Options{.kernel = 3, .stride = 1, .pad = 1}, r2);
    plain.emplace<nn::ReLU>();
    plain.emplace<nn::Conv2d>(
        18, 16,
        nn::Conv2d::Options{.kernel = 1, .stride = 1, .pad = 0, .bias = false},
        r2);
    return nn::serialized_size(plain);
  }();
  // The quantized stream ships int8 weight bytes: materially smaller.
  EXPECT_LT(nn::serialized_size(seq), (f32_size * 2) / 5);

  std::ostringstream os(std::ios::binary);
  nn::save_model(os, seq);
  std::istringstream is(os.str(), std::ios::binary);
  const auto loaded = nn::load_model(is);
  auto* lseq = dynamic_cast<nn::Sequential*>(loaded.get());
  ASSERT_NE(lseq, nullptr);
  auto* lconv = dynamic_cast<nn::Conv2d*>(&lseq->layer(0));
  ASSERT_NE(lconv, nullptr);
  ASSERT_TRUE(lconv->quantized());
  EXPECT_EQ(lconv->quant().q, dynamic_cast<nn::Conv2d&>(seq.layer(0)).quant().q);
  // The quantized forward consumes only (q, scale, act, qsum), all of which
  // round-trip exactly — the loaded model's bits must match.
  const Tensor want = seq.forward(ctx, calib, false);
  const Tensor got = loaded->forward(ctx, calib, false);
  ASSERT_EQ(got.shape(), want.shape());
  for (int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "at " << i;
  }
}

// ------------------------------------------------------------- engines ----

/// End-to-end acceptance across the model zoo: the quantized engine must
/// agree with a briefly trained f32 engine on >= 99% of top-1 predictions
/// over synthetic CIFAR, with bounded logit error. Training matters here:
/// random-init victims produce near-tie logits whose argmax flips under any
/// rounding, so agreement on them measures tie-breaking luck rather than
/// quantization quality.
TEST(QuantizedEngine, ZooTopOneAgreementAndLogitError) {
  struct Case {
    models::Family family;
    int depth;
  };
  const Case cases[] = {{models::Family::kVgg, 11},
                        {models::Family::kResNet, 20},
                        {models::Family::kMobileNet, 4}};
  auto [train, test] = data::SyntheticCifar::make_split(10, 128, 132, 77);
  const Tensor calib = stack_images(test, 0, 16);
  const int64_t eval_n = 100;
  const Tensor eval = stack_images(test, 16, eval_n);
  for (const Case& c : cases) {
    const auto cfg = zoo_cfg(c.family, c.depth, 61);
    nn::Sequential victim = models::build_victim(cfg);
    models::TrainConfig vt;
    vt.epochs = 2;
    vt.batch_size = 32;
    vt.augment = false;
    models::train_classifier(victim, train, test, vt);
    core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
    tee::SecureWorld world;
    tee::TeeContext ctx(world);
    runtime::DeployedTBNet f32(tb, ctx, "quant-test-f32",
                               {.max_batch = eval_n});
    runtime::DeployedTBNet q(tb, ctx, "quant-test-int8",
                             {.max_batch = eval_n, .calibration = calib});
    const Tensor lf = f32.infer_batch(eval);
    const Tensor lq = q.infer_batch(eval);
    ASSERT_EQ(lf.shape(), lq.shape());
    float logit_mae = 0.0f, logit_amax = 0.0f;
    for (int64_t i = 0; i < lf.numel(); ++i) {
      logit_mae = std::max(logit_mae, std::fabs(lq[i] - lf[i]));
      logit_amax = std::max(logit_amax, std::fabs(lf[i]));
    }
    EXPECT_LT(logit_mae, 0.05f + 0.1f * logit_amax) << cfg.name();
    int64_t agree = 0;
    for (int64_t i = 0; i < eval_n; ++i) {
      const float* rf = lf.data() + i * cfg.classes;
      const float* rq = lq.data() + i * cfg.classes;
      const auto amax = [&](const float* r) {
        int64_t best = 0;
        for (int64_t k = 1; k < cfg.classes; ++k) {
          if (r[k] > r[best]) best = k;
        }
        return best;
      };
      agree += amax(rf) == amax(rq) ? 1 : 0;
    }
    EXPECT_GE(agree * 100, eval_n * 99)
        << cfg.name() << ": " << agree << "/" << eval_n << " top-1 agreement";
  }
}

/// TA-image shrink acceptance: the int8 deployment must serialize to <= 35%
/// of the f32 folded image on ResNet and MobileNet. Measured at widths where
/// weights dominate the stream: per-tensor metadata, biases, and MobileNet's
/// f32 depthwise taps are fixed costs that scale linearly in channel count
/// while quantizable conv weights scale quadratically, so the 0.125-width
/// accuracy models sit above the asymptotic ~26% (ResNet) / ~34% (MobileNet,
/// bounded below by its f32 depthwise share) ratios this asserts on.
TEST(QuantizedEngine, TaImageShrinksOnWeightDominatedZooModels) {
  if (!simd::fast_kernels_enabled()) {
    GTEST_SKIP() << "deterministic mode skips BN folding, so the stream "
                    "carries unquantizable BN params the shipping (folded) "
                    "image does not; the shrink criterion targets the latter";
  }
  struct Case {
    models::Family family;
    int depth;
    double width;
  };
  const Case cases[] = {{models::Family::kResNet, 20, 0.5},
                        {models::Family::kMobileNet, 4, 1.0}};
  data::SyntheticCifar::Options dopt;
  dopt.samples = 8;
  dopt.seed = 77;
  const data::SyntheticCifar ds(dopt);
  const Tensor calib = stack_images(ds, 0, 8);
  for (const Case& c : cases) {
    const auto cfg = zoo_cfg(c.family, c.depth, 61, c.width);
    nn::Sequential victim = models::build_victim(cfg);
    core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
    tee::SecureWorld world;
    tee::TeeContext ctx(world);
    runtime::DeployedTBNet f32(tb, ctx, "quant-image-f32", {.max_batch = 8});
    runtime::DeployedTBNet q(tb, ctx, "quant-image-int8",
                             {.max_batch = 8, .calibration = calib});
    EXPECT_LE(q.ta_image_bytes() * 100, f32.ta_image_bytes() * 35)
        << cfg.name() << ": quantized TA image " << q.ta_image_bytes()
        << " vs f32 " << f32.ta_image_bytes();
  }
}

/// The quantized engine's bits must not depend on the serving pool size —
/// the determinism contract extends through the whole deployed path (REE
/// stages + TA), in fast AND deterministic mode (where the scalar int8
/// reference consumes the same panels).
TEST(QuantizedEngine, DeployedBitsInvariantAcrossPoolSizes) {
  const auto cfg = zoo_cfg(models::Family::kVgg, 11, 62);
  nn::Sequential victim = models::build_victim(cfg);
  core::TwoBranchModel tb = models::build_two_branch(victim, cfg);
  data::SyntheticCifar::Options dopt;
  dopt.samples = 24;
  dopt.seed = 78;
  const data::SyntheticCifar ds(dopt);
  const Tensor calib = stack_images(ds, 0, 8);
  const Tensor batch = stack_images(ds, 8, 6);
  Tensor base;
  for (const int threads : {1, 4}) {
    ThreadPool pool(threads);
    tee::SecureWorld world;
    tee::TeeContext ctx(world);
    runtime::DeployedTBNet engine(tb, ctx, "quant-pool-test",
                                  {.max_batch = 8, .calibration = calib});
    // Both worlds' contexts shard on the global pool unless overridden; the
    // engine owns its contexts, so steer via the global-pool override.
    ThreadPool::set_global_for_testing(&pool);
    const Tensor logits = engine.infer_batch(batch);
    ThreadPool::set_global_for_testing(nullptr);
    if (base.empty()) {
      base = logits;
      continue;
    }
    ASSERT_EQ(logits.shape(), base.shape());
    for (int64_t i = 0; i < logits.numel(); ++i) {
      ASSERT_EQ(logits[i], base[i]) << "threads=" << threads << " at " << i;
    }
  }
}

}  // namespace
}  // namespace tbnet
