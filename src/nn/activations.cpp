#include "nn/activations.h"

#include <cmath>
#include <stdexcept>

namespace tbnet::nn {

Tensor ReLU::forward(ExecutionContext&, const Tensor& input, bool train) {
  Tensor out = input;
  if (train) {
    mask_.assign(static_cast<size_t>(input.numel()), 0);
    cached_shape_ = input.shape();
  }
  for (int64_t i = 0; i < out.numel(); ++i) {
    if (out[i] > 0.0f) {
      if (train) mask_[static_cast<size_t>(i)] = 1;
    } else {
      out[i] = 0.0f;
    }
  }
  return out;
}

Tensor ReLU::backward(ExecutionContext&, const Tensor& grad_output) {
  if (mask_.empty() || grad_output.shape() != cached_shape_) {
    throw std::logic_error("ReLU::backward without matching forward(train)");
  }
  Tensor grad = grad_output;
  for (int64_t i = 0; i < grad.numel(); ++i) {
    if (!mask_[static_cast<size_t>(i)]) grad[i] = 0.0f;
  }
  return grad;
}

std::unique_ptr<Layer> ReLU::clone() const {
  return std::make_unique<ReLU>();
}

LeakyReLU::LeakyReLU(float alpha) : alpha_(alpha) {
  if (alpha < 0.0f || alpha >= 1.0f) {
    throw std::invalid_argument("LeakyReLU: alpha must be in [0, 1)");
  }
}

Tensor LeakyReLU::forward(ExecutionContext&, const Tensor& input, bool train) {
  Tensor out = input;
  if (train) {
    mask_.assign(static_cast<size_t>(input.numel()), 0);
    cached_shape_ = input.shape();
  }
  for (int64_t i = 0; i < out.numel(); ++i) {
    if (out[i] > 0.0f) {
      if (train) mask_[static_cast<size_t>(i)] = 1;
    } else {
      out[i] *= alpha_;
    }
  }
  return out;
}

Tensor LeakyReLU::backward(ExecutionContext&, const Tensor& grad_output) {
  if (mask_.empty() || grad_output.shape() != cached_shape_) {
    throw std::logic_error("LeakyReLU::backward without forward(train)");
  }
  Tensor grad = grad_output;
  for (int64_t i = 0; i < grad.numel(); ++i) {
    if (!mask_[static_cast<size_t>(i)]) grad[i] *= alpha_;
  }
  return grad;
}

std::unique_ptr<Layer> LeakyReLU::clone() const {
  return std::make_unique<LeakyReLU>(alpha_);
}

Tensor Tanh::forward(ExecutionContext&, const Tensor& input, bool train) {
  Tensor out = input;
  for (int64_t i = 0; i < out.numel(); ++i) out[i] = std::tanh(out[i]);
  if (train) cached_output_ = out;
  return out;
}

Tensor Tanh::backward(ExecutionContext&, const Tensor& grad_output) {
  if (cached_output_.empty() ||
      grad_output.shape() != cached_output_.shape()) {
    throw std::logic_error("Tanh::backward without forward(train)");
  }
  Tensor grad = grad_output;
  for (int64_t i = 0; i < grad.numel(); ++i) {
    const float y = cached_output_[i];
    grad[i] *= 1.0f - y * y;
  }
  return grad;
}

std::unique_ptr<Layer> Tanh::clone() const { return std::make_unique<Tanh>(); }

Tensor Sigmoid::forward(ExecutionContext&, const Tensor& input, bool train) {
  Tensor out = input;
  for (int64_t i = 0; i < out.numel(); ++i) {
    out[i] = 1.0f / (1.0f + std::exp(-out[i]));
  }
  if (train) cached_output_ = out;
  return out;
}

Tensor Sigmoid::backward(ExecutionContext&, const Tensor& grad_output) {
  if (cached_output_.empty() ||
      grad_output.shape() != cached_output_.shape()) {
    throw std::logic_error("Sigmoid::backward without forward(train)");
  }
  Tensor grad = grad_output;
  for (int64_t i = 0; i < grad.numel(); ++i) {
    const float y = cached_output_[i];
    grad[i] *= y * (1.0f - y);
  }
  return grad;
}

std::unique_ptr<Layer> Sigmoid::clone() const {
  return std::make_unique<Sigmoid>();
}

}  // namespace tbnet::nn
