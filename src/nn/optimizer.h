#pragma once
// SGD with momentum + weight decay, and a step learning-rate schedule —
// the training recipe used by the paper (SGD, lr 0.1, momentum 0.9,
// weight decay 1e-4, lr /10 every 100 epochs).

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "nn/layer.h"

namespace tbnet::nn {

/// Stochastic gradient descent with classical momentum.
///
/// Velocity buffers are keyed by parameter address and reset automatically
/// when a parameter's shape changes (which happens after channel pruning).
class SGD {
 public:
  SGD(double lr, double momentum = 0.9, double weight_decay = 1e-4)
      : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {}

  double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }
  double momentum() const { return momentum_; }
  double weight_decay() const { return weight_decay_; }

  /// One update: v <- mu*v - lr*(g + wd*w);  w <- w + v.
  /// Weight decay is skipped for params flagged apply_weight_decay=false
  /// (BatchNorm scale/shift — decaying gamma would fight the L1 sparsity
  /// signal TBNet relies on).
  void step(const std::vector<ParamRef>& params);

  /// Drops all velocity state (e.g. after structural pruning).
  void reset_state() { velocity_.clear(); }

 private:
  double lr_, momentum_, weight_decay_;
  std::unordered_map<const Tensor*, Tensor> velocity_;
};

/// Adam (Kingma & Ba) — the optimizer a realistic attacker reaches for when
/// fine-tuning a stolen branch; also handy for distillation in the
/// substitute-layer attack. Same shape-change-resets-state behavior as SGD.
class Adam {
 public:
  Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
       double eps = 1e-8, double weight_decay = 0.0)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
        weight_decay_(weight_decay) {}

  double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }

  void step(const std::vector<ParamRef>& params);
  void reset_state() { moments_.clear(); }

 private:
  struct Moments {
    Tensor m, v;
    int64_t t = 0;
  };
  double lr_, beta1_, beta2_, eps_, weight_decay_;
  std::unordered_map<const Tensor*, Moments> moments_;
};

/// Step decay: lr(epoch) = base * gamma^(epoch / step_size).
class StepLR {
 public:
  StepLR(double base_lr, int step_size, double gamma = 0.1)
      : base_lr_(base_lr), step_size_(step_size), gamma_(gamma) {}

  double lr_at(int epoch) const;

 private:
  double base_lr_;
  int step_size_;
  double gamma_;
};

/// Cosine annealing: lr(epoch) decays from base to `min_lr` over `total`
/// epochs along a half cosine.
class CosineLR {
 public:
  CosineLR(double base_lr, int total_epochs, double min_lr = 0.0)
      : base_lr_(base_lr), total_(total_epochs), min_lr_(min_lr) {}

  double lr_at(int epoch) const;

 private:
  double base_lr_;
  int total_;
  double min_lr_;
};

}  // namespace tbnet::nn
