#include "nn/sequential.h"

namespace tbnet::nn {

Sequential::Sequential(const Sequential& other) {
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
}

Sequential& Sequential::operator=(const Sequential& other) {
  if (this == &other) return *this;
  layers_.clear();
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
  return *this;
}

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(ExecutionContext& ctx, const Tensor& input,
                           bool train) {
  Tensor x = input;
  for (auto& l : layers_) x = l->forward(ctx, x, train);
  return x;
}

Tensor Sequential::backward(ExecutionContext& ctx, const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(ctx, g);
  }
  return g;
}

std::vector<ParamRef> Sequential::params() {
  std::vector<ParamRef> all;
  for (size_t i = 0; i < layers_.size(); ++i) {
    for (ParamRef p : layers_[i]->params()) {
      p.name = std::to_string(i) + "." + layers_[i]->kind() + "." + p.name;
      all.push_back(p);
    }
  }
  return all;
}

std::unique_ptr<Layer> Sequential::clone() const {
  auto copy = std::make_unique<Sequential>();
  for (const auto& l : layers_) copy->add(l->clone());
  return copy;
}

Shape Sequential::out_shape(const Shape& in) const {
  Shape s = in;
  for (const auto& l : layers_) s = l->out_shape(s);
  return s;
}

int64_t Sequential::macs(const Shape& in) const {
  Shape s = in;
  int64_t total = 0;
  for (const auto& l : layers_) {
    total += l->macs(s);
    s = l->out_shape(s);
  }
  return total;
}

int64_t Sequential::param_bytes() const {
  int64_t total = 0;
  for (const auto& l : layers_) total += l->param_bytes();
  return total;
}

}  // namespace tbnet::nn
