#include "nn/sequential.h"

#include <stdexcept>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/depthwise.h"
#include "nn/fuse.h"

namespace tbnet::nn {

Sequential::Sequential(const Sequential& other) {
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
}

Sequential& Sequential::operator=(const Sequential& other) {
  if (this == &other) return *this;
  layers_.clear();
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
  plan_.clear();
  prepared_ = false;
  return *this;
}

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  plan_.clear();
  prepared_ = false;
  return *this;
}

void Sequential::remove_layer(int i) {
  if (i < 0 || i >= size()) {
    throw std::out_of_range("Sequential::remove_layer: index out of range");
  }
  layers_.erase(layers_.begin() + i);
  plan_.clear();
  prepared_ = false;
}

void Sequential::prepare_inference(ExecutionContext& ctx) {
  plan_.clear();
  if (simd::fast_kernels_enabled()) {
    const int n = size();
    int i = 0;
    while (i < n) {
      FusedStep step;
      step.layer = i;
      int j = i + 1;
      if (auto* conv = dynamic_cast<Conv2d*>(layers_[static_cast<size_t>(i)].get())) {
        if (j < n) {
          if (auto* bn = dynamic_cast<BatchNorm2d*>(
                  layers_[static_cast<size_t>(j)].get());
              bn != nullptr && bn->channels() == conv->out_channels()) {
            step.bn = j;
            ++j;
          }
        }
        if (j < n && dynamic_cast<ReLU*>(layers_[static_cast<size_t>(j)].get())) {
          step.act = simd::Act::kReLU;
          ++j;
        }
      } else if (auto* dw = dynamic_cast<DepthwiseConv2d*>(
                     layers_[static_cast<size_t>(i)].get())) {
        if (j < n) {
          if (auto* bn = dynamic_cast<BatchNorm2d*>(
                  layers_[static_cast<size_t>(j)].get());
              bn != nullptr && bn->channels() == dw->channels()) {
            step.bn = j;
            ++j;
          }
        }
        if (j < n && dynamic_cast<ReLU*>(layers_[static_cast<size_t>(j)].get())) {
          step.act = simd::Act::kReLU;
          ++j;
        }
        // MobileNet tail: a following 1x1 stride-1 pad-0 Conv2d over the
        // same channels joins the step (with its own BN/ReLU), so the
        // depthwise output feeds the pointwise GEMM's panel producer instead
        // of materializing. Wider-than-kMaxSimdKernel filters run the scalar
        // reference kernel and are left unfused.
        if (j < n && dw->options().kernel <= DepthwiseConv2d::kMaxSimdKernel) {
          if (auto* pwc = dynamic_cast<Conv2d*>(
                  layers_[static_cast<size_t>(j)].get());
              pwc != nullptr && pwc->options().kernel == 1 &&
              pwc->options().stride == 1 && pwc->options().pad == 0 &&
              pwc->in_channels() == dw->channels()) {
            step.pw = j;
            ++j;
            if (j < n) {
              if (auto* bn = dynamic_cast<BatchNorm2d*>(
                      layers_[static_cast<size_t>(j)].get());
                  bn != nullptr && bn->channels() == pwc->out_channels()) {
                step.pw_bn = j;
                ++j;
              }
            }
            if (j < n &&
                dynamic_cast<ReLU*>(layers_[static_cast<size_t>(j)].get())) {
              step.pw_act = simd::Act::kReLU;
              ++j;
            }
          }
        }
      } else if (dynamic_cast<Dense*>(layers_[static_cast<size_t>(i)].get())) {
        if (j < n && dynamic_cast<ReLU*>(layers_[static_cast<size_t>(j)].get())) {
          step.act = simd::Act::kReLU;
          ++j;
        }
      }
      step.consumed = j - i;
      plan_.push_back(step);
      i = j;
    }
    // Hoist the BN scale/shift composition out of the per-call path: the
    // model is frozen once prepared, so the composed vectors (including the
    // head layer's own bias) are computed once here and reused by every
    // fused eval.
    for (FusedStep& step : plan_) {
      if (step.bn >= 0) {
        auto* bn = static_cast<BatchNorm2d*>(
            layers_[static_cast<size_t>(step.bn)].get());
        const int64_t c = bn->channels();
        step.scale.resize(static_cast<size_t>(c));
        step.shift.resize(static_cast<size_t>(c));
        bn->inference_scale_shift(step.scale.data(), step.shift.data());
        Layer* head = layers_[static_cast<size_t>(step.layer)].get();
        const float* bias = nullptr;
        if (auto* conv = dynamic_cast<Conv2d*>(head)) {
          if (conv->has_bias()) bias = conv->bias().data();
        } else if (auto* dw = dynamic_cast<DepthwiseConv2d*>(head)) {
          if (dw->has_bias()) bias = dw->bias().data();
        }
        if (bias != nullptr) {
          // y = (head(x) + b) * s + t  =>  shift = b * s + t
          for (int64_t o = 0; o < c; ++o) {
            step.shift[static_cast<size_t>(o)] += bias[o] * step.scale[static_cast<size_t>(o)];
          }
        }
      }
      if (step.pw_bn >= 0) {
        // Same composition for the pointwise half of a dw→pw step.
        auto* bn = static_cast<BatchNorm2d*>(
            layers_[static_cast<size_t>(step.pw_bn)].get());
        const int64_t c = bn->channels();
        step.pw_scale.resize(static_cast<size_t>(c));
        step.pw_shift.resize(static_cast<size_t>(c));
        bn->inference_scale_shift(step.pw_scale.data(), step.pw_shift.data());
        auto* pwc = static_cast<Conv2d*>(
            layers_[static_cast<size_t>(step.pw)].get());
        if (pwc->has_bias()) {
          const float* bias = pwc->bias().data();
          for (int64_t o = 0; o < c; ++o) {
            step.pw_shift[static_cast<size_t>(o)] +=
                bias[o] * step.pw_scale[static_cast<size_t>(o)];
          }
        }
      }
    }
    prepared_ = true;
  }
  for (auto& l : layers_) l->prepare_inference(ctx);
}

Tensor Sequential::forward_prepared(ExecutionContext& ctx,
                                    const Tensor& input) {
  Tensor x = input;
  for (const FusedStep& step : plan_) {
    Layer* layer = layers_[static_cast<size_t>(step.layer)].get();
    if (step.consumed == 1) {
      // Eval forward already runs any pre-packed fast path a single layer
      // has; only multi-layer steps need the fused entry points below.
      x = layer->forward(ctx, x, false);
      continue;
    }
    // The composed BN affine was cached at prepare time (step.scale/shift);
    // without a BN the head's own bias rides the shift slot unscaled.
    const float* scale = step.bn >= 0 ? step.scale.data() : nullptr;
    const float* shift = step.bn >= 0 ? step.shift.data() : nullptr;
    if (auto* conv = dynamic_cast<Conv2d*>(layer)) {
      if (shift == nullptr && conv->has_bias()) shift = conv->bias().data();
      x = conv->forward_fused(ctx, x, scale, shift, step.act);
    } else if (auto* dw = dynamic_cast<DepthwiseConv2d*>(layer)) {
      if (shift == nullptr && dw->has_bias()) shift = dw->bias().data();
      if (step.pw >= 0) {
        // dw→pw step: the depthwise rows feed the pointwise GEMM's B-panel
        // producer; both layers' BN/activation ride their own epilogues.
        auto* pwc = static_cast<Conv2d*>(
            layers_[static_cast<size_t>(step.pw)].get());
        const float* pw_scale =
            step.pw_bn >= 0 ? step.pw_scale.data() : nullptr;
        const float* pw_shift = step.pw_bn >= 0 ? step.pw_shift.data()
                                : pwc->has_bias() ? pwc->bias().data()
                                                  : nullptr;
        // Shape-dependent dispatch: producer fusion loses on shallow wide
        // maps (fuse.h), so those run the two fused layers back to back —
        // bit-identical either way, the gate is latency-only. The plan
        // cannot decide this: input spatial dims are unknown at prepare.
        const Shape dw_os = dw->out_shape(x.shape());
        if (fuse_dw_pw_profitable(dw->channels(),
                                  dw_os.dim(2) * dw_os.dim(3))) {
          GemmEpilogue ep;
          ep.row_scale = pw_scale;
          ep.row_shift = pw_shift;
          ep.act = step.pw_act;
          x = forward_depthwise_pointwise(ctx, x, *dw, scale, shift, step.act,
                                          *pwc, ep);
        } else {
          const Tensor mid = dw->forward_fused(ctx, x, scale, shift, step.act);
          x = pwc->forward_fused(ctx, mid, pw_scale, pw_shift, step.pw_act);
        }
      } else {
        x = dw->forward_fused(ctx, x, scale, shift, step.act);
      }
    } else {
      // The planner only folds layers behind Conv2d/DepthwiseConv2d/Dense,
      // so a multi-layer step's head is one of the three.
      x = static_cast<Dense*>(layer)->forward_fused(ctx, x, step.act);
    }
  }
  return x;
}

Tensor Sequential::forward(ExecutionContext& ctx, const Tensor& input,
                           bool train) {
  if (!train && prepared_ && simd::fast_kernels_enabled()) {
    return forward_prepared(ctx, input);
  }
  Tensor x = input;
  for (auto& l : layers_) x = l->forward(ctx, x, train);
  return x;
}

Tensor Sequential::backward(ExecutionContext& ctx, const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(ctx, g);
  }
  return g;
}

std::vector<ParamRef> Sequential::params() {
  std::vector<ParamRef> all;
  for (size_t i = 0; i < layers_.size(); ++i) {
    for (ParamRef p : layers_[i]->params()) {
      p.name = std::to_string(i) + "." + layers_[i]->kind() + "." + p.name;
      all.push_back(p);
    }
  }
  return all;
}

std::unique_ptr<Layer> Sequential::clone() const {
  auto copy = std::make_unique<Sequential>();
  for (const auto& l : layers_) copy->add(l->clone());
  return copy;
}

Shape Sequential::out_shape(const Shape& in) const {
  Shape s = in;
  for (const auto& l : layers_) s = l->out_shape(s);
  return s;
}

int64_t Sequential::macs(const Shape& in) const {
  Shape s = in;
  int64_t total = 0;
  for (const auto& l : layers_) {
    total += l->macs(s);
    s = l->out_shape(s);
  }
  return total;
}

int64_t Sequential::param_bytes() const {
  int64_t total = 0;
  for (const auto& l : layers_) total += l->param_bytes();
  return total;
}

}  // namespace tbnet::nn
