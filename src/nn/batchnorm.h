#pragma once
// BatchNorm2d — per-channel batch normalization over NCHW activations.
//
// The BN scale parameters (gamma) carry double duty in TBNet: besides
// normalizing activations they are the channel-importance signal driving the
// iterative two-branch pruning (network-slimming style), and the L1 sparsity
// penalty in Eq. 1 of the paper is applied to them.

#include <cstdint>
#include <vector>

#include "nn/layer.h"

namespace tbnet::nn {

class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(int64_t channels, float eps = 1e-5f,
                       float momentum = 0.1f);

  using Layer::forward;
  using Layer::backward;
  Tensor forward(ExecutionContext& ctx, const Tensor& input,
                 bool train) override;
  Tensor backward(ExecutionContext& ctx, const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::string kind() const override { return "BatchNorm2d"; }
  std::unique_ptr<Layer> clone() const override;
  Shape out_shape(const Shape& in) const override;
  int64_t macs(const Shape& in) const override;
  int64_t param_bytes() const override;

  int64_t channels() const { return channels_; }
  float eps() const { return eps_; }
  float momentum() const { return momentum_; }

  Tensor& gamma() { return gamma_; }
  const Tensor& gamma() const { return gamma_; }
  Tensor& gamma_grad() { return gamma_grad_; }
  Tensor& beta() { return beta_; }
  const Tensor& beta() const { return beta_; }
  Tensor& running_mean() { return running_mean_; }
  const Tensor& running_mean() const { return running_mean_; }
  Tensor& running_var() { return running_var_; }
  const Tensor& running_var() const { return running_var_; }

  /// Keeps only the listed channels (gamma/beta/running stats).
  void select_channels(const std::vector<int64_t>& keep);

  /// Writes eval-mode BN as an affine map: y = x * scale[c] + shift[c] with
  /// scale = gamma / sqrt(running_var + eps), shift = beta - mean * scale.
  /// This is what the fused conv epilogue and deploy-time folding consume.
  void inference_scale_shift(float* scale, float* shift) const;

 private:
  int64_t channels_;
  float eps_, momentum_;
  Tensor gamma_, gamma_grad_;
  Tensor beta_, beta_grad_;
  Tensor running_mean_, running_var_;

  // Forward cache (train mode).
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
};

}  // namespace tbnet::nn
