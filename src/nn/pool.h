#pragma once
// Spatial pooling layers (NCHW).

#include <cstdint>
#include <vector>

#include "nn/layer.h"

namespace tbnet::nn {

/// Max pooling with square window; caches argmax indices for backward.
class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(int64_t kernel = 2, int64_t stride = 0 /*=kernel*/);

  using Layer::forward;
  using Layer::backward;
  Tensor forward(ExecutionContext& ctx, const Tensor& input,
                 bool train) override;
  Tensor backward(ExecutionContext& ctx, const Tensor& grad_output) override;
  std::string kind() const override { return "MaxPool2d"; }
  std::unique_ptr<Layer> clone() const override;
  Shape out_shape(const Shape& in) const override;
  int64_t macs(const Shape& in) const override;

  int64_t kernel() const { return kernel_; }
  int64_t stride() const { return stride_; }

 private:
  int64_t kernel_, stride_;
  std::vector<int64_t> argmax_;  ///< flat input index per output element
  Shape cached_in_shape_;
};

/// Average pooling with square window.
class AvgPool2d : public Layer {
 public:
  explicit AvgPool2d(int64_t kernel = 2, int64_t stride = 0 /*=kernel*/);

  using Layer::forward;
  using Layer::backward;
  Tensor forward(ExecutionContext& ctx, const Tensor& input,
                 bool train) override;
  Tensor backward(ExecutionContext& ctx, const Tensor& grad_output) override;
  std::string kind() const override { return "AvgPool2d"; }
  std::unique_ptr<Layer> clone() const override;
  Shape out_shape(const Shape& in) const override;
  int64_t macs(const Shape& in) const override;

  int64_t kernel() const { return kernel_; }
  int64_t stride() const { return stride_; }

 private:
  int64_t kernel_, stride_;
  Shape cached_in_shape_;
};

/// Global average pooling: [N,C,H,W] -> [N,C,1,1].
class GlobalAvgPool2d : public Layer {
 public:
  using Layer::forward;
  using Layer::backward;
  Tensor forward(ExecutionContext& ctx, const Tensor& input,
                 bool train) override;
  Tensor backward(ExecutionContext& ctx, const Tensor& grad_output) override;
  std::string kind() const override { return "GlobalAvgPool2d"; }
  std::unique_ptr<Layer> clone() const override;
  Shape out_shape(const Shape& in) const override;
  int64_t macs(const Shape& in) const override { return in.numel(); }

 private:
  Shape cached_in_shape_;
};

}  // namespace tbnet::nn
