#include "nn/layer.h"

namespace tbnet::nn {

void Layer::zero_grad() {
  for (ParamRef& p : params()) {
    if (p.grad != nullptr) p.grad->zero();
  }
}

int64_t Layer::param_bytes() const {
  int64_t bytes = 0;
  // params() is non-const by design (it hands out mutable pointers); cast is
  // confined here.
  for (const ParamRef& p : const_cast<Layer*>(this)->params()) {
    bytes += p.value->numel() * static_cast<int64_t>(sizeof(float));
  }
  return bytes;
}

}  // namespace tbnet::nn
