#pragma once
// 2-D convolution layer (NCHW), im2col + GEMM implementation.

#include <cstdint>
#include <vector>

#include "nn/layer.h"
#include "nn/quant.h"
#include "tensor/im2col.h"
#include "tensor/pack.h"
#include "tensor/rng.h"

namespace tbnet::nn {

/// Conv2d with square or rectangular kernels, zero padding, optional bias.
///
/// Weight layout: [out_c, in_c, kh, kw]. Channel-pruning support
/// (select_out_channels / select_in_channels) is what the TBNet iterative
/// two-branch pruner uses to physically shrink the network.
class Conv2d : public Layer {
 public:
  struct Options {
    int64_t kernel = 3;
    int64_t stride = 1;
    int64_t pad = 1;
    bool bias = false;  ///< usually false: BatchNorm follows.
  };

  Conv2d(int64_t in_c, int64_t out_c, const Options& opt, Rng& rng);

  using Layer::forward;
  using Layer::backward;
  Tensor forward(ExecutionContext& ctx, const Tensor& input,
                 bool train) override;

  /// Eval-only fused forward: applies y = act(conv(x) * scale[c] + shift[c])
  /// per output channel in the GEMM epilogue (one pass over the feature map).
  /// `scale`/`shift` must already compose this layer's own bias if any —
  /// Sequential's fusion plan and ResidualBlock build them from the adjacent
  /// BatchNorm. nullptr scale/shift mean identity.
  Tensor forward_fused(ExecutionContext& ctx, const Tensor& input,
                       const float* scale, const float* shift, simd::Act act);

  Tensor backward(ExecutionContext& ctx, const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::string kind() const override { return "Conv2d"; }
  std::unique_ptr<Layer> clone() const override;
  Shape out_shape(const Shape& in) const override;
  int64_t macs(const Shape& in) const override;

  int64_t in_channels() const { return in_c_; }
  int64_t out_channels() const { return out_c_; }
  const Options& options() const { return opt_; }

  Tensor& weight() { return weight_; }
  const Tensor& weight() const { return weight_; }
  Tensor& bias() { return bias_; }
  const Tensor& bias() const { return bias_; }
  bool has_bias() const { return opt_.bias; }

  /// The cached microkernel panels (empty until prepare_inference). External
  /// drivers that loop the packed GEMM themselves — the fused
  /// depthwise→pointwise path feeds B panels straight from the depthwise row
  /// kernel — read the panels through this instead of re-packing per call.
  const PackedGemm& packed_weight() const { return packed_; }

  /// Keeps only the listed output channels (rows of the weight); used when
  /// this layer's own BN channels are pruned.
  void select_out_channels(const std::vector<int64_t>& keep);

  /// Keeps only the listed input channels; used when the *previous* layer's
  /// channels are pruned.
  void select_in_channels(const std::vector<int64_t>& keep);

  /// Deploy-time BN folding: scales each output-channel's weights by
  /// scale[o] and adds shift[o] into the bias (creating the bias if absent),
  /// so a following eval-mode BatchNorm can be removed. Drops any attached
  /// quantization (the weights changed; re-run quantize_for_inference).
  void fuse_scale_shift(const float* scale, const float* shift);

  /// Attaches int8 quantized weights (nn/quant.h). Every eval forward —
  /// plain, fused, and the dw→pw producer path — then runs the int8 engine;
  /// the f32 weight_ is kept untouched as the training / reference fallback.
  /// Clears the packed caches (they no longer match the serving path).
  void set_quantized(QuantizedWeights qw);
  bool quantized() const { return !quant_.empty(); }
  const QuantizedWeights& quant() const { return quant_; }

  /// Raw int8 A panels (packdetail::pack_a_i8 layout) once prepared, nullptr
  /// otherwise — the int8 analogue of packed_weight() for external drivers
  /// like the fused dw→pw path.
  const int8_t* packed_quant() const {
    return qpacked_.empty() ? nullptr : qpacked_.data();
  }

  /// Packs the weight into microkernel panels (cached; see Layer). A
  /// quantized layer packs int8 A panels instead of f32 ones — and does so
  /// even under TBNET_DETERMINISTIC=1, since the int8 path's scalar
  /// reference kernel consumes the same panel layout.
  void prepare_inference(ExecutionContext& ctx) override;

 private:
  Conv2dGeom geom_for(const Shape& in) const;

  Tensor forward_impl(ExecutionContext& ctx, const Tensor& input, bool train,
                      const GemmEpilogue& ep);
  Tensor forward_int8(ExecutionContext& ctx, const Tensor& input,
                      const GemmEpilogue& ep);

  int64_t in_c_, out_c_;
  Options opt_;
  Tensor weight_, weight_grad_;
  Tensor bias_, bias_grad_;
  Tensor cached_input_;  ///< set by forward(train=true)
  PackedGemm packed_;    ///< weight panels; empty until prepare_inference
  QuantizedWeights quant_;      ///< int8 weights; empty = f32 serving
  std::vector<int8_t> qpacked_; ///< int8 A panels; empty until prepare
};

}  // namespace tbnet::nn
