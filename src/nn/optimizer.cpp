#include "nn/optimizer.h"

#include <cmath>

namespace tbnet::nn {

void SGD::step(const std::vector<ParamRef>& params) {
  for (const ParamRef& p : params) {
    Tensor& w = *p.value;
    const Tensor& g = *p.grad;
    Tensor& v = velocity_[p.value];
    if (v.shape() != w.shape()) v = Tensor(w.shape());  // (re)init to zero
    const float wd =
        p.apply_weight_decay ? static_cast<float>(weight_decay_) : 0.0f;
    const float lr = static_cast<float>(lr_);
    const float mu = static_cast<float>(momentum_);
    for (int64_t i = 0; i < w.numel(); ++i) {
      const float grad = g[i] + wd * w[i];
      v[i] = mu * v[i] - lr * grad;
      w[i] += v[i];
    }
  }
}

void Adam::step(const std::vector<ParamRef>& params) {
  for (const ParamRef& p : params) {
    Tensor& w = *p.value;
    const Tensor& g = *p.grad;
    Moments& mo = moments_[p.value];
    if (mo.m.shape() != w.shape()) {
      mo.m = Tensor(w.shape());
      mo.v = Tensor(w.shape());
      mo.t = 0;
    }
    ++mo.t;
    const float b1 = static_cast<float>(beta1_);
    const float b2 = static_cast<float>(beta2_);
    const float wd = p.apply_weight_decay ? static_cast<float>(weight_decay_)
                                          : 0.0f;
    const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(mo.t));
    const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(mo.t));
    const float step_size =
        static_cast<float>(lr_ * std::sqrt(bias2) / bias1);
    for (int64_t i = 0; i < w.numel(); ++i) {
      const float grad = g[i] + wd * w[i];
      mo.m[i] = b1 * mo.m[i] + (1.0f - b1) * grad;
      mo.v[i] = b2 * mo.v[i] + (1.0f - b2) * grad * grad;
      w[i] -= step_size * mo.m[i] /
              (std::sqrt(mo.v[i]) + static_cast<float>(eps_));
    }
  }
}

double StepLR::lr_at(int epoch) const {
  const int drops = (step_size_ > 0) ? epoch / step_size_ : 0;
  return base_lr_ * std::pow(gamma_, drops);
}

double CosineLR::lr_at(int epoch) const {
  if (total_ <= 1) return min_lr_;
  const double t = std::min(1.0, static_cast<double>(epoch) /
                                     static_cast<double>(total_ - 1));
  return min_lr_ + 0.5 * (base_lr_ - min_lr_) * (1.0 + std::cos(M_PI * t));
}

}  // namespace tbnet::nn
