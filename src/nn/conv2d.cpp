#include "nn/conv2d.h"

#include <cmath>
#include <stdexcept>

#include "nn/init.h"
#include "tensor/gemm.h"

namespace tbnet::nn {

Conv2d::Conv2d(int64_t in_c, int64_t out_c, const Options& opt, Rng& rng)
    : in_c_(in_c),
      out_c_(out_c),
      opt_(opt),
      weight_(Shape{out_c, in_c, opt.kernel, opt.kernel}),
      weight_grad_(Shape{out_c, in_c, opt.kernel, opt.kernel}) {
  if (in_c <= 0 || out_c <= 0) {
    throw std::invalid_argument("Conv2d: channel counts must be positive");
  }
  kaiming_normal(weight_, in_c * opt.kernel * opt.kernel, rng);
  if (opt_.bias) {
    bias_ = Tensor(Shape{out_c});
    bias_grad_ = Tensor(Shape{out_c});
  }
}

Conv2dGeom Conv2d::geom_for(const Shape& in) const {
  if (in.ndim() != 4) {
    throw std::invalid_argument("Conv2d: expected NCHW input, got " + in.str());
  }
  if (in.dim(1) != in_c_) {
    throw std::invalid_argument("Conv2d: input has " + std::to_string(in.dim(1)) +
                                " channels, layer expects " +
                                std::to_string(in_c_));
  }
  Conv2dGeom g;
  g.in_c = in_c_;
  g.in_h = in.dim(2);
  g.in_w = in.dim(3);
  g.kernel_h = g.kernel_w = opt_.kernel;
  g.stride_h = g.stride_w = opt_.stride;
  g.pad_h = g.pad_w = opt_.pad;
  return g;
}

Shape Conv2d::out_shape(const Shape& in) const {
  const Conv2dGeom g = geom_for(in);
  return Shape{in.dim(0), out_c_, g.out_h(), g.out_w()};
}

int64_t Conv2d::macs(const Shape& in) const {
  const Conv2dGeom g = geom_for(in);
  return in.dim(0) * out_c_ * g.col_cols() * g.col_rows();
}

Tensor Conv2d::forward(ExecutionContext& ctx, const Tensor& input,
                       bool train) {
  GemmEpilogue ep;
  if (opt_.bias) ep.row_shift = bias_.data();
  return forward_impl(ctx, input, train, ep);
}

Tensor Conv2d::forward_fused(ExecutionContext& ctx, const Tensor& input,
                             const float* scale, const float* shift,
                             simd::Act act) {
  GemmEpilogue ep;
  ep.row_scale = scale;
  ep.row_shift = shift;
  ep.act = act;
  return forward_impl(ctx, input, /*train=*/false, ep);
}

Tensor Conv2d::forward_impl(ExecutionContext& ctx, const Tensor& input,
                            bool train, const GemmEpilogue& ep) {
  if (!train && !quant_.empty()) {
    // Quantized serving path — taken ahead of the fast-kernels gate because
    // the int8 engine has its own deterministic scalar reference tier.
    return forward_int8(ctx, input, ep);
  }
  const Conv2dGeom g = geom_for(input.shape());
  const int64_t n = input.dim(0);
  const int64_t rows = g.col_rows(), cols = g.col_cols();
  Tensor out(out_shape(input.shape()));
  const int64_t in_stride = in_c_ * g.in_h * g.in_w;
  const int64_t out_stride = out_c_ * cols;
  // A 1x1 stride-1 unpadded conv's column matrix IS the CHW image (row c of
  // the column matrix = channel plane c), so both paths consume the input
  // tensor in place with zero lowering work.
  const bool direct_1x1 =
      opt_.kernel == 1 && opt_.stride == 1 && opt_.pad == 0;
  ArenaScope scope(ctx.arena());
  if (simd::fast_kernels_enabled()) {
    // Packed path: the weight packs once per call (or never, when
    // prepare_inference cached it), and the column matrix never
    // materializes — the driver pulls [kc x nr] B panels straight from the
    // image (im2col_pack_panel), so the conv's big scratch is gone and its
    // arena footprint is the A pack plus per-chunk panel slabs.
    // Bias/BN/activation ride the GEMM epilogue — one pass over the output.
    // The per-image loop keeps batched output bit-identical to per-image
    // calls.
    const float* apack = nullptr;
    if (!train && !packed_.empty()) {
      apack = packed_.data();
    } else {
      float* ap = ctx.arena().alloc(packdetail::packed_a_floats(out_c_, rows));
      packdetail::pack_a_rowmajor(ctx.pool(), out_c_, rows, weight_.data(),
                                  rows, ap, ctx.intra_op_width());
      apack = ap;
    }
    for (int64_t i = 0; i < n; ++i) {
      const float* img = input.data() + i * in_stride;
      float* dst = out.data() + i * out_stride;
      if (direct_1x1) {
        packdetail::run_packed_b_rowmajor(ctx.pool(), out_c_, cols, rows, 1.0f,
                                          apack, img, cols, 0.0f, dst, cols,
                                          ep, ctx.intra_op_width());
      } else {
        packdetail::run_packed_b_producer(
            ctx, out_c_, cols, rows, 1.0f, apack,
            [&g, img](int64_t kk, int64_t kc, int64_t j0, int nr,
                      float* panel) {
              im2col_pack_panel(g, img, kk, kc, j0, nr, simd::kNR, panel);
            },
            0.0f, dst, cols, ep);
      }
    }
  } else {
    // Reference fallback (TBNET_DETERMINISTIC=1): materialize the column
    // matrix into the arena and run the scalar kernels — the shape every
    // fused-lowering result is tested against. The 1x1 direct case feeds
    // the image straight through (same bytes the column matrix would hold).
    float* colbuf = direct_1x1 ? nullptr : ctx.arena().alloc(rows * cols);
    for (int64_t i = 0; i < n; ++i) {
      const float* img = input.data() + i * in_stride;
      const float* bmat = img;
      if (!direct_1x1) {
        im2col(ctx, g, img, colbuf);
        bmat = colbuf;
      }
      gemm_nn(ctx, out_c_, cols, rows, 1.0f, weight_.data(), bmat, 0.0f,
              out.data() + i * out_stride);
      apply_epilogue_reference(out_c_, cols, out.data() + i * out_stride, cols,
                               ep);
    }
  }
  if (train) cached_input_ = input;
  return out;
}

Tensor Conv2d::forward_int8(ExecutionContext& ctx, const Tensor& input,
                            const GemmEpilogue& ep) {
  if (ep.col_scale != nullptr || ep.col_shift != nullptr) {
    throw std::logic_error(
        "Conv2d: the int8 path composes per-row epilogues only");
  }
  const Conv2dGeom g = geom_for(input.shape());
  const int64_t n = input.dim(0);
  const int64_t rows = g.col_rows(), cols = g.col_cols();
  Tensor out(out_shape(input.shape()));
  const int64_t in_stride = in_c_ * g.in_h * g.in_w;
  const int64_t out_stride = out_c_ * cols;
  const bool direct_1x1 =
      opt_.kernel == 1 && opt_.stride == 1 && opt_.pad == 0;
  ArenaScope scope(ctx.arena());
  // Compose the dequantization affine once per call, O(out_c): the kernel
  // applies y = act(acc * S[o] + T[o]) per element, where T folds the
  // zero-point correction and the caller's bias / BN shift (nn/quant.h).
  float* S = ctx.arena().alloc(out_c_);
  float* T = ctx.arena().alloc(out_c_);
  compose_quant_epilogue(quant_, ep.row_scale, ep.row_shift, out_c_, S, T);
  const simd::QuantEpilogue qep{S, T, ep.act};
  const int8_t* apack;
  if (!qpacked_.empty()) {
    apack = qpacked_.data();
  } else {
    const int64_t bytes = packdetail::packed_a_i8_bytes(out_c_, rows);
    int8_t* ap = reinterpret_cast<int8_t*>(ctx.arena().alloc((bytes + 3) / 4));
    packdetail::pack_a_i8(out_c_, rows, quant_.q.data(), rows, ap);
    apack = ap;
  }
  const float inv = 1.0f / quant_.act.scale;
  const int32_t zp = quant_.act.zero_point;
  for (int64_t i = 0; i < n; ++i) {
    const float* img = input.data() + i * in_stride;
    float* dst = out.data() + i * out_stride;
    if (direct_1x1) {
      // B row p of a 1x1 stride-1 unpadded conv IS channel plane p, so the
      // producer quantizes straight from the image rows into the grouped
      // panel layout — no lowering at all.
      packdetail::run_packed_i8_producer(
          ctx, out_c_, cols, rows, apack,
          [img, cols, inv, zp](int64_t kk, int64_t kc, int64_t j0, int nr,
                               uint8_t* panel) {
            const simd::QuantizeU7GroupFn qgroup = simd::quantize_u7_group();
            const int64_t kg = (kc + simd::kKG - 1) / simd::kKG;
            for (int64_t gi = 0; gi < kg; ++gi) {
              uint8_t* grp = panel + gi * simd::kNR * simd::kKG;
              const float* row = img + (kk + gi * simd::kKG) * cols + j0;
              if (gi * simd::kKG + simd::kKG <= kc && nr == simd::kNR) {
                qgroup(row, row + cols, row + 2 * cols, row + 3 * cols, grp,
                       inv, zp);
                continue;
              }
              for (int64_t j = 0; j < simd::kNR; ++j) {
                for (int64_t t = 0; t < simd::kKG; ++t) {
                  const int64_t p = gi * simd::kKG + t;
                  grp[j * simd::kKG + t] =
                      p < kc && j < nr
                          ? simd::quantize_u7(img[(kk + p) * cols + j0 + j],
                                              inv, zp)
                          : uint8_t{0};
                }
              }
            }
          },
          dst, cols, qep);
    } else {
      packdetail::run_packed_i8_producer(
          ctx, out_c_, cols, rows, apack,
          [&g, img, inv, zp](int64_t kk, int64_t kc, int64_t j0, int nr,
                             uint8_t* panel) {
            im2col_pack_panel_u8(g, img, kk, kc, j0, nr, inv, zp, panel);
          },
          dst, cols, qep);
    }
  }
  return out;
}

Tensor Conv2d::backward(ExecutionContext& ctx, const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("Conv2d::backward called before forward(train)");
  }
  const Tensor& x = cached_input_;
  const Conv2dGeom g = geom_for(x.shape());
  const int64_t n = x.dim(0);
  const int64_t rows = g.col_rows(), cols = g.col_cols();
  if (grad_output.shape() != out_shape(x.shape())) {
    throw std::invalid_argument("Conv2d::backward: grad shape mismatch");
  }

  Tensor grad_input(x.shape());
  ArenaScope scope(ctx.arena());
  float* colbuf = ctx.arena().alloc(rows * cols);
  float* dcol = ctx.arena().alloc(rows * cols);
  const int64_t in_stride = in_c_ * g.in_h * g.in_w;
  const int64_t out_stride = out_c_ * cols;

  for (int64_t i = 0; i < n; ++i) {
    const float* dy = grad_output.data() + i * out_stride;
    // dW += dy * cols^T       [out_c, rows]
    im2col(ctx, g, x.data() + i * in_stride, colbuf);
    gemm_nt(ctx, out_c_, rows, cols, 1.0f, dy, colbuf, 1.0f,
            weight_grad_.data());
    // dcols = W^T * dy        [rows, cols]
    gemm_tn(ctx, rows, cols, out_c_, 1.0f, weight_.data(), dy, 0.0f, dcol);
    col2im(g, dcol, grad_input.data() + i * in_stride);
  }
  if (opt_.bias) {
    for (int64_t i = 0; i < n; ++i) {
      const float* dy = grad_output.data() + i * out_stride;
      for (int64_t c = 0; c < out_c_; ++c) {
        float acc = 0.0f;
        for (int64_t p = 0; p < cols; ++p) acc += dy[c * cols + p];
        bias_grad_[c] += acc;
      }
    }
  }
  return grad_input;
}

std::vector<ParamRef> Conv2d::params() {
  std::vector<ParamRef> ps;
  ps.push_back({"weight", &weight_, &weight_grad_, /*decay=*/true});
  if (opt_.bias) ps.push_back({"bias", &bias_, &bias_grad_, /*decay=*/false});
  return ps;
}

std::unique_ptr<Layer> Conv2d::clone() const {
  auto copy = std::make_unique<Conv2d>(*this);
  copy->cached_input_ = Tensor();
  // Quantized weights are model state and survive the clone; the packed
  // panels are prepare-time caches and do not (PackedGemm's copy is empty
  // by design, the int8 pack is dropped here for the same reason).
  copy->qpacked_.clear();
  return copy;
}

namespace {

/// Gathers slices of `src` along dimension `dim` (rank-4 weight tensor).
Tensor gather_dim(const Tensor& src, int dim, const std::vector<int64_t>& keep) {
  const Shape& s = src.shape();
  std::vector<int64_t> dims = s.dims();
  dims[static_cast<size_t>(dim)] = static_cast<int64_t>(keep.size());
  Tensor out{Shape(dims)};
  // Treat the tensor as [outer, extent, inner].
  int64_t outer = 1, inner = 1;
  for (int i = 0; i < dim; ++i) outer *= s.dim(i);
  for (int i = dim + 1; i < s.ndim(); ++i) inner *= s.dim(i);
  const int64_t extent = s.dim(dim);
  for (int64_t o = 0; o < outer; ++o) {
    for (size_t ki = 0; ki < keep.size(); ++ki) {
      const int64_t k = keep[ki];
      if (k < 0 || k >= extent) {
        throw std::out_of_range("Conv2d channel selection index out of range");
      }
      const float* src_p = src.data() + (o * extent + k) * inner;
      float* dst_p = out.data() + (o * static_cast<int64_t>(keep.size()) +
                                   static_cast<int64_t>(ki)) *
                                      inner;
      for (int64_t j = 0; j < inner; ++j) dst_p[j] = src_p[j];
    }
  }
  return out;
}

}  // namespace

void Conv2d::fuse_scale_shift(const float* scale, const float* shift) {
  const int64_t per_out = in_c_ * opt_.kernel * opt_.kernel;
  for (int64_t o = 0; o < out_c_; ++o) {
    float* w = weight_.data() + o * per_out;
    for (int64_t j = 0; j < per_out; ++j) w[j] *= scale[o];
  }
  if (!opt_.bias) {
    opt_.bias = true;
    bias_ = Tensor(Shape{out_c_});
    bias_grad_ = Tensor(Shape{out_c_});
  }
  for (int64_t o = 0; o < out_c_; ++o) {
    bias_[o] = bias_[o] * scale[o] + shift[o];
  }
  packed_.clear();
  quant_ = QuantizedWeights();
  qpacked_.clear();
}

void Conv2d::set_quantized(QuantizedWeights qw) {
  const int64_t k = in_c_ * opt_.kernel * opt_.kernel;
  if (!qw.empty() &&
      (qw.q.size() != static_cast<size_t>(out_c_ * k) ||
       qw.scale.size() != static_cast<size_t>(out_c_) ||
       qw.qsum.size() != static_cast<size_t>(out_c_) ||
       qw.act.scale <= 0.0f)) {
    throw std::invalid_argument("Conv2d::set_quantized: shape mismatch");
  }
  quant_ = std::move(qw);
  packed_.clear();
  qpacked_.clear();
}

void Conv2d::prepare_inference(ExecutionContext& ctx) {
  if (!quant_.empty()) {
    // The int8 serving path runs in every mode (its scalar reference tier IS
    // the deterministic pin), so the panels pack unconditionally; the f32
    // pack would be dead weight.
    const int64_t k = in_c_ * opt_.kernel * opt_.kernel;
    qpacked_.resize(
        static_cast<size_t>(packdetail::packed_a_i8_bytes(out_c_, k)));
    packdetail::pack_a_i8(out_c_, k, quant_.q.data(), k, qpacked_.data());
    return;
  }
  if (!simd::fast_kernels_enabled()) return;
  packed_.pack_a(out_c_, in_c_ * opt_.kernel * opt_.kernel, weight_.data(),
                 &ctx.arena());
}

void Conv2d::select_out_channels(const std::vector<int64_t>& keep) {
  if (keep.empty()) throw std::invalid_argument("Conv2d: cannot prune all output channels");
  packed_.clear();
  quant_ = QuantizedWeights();
  qpacked_.clear();
  weight_ = gather_dim(weight_, 0, keep);
  weight_grad_ = Tensor(weight_.shape());
  if (opt_.bias) {
    Tensor nb(Shape{static_cast<int64_t>(keep.size())});
    for (size_t i = 0; i < keep.size(); ++i) nb[static_cast<int64_t>(i)] = bias_[keep[i]];
    bias_ = std::move(nb);
    bias_grad_ = Tensor(bias_.shape());
  }
  out_c_ = static_cast<int64_t>(keep.size());
  cached_input_ = Tensor();
}

void Conv2d::select_in_channels(const std::vector<int64_t>& keep) {
  if (keep.empty()) throw std::invalid_argument("Conv2d: cannot prune all input channels");
  packed_.clear();
  quant_ = QuantizedWeights();
  qpacked_.clear();
  weight_ = gather_dim(weight_, 1, keep);
  weight_grad_ = Tensor(weight_.shape());
  in_c_ = static_cast<int64_t>(keep.size());
  cached_input_ = Tensor();
}

}  // namespace tbnet::nn
