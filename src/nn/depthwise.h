#pragma once
// Depthwise 2-D convolution — one k x k filter per channel.
//
// Building block of the depthwise-separable (MobileNet-style) family, which
// extends TBNet beyond the paper's VGG/ResNet evaluation: edge deployments
// overwhelmingly use separable convolutions, and the two-branch pruning
// machinery must handle their channel-coupled structure (a depthwise layer's
// input and output channels are the same set).

#include <cstdint>
#include <vector>

#include "nn/layer.h"
#include "tensor/rng.h"
#include "tensor/simd.h"

namespace tbnet::nn {

class DepthwiseConv2d : public Layer {
 public:
  struct Options {
    int64_t kernel = 3;
    int64_t stride = 1;
    int64_t pad = 1;
  };

  DepthwiseConv2d(int64_t channels, const Options& opt, Rng& rng);

  using Layer::forward;
  using Layer::backward;
  Tensor forward(ExecutionContext& ctx, const Tensor& input,
                 bool train) override;

  /// Eval-only fused forward: y = act(dw(x) * scale[c] + shift[c]) applied
  /// inside the accumulation loop — a depthwise layer is one pass already,
  /// so fusing the following BN/ReLU removes two full passes over the map.
  /// A depthwise layer has no bias of its own; nullptr means identity.
  Tensor forward_fused(ExecutionContext& ctx, const Tensor& input,
                       const float* scale, const float* shift, simd::Act act);

  Tensor backward(ExecutionContext& ctx, const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::string kind() const override { return "DepthwiseConv2d"; }
  std::unique_ptr<Layer> clone() const override;
  Shape out_shape(const Shape& in) const override;
  int64_t macs(const Shape& in) const override;

  int64_t channels() const { return channels_; }
  const Options& options() const { return opt_; }
  Tensor& weight() { return weight_; }
  const Tensor& weight() const { return weight_; }

  /// Keeps only the listed channels (input and output are the same set).
  void select_channels(const std::vector<int64_t>& keep);

 private:
  Tensor forward_impl(ExecutionContext& ctx, const Tensor& input, bool train,
                      const float* scale, const float* shift, simd::Act act);

  int64_t out_hw(int64_t in, int64_t pad, int64_t k, int64_t s) const {
    return (in + 2 * pad - k) / s + 1;
  }

  int64_t channels_;
  Options opt_;
  Tensor weight_, weight_grad_;  ///< [channels, kernel, kernel]
  Tensor cached_input_;
};

}  // namespace tbnet::nn
