#pragma once
// Depthwise 2-D convolution — one k x k filter per channel.
//
// Building block of the depthwise-separable (MobileNet-style) family, which
// extends TBNet beyond the paper's VGG/ResNet evaluation: edge deployments
// overwhelmingly use separable convolutions, and the two-branch pruning
// machinery must handle their channel-coupled structure (a depthwise layer's
// input and output channels are the same set).

#include <cstdint>
#include <vector>

#include "nn/layer.h"
#include "tensor/rng.h"
#include "tensor/simd.h"

namespace tbnet::nn {

class DepthwiseConv2d : public Layer {
 public:
  struct Options {
    int64_t kernel = 3;
    int64_t stride = 1;
    int64_t pad = 1;
    bool bias = false;  ///< usually false: BatchNorm follows.
  };

  DepthwiseConv2d(int64_t channels, const Options& opt, Rng& rng);

  using Layer::forward;
  using Layer::backward;
  Tensor forward(ExecutionContext& ctx, const Tensor& input,
                 bool train) override;

  /// Eval-only fused forward: y = act(dw(x) * scale[c] + shift[c]) applied
  /// inside the accumulation loop — a depthwise layer is one pass already,
  /// so fusing the following BN/ReLU removes two full passes over the map.
  /// `scale`/`shift` must already compose this layer's own bias if any
  /// (shift[c] = bias[c] * scale[c] + bn_shift[c]); Sequential's fusion plan
  /// builds them that way. nullptr means identity. Runs the SIMD row kernel
  /// (simd::dw_row_kernel) unless TBNET_DETERMINISTIC=1 pinned the scalar
  /// reference. Rejects Act values the kernels don't know
  /// (simd::require_known_act) instead of mis-applying them.
  Tensor forward_fused(ExecutionContext& ctx, const Tensor& input,
                       const float* scale, const float* shift, simd::Act act);

  /// The scalar per-pixel reference kernel — the exact arithmetic
  /// TBNET_DETERMINISTIC=1 selects, exported so the parity suite and
  /// bench_kernels can compare the SIMD row kernel against it in the same
  /// process regardless of mode. Eval-only: never caches the input.
  Tensor forward_reference(ExecutionContext& ctx, const Tensor& input,
                           const float* scale = nullptr,
                           const float* shift = nullptr,
                           simd::Act act = simd::Act::kNone);

  Tensor backward(ExecutionContext& ctx, const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::string kind() const override { return "DepthwiseConv2d"; }
  std::unique_ptr<Layer> clone() const override;
  Shape out_shape(const Shape& in) const override;
  int64_t macs(const Shape& in) const override;

  /// Widest kernel the SIMD path's stack-resident row-pointer array covers;
  /// wider filters (unseen in practice) run the reference loop, and the
  /// dw→pointwise fusion planner skips them.
  static constexpr int64_t kMaxSimdKernel = 16;

  int64_t channels() const { return channels_; }
  const Options& options() const { return opt_; }
  Tensor& weight() { return weight_; }
  const Tensor& weight() const { return weight_; }
  Tensor& bias() { return bias_; }
  bool has_bias() const { return opt_.bias; }

  /// Keeps only the listed channels (input and output are the same set).
  void select_channels(const std::vector<int64_t>& keep);

  /// Deploy-time BN folding: scales each channel's taps by scale[c] and adds
  /// shift[c] into the bias (creating the bias if absent), so a following
  /// eval-mode BatchNorm can be removed — the depthwise analogue of
  /// Conv2d::fuse_scale_shift, which is what lets MobileNet-style TA images
  /// ship without their depthwise BN layers.
  void fuse_scale_shift(const float* scale, const float* shift);

 private:
  Tensor forward_impl(ExecutionContext& ctx, const Tensor& input, bool train,
                      const float* scale, const float* shift, simd::Act act);
  Tensor forward_simd(ExecutionContext& ctx, const Tensor& input,
                      const float* scale, const float* shift, simd::Act act);

  int64_t out_hw(int64_t in, int64_t pad, int64_t k, int64_t s) const {
    return (in + 2 * pad - k) / s + 1;
  }

  int64_t channels_;
  Options opt_;
  Tensor weight_, weight_grad_;  ///< [channels, kernel, kernel]
  Tensor bias_, bias_grad_;      ///< [channels]; empty unless opt_.bias
  Tensor cached_input_;
};

}  // namespace tbnet::nn
