#include "nn/quant.h"

#include <algorithm>
#include <cmath>

#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/residual.h"
#include "nn/sequential.h"
#include "tensor/simd.h"

namespace tbnet::nn {

ActQuant act_quant_from_range(float lo, float hi) {
  lo = std::min(lo, 0.0f);
  hi = std::max(hi, 0.0f);
  ActQuant aq;
  if (hi <= lo || !std::isfinite(lo) || !std::isfinite(hi)) return aq;
  aq.scale = (hi - lo) / 127.0f;
  // zp maps real 0.0 onto the grid; post-ReLU ranges (lo == 0) get zp == 0.
  const int32_t zp = static_cast<int32_t>(lrintf(-lo / aq.scale));
  aq.zero_point = std::clamp(zp, 0, 127);
  return aq;
}

QuantizedWeights quantize_weights(const float* w, int64_t out, int64_t k,
                                  const ActQuant& act) {
  QuantizedWeights qw;
  qw.q.resize(static_cast<size_t>(out * k));
  qw.scale.resize(static_cast<size_t>(out));
  qw.qsum.resize(static_cast<size_t>(out));
  qw.act = act;
  for (int64_t o = 0; o < out; ++o) {
    const float* row = w + o * k;
    float amax = 0.0f;
    for (int64_t j = 0; j < k; ++j) amax = std::max(amax, std::fabs(row[j]));
    const float scale = amax > 0.0f ? amax / 127.0f : 1.0f;
    const float inv = 1.0f / scale;
    int8_t* qrow = qw.q.data() + o * k;
    int32_t sum = 0;
    for (int64_t j = 0; j < k; ++j) {
      int32_t q = static_cast<int32_t>(lrintf(row[j] * inv));
      q = std::clamp(q, -127, 127);
      qrow[j] = static_cast<int8_t>(q);
      sum += q;
    }
    qw.scale[static_cast<size_t>(o)] = scale;
    qw.qsum[static_cast<size_t>(o)] = sum;
  }
  return qw;
}

void compose_quant_epilogue(const QuantizedWeights& qw, const float* rs,
                            const float* rh, int64_t out, float* S, float* T) {
  const float as = qw.act.scale;
  const float zpf = static_cast<float>(qw.act.zero_point);
  for (int64_t o = 0; o < out; ++o) {
    const float s = qw.scale[static_cast<size_t>(o)] * as *
                    (rs != nullptr ? rs[o] : 1.0f);
    S[o] = s;
    T[o] = (rh != nullptr ? rh[o] : 0.0f) -
           zpf * static_cast<float>(qw.qsum[static_cast<size_t>(o)]) * s;
  }
}

namespace {

/// Observed min/max over a whole tensor.
void observe(const Tensor& t, float* lo, float* hi) {
  float mn = 0.0f, mx = 0.0f;
  const int64_t n = t.numel();
  if (n > 0) {
    mn = mx = t.data()[0];
    for (int64_t i = 1; i < n; ++i) {
      const float v = t.data()[i];
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
  }
  *lo = mn;
  *hi = mx;
}

/// Quantizes a Conv2d from the observed input range of `x` AFTER running its
/// f32 forward (so downstream calibration statistics stay pure f32).
Tensor walk_conv(Conv2d& conv, ExecutionContext& ctx, const Tensor& x,
                 int* count) {
  float lo, hi;
  observe(x, &lo, &hi);
  Tensor y = conv.forward(ctx, x, /*train=*/false);
  conv.set_quantized(quantize_weights(
      conv.weight().data(), conv.out_channels(),
      conv.in_channels() * conv.options().kernel * conv.options().kernel,
      act_quant_from_range(lo, hi)));
  if (count != nullptr) ++*count;
  return y;
}

Tensor walk(Layer& layer, ExecutionContext& ctx, const Tensor& x, int* count);

/// Mirrors ResidualBlock's unfused eval dataflow (conv1→bn1→relu→conv2→bn2,
/// downsample, add, relu) so both 3x3 convs and the downsample 1x1 see their
/// true calibration inputs. The BNs are NOT folded inside a block (the fused
/// eval path applies them in the epilogue), so they run here as layers.
Tensor walk_residual(ResidualBlock& rb, ExecutionContext& ctx, const Tensor& x,
                     int* count) {
  Tensor mid = walk_conv(rb.conv1(), ctx, x, count);
  mid = rb.bn1().forward(ctx, mid, /*train=*/false);
  for (int64_t i = 0; i < mid.numel(); ++i) {
    if (mid[i] < 0.0f) mid[i] = 0.0f;
  }
  Tensor main = walk_conv(rb.conv2(), ctx, mid, count);
  main = rb.bn2().forward(ctx, main, /*train=*/false);
  Tensor skip = x;
  if (rb.has_downsample()) {
    skip = walk_conv(rb.down_conv(), ctx, x, count);
    skip = rb.down_bn().forward(ctx, skip, /*train=*/false);
  }
  main.add_(skip);
  for (int64_t i = 0; i < main.numel(); ++i) {
    if (main[i] < 0.0f) main[i] = 0.0f;
  }
  return main;
}

Tensor walk(Layer& layer, ExecutionContext& ctx, const Tensor& x, int* count) {
  if (auto* seq = dynamic_cast<Sequential*>(&layer)) {
    Tensor y = x;
    for (int i = 0; i < seq->size(); ++i) {
      y = walk(seq->layer(i), ctx, y, count);
    }
    return y;
  }
  if (auto* rb = dynamic_cast<ResidualBlock*>(&layer)) {
    return walk_residual(*rb, ctx, x, count);
  }
  if (auto* conv = dynamic_cast<Conv2d*>(&layer)) {
    return walk_conv(*conv, ctx, x, count);
  }
  if (auto* dense = dynamic_cast<Dense*>(&layer)) {
    if (dense->out_features() >= simd::kNR) {
      float lo, hi;
      observe(x, &lo, &hi);
      Tensor y = dense->forward(ctx, x, /*train=*/false);
      dense->set_quantized(quantize_weights(dense->weight().data(),
                                            dense->out_features(),
                                            dense->in_features(),
                                            act_quant_from_range(lo, hi)));
      if (count != nullptr) ++*count;
      return y;
    }
  }
  return layer.forward(ctx, x, /*train=*/false);
}

}  // namespace

Tensor quantize_for_inference(Layer& root, ExecutionContext& ctx,
                              const Tensor& calib, int* count) {
  if (count != nullptr) *count = 0;
  return walk(root, ctx, calib, count);
}

}  // namespace tbnet::nn
