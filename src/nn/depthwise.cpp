#include "nn/depthwise.h"

#include <stdexcept>

#include "nn/init.h"
#include "tensor/threadpool.h"

namespace tbnet::nn {

DepthwiseConv2d::DepthwiseConv2d(int64_t channels, const Options& opt,
                                 Rng& rng)
    : channels_(channels),
      opt_(opt),
      weight_(Shape{channels, opt.kernel, opt.kernel}),
      weight_grad_(Shape{channels, opt.kernel, opt.kernel}) {
  if (channels <= 0) {
    throw std::invalid_argument("DepthwiseConv2d: channels must be positive");
  }
  kaiming_normal(weight_, opt.kernel * opt.kernel, rng);
  if (opt_.bias) {
    bias_ = Tensor(Shape{channels});
    bias_grad_ = Tensor(Shape{channels});
  }
}

Shape DepthwiseConv2d::out_shape(const Shape& in) const {
  if (in.ndim() != 4 || in.dim(1) != channels_) {
    throw std::invalid_argument("DepthwiseConv2d: bad input " + in.str());
  }
  const int64_t oh = out_hw(in.dim(2), opt_.pad, opt_.kernel, opt_.stride);
  const int64_t ow = out_hw(in.dim(3), opt_.pad, opt_.kernel, opt_.stride);
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("DepthwiseConv2d: kernel larger than input");
  }
  return Shape{in.dim(0), channels_, oh, ow};
}

int64_t DepthwiseConv2d::macs(const Shape& in) const {
  return out_shape(in).numel() * opt_.kernel * opt_.kernel;
}

Tensor DepthwiseConv2d::forward(ExecutionContext& ctx, const Tensor& input,
                                bool train) {
  // The bias rides the fused per-channel affine (scale 1, shift b[c]).
  return forward_impl(ctx, input, train, nullptr,
                      opt_.bias ? bias_.data() : nullptr, simd::Act::kNone);
}

Tensor DepthwiseConv2d::forward_fused(ExecutionContext& ctx,
                                      const Tensor& input, const float* scale,
                                      const float* shift, simd::Act act) {
  return forward_impl(ctx, input, /*train=*/false, scale, shift, act);
}

Tensor DepthwiseConv2d::forward_impl(ExecutionContext& ctx,
                                     const Tensor& input, bool train,
                                     const float* scale, const float* shift,
                                     simd::Act act) {
  // Reject unknown Act values at the boundary: the kernels dispatch on the
  // enum explicitly, so a future value must fail loudly here rather than be
  // silently clamped as ReLU deep in a hot loop.
  simd::require_known_act(act);
  Tensor out =
      simd::fast_kernels_enabled() && opt_.kernel <= kMaxSimdKernel
          ? forward_simd(ctx, input, scale, shift, act)
          : forward_reference(ctx, input, scale, shift, act);
  if (train) cached_input_ = input;
  return out;
}

Tensor DepthwiseConv2d::forward_simd(ExecutionContext& ctx,
                                     const Tensor& input, const float* scale,
                                     const float* shift, simd::Act act) {
  const Shape os = out_shape(input.shape());
  const int64_t n = input.dim(0), ih = input.dim(2), iw = input.dim(3);
  const int64_t oh = os.dim(2), ow = os.dim(3);
  const int64_t kernel = opt_.kernel, stride = opt_.stride, pad = opt_.pad;
  const simd::DwRowKernelFn dw_row = simd::dw_row_kernel();
  Tensor out(os);
  // One task per (image, channel) plane, one row-kernel call per output row.
  // Writes are disjoint and each pixel's accumulation chain is fixed by the
  // kernel contract, so the shard layout cannot change results.
  ctx.parallel_for(n * channels_, [&](int64_t p0, int64_t p1) {
    const float* rows[kMaxSimdKernel];
    for (int64_t pc = p0; pc < p1; ++pc) {
      const int64_t c = pc % channels_;
      const float* plane = input.data() + pc * ih * iw;
      const float* taps = weight_.data() + c * kernel * kernel;
      const float cscale = scale != nullptr ? scale[c] : 1.0f;
      const float cshift = shift != nullptr ? shift[c] : 0.0f;
      float* dst = out.data() + pc * oh * ow;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ky = 0; ky < kernel; ++ky) {
          const int64_t iy = oy * stride - pad + ky;
          rows[ky] = iy >= 0 && iy < ih ? plane + iy * iw : nullptr;
        }
        dw_row(rows, kernel, taps, kernel, iw, pad, stride, 0, ow, cscale,
               cshift, act, dst + oy * ow);
      }
    }
  });
  return out;
}

Tensor DepthwiseConv2d::forward_reference(ExecutionContext& ctx,
                                          const Tensor& input,
                                          const float* scale,
                                          const float* shift, simd::Act act) {
  simd::require_known_act(act);
  const Shape os = out_shape(input.shape());
  const int64_t n = input.dim(0), ih = input.dim(2), iw = input.dim(3);
  const int64_t oh = os.dim(2), ow = os.dim(3);
  Tensor out(os);
  // One task per (image, channel) plane; writes are disjoint, so the shard
  // layout cannot change results. Bit-stable across releases: this is the
  // arithmetic TBNET_DETERMINISTIC=1 pins.
  ctx.parallel_for(n * channels_, [&](int64_t p0, int64_t p1) {
    for (int64_t pc = p0; pc < p1; ++pc) {
      const int64_t c = pc % channels_;
      const float* plane = input.data() + pc * ih * iw;
      const float* k = weight_.data() + c * opt_.kernel * opt_.kernel;
      const float cscale = scale != nullptr ? scale[c] : 1.0f;
      const float cshift = shift != nullptr ? shift[c] : 0.0f;
      const bool affine = scale != nullptr || shift != nullptr;
      float* dst = out.data() + pc * oh * ow;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          float acc = 0.0f;
          for (int64_t ky = 0; ky < opt_.kernel; ++ky) {
            const int64_t iy = oy * opt_.stride - opt_.pad + ky;
            if (iy < 0 || iy >= ih) continue;
            for (int64_t kx = 0; kx < opt_.kernel; ++kx) {
              const int64_t ix = ox * opt_.stride - opt_.pad + kx;
              if (ix < 0 || ix >= iw) continue;
              acc += plane[iy * iw + ix] * k[ky * opt_.kernel + kx];
            }
          }
          if (affine) acc = acc * cscale + cshift;
          dst[oy * ow + ox] = simd::apply_act(acc, act);
        }
      }
    }
  });
  return out;
}

Tensor DepthwiseConv2d::backward(ExecutionContext& ctx,
                                 const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("DepthwiseConv2d::backward before forward(train)");
  }
  const Tensor& x = cached_input_;
  if (grad_output.shape() != out_shape(x.shape())) {
    throw std::invalid_argument("DepthwiseConv2d::backward: grad mismatch");
  }
  const int64_t n = x.dim(0), ih = x.dim(2), iw = x.dim(3);
  const int64_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  Tensor grad_input(x.shape());
  // Sharded over channels only: dk[c] (and db[c]) accumulate across the
  // batch, so the image loop must stay serial per channel to keep the
  // accumulation order (and hence the bits) identical to the serial kernel.
  ctx.parallel_for(channels_, [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      const float* k = weight_.data() + c * opt_.kernel * opt_.kernel;
      float* dk = weight_grad_.data() + c * opt_.kernel * opt_.kernel;
      // db[c] rides the same pass as dk/dx (accumulated before the g == 0
      // skip, in the identical image/pixel order).
      float db = 0.0f;
      for (int64_t i = 0; i < n; ++i) {
        const float* plane = x.data() + (i * channels_ + c) * ih * iw;
        const float* dy = grad_output.data() + (i * channels_ + c) * oh * ow;
        float* dx = grad_input.data() + (i * channels_ + c) * ih * iw;
        for (int64_t oy = 0; oy < oh; ++oy) {
          for (int64_t ox = 0; ox < ow; ++ox) {
            const float g = dy[oy * ow + ox];
            db += g;
            if (g == 0.0f) continue;
            for (int64_t ky = 0; ky < opt_.kernel; ++ky) {
              const int64_t iy = oy * opt_.stride - opt_.pad + ky;
              if (iy < 0 || iy >= ih) continue;
              for (int64_t kx = 0; kx < opt_.kernel; ++kx) {
                const int64_t ix = ox * opt_.stride - opt_.pad + kx;
                if (ix < 0 || ix >= iw) continue;
                dk[ky * opt_.kernel + kx] += g * plane[iy * iw + ix];
                dx[iy * iw + ix] += g * k[ky * opt_.kernel + kx];
              }
            }
          }
        }
      }
      if (opt_.bias) bias_grad_[c] += db;
    }
  });
  return grad_input;
}

std::vector<ParamRef> DepthwiseConv2d::params() {
  std::vector<ParamRef> ps;
  ps.push_back({"weight", &weight_, &weight_grad_, /*decay=*/true});
  if (opt_.bias) ps.push_back({"bias", &bias_, &bias_grad_, /*decay=*/false});
  return ps;
}

void DepthwiseConv2d::fuse_scale_shift(const float* scale, const float* shift) {
  const int64_t kk = opt_.kernel * opt_.kernel;
  for (int64_t c = 0; c < channels_; ++c) {
    float* w = weight_.data() + c * kk;
    for (int64_t j = 0; j < kk; ++j) w[j] *= scale[c];
  }
  if (!opt_.bias) {
    opt_.bias = true;
    bias_ = Tensor(Shape{channels_});
    bias_grad_ = Tensor(Shape{channels_});
  }
  for (int64_t c = 0; c < channels_; ++c) {
    bias_[c] = bias_[c] * scale[c] + shift[c];
  }
}

std::unique_ptr<Layer> DepthwiseConv2d::clone() const {
  auto copy = std::make_unique<DepthwiseConv2d>(*this);
  copy->cached_input_ = Tensor();
  return copy;
}

void DepthwiseConv2d::select_channels(const std::vector<int64_t>& keep) {
  if (keep.empty()) {
    throw std::invalid_argument("DepthwiseConv2d: cannot prune all channels");
  }
  const int64_t kk = opt_.kernel * opt_.kernel;
  Tensor w(Shape{static_cast<int64_t>(keep.size()), opt_.kernel, opt_.kernel});
  for (size_t i = 0; i < keep.size(); ++i) {
    const int64_t c = keep[i];
    if (c < 0 || c >= channels_) {
      throw std::out_of_range("DepthwiseConv2d::select_channels: bad index");
    }
    for (int64_t j = 0; j < kk; ++j) {
      w[static_cast<int64_t>(i) * kk + j] = weight_[c * kk + j];
    }
  }
  if (opt_.bias) {
    Tensor nb(Shape{static_cast<int64_t>(keep.size())});
    for (size_t i = 0; i < keep.size(); ++i) {
      nb[static_cast<int64_t>(i)] = bias_[keep[i]];
    }
    bias_ = std::move(nb);
    bias_grad_ = Tensor(bias_.shape());
  }
  weight_ = std::move(w);
  weight_grad_ = Tensor(weight_.shape());
  channels_ = static_cast<int64_t>(keep.size());
  cached_input_ = Tensor();
}

}  // namespace tbnet::nn
