#include "nn/depthwise.h"

#include <stdexcept>

#include "nn/init.h"

namespace tbnet::nn {

DepthwiseConv2d::DepthwiseConv2d(int64_t channels, const Options& opt,
                                 Rng& rng)
    : channels_(channels),
      opt_(opt),
      weight_(Shape{channels, opt.kernel, opt.kernel}),
      weight_grad_(Shape{channels, opt.kernel, opt.kernel}) {
  if (channels <= 0) {
    throw std::invalid_argument("DepthwiseConv2d: channels must be positive");
  }
  kaiming_normal(weight_, opt.kernel * opt.kernel, rng);
}

Shape DepthwiseConv2d::out_shape(const Shape& in) const {
  if (in.ndim() != 4 || in.dim(1) != channels_) {
    throw std::invalid_argument("DepthwiseConv2d: bad input " + in.str());
  }
  const int64_t oh = out_hw(in.dim(2), opt_.pad, opt_.kernel, opt_.stride);
  const int64_t ow = out_hw(in.dim(3), opt_.pad, opt_.kernel, opt_.stride);
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("DepthwiseConv2d: kernel larger than input");
  }
  return Shape{in.dim(0), channels_, oh, ow};
}

int64_t DepthwiseConv2d::macs(const Shape& in) const {
  return out_shape(in).numel() * opt_.kernel * opt_.kernel;
}

Tensor DepthwiseConv2d::forward(const Tensor& input, bool train) {
  const Shape os = out_shape(input.shape());
  const int64_t n = input.dim(0), ih = input.dim(2), iw = input.dim(3);
  const int64_t oh = os.dim(2), ow = os.dim(3);
  Tensor out(os);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < channels_; ++c) {
      const float* plane = input.data() + (i * channels_ + c) * ih * iw;
      const float* k = weight_.data() + c * opt_.kernel * opt_.kernel;
      float* dst = out.data() + (i * channels_ + c) * oh * ow;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          float acc = 0.0f;
          for (int64_t ky = 0; ky < opt_.kernel; ++ky) {
            const int64_t iy = oy * opt_.stride - opt_.pad + ky;
            if (iy < 0 || iy >= ih) continue;
            for (int64_t kx = 0; kx < opt_.kernel; ++kx) {
              const int64_t ix = ox * opt_.stride - opt_.pad + kx;
              if (ix < 0 || ix >= iw) continue;
              acc += plane[iy * iw + ix] * k[ky * opt_.kernel + kx];
            }
          }
          dst[oy * ow + ox] = acc;
        }
      }
    }
  }
  if (train) cached_input_ = input;
  return out;
}

Tensor DepthwiseConv2d::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("DepthwiseConv2d::backward before forward(train)");
  }
  const Tensor& x = cached_input_;
  if (grad_output.shape() != out_shape(x.shape())) {
    throw std::invalid_argument("DepthwiseConv2d::backward: grad mismatch");
  }
  const int64_t n = x.dim(0), ih = x.dim(2), iw = x.dim(3);
  const int64_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  Tensor grad_input(x.shape());
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < channels_; ++c) {
      const float* plane = x.data() + (i * channels_ + c) * ih * iw;
      const float* dy = grad_output.data() + (i * channels_ + c) * oh * ow;
      const float* k = weight_.data() + c * opt_.kernel * opt_.kernel;
      float* dk = weight_grad_.data() + c * opt_.kernel * opt_.kernel;
      float* dx = grad_input.data() + (i * channels_ + c) * ih * iw;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          const float g = dy[oy * ow + ox];
          if (g == 0.0f) continue;
          for (int64_t ky = 0; ky < opt_.kernel; ++ky) {
            const int64_t iy = oy * opt_.stride - opt_.pad + ky;
            if (iy < 0 || iy >= ih) continue;
            for (int64_t kx = 0; kx < opt_.kernel; ++kx) {
              const int64_t ix = ox * opt_.stride - opt_.pad + kx;
              if (ix < 0 || ix >= iw) continue;
              dk[ky * opt_.kernel + kx] += g * plane[iy * iw + ix];
              dx[iy * iw + ix] += g * k[ky * opt_.kernel + kx];
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::vector<ParamRef> DepthwiseConv2d::params() {
  return {{"weight", &weight_, &weight_grad_, /*decay=*/true}};
}

std::unique_ptr<Layer> DepthwiseConv2d::clone() const {
  auto copy = std::make_unique<DepthwiseConv2d>(*this);
  copy->cached_input_ = Tensor();
  return copy;
}

void DepthwiseConv2d::select_channels(const std::vector<int64_t>& keep) {
  if (keep.empty()) {
    throw std::invalid_argument("DepthwiseConv2d: cannot prune all channels");
  }
  const int64_t kk = opt_.kernel * opt_.kernel;
  Tensor w(Shape{static_cast<int64_t>(keep.size()), opt_.kernel, opt_.kernel});
  for (size_t i = 0; i < keep.size(); ++i) {
    const int64_t c = keep[i];
    if (c < 0 || c >= channels_) {
      throw std::out_of_range("DepthwiseConv2d::select_channels: bad index");
    }
    for (int64_t j = 0; j < kk; ++j) {
      w[static_cast<int64_t>(i) * kk + j] = weight_[c * kk + j];
    }
  }
  weight_ = std::move(w);
  weight_grad_ = Tensor(weight_.shape());
  channels_ = static_cast<int64_t>(keep.size());
  cached_input_ = Tensor();
}

}  // namespace tbnet::nn
