#pragma once
// Dropout — inverted dropout with a per-layer deterministic RNG stream.
//
// Victim training recipes (classic VGG heads) and attacker fine-tuning both
// use dropout; at inference it is the identity, so it never affects the
// deployed TEE path.

#include "nn/layer.h"
#include "tensor/rng.h"

namespace tbnet::nn {

class Dropout : public Layer {
 public:
  /// `p` = drop probability in [0, 1). Seed fixes the mask stream.
  explicit Dropout(double p = 0.5, uint64_t seed = 0x0D07);

  using Layer::forward;
  using Layer::backward;
  Tensor forward(ExecutionContext& ctx, const Tensor& input,
                 bool train) override;
  Tensor backward(ExecutionContext& ctx, const Tensor& grad_output) override;
  std::string kind() const override { return "Dropout"; }
  std::unique_ptr<Layer> clone() const override;
  Shape out_shape(const Shape& in) const override { return in; }
  int64_t macs(const Shape& in) const override { return in.numel(); }

  double p() const { return p_; }
  uint64_t seed() const { return seed_; }

 private:
  double p_;
  uint64_t seed_;
  Rng rng_;
  std::vector<uint8_t> keep_mask_;
  Shape cached_shape_;
};

}  // namespace tbnet::nn
