#pragma once
// Fully-connected layer on [N, in_features] inputs.

#include <cstdint>
#include <vector>

#include "nn/layer.h"
#include "nn/quant.h"
#include "tensor/pack.h"
#include "tensor/rng.h"

namespace tbnet::nn {

/// y = x * W^T + b, with W laid out [out_features, in_features].
class Dense : public Layer {
 public:
  Dense(int64_t in_features, int64_t out_features, Rng& rng, bool bias = true);

  using Layer::forward;
  using Layer::backward;
  Tensor forward(ExecutionContext& ctx, const Tensor& input,
                 bool train) override;

  /// Eval-only fused forward: y = act(x * W^T + b) with the bias and the
  /// activation applied in the GEMM epilogue (per output feature = per C
  /// column). Used by Sequential's fusion plan for Dense -> ReLU pairs.
  Tensor forward_fused(ExecutionContext& ctx, const Tensor& input,
                       simd::Act act);

  Tensor backward(ExecutionContext& ctx, const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::string kind() const override { return "Dense"; }
  std::unique_ptr<Layer> clone() const override;
  Shape out_shape(const Shape& in) const override;
  int64_t macs(const Shape& in) const override;

  int64_t in_features() const { return in_f_; }
  int64_t out_features() const { return out_f_; }
  bool has_bias() const { return has_bias_; }
  Tensor& weight() { return weight_; }
  const Tensor& weight() const { return weight_; }
  Tensor& bias() { return bias_; }

  /// Keeps only the listed input *features* (columns of W).
  void select_in_features(const std::vector<int64_t>& keep);

  /// Keeps the input features corresponding to the listed input *channels*,
  /// where each channel spans `features_per_channel` consecutive features
  /// (used after a Flatten of [C, H, W] with H*W = features_per_channel).
  void select_in_channels(const std::vector<int64_t>& keep,
                          int64_t features_per_channel);

  /// Attaches int8 quantized weights (nn/quant.h); eval forward then runs
  /// the transposed int8 GEMM C^T[out_f, n] = W_q * X_q^T (the weight is the
  /// stationary packed A side, batch rows become B columns) and transposes
  /// the result. Only layers with out_features >= simd::kNR are quantized by
  /// the calibration walker. Clears the packed caches.
  void set_quantized(QuantizedWeights qw);
  bool quantized() const { return !quant_.empty(); }
  const QuantizedWeights& quant() const { return quant_; }

  /// Packs W^T into right-operand panels (cached; see Layer). A quantized
  /// layer packs int8 A panels of W instead (see set_quantized).
  void prepare_inference(ExecutionContext& ctx) override;

 private:
  Tensor forward_impl(ExecutionContext& ctx, const Tensor& input, bool train,
                      simd::Act act);
  Tensor forward_int8(ExecutionContext& ctx, const Tensor& input,
                      simd::Act act);

  int64_t in_f_, out_f_;
  bool has_bias_;
  Tensor weight_, weight_grad_;
  Tensor bias_, bias_grad_;
  Tensor cached_input_;
  PackedGemm packed_;  ///< W^T panels; empty until prepare_inference
  QuantizedWeights quant_;      ///< int8 weights; empty = f32 serving
  std::vector<int8_t> qpacked_; ///< int8 A panels of W; empty until prepare
};

}  // namespace tbnet::nn
