#include "nn/residual.h"

#include <stdexcept>

#include "nn/activations.h"
#include "nn/sequential.h"

namespace tbnet::nn {

ResidualBlock::ResidualBlock(int64_t in_c, int64_t out_c, int64_t stride,
                             Rng& rng)
    : in_c_(in_c), out_c_(out_c), stride_(stride) {
  Conv2d::Options c1{.kernel = 3, .stride = stride, .pad = 1, .bias = false};
  Conv2d::Options c2{.kernel = 3, .stride = 1, .pad = 1, .bias = false};
  conv1_ = std::make_unique<Conv2d>(in_c, out_c, c1, rng);
  bn1_ = std::make_unique<BatchNorm2d>(out_c);
  conv2_ = std::make_unique<Conv2d>(out_c, out_c, c2, rng);
  bn2_ = std::make_unique<BatchNorm2d>(out_c);
  if (stride != 1 || in_c != out_c) {
    Conv2d::Options cd{.kernel = 1, .stride = stride, .pad = 0, .bias = false};
    down_conv_ = std::make_unique<Conv2d>(in_c, out_c, cd, rng);
    down_bn_ = std::make_unique<BatchNorm2d>(out_c);
  }
}

Shape ResidualBlock::out_shape(const Shape& in) const {
  return bn2_->out_shape(conv2_->out_shape(bn1_->out_shape(conv1_->out_shape(in))));
}

int64_t ResidualBlock::macs(const Shape& in) const {
  const Shape mid = conv1_->out_shape(in);
  int64_t total = conv1_->macs(in) + bn1_->macs(mid) + mid.numel() +
                  conv2_->macs(mid) + bn2_->macs(out_shape(in)) +
                  out_shape(in).numel() * 2;  // add + final ReLU
  if (down_conv_) {
    total += down_conv_->macs(in) + down_bn_->macs(out_shape(in));
  }
  return total;
}

int64_t ResidualBlock::param_bytes() const {
  int64_t total = conv1_->param_bytes() + bn1_->param_bytes() +
                  conv2_->param_bytes() + bn2_->param_bytes();
  if (down_conv_) total += down_conv_->param_bytes() + down_bn_->param_bytes();
  return total;
}

void ResidualBlock::prepare_inference(ExecutionContext& ctx) {
  if (!simd::fast_kernels_enabled()) return;
  conv1_->prepare_inference(ctx);
  conv2_->prepare_inference(ctx);
  if (down_conv_) down_conv_->prepare_inference(ctx);
  // The block is frozen once prepared, so the BN scale/shift composition is
  // hoisted here instead of being rebuilt on every fused eval call.
  const int64_t mid_c = conv1_->out_channels();
  fused_s1_.resize(static_cast<size_t>(mid_c));
  fused_t1_.resize(static_cast<size_t>(mid_c));
  bn1_->inference_scale_shift(fused_s1_.data(), fused_t1_.data());
  fused_s2_.resize(static_cast<size_t>(out_c_));
  fused_t2_.resize(static_cast<size_t>(out_c_));
  bn2_->inference_scale_shift(fused_s2_.data(), fused_t2_.data());
  if (down_conv_) {
    fused_sd_.resize(static_cast<size_t>(out_c_));
    fused_td_.resize(static_cast<size_t>(out_c_));
    down_bn_->inference_scale_shift(fused_sd_.data(), fused_td_.data());
  }
  prepared_ = true;
}

Tensor ResidualBlock::forward_fused_eval(ExecutionContext& ctx,
                                         const Tensor& input) {
  Tensor mid = conv1_->forward_fused(ctx, input, fused_s1_.data(),
                                     fused_t1_.data(), simd::Act::kReLU);
  Tensor main = conv2_->forward_fused(ctx, mid, fused_s2_.data(),
                                      fused_t2_.data(), simd::Act::kNone);

  Tensor skip = input;
  if (down_conv_) {
    skip = down_conv_->forward_fused(ctx, input, fused_sd_.data(),
                                     fused_td_.data(), simd::Act::kNone);
  }
  if (skip.shape() != main.shape()) {
    throw std::logic_error("ResidualBlock: skip/main shape mismatch");
  }
  main.add_(skip);
  for (int64_t i = 0; i < main.numel(); ++i) {
    if (main[i] < 0.0f) main[i] = 0.0f;
  }
  return main;
}

Tensor ResidualBlock::forward(ExecutionContext& ctx, const Tensor& input,
                              bool train) {
  if (!train && prepared_ && simd::fast_kernels_enabled()) {
    return forward_fused_eval(ctx, input);
  }
  if (train) cached_input_ = input;
  Tensor mid = bn1_->forward(ctx, conv1_->forward(ctx, input, train), train);
  if (train) {
    relu1_mask_.assign(static_cast<size_t>(mid.numel()), 0);
    mid_shape_ = mid.shape();
  }
  for (int64_t i = 0; i < mid.numel(); ++i) {
    if (mid[i] > 0.0f) {
      if (train) relu1_mask_[static_cast<size_t>(i)] = 1;
    } else {
      mid[i] = 0.0f;
    }
  }
  Tensor main = bn2_->forward(ctx, conv2_->forward(ctx, mid, train), train);
  Tensor skip = down_conv_
                    ? down_bn_->forward(
                          ctx, down_conv_->forward(ctx, input, train), train)
                    : input;
  if (skip.shape() != main.shape()) {
    throw std::logic_error("ResidualBlock: skip/main shape mismatch");
  }
  main.add_(skip);
  if (train) {
    relu_out_mask_.assign(static_cast<size_t>(main.numel()), 0);
    out_shape_cache_ = main.shape();
  }
  for (int64_t i = 0; i < main.numel(); ++i) {
    if (main[i] > 0.0f) {
      if (train) relu_out_mask_[static_cast<size_t>(i)] = 1;
    } else {
      main[i] = 0.0f;
    }
  }
  return main;
}

Tensor ResidualBlock::backward(ExecutionContext& ctx,
                               const Tensor& grad_output) {
  if (relu_out_mask_.empty()) {
    throw std::logic_error("ResidualBlock::backward before forward(train)");
  }
  if (grad_output.shape() != out_shape_cache_) {
    throw std::invalid_argument("ResidualBlock::backward: grad shape mismatch");
  }
  // Through the output ReLU.
  Tensor g = grad_output;
  for (int64_t i = 0; i < g.numel(); ++i) {
    if (!relu_out_mask_[static_cast<size_t>(i)]) g[i] = 0.0f;
  }
  // Skip path.
  Tensor grad_input_skip =
      down_conv_ ? down_conv_->backward(ctx, down_bn_->backward(ctx, g)) : g;
  // Main path: bn2 <- conv2 <- relu1 <- bn1 <- conv1.
  Tensor gm = conv2_->backward(ctx, bn2_->backward(ctx, g));
  for (int64_t i = 0; i < gm.numel(); ++i) {
    if (!relu1_mask_[static_cast<size_t>(i)]) gm[i] = 0.0f;
  }
  Tensor grad_input = conv1_->backward(ctx, bn1_->backward(ctx, gm));
  grad_input.add_(grad_input_skip);
  return grad_input;
}

std::vector<ParamRef> ResidualBlock::params() {
  std::vector<ParamRef> all;
  auto append = [&all](const char* prefix, Layer& l) {
    for (ParamRef p : l.params()) {
      p.name = std::string(prefix) + "." + p.name;
      all.push_back(p);
    }
  };
  append("conv1", *conv1_);
  append("bn1", *bn1_);
  append("conv2", *conv2_);
  append("bn2", *bn2_);
  if (down_conv_) {
    append("down_conv", *down_conv_);
    append("down_bn", *down_bn_);
  }
  return all;
}

std::unique_ptr<Layer> ResidualBlock::clone() const {
  // Clone via the layer clones to avoid copying forward caches. The clone is
  // un-prepared (fresh packed caches) by construction.
  Rng dummy(0);
  auto copy = std::make_unique<ResidualBlock>(in_c_, out_c_, stride_, dummy);
  copy->conv1_.reset(static_cast<Conv2d*>(conv1_->clone().release()));
  copy->bn1_.reset(static_cast<BatchNorm2d*>(bn1_->clone().release()));
  copy->conv2_.reset(static_cast<Conv2d*>(conv2_->clone().release()));
  copy->bn2_.reset(static_cast<BatchNorm2d*>(bn2_->clone().release()));
  if (down_conv_) {
    copy->down_conv_.reset(static_cast<Conv2d*>(down_conv_->clone().release()));
    copy->down_bn_.reset(static_cast<BatchNorm2d*>(down_bn_->clone().release()));
  }
  return copy;
}

void ResidualBlock::prune_internal(const std::vector<int64_t>& keep) {
  conv1_->select_out_channels(keep);
  bn1_->select_channels(keep);
  conv2_->select_in_channels(keep);
}

Sequential plain_block_like(const ResidualBlock& block, Rng& rng) {
  Sequential seq;
  Conv2d::Options c1{.kernel = 3, .stride = block.stride(), .pad = 1,
                     .bias = false};
  Conv2d::Options c2{.kernel = 3, .stride = 1, .pad = 1, .bias = false};
  seq.emplace<Conv2d>(block.in_channels(), block.internal_channels(), c1, rng);
  seq.emplace<BatchNorm2d>(block.internal_channels());
  seq.emplace<ReLU>();
  seq.emplace<Conv2d>(block.internal_channels(), block.out_channels(), c2, rng);
  seq.emplace<BatchNorm2d>(block.out_channels());
  seq.emplace<ReLU>();
  return seq;
}

void copy_main_branch(const ResidualBlock& src, Sequential& dst) {
  auto& block = const_cast<ResidualBlock&>(src);
  auto* c1 = dst.find_nth<Conv2d>(0);
  auto* b1 = dst.find_nth<BatchNorm2d>(0);
  auto* c2 = dst.find_nth<Conv2d>(1);
  auto* b2 = dst.find_nth<BatchNorm2d>(1);
  if (!c1 || !b1 || !c2 || !b2) {
    throw std::invalid_argument("copy_main_branch: dst is not a plain block");
  }
  c1->weight() = block.conv1().weight();
  b1->gamma() = block.bn1().gamma();
  b1->beta() = block.bn1().beta();
  b1->running_mean() = block.bn1().running_mean();
  b1->running_var() = block.bn1().running_var();
  c2->weight() = block.conv2().weight();
  b2->gamma() = block.bn2().gamma();
  b2->beta() = block.bn2().beta();
  b2->running_mean() = block.bn2().running_mean();
  b2->running_var() = block.bn2().running_var();
}

}  // namespace tbnet::nn
