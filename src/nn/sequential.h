#pragma once
// Sequential: an ordered container of layers that is itself a Layer.
//
// Used both for whole victim models and for the per-stage blocks of the
// two-branch model (a fusion stage's REE or TEE side is a small Sequential).

#include <memory>
#include <vector>

#include "nn/layer.h"

namespace tbnet::nn {

class Sequential : public Layer {
 public:
  Sequential() = default;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  /// Deep-copying copy operations (layers are cloned).
  Sequential(const Sequential& other);
  Sequential& operator=(const Sequential& other);

  /// Appends a layer; returns *this for chaining.
  Sequential& add(std::unique_ptr<Layer> layer);

  /// Convenience: constructs the layer in place.
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  int size() const { return static_cast<int>(layers_.size()); }
  Layer& layer(int i) { return *layers_[static_cast<size_t>(i)]; }
  const Layer& layer(int i) const { return *layers_[static_cast<size_t>(i)]; }

  /// n-th layer of dynamic type L (0-based), or nullptr.
  template <typename L>
  L* find_nth(int n) {
    for (auto& l : layers_) {
      if (auto* typed = dynamic_cast<L*>(l.get())) {
        if (n-- == 0) return typed;
      }
    }
    return nullptr;
  }

  using Layer::forward;
  using Layer::backward;
  Tensor forward(ExecutionContext& ctx, const Tensor& input,
                 bool train) override;
  Tensor backward(ExecutionContext& ctx, const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::string kind() const override { return "Sequential"; }
  std::unique_ptr<Layer> clone() const override;
  Shape out_shape(const Shape& in) const override;
  int64_t macs(const Shape& in) const override;
  int64_t param_bytes() const override;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace tbnet::nn
