#pragma once
// Sequential: an ordered container of layers that is itself a Layer.
//
// Used both for whole victim models and for the per-stage blocks of the
// two-branch model (a fusion stage's REE or TEE side is a small Sequential).

#include <memory>
#include <vector>

#include "nn/layer.h"
#include "tensor/simd.h"

namespace tbnet::nn {

class Sequential : public Layer {
 public:
  Sequential() = default;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  /// Deep-copying copy operations (layers are cloned).
  Sequential(const Sequential& other);
  Sequential& operator=(const Sequential& other);

  /// Appends a layer; returns *this for chaining.
  Sequential& add(std::unique_ptr<Layer> layer);

  /// Convenience: constructs the layer in place.
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  int size() const { return static_cast<int>(layers_.size()); }
  Layer& layer(int i) { return *layers_[static_cast<size_t>(i)]; }
  const Layer& layer(int i) const { return *layers_[static_cast<size_t>(i)]; }

  /// n-th layer of dynamic type L (0-based), or nullptr.
  template <typename L>
  L* find_nth(int n) {
    for (auto& l : layers_) {
      if (auto* typed = dynamic_cast<L*>(l.get())) {
        if (n-- == 0) return typed;
      }
    }
    return nullptr;
  }

  /// Removes the i-th layer (used by the deploy-time BN folding pass).
  void remove_layer(int i);

  using Layer::forward;
  using Layer::backward;
  Tensor forward(ExecutionContext& ctx, const Tensor& input,
                 bool train) override;
  Tensor backward(ExecutionContext& ctx, const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::string kind() const override { return "Sequential"; }
  std::unique_ptr<Layer> clone() const override;
  Shape out_shape(const Shape& in) const override;
  int64_t macs(const Shape& in) const override;
  int64_t param_bytes() const override;

  /// Builds the fusion plan — [Conv2d|DepthwiseConv2d] (+BatchNorm2d)
  /// (+ReLU) and Dense (+ReLU) runs collapse into one fused step, and a
  /// DepthwiseConv2d run followed by a 1x1 stride-1 pad-0 Conv2d run fuses
  /// further into a single depthwise→pointwise step whose intermediate map
  /// is never materialized (nn/fuse.h) — then recurses so children pack
  /// their weights. Eval-mode forward follows the plan; train-mode forward
  /// and un-prepared Sequentials are unchanged. Mutating the container (add)
  /// or copying/cloning it drops the plan.
  void prepare_inference(ExecutionContext& ctx) override;

 private:
  /// One step of the fusion plan: run layers_[layer] with `consumed`
  /// following layers folded into its epilogue. A DepthwiseConv2d head may
  /// additionally absorb a following 1x1 Conv2d (and ITS BN/ReLU): the step
  /// then runs forward_depthwise_pointwise, feeding depthwise rows straight
  /// into the pointwise GEMM's B-panel producer so the intermediate NCHW
  /// tensor never materializes.
  struct FusedStep {
    int layer = 0;
    int consumed = 1;    ///< total layers this step advances past
    int bn = -1;         ///< index of the folded BatchNorm2d, -1 = none
    simd::Act act = simd::Act::kNone;
    int pw = -1;         ///< index of a fused pointwise Conv2d, -1 = none
    int pw_bn = -1;      ///< BatchNorm folded into the pointwise epilogue
    simd::Act pw_act = simd::Act::kNone;
    /// Composed per-channel epilogue affine, cached at prepare time when a
    /// BN is folded in: scale = gamma / sqrt(var + eps), shift = the BN
    /// shift with the head layer's own bias pre-composed. The model is
    /// frozen after prepare_inference (see Layer), so recomputing these per
    /// eval call would be pure waste; empty when bn < 0. The pw_* pair is
    /// the same composition for the fused pointwise conv (empty when
    /// pw_bn < 0).
    std::vector<float> scale, shift;
    std::vector<float> pw_scale, pw_shift;
  };

  Tensor forward_prepared(ExecutionContext& ctx, const Tensor& input);

  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<FusedStep> plan_;
  bool prepared_ = false;
};

}  // namespace tbnet::nn
