#include "nn/batchnorm.h"

#include <cmath>
#include <stdexcept>

#include "tensor/threadpool.h"

namespace tbnet::nn {

BatchNorm2d::BatchNorm2d(int64_t channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_(Tensor::ones(Shape{channels})),
      gamma_grad_(Shape{channels}),
      beta_(Shape{channels}),
      beta_grad_(Shape{channels}),
      running_mean_(Shape{channels}),
      running_var_(Tensor::ones(Shape{channels})) {
  if (channels <= 0) {
    throw std::invalid_argument("BatchNorm2d: channels must be positive");
  }
}

Shape BatchNorm2d::out_shape(const Shape& in) const {
  if (in.ndim() != 4 || in.dim(1) != channels_) {
    throw std::invalid_argument("BatchNorm2d: bad input shape " + in.str());
  }
  return in;
}

int64_t BatchNorm2d::macs(const Shape& in) const {
  return out_shape(in).numel() * 2;  // scale + shift per element
}

int64_t BatchNorm2d::param_bytes() const {
  // gamma, beta + running mean/var all live with the model.
  return 4 * channels_ * static_cast<int64_t>(sizeof(float));
}

Tensor BatchNorm2d::forward(ExecutionContext& ctx, const Tensor& input,
                            bool train) {
  out_shape(input.shape());  // validates
  const int64_t n = input.dim(0), c = channels_, h = input.dim(2),
                w = input.dim(3);
  const int64_t spatial = h * w;
  const int64_t per_channel = n * spatial;
  Tensor out(input.shape());

  if (train) {
    cached_xhat_ = Tensor(input.shape());
    cached_inv_std_.assign(static_cast<size_t>(c), 0.0f);
    for (int64_t ch = 0; ch < c; ++ch) {
      double mean = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        const float* src = input.data() + (i * c + ch) * spatial;
        for (int64_t p = 0; p < spatial; ++p) mean += src[p];
      }
      mean /= static_cast<double>(per_channel);
      double var = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        const float* src = input.data() + (i * c + ch) * spatial;
        for (int64_t p = 0; p < spatial; ++p) {
          const double d = src[p] - mean;
          var += d * d;
        }
      }
      var /= static_cast<double>(per_channel);

      const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
      cached_inv_std_[static_cast<size_t>(ch)] = inv_std;
      const float g = gamma_[ch], b = beta_[ch];
      for (int64_t i = 0; i < n; ++i) {
        const float* src = input.data() + (i * c + ch) * spatial;
        float* xh = cached_xhat_.data() + (i * c + ch) * spatial;
        float* dst = out.data() + (i * c + ch) * spatial;
        for (int64_t p = 0; p < spatial; ++p) {
          xh[p] = (src[p] - static_cast<float>(mean)) * inv_std;
          dst[p] = g * xh[p] + b;
        }
      }
      // Exponential running stats (biased variance, matching the norm).
      running_mean_[ch] = (1.0f - momentum_) * running_mean_[ch] +
                          momentum_ * static_cast<float>(mean);
      running_var_[ch] = (1.0f - momentum_) * running_var_[ch] +
                         momentum_ * static_cast<float>(var);
    }
  } else {
    // Eval mode is the deployed hot path: channels are independent, shard
    // them on the context pool (disjoint writes; per-element math unchanged).
    ctx.parallel_for(c, [&](int64_t c0, int64_t c1) {
      for (int64_t ch = c0; ch < c1; ++ch) {
        const float inv_std = 1.0f / std::sqrt(running_var_[ch] + eps_);
        const float g = gamma_[ch], b = beta_[ch], m = running_mean_[ch];
        for (int64_t i = 0; i < n; ++i) {
          const float* src = input.data() + (i * c + ch) * spatial;
          float* dst = out.data() + (i * c + ch) * spatial;
          for (int64_t p = 0; p < spatial; ++p) {
            dst[p] = g * (src[p] - m) * inv_std + b;
          }
        }
      }
    });
  }
  return out;
}

Tensor BatchNorm2d::backward(ExecutionContext&, const Tensor& grad_output) {
  if (cached_xhat_.empty()) {
    throw std::logic_error("BatchNorm2d::backward before forward(train)");
  }
  if (grad_output.shape() != cached_xhat_.shape()) {
    throw std::invalid_argument("BatchNorm2d::backward: grad shape mismatch");
  }
  const int64_t n = grad_output.dim(0), c = channels_, h = grad_output.dim(2),
                w = grad_output.dim(3);
  const int64_t spatial = h * w;
  const int64_t per_channel = n * spatial;
  Tensor grad_input(grad_output.shape());

  for (int64_t ch = 0; ch < c; ++ch) {
    // Accumulate dgamma = sum(dy * xhat), dbeta = sum(dy), plus the two batch
    // means needed for dx.
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const float* dy = grad_output.data() + (i * c + ch) * spatial;
      const float* xh = cached_xhat_.data() + (i * c + ch) * spatial;
      for (int64_t p = 0; p < spatial; ++p) {
        sum_dy += dy[p];
        sum_dy_xhat += dy[p] * xh[p];
      }
    }
    gamma_grad_[ch] += static_cast<float>(sum_dy_xhat);
    beta_grad_[ch] += static_cast<float>(sum_dy);

    const float inv_std = cached_inv_std_[static_cast<size_t>(ch)];
    const float g = gamma_[ch];
    const float mean_dy = static_cast<float>(sum_dy / per_channel);
    const float mean_dy_xhat = static_cast<float>(sum_dy_xhat / per_channel);
    for (int64_t i = 0; i < n; ++i) {
      const float* dy = grad_output.data() + (i * c + ch) * spatial;
      const float* xh = cached_xhat_.data() + (i * c + ch) * spatial;
      float* dx = grad_input.data() + (i * c + ch) * spatial;
      for (int64_t p = 0; p < spatial; ++p) {
        dx[p] = g * inv_std * (dy[p] - mean_dy - xh[p] * mean_dy_xhat);
      }
    }
  }
  return grad_input;
}

std::vector<ParamRef> BatchNorm2d::params() {
  return {
      {"gamma", &gamma_, &gamma_grad_, /*decay=*/false},
      {"beta", &beta_, &beta_grad_, /*decay=*/false},
  };
}

std::unique_ptr<Layer> BatchNorm2d::clone() const {
  auto copy = std::make_unique<BatchNorm2d>(*this);
  copy->cached_xhat_ = Tensor();
  copy->cached_inv_std_.clear();
  return copy;
}

void BatchNorm2d::inference_scale_shift(float* scale, float* shift) const {
  for (int64_t c = 0; c < channels_; ++c) {
    const float s = gamma_[c] / std::sqrt(running_var_[c] + eps_);
    scale[c] = s;
    shift[c] = beta_[c] - running_mean_[c] * s;
  }
}

void BatchNorm2d::select_channels(const std::vector<int64_t>& keep) {
  if (keep.empty()) {
    throw std::invalid_argument("BatchNorm2d: cannot prune all channels");
  }
  const int64_t k = static_cast<int64_t>(keep.size());
  Tensor g(Shape{k}), b(Shape{k}), rm(Shape{k}), rv(Shape{k});
  for (int64_t i = 0; i < k; ++i) {
    const int64_t src = keep[static_cast<size_t>(i)];
    if (src < 0 || src >= channels_) {
      throw std::out_of_range("BatchNorm2d::select_channels: index out of range");
    }
    g[i] = gamma_[src];
    b[i] = beta_[src];
    rm[i] = running_mean_[src];
    rv[i] = running_var_[src];
  }
  gamma_ = std::move(g);
  beta_ = std::move(b);
  running_mean_ = std::move(rm);
  running_var_ = std::move(rv);
  gamma_grad_ = Tensor(Shape{k});
  beta_grad_ = Tensor(Shape{k});
  channels_ = k;
  cached_xhat_ = Tensor();
  cached_inv_std_.clear();
}

}  // namespace tbnet::nn
