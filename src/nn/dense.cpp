#include "nn/dense.h"

#include <stdexcept>

#include "nn/init.h"
#include "tensor/gemm.h"

namespace tbnet::nn {

Dense::Dense(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : in_f_(in_features),
      out_f_(out_features),
      has_bias_(bias),
      weight_(Shape{out_features, in_features}),
      weight_grad_(Shape{out_features, in_features}) {
  if (in_features <= 0 || out_features <= 0) {
    throw std::invalid_argument("Dense: feature counts must be positive");
  }
  kaiming_normal(weight_, in_features, rng);
  if (has_bias_) {
    bias_ = Tensor(Shape{out_features});
    bias_grad_ = Tensor(Shape{out_features});
  }
}

Shape Dense::out_shape(const Shape& in) const {
  if (in.ndim() != 2 || in.dim(1) != in_f_) {
    throw std::invalid_argument("Dense: expected [N, " + std::to_string(in_f_) +
                                "], got " + in.str());
  }
  return Shape{in.dim(0), out_f_};
}

int64_t Dense::macs(const Shape& in) const {
  return out_shape(in).dim(0) * out_f_ * in_f_;
}

Tensor Dense::forward(ExecutionContext& ctx, const Tensor& input, bool train) {
  return forward_impl(ctx, input, train, simd::Act::kNone);
}

Tensor Dense::forward_fused(ExecutionContext& ctx, const Tensor& input,
                            simd::Act act) {
  return forward_impl(ctx, input, /*train=*/false, act);
}

Tensor Dense::forward_impl(ExecutionContext& ctx, const Tensor& input,
                           bool train, simd::Act act) {
  if (!train && !quant_.empty()) {
    out_shape(input.shape());  // validate
    return forward_int8(ctx, input, act);
  }
  const Shape os = out_shape(input.shape());
  const int64_t n = input.dim(0);
  Tensor out(os);
  // out[n, out_f] = x[n, in_f] * W^T (W is [out_f, in_f]). Bias and the
  // fused activation are per output feature, i.e. per column of out.
  GemmEpilogue ep;
  if (has_bias_) ep.col_shift = bias_.data();
  ep.act = act;
  if (!train && !packed_.empty() && simd::fast_kernels_enabled()) {
    packed_.run_with_a(ctx, n, 1.0f, input.data(), 0.0f, out.data(), ep);
  } else {
    gemm_nt(ctx, n, out_f_, in_f_, 1.0f, input.data(), weight_.data(), 0.0f,
            out.data(), ep);
  }
  if (train) cached_input_ = input;
  return out;
}

Tensor Dense::forward_int8(ExecutionContext& ctx, const Tensor& input,
                           simd::Act act) {
  const int64_t n = input.dim(0);
  Tensor out(Shape{n, out_f_});
  ArenaScope scope(ctx.arena());
  // Same dequantization composition as Conv2d::forward_int8, with the bias
  // riding the shift term (the f32 path's per-column bias becomes per-row in
  // the transposed GEMM).
  float* S = ctx.arena().alloc(out_f_);
  float* T = ctx.arena().alloc(out_f_);
  compose_quant_epilogue(quant_, nullptr, has_bias_ ? bias_.data() : nullptr,
                         out_f_, S, T);
  const simd::QuantEpilogue qep{S, T, act};
  const int8_t* apack;
  if (!qpacked_.empty()) {
    apack = qpacked_.data();
  } else {
    const int64_t bytes = packdetail::packed_a_i8_bytes(out_f_, in_f_);
    int8_t* ap = reinterpret_cast<int8_t*>(ctx.arena().alloc((bytes + 3) / 4));
    packdetail::pack_a_i8(out_f_, in_f_, quant_.q.data(), in_f_, ap);
    apack = ap;
  }
  const float inv = 1.0f / quant_.act.scale;
  const int32_t zp = quant_.act.zero_point;
  const float* x = input.data();
  const int64_t in_f = in_f_;
  // C^T[out_f, n] = W_q * X_q^T: B column j is input row j0+j, quantized
  // straight from the batch. Each output element's integer dot product is
  // independent of which tile its column lands in, so batched serving stays
  // bit-identical to per-sample calls.
  float* ct = ctx.arena().alloc(out_f_ * n);
  packdetail::run_packed_i8_producer(
      ctx, out_f_, n, in_f_, apack,
      [x, in_f, inv, zp](int64_t kk, int64_t kc, int64_t j0, int nr,
                         uint8_t* panel) {
        const int64_t kg = (kc + simd::kKG - 1) / simd::kKG;
        for (int64_t gi = 0; gi < kg; ++gi) {
          uint8_t* grp = panel + gi * simd::kNR * simd::kKG;
          for (int64_t j = 0; j < simd::kNR; ++j) {
            for (int64_t t = 0; t < simd::kKG; ++t) {
              const int64_t p = gi * simd::kKG + t;
              grp[j * simd::kKG + t] =
                  p < kc && j < nr
                      ? simd::quantize_u7(x[(j0 + j) * in_f + kk + p], inv, zp)
                      : uint8_t{0};
            }
          }
        }
      },
      ct, n, qep);
  for (int64_t i = 0; i < n; ++i) {
    float* row = out.data() + i * out_f_;
    for (int64_t o = 0; o < out_f_; ++o) row[o] = ct[o * n + i];
  }
  return out;
}

void Dense::set_quantized(QuantizedWeights qw) {
  if (!qw.empty() &&
      (qw.q.size() != static_cast<size_t>(out_f_ * in_f_) ||
       qw.scale.size() != static_cast<size_t>(out_f_) ||
       qw.qsum.size() != static_cast<size_t>(out_f_) ||
       qw.act.scale <= 0.0f)) {
    throw std::invalid_argument("Dense::set_quantized: shape mismatch");
  }
  quant_ = std::move(qw);
  packed_.clear();
  qpacked_.clear();
}

void Dense::prepare_inference(ExecutionContext& ctx) {
  if (!quant_.empty()) {
    qpacked_.resize(
        static_cast<size_t>(packdetail::packed_a_i8_bytes(out_f_, in_f_)));
    packdetail::pack_a_i8(out_f_, in_f_, quant_.q.data(), in_f_,
                          qpacked_.data());
    return;
  }
  if (!simd::fast_kernels_enabled()) return;
  // Heads narrower than one vector tile (e.g. 10-class logits) are better
  // served by the streaming reference kernel gemm_nt falls back to for
  // n < kNR; packing would force them through the mostly-padding tile path.
  if (out_f_ < simd::kNR) return;
  packed_.pack_b_transposed(out_f_, in_f_, weight_.data(), &ctx.arena());
}

Tensor Dense::backward(ExecutionContext& ctx, const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("Dense::backward before forward(train)");
  }
  const Tensor& x = cached_input_;
  const int64_t n = x.dim(0);
  if (grad_output.shape() != Shape{n, out_f_}) {
    throw std::invalid_argument("Dense::backward: grad shape mismatch");
  }
  // dW[out_f, in_f] += dy^T[out_f, n] * x[n, in_f]
  gemm_tn(ctx, out_f_, in_f_, n, 1.0f, grad_output.data(), x.data(), 1.0f,
          weight_grad_.data());
  if (has_bias_) {
    for (int64_t i = 0; i < n; ++i) {
      const float* row = grad_output.data() + i * out_f_;
      for (int64_t j = 0; j < out_f_; ++j) bias_grad_[j] += row[j];
    }
  }
  // dx[n, in_f] = dy[n, out_f] * W[out_f, in_f]
  Tensor grad_input(x.shape());
  gemm_nn(ctx, n, in_f_, out_f_, 1.0f, grad_output.data(), weight_.data(),
          0.0f, grad_input.data());
  return grad_input;
}

std::vector<ParamRef> Dense::params() {
  std::vector<ParamRef> ps;
  ps.push_back({"weight", &weight_, &weight_grad_, /*decay=*/true});
  if (has_bias_) ps.push_back({"bias", &bias_, &bias_grad_, /*decay=*/false});
  return ps;
}

std::unique_ptr<Layer> Dense::clone() const {
  auto copy = std::make_unique<Dense>(*this);
  copy->cached_input_ = Tensor();
  // Quantized weights are model state; the int8 pack is a prepare-time
  // cache and is dropped like the f32 PackedGemm (whose copy is empty).
  copy->qpacked_.clear();
  return copy;
}

void Dense::select_in_features(const std::vector<int64_t>& keep) {
  if (keep.empty()) {
    throw std::invalid_argument("Dense: cannot prune all input features");
  }
  packed_.clear();
  quant_ = QuantizedWeights();
  qpacked_.clear();
  const int64_t k = static_cast<int64_t>(keep.size());
  Tensor w(Shape{out_f_, k});
  for (int64_t o = 0; o < out_f_; ++o) {
    const float* src = weight_.data() + o * in_f_;
    float* dst = w.data() + o * k;
    for (int64_t i = 0; i < k; ++i) {
      const int64_t idx = keep[static_cast<size_t>(i)];
      if (idx < 0 || idx >= in_f_) {
        throw std::out_of_range("Dense::select_in_features: index out of range");
      }
      dst[i] = src[idx];
    }
  }
  weight_ = std::move(w);
  weight_grad_ = Tensor(weight_.shape());
  in_f_ = k;
  cached_input_ = Tensor();
}

void Dense::select_in_channels(const std::vector<int64_t>& keep,
                               int64_t features_per_channel) {
  if (features_per_channel <= 0 ||
      in_f_ % features_per_channel != 0) {
    throw std::invalid_argument(
        "Dense::select_in_channels: in_features not divisible by "
        "features_per_channel");
  }
  std::vector<int64_t> feature_keep;
  feature_keep.reserve(keep.size() * static_cast<size_t>(features_per_channel));
  for (int64_t ch : keep) {
    for (int64_t f = 0; f < features_per_channel; ++f) {
      feature_keep.push_back(ch * features_per_channel + f);
    }
  }
  select_in_features(feature_keep);
}

}  // namespace tbnet::nn
