#pragma once
// nn/quant.h — post-training int8 quantization for deployed models.
//
// The quantization scheme matches the kernels' exactness contract (see
// tensor/simd.h): weights are per-output-channel SYMMETRIC s8 in [-127, 127]
// and activations are AFFINE u7 in [0, 127], so every s8 x u8 product pair
// fits pmaddubsw without saturation and the whole i32 dot product is exact —
// which is what makes the quantized path bit-identical across the scalar
// reference, the AVX2 maddubs tier, and both VNNI tiers.
//
// Quantization is a deploy-time pass, like BN folding: quantize_for_inference
// walks a frozen deployment clone with a small calibration batch, records the
// observed input range of every eligible Conv2d / Dense, and attaches
// QuantizedWeights to each. It runs AFTER fold_batchnorm_inference (so conv
// weights already absorb the BN affine where folding applies) and BEFORE
// prepare_inference (which then packs the int8 panels instead of the f32
// ones). Nothing in the training or pruning pipeline calls it.
//
// Dequantization rides the existing GemmEpilogue machinery: for output
// channel o with weight scale ws[o], activation quantizer (s, zp), and an
// external per-row affine (rs, rh) — a ResidualBlock's BN epilogue, or just
// the bias —
//
//   y[o, j] = act( acc[o, j] * S[o] + T[o] )
//   S[o] = ws[o] * s * rs[o]
//   T[o] = rh[o] - zp * qsum[o] * ws[o] * s * rs[o]
//
// where qsum[o] = sum_k qw[o, k] cancels the activation zero point exactly
// (padding zeros included — 0.0f quantizes to zp).

#include <cstdint>
#include <vector>

#include "nn/layer.h"
#include "tensor/tensor.h"

namespace tbnet::nn {

/// Affine u7 activation quantizer: q = clamp(lrintf(x / scale) + zero_point,
/// 0, 127) — see simd::quantize_u7, the single rounding authority.
struct ActQuant {
  float scale = 1.0f;
  int32_t zero_point = 0;
};

/// Builds the u7 quantizer covering [lo, hi]. The range is extended to
/// contain 0 so conv padding (and an all-positive post-ReLU range, which
/// gets zero_point = 0) quantizes exactly. A degenerate range maps to the
/// identity-ish (scale 1, zp 0) quantizer.
ActQuant act_quant_from_range(float lo, float hi);

/// Per-output-channel symmetric int8 weights plus the input-activation
/// quantizer, attached to a Conv2d / Dense by quantize_for_inference.
struct QuantizedWeights {
  std::vector<int8_t> q;     ///< [out, k] row-major, clamp(lrintf(w/scale[o]))
  std::vector<float> scale;  ///< per channel: max|w[o, :]| / 127 (1 if all 0)
  std::vector<int32_t> qsum; ///< per channel: sum_k q[o, k] (zp correction)
  ActQuant act;              ///< quantizer of the layer INPUT

  bool empty() const { return q.empty(); }
};

/// Quantizes `w` ([out, k] row-major) per-output-channel symmetric and
/// attaches `act` as the input quantizer.
QuantizedWeights quantize_weights(const float* w, int64_t out, int64_t k,
                                  const ActQuant& act);

/// Composes the per-row dequantization affine the int8 kernels consume (the
/// S/T of the header comment): S[o] = ws[o]*s*rs[o], T[o] = rh[o] -
/// zp*qsum[o]*ws[o]*s*rs[o], with nullptr rs/rh meaning identity. O(out);
/// S/T are caller storage (normally the call's arena scope). Every int8
/// call site MUST compose through this one function — the quantized path's
/// bit-determinism requires all sites to round these products identically.
void compose_quant_epilogue(const QuantizedWeights& qw, const float* rs,
                            const float* rh, int64_t out, float* S, float* T);

/// Calibration + quantization walker. Runs `calib` (a small representative
/// batch) through `root` in eval mode, mirroring the containers' dataflow
/// (Sequential layer by layer; ResidualBlock's two-path block body), records
/// the input range of every eligible layer, and quantizes it in place:
///
///   - Conv2d: always eligible;
///   - Dense: eligible when out_features >= simd::kNR (narrow logit heads
///     stay f32 — they are latency-trivial and accuracy-critical);
///   - DepthwiseConv2d and everything else: left f32.
///
/// Each layer is quantized AFTER its own f32 forward, so calibration
/// statistics downstream are pure f32. Returns the network output of the
/// calibration batch (callers can sanity-check it); `count`, when non-null,
/// receives the number of layers quantized. Call only on a frozen deployment
/// clone, after BN folding and before prepare_inference.
Tensor quantize_for_inference(Layer& root, ExecutionContext& ctx,
                              const Tensor& calib, int* count = nullptr);

}  // namespace tbnet::nn
