#include "nn/serialize.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "tensor/crc32c.h"

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/depthwise.h"
#include "nn/dropout.h"
#include "nn/flatten.h"
#include "nn/pool.h"
#include "nn/residual.h"
#include "nn/sequential.h"

namespace tbnet::nn {
namespace {

void write_u32(std::ostream& os, uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_i64(std::ostream& os, int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_f32(std::ostream& os, float v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_string(std::ostream& os, const std::string& s) {
  write_u32(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void write_tensor(std::ostream& os, const Tensor& t) {
  write_u32(os, static_cast<uint32_t>(t.shape().ndim()));
  for (int64_t d : t.shape().dims()) write_i64(os, d);
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

uint32_t read_u32(std::istream& is) {
  uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("model stream truncated (u32)");
  return v;
}

int64_t read_i64(std::istream& is) {
  int64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("model stream truncated (i64)");
  return v;
}

float read_f32(std::istream& is) {
  float v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("model stream truncated (f32)");
  return v;
}

std::string read_string(std::istream& is) {
  const uint32_t n = read_u32(is);
  if (n > (1u << 20)) throw std::runtime_error("model stream: string too long");
  std::string s(n, '\0');
  is.read(s.data(), n);
  if (!is) throw std::runtime_error("model stream truncated (string)");
  return s;
}

Tensor read_tensor(std::istream& is) {
  const uint32_t rank = read_u32(is);
  if (rank > 8) throw std::runtime_error("model stream: tensor rank too high");
  std::vector<int64_t> dims;
  dims.reserve(rank);
  for (uint32_t i = 0; i < rank; ++i) {
    const int64_t d = read_i64(is);
    if (d <= 0 || d > (1ll << 32)) {
      throw std::runtime_error("model stream: bad tensor dim");
    }
    dims.push_back(d);
  }
  Tensor t{Shape(dims)};
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!is) throw std::runtime_error("model stream truncated (tensor)");
  return t;
}

/// Quantized-weight payload (format v3): [out, k] extents, per-channel
/// scales, the activation quantizer, then the raw int8 bytes. qsum is
/// derivable and is recomputed on load.
void write_quant(std::ostream& os, const QuantizedWeights& qw) {
  const int64_t out = static_cast<int64_t>(qw.scale.size());
  const int64_t k = static_cast<int64_t>(qw.q.size()) / out;
  write_i64(os, out);
  write_i64(os, k);
  os.write(reinterpret_cast<const char*>(qw.scale.data()),
           static_cast<std::streamsize>(out * sizeof(float)));
  write_f32(os, qw.act.scale);
  write_i64(os, qw.act.zero_point);
  os.write(reinterpret_cast<const char*>(qw.q.data()),
           static_cast<std::streamsize>(qw.q.size()));
}

QuantizedWeights read_quant(std::istream& is, int64_t expect_out,
                            int64_t expect_k) {
  const int64_t out = read_i64(is);
  const int64_t k = read_i64(is);
  if (out != expect_out || k != expect_k) {
    throw std::runtime_error("model stream: quantized weight shape mismatch");
  }
  QuantizedWeights qw;
  qw.scale.resize(static_cast<size_t>(out));
  is.read(reinterpret_cast<char*>(qw.scale.data()),
          static_cast<std::streamsize>(out * sizeof(float)));
  qw.act.scale = read_f32(is);
  qw.act.zero_point = static_cast<int32_t>(read_i64(is));
  qw.q.resize(static_cast<size_t>(out * k));
  is.read(reinterpret_cast<char*>(qw.q.data()),
          static_cast<std::streamsize>(qw.q.size()));
  if (!is) throw std::runtime_error("model stream truncated (quant)");
  qw.qsum.resize(static_cast<size_t>(out));
  for (int64_t o = 0; o < out; ++o) {
    int32_t sum = 0;
    const int8_t* row = qw.q.data() + o * k;
    for (int64_t j = 0; j < k; ++j) sum += row[j];
    qw.qsum[static_cast<size_t>(o)] = sum;
  }
  return qw;
}

/// The f32 fallback weight of a quantized layer: w = q * scale[o].
Tensor dequantized_weight(const QuantizedWeights& qw, const Shape& shape) {
  Tensor w{shape};
  const int64_t out = static_cast<int64_t>(qw.scale.size());
  const int64_t k = w.numel() / out;
  for (int64_t o = 0; o < out; ++o) {
    const float s = qw.scale[static_cast<size_t>(o)];
    const int8_t* row = qw.q.data() + o * k;
    float* dst = w.data() + o * k;
    for (int64_t j = 0; j < k; ++j) dst[j] = static_cast<float>(row[j]) * s;
  }
  return w;
}

/// std::streambuf that counts bytes without storing them.
class CountingBuf : public std::streambuf {
 public:
  int64_t count = 0;

 protected:
  int overflow(int ch) override {
    ++count;
    return ch;
  }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    count += n;
    return n;
  }
};

/// The unframed kind + config + tensors payload of one layer. Nested layers
/// (Sequential / ResidualBlock children) go through the public framed
/// save_layer, so every node in the tree carries its own checksum and the
/// root frame covers the whole image.
void save_layer_body(std::ostream& os, const Layer& layer) {
  write_string(os, layer.kind());
  if (const auto* conv = dynamic_cast<const Conv2d*>(&layer)) {
    write_i64(os, conv->in_channels());
    write_i64(os, conv->out_channels());
    write_i64(os, conv->options().kernel);
    write_i64(os, conv->options().stride);
    write_i64(os, conv->options().pad);
    write_u32(os, conv->has_bias() ? 1 : 0);
    write_u32(os, conv->quantized() ? 1 : 0);  // format v3
    if (conv->quantized()) {
      write_quant(os, conv->quant());
    } else {
      write_tensor(os, conv->weight());
    }
    if (conv->has_bias()) write_tensor(os, const_cast<Conv2d*>(conv)->bias());
  } else if (const auto* dw = dynamic_cast<const DepthwiseConv2d*>(&layer)) {
    write_i64(os, dw->channels());
    write_i64(os, dw->options().kernel);
    write_i64(os, dw->options().stride);
    write_i64(os, dw->options().pad);
    write_u32(os, dw->has_bias() ? 1 : 0);  // format v2
    write_tensor(os, dw->weight());
    if (dw->has_bias()) {
      write_tensor(os, const_cast<DepthwiseConv2d*>(dw)->bias());
    }
  } else if (const auto* bn = dynamic_cast<const BatchNorm2d*>(&layer)) {
    write_i64(os, bn->channels());
    write_f32(os, bn->eps());
    write_f32(os, bn->momentum());
    write_tensor(os, bn->gamma());
    write_tensor(os, bn->beta());
    write_tensor(os, bn->running_mean());
    write_tensor(os, bn->running_var());
  } else if (dynamic_cast<const ReLU*>(&layer) != nullptr) {
    // no state
  } else if (const auto* lrelu = dynamic_cast<const LeakyReLU*>(&layer)) {
    write_f32(os, lrelu->alpha());
  } else if (dynamic_cast<const Tanh*>(&layer) != nullptr) {
    // no state
  } else if (dynamic_cast<const Sigmoid*>(&layer) != nullptr) {
    // no state
  } else if (const auto* drop = dynamic_cast<const Dropout*>(&layer)) {
    write_f32(os, static_cast<float>(drop->p()));
    write_i64(os, static_cast<int64_t>(drop->seed()));
  } else if (const auto* pool = dynamic_cast<const MaxPool2d*>(&layer)) {
    write_i64(os, pool->kernel());
    write_i64(os, pool->stride());
  } else if (const auto* apool = dynamic_cast<const AvgPool2d*>(&layer)) {
    write_i64(os, apool->kernel());
    write_i64(os, apool->stride());
  } else if (dynamic_cast<const GlobalAvgPool2d*>(&layer) != nullptr) {
    // no state
  } else if (dynamic_cast<const Flatten*>(&layer) != nullptr) {
    // no state
  } else if (const auto* dense = dynamic_cast<const Dense*>(&layer)) {
    write_i64(os, dense->in_features());
    write_i64(os, dense->out_features());
    write_u32(os, dense->has_bias() ? 1 : 0);
    write_u32(os, dense->quantized() ? 1 : 0);  // format v3
    if (dense->quantized()) {
      write_quant(os, dense->quant());
    } else {
      write_tensor(os, dense->weight());
    }
    if (dense->has_bias()) write_tensor(os, const_cast<Dense*>(dense)->bias());
  } else if (const auto* seq = dynamic_cast<const Sequential*>(&layer)) {
    write_u32(os, static_cast<uint32_t>(seq->size()));
    for (int i = 0; i < seq->size(); ++i) save_layer(os, seq->layer(i));
  } else if (const auto* res = dynamic_cast<const ResidualBlock*>(&layer)) {
    auto& block = const_cast<ResidualBlock&>(*res);
    write_i64(os, res->in_channels());
    write_i64(os, res->out_channels());
    write_i64(os, res->stride());
    write_i64(os, res->internal_channels());
    save_layer(os, block.conv1());
    save_layer(os, block.bn1());
    save_layer(os, block.conv2());
    save_layer(os, block.bn2());
    if (res->has_downsample()) {
      save_layer(os, block.down_conv());
      save_layer(os, block.down_bn());
    }
  } else {
    throw std::runtime_error("save_layer: unsupported layer kind '" +
                             layer.kind() + "'");
  }
}

/// Parses one unframed layer body. Nested layers recurse through the public
/// load_layer, which strips (and verifies) their own frames on v4 streams.
std::unique_ptr<Layer> load_layer_body(std::istream& is, uint32_t version) {
  const std::string kind = read_string(is);
  Rng rng(0);  // weights are overwritten right after construction
  if (kind == "Conv2d") {
    const int64_t in_c = read_i64(is);
    const int64_t out_c = read_i64(is);
    Conv2d::Options opt;
    opt.kernel = read_i64(is);
    opt.stride = read_i64(is);
    opt.pad = read_i64(is);
    opt.bias = read_u32(is) != 0;
    auto conv = std::make_unique<Conv2d>(in_c, out_c, opt, rng);
    const bool quantized = version >= 3 && read_u32(is) != 0;
    if (quantized) {
      const int64_t k = in_c * opt.kernel * opt.kernel;
      QuantizedWeights qw = read_quant(is, out_c, k);
      conv->weight() =
          dequantized_weight(qw, Shape{out_c, in_c, opt.kernel, opt.kernel});
      conv->set_quantized(std::move(qw));
    } else {
      conv->weight() = read_tensor(is);
      if (conv->weight().shape() !=
          Shape{out_c, in_c, opt.kernel, opt.kernel}) {
        throw std::runtime_error("load_layer: Conv2d weight shape mismatch");
      }
    }
    if (opt.bias) conv->bias() = read_tensor(is);
    return conv;
  }
  if (kind == "DepthwiseConv2d") {
    const int64_t channels = read_i64(is);
    DepthwiseConv2d::Options opt;
    opt.kernel = read_i64(is);
    opt.stride = read_i64(is);
    opt.pad = read_i64(is);
    // v1 depthwise layers had no bias parameter (and no flag in the stream).
    opt.bias = version >= 2 && read_u32(is) != 0;
    auto dw = std::make_unique<DepthwiseConv2d>(channels, opt, rng);
    dw->weight() = read_tensor(is);
    if (dw->weight().shape() != Shape{channels, opt.kernel, opt.kernel}) {
      throw std::runtime_error("load_layer: DepthwiseConv2d shape mismatch");
    }
    if (opt.bias) dw->bias() = read_tensor(is);
    return dw;
  }
  if (kind == "BatchNorm2d") {
    const int64_t c = read_i64(is);
    const float eps = read_f32(is);
    const float momentum = read_f32(is);
    auto bn = std::make_unique<BatchNorm2d>(c, eps, momentum);
    bn->gamma() = read_tensor(is);
    bn->beta() = read_tensor(is);
    bn->running_mean() = read_tensor(is);
    bn->running_var() = read_tensor(is);
    if (bn->gamma().numel() != c) {
      throw std::runtime_error("load_layer: BatchNorm2d shape mismatch");
    }
    return bn;
  }
  if (kind == "ReLU") return std::make_unique<ReLU>();
  if (kind == "LeakyReLU") {
    const float alpha = read_f32(is);
    return std::make_unique<LeakyReLU>(alpha);
  }
  if (kind == "Tanh") return std::make_unique<Tanh>();
  if (kind == "Sigmoid") return std::make_unique<Sigmoid>();
  if (kind == "Dropout") {
    const float p = read_f32(is);
    const int64_t seed = read_i64(is);
    return std::make_unique<Dropout>(p, static_cast<uint64_t>(seed));
  }
  if (kind == "MaxPool2d") {
    const int64_t k = read_i64(is);
    const int64_t s = read_i64(is);
    return std::make_unique<MaxPool2d>(k, s);
  }
  if (kind == "AvgPool2d") {
    const int64_t k = read_i64(is);
    const int64_t s = read_i64(is);
    return std::make_unique<AvgPool2d>(k, s);
  }
  if (kind == "GlobalAvgPool2d") return std::make_unique<GlobalAvgPool2d>();
  if (kind == "Flatten") return std::make_unique<Flatten>();
  if (kind == "Dense") {
    const int64_t in_f = read_i64(is);
    const int64_t out_f = read_i64(is);
    const bool bias = read_u32(is) != 0;
    auto dense = std::make_unique<Dense>(in_f, out_f, rng, bias);
    const bool quantized = version >= 3 && read_u32(is) != 0;
    if (quantized) {
      QuantizedWeights qw = read_quant(is, out_f, in_f);
      dense->weight() = dequantized_weight(qw, Shape{out_f, in_f});
      dense->set_quantized(std::move(qw));
    } else {
      dense->weight() = read_tensor(is);
      if (dense->weight().shape() != Shape{out_f, in_f}) {
        throw std::runtime_error("load_layer: Dense weight shape mismatch");
      }
    }
    if (bias) dense->bias() = read_tensor(is);
    return dense;
  }
  if (kind == "Sequential") {
    const uint32_t n = read_u32(is);
    auto seq = std::make_unique<Sequential>();
    for (uint32_t i = 0; i < n; ++i) seq->add(load_layer(is, version));
    return seq;
  }
  if (kind == "ResidualBlock") {
    const int64_t in_c = read_i64(is);
    const int64_t out_c = read_i64(is);
    const int64_t stride = read_i64(is);
    const int64_t internal = read_i64(is);
    auto block = std::make_unique<ResidualBlock>(in_c, out_c, stride, rng);
    if (internal != out_c) {
      // Re-create the pruned internal width, then overwrite the weights.
      std::vector<int64_t> keep(static_cast<size_t>(internal));
      for (int64_t i = 0; i < internal; ++i) keep[static_cast<size_t>(i)] = i;
      block->prune_internal(keep);
    }
    auto copy_into = [&is, version](Conv2d& conv, BatchNorm2d& bn) {
      auto loaded_conv = load_layer(is, version);
      auto loaded_bn = load_layer(is, version);
      auto* c = dynamic_cast<Conv2d*>(loaded_conv.get());
      auto* b = dynamic_cast<BatchNorm2d*>(loaded_bn.get());
      if (!c || !b) {
        throw std::runtime_error("load_layer: malformed ResidualBlock");
      }
      conv.weight() = c->weight();
      // A quantized member keeps its quantization through the reload (the
      // weight copy above is only the f32 fallback).
      if (c->quantized()) conv.set_quantized(QuantizedWeights(c->quant()));
      bn.gamma() = b->gamma();
      bn.beta() = b->beta();
      bn.running_mean() = b->running_mean();
      bn.running_var() = b->running_var();
    };
    copy_into(block->conv1(), block->bn1());
    copy_into(block->conv2(), block->bn2());
    if (block->has_downsample()) {
      copy_into(block->down_conv(), block->down_bn());
    }
    return block;
  }
  throw std::runtime_error("load_layer: unknown layer kind '" + kind + "'");
}

}  // namespace

void save_layer(std::ostream& os, const Layer& layer) {
  // Frame (format v4): buffer the body, then emit crc + len + bytes so the
  // loader can verify the section before parsing a single field of it.
  std::ostringstream body;
  save_layer_body(body, layer);
  const std::string bytes = body.str();
  write_u32(os, crc32c(bytes.data(), bytes.size()));
  write_i64(os, static_cast<int64_t>(bytes.size()));
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::unique_ptr<Layer> load_layer(std::istream& is, uint32_t version) {
  if (version < 4) return load_layer_body(is, version);
  const uint32_t crc = read_u32(is);
  const int64_t len = read_i64(is);
  if (len < 0 || len > (1ll << 33)) {
    throw std::runtime_error("model stream: bad layer section length");
  }
  std::string bytes(static_cast<size_t>(len), '\0');
  is.read(bytes.data(), static_cast<std::streamsize>(len));
  if (!is) throw std::runtime_error("model stream truncated (layer section)");
  if (crc32c(bytes.data(), bytes.size()) != crc) {
    throw IntegrityError(
        "layer section checksum mismatch — corrupted model image");
  }
  std::istringstream body(bytes, std::ios::binary);
  return load_layer_body(body, version);
}

void save_model(std::ostream& os, const Layer& model) {
  char header[8] = {'T', 'B', 'N', 'M'};
  const uint32_t version = kModelFormatVersion;
  std::memcpy(header + 4, &version, sizeof(version));
  os.write(header, sizeof(header));
  write_u32(os, crc32c(header, sizeof(header)));  // format v4
  save_layer(os, model);
}

std::unique_ptr<Layer> load_model(std::istream& is) {
  char header[8] = {};
  is.read(header, 4);
  if (!is || std::memcmp(header, "TBNM", 4) != 0) {
    throw std::runtime_error("load_model: bad magic");
  }
  const uint32_t version = read_u32(is);
  if (version < 1 || version > kModelFormatVersion) {
    throw std::runtime_error("load_model: unsupported version " +
                             std::to_string(version));
  }
  if (version >= 4) {
    std::memcpy(header + 4, &version, sizeof(version));
    if (read_u32(is) != crc32c(header, sizeof(header))) {
      throw IntegrityError(
          "model header checksum mismatch — corrupted model image");
    }
  }
  return load_layer(is, version);
}

void save_model_file(const std::string& path, const Layer& model) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("save_model_file: cannot open " + path);
  save_model(f, model);
}

std::unique_ptr<Layer> load_model_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_model_file: cannot open " + path);
  return load_model(f);
}

int64_t serialized_size(const Layer& model) {
  CountingBuf buf;
  std::ostream os(&buf);
  save_model(os, model);
  return buf.count;
}

}  // namespace tbnet::nn
