#pragma once
// Layer: the interface every network building block implements.
//
// tbnet uses classic define-by-layer backprop (no tape autograd): each layer
// caches what it needs during forward(train=true) and exposes backward() that
// consumes dLoss/dOutput and returns dLoss/dInput, accumulating parameter
// gradients internally. This is sufficient for the chain / two-branch
// topologies in this project and keeps the memory profile predictable, which
// matters for the TEE memory accounting.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/execution_context.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace tbnet::nn {

/// A named, non-owning view of one learnable parameter and its gradient.
struct ParamRef {
  std::string name;     ///< e.g. "conv1.weight"
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  bool apply_weight_decay = true;  ///< BN scale/shift usually exempted.
};

/// Abstract network layer operating on float tensors.
///
/// Convolutional layers use NCHW batches; Dense/Flatten use [N, features].
///
/// The virtual interface is context-aware: forward/backward take the
/// ExecutionContext whose arena provides scratch and whose pool shards the
/// kernels. The context-free overloads are thin non-virtual shims that run
/// on the calling thread's default context, so pre-context call sites
/// (trainers, tests, examples) keep working unchanged. Subclasses must pull
/// the shims back into scope with `using Layer::forward; using
/// Layer::backward;`.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output. When `train` is true the layer caches the
  /// activations it needs for backward() and (for BatchNorm) updates running
  /// statistics. Arena allocations made from `ctx` do not outlive the call.
  virtual Tensor forward(ExecutionContext& ctx, const Tensor& input,
                         bool train) = 0;

  /// Back-propagates `grad_output` (dLoss/dOutput of the *last* forward call
  /// with train=true), accumulating parameter gradients and returning
  /// dLoss/dInput.
  virtual Tensor backward(ExecutionContext& ctx, const Tensor& grad_output) = 0;

  /// Compatibility shims: run on the calling thread's default context.
  Tensor forward(const Tensor& input, bool train) {
    return forward(default_execution_context(), input, train);
  }
  Tensor backward(const Tensor& grad_output) {
    return backward(default_execution_context(), grad_output);
  }

  /// Learnable parameters (empty for stateless layers).
  virtual std::vector<ParamRef> params() { return {}; }

  /// Sets all parameter gradients to zero.
  void zero_grad();

  /// Layer type tag used in logs and serialization ("Conv2d", ...).
  virtual std::string kind() const = 0;

  /// Deep copy, including parameters and running statistics, excluding any
  /// cached forward state.
  virtual std::unique_ptr<Layer> clone() const = 0;

  /// Output shape for a given input shape (throws on incompatible input).
  virtual Shape out_shape(const Shape& in) const = 0;

  /// Multiply-accumulate count of one forward pass on `in` (0 for reshape
  /// style layers). Used by the TEE latency cost model.
  virtual int64_t macs(const Shape& in) const = 0;

  /// Bytes of learnable + buffer state that must live in device memory.
  virtual int64_t param_bytes() const;

  /// Deploy-time hook: pre-packs weight panels for the packed GEMM fast path
  /// and (for containers) builds the conv+BN+activation fusion plan, using
  /// `ctx`'s arena for long-lived packed storage. Call only on a model that
  /// will no longer be trained, pruned, or have weights edited — a layer
  /// whose weights change after prepare_inference must be re-prepared
  /// (clone() resets to unprepared). No-op by default and under
  /// TBNET_DETERMINISTIC=1.
  virtual void prepare_inference(ExecutionContext& ctx) { (void)ctx; }
};

}  // namespace tbnet::nn
