#pragma once
// fuse.h — deploy-time BatchNorm folding.
//
// An inference-mode BatchNorm2d is the affine map y = x*scale[c] + shift[c]
// (BatchNorm2d::inference_scale_shift). When it directly follows a Conv2d
// over the same channels, the affine folds into the conv weights and bias:
//
//   W'[o, ...] = W[o, ...] * scale[o]
//   b'[o]      = b[o] * scale[o] + shift[o]
//
// so the deployed model ships without the BN layer at all — no extra pass
// over the feature map, a smaller TA image, and one fewer layer of secure
// memory accounting. Depthwise convolutions fold the same way since they
// grew an optional bias (model format v2), so MobileNet-style TA images
// shrink like the conv ones; Sequential's fusion plan still executes any
// remaining dw+BN+ReLU run as a single pass at runtime.
//
// Folding is destructive for training: the folded conv can no longer be
// fine-tuned as conv+BN. Apply it only to deployment clones — DeployedTBNet
// and TwoBranchModel::fold_batchnorm() do this; nothing in the training or
// pruning pipeline calls it.

#include "nn/sequential.h"

namespace tbnet::nn {

/// Folds every [Conv2d -> BatchNorm2d] and [DepthwiseConv2d -> BatchNorm2d]
/// pair in `seq` (recursing into nested Sequentials) into the conv, removing
/// the BN layers. Returns the number of folds performed. ResidualBlock
/// members are left intact (their fused eval path handles BN in the
/// epilogue).
int fold_batchnorm_inference(Sequential& seq);

}  // namespace tbnet::nn
