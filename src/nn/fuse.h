#pragma once
// fuse.h — deploy-time BatchNorm folding.
//
// An inference-mode BatchNorm2d is the affine map y = x*scale[c] + shift[c]
// (BatchNorm2d::inference_scale_shift). When it directly follows a Conv2d
// over the same channels, the affine folds into the conv weights and bias:
//
//   W'[o, ...] = W[o, ...] * scale[o]
//   b'[o]      = b[o] * scale[o] + shift[o]
//
// so the deployed model ships without the BN layer at all — no extra pass
// over the feature map, a smaller TA image, and one fewer layer of secure
// memory accounting. Depthwise convolutions fold the same way since they
// grew an optional bias (model format v2), so MobileNet-style TA images
// shrink like the conv ones; Sequential's fusion plan still executes any
// remaining dw+BN+ReLU run as a single pass at runtime.
//
// Folding is destructive for training: the folded conv can no longer be
// fine-tuned as conv+BN. Apply it only to deployment clones — DeployedTBNet
// and TwoBranchModel::fold_batchnorm() do this; nothing in the training or
// pruning pipeline calls it.

#include "nn/conv2d.h"
#include "nn/depthwise.h"
#include "nn/sequential.h"

namespace tbnet::nn {

/// Folds every [Conv2d -> BatchNorm2d] and [DepthwiseConv2d -> BatchNorm2d]
/// pair in `seq` (recursing into nested Sequentials) into the conv, removing
/// the BN layers. Returns the number of folds performed. ResidualBlock
/// members are left intact (their fused eval path handles BN in the
/// epilogue).
int fold_batchnorm_inference(Sequential& seq);

/// Fused depthwise→pointwise forward (eval-only, fast kernels):
///
///   y = pw_ep( PW_1x1( dw_act(DW(x) * dw_scale[c] + dw_shift[c]) ) )
///
/// without ever materializing the depthwise output tensor. The pointwise
/// conv's GEMM is C[out_c, oh*ow] = W[out_c, in_c] * D[in_c, oh*ow], where
/// row c of D is depthwise output plane c — so the packed driver's B-panel
/// producer (packdetail::run_packed_b_producer) asks the depthwise row
/// kernel (simd::dw_row_kernel) for each [kc x 16] slab directly, and the
/// NCHW intermediate never exists. Each depthwise output element lands in
/// exactly one panel, so nothing is computed twice, and the row kernel's
/// segment-invariance contract makes the result bit-identical to running
/// dw.forward_fused followed by pw.forward_fused.
///
/// Requirements (the Sequential fusion planner enforces them): pw is 1x1
/// stride-1 pad-0 with in_channels == dw.channels(); dw.options().kernel <=
/// DepthwiseConv2d::kMaxSimdKernel; simd::fast_kernels_enabled(). dw_scale /
/// dw_shift are per-channel (nullptr = identity) and must already compose
/// dw's own bias; pw_ep rows are pointwise output channels and must compose
/// pw's bias. Uses pw.packed_weight() when prepare_inference cached it, else
/// packs per call from ctx's arena.
Tensor forward_depthwise_pointwise(ExecutionContext& ctx, const Tensor& x,
                                   const DepthwiseConv2d& dw,
                                   const float* dw_scale,
                                   const float* dw_shift, simd::Act dw_act,
                                   const Conv2d& pw, const GemmEpilogue& pw_ep);

/// Size gate for the dw→pw producer fusion. The fused form wins by never
/// materializing the depthwise map, but its pointwise GEMM has k =
/// `channels` — on SHALLOW maps (k <= 32) that is too little arithmetic to
/// amortize producing each B panel, and on WIDE maps (`cols` = oh*ow of the
/// depthwise output >= 1024) there are many panels to produce, so the
/// combination measured ~0.75x the back-to-back pair (PR 4,
/// BENCH_kernels.json "depthwise_fused", dwpw_32to64_32x32_s1). Deeper
/// stacks amortize fine and narrow maps produce few panels, so everything
/// else stays fused. Sequential's plan keeps the fused step and consults
/// this per input shape at dispatch; both paths are bit-identical, so the
/// gate is a pure latency knob.
bool fuse_dw_pw_profitable(int64_t channels, int64_t cols);

}  // namespace tbnet::nn
