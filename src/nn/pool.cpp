#include "nn/pool.h"

#include <limits>
#include <stdexcept>

namespace tbnet::nn {

MaxPool2d::MaxPool2d(int64_t kernel, int64_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  if (kernel_ <= 0 || stride_ <= 0) {
    throw std::invalid_argument("MaxPool2d: kernel/stride must be positive");
  }
}

Shape MaxPool2d::out_shape(const Shape& in) const {
  if (in.ndim() != 4) {
    throw std::invalid_argument("MaxPool2d: expected NCHW, got " + in.str());
  }
  if (in.dim(2) < kernel_ || in.dim(3) < kernel_) {
    throw std::invalid_argument("MaxPool2d: window larger than input");
  }
  const int64_t oh = (in.dim(2) - kernel_) / stride_ + 1;
  const int64_t ow = (in.dim(3) - kernel_) / stride_ + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("MaxPool2d: window larger than input");
  }
  return Shape{in.dim(0), in.dim(1), oh, ow};
}

int64_t MaxPool2d::macs(const Shape& in) const {
  return out_shape(in).numel() * kernel_ * kernel_;
}

Tensor MaxPool2d::forward(ExecutionContext&, const Tensor& input, bool train) {
  const Shape os = out_shape(input.shape());
  const int64_t n = input.dim(0), c = input.dim(1), ih = input.dim(2),
                iw = input.dim(3);
  const int64_t oh = os.dim(2), ow = os.dim(3);
  Tensor out(os);
  if (train) {
    argmax_.assign(static_cast<size_t>(out.numel()), 0);
    cached_in_shape_ = input.shape();
  }
  int64_t oi = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = input.data() + (i * c + ch) * ih * iw;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = 0;
          for (int64_t ky = 0; ky < kernel_; ++ky) {
            const int64_t iy = oy * stride_ + ky;
            for (int64_t kx = 0; kx < kernel_; ++kx) {
              const int64_t ix = ox * stride_ + kx;
              const int64_t idx = iy * iw + ix;
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = (i * c + ch) * ih * iw + idx;
              }
            }
          }
          out[oi] = best;
          if (train) argmax_[static_cast<size_t>(oi)] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(ExecutionContext&, const Tensor& grad_output) {
  if (argmax_.empty()) {
    throw std::logic_error("MaxPool2d::backward before forward(train)");
  }
  if (static_cast<size_t>(grad_output.numel()) != argmax_.size()) {
    throw std::invalid_argument("MaxPool2d::backward: grad shape mismatch");
  }
  Tensor grad_input(cached_in_shape_);
  for (int64_t i = 0; i < grad_output.numel(); ++i) {
    grad_input[argmax_[static_cast<size_t>(i)]] += grad_output[i];
  }
  return grad_input;
}

std::unique_ptr<Layer> MaxPool2d::clone() const {
  return std::make_unique<MaxPool2d>(kernel_, stride_);
}

AvgPool2d::AvgPool2d(int64_t kernel, int64_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  if (kernel_ <= 0 || stride_ <= 0) {
    throw std::invalid_argument("AvgPool2d: kernel/stride must be positive");
  }
}

Shape AvgPool2d::out_shape(const Shape& in) const {
  if (in.ndim() != 4) {
    throw std::invalid_argument("AvgPool2d: expected NCHW, got " + in.str());
  }
  if (in.dim(2) < kernel_ || in.dim(3) < kernel_) {
    throw std::invalid_argument("AvgPool2d: window larger than input");
  }
  const int64_t oh = (in.dim(2) - kernel_) / stride_ + 1;
  const int64_t ow = (in.dim(3) - kernel_) / stride_ + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("AvgPool2d: window larger than input");
  }
  return Shape{in.dim(0), in.dim(1), oh, ow};
}

int64_t AvgPool2d::macs(const Shape& in) const {
  return out_shape(in).numel() * kernel_ * kernel_;
}

Tensor AvgPool2d::forward(ExecutionContext&, const Tensor& input, bool train) {
  const Shape os = out_shape(input.shape());
  const int64_t n = input.dim(0), c = input.dim(1), ih = input.dim(2),
                iw = input.dim(3);
  const int64_t oh = os.dim(2), ow = os.dim(3);
  Tensor out(os);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  int64_t oi = 0;
  for (int64_t i = 0; i < n * c; ++i) {
    const float* plane = input.data() + i * ih * iw;
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox, ++oi) {
        float acc = 0.0f;
        for (int64_t ky = 0; ky < kernel_; ++ky) {
          const float* row = plane + (oy * stride_ + ky) * iw + ox * stride_;
          for (int64_t kx = 0; kx < kernel_; ++kx) acc += row[kx];
        }
        out[oi] = acc * inv;
      }
    }
  }
  if (train) cached_in_shape_ = input.shape();
  return out;
}

Tensor AvgPool2d::backward(ExecutionContext&, const Tensor& grad_output) {
  if (cached_in_shape_.ndim() != 4) {
    throw std::logic_error("AvgPool2d::backward before forward(train)");
  }
  if (grad_output.shape() != out_shape(cached_in_shape_)) {
    throw std::invalid_argument("AvgPool2d::backward: grad shape mismatch");
  }
  const int64_t n = cached_in_shape_.dim(0), c = cached_in_shape_.dim(1),
                ih = cached_in_shape_.dim(2), iw = cached_in_shape_.dim(3);
  const int64_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  Tensor grad_input(cached_in_shape_);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  int64_t oi = 0;
  for (int64_t i = 0; i < n * c; ++i) {
    float* plane = grad_input.data() + i * ih * iw;
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox, ++oi) {
        const float g = grad_output[oi] * inv;
        for (int64_t ky = 0; ky < kernel_; ++ky) {
          float* row = plane + (oy * stride_ + ky) * iw + ox * stride_;
          for (int64_t kx = 0; kx < kernel_; ++kx) row[kx] += g;
        }
      }
    }
  }
  return grad_input;
}

std::unique_ptr<Layer> AvgPool2d::clone() const {
  return std::make_unique<AvgPool2d>(kernel_, stride_);
}

Shape GlobalAvgPool2d::out_shape(const Shape& in) const {
  if (in.ndim() != 4) {
    throw std::invalid_argument("GlobalAvgPool2d: expected NCHW, got " + in.str());
  }
  return Shape{in.dim(0), in.dim(1), 1, 1};
}

Tensor GlobalAvgPool2d::forward(ExecutionContext&, const Tensor& input, bool train) {
  const int64_t n = input.dim(0), c = input.dim(1);
  const int64_t spatial = input.dim(2) * input.dim(3);
  Tensor out(out_shape(input.shape()));
  for (int64_t i = 0; i < n * c; ++i) {
    const float* src = input.data() + i * spatial;
    double acc = 0.0;
    for (int64_t p = 0; p < spatial; ++p) acc += src[p];
    out[i] = static_cast<float>(acc / static_cast<double>(spatial));
  }
  if (train) cached_in_shape_ = input.shape();
  return out;
}

Tensor GlobalAvgPool2d::backward(ExecutionContext&, const Tensor& grad_output) {
  if (cached_in_shape_.ndim() != 4) {
    throw std::logic_error("GlobalAvgPool2d::backward before forward(train)");
  }
  const int64_t n = cached_in_shape_.dim(0), c = cached_in_shape_.dim(1);
  const int64_t spatial = cached_in_shape_.dim(2) * cached_in_shape_.dim(3);
  if (grad_output.numel() != n * c) {
    throw std::invalid_argument("GlobalAvgPool2d::backward: grad mismatch");
  }
  Tensor grad_input(cached_in_shape_);
  const float inv = 1.0f / static_cast<float>(spatial);
  for (int64_t i = 0; i < n * c; ++i) {
    const float g = grad_output[i] * inv;
    float* dst = grad_input.data() + i * spatial;
    for (int64_t p = 0; p < spatial; ++p) dst[p] = g;
  }
  return grad_input;
}

std::unique_ptr<Layer> GlobalAvgPool2d::clone() const {
  return std::make_unique<GlobalAvgPool2d>();
}

}  // namespace tbnet::nn
