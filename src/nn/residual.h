#pragma once
// ResidualBlock — CIFAR-style basic block (He et al.).
//
//   out = ReLU( BN2(Conv2(ReLU(BN1(Conv1(x))))) + skip(x) )
//
// skip(x) is the identity when shapes match, otherwise a strided 1x1
// convolution + BN ("downsample"). This is the secure-branch (M_T) block for
// ResNet victims; the unsecured branch M_R uses the plain (skip-free)
// Sequential version of the same stack, per the paper's initialization rule.

#include <memory>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/layer.h"
#include "nn/sequential.h"

namespace tbnet::nn {

class ResidualBlock : public Layer {
 public:
  ResidualBlock(int64_t in_c, int64_t out_c, int64_t stride, Rng& rng);

  using Layer::forward;
  using Layer::backward;
  Tensor forward(ExecutionContext& ctx, const Tensor& input,
                 bool train) override;
  Tensor backward(ExecutionContext& ctx, const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::string kind() const override { return "ResidualBlock"; }
  std::unique_ptr<Layer> clone() const override;
  Shape out_shape(const Shape& in) const override;
  int64_t macs(const Shape& in) const override;
  int64_t param_bytes() const override;

  bool has_downsample() const { return down_conv_ != nullptr; }
  int64_t in_channels() const { return in_c_; }
  int64_t out_channels() const { return out_c_; }
  int64_t internal_channels() const { return conv1_->out_channels(); }
  int64_t stride() const { return stride_; }

  Conv2d& conv1() { return *conv1_; }
  BatchNorm2d& bn1() { return *bn1_; }
  Conv2d& conv2() { return *conv2_; }
  BatchNorm2d& bn2() { return *bn2_; }
  /// Downsample path accessors; only valid when has_downsample().
  Conv2d& down_conv() { return *down_conv_; }
  BatchNorm2d& down_bn() { return *down_bn_; }

  /// Prunes the block-internal channels (conv1 outputs / bn1 / conv2 inputs);
  /// the block's external interface (in_c, out_c) is unchanged, which keeps
  /// the skip path and the fusion interface intact.
  void prune_internal(const std::vector<int64_t>& keep);

  /// Packs the conv weights and switches eval-mode forward to the fused
  /// path: conv1+BN1+ReLU and conv2+BN2 (and the downsample conv+BN) each
  /// run as a single GEMM with the BN affine in the epilogue. The block's
  /// structure (and thus serialization) is unchanged; clone() resets to the
  /// unfused path. See Layer::prepare_inference for the contract.
  void prepare_inference(ExecutionContext& ctx) override;

 private:
  Tensor forward_fused_eval(ExecutionContext& ctx, const Tensor& input);

  int64_t in_c_, out_c_, stride_;
  std::unique_ptr<Conv2d> conv1_;
  std::unique_ptr<BatchNorm2d> bn1_;
  std::unique_ptr<Conv2d> conv2_;
  std::unique_ptr<BatchNorm2d> bn2_;
  std::unique_ptr<Conv2d> down_conv_;      // nullptr if identity skip
  std::unique_ptr<BatchNorm2d> down_bn_;

  // Forward caches.
  std::vector<uint8_t> relu1_mask_, relu_out_mask_;
  Tensor cached_input_;
  Shape mid_shape_, out_shape_cache_;
  bool prepared_ = false;  ///< set by prepare_inference
  // Composed BN scale/shift for the fused eval path, cached by
  // prepare_inference (the block is frozen once prepared).
  std::vector<float> fused_s1_, fused_t1_, fused_s2_, fused_t2_;
  std::vector<float> fused_sd_, fused_td_;  ///< downsample; empty without one
};

/// Builds the skip-free ("plain") Sequential version of a residual block:
/// Conv1-BN1-ReLU-Conv2-BN2-ReLU. Weights are freshly initialized; use
/// copy_main_branch() to fill them from a victim block.
Sequential plain_block_like(const ResidualBlock& block, Rng& rng);

/// Copies conv/BN weights of `src`'s main branch into a plain block created
/// by plain_block_like().
void copy_main_branch(const ResidualBlock& src, Sequential& dst);

}  // namespace tbnet::nn
