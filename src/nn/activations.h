#pragma once
// Elementwise activation layers.

#include "nn/layer.h"

namespace tbnet::nn {

/// Rectified linear unit. Works on any rank; caches the sign mask.
class ReLU : public Layer {
 public:
  using Layer::forward;
  using Layer::backward;
  Tensor forward(ExecutionContext& ctx, const Tensor& input,
                 bool train) override;
  Tensor backward(ExecutionContext& ctx, const Tensor& grad_output) override;
  std::string kind() const override { return "ReLU"; }
  std::unique_ptr<Layer> clone() const override;
  Shape out_shape(const Shape& in) const override { return in; }
  int64_t macs(const Shape& in) const override { return in.numel(); }

 private:
  std::vector<uint8_t> mask_;
  Shape cached_shape_;
};

/// max(x, alpha*x); alpha in [0, 1).
class LeakyReLU : public Layer {
 public:
  explicit LeakyReLU(float alpha = 0.01f);

  using Layer::forward;
  using Layer::backward;
  Tensor forward(ExecutionContext& ctx, const Tensor& input,
                 bool train) override;
  Tensor backward(ExecutionContext& ctx, const Tensor& grad_output) override;
  std::string kind() const override { return "LeakyReLU"; }
  std::unique_ptr<Layer> clone() const override;
  Shape out_shape(const Shape& in) const override { return in; }
  int64_t macs(const Shape& in) const override { return in.numel(); }

  float alpha() const { return alpha_; }

 private:
  float alpha_;
  std::vector<uint8_t> mask_;
  Shape cached_shape_;
};

/// Hyperbolic tangent.
class Tanh : public Layer {
 public:
  using Layer::forward;
  using Layer::backward;
  Tensor forward(ExecutionContext& ctx, const Tensor& input,
                 bool train) override;
  Tensor backward(ExecutionContext& ctx, const Tensor& grad_output) override;
  std::string kind() const override { return "Tanh"; }
  std::unique_ptr<Layer> clone() const override;
  Shape out_shape(const Shape& in) const override { return in; }
  int64_t macs(const Shape& in) const override { return 4 * in.numel(); }

 private:
  Tensor cached_output_;
};

/// Logistic sigmoid.
class Sigmoid : public Layer {
 public:
  using Layer::forward;
  using Layer::backward;
  Tensor forward(ExecutionContext& ctx, const Tensor& input,
                 bool train) override;
  Tensor backward(ExecutionContext& ctx, const Tensor& grad_output) override;
  std::string kind() const override { return "Sigmoid"; }
  std::unique_ptr<Layer> clone() const override;
  Shape out_shape(const Shape& in) const override { return in; }
  int64_t macs(const Shape& in) const override { return 4 * in.numel(); }

 private:
  Tensor cached_output_;
};

}  // namespace tbnet::nn
