#pragma once
// Weight initialization schemes.

#include <cstdint>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace tbnet::nn {

/// He/Kaiming normal init: N(0, sqrt(2/fan_in)); the standard for
/// ReLU networks (victim models and the fresh secure branch both use it).
void kaiming_normal(Tensor& w, int64_t fan_in, Rng& rng);

/// Xavier/Glorot uniform init: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
void xavier_uniform(Tensor& w, int64_t fan_in, int64_t fan_out, Rng& rng);

}  // namespace tbnet::nn
