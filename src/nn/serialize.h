#pragma once
// Binary model (de)serialization.
//
// Format: a small tagged tree mirroring the layer structure. This is the
// on-disk / in-TA ("trusted application") representation used by the
// deployment packager: the secure branch M_T is serialized with this code,
// measured, and loaded inside the simulated TEE.
//
//   file    := magic "TBNM" u32(version) layer
//   layer   := string(kind) kind-specific-config tensors
//
// All integers little-endian; tensors are rank + dims + raw float32.

#include <iosfwd>
#include <memory>

#include "nn/layer.h"

namespace tbnet::nn {

/// Version history:
///   1 — initial format.
///   2 — DepthwiseConv2d gains an optional bias (has_bias flag + tensor),
///       so deploy-time BN folding can absorb into depthwise stages too.
///   3 — Conv2d / Dense gain a quantized flag: a quantized layer ships its
///       per-channel scales, activation quantizer, and raw int8 weight bytes
///       INSTEAD of the float32 weight (~4x smaller TA images); the loader
///       rebuilds the f32 fallback as q * scale and re-attaches the
///       quantization (nn/quant.h).
/// Writers always emit the current version; load_model accepts any version
/// back to 1 (a v1 DepthwiseConv2d loads bias-free, a pre-v3 layer loads
/// unquantized).
inline constexpr uint32_t kModelFormatVersion = 3;

/// Serializes a layer tree (any Layer produced by this library).
void save_layer(std::ostream& os, const Layer& layer);

/// Reconstructs a layer tree; throws std::runtime_error on malformed input.
/// `version` is the enclosing stream's format version (load_model passes it
/// through; bare-layer callers get the current format).
std::unique_ptr<Layer> load_layer(std::istream& is,
                                  uint32_t version = kModelFormatVersion);

/// Whole-model wrappers with magic/version framing.
void save_model(std::ostream& os, const Layer& model);
std::unique_ptr<Layer> load_model(std::istream& is);

/// Convenience file-path overloads.
void save_model_file(const std::string& path, const Layer& model);
std::unique_ptr<Layer> load_model_file(const std::string& path);

/// Serialized size in bytes (serializes into a counting stream).
int64_t serialized_size(const Layer& model);

}  // namespace tbnet::nn
