#pragma once
// Binary model (de)serialization.
//
// Format: a small tagged tree mirroring the layer structure. This is the
// on-disk / in-TA ("trusted application") representation used by the
// deployment packager: the secure branch M_T is serialized with this code,
// measured, and loaded inside the simulated TEE.
//
//   file    := magic "TBNM" u32(version) u32(header_crc) layer     (v4)
//   layer   := u32(crc) i64(len) body[len]                         (v4)
//   body    := string(kind) kind-specific-config tensors
//
// All integers little-endian; tensors are rank + dims + raw float32.
// v1–v3 files have no header_crc and no layer framing (layer := body).

#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>

#include "nn/layer.h"

namespace tbnet::nn {

/// A checksum failed while loading a model image: the bytes were damaged
/// after serialization (bit rot, truncated copy, tampering, or an injected
/// tee::FaultInjector corruption). Distinct from plain std::runtime_error
/// parse failures so deployment code can map it to the typed
/// runtime::Status::kIntegrityError — a corrupted image must be rejected
/// at deploy, never silently produce wrong logits.
class IntegrityError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Version history:
///   1 — initial format.
///   2 — DepthwiseConv2d gains an optional bias (has_bias flag + tensor),
///       so deploy-time BN folding can absorb into depthwise stages too.
///   3 — Conv2d / Dense gain a quantized flag: a quantized layer ships its
///       per-channel scales, activation quantizer, and raw int8 weight bytes
///       INSTEAD of the float32 weight (~4x smaller TA images); the loader
///       rebuilds the f32 fallback as q * scale and re-attaches the
///       quantization (nn/quant.h).
///   4 — integrity checksums: the header gains a CRC32C over the magic +
///       version bytes, and every layer section is framed as
///       u32(crc32c) i64(len) body — nested layers (Sequential /
///       ResidualBlock children) carry their own frames inside the parent's
///       body, so the root frame doubles as a whole-image checksum. Loaders
///       verify every frame and throw IntegrityError on mismatch.
/// Writers always emit the current version; load_model accepts any version
/// back to 1 (a v1 DepthwiseConv2d loads bias-free, a pre-v3 layer loads
/// unquantized, pre-v4 streams are trusted unchecked).
inline constexpr uint32_t kModelFormatVersion = 4;

/// Serializes a layer tree (any Layer produced by this library) as one
/// checksummed v4 section (crc + len + body).
void save_layer(std::ostream& os, const Layer& layer);

/// Reconstructs a layer tree; throws std::runtime_error on malformed input
/// and IntegrityError on a checksum mismatch (v4 streams). `version` is the
/// enclosing stream's format version (load_model passes it through;
/// bare-layer callers get the current format).
std::unique_ptr<Layer> load_layer(std::istream& is,
                                  uint32_t version = kModelFormatVersion);

/// Whole-model wrappers with magic/version framing.
void save_model(std::ostream& os, const Layer& model);
std::unique_ptr<Layer> load_model(std::istream& is);

/// Convenience file-path overloads.
void save_model_file(const std::string& path, const Layer& model);
std::unique_ptr<Layer> load_model_file(const std::string& path);

/// Serialized size in bytes (serializes into a counting stream).
int64_t serialized_size(const Layer& model);

}  // namespace tbnet::nn
