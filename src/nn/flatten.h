#pragma once
// Flatten: [N, C, H, W] -> [N, C*H*W].

#include "nn/layer.h"

namespace tbnet::nn {

class Flatten : public Layer {
 public:
  using Layer::forward;
  using Layer::backward;
  Tensor forward(ExecutionContext&, const Tensor& input, bool train) override {
    if (train) cached_in_shape_ = input.shape();
    return input.reshaped(out_shape(input.shape()));
  }

  Tensor backward(ExecutionContext&, const Tensor& grad_output) override {
    return grad_output.reshaped(cached_in_shape_);
  }

  std::string kind() const override { return "Flatten"; }

  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Flatten>();
  }

  Shape out_shape(const Shape& in) const override {
    return Shape{in.dim(0), in.numel() / in.dim(0)};
  }

  int64_t macs(const Shape&) const override { return 0; }

 private:
  Shape cached_in_shape_;
};

}  // namespace tbnet::nn
