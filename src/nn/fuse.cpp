#include "nn/fuse.h"

#include <vector>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/depthwise.h"

namespace tbnet::nn {

int fold_batchnorm_inference(Sequential& seq) {
  int folds = 0;
  for (int i = 0; i < seq.size(); ++i) {
    if (auto* inner = dynamic_cast<Sequential*>(&seq.layer(i))) {
      folds += fold_batchnorm_inference(*inner);
      continue;
    }
    if (i + 1 >= seq.size()) continue;
    auto* conv = dynamic_cast<Conv2d*>(&seq.layer(i));
    auto* dw = dynamic_cast<DepthwiseConv2d*>(&seq.layer(i));
    const int64_t channels = conv != nullptr ? conv->out_channels()
                             : dw != nullptr ? dw->channels()
                                             : -1;
    if (channels < 0) continue;
    auto* bn = dynamic_cast<BatchNorm2d*>(&seq.layer(i + 1));
    if (bn == nullptr || bn->channels() != channels) continue;
    std::vector<float> scale(static_cast<size_t>(channels));
    std::vector<float> shift(static_cast<size_t>(channels));
    bn->inference_scale_shift(scale.data(), shift.data());
    if (conv != nullptr) {
      conv->fuse_scale_shift(scale.data(), shift.data());
    } else {
      dw->fuse_scale_shift(scale.data(), shift.data());
    }
    seq.remove_layer(i + 1);
    ++folds;
  }
  return folds;
}

}  // namespace tbnet::nn
