#include "nn/fuse.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/depthwise.h"
#include "nn/quant.h"
#include "tensor/pack.h"

namespace tbnet::nn {

namespace {

/// The column range [j0, j0+nr) of a depthwise output map, decomposed into
/// runs within single output rows — shared by every channel of a panel, so
/// the producers build it once per produce() call (same idiom as
/// im2col_pack_panel).
struct DwSegs {
  struct Seg {
    int64_t j;    ///< first panel column of the run
    int64_t len;  ///< run length
    int64_t ox0;  ///< first output column of the run
    /// Per tap row: offset of the input row within the channel plane, or -1
    /// when vertically out of bounds.
    int64_t row_off[DepthwiseConv2d::kMaxSimdKernel];
  };
  Seg segs[simd::kNR];
  int nsegs = 0;
};

void build_dw_segs(int64_t j0, int nr, int64_t ow, int64_t kernel,
                   int64_t stride, int64_t pad, int64_t ih, int64_t iw,
                   DwSegs* out) {
  (void)iw;
  out->nsegs = 0;
  for (int64_t j = 0, col = j0; j < nr; ++out->nsegs) {
    DwSegs::Seg& s = out->segs[out->nsegs];
    const int64_t oy = col / ow;
    s.j = j;
    s.ox0 = col - oy * ow;
    s.len = std::min<int64_t>(nr - j, ow - s.ox0);
    for (int64_t ky = 0; ky < kernel; ++ky) {
      const int64_t iy = oy * stride - pad + ky;
      s.row_off[ky] = iy >= 0 && iy < ih ? iy * iw : -1;
    }
    j += s.len;
    col += s.len;
  }
}

/// Computes one depthwise output row (channel c of the fused step's B
/// operand) over the segment decomposition into prow[0, nr); columns
/// [nr, kNR) are zero-filled. Pure function of its arguments; the row
/// kernel's segment-invariance contract makes the values independent of the
/// panel partitioning.
inline void dw_lower_row(const DwSegs& sg, simd::DwRowKernelFn dw_row,
                         const float* plane, const float* taps, int64_t kernel,
                         int64_t iw, int64_t pad, int64_t stride, float cscale,
                         float cshift, simd::Act act, int nr, float* prow) {
  const float* rows[DepthwiseConv2d::kMaxSimdKernel];
  for (int s = 0; s < sg.nsegs; ++s) {
    const DwSegs::Seg& seg = sg.segs[s];
    for (int64_t ky = 0; ky < kernel; ++ky) {
      rows[ky] = seg.row_off[ky] >= 0 ? plane + seg.row_off[ky] : nullptr;
    }
    dw_row(rows, kernel, taps, kernel, iw, pad, stride, seg.ox0, seg.len,
           cscale, cshift, act, prow + seg.j);
  }
  for (int64_t j = nr; j < simd::kNR; ++j) prow[j] = 0.0f;
}

}  // namespace

int fold_batchnorm_inference(Sequential& seq) {
  int folds = 0;
  for (int i = 0; i < seq.size(); ++i) {
    if (auto* inner = dynamic_cast<Sequential*>(&seq.layer(i))) {
      folds += fold_batchnorm_inference(*inner);
      continue;
    }
    if (i + 1 >= seq.size()) continue;
    auto* conv = dynamic_cast<Conv2d*>(&seq.layer(i));
    auto* dw = dynamic_cast<DepthwiseConv2d*>(&seq.layer(i));
    const int64_t channels = conv != nullptr ? conv->out_channels()
                             : dw != nullptr ? dw->channels()
                                             : -1;
    if (channels < 0) continue;
    auto* bn = dynamic_cast<BatchNorm2d*>(&seq.layer(i + 1));
    if (bn == nullptr || bn->channels() != channels) continue;
    std::vector<float> scale(static_cast<size_t>(channels));
    std::vector<float> shift(static_cast<size_t>(channels));
    bn->inference_scale_shift(scale.data(), shift.data());
    if (conv != nullptr) {
      conv->fuse_scale_shift(scale.data(), shift.data());
    } else {
      dw->fuse_scale_shift(scale.data(), shift.data());
    }
    seq.remove_layer(i + 1);
    ++folds;
  }
  return folds;
}

bool fuse_dw_pw_profitable(int64_t channels, int64_t cols) {
  // Thresholds sit exactly on the measured loss shape: k = 32 over a 32x32
  // map. k = 64 stacks and 16x16 maps both measured ~1.0x or better.
  constexpr int64_t kShallowK = 32;
  constexpr int64_t kWideCols = 32 * 32;
  return channels > kShallowK || cols < kWideCols;
}

Tensor forward_depthwise_pointwise(ExecutionContext& ctx, const Tensor& x,
                                   const DepthwiseConv2d& dw,
                                   const float* dw_scale,
                                   const float* dw_shift, simd::Act dw_act,
                                   const Conv2d& pw,
                                   const GemmEpilogue& pw_ep) {
  simd::require_known_act(dw_act);
  simd::require_known_act(pw_ep.act);
  const auto& dopt = dw.options();
  const auto& popt = pw.options();
  if (popt.kernel != 1 || popt.stride != 1 || popt.pad != 0 ||
      pw.in_channels() != dw.channels() ||
      dopt.kernel > DepthwiseConv2d::kMaxSimdKernel) {
    throw std::invalid_argument(
        "forward_depthwise_pointwise: layers do not match the fusion "
        "contract (pointwise must be 1x1 stride-1 pad-0 over the depthwise "
        "channels)");
  }
  const Shape dw_os = dw.out_shape(x.shape());
  const int64_t n = x.dim(0), ih = x.dim(2), iw = x.dim(3);
  const int64_t oh = dw_os.dim(2), ow = dw_os.dim(3);
  const int64_t channels = dw.channels();
  const int64_t out_c = pw.out_channels();
  const int64_t cols = oh * ow;
  const int64_t kernel = dopt.kernel, stride = dopt.stride, pad = dopt.pad;
  const float* taps_base = dw.weight().data();
  const simd::DwRowKernelFn dw_row = simd::dw_row_kernel();

  ArenaScope scope(ctx.arena());
  Tensor out(Shape{n, out_c, oh, ow});
  const int64_t in_stride = channels * ih * iw;
  const int64_t out_stride = out_c * cols;

  if (pw.quantized()) {
    // Quantized pointwise: the depthwise rows are computed in f32 exactly as
    // below, then quantized into the grouped u8 panel layout on the spot —
    // the same bytes Conv2d::forward_int8 would see from a materialized
    // depthwise output, so the gate between the fused and back-to-back
    // forms stays a pure latency knob on the quantized path too.
    if (pw_ep.col_scale != nullptr || pw_ep.col_shift != nullptr) {
      throw std::logic_error(
          "forward_depthwise_pointwise: int8 epilogues are per-row only");
    }
    const QuantizedWeights& qw = pw.quant();
    float* S = ctx.arena().alloc(out_c);
    float* T = ctx.arena().alloc(out_c);
    compose_quant_epilogue(qw, pw_ep.row_scale, pw_ep.row_shift, out_c, S, T);
    const simd::QuantEpilogue qep{S, T, pw_ep.act};
    const int8_t* qapack = pw.packed_quant();
    if (qapack == nullptr) {
      const int64_t bytes = packdetail::packed_a_i8_bytes(out_c, channels);
      int8_t* ap =
          reinterpret_cast<int8_t*>(ctx.arena().alloc((bytes + 3) / 4));
      packdetail::pack_a_i8(out_c, channels, qw.q.data(), channels, ap);
      qapack = ap;
    }
    const float inv = 1.0f / qw.act.scale;
    const int32_t zp = qw.act.zero_point;
    const int64_t panel_bytes = packdetail::panel_b_i8_bytes(channels);
    for (int64_t i = 0; i < n; ++i) {
      const float* img = x.data() + i * in_stride;
      packdetail::run_packed_i8_producer(
          ctx, out_c, cols, channels, qapack,
          [&](int64_t kk, int64_t kc, int64_t j0, int nr, uint8_t* panel) {
            DwSegs sg;
            build_dw_segs(j0, nr, ow, kernel, stride, pad, ih, iw, &sg);
            std::memset(panel, 0, static_cast<size_t>(panel_bytes));
            // Stage one k-group of depthwise output rows, then quantize the
            // whole 64-byte group at once (per-element at the k/nr tails).
            const simd::QuantizeU7GroupFn qgroup = simd::quantize_u7_group();
            alignas(simd::kAlign) float staged[simd::kKG][simd::kNR];
            for (int64_t p0 = 0; p0 < kc; p0 += simd::kKG) {
              const int64_t rows = std::min<int64_t>(simd::kKG, kc - p0);
              for (int64_t t = 0; t < rows; ++t) {
                const int64_t c = kk + p0 + t;
                dw_lower_row(sg, dw_row, img + c * ih * iw,
                             taps_base + c * kernel * kernel, kernel, iw, pad,
                             stride, dw_scale != nullptr ? dw_scale[c] : 1.0f,
                             dw_shift != nullptr ? dw_shift[c] : 0.0f, dw_act,
                             nr, staged[t]);
              }
              uint8_t* grp =
                  panel + (p0 / simd::kKG) * simd::kNR * simd::kKG;
              if (rows == simd::kKG && nr == simd::kNR) {
                qgroup(staged[0], staged[1], staged[2], staged[3], grp, inv,
                       zp);
                continue;
              }
              for (int64_t t = 0; t < rows; ++t) {
                for (int j = 0; j < nr; ++j) {
                  grp[j * simd::kKG + t] =
                      simd::quantize_u7(staged[t][j], inv, zp);
                }
              }
            }
          },
          out.data() + i * out_stride, cols, qep);
    }
    return out;
  }

  const float* apack;
  if (!pw.packed_weight().empty()) {
    apack = pw.packed_weight().data();
  } else {
    float* ap = ctx.arena().alloc(packdetail::packed_a_floats(out_c, channels));
    packdetail::pack_a_rowmajor(ctx.pool(), out_c, channels, pw.weight().data(),
                                channels, ap, ctx.intra_op_width());
    apack = ap;
  }
  // The per-image loop keeps batched output bit-identical to per-image calls
  // (same reason as Conv2d::forward_impl).
  for (int64_t i = 0; i < n; ++i) {
    const float* img = x.data() + i * in_stride;
    packdetail::run_packed_b_producer(
        ctx, out_c, cols, channels, 1.0f, apack,
        [&](int64_t kk, int64_t kc, int64_t j0, int nr, float* panel) {
          // B rows are depthwise output channels, B columns spatial
          // positions of the depthwise output map; produce the [kc x 16]
          // slab by running the depthwise row kernel over the column range's
          // output-row segments. The decomposition (and each tap row's
          // plane-relative offset) is shared by every channel of the panel,
          // so it is hoisted out of the channel loop — the same idiom as
          // im2col_pack_panel. Pure function of disjoint panel coordinates:
          // thread-safe, no arena, as the producer contract requires.
          DwSegs sg;
          build_dw_segs(j0, nr, ow, kernel, stride, pad, ih, iw, &sg);
          for (int64_t p = 0; p < kc; ++p) {
            const int64_t c = kk + p;
            dw_lower_row(sg, dw_row, img + c * ih * iw,
                         taps_base + c * kernel * kernel, kernel, iw, pad,
                         stride, dw_scale != nullptr ? dw_scale[c] : 1.0f,
                         dw_shift != nullptr ? dw_shift[c] : 0.0f, dw_act, nr,
                         panel + p * simd::kNR);
          }
        },
        0.0f, out.data() + i * out_stride, cols, pw_ep);
  }
  return out;
}

}  // namespace tbnet::nn
