#include "nn/fuse.h"

#include <vector>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"

namespace tbnet::nn {

int fold_batchnorm_inference(Sequential& seq) {
  int folds = 0;
  for (int i = 0; i < seq.size(); ++i) {
    if (auto* inner = dynamic_cast<Sequential*>(&seq.layer(i))) {
      folds += fold_batchnorm_inference(*inner);
      continue;
    }
    auto* conv = dynamic_cast<Conv2d*>(&seq.layer(i));
    if (conv == nullptr || i + 1 >= seq.size()) continue;
    auto* bn = dynamic_cast<BatchNorm2d*>(&seq.layer(i + 1));
    if (bn == nullptr || bn->channels() != conv->out_channels()) continue;
    std::vector<float> scale(static_cast<size_t>(bn->channels()));
    std::vector<float> shift(static_cast<size_t>(bn->channels()));
    bn->inference_scale_shift(scale.data(), shift.data());
    conv->fuse_scale_shift(scale.data(), shift.data());
    seq.remove_layer(i + 1);
    ++folds;
  }
  return folds;
}

}  // namespace tbnet::nn
