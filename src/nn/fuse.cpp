#include "nn/fuse.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/depthwise.h"
#include "tensor/pack.h"

namespace tbnet::nn {

int fold_batchnorm_inference(Sequential& seq) {
  int folds = 0;
  for (int i = 0; i < seq.size(); ++i) {
    if (auto* inner = dynamic_cast<Sequential*>(&seq.layer(i))) {
      folds += fold_batchnorm_inference(*inner);
      continue;
    }
    if (i + 1 >= seq.size()) continue;
    auto* conv = dynamic_cast<Conv2d*>(&seq.layer(i));
    auto* dw = dynamic_cast<DepthwiseConv2d*>(&seq.layer(i));
    const int64_t channels = conv != nullptr ? conv->out_channels()
                             : dw != nullptr ? dw->channels()
                                             : -1;
    if (channels < 0) continue;
    auto* bn = dynamic_cast<BatchNorm2d*>(&seq.layer(i + 1));
    if (bn == nullptr || bn->channels() != channels) continue;
    std::vector<float> scale(static_cast<size_t>(channels));
    std::vector<float> shift(static_cast<size_t>(channels));
    bn->inference_scale_shift(scale.data(), shift.data());
    if (conv != nullptr) {
      conv->fuse_scale_shift(scale.data(), shift.data());
    } else {
      dw->fuse_scale_shift(scale.data(), shift.data());
    }
    seq.remove_layer(i + 1);
    ++folds;
  }
  return folds;
}

bool fuse_dw_pw_profitable(int64_t channels, int64_t cols) {
  // Thresholds sit exactly on the measured loss shape: k = 32 over a 32x32
  // map. k = 64 stacks and 16x16 maps both measured ~1.0x or better.
  constexpr int64_t kShallowK = 32;
  constexpr int64_t kWideCols = 32 * 32;
  return channels > kShallowK || cols < kWideCols;
}

Tensor forward_depthwise_pointwise(ExecutionContext& ctx, const Tensor& x,
                                   const DepthwiseConv2d& dw,
                                   const float* dw_scale,
                                   const float* dw_shift, simd::Act dw_act,
                                   const Conv2d& pw,
                                   const GemmEpilogue& pw_ep) {
  simd::require_known_act(dw_act);
  simd::require_known_act(pw_ep.act);
  const auto& dopt = dw.options();
  const auto& popt = pw.options();
  if (popt.kernel != 1 || popt.stride != 1 || popt.pad != 0 ||
      pw.in_channels() != dw.channels() ||
      dopt.kernel > DepthwiseConv2d::kMaxSimdKernel) {
    throw std::invalid_argument(
        "forward_depthwise_pointwise: layers do not match the fusion "
        "contract (pointwise must be 1x1 stride-1 pad-0 over the depthwise "
        "channels)");
  }
  const Shape dw_os = dw.out_shape(x.shape());
  const int64_t n = x.dim(0), ih = x.dim(2), iw = x.dim(3);
  const int64_t oh = dw_os.dim(2), ow = dw_os.dim(3);
  const int64_t channels = dw.channels();
  const int64_t out_c = pw.out_channels();
  const int64_t cols = oh * ow;
  const int64_t kernel = dopt.kernel, stride = dopt.stride, pad = dopt.pad;
  const float* taps_base = dw.weight().data();
  const simd::DwRowKernelFn dw_row = simd::dw_row_kernel();

  ArenaScope scope(ctx.arena());
  const float* apack;
  if (!pw.packed_weight().empty()) {
    apack = pw.packed_weight().data();
  } else {
    float* ap = ctx.arena().alloc(packdetail::packed_a_floats(out_c, channels));
    packdetail::pack_a_rowmajor(ctx.pool(), out_c, channels, pw.weight().data(),
                                channels, ap);
    apack = ap;
  }

  Tensor out(Shape{n, out_c, oh, ow});
  const int64_t in_stride = channels * ih * iw;
  const int64_t out_stride = out_c * cols;
  // The per-image loop keeps batched output bit-identical to per-image calls
  // (same reason as Conv2d::forward_impl).
  for (int64_t i = 0; i < n; ++i) {
    const float* img = x.data() + i * in_stride;
    packdetail::run_packed_b_producer(
        ctx, out_c, cols, channels, 1.0f, apack,
        [&](int64_t kk, int64_t kc, int64_t j0, int nr, float* panel) {
          // B rows are depthwise output channels, B columns spatial
          // positions of the depthwise output map; produce the [kc x 16]
          // slab by running the depthwise row kernel over the column range's
          // output-row segments. The decomposition (and each tap row's
          // plane-relative offset) is shared by every channel of the panel,
          // so it is hoisted out of the channel loop — the same idiom as
          // im2col_pack_panel. Pure function of disjoint panel coordinates:
          // thread-safe, no arena, as the producer contract requires.
          struct Seg {
            int64_t j;    ///< first panel column of the run
            int64_t len;  ///< run length
            int64_t ox0;  ///< first output column of the run
            /// Per tap row: offset of the input row within the channel
            /// plane, or -1 when vertically out of bounds.
            int64_t row_off[DepthwiseConv2d::kMaxSimdKernel];
          };
          Seg segs[simd::kNR];
          int nsegs = 0;
          for (int64_t j = 0, col = j0; j < nr; ++nsegs) {
            Seg& s = segs[nsegs];
            const int64_t oy = col / ow;
            s.j = j;
            s.ox0 = col - oy * ow;
            s.len = std::min<int64_t>(nr - j, ow - s.ox0);
            for (int64_t ky = 0; ky < kernel; ++ky) {
              const int64_t iy = oy * stride - pad + ky;
              s.row_off[ky] = iy >= 0 && iy < ih ? iy * iw : -1;
            }
            j += s.len;
            col += s.len;
          }
          const float* rows[DepthwiseConv2d::kMaxSimdKernel];
          for (int64_t p = 0; p < kc; ++p) {
            const int64_t c = kk + p;
            const float* plane = img + c * ih * iw;
            const float* taps = taps_base + c * kernel * kernel;
            const float cscale = dw_scale != nullptr ? dw_scale[c] : 1.0f;
            const float cshift = dw_shift != nullptr ? dw_shift[c] : 0.0f;
            float* prow = panel + p * simd::kNR;
            for (int s = 0; s < nsegs; ++s) {
              const Seg& seg = segs[s];
              for (int64_t ky = 0; ky < kernel; ++ky) {
                rows[ky] =
                    seg.row_off[ky] >= 0 ? plane + seg.row_off[ky] : nullptr;
              }
              dw_row(rows, kernel, taps, kernel, iw, pad, stride, seg.ox0,
                     seg.len, cscale, cshift, dw_act, prow + seg.j);
            }
            for (int64_t j = nr; j < simd::kNR; ++j) prow[j] = 0.0f;
          }
        },
        0.0f, out.data() + i * out_stride, cols, pw_ep);
  }
  return out;
}

}  // namespace tbnet::nn
