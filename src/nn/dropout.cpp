#include "nn/dropout.h"

#include <stdexcept>

namespace tbnet::nn {

Dropout::Dropout(double p, uint64_t seed) : p_(p), seed_(seed), rng_(seed) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument("Dropout: p must be in [0, 1)");
  }
}

Tensor Dropout::forward(ExecutionContext&, const Tensor& input, bool train) {
  if (!train || p_ == 0.0) return input;
  Tensor out = input;
  keep_mask_.assign(static_cast<size_t>(input.numel()), 0);
  cached_shape_ = input.shape();
  const float scale = static_cast<float>(1.0 / (1.0 - p_));
  for (int64_t i = 0; i < out.numel(); ++i) {
    if (rng_.uniform() >= p_) {
      keep_mask_[static_cast<size_t>(i)] = 1;
      out[i] *= scale;
    } else {
      out[i] = 0.0f;
    }
  }
  return out;
}

Tensor Dropout::backward(ExecutionContext&, const Tensor& grad_output) {
  if (p_ == 0.0) return grad_output;
  if (keep_mask_.empty() || grad_output.shape() != cached_shape_) {
    throw std::logic_error("Dropout::backward without matching forward(train)");
  }
  Tensor grad = grad_output;
  const float scale = static_cast<float>(1.0 / (1.0 - p_));
  for (int64_t i = 0; i < grad.numel(); ++i) {
    grad[i] = keep_mask_[static_cast<size_t>(i)] ? grad[i] * scale : 0.0f;
  }
  return grad;
}

std::unique_ptr<Layer> Dropout::clone() const {
  return std::make_unique<Dropout>(p_, seed_);
}

}  // namespace tbnet::nn
