#pragma once
// Model zoo: victim-model builders and their two-branch substitutions.
//
// Families follow the paper's evaluation: VGG-style chains ("VGG18") and
// CIFAR-style ResNets (ResNet-20/32), both with a width multiplier so the
// benchmark harnesses can run CPU-sized versions of the same architectures.

#include <string>
#include <vector>

#include "core/prune_point.h"
#include "core/two_branch.h"
#include "nn/sequential.h"
#include "tensor/rng.h"

namespace tbnet::models {

enum class Family { kVgg, kResNet, kMobileNet };

struct ModelConfig {
  Family family = Family::kVgg;
  /// VGG: 11/13/16/18 (18 = 16 conv + 2 dense). ResNet: 20/32.
  /// MobileNet: number of depthwise-separable blocks (4-8).
  int depth = 18;
  int64_t classes = 10;
  int64_t in_channels = 3;
  /// Channel width multiplier (1.0 = paper-size; benches use <= 0.5).
  double width_mult = 1.0;
  uint64_t seed = 1;

  std::string name() const;
};

/// Builds the victim model as a Sequential of fusion-stage blocks. Training
/// it end-to-end (models::train_classifier) produces the "victim" whose IP
/// TBNet protects.
nn::Sequential build_victim(const ModelConfig& cfg);

/// Builds the TBNet two-branch substitution from a trained victim:
///   * M_R (exposed) inherits the victim's architecture and weights — for
///     ResNet, the main branch only, skip connections dropped (paper §4).
///   * M_T (secure) has the victim's architecture (with skips for ResNet)
///     and freshly initialized weights.
core::TwoBranchModel build_two_branch(const nn::Sequential& victim,
                                      const ModelConfig& cfg);

/// The prunable channel groups of this family (see core::PrunePoint).
std::vector<core::PrunePoint> prune_points(const ModelConfig& cfg);

/// Number of fusion stages build_victim/build_two_branch produce.
int num_stages(const ModelConfig& cfg);

}  // namespace tbnet::models
