#pragma once
// Single-branch classifier training (victim models, attacker fine-tuning,
// standalone-M_T retraining). The two-branch knowledge-transfer trainer
// lives in core/knowledge_transfer.h.

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "nn/layer.h"

namespace tbnet::models {

/// Training hyper-parameters; defaults follow the paper's recipe (SGD,
/// momentum 0.9, weight decay 1e-4, step LR /10) scaled to CPU-sized runs.
struct TrainConfig {
  int epochs = 10;
  int64_t batch_size = 64;
  double lr = 0.05;
  double momentum = 0.9;
  double weight_decay = 1e-4;
  int lr_step = 100;      ///< epochs between /gamma drops (paper: 100)
  double lr_gamma = 0.1;
  uint64_t seed = 7;
  bool augment = true;
  /// Optional network-slimming L1 penalty on BN gammas (single-branch form).
  double bn_l1 = 0.0;
  int log_every = 0;      ///< print a line every N epochs; 0 = silent
};

struct TrainResult {
  std::vector<double> epoch_loss;
  std::vector<double> epoch_test_acc;
  double final_acc = 0.0;
};

/// Trains `model` (any Layer tree with a [N, classes] logits output) with SGD
/// + cross-entropy on `train`, evaluating on `test` after every epoch.
TrainResult train_classifier(nn::Layer& model, const data::Dataset& train,
                             const data::Dataset& test,
                             const TrainConfig& cfg);

/// Top-1 accuracy of `model` (eval mode) over the whole dataset.
double evaluate(nn::Layer& model, const data::Dataset& dataset,
                int64_t batch_size = 128);

/// Adds lambda * sign(gamma) to the gradient of every BN gamma parameter in
/// `params` (the single-branch slimming penalty).
void add_bn_l1_subgradient(std::vector<nn::ParamRef>& params, double lambda);

}  // namespace tbnet::models
