#include "models/trainer.h"

#include <cstdio>

#include "data/dataloader.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace tbnet::models {
namespace {

bool is_bn_gamma(const std::string& name) {
  constexpr const char* kSuffix = "gamma";
  const size_t len = 5;
  return name.size() >= len &&
         name.compare(name.size() - len, len, kSuffix) == 0;
}

}  // namespace

void add_bn_l1_subgradient(std::vector<nn::ParamRef>& params, double lambda) {
  if (lambda == 0.0) return;
  for (nn::ParamRef& p : params) {
    if (!is_bn_gamma(p.name)) continue;
    Tensor& g = *p.grad;
    const Tensor& v = *p.value;
    const float l = static_cast<float>(lambda);
    for (int64_t i = 0; i < g.numel(); ++i) {
      g[i] += (v[i] > 0.0f ? l : (v[i] < 0.0f ? -l : 0.0f));
    }
  }
}

TrainResult train_classifier(nn::Layer& model, const data::Dataset& train,
                             const data::Dataset& test,
                             const TrainConfig& cfg) {
  data::DataLoader::Options lo;
  lo.batch_size = cfg.batch_size;
  lo.shuffle = true;
  lo.augment = cfg.augment;
  lo.seed = cfg.seed;
  data::DataLoader loader(train, lo);

  nn::SGD sgd(cfg.lr, cfg.momentum, cfg.weight_decay);
  nn::StepLR schedule(cfg.lr, cfg.lr_step, cfg.lr_gamma);

  TrainResult result;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    sgd.set_lr(schedule.lr_at(epoch));
    loader.start_epoch(epoch);
    data::Batch batch;
    double loss_sum = 0.0;
    int64_t batches = 0;
    while (loader.next(batch)) {
      model.zero_grad();
      Tensor logits = model.forward(batch.images, /*train=*/true);
      Tensor grad;
      loss_sum += softmax_cross_entropy(logits, batch.labels, &grad);
      model.backward(grad);
      auto params = model.params();
      add_bn_l1_subgradient(params, cfg.bn_l1);
      sgd.step(params);
      ++batches;
    }
    const double loss = batches > 0 ? loss_sum / static_cast<double>(batches)
                                    : 0.0;
    const double acc = evaluate(model, test);
    result.epoch_loss.push_back(loss);
    result.epoch_test_acc.push_back(acc);
    if (cfg.log_every > 0 && (epoch % cfg.log_every == 0)) {
      std::printf("  epoch %3d  loss %.4f  test acc %.2f%%  (lr %.4g)\n",
                  epoch, loss, 100.0 * acc, sgd.lr());
      std::fflush(stdout);
    }
  }
  result.final_acc =
      result.epoch_test_acc.empty() ? 0.0 : result.epoch_test_acc.back();
  return result;
}

double evaluate(nn::Layer& model, const data::Dataset& dataset,
                int64_t batch_size) {
  data::DataLoader::Options lo;
  lo.batch_size = batch_size;
  lo.shuffle = false;
  lo.augment = false;
  data::DataLoader loader(dataset, lo);
  loader.start_epoch(0);
  data::Batch batch;
  int64_t hits = 0, total = 0;
  while (loader.next(batch)) {
    Tensor logits = model.forward(batch.images, /*train=*/false);
    const auto pred = argmax_rows(logits);
    for (size_t i = 0; i < pred.size(); ++i) {
      hits += (pred[i] == batch.labels[i]);
    }
    total += batch.size();
  }
  return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
}

}  // namespace tbnet::models
