#include "models/model_zoo.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/depthwise.h"
#include "nn/flatten.h"
#include "nn/pool.h"
#include "nn/residual.h"

namespace tbnet::models {
namespace {

using core::PrunePoint;
using core::TwoBranchModel;
using nn::BatchNorm2d;
using nn::Conv2d;
using nn::Dense;
using nn::Flatten;
using nn::GlobalAvgPool2d;
using nn::MaxPool2d;
using nn::ReLU;
using nn::ResidualBlock;
using nn::Sequential;

constexpr int64_t kPool = -1;  // marker in VGG channel plans

int64_t scaled(int64_t channels, double mult) {
  return std::max<int64_t>(8, static_cast<int64_t>(std::llround(
                                  static_cast<double>(channels) * mult)));
}

/// VGG channel plan: positive = conv output channels, kPool = 2x2 max pool
/// after the previous conv stage.
std::vector<int64_t> vgg_plan(int depth) {
  switch (depth) {
    case 11:
      return {64, kPool, 128, kPool, 256, 256, kPool, 512, 512, kPool, 512,
              512, kPool};
    case 13:
      return {64, 64, kPool, 128, 128, kPool, 256, 256, kPool, 512, 512,
              kPool, 512, 512, kPool};
    case 16:
      return {64, 64, kPool, 128, 128, kPool, 256, 256, 256, kPool, 512, 512,
              512, kPool, 512, 512, 512, kPool};
    case 18:  // 16 conv + 2 dense = 18 weighted layers (the paper's "VGG18")
      return {64, 64, kPool, 128, 128, kPool, 256, 256, 256, 256, kPool, 512,
              512, 512, 512, kPool, 512, 512, 512, 512, kPool};
    default:
      throw std::invalid_argument("vgg_plan: unsupported depth " +
                                  std::to_string(depth));
  }
}

struct ResNetPlan {
  int blocks_per_group = 3;
  std::vector<int64_t> widths = {16, 32, 64};
};

ResNetPlan resnet_plan(int depth) {
  if (depth < 8 || (depth - 2) % 6 != 0) {
    throw std::invalid_argument("resnet_plan: depth must be 6n+2, got " +
                                std::to_string(depth));
  }
  ResNetPlan plan;
  plan.blocks_per_group = (depth - 2) / 6;
  return plan;
}

/// One VGG fusion-stage block: Conv-BN-ReLU(-MaxPool).
Sequential vgg_stage(int64_t in_c, int64_t out_c, bool pool, Rng& rng) {
  Sequential s;
  Conv2d::Options opt{.kernel = 3, .stride = 1, .pad = 1, .bias = false};
  s.emplace<Conv2d>(in_c, out_c, opt, rng);
  s.emplace<BatchNorm2d>(out_c);
  s.emplace<ReLU>();
  if (pool) s.emplace<MaxPool2d>(2, 2);
  return s;
}

/// Classifier head stage. `hidden` > 0 adds a Dense-ReLU bottleneck
/// (used by "VGG18" for its second dense layer).
Sequential head_stage(int64_t in_c, int64_t hidden, int64_t classes,
                      Rng& rng) {
  Sequential s;
  s.emplace<GlobalAvgPool2d>();
  s.emplace<Flatten>();
  if (hidden > 0) {
    s.emplace<Dense>(in_c, hidden, rng);
    s.emplace<ReLU>();
    s.emplace<Dense>(hidden, classes, rng);
  } else {
    s.emplace<Dense>(in_c, classes, rng);
  }
  return s;
}

/// One depthwise-separable block: DW(3x3, s) - BN - ReLU - PW(1x1) - BN -
/// ReLU (MobileNet v1 style).
Sequential separable_stage(int64_t in_c, int64_t out_c, int64_t stride,
                           Rng& rng) {
  Sequential s;
  nn::DepthwiseConv2d::Options dw{.kernel = 3, .stride = stride, .pad = 1};
  s.emplace<nn::DepthwiseConv2d>(in_c, dw, rng);
  s.emplace<BatchNorm2d>(in_c);
  s.emplace<ReLU>();
  Conv2d::Options pw{.kernel = 1, .stride = 1, .pad = 0, .bias = false};
  s.emplace<Conv2d>(in_c, out_c, pw, rng);
  s.emplace<BatchNorm2d>(out_c);
  s.emplace<ReLU>();
  return s;
}

/// MobileNet block plan: (out_channels, stride) per separable block.
std::vector<std::pair<int64_t, int64_t>> mobilenet_plan(int blocks) {
  if (blocks < 2 || blocks > 10) {
    throw std::invalid_argument("mobilenet_plan: blocks must be in [2, 10]");
  }
  const std::vector<std::pair<int64_t, int64_t>> full = {
      {64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1},
      {512, 2}, {512, 1}, {512, 1}, {1024, 2}, {1024, 1}};
  return {full.begin(), full.begin() + blocks};
}

Sequential resnet_stem(int64_t in_c, int64_t out_c, Rng& rng) {
  Sequential s;
  Conv2d::Options opt{.kernel = 3, .stride = 1, .pad = 1, .bias = false};
  s.emplace<Conv2d>(in_c, out_c, opt, rng);
  s.emplace<BatchNorm2d>(out_c);
  s.emplace<ReLU>();
  return s;
}

/// Builds the list of fusion-stage blocks for a config (shared by victim and
/// secure-branch construction; only the RNG differs).
std::vector<std::unique_ptr<nn::Layer>> build_stages(const ModelConfig& cfg,
                                                     Rng& rng) {
  std::vector<std::unique_ptr<nn::Layer>> stages;
  if (cfg.family == Family::kVgg) {
    const auto plan = vgg_plan(cfg.depth);
    int64_t in_c = cfg.in_channels;
    for (size_t i = 0; i < plan.size(); ++i) {
      if (plan[i] == kPool) continue;
      const int64_t out_c = scaled(plan[i], cfg.width_mult);
      const bool pool = (i + 1 < plan.size() && plan[i + 1] == kPool);
      stages.push_back(
          std::make_unique<Sequential>(vgg_stage(in_c, out_c, pool, rng)));
      in_c = out_c;
    }
    const int64_t hidden = (cfg.depth == 18) ? scaled(512, cfg.width_mult) : 0;
    stages.push_back(std::make_unique<Sequential>(
        head_stage(in_c, hidden, cfg.classes, rng)));
  } else if (cfg.family == Family::kMobileNet) {
    const auto plan = mobilenet_plan(cfg.depth);
    const int64_t stem_c = scaled(32, cfg.width_mult);
    stages.push_back(std::make_unique<Sequential>(
        resnet_stem(cfg.in_channels, stem_c, rng)));  // conv-bn-relu stem
    int64_t in_c = stem_c;
    for (const auto& [channels, stride] : plan) {
      const int64_t out_c = scaled(channels, cfg.width_mult);
      stages.push_back(std::make_unique<Sequential>(
          separable_stage(in_c, out_c, stride, rng)));
      in_c = out_c;
    }
    stages.push_back(std::make_unique<Sequential>(
        head_stage(in_c, /*hidden=*/0, cfg.classes, rng)));
  } else {
    const ResNetPlan plan = resnet_plan(cfg.depth);
    const int64_t w0 = scaled(plan.widths[0], cfg.width_mult);
    stages.push_back(std::make_unique<Sequential>(
        resnet_stem(cfg.in_channels, w0, rng)));
    int64_t in_c = w0;
    for (size_t g = 0; g < plan.widths.size(); ++g) {
      const int64_t out_c = scaled(plan.widths[g], cfg.width_mult);
      for (int b = 0; b < plan.blocks_per_group; ++b) {
        const int64_t stride = (g > 0 && b == 0) ? 2 : 1;
        stages.push_back(
            std::make_unique<ResidualBlock>(in_c, out_c, stride, rng));
        in_c = out_c;
      }
    }
    stages.push_back(std::make_unique<Sequential>(
        head_stage(in_c, /*hidden=*/0, cfg.classes, rng)));
  }
  return stages;
}

}  // namespace

std::string ModelConfig::name() const {
  const char* prefix = "VGG";
  if (family == Family::kResNet) prefix = "ResNet";
  if (family == Family::kMobileNet) prefix = "MobileNet-";
  std::string base = prefix + std::to_string(depth);
  if (width_mult != 1.0) {
    base += " (w=" + std::to_string(width_mult).substr(0, 4) + ")";
  }
  return base;
}

int num_stages(const ModelConfig& cfg) {
  if (cfg.family == Family::kVgg) {
    const auto plan = vgg_plan(cfg.depth);
    int convs = 0;
    for (int64_t p : plan) convs += (p != kPool);
    return convs + 1;
  }
  if (cfg.family == Family::kMobileNet) {
    return 1 + cfg.depth + 1;  // stem + separable blocks + head
  }
  const ResNetPlan plan = resnet_plan(cfg.depth);
  return 1 + plan.blocks_per_group * static_cast<int>(plan.widths.size()) + 1;
}

nn::Sequential build_victim(const ModelConfig& cfg) {
  Rng rng(cfg.seed);
  nn::Sequential victim;
  for (auto& stage : build_stages(cfg, rng)) victim.add(std::move(stage));
  return victim;
}

core::TwoBranchModel build_two_branch(const nn::Sequential& victim,
                                      const ModelConfig& cfg) {
  if (victim.size() != num_stages(cfg)) {
    throw std::invalid_argument(
        "build_two_branch: victim does not match config (" +
        std::to_string(victim.size()) + " stages, expected " +
        std::to_string(num_stages(cfg)) + ")");
  }
  // Secure branch: same architecture, fresh weights (different seed stream).
  Rng rng_t(cfg.seed ^ 0x7EE5EC0DEull);
  auto secure_stages = build_stages(cfg, rng_t);

  TwoBranchModel model;
  Rng rng_scratch(0);
  for (int i = 0; i < victim.size(); ++i) {
    const nn::Layer& v = victim.layer(i);
    std::unique_ptr<nn::Layer> exposed;
    if (const auto* block = dynamic_cast<const ResidualBlock*>(&v)) {
      // Paper §4: for ResNet, M_R is initialized from the main branch,
      // excluding the skip connections.
      auto plain = std::make_unique<Sequential>(
          nn::plain_block_like(*block, rng_scratch));
      nn::copy_main_branch(*block, *plain);
      exposed = std::move(plain);
    } else {
      exposed = v.clone();  // weights included
    }
    model.add_stage(std::move(exposed),
                    std::move(secure_stages[static_cast<size_t>(i)]));
  }
  // The classifier head is not fused: the TBNet output is derived from M_T
  // (paper §3.3), and M_R's head keeps the victim's weights untouched.
  model.stage(model.num_stages() - 1).fused = false;
  return model;
}

std::vector<core::PrunePoint> prune_points(const ModelConfig& cfg) {
  std::vector<PrunePoint> points;
  const int stages = num_stages(cfg);
  if (cfg.family == Family::kVgg || cfg.family == Family::kMobileNet) {
    // Every conv / separable stage's output channels form a prunable fusion
    // interface (for separable blocks the interface is the pointwise conv's
    // output; the consumer's depthwise conv shrinks with it).
    for (int i = 0; i + 1 < stages; ++i) {
      points.push_back({PrunePoint::Kind::kInterface, i});
    }
  } else {
    // Residual blocks: prune block-internal channels only; the skip path
    // pins the interface widths. Stage 0 is the stem, last is the head.
    for (int i = 1; i + 1 < stages; ++i) {
      points.push_back({PrunePoint::Kind::kInternal, i});
    }
  }
  return points;
}

}  // namespace tbnet::models
