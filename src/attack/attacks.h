#pragma once
// Attacker toolkit — the threat model of paper §2.2 made executable.
//
// The attacker can read everything in REE memory: M_R's architecture and
// weights, plus all REE->TEE transfers (which TBNet makes worthless: they
// are M_R's own activations). The TEE is a black box. Three attacks:
//
//   * DirectUseAttack  — lift M_R and run it as-is (Tab. 1 "Attack Acc.").
//   * FineTuneAttack   — retrain the lifted M_R with a fraction of the
//                        training data (Fig. 2).
//   * SubstituteLayerAttack — against DarkneTZ-style partitioning: observe
//                        the (plaintext) inputs entering the TEE and the
//                        outputs it releases, then train substitute layers
//                        mimicking the hidden part (§2.3). Structurally
//                        impossible against TBNet's one-way design: the TEE
//                        releases no per-layer outputs to regress on.

#include <vector>

#include "core/prune_point.h"
#include "core/two_branch.h"
#include "data/dataset.h"
#include "models/trainer.h"
#include "nn/sequential.h"
#include "runtime/deployed.h"

namespace tbnet::attack {

/// What the attacker lifts from REE memory: the exposed branch, flattened
/// into a standalone network (M_R's own head produces its logits).
nn::Sequential extract_exposed_model(const core::TwoBranchModel& model);

/// Direct use: accuracy of the lifted M_R with no further work.
double direct_use_accuracy(const core::TwoBranchModel& model,
                           const data::Dataset& test);

struct FineTuneResult {
  double fraction = 0.0;       ///< training-data availability
  double accuracy = 0.0;       ///< attacker's best test accuracy
  models::TrainResult detail;
};

struct FineTuneConfig {
  models::TrainConfig train;    ///< attacker's training recipe
  uint64_t subset_seed = 1234;  ///< which samples the attacker obtained
};

/// Fine-tunes a *fresh copy* of the lifted M_R on `fraction` of the training
/// data (paper Fig. 2's x-axis), reporting the attacker's final accuracy.
FineTuneResult fine_tune_attack(const core::TwoBranchModel& model,
                                const data::Dataset& train,
                                const data::Dataset& test, double fraction,
                                const FineTuneConfig& cfg);

/// Sweeps data availability; returns one point per fraction.
std::vector<FineTuneResult> fine_tune_sweep(
    const core::TwoBranchModel& model, const data::Dataset& train,
    const data::Dataset& test, const std::vector<double>& fractions,
    const FineTuneConfig& cfg);

struct SubstituteConfig {
  int query_budget = 512;       ///< device queries the attacker may issue
  models::TrainConfig train;    ///< substitute training recipe
  uint64_t seed = 99;
};

struct SubstituteResult {
  double accuracy = 0.0;        ///< stolen model's test accuracy
  int queries_used = 0;
};

/// Substitute-layer attack on a DarkneTZ-style partition deployment: the
/// attacker owns the REE head (read from memory), queries the device to
/// collect (hidden-layer input, released logits) pairs, and distills
/// substitute tail layers from them.
SubstituteResult substitute_layer_attack(
    runtime::PartitionDeployment& deployment, const nn::Sequential& victim,
    const data::Dataset& attacker_data, const data::Dataset& test,
    const SubstituteConfig& cfg);

/// Architecture-inference attack — what rollback finalization (step 6)
/// defends against. The attacker's best guess for each hidden channel-group
/// width of M_T is the corresponding width of the visible M_R (before
/// rollback they are identical by construction of the shared pruning mask).
struct ArchInferenceResult {
  int total_groups = 0;
  int correct_guesses = 0;  ///< groups where width(M_R) == width(M_T)
  /// Fraction of prunable groups whose hidden width the attacker pins
  /// exactly; 1.0 means the TEE architecture leaks completely.
  double leak_fraction = 0.0;
};

ArchInferenceResult infer_tee_architecture(
    core::TwoBranchModel& model, const std::vector<core::PrunePoint>& points);

}  // namespace tbnet::attack
