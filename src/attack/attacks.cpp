#include "attack/attacks.h"

#include <algorithm>
#include <cstring>

#include "core/pruner.h"

#include "data/dataloader.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/init.h"
#include "nn/optimizer.h"
#include "nn/residual.h"
#include "tensor/ops.h"

namespace tbnet::attack {
namespace {

/// Re-randomizes every parameter of a cloned architecture — the attacker
/// knows the structure but not the hidden weights.
void reinitialize(nn::Layer& layer, Rng& rng) {
  if (auto* seq = dynamic_cast<nn::Sequential*>(&layer)) {
    for (int i = 0; i < seq->size(); ++i) reinitialize(seq->layer(i), rng);
    return;
  }
  if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
    const int64_t fan_in = conv->weight().numel() / conv->out_channels();
    nn::kaiming_normal(conv->weight(), fan_in, rng);
    if (conv->has_bias()) conv->bias().zero();
    return;
  }
  if (auto* dense = dynamic_cast<nn::Dense*>(&layer)) {
    nn::kaiming_normal(dense->weight(), dense->in_features(), rng);
    if (dense->has_bias()) dense->bias().zero();
    return;
  }
  if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&layer)) {
    bn->gamma().fill(1.0f);
    bn->beta().zero();
    bn->running_mean().zero();
    bn->running_var().fill(1.0f);
    return;
  }
  if (auto* res = dynamic_cast<nn::ResidualBlock*>(&layer)) {
    reinitialize(res->conv1(), rng);
    reinitialize(res->bn1(), rng);
    reinitialize(res->conv2(), rng);
    reinitialize(res->bn2(), rng);
    return;
  }
  // Stateless layers (ReLU, pools, Flatten): nothing to do.
}

}  // namespace

nn::Sequential extract_exposed_model(const core::TwoBranchModel& model) {
  nn::Sequential stolen;
  for (int i = 0; i < model.num_stages(); ++i) {
    stolen.add(model.stage(i).exposed->clone());
  }
  return stolen;
}

double direct_use_accuracy(const core::TwoBranchModel& model,
                           const data::Dataset& test) {
  nn::Sequential stolen = extract_exposed_model(model);
  return models::evaluate(stolen, test);
}

FineTuneResult fine_tune_attack(const core::TwoBranchModel& model,
                                const data::Dataset& train,
                                const data::Dataset& test, double fraction,
                                const FineTuneConfig& cfg) {
  nn::Sequential stolen = extract_exposed_model(model);
  const data::SubsetDataset subset =
      data::fraction_of(train, fraction, cfg.subset_seed);
  FineTuneResult result;
  result.fraction = fraction;
  if (subset.size() > 0) {
    result.detail = models::train_classifier(stolen, subset, test, cfg.train);
  }
  result.accuracy = models::evaluate(stolen, test);
  return result;
}

std::vector<FineTuneResult> fine_tune_sweep(
    const core::TwoBranchModel& model, const data::Dataset& train,
    const data::Dataset& test, const std::vector<double>& fractions,
    const FineTuneConfig& cfg) {
  std::vector<FineTuneResult> results;
  results.reserve(fractions.size());
  for (double f : fractions) {
    results.push_back(fine_tune_attack(model, train, test, f, cfg));
  }
  return results;
}

SubstituteResult substitute_layer_attack(
    runtime::PartitionDeployment& deployment, const nn::Sequential& victim,
    const data::Dataset& attacker_data, const data::Dataset& test,
    const SubstituteConfig& cfg) {
  SubstituteResult result;
  Rng rng(cfg.seed);

  // 1. Build the substitute tail: architecture known, weights random.
  nn::Sequential substitute_tail;
  for (int i = deployment.first_tee_stage(); i < victim.size(); ++i) {
    substitute_tail.add(victim.layer(i).clone());
  }
  reinitialize(substitute_tail, rng);

  // 2. Harvest (hidden input, released logits) pairs by querying the device.
  const int queries = static_cast<int>(
      std::min<int64_t>(cfg.query_budget, attacker_data.size()));
  std::vector<Tensor> features, targets;
  features.reserve(static_cast<size_t>(queries));
  targets.reserve(static_cast<size_t>(queries));
  for (int q = 0; q < queries; ++q) {
    const data::Sample s = attacker_data.get(q);
    features.push_back(deployment.observable_tee_input(s.image));
    targets.push_back(deployment.infer(s.image));
  }
  result.queries_used = queries;
  if (queries == 0) return result;

  // 3. Distill: minimize MSE between substitute logits and released logits.
  nn::SGD sgd(cfg.train.lr, cfg.train.momentum, cfg.train.weight_decay);
  nn::StepLR schedule(cfg.train.lr, cfg.train.lr_step, cfg.train.lr_gamma);
  const int64_t bs = std::max<int64_t>(1, cfg.train.batch_size);
  std::vector<int64_t> order(static_cast<size_t>(queries));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);

  for (int epoch = 0; epoch < cfg.train.epochs; ++epoch) {
    sgd.set_lr(schedule.lr_at(epoch));
    Rng erng(cfg.seed + 31 * static_cast<uint64_t>(epoch + 1));
    erng.shuffle(order);
    for (int64_t at = 0; at < queries; at += bs) {
      const int64_t n = std::min<int64_t>(bs, queries - at);
      // Stack the batch (features are [1, C, H, W] each).
      const Shape f0 = features[0].shape();
      Tensor fb(Shape{n, f0.dim(1), f0.dim(2), f0.dim(3)});
      const Shape t0 = targets[0].shape();
      Tensor tb(Shape{n, t0.dim(1)});
      for (int64_t i = 0; i < n; ++i) {
        const Tensor& f = features[static_cast<size_t>(order[static_cast<size_t>(at + i)])];
        const Tensor& t = targets[static_cast<size_t>(order[static_cast<size_t>(at + i)])];
        std::memcpy(fb.data() + i * f.numel(), f.data(),
                    static_cast<size_t>(f.numel()) * sizeof(float));
        std::memcpy(tb.data() + i * t.numel(), t.data(),
                    static_cast<size_t>(t.numel()) * sizeof(float));
      }
      substitute_tail.zero_grad();
      Tensor pred = substitute_tail.forward(fb, /*train=*/true);
      // d/dpred of mean squared error.
      Tensor grad = pred;
      grad.axpy_(-1.0f, tb);
      grad.scale_(2.0f / static_cast<float>(pred.numel()));
      substitute_tail.backward(grad);
      sgd.step(substitute_tail.params());
    }
  }

  // 4. Assemble the stolen model: exact REE head + distilled tail.
  nn::Sequential stolen;
  for (int i = 0; i < deployment.first_tee_stage(); ++i) {
    stolen.add(victim.layer(i).clone());
  }
  stolen.add(substitute_tail.clone());
  result.accuracy = models::evaluate(stolen, test);
  return result;
}

ArchInferenceResult infer_tee_architecture(
    core::TwoBranchModel& model,
    const std::vector<core::PrunePoint>& points) {
  ArchInferenceResult result;
  for (const core::PrunePoint& point : points) {
    const core::ResolvedPoint rp = core::resolve_point_lenient(model, point);
    ++result.total_groups;
    // The attacker reads M_R's width off REE memory and guesses M_T matches.
    if (rp.bn_exposed->channels() == rp.bn_secure->channels()) {
      ++result.correct_guesses;
    }
  }
  result.leak_fraction =
      result.total_groups > 0
          ? static_cast<double>(result.correct_guesses) / result.total_groups
          : 0.0;
  return result;
}

}  // namespace tbnet::attack
