#pragma once
// DeploymentProfiler — per-stage breakdown of a TBNet deployment.
//
// Combines the static footprint (MACs, transfer bytes, memory) with the
// device cost model into the table an engineer would want before flashing a
// device: where the time goes (REE compute / TEE compute / channel), which
// stage dominates the TEE working set, and how the split compares with the
// all-in-TEE baseline.

#include <string>
#include <vector>

#include "core/two_branch.h"
#include "nn/sequential.h"
#include "runtime/measurements.h"
#include "tee/cost_model.h"

namespace tbnet::runtime {

struct StageProfile {
  int stage = 0;
  bool fused = true;
  int64_t exposed_macs = 0;
  int64_t secure_macs = 0;
  int64_t transfer_bytes = 0;
  double ree_seconds = 0.0;
  double tee_seconds = 0.0;
  double transfer_seconds = 0.0;
};

struct DeploymentProfile {
  std::vector<StageProfile> stages;
  tee::TimelineResult tbnet_timeline;
  tee::TimelineResult baseline_timeline;  ///< whole victim in the TEE
  int64_t secure_model_bytes = 0;
  int64_t secure_activation_peak = 0;
  int64_t baseline_secure_bytes = 0;

  double latency_reduction() const {
    return tbnet_timeline.makespan_s > 0
               ? baseline_timeline.makespan_s / tbnet_timeline.makespan_s
               : 0.0;
  }
  double memory_reduction() const {
    const double tb =
        static_cast<double>(secure_model_bytes + secure_activation_peak);
    return tb > 0 ? static_cast<double>(baseline_secure_bytes) / tb : 0.0;
  }
};

/// Profiles `model` against `victim` on the given device for a CHW input.
DeploymentProfile profile_deployment(const core::TwoBranchModel& model,
                                     const nn::Sequential& victim,
                                     const tee::CostModel& device,
                                     const Shape& input_chw);

/// Pretty-prints the profile as an aligned table.
std::string format_profile(const DeploymentProfile& profile);

}  // namespace tbnet::runtime
