#include "runtime/deployed.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "nn/fuse.h"
#include "tee/fault.h"
#include "nn/quant.h"
#include "nn/serialize.h"
#include "tensor/ops.h"
#include "tensor/simd.h"

namespace tbnet::runtime {
namespace {

using tee::kTeeErrorBadParameters;
using tee::kTeeErrorBadState;
using tee::kTeeSuccess;
using tee::pack_floats;
using tee::pack_i64;
using tee::unpack_floats;
using tee::unpack_i64;

void pack_tensor(std::vector<uint8_t>& buf, const Tensor& t) {
  pack_i64(buf, t.shape().ndim());
  for (int64_t d : t.shape().dims()) pack_i64(buf, d);
  pack_floats(buf, t.data(), t.numel());
}

Tensor unpack_tensor(const std::vector<uint8_t>& buf, size_t* offset) {
  const int64_t rank = unpack_i64(buf, offset);
  if (rank < 0 || rank > 8) throw std::out_of_range("unpack_tensor: bad rank");
  std::vector<int64_t> dims;
  for (int64_t i = 0; i < rank; ++i) dims.push_back(unpack_i64(buf, offset));
  Shape shape(dims);
  std::vector<float> data = unpack_floats(buf, offset, shape.numel());
  return Tensor(shape, std::move(data));
}

Tensor to_batch1(const Tensor& image_chw) {
  if (image_chw.shape().ndim() != 3) {
    throw std::invalid_argument("infer: expected a CHW image, got " +
                                image_chw.shape().str());
  }
  return image_chw.reshaped(Shape{1, image_chw.dim(0), image_chw.dim(1),
                                  image_chw.dim(2)});
}

constexpr int64_t kFloat = static_cast<int64_t>(sizeof(float));

// ------------------------------------------------------------------------
// TbnetTA: the secure-branch trusted application.
// ------------------------------------------------------------------------
class TbnetTA : public tee::TrustedApp {
 public:
  /// `image`: stage count, per stage (channel map, fused flag, block blob).
  explicit TbnetTA(const std::vector<uint8_t>& image)
      : exec_ctx_(tee::World::kSecure) {
    size_t off = 0;
    const int64_t stages = unpack_i64(image, &off);
    if (stages <= 0 || stages > 4096) {
      throw std::runtime_error("TbnetTA: corrupt TA image (stage count)");
    }
    for (int64_t i = 0; i < stages; ++i) {
      const int64_t map_len = unpack_i64(image, &off);
      std::vector<int64_t> map;
      for (int64_t j = 0; j < map_len; ++j) map.push_back(unpack_i64(image, &off));
      fused_flags_.push_back(unpack_i64(image, &off) != 0);
      const int64_t blob_len = unpack_i64(image, &off);
      std::string blob(reinterpret_cast<const char*>(image.data()) +
                           static_cast<std::ptrdiff_t>(off),
                       static_cast<size_t>(blob_len));
      off += static_cast<size_t>(blob_len);
      std::istringstream is(blob, std::ios::binary);
      blocks_.push_back(nn::load_model(is));
      maps_.push_back(std::move(map));
    }
    // The image ships pre-folded (build_tbnet_ta_image); what remains is to
    // pre-pack weight panels and build each block's fusion plan. Packs are
    // allocated from the TA's own context arena before any forward runs, so
    // they survive every per-call rewind.
    for (auto& block : blocks_) block->prepare_inference(exec_ctx_);
  }

  void on_install(tee::TaContext& ctx) override {
    int64_t model_bytes = 0;
    for (const auto& b : blocks_) model_bytes += b->param_bytes();
    model_alloc_ = ctx.memory->allocate(model_bytes, "tbnet-ta/model");
  }

  uint32_t invoke(uint32_t command, const std::vector<uint8_t>& in,
                  std::vector<uint8_t>& out, tee::TaContext& ctx) override {
    switch (command) {
      case kCmdReset:
        acc_ = Tensor();
        acc_alloc_.release();
        next_stage_ = -1;
        return kTeeSuccess;

      case kCmdSetInput: {
        size_t off = 0;
        acc_ = unpack_tensor(in, &off);
        acc_alloc_ =
            ctx.memory->allocate(acc_.numel() * kFloat, "tbnet-ta/input");
        next_stage_ = 0;
        return kTeeSuccess;
      }

      case kCmdPushStage: {
        size_t off = 0;
        const int64_t stage = unpack_i64(in, &off);
        if (stage != next_stage_ ||
            stage >= static_cast<int64_t>(blocks_.size()) ||
            !fused_flags_[static_cast<size_t>(stage)]) {
          return kTeeErrorBadState;
        }
        const Tensor r_out = unpack_tensor(in, &off);
        // Working-set accounting: incoming REE contribution + stage output
        // live alongside the stored fused input during the stage.
        auto incoming_alloc = ctx.memory->allocate(r_out.numel() * kFloat,
                                                   "tbnet-ta/incoming");
        Tensor out_t = blocks_[static_cast<size_t>(stage)]->forward(
            exec_ctx_, acc_, false);
        auto out_alloc =
            ctx.memory->allocate(out_t.numel() * kFloat, "tbnet-ta/out");
        // Fusion: select the REE channels aligned with our retained ones
        // (paper §3.5), then element-wise add (sharded on the TA context).
        Tensor aligned =
            core::gather_channels(r_out, maps_[static_cast<size_t>(stage)]);
        if (aligned.shape() != out_t.shape()) return kTeeErrorBadParameters;
        add(exec_ctx_, out_t, aligned, out_t);
        // The new fused map replaces the previous one.
        acc_ = std::move(out_t);
        acc_alloc_ = std::move(out_alloc);
        next_stage_ = static_cast<int>(stage) + 1;
        return kTeeSuccess;
      }

      case kCmdGetLogits: {
        if (!run_tail(ctx)) return kTeeErrorBadState;
        pack_tensor(out, acc_);
        return kTeeSuccess;
      }

      case kCmdPredict: {
        if (!run_tail(ctx)) return kTeeErrorBadState;
        pack_i64(out, acc_.argmax());
        return kTeeSuccess;
      }

      case kCmdPredictBatch: {
        if (!run_tail(ctx)) return kTeeErrorBadState;
        const std::vector<int64_t> labels = argmax_rows(acc_);
        pack_i64(out, static_cast<int64_t>(labels.size()));
        for (int64_t label : labels) pack_i64(out, label);
        return kTeeSuccess;
      }

      case kCmdSetWidth: {
        // Intra-op width cap for the secure context's shards. A pure
        // scheduling hint: legal any time (even mid-pipeline), never
        // changes results, so no next_stage_ bookkeeping.
        size_t off = 0;
        const int64_t width = unpack_i64(in, &off);
        exec_ctx_.set_intra_op_width(static_cast<int>(width));
        return kTeeSuccess;
      }

      default:
        return kTeeErrorBadParameters;
    }
  }

 private:
  /// Advances through the trailing non-fused stages (the classifier head,
  /// which runs entirely inside the TEE with no REE contribution). Returns
  /// false unless every stage has then been executed.
  bool run_tail(tee::TaContext& ctx) {
    while (next_stage_ >= 0 &&
           next_stage_ < static_cast<int>(blocks_.size()) &&
           !fused_flags_[static_cast<size_t>(next_stage_)]) {
      Tensor out = blocks_[static_cast<size_t>(next_stage_)]->forward(
          exec_ctx_, acc_, false);
      auto alloc = ctx.memory->allocate(out.numel() * kFloat, "tbnet-ta/out");
      acc_ = std::move(out);
      acc_alloc_ = std::move(alloc);
      ++next_stage_;
    }
    return next_stage_ == static_cast<int>(blocks_.size());
  }

  std::vector<std::unique_ptr<nn::Layer>> blocks_;
  std::vector<std::vector<int64_t>> maps_;
  std::vector<bool> fused_flags_;
  ExecutionContext exec_ctx_;  ///< secure-world context; arena persists
  Tensor acc_;
  int next_stage_ = -1;
  tee::SecureMemoryPool::Allocation model_alloc_, acc_alloc_;
};

// ------------------------------------------------------------------------
// FullTeeTA: the whole victim model inside the TEE (baseline).
// ------------------------------------------------------------------------
class FullTeeTA : public tee::TrustedApp {
 public:
  explicit FullTeeTA(const std::vector<uint8_t>& image) {
    std::string blob(reinterpret_cast<const char*>(image.data()),
                     image.size());
    std::istringstream is(blob, std::ios::binary);
    model_ = nn::load_model(is);
  }

  void on_install(tee::TaContext& ctx) override {
    model_alloc_ =
        ctx.memory->allocate(model_->param_bytes(), "full-tee/model");
  }

  uint32_t invoke(uint32_t command, const std::vector<uint8_t>& in,
                  std::vector<uint8_t>& out, tee::TaContext& ctx) override {
    switch (command) {
      case kCmdSetInput: {
        size_t off = 0;
        input_ = unpack_tensor(in, &off);
        input_alloc_ =
            ctx.memory->allocate(input_.numel() * kFloat, "full-tee/input");
        return kTeeSuccess;
      }
      case kCmdGetLogits:
      case kCmdPredict: {
        if (input_.empty()) return kTeeErrorBadState;
        // Walk the stages with in/out activation accounting.
        Tensor x = input_;
        auto live = ctx.memory->allocate(x.numel() * kFloat, "full-tee/act");
        auto* seq = dynamic_cast<nn::Sequential*>(model_.get());
        if (seq != nullptr) {
          for (int i = 0; i < seq->size(); ++i) {
            Tensor y = seq->layer(i).forward(x, false);
            auto next = ctx.memory->allocate(y.numel() * kFloat,
                                             "full-tee/act");
            x = std::move(y);
            live = std::move(next);
          }
        } else {
          x = model_->forward(x, false);
        }
        if (command == kCmdGetLogits) {
          pack_tensor(out, x);
        } else {
          pack_i64(out, x.argmax());
        }
        return kTeeSuccess;
      }
      default:
        return kTeeErrorBadParameters;
    }
  }

 private:
  std::unique_ptr<nn::Layer> model_;
  Tensor input_;
  tee::SecureMemoryPool::Allocation model_alloc_, input_alloc_;
};

// ------------------------------------------------------------------------
// PartitionTailTA: the DarkneTZ-style TEE tail.
// ------------------------------------------------------------------------
class PartitionTailTA : public tee::TrustedApp {
 public:
  explicit PartitionTailTA(const std::vector<uint8_t>& image) {
    std::string blob(reinterpret_cast<const char*>(image.data()),
                     image.size());
    std::istringstream is(blob, std::ios::binary);
    tail_ = nn::load_model(is);
  }

  void on_install(tee::TaContext& ctx) override {
    model_alloc_ =
        ctx.memory->allocate(tail_->param_bytes(), "partition/model");
  }

  uint32_t invoke(uint32_t command, const std::vector<uint8_t>& in,
                  std::vector<uint8_t>& out, tee::TaContext&) override {
    if (command != kCmdPushStage) return kTeeErrorBadParameters;
    size_t off = 0;
    Tensor feature = unpack_tensor(in, &off);
    Tensor logits = tail_->forward(feature, false);
    pack_tensor(out, logits);
    return kTeeSuccess;
  }

 private:
  std::unique_ptr<nn::Layer> tail_;
  tee::SecureMemoryPool::Allocation model_alloc_;
};

std::vector<uint8_t> serialize_blob(const nn::Layer& layer) {
  std::ostringstream os(std::ios::binary);
  nn::save_model(os, layer);
  const std::string s = os.str();
  return std::vector<uint8_t>(s.begin(), s.end());
}

void ta_check(uint32_t status, const char* what) {
  if (status != kTeeSuccess) {
    throw std::runtime_error(std::string("TA command failed: ") + what +
                             " (status " + std::to_string(status) + ")");
  }
}

/// Backoff ceiling before retry `attempt` (1-based count of failures so
/// far): base * 2^(attempt-1), capped at max. The actual sleep is uniform in
/// [0, ceiling] ("full jitter") so concurrent engines don't retry in step.
int64_t backoff_ceil_us(const DeployedTBNet::Options::RetryPolicy& rp,
                        int attempt) {
  int64_t ceil_us = std::max<int64_t>(rp.base_backoff.count(), 0);
  for (int k = 1; k < attempt && ceil_us < rp.max_backoff.count(); ++k) {
    ceil_us *= 2;
  }
  return std::min<int64_t>(ceil_us, std::max<int64_t>(rp.max_backoff.count(), 0));
}

/// Clones one branch block for deployment, folding inference-mode BatchNorm
/// into the adjacent convs — including depthwise convs since the model format
/// grew a depthwise bias (nn/fuse.h); under TBNET_DETERMINISTIC=1 the clone
/// is unmodified so the deployment stays bit-reproducible.
std::unique_ptr<nn::Layer> deployment_clone(const nn::Layer& block) {
  std::unique_ptr<nn::Layer> copy = block.clone();
  if (simd::fast_kernels_enabled()) {
    if (auto* seq = dynamic_cast<nn::Sequential*>(copy.get())) {
      nn::fold_batchnorm_inference(*seq);
    }
  }
  return copy;
}

/// Builds the TBNet TA image: stage count, then per stage the channel map
/// and the serialized secure block. `secure[i]` is stage i's already-frozen
/// deployment clone (BN folded, and int8-quantized when the engine ran a
/// calibration batch — a quantized block ships ~4x fewer weight bytes, so
/// the measured TA image shrinks accordingly).
std::vector<uint8_t> build_tbnet_ta_image(
    const core::TwoBranchModel& model,
    const std::vector<std::unique_ptr<nn::Layer>>& secure) {
  std::vector<uint8_t> image;
  pack_i64(image, model.num_stages());
  for (int i = 0; i < model.num_stages(); ++i) {
    const core::FusionStage& s = model.stage(i);
    pack_i64(image, static_cast<int64_t>(s.channel_map.size()));
    for (int64_t v : s.channel_map) pack_i64(image, v);
    pack_i64(image, s.fused ? 1 : 0);
    const std::vector<uint8_t> blob =
        serialize_blob(*secure[static_cast<size_t>(i)]);
    pack_i64(image, static_cast<int64_t>(blob.size()));
    image.insert(image.end(), blob.begin(), blob.end());
  }
  return image;
}

}  // namespace

// --------------------------------------------------------- DeployedTBNet --

DeployedTBNet::DeployedTBNet(const core::TwoBranchModel& model,
                             tee::TeeContext& ctx, std::string uuid)
    : DeployedTBNet(model, ctx, std::move(uuid), Options{}) {}

DeployedTBNet::DeployedTBNet(const core::TwoBranchModel& model,
                             tee::TeeContext& ctx, std::string uuid,
                             Options opt)
    : opt_(std::move(opt)),
      exec_ctx_(tee::World::kNormal),
      tee_ctx_(&ctx),
      uuid_(std::move(uuid)) {
  if (opt_.max_batch <= 0) {
    throw std::invalid_argument("DeployedTBNet: max_batch must be positive");
  }
  // Freeze both branches up front: every block is cloned and BN-folded
  // BEFORE the TA image serializes, so quantization (which rewrites the
  // frozen folded weights) lands in the shipped payload.
  std::vector<std::unique_ptr<nn::Layer>> secure;
  std::vector<nn::Layer*> exposed_by_stage(
      static_cast<size_t>(model.num_stages()), nullptr);
  for (int i = 0; i < model.num_stages(); ++i) {
    const core::FusionStage& s = model.stage(i);
    secure.push_back(deployment_clone(*s.secure));
    // Only fused stages execute REE-side; non-fused (head) stages live
    // solely in the TA.
    if (s.fused) {
      exposed_.push_back(deployment_clone(*s.exposed));
      exposed_by_stage[static_cast<size_t>(i)] = exposed_.back().get();
    }
  }
  if (opt_.calibration.numel() > 0) {
    if (opt_.calibration.shape().ndim() != 4) {
      throw std::invalid_argument(
          "DeployedTBNet: calibration batch must be NCHW");
    }
    // Post-training quantization over the true serving dataflow: the REE
    // chain threads through the exposed clones, the TEE chain through the
    // secure ones, with the per-stage gather+add fusion in between — so
    // each conv observes exactly the input distribution it will see while
    // serving. quantize_for_inference runs every block in f32 first and
    // quantizes after, keeping downstream calibration statistics clean.
    Tensor ree = opt_.calibration;
    Tensor tee = opt_.calibration;
    for (int i = 0; i < model.num_stages(); ++i) {
      const core::FusionStage& s = model.stage(i);
      Tensor t_out = nn::quantize_for_inference(
          *secure[static_cast<size_t>(i)], exec_ctx_, tee);
      if (s.fused) {
        ree = nn::quantize_for_inference(
            *exposed_by_stage[static_cast<size_t>(i)], exec_ctx_, ree);
        Tensor aligned = core::gather_channels(ree, s.channel_map);
        if (aligned.shape() != t_out.shape()) {
          throw std::invalid_argument(
              "DeployedTBNet: calibration fusion shape mismatch at stage " +
              std::to_string(i));
        }
        add(exec_ctx_, t_out, aligned, t_out);
      }
      tee = std::move(t_out);
    }
  }
  // The image bytes are retained so reopen() can re-deploy the TA after a
  // permanent secure-world loss without re-freezing the model.
  ta_image_ = build_tbnet_ta_image(model, secure);
  ta_image_bytes_ = static_cast<int64_t>(ta_image_.size());
  tee_ctx_->world().install(uuid_, std::make_unique<TbnetTA>(ta_image_));
  jitter_state_ = opt_.retry.jitter_seed;
  open_session_with_retry();
  // Pre-pack the REE weight panels (f32 or int8) into this engine's
  // long-lived arena, so the serving hot path runs folded, fused, and
  // pack-free. Unconditional: in deterministic mode the plan/pack steps
  // no-op unless a block is quantized, in which case the scalar int8
  // reference consumes the same pre-packed panels.
  for (auto& block : exposed_) block->prepare_inference(exec_ctx_);
}

int64_t DeployedTBNet::world_switches() const {
  return session_->world_switches();
}

void DeployedTBNet::open_session_with_retry() {
  // The result cap scales with the batch so [N, classes] logits may leave;
  // the per-image budget is the single-image default. Opening crosses the
  // "open" fault site, so it retries under the same policy as invocations.
  const int open_attempts = std::max(opt_.retry.max_attempts, 1);
  for (int attempt = 1;; ++attempt) {
    try {
      session_ = std::make_unique<tee::TeeSession>(tee_ctx_->open_session(
          uuid_, opt_.max_batch * tee::kDefaultMaxResultBytes));
      return;
    } catch (const tee::TransientFault& e) {
      if (attempt >= open_attempts) {
        throw std::runtime_error("DeployedTBNet: open_session failed after " +
                                 std::to_string(open_attempts) +
                                 " attempts: " + e.what());
      }
      const int64_t ceil_us = backoff_ceil_us(opt_.retry, attempt);
      int64_t sleep_us = 0;
      {
        // Count the retry and draw the jitter under the lock; the backoff
        // sleep itself must not hold it (a monitor polling retries() would
        // block for the whole backoff otherwise).
        MutexLock lock(mu_);
        ++retries_;
        if (ceil_us > 0) {
          sleep_us = static_cast<int64_t>(
              next_jitter() % static_cast<uint64_t>(ceil_us + 1));
        }
      }
      if (sleep_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
      }
    }
  }
}

void DeployedTBNet::reopen(const Tensor& canary_nchw) {
  // Tear down first: the dead session must not survive a failed recovery,
  // or the next infer would talk to the torn-down TA instead of failing.
  session_.reset();
  // Re-install from the retained image. TbnetTA re-parses every blob via
  // nn::load_model, which re-verifies the v4 header and per-layer checksums
  // — a corrupted image throws nn::IntegrityError here, at deploy time.
  tee_ctx_->world().install(uuid_, std::make_unique<TbnetTA>(ta_image_));
  open_session_with_retry();
  // The fresh TA starts uncapped; restore the engine's width so a recovered
  // worker shards exactly like it did before the loss.
  if (intra_op_width_ > 0) {
    std::vector<uint8_t> payload;
    pack_i64(payload, intra_op_width_);
    invoke_with_retry(kCmdSetWidth, payload, nullptr, "SetWidth");
  }
  if (canary_nchw.numel() > 0) {
    // Canary verification: the recovered worker must produce sane logits
    // before it re-enters a dispatch pool. Shape and finiteness are the
    // checks available without golden outputs.
    const Tensor logits = infer_batch(canary_nchw);
    const bool shape_ok = logits.shape().ndim() == 2 &&
                          logits.dim(0) == canary_nchw.dim(0) &&
                          logits.dim(1) > 0;
    bool finite = true;
    for (int64_t i = 0; i < logits.numel(); ++i) {
      if (!std::isfinite(logits.data()[i])) {
        finite = false;
        break;
      }
    }
    if (!shape_ok || !finite) {
      throw std::runtime_error(
          "DeployedTBNet::reopen: canary inference produced " +
          std::string(shape_ok ? "non-finite logits" : "bad logit shape") +
          " — recovery rejected");
    }
  }
  MutexLock lock(mu_);
  ++reopens_;
}

void DeployedTBNet::set_intra_op_width(int width) {
  intra_op_width_ = width > 0 ? width : 0;
  exec_ctx_.set_intra_op_width(intra_op_width_);
  // Mirror the cap into the TA so the secure-world shards respect it too.
  std::vector<uint8_t> payload;
  pack_i64(payload, intra_op_width_);
  invoke_with_retry(kCmdSetWidth, payload, nullptr, "SetWidth");
}

uint64_t DeployedTBNet::next_jitter() {
  // splitmix64 over the engine's own state: deterministic per jitter_seed.
  uint64_t z = (jitter_state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

void DeployedTBNet::invoke_with_retry(uint32_t command,
                                      const std::vector<uint8_t>& in,
                                      std::vector<uint8_t>* out,
                                      const char* what) {
  const int attempts = std::max(opt_.retry.max_attempts, 1);
  for (int attempt = 1;; ++attempt) {
    try {
      ta_check(session_->invoke(command, in, out), what);
      return;
    } catch (const tee::TransientFault& e) {
      // Safe to replay: every injection site fires before the TA executes
      // (tee/fault.h), so the command had no secure-world effect.
      if (attempt >= attempts) {
        throw std::runtime_error(std::string(what) + " failed after " +
                                 std::to_string(attempts) +
                                 " attempts: " + e.what());
      }
      const int64_t ceil_us = backoff_ceil_us(opt_.retry, attempt);
      int64_t sleep_us = 0;
      {
        // Count the retry and draw the jitter under the lock; the backoff
        // sleep itself must not hold it (a monitor polling retries() would
        // block for the whole backoff otherwise).
        MutexLock lock(mu_);
        ++retries_;
        if (ceil_us > 0) {
          sleep_us = static_cast<int64_t>(
              next_jitter() % static_cast<uint64_t>(ceil_us + 1));
        }
      }
      if (sleep_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
      }
    }
    // tee::PermanentFault and every other exception propagate immediately:
    // retrying cannot help, serving maps them to Status::kEngineError.
  }
}

void DeployedTBNet::run_stages(const Tensor& batch_nchw) {
  if (batch_nchw.shape().ndim() != 4) {
    throw std::invalid_argument("infer_batch: expected NCHW, got " +
                                batch_nchw.shape().str());
  }
  if (batch_nchw.dim(0) > opt_.max_batch) {
    throw std::invalid_argument(
        "infer_batch: batch " + std::to_string(batch_nchw.dim(0)) +
        " exceeds max_batch " + std::to_string(opt_.max_batch));
  }
  Tensor x = batch_nchw;
  std::vector<uint8_t> payload;
  pack_tensor(payload, x);
  invoke_with_retry(kCmdSetInput, payload, nullptr, "SetInput");
  for (size_t i = 0; i < exposed_.size(); ++i) {
    x = exposed_[i]->forward(exec_ctx_, x, false);
    payload.clear();
    pack_i64(payload, static_cast<int64_t>(i));
    pack_tensor(payload, x);
    invoke_with_retry(kCmdPushStage, payload, nullptr, "PushStage");
  }
}

Tensor DeployedTBNet::infer_batch(const Tensor& batch_nchw) {
  run_stages(batch_nchw);
  std::vector<uint8_t> result;
  invoke_with_retry(kCmdGetLogits, {}, &result, "GetLogits");
  size_t off = 0;
  return unpack_tensor(result, &off);
}

Tensor DeployedTBNet::infer(const Tensor& image_chw) {
  return infer_batch(to_batch1(image_chw));
}

int64_t DeployedTBNet::predict(const Tensor& image_chw) {
  run_stages(to_batch1(image_chw));
  std::vector<uint8_t> result;
  invoke_with_retry(kCmdPredict, {}, &result, "Predict");
  size_t off = 0;
  return unpack_i64(result, &off);
}

std::vector<int64_t> DeployedTBNet::predict_batch(const Tensor& batch_nchw) {
  run_stages(batch_nchw);
  std::vector<uint8_t> result;
  invoke_with_retry(kCmdPredictBatch, {}, &result, "PredictBatch");
  size_t off = 0;
  const int64_t count = unpack_i64(result, &off);
  if (count != batch_nchw.dim(0)) {
    throw std::runtime_error("predict_batch: label count mismatch");
  }
  std::vector<int64_t> labels(static_cast<size_t>(count));
  for (int64_t& label : labels) label = unpack_i64(result, &off);
  return labels;
}

// ------------------------------------------------------ FullTeeDeployment --

FullTeeDeployment::FullTeeDeployment(const nn::Sequential& victim,
                                     tee::TeeContext& ctx, std::string uuid) {
  ctx.world().install(uuid,
                      std::make_unique<FullTeeTA>(serialize_blob(victim)));
  session_ = std::make_unique<tee::TeeSession>(ctx.open_session(uuid));
}

Tensor FullTeeDeployment::infer(const Tensor& image_chw) {
  std::vector<uint8_t> payload;
  pack_tensor(payload, to_batch1(image_chw));
  ta_check(session_->invoke(kCmdSetInput, payload), "SetInput");
  std::vector<uint8_t> result;
  ta_check(session_->invoke(kCmdGetLogits, {}, &result), "GetLogits");
  size_t off = 0;
  return unpack_tensor(result, &off);
}

int64_t FullTeeDeployment::predict(const Tensor& image_chw) {
  return infer(image_chw).argmax();
}

// ---------------------------------------------------- PartitionDeployment --

PartitionDeployment::PartitionDeployment(const nn::Sequential& victim,
                                         int first_tee_stage,
                                         tee::TeeContext& ctx,
                                         std::string uuid)
    : first_tee_stage_(first_tee_stage) {
  if (first_tee_stage <= 0 || first_tee_stage >= victim.size()) {
    throw std::invalid_argument(
        "PartitionDeployment: first_tee_stage out of range");
  }
  nn::Sequential tail;
  for (int i = first_tee_stage; i < victim.size(); ++i) {
    tail.add(victim.layer(i).clone());
  }
  ctx.world().install(uuid,
                      std::make_unique<PartitionTailTA>(serialize_blob(tail)));
  session_ = std::make_unique<tee::TeeSession>(ctx.open_session(uuid));
  for (int i = 0; i < first_tee_stage; ++i) {
    head_.push_back(victim.layer(i).clone());
  }
}

Tensor PartitionDeployment::observable_tee_input(const Tensor& image_chw) {
  Tensor x = to_batch1(image_chw);
  for (auto& l : head_) x = l->forward(x, false);
  return x;
}

Tensor PartitionDeployment::infer(const Tensor& image_chw) {
  Tensor feature = observable_tee_input(image_chw);
  std::vector<uint8_t> payload;
  pack_tensor(payload, feature);
  std::vector<uint8_t> result;
  ta_check(session_->invoke(kCmdPushStage, payload, &result), "PushTail");
  size_t off = 0;
  return unpack_tensor(result, &off);
}

int64_t PartitionDeployment::predict(const Tensor& image_chw) {
  return infer(image_chw).argmax();
}

}  // namespace tbnet::runtime
