#include "runtime/profiler.h"

#include <cstdio>
#include <sstream>

namespace tbnet::runtime {

DeploymentProfile profile_deployment(const core::TwoBranchModel& model,
                                     const nn::Sequential& victim,
                                     const tee::CostModel& device,
                                     const Shape& input_chw) {
  DeploymentProfile profile;
  const TwoBranchFootprint fp = measure_two_branch(model, input_chw);
  const VictimFootprint vfp = measure_victim(victim, input_chw);

  for (size_t i = 0; i < fp.stages.size(); ++i) {
    const tee::StageCost& cost = fp.stages[i];
    StageProfile sp;
    sp.stage = static_cast<int>(i);
    sp.fused = model.stage(static_cast<int>(i)).fused;
    sp.exposed_macs = cost.exposed_macs;
    sp.secure_macs = cost.secure_macs;
    sp.transfer_bytes = cost.transfer_bytes;
    sp.ree_seconds =
        device.compute_seconds(tee::World::kNormal, cost.exposed_macs);
    sp.tee_seconds =
        device.compute_seconds(tee::World::kSecure, cost.secure_macs);
    sp.transfer_seconds =
        sp.fused ? device.transfer_seconds(cost.transfer_bytes) : 0.0;
    profile.stages.push_back(sp);
  }
  profile.tbnet_timeline = simulate_two_branch(device, fp.stages);
  profile.baseline_timeline =
      simulate_full_tee(device, vfp.stage_macs, vfp.input_bytes);
  profile.secure_model_bytes = fp.secure_model_bytes;
  profile.secure_activation_peak = fp.secure_activation_peak;
  profile.baseline_secure_bytes = vfp.total_bytes;
  return profile;
}

std::string format_profile(const DeploymentProfile& p) {
  std::ostringstream os;
  char line[256];
  os << "stage | fused |   REE MACs |   TEE MACs | transfer B |  REE ms |"
        "  TEE ms | xfer ms\n";
  os << std::string(88, '-') << "\n";
  for (const StageProfile& s : p.stages) {
    std::snprintf(line, sizeof(line),
                  "%5d | %5s | %10lld | %10lld | %10lld | %7.3f | %7.3f | %7.3f\n",
                  s.stage, s.fused ? "yes" : "no",
                  static_cast<long long>(s.exposed_macs),
                  static_cast<long long>(s.secure_macs),
                  static_cast<long long>(s.transfer_bytes),
                  1e3 * s.ree_seconds, 1e3 * s.tee_seconds,
                  1e3 * s.transfer_seconds);
    os << line;
  }
  std::snprintf(line, sizeof(line),
                "\nlatency: baseline %.4f s, TBNet %.4f s (%.2fx)\n",
                p.baseline_timeline.makespan_s, p.tbnet_timeline.makespan_s,
                p.latency_reduction());
  os << line;
  std::snprintf(line, sizeof(line),
                "secure memory: baseline %.1f KiB, TBNet %.1f KiB model +"
                " %.1f KiB activations (%.2fx)\n",
                p.baseline_secure_bytes / 1024.0,
                p.secure_model_bytes / 1024.0,
                p.secure_activation_peak / 1024.0, p.memory_reduction());
  os << line;
  return os.str();
}

}  // namespace tbnet::runtime
