#pragma once
// Deployed inference engines.
//
// DeployedTBNet is the production shape of a finalized two-branch model:
// M_R's blocks run as normal-world code; M_T is serialized, installed as a
// trusted application in the simulated secure world, and driven through the
// OP-TEE-style session API. Every intermediate feature map crosses the
// one-way channel; the TEE releases only the final prediction.
//
// Two prior-art baselines share the infrastructure:
//   * FullTeeDeployment — the entire victim inside the TEE (full protection,
//     worst latency/memory; the paper's comparison baseline).
//   * PartitionDeployment — DarkneTZ-style layer split with plaintext
//     feature maps crossing both ways; the substitute-layer attack in
//     attack/ breaks it, motivating TBNet's one-way design.

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/two_branch.h"
#include "nn/sequential.h"
#include "tee/optee_api.h"
#include "tensor/execution_context.h"
#include "tensor/thread_annotations.h"

namespace tbnet::runtime {

/// TBNet TA command IDs.
inline constexpr uint32_t kCmdSetInput = 1;
inline constexpr uint32_t kCmdPushStage = 2;
inline constexpr uint32_t kCmdGetLogits = 3;
inline constexpr uint32_t kCmdPredict = 4;
inline constexpr uint32_t kCmdReset = 5;
inline constexpr uint32_t kCmdPredictBatch = 6;
inline constexpr uint32_t kCmdSetWidth = 7;

/// Splits a finalized TwoBranchModel into an REE half and an installed TA.
///
/// The engine is batch-oriented: infer_batch pushes a whole NCHW batch per
/// stage through ONE TA invocation, so the per-inference world-switch and
/// channel-invocation count drops from O(stages) per image to O(stages) per
/// batch. Batched results are bit-identical to per-image calls (every kernel
/// under it processes batch elements independently in index order). Not
/// thread-safe: one engine per serving thread — InferenceServer invokes
/// each of its engines from a single dispatch worker only, so inter-op
/// parallel serving means one DeployedTBNet instance (own secure world /
/// session / ExecutionContext) per worker.
///
/// Deployment is also where the compute graph freezes: both branches' blocks
/// are cloned, inference-mode BatchNorm is folded into the adjacent conv
/// weights (nn/fuse.h), remaining conv/dense+activation runs fuse into GEMM
/// epilogues, depthwise→pointwise (MobileNet separable) pairs fuse into a
/// single producer-fed GEMM whose intermediate map never materializes, and
/// weights are pre-packed into microkernel panels
/// (Layer::prepare_inference). The engine therefore matches the in-process
/// TwoBranchModel::forward to ~1e-6 relative error, not bitwise; set
/// TBNET_DETERMINISTIC=1 to deploy unfolded on the scalar reference kernels
/// for bit-reproducibility runs.
class DeployedTBNet {
 public:
  struct Options {
    /// Largest accepted batch; sizes the session's result cap so batched
    /// logits may leave the TEE while the per-image release budget is
    /// unchanged (max_batch * kDefaultMaxResultBytes total).
    int64_t max_batch = 64;
    /// Optional NCHW calibration batch. When non-empty, deployment runs
    /// post-training int8 quantization (nn/quant.h) over BOTH branches'
    /// frozen clones before the TA image serializes: the calibration batch
    /// is walked through the exact two-branch serving dataflow (REE chain,
    /// TEE chain, per-stage gather+add fusion) so every conv records its
    /// true input range, then every Conv2d (and wide Dense) ships int8. The
    /// TA image shrinks ~4x and the serving GEMMs run the int8 kernel tier
    /// (simd::int8_isa_name()). Empty = f32 deployment, unchanged.
    Tensor calibration;
    /// Bounded retry for transient TEE faults (tee::TransientFault from the
    /// context's FaultInjector, modeling a flaky world switch / channel
    /// hiccup). Every fault site fires BEFORE the TA executes, so replaying
    /// the identical command is side-effect free — see tee/fault.h. A
    /// tee::PermanentFault (and any other exception) is never retried.
    struct RetryPolicy {
      /// Total tries per TA invocation (1 = no retries). After the last
      /// failed attempt the engine throws, which serving surfaces as
      /// Status::kEngineError for the batch — never a hang.
      int max_attempts = 4;
      /// Backoff before retry k is uniform in [0, base_backoff * 2^(k-1)]
      /// ("full jitter"), capped at max_backoff. Deterministic per engine
      /// via jitter_seed.
      std::chrono::microseconds base_backoff{50};
      std::chrono::microseconds max_backoff{2000};
      uint64_t jitter_seed = 0x7e7;
    };
    RetryPolicy retry;
  };

  /// Clones M_R into normal-world memory, serializes M_T + channel maps into
  /// a TA image and installs it in `ctx`'s secure world under `uuid`.
  DeployedTBNet(const core::TwoBranchModel& model, tee::TeeContext& ctx,
                std::string uuid = "tbnet-secure-branch");
  DeployedTBNet(const core::TwoBranchModel& model, tee::TeeContext& ctx,
                std::string uuid, Options opt);

  /// Runs one inference (CHW image), returning the logits the TEE releases.
  Tensor infer(const Tensor& image_chw);

  /// Runs a whole NCHW batch (N <= Options::max_batch) through every stage
  /// with one TA invocation per stage; returns the [N, classes] logits.
  Tensor infer_batch(const Tensor& batch_nchw);

  /// Runs one inference and returns only the predicted label (the strictly
  /// minimal output a hardened deployment would release).
  int64_t predict(const Tensor& image_chw);

  /// Batched predict: one label per image, nothing else leaves the TEE.
  std::vector<int64_t> predict_batch(const Tensor& batch_nchw);

  int num_stages() const { return static_cast<int>(exposed_.size()); }
  int64_t ta_image_bytes() const { return ta_image_bytes_; }
  int64_t max_batch() const { return opt_.max_batch; }

  /// High-water mark of the REE-side scratch arena (packed weight panels +
  /// per-call workspace). With fused im2col→panel lowering the conv stages
  /// allocate no column matrices, so this tracks the serving working set
  /// rather than the sum of per-layer lowering buffers.
  int64_t workspace_bytes() const { return exec_ctx_.arena().capacity_bytes(); }

  /// World switches this engine's session has performed (amortization
  /// observable: batch N costs the same count as a single image).
  int64_t world_switches() const;

  /// Transient-fault retries this engine has performed (session open +
  /// every TA invocation). Feeds ServingStats::retries in bench/tests;
  /// thread-safe, so a monitor may poll it while the engine's dispatch
  /// worker is mid-batch.
  int64_t retries() const {
    MutexLock lock(mu_);
    return retries_;
  }

  /// Recovers the engine after a permanent secure-world loss (TA panic,
  /// session torn down, corrupted transfer): re-installs the TA from the
  /// retained image bytes — which re-runs the v4 checksum verification the
  /// image got at first deploy — and re-opens the session under the retry
  /// policy. When `canary_nchw` is non-empty, one inference runs through
  /// the fresh session and the logits are checked for shape and finiteness;
  /// any failure throws and leaves the engine quarantine-able again. This
  /// is the InferenceServer supervision layer's RecoverFn; see
  /// runtime/server.h.
  void reopen(const Tensor& canary_nchw = Tensor());

  /// Times reopen() completed successfully. Thread-safe like retries().
  int64_t reopens() const {
    MutexLock lock(mu_);
    return reopens_;
  }

  /// Caps intra-op parallelism on BOTH worlds' contexts: the REE context
  /// directly, the TA's secure context via a kCmdSetWidth invocation. An
  /// elastic InferenceServer sets each engine to ~hardware_threads /
  /// active_workers so N engines sharding concurrently submit ~one chunk
  /// per core instead of N. <= 0 removes the cap. Re-applied automatically
  /// by reopen(), so a recovered worker keeps its width. Results are
  /// bit-identical across widths (scheduling hint only).
  void set_intra_op_width(int width);
  int intra_op_width() const { return intra_op_width_; }

  /// The session, for enabling device-timing simulation in benches.
  tee::TeeSession& session() { return *session_; }

 private:
  /// Pushes `batch` through the REE stages + TA, leaving the TA ready for a
  /// final GetLogits/Predict command.
  void run_stages(const Tensor& batch_nchw);

  /// session_->invoke with the Options::RetryPolicy applied: transient
  /// faults back off (exponential, full jitter) and replay; exhaustion and
  /// permanent faults throw. Also checks the TA status like ta_check.
  void invoke_with_retry(uint32_t command, const std::vector<uint8_t>& in,
                         std::vector<uint8_t>* out, const char* what);
  /// Next backoff-jitter draw (splitmix64 over jitter_state_).
  uint64_t next_jitter() TS_REQUIRES(mu_);

  /// Opens (or re-opens) session_ against tee_ctx_, retrying transient
  /// "open" faults under Options::RetryPolicy.
  void open_session_with_retry();

  std::vector<std::unique_ptr<nn::Layer>> exposed_;
  /// Deliberately NOT mu_-guarded: the engine is single-dispatch-thread by
  /// contract (class comment), and the one cross-thread writer — reopen()
  /// on the supervisor thread — only runs while the owning worker is parked
  /// in quarantine (InferenceServer's health protocol guarantees the
  /// worker's BatchFn and the RecoverFn never overlap). Guarding it here
  /// would serialize every TA invocation for a hand-off that is already
  /// externally synchronized.
  std::unique_ptr<tee::TeeSession> session_;
  Options opt_;
  ExecutionContext exec_ctx_;  ///< REE-world context (arena + pool)
  tee::TeeContext* tee_ctx_ = nullptr;  ///< not owned; outlives the engine
  std::string uuid_;
  std::vector<uint8_t> ta_image_;  ///< retained for reopen()'s re-deploy
  int64_t ta_image_bytes_ = 0;
  int intra_op_width_ = 0;  ///< last set_intra_op_width; reopen re-applies
  /// Guards the fault-handling counters a monitor may read cross-thread
  /// (retries/reopens) and the jitter PRNG both retry paths draw from.
  mutable Mutex mu_;
  int64_t retries_ TS_GUARDED_BY(mu_) = 0;
  int64_t reopens_ TS_GUARDED_BY(mu_) = 0;
  uint64_t jitter_state_ TS_GUARDED_BY(mu_) = 0;
};

/// Baseline: whole victim model inside the TEE.
class FullTeeDeployment {
 public:
  FullTeeDeployment(const nn::Sequential& victim, tee::TeeContext& ctx,
                    std::string uuid = "full-victim");

  Tensor infer(const Tensor& image_chw);
  int64_t predict(const Tensor& image_chw);

 private:
  std::unique_ptr<tee::TeeSession> session_;
};

/// Prior-art baseline: stages [0, first_tee_stage) in the REE, the rest in
/// the TEE (DarkneTZ-style). Requires a bidirectional-policy context.
class PartitionDeployment {
 public:
  PartitionDeployment(const nn::Sequential& victim, int first_tee_stage,
                      tee::TeeContext& ctx,
                      std::string uuid = "partition-tail");

  Tensor infer(const Tensor& image_chw);
  int64_t predict(const Tensor& image_chw);

  /// What an attacker monitoring REE memory observes entering the TEE — the
  /// exact input of the hidden layers. Combined with the logits the user
  /// receives, this is the training set for the substitute-layer attack.
  Tensor observable_tee_input(const Tensor& image_chw);

  int first_tee_stage() const { return first_tee_stage_; }

 private:
  std::vector<std::unique_ptr<nn::Layer>> head_;  // REE-resident stages
  std::unique_ptr<tee::TeeSession> session_;
  int first_tee_stage_ = 0;
};

}  // namespace tbnet::runtime
