#include "runtime/server.h"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "tensor/simd.h"

namespace tbnet::runtime {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kRejected:
      return "rejected";
    case Status::kExpired:
      return "expired";
    case Status::kEngineError:
      return "engine_error";
  }
  return "unknown";
}

InferenceServer::InferenceServer(std::vector<BatchFn> engines, Config cfg)
    : engines_(std::move(engines)), cfg_(cfg), start_(Clock::now()) {
  if (engines_.empty()) {
    throw std::invalid_argument("InferenceServer: no engine functions");
  }
  for (const BatchFn& e : engines_) {
    if (!e) {
      throw std::invalid_argument("InferenceServer: null engine function");
    }
  }
  if (cfg_.max_batch <= 0) {
    throw std::invalid_argument("InferenceServer: max_batch must be positive");
  }
  if (cfg_.queue_capacity < 0) {
    throw std::invalid_argument(
        "InferenceServer: queue_capacity must be >= 0 (0 = unbounded)");
  }
  if (cfg_.input_chw.ndim() != 0 && cfg_.input_chw.ndim() != 3) {
    throw std::invalid_argument("InferenceServer: input_chw must be CHW, got " +
                                cfg_.input_chw.str());
  }
  expected_chw_ = cfg_.input_chw;
  stats_.per_worker.resize(engines_.size());
  workers_.reserve(engines_.size());
  for (int w = 0; w < static_cast<int>(engines_.size()); ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

InferenceServer::InferenceServer(BatchFn engine, Config cfg)
    : InferenceServer(
          [&engine] {
            std::vector<BatchFn> one;
            one.push_back(std::move(engine));
            return one;
          }(),
          cfg) {}

InferenceServer::~InferenceServer() { shutdown(); }

void InferenceServer::resolve_failure(Pending& p, Status status,
                                      std::string error) {
  InferenceResult r;
  r.status = status;
  r.error = std::move(error);
  r.queue_s = seconds_between(p.enqueued, Clock::now());
  r.total_s = r.queue_s;
  p.promise.set_value(std::move(r));
}

std::future<InferenceResult> InferenceServer::submit(Tensor image_chw) {
  return submit(std::move(image_chw), cfg_.default_deadline);
}

std::future<InferenceResult> InferenceServer::submit(
    Tensor image_chw, std::chrono::microseconds deadline) {
  Pending p;
  p.image = std::move(image_chw);
  p.enqueued = Clock::now();
  p.deadline = deadline.count() > 0 ? p.enqueued + deadline
                                    : Clock::time_point::max();
  std::future<InferenceResult> fut = p.promise.get_future();

  // A malformed request resolves Rejected on its own future — it must never
  // reach a coalesced batch, where the stacking throw would take its
  // innocent batch-mates down with it.
  std::string reject;
  if (p.image.shape().ndim() != 3) {
    reject = "expected a CHW image, got " + p.image.shape().str();
  }

  Pending shed_victim;
  bool have_victim = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (reject.empty() && stop_) reject = "submit after shutdown";
    if (reject.empty()) {
      if (expected_chw_.ndim() == 0) {
        expected_chw_ = p.image.shape();  // first accept pins the shape
      } else if (p.image.shape() != expected_chw_) {
        reject = "image shape " + p.image.shape().str() +
                 " does not match the serving shape " + expected_chw_.str();
      }
    }
    if (reject.empty() && cfg_.queue_capacity > 0 &&
        static_cast<int64_t>(queue_.size()) >= cfg_.queue_capacity) {
      switch (cfg_.admission) {
        case AdmissionPolicy::kBlock:
          // Backpressure: park this submitter until a worker frees space.
          space_cv_.wait(lock, [this] {
            return stop_ || static_cast<int64_t>(queue_.size()) <
                                cfg_.queue_capacity;
          });
          if (stop_) reject = "submit blocked at shutdown";
          break;
        case AdmissionPolicy::kReject:
          reject = "queue full (capacity " +
                   std::to_string(cfg_.queue_capacity) + ")";
          break;
        case AdmissionPolicy::kShedOldest:
          // The victim's in-flight slot transfers to the new request, so
          // in_flight_ is net unchanged within this critical section and
          // drain() never observes a spurious zero.
          shed_victim = std::move(queue_.front());
          queue_.pop_front();
          have_victim = true;
          ++stats_.shed;
          --in_flight_;
          break;
      }
    }
    if (reject.empty()) {
      queue_.push_back(std::move(p));
      ++in_flight_;
      stats_.max_queue_depth = std::max(
          stats_.max_queue_depth, static_cast<int64_t>(queue_.size()));
    } else {
      ++stats_.rejected;
    }
  }
  if (have_victim) {
    resolve_failure(shed_victim, Status::kRejected,
                    "shed under overload (queue capacity " +
                        std::to_string(cfg_.queue_capacity) + ")");
  }
  if (!reject.empty()) {
    resolve_failure(p, Status::kRejected, std::move(reject));
    return fut;
  }
  queue_cv_.notify_one();
  return fut;
}

void InferenceServer::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void InferenceServer::shutdown() {
  // Claim the worker handles under the lock so concurrent shutdown() calls
  // (or shutdown racing the destructor) never join the same thread twice.
  std::vector<std::thread> claimed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    for (std::thread& w : workers_) {
      if (w.joinable()) claimed.push_back(std::move(w));
    }
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();  // blocked submitters resolve Rejected
  for (std::thread& w : claimed) w.join();
}

ServingStats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServingStats snap = stats_;
  snap.uptime_s = seconds_between(start_, Clock::now());
  snap.isa = simd::isa_name();
  snap.int8_isa = simd::int8_isa_name();
  return snap;
}

void InferenceServer::worker_loop(int worker) {
  for (;;) {
    std::vector<Pending> batch;
    std::vector<Pending> expired;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      // Coalesce: wait (bounded by the oldest request's flush deadline, and
      // by its expiry — no point idling for company past the moment it
      // dies) for the queue to fill up to max_batch, then take up to
      // max_batch. With several workers parked here, whichever wakes first
      // claims the batch; the others observe an empty queue and loop back.
      auto flush = queue_.front().enqueued + cfg_.max_queue_delay;
      if (queue_.front().deadline < flush) flush = queue_.front().deadline;
      queue_cv_.wait_until(lock, flush, [this] {
        return stop_ ||
               static_cast<int64_t>(queue_.size()) >= cfg_.max_batch;
      });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      // Claim from the front, enforcing deadlines at batch-formation time:
      // an expired request resolves kExpired without consuming a batch slot
      // or ever touching an engine. FIFO order means the front is the
      // oldest, so expiry checks stay O(1) amortized per request.
      const auto now = Clock::now();
      while (static_cast<int64_t>(batch.size()) < cfg_.max_batch &&
             !queue_.empty()) {
        Pending pr = std::move(queue_.front());
        queue_.pop_front();
        if (pr.deadline <= now) {
          expired.push_back(std::move(pr));
        } else {
          batch.push_back(std::move(pr));
        }
      }
      stats_.expired += static_cast<int64_t>(expired.size());
      // Requests may remain (more than max_batch queued): hand them to a
      // sibling worker instead of serializing behind this batch.
      if (!queue_.empty()) queue_cv_.notify_one();
    }
    // Popping freed queue space: wake submitters blocked on admission.
    if (cfg_.queue_capacity > 0) space_cv_.notify_all();
    if (!expired.empty()) {
      for (Pending& pr : expired) {
        resolve_failure(pr, Status::kExpired,
                        "deadline exceeded before batch formation");
      }
      std::lock_guard<std::mutex> lock(mu_);
      in_flight_ -= static_cast<int64_t>(expired.size());
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
    // run_batch handles the in_flight_ decrement and the drain() wakeup.
    if (!batch.empty()) run_batch(worker, std::move(batch));
    bool done;
    {
      std::lock_guard<std::mutex> lock(mu_);
      done = stop_ && queue_.empty();
    }
    if (done) return;
  }
}

void InferenceServer::run_batch(int worker, std::vector<Pending> batch) {
  const int64_t n = static_cast<int64_t>(batch.size());
  const auto batch_start = Clock::now();

  Tensor logits;
  bool failed = false;
  std::string failure;
  try {
    // Stack the CHW images into one NCHW batch. submit() validated every
    // shape against the pinned serving shape, so a mismatch here is a
    // server bug, not client input — keep the defensive throw.
    const Shape& chw = batch.front().image.shape();
    Shape batched{n, chw.dim(0), chw.dim(1), chw.dim(2)};
    Tensor input(batched);
    const int64_t stride = chw.numel();
    for (int64_t i = 0; i < n; ++i) {
      if (batch[static_cast<size_t>(i)].image.shape() != chw) {
        throw std::logic_error(
            "InferenceServer: mixed image shapes in one batch (" +
            batch[static_cast<size_t>(i)].image.shape().str() + " vs " +
            chw.str() + ") — admission validation failed");
      }
      const float* src = batch[static_cast<size_t>(i)].image.data();
      std::copy(src, src + stride, input.data() + i * stride);
    }
    logits = engines_[static_cast<size_t>(worker)](input);
    if (logits.shape().ndim() != 2 || logits.dim(0) != n) {
      throw std::runtime_error("InferenceServer: engine returned " +
                               logits.shape().str() + " for batch of " +
                               std::to_string(n));
    }
  } catch (const std::exception& e) {
    failed = true;
    failure = e.what();
  } catch (...) {
    failed = true;
    failure = "unknown engine failure";
  }
  const auto batch_end = Clock::now();

  // Stats first, promises second: anyone who has observed a request's
  // future resolve must also see it in stats().
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.requests += n;
    stats_.batches += 1;
    if (failed) stats_.engine_errors += n;
    // Images that actually rode along: the first image of a batch would have
    // been served anyway, so a batch of n coalesces n - 1 (counting all n
    // would let coalesced_images exceed requests - batches and overstate the
    // benefit).
    if (n > 1) stats_.coalesced_images += n - 1;
    stats_.max_batch_observed = std::max(stats_.max_batch_observed, n);
    stats_.batch_latency.record(seconds_between(batch_start, batch_end));
    for (const Pending& p : batch) {
      stats_.request_latency.record(seconds_between(p.enqueued, batch_end));
    }
    WorkerStats& ws = stats_.per_worker[static_cast<size_t>(worker)];
    ws.batches += 1;
    ws.images += n;
    ws.busy_s += seconds_between(batch_start, batch_end);
  }

  for (int64_t i = 0; i < n; ++i) {
    Pending& p = batch[static_cast<size_t>(i)];
    InferenceResult r;
    r.batch_size = n;
    r.queue_s = seconds_between(p.enqueued, batch_start);
    r.total_s = seconds_between(p.enqueued, batch_end);
    if (failed) {
      // The whole batch failed in one engine call; each rider resolves with
      // the same typed error instead of an exception tearing through every
      // waiting submitter.
      r.status = Status::kEngineError;
      r.error = failure;
      p.promise.set_value(std::move(r));
      continue;
    }
    const int64_t classes = logits.dim(1);
    r.logits = Tensor(Shape{classes});
    const float* row = logits.data() + i * classes;
    std::copy(row, row + classes, r.logits.data());
    r.label = 0;
    for (int64_t j = 1; j < classes; ++j) {
      if (row[j] > row[r.label]) r.label = j;
    }
    p.promise.set_value(std::move(r));
  }

  std::lock_guard<std::mutex> lock(mu_);
  in_flight_ -= n;
  if (in_flight_ == 0) idle_cv_.notify_all();
}

}  // namespace tbnet::runtime
