#include "runtime/server.h"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "nn/serialize.h"
#include "tee/fault.h"
#include "tensor/simd.h"

namespace tbnet::runtime {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kRejected:
      return "rejected";
    case Status::kExpired:
      return "expired";
    case Status::kEngineError:
      return "engine_error";
    case Status::kIntegrityError:
      return "integrity_error";
  }
  return "unknown";
}

InferenceServer::InferenceServer(std::vector<BatchFn> engines,
                                 std::vector<RecoverFn> recovery, Config cfg)
    : engines_(std::move(engines)),
      recovery_(std::move(recovery)),
      cfg_(cfg),
      start_(Clock::now()) {
  if (engines_.empty()) {
    throw std::invalid_argument("InferenceServer: no engine functions");
  }
  for (const BatchFn& e : engines_) {
    if (!e) {
      throw std::invalid_argument("InferenceServer: null engine function");
    }
  }
  if (!recovery_.empty() && recovery_.size() != engines_.size()) {
    throw std::invalid_argument(
        "InferenceServer: recovery functions must be empty or one per engine");
  }
  if (cfg_.max_batch <= 0) {
    throw std::invalid_argument("InferenceServer: max_batch must be positive");
  }
  if (cfg_.queue_capacity < 0) {
    throw std::invalid_argument(
        "InferenceServer: queue_capacity must be >= 0 (0 = unbounded)");
  }
  if (cfg_.input_chw.ndim() != 0 && cfg_.input_chw.ndim() != 3) {
    throw std::invalid_argument("InferenceServer: input_chw must be CHW, got " +
                                cfg_.input_chw.str());
  }
  expected_chw_ = cfg_.input_chw;
  stats_.per_worker.resize(engines_.size());
  stats_.workers_high_water = static_cast<int64_t>(engines_.size());
  control_.resize(engines_.size());
  last_tick_ = start_;
  workers_.reserve(engines_.size());
  for (int w = 0; w < static_cast<int>(engines_.size()); ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
  supervisor_ = std::thread([this] { supervisor_loop(); });
}

InferenceServer::InferenceServer(BatchFn engine, Config cfg)
    : InferenceServer(
          [&engine] {
            std::vector<BatchFn> one;
            one.push_back(std::move(engine));
            return one;
          }(),
          std::vector<RecoverFn>{}, cfg) {}

InferenceServer::InferenceServer(EngineFactory factory, Config cfg)
    : factory_(std::move(factory)), cfg_(cfg), start_(Clock::now()) {
  if (!factory_) {
    throw std::invalid_argument("InferenceServer: null engine factory");
  }
  if (cfg_.min_workers < 1 || cfg_.max_workers < cfg_.min_workers) {
    throw std::invalid_argument(
        "InferenceServer: need 1 <= min_workers <= max_workers");
  }
  if (cfg_.max_batch <= 0) {
    throw std::invalid_argument("InferenceServer: max_batch must be positive");
  }
  if (cfg_.queue_capacity < 0) {
    throw std::invalid_argument(
        "InferenceServer: queue_capacity must be >= 0 (0 = unbounded)");
  }
  if (cfg_.input_chw.ndim() != 0 && cfg_.input_chw.ndim() != 3) {
    throw std::invalid_argument("InferenceServer: input_chw must be CHW, got " +
                                cfg_.input_chw.str());
  }
  expected_chw_ = cfg_.input_chw;
  // Every slot exists from the start — engines_/recovery_/control_ never
  // reallocate, so run_batch's unlocked engines_[w] read stays valid for the
  // server's lifetime. Slots above min_workers hold a null BatchFn until the
  // autoscaler builds one; their health (kParked) keeps their worker thread
  // from ever claiming work before then.
  const size_t slots = static_cast<size_t>(cfg_.max_workers);
  engines_.resize(slots);
  recovery_.resize(slots);
  control_.resize(slots);
  stats_.per_worker.resize(slots);
  stats_.workers_high_water = cfg_.min_workers;
  last_tick_ = start_;
  for (int w = 0; w < cfg_.max_workers; ++w) {
    if (w < cfg_.min_workers) {
      auto built = factory_(w);
      if (!built.first) {
        throw std::invalid_argument(
            "InferenceServer: factory returned a null engine");
      }
      engines_[static_cast<size_t>(w)] = std::move(built.first);
      recovery_[static_cast<size_t>(w)] = std::move(built.second);
    } else {
      control_[static_cast<size_t>(w)].health = WorkerHealth::kParked;
      stats_.per_worker[static_cast<size_t>(w)].health = WorkerHealth::kParked;
    }
  }
  workers_.reserve(slots);
  for (int w = 0; w < cfg_.max_workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
  supervisor_ = std::thread([this] { supervisor_loop(); });
}

InferenceServer::~InferenceServer() { shutdown(); }

void InferenceServer::resolve_failure(Pending& p, Status status,
                                      std::string error) {
  InferenceResult r;
  r.status = status;
  r.error = std::move(error);
  r.queue_s = seconds_between(p.enqueued, Clock::now());
  r.total_s = r.queue_s;
  p.promise.set_value(std::move(r));
}

int InferenceServer::live_workers_locked() const {
  int live = 0;
  for (const WorkerControl& wc : control_) {
    if (wc.health != WorkerHealth::kDead) ++live;
  }
  return live;
}

int InferenceServer::active_workers_locked() const {
  int active = 0;
  for (const WorkerControl& wc : control_) {
    if (wc.health != WorkerHealth::kDead &&
        wc.health != WorkerHealth::kParked) {
      ++active;
    }
  }
  return active;
}

int64_t InferenceServer::queued_total_locked() const {
  int64_t total = 0;
  for (const std::deque<Pending>& lane : lanes_) {
    total += static_cast<int64_t>(lane.size());
  }
  return total;
}

bool InferenceServer::lanes_empty_locked() const {
  for (const std::deque<Pending>& lane : lanes_) {
    if (!lane.empty()) return false;
  }
  return true;
}

void InferenceServer::enqueue_locked(Pending p) {
  std::deque<Pending>& lane = lanes_[static_cast<size_t>(p.priority)];
  // Earliest-deadline-first within the lane, stable for ties: walk from the
  // back past strictly-later deadlines. No-deadline requests (time max) stay
  // FIFO among themselves behind every deadlined one; the common all-FIFO /
  // monotone-deadline traffic inserts at the back in O(1).
  auto it = lane.end();
  while (it != lane.begin() && std::prev(it)->deadline > p.deadline) --it;
  lane.insert(it, std::move(p));
}

InferenceServer::Pending InferenceServer::pop_shed_victim_locked() {
  for (std::deque<Pending>& lane : lanes_) {  // lowest priority first
    if (!lane.empty()) {
      Pending victim = std::move(lane.front());
      lane.pop_front();
      return victim;
    }
  }
  throw std::logic_error("InferenceServer: shed with empty lanes");
}

std::deque<InferenceServer::Pending> InferenceServer::take_queue_locked() {
  std::deque<Pending> taken;
  for (int lane = kPriorityLanes - 1; lane >= 0; --lane) {
    for (Pending& p : lanes_[static_cast<size_t>(lane)]) {
      taken.push_back(std::move(p));
    }
    lanes_[static_cast<size_t>(lane)].clear();
  }
  return taken;
}

bool InferenceServer::trip_breaker_locked(int w) {
  WorkerControl& wc = control_[static_cast<size_t>(w)];
  if (wc.health != WorkerHealth::kHealthy) return false;
  wc.strikes = 0;
  ++stats_.quarantines;
  ++stats_.per_worker[static_cast<size_t>(w)].quarantines;
  const bool recoverable = static_cast<size_t>(w) < recovery_.size() &&
                           recovery_[static_cast<size_t>(w)] != nullptr;
  if (recoverable) {
    wc.health = WorkerHealth::kQuarantined;
    wc.recovery_attempts = 0;
    wc.next_recovery = Clock::now() + cfg_.recovery_backoff;
    supervisor_cv_.notify_all();
  } else {
    // No way back: a breaker trip without a RecoverFn is terminal.
    wc.health = WorkerHealth::kDead;
  }
  return true;
}

std::future<InferenceResult> InferenceServer::submit(Tensor image_chw) {
  return submit(std::move(image_chw), cfg_.default_deadline,
                Priority::kNormal);
}

std::future<InferenceResult> InferenceServer::submit(
    Tensor image_chw, std::chrono::microseconds deadline) {
  return submit(std::move(image_chw), deadline, Priority::kNormal);
}

std::future<InferenceResult> InferenceServer::submit(
    Tensor image_chw, std::chrono::microseconds deadline, Priority priority) {
  Pending p;
  p.image = std::move(image_chw);
  p.enqueued = Clock::now();
  p.deadline = deadline.count() > 0 ? p.enqueued + deadline
                                    : Clock::time_point::max();
  p.priority = priority;
  std::future<InferenceResult> fut = p.promise.get_future();

  // A malformed request resolves Rejected on its own future — it must never
  // reach a coalesced batch, where the stacking throw would take its
  // innocent batch-mates down with it.
  std::string reject;
  if (p.image.shape().ndim() != 3) {
    reject = "expected a CHW image, got " + p.image.shape().str();
  }

  Pending shed_victim;
  bool have_victim = false;
  {
    MutexLock lock(mu_);
    if (reject.empty() && stop_) reject = "submit after shutdown";
    // With every worker dead there is no engine that will ever run this
    // request; admitting it would strand the future until shutdown.
    if (reject.empty() && live_workers_locked() == 0) {
      reject = "no live workers";
    }
    if (reject.empty()) {
      if (expected_chw_.ndim() == 0) {
        expected_chw_ = p.image.shape();  // first accept pins the shape
      } else if (p.image.shape() != expected_chw_) {
        reject = "image shape " + p.image.shape().str() +
                 " does not match the serving shape " + expected_chw_.str();
      }
    }
    if (reject.empty() && cfg_.queue_capacity > 0 &&
        queued_total_locked() >= cfg_.queue_capacity) {
      switch (cfg_.admission) {
        case AdmissionPolicy::kBlock:
          // Backpressure: park this submitter until a worker frees space
          // (or there is no worker left to ever free it).
          space_cv_.wait(lock, [this] {
            mu_.assert_held();  // wait re-acquires mu_ before evaluating
            return stop_ || live_workers_locked() == 0 ||
                   queued_total_locked() < cfg_.queue_capacity;
          });
          if (stop_) {
            reject = "submit blocked at shutdown";
          } else if (live_workers_locked() == 0) {
            reject = "no live workers";
          }
          break;
        case AdmissionPolicy::kReject:
          reject = "queue full (capacity " +
                   std::to_string(cfg_.queue_capacity) + ")";
          break;
        case AdmissionPolicy::kShedOldest:
          // The victim — the lowest lane's front, so low-priority traffic
          // absorbs overload first — hands its in-flight slot to the new
          // request: in_flight_ is net unchanged within this critical
          // section and drain() never observes a spurious zero.
          shed_victim = pop_shed_victim_locked();
          have_victim = true;
          ++stats_.shed;
          --in_flight_;
          break;
      }
    }
    if (reject.empty()) {
      enqueue_locked(std::move(p));
      ++in_flight_;
      stats_.max_queue_depth =
          std::max(stats_.max_queue_depth, queued_total_locked());
    } else {
      ++stats_.rejected;
    }
  }
  if (have_victim) {
    resolve_failure(shed_victim, Status::kRejected,
                    "shed under overload (queue capacity " +
                        std::to_string(cfg_.queue_capacity) + ")");
  }
  if (!reject.empty()) {
    resolve_failure(p, Status::kRejected, std::move(reject));
    return fut;
  }
  // notify_all: only claimable workers wait on queue_cv_ (non-Healthy ones
  // sit on park_cv_), but a single notification could still be consumed by
  // a worker in its bounded coalescing wait while an idle worker sleeps on.
  queue_cv_.notify_all();
  return fut;
}

void InferenceServer::drain() {
  // Requeued riders keep their in_flight_ slot, so this also waits for work
  // bounced off a quarantined worker to be re-served (possibly by the same
  // worker after recovery). With max_recovery_attempts <= 0 and a recovery
  // that never succeeds, that wait is unbounded — cap the attempts (the
  // exhausted worker dies and the backlog resolves) when drain() must
  // terminate without a healthy engine.
  MutexLock lock(mu_);
  idle_cv_.wait(lock, [this] {
    mu_.assert_held();  // wait re-acquires mu_ before evaluating
    return in_flight_ == 0;
  });
}

void InferenceServer::shutdown() {
  // Claim the thread handles under the lock so concurrent shutdown() calls
  // (or shutdown racing the destructor) never join the same thread twice.
  std::vector<std::thread> claimed;
  std::thread supervisor;
  {
    MutexLock lock(mu_);
    stop_ = true;
    for (std::thread& w : workers_) {
      if (w.joinable()) claimed.push_back(std::move(w));
    }
    if (supervisor_.joinable()) supervisor = std::move(supervisor_);
  }
  queue_cv_.notify_all();
  park_cv_.notify_all();   // non-Healthy workers exit their park wait
  space_cv_.notify_all();  // blocked submitters resolve Rejected
  supervisor_cv_.notify_all();
  for (std::thread& w : claimed) w.join();
  if (supervisor.joinable()) supervisor.join();
  // Healthy workers drained the queue before exiting; anything still queued
  // had only quarantined/dead workers left and resolves Rejected here so no
  // future ever hangs across shutdown.
  std::deque<Pending> leftover;
  {
    MutexLock lock(mu_);
    leftover = take_queue_locked();
    stats_.rejected += static_cast<int64_t>(leftover.size());
  }
  if (leftover.empty()) return;
  for (Pending& p : leftover) {
    resolve_failure(p, Status::kRejected,
                    "shutdown with no healthy worker left to serve the queue");
  }
  MutexLock lock(mu_);
  in_flight_ -= static_cast<int64_t>(leftover.size());
  if (in_flight_ == 0) idle_cv_.notify_all();
}

ServingStats InferenceServer::stats() const {
  MutexLock lock(mu_);
  ServingStats snap = stats_;
  snap.uptime_s = seconds_between(start_, Clock::now());
  snap.isa = simd::isa_name();
  snap.int8_isa = simd::int8_isa_name();
  for (size_t w = 0; w < control_.size(); ++w) {
    snap.per_worker[w].health = control_[w].health;
  }
  return snap;
}

void InferenceServer::worker_loop(int worker) {
  for (;;) {
    std::vector<Pending> batch;
    std::vector<Pending> expired;
    {
      MutexLock lock(mu_);
      // A non-Healthy worker must not claim work — and must not camp on
      // queue_cv_ while it waits to be restored: a non-claimable waiter on
      // queue_cv_ could consume a queue notification meant for the worker
      // that can actually serve the request (lost wakeup), and in an
      // elastic server Parked slots are the steady-state MAJORITY. It parks
      // here, on park_cv_, until the supervisor restores it (park_cv_ is
      // notified on recovery and scale-up) or shutdown; queue_cv_ only ever
      // carries claimable waiters.
      park_cv_.wait(lock, [this, worker] {
        mu_.assert_held();  // wait re-acquires mu_ before evaluating
        return stop_ || control_[static_cast<size_t>(worker)].health ==
                            WorkerHealth::kHealthy;
      });
      if (control_[static_cast<size_t>(worker)].health !=
          WorkerHealth::kHealthy) {
        return;  // only stop_ releases a non-Healthy worker from park_cv_
      }
      // Healthy: wait for work. Breaker trips are self-inflicted (only this
      // worker's own run_batch quarantines it), but the AUTOSCALER can park
      // a Healthy worker from the supervisor thread whenever the lock is
      // free — it notifies queue_cv_ when it does, and both waits below
      // release on the health flip so the worker returns to park_cv_
      // instead of lingering among the claimable waiters.
      queue_cv_.wait(lock, [this, worker] {
        mu_.assert_held();  // wait re-acquires mu_ before evaluating
        return stop_ ||
               control_[static_cast<size_t>(worker)].health !=
                   WorkerHealth::kHealthy ||
               !lanes_empty_locked();
      });
      if (lanes_empty_locked() || control_[static_cast<size_t>(worker)]
                                          .health != WorkerHealth::kHealthy) {
        if (stop_) return;
        continue;
      }
      // Coalesce: wait for the lanes to fill up to max_batch, then take up
      // to max_batch. The wait is bounded by the OLDEST queued request's
      // flush deadline and by the most urgent front's expiry (no point
      // idling for company past the moment it dies). EDF ordering makes
      // each lane's front the most URGENT request, not the oldest ARRIVAL —
      // an early no-deadline request sorts behind later deadlined ones — so
      // honoring max_queue_delay takes a scan over every queued request;
      // the scan only runs when fewer than max_batch are queued, so it is
      // O(max_batch). With several workers arriving here, whichever wakes
      // first claims the batch; the others observe empty lanes and loop.
      if (queued_total_locked() < cfg_.max_batch) {
        auto flush = Clock::time_point::max();
        for (const std::deque<Pending>& lane : lanes_) {
          if (lane.empty()) continue;
          if (lane.front().deadline < flush) flush = lane.front().deadline;
          for (const Pending& p : lane) {
            const auto f = p.enqueued + cfg_.max_queue_delay;
            if (f < flush) flush = f;
          }
        }
        queue_cv_.wait_until(lock, flush, [this, worker] {
          mu_.assert_held();  // wait re-acquires mu_ before evaluating
          return stop_ ||
                 control_[static_cast<size_t>(worker)].health !=
                     WorkerHealth::kHealthy ||
                 queued_total_locked() >= cfg_.max_batch;
        });
      }
      // The coalescing wait released the lock: a sibling may have drained
      // the lanes, and the autoscaler may have parked THIS worker. A parked
      // worker stops claiming immediately (its pending wake-up work goes to
      // the remaining pool) — that is what makes scale-down prompt without
      // ever abandoning a claimed batch.
      if (lanes_empty_locked() || control_[static_cast<size_t>(worker)]
                                          .health != WorkerHealth::kHealthy) {
        if (stop_) return;
        continue;
      }
      // Claim highest lane first, enforcing deadlines at batch-formation
      // time: an expired request resolves kExpired without consuming a
      // batch slot or ever touching an engine. Lanes are EDF-ordered, so
      // each lane's front is its most urgent request and expiry checks stay
      // O(1) amortized per request.
      const auto now = Clock::now();
      for (int ln = kPriorityLanes - 1; ln >= 0; --ln) {
        std::deque<Pending>& lane = lanes_[static_cast<size_t>(ln)];
        while (static_cast<int64_t>(batch.size()) < cfg_.max_batch &&
               !lane.empty()) {
          Pending pr = std::move(lane.front());
          lane.pop_front();
          if (pr.deadline <= now) {
            expired.push_back(std::move(pr));
          } else {
            batch.push_back(std::move(pr));
          }
        }
      }
      stats_.expired += static_cast<int64_t>(expired.size());
      // Requests may remain (more than max_batch queued): hand them to the
      // sibling workers instead of serializing behind this batch.
      // notify_all, not notify_one — a single notification could land on a
      // sibling sitting in its coalescing wait (predicate false, wakeup
      // consumed) while an idle sibling keeps sleeping.
      if (!lanes_empty_locked()) queue_cv_.notify_all();
    }
    // Popping freed queue space: wake submitters blocked on admission.
    if (cfg_.queue_capacity > 0) space_cv_.notify_all();
    if (!expired.empty()) {
      for (Pending& pr : expired) {
        resolve_failure(pr, Status::kExpired,
                        "deadline exceeded before batch formation");
      }
      MutexLock lock(mu_);
      in_flight_ -= static_cast<int64_t>(expired.size());
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
    // run_batch handles the in_flight_ decrement and the drain() wakeup.
    if (!batch.empty()) run_batch(worker, std::move(batch));
    bool done;
    {
      MutexLock lock(mu_);
      done = stop_ && lanes_empty_locked();
    }
    if (done) return;
  }
}

void InferenceServer::run_batch(int worker, std::vector<Pending> batch) {
  const int64_t n = static_cast<int64_t>(batch.size());
  const auto batch_start = Clock::now();

  Tensor logits;
  bool failed = false;
  bool trip_now = false;  // first-strike trip: permanent / integrity failure
  Status fail_status = Status::kEngineError;
  std::string failure;
  try {
    // Stack the CHW images into one NCHW batch. submit() validated every
    // shape against the pinned serving shape, so a mismatch here is a
    // server bug, not client input — keep the defensive throw.
    const Shape& chw = batch.front().image.shape();
    Shape batched{n, chw.dim(0), chw.dim(1), chw.dim(2)};
    Tensor input(batched);
    const int64_t stride = chw.numel();
    for (int64_t i = 0; i < n; ++i) {
      if (batch[static_cast<size_t>(i)].image.shape() != chw) {
        throw std::logic_error(
            "InferenceServer: mixed image shapes in one batch (" +
            batch[static_cast<size_t>(i)].image.shape().str() + " vs " +
            chw.str() + ") — admission validation failed");
      }
      const float* src = batch[static_cast<size_t>(i)].image.data();
      std::copy(src, src + stride, input.data() + i * stride);
    }
    logits = engines_[static_cast<size_t>(worker)](input);
    if (logits.shape().ndim() != 2 || logits.dim(0) != n) {
      throw std::runtime_error("InferenceServer: engine returned " +
                               logits.shape().str() + " for batch of " +
                               std::to_string(n));
    }
  } catch (const tee::IntegrityFault& e) {
    // Corruption detected at the TEE transfer boundary: the channel is not
    // trustworthy for a blind replay, so this is a first-strike trip and
    // the riders surface kIntegrityError — never wrong logits.
    failed = true;
    trip_now = true;
    fail_status = Status::kIntegrityError;
    failure = e.what();
  } catch (const nn::IntegrityError& e) {
    // Corrupted model image detected while (re)deploying — same taxonomy.
    failed = true;
    trip_now = true;
    fail_status = Status::kIntegrityError;
    failure = e.what();
  } catch (const tee::PermanentFault& e) {
    // The engine's secure-world session is gone; consecutive-failure
    // counting would only burn more batches against a dead session.
    failed = true;
    trip_now = true;
    failure = e.what();
  } catch (const std::exception& e) {
    failed = true;
    failure = e.what();
  } catch (...) {
    failed = true;
    failure = "unknown engine failure";
  }
  const auto batch_end = Clock::now();
  const bool watchdog_overrun =
      cfg_.watchdog_timeout.count() > 0 &&
      batch_end - batch_start > cfg_.watchdog_timeout;

  // Stats first, promises second: anyone who has observed a request's
  // future resolve must also see it in stats(). Breaker/requeue decisions
  // live in the same critical section so a stats() snapshot never shows a
  // quarantine without its requeued riders (or vice versa).
  std::vector<Pending> resolve_now;
  std::deque<Pending> flushed;  // backlog failed because no worker is left
  int64_t requeued_count = 0;
  {
    MutexLock lock(mu_);
    if (watchdog_overrun) ++stats_.watchdog_trips;
    bool tripped = false;
    WorkerControl& wc = control_[static_cast<size_t>(worker)];
    if (cfg_.breaker_threshold > 0 && wc.health == WorkerHealth::kHealthy) {
      if (failed || watchdog_overrun) {
        ++wc.strikes;
        if ((failed && trip_now) || wc.strikes >= cfg_.breaker_threshold) {
          tripped = trip_breaker_locked(worker);
        }
      } else {
        wc.strikes = 0;  // the breaker counts CONSECUTIVE failures
      }
    }
    // Re-queue once: when this worker just tripped, its riders' failure is
    // the worker's fault, not theirs — bounce first-time riders back to the
    // queue front (order preserved) for a surviving worker, or for this one
    // after recovery. A rider only gets one bounce; with no non-dead worker
    // left there is nobody to bounce to.
    const bool can_requeue = failed && tripped && live_workers_locked() > 0;
    std::vector<Pending> requeue;
    for (Pending& p : batch) {
      if (can_requeue && !p.requeued) {
        p.requeued = true;
        requeue.push_back(std::move(p));
      } else {
        resolve_now.push_back(std::move(p));
      }
    }
    requeued_count = static_cast<int64_t>(requeue.size());
    stats_.requeued += requeued_count;
    // Each rider re-enters its own lane at EDF position — NOT a blind
    // push_front: requests enqueued while the batch ran may hold earlier
    // deadlines than the riders, and the lane's sort invariant is what
    // keeps enqueue_locked's back-walk and the O(1) front-expiry honest.
    // The batch was claimed front-first from EDF-sorted lanes and the
    // insert is stable, so riders keep their relative order and never lose
    // their lane by bouncing.
    for (Pending& rider : requeue) {
      enqueue_locked(std::move(rider));
    }
    // A requeued rider is NOT counted as an answered request here — the
    // batch that finally resolves it will count it — preserving the PR-7
    // identity: submits = requests + rejected + shed + expired.
    const int64_t resolved = static_cast<int64_t>(resolve_now.size());
    stats_.requests += resolved;
    stats_.batches += 1;
    if (failed) {
      (fail_status == Status::kIntegrityError ? stats_.integrity_errors
                                              : stats_.engine_errors) +=
          resolved;
    }
    // Images that actually rode along: the first image of a batch would have
    // been served anyway, so a batch resolving n coalesces n - 1 (counting
    // all n would let coalesced_images exceed requests - batches and
    // overstate the benefit).
    if (resolved > 1) stats_.coalesced_images += resolved - 1;
    stats_.max_batch_observed = std::max(stats_.max_batch_observed, n);
    stats_.batch_latency.record(seconds_between(batch_start, batch_end));
    for (const Pending& p : resolve_now) {
      stats_.request_latency.record(seconds_between(p.enqueued, batch_end));
    }
    WorkerStats& ws = stats_.per_worker[static_cast<size_t>(worker)];
    ws.batches += 1;
    ws.images += n;
    ws.busy_s += seconds_between(batch_start, batch_end);
    // The last live worker just died: nothing will ever serve the backlog,
    // so it resolves now with a typed error instead of hanging submitters.
    if (tripped && live_workers_locked() == 0) {
      flushed = take_queue_locked();
      stats_.requests += static_cast<int64_t>(flushed.size());
      stats_.engine_errors += static_cast<int64_t>(flushed.size());
    }
  }
  if (requeued_count > 0) queue_cv_.notify_all();

  for (Pending& p : resolve_now) {
    InferenceResult r;
    r.batch_size = n;
    r.queue_s = seconds_between(p.enqueued, batch_start);
    r.total_s = seconds_between(p.enqueued, batch_end);
    if (failed) {
      // The whole batch failed in one engine call; each rider resolves with
      // the same typed error instead of an exception tearing through every
      // waiting submitter.
      r.status = fail_status;
      r.error = failure;
      p.promise.set_value(std::move(r));
      continue;
    }
    // Index association with logits rows holds: on success nothing was
    // requeued, so resolve_now is the whole batch in claim order.
    const int64_t i = static_cast<int64_t>(&p - resolve_now.data());
    const int64_t classes = logits.dim(1);
    r.logits = Tensor(Shape{classes});
    const float* row = logits.data() + i * classes;
    std::copy(row, row + classes, r.logits.data());
    r.label = 0;
    for (int64_t j = 1; j < classes; ++j) {
      if (row[j] > row[r.label]) r.label = j;
    }
    p.promise.set_value(std::move(r));
  }
  for (Pending& p : flushed) {
    resolve_failure(p, Status::kEngineError,
                    "no live workers (" + failure + ")");
  }

  {
    MutexLock lock(mu_);
    in_flight_ -= static_cast<int64_t>(resolve_now.size() + flushed.size());
    if (in_flight_ == 0) idle_cv_.notify_all();
  }
  if (!flushed.empty()) space_cv_.notify_all();
}

int InferenceServer::autoscale_tick(Clock::time_point now) {
  // Utilization since the previous tick: busy_s deltas of the workers in
  // rotation, over the wall time elapsed. This is the RECENT load signal —
  // lifetime utilization would take minutes to reflect a spike.
  const double elapsed = seconds_between(last_tick_, now);
  last_tick_ = now;
  int active = 0;
  int healthy = 0;
  double busy = 0.0;
  for (size_t w = 0; w < control_.size(); ++w) {
    WorkerControl& wc = control_[w];
    const double b = stats_.per_worker[w].busy_s;
    if (wc.health != WorkerHealth::kDead &&
        wc.health != WorkerHealth::kParked) {
      ++active;
      busy += b - wc.tick_busy_s;
    }
    if (wc.health == WorkerHealth::kHealthy) ++healthy;
    wc.tick_busy_s = b;
  }
  const double util =
      active > 0 && elapsed > 0.0 ? busy / (elapsed * active) : 0.0;
  const int64_t queued = queued_total_locked();
  if (now < next_scale_allowed_) return -1;  // cooldown: no action this tick

  // Scale UP when the backlog exceeds one batch round per healthy worker.
  const double backlog_limit = cfg_.scale_up_queue_factor *
                               static_cast<double>(cfg_.max_batch) *
                               static_cast<double>(std::max(1, healthy));
  if (static_cast<double>(queued) > backlog_limit &&
      active < cfg_.max_workers) {
    for (int w = 0; w < static_cast<int>(control_.size()); ++w) {
      WorkerControl& wc = control_[static_cast<size_t>(w)];
      if (wc.health != WorkerHealth::kParked) continue;
      next_scale_allowed_ = now + cfg_.autoscale_cooldown;
      if (!engines_[static_cast<size_t>(w)]) {
        // No engine yet: hand the slot to supervisor_loop to build one
        // outside the lock. Recovering keeps it out of every other scan
        // (claim loops, this tick) until the install completes.
        wc.health = WorkerHealth::kRecovering;
        return w;
      }
      // Engine survives parking, so unparking is free: flip it back in.
      wc.health = WorkerHealth::kHealthy;
      wc.strikes = 0;
      ++stats_.scale_ups;
      stats_.workers_high_water = std::max(
          stats_.workers_high_water,
          static_cast<int64_t>(active_workers_locked()));
      park_cv_.notify_all();  // the unparked worker finds the backlog itself
      return -1;
    }
    return -1;  // nothing parked (the rest are quarantined/recovering/dead)
  }

  // Scale DOWN when the pool is demonstrably idle: empty lanes and recent
  // utilization under the threshold. Parking the HIGHEST healthy slot keeps
  // the active set a prefix, and a parked worker finishes any batch it
  // already claimed — nothing in flight is abandoned (drain stays exact).
  if (cfg_.scale_down_utilization > 0.0 && healthy > cfg_.min_workers &&
      queued == 0 && util < cfg_.scale_down_utilization) {
    for (int w = static_cast<int>(control_.size()) - 1; w >= 0; --w) {
      WorkerControl& wc = control_[static_cast<size_t>(w)];
      if (wc.health != WorkerHealth::kHealthy) continue;
      wc.health = WorkerHealth::kParked;
      ++stats_.scale_downs;
      next_scale_allowed_ = now + cfg_.autoscale_cooldown;
      // Flush the parked worker out of any queue_cv_ wait (its predicates
      // release on the health flip) so it migrates to park_cv_ instead of
      // consuming queue notifications it can no longer act on.
      queue_cv_.notify_all();
      break;
    }
  }
  return -1;
}

void InferenceServer::supervisor_loop() {
  MutexLock lock(mu_);
  for (;;) {
    if (stop_) return;
    const auto now = Clock::now();
    // Elastic servers evaluate the scaling policy every autoscale_interval.
    if (factory_ && now >= last_tick_ + cfg_.autoscale_interval) {
      const int spawn = autoscale_tick(now);
      if (spawn >= 0) {
        // Build the new slot's engine on this thread, outside the lock —
        // deploying a TA image must not stall submitters or the healthy
        // workers. The slot is Recovering, so nothing else touches it.
        lock.unlock();
        BatchFn engine;
        RecoverFn recover;
        try {
          auto built = factory_(spawn);
          engine = std::move(built.first);
          recover = std::move(built.second);
        } catch (...) {
          engine = nullptr;
        }
        lock.lock();
        WorkerControl& wc = control_[static_cast<size_t>(spawn)];
        if (engine) {
          engines_[static_cast<size_t>(spawn)] = std::move(engine);
          recovery_[static_cast<size_t>(spawn)] = std::move(recover);
          wc.health = WorkerHealth::kHealthy;
          wc.strikes = 0;
          ++stats_.scale_ups;
          stats_.workers_high_water = std::max(
              stats_.workers_high_water,
              static_cast<int64_t>(active_workers_locked()));
          park_cv_.notify_all();  // the spawned worker claims the backlog
        } else {
          // Failed spawn: the slot returns to Parked (a later tick may
          // retry) and the failure is visible in the canary counter.
          wc.health = WorkerHealth::kParked;
          ++stats_.canary_failures;
        }
      }
      continue;
    }
    // The earliest due recovery among quarantined workers (if any).
    int due = -1;
    Clock::time_point earliest = Clock::time_point::max();
    for (int w = 0; w < static_cast<int>(control_.size()); ++w) {
      const WorkerControl& wc = control_[static_cast<size_t>(w)];
      if (wc.health == WorkerHealth::kQuarantined &&
          wc.next_recovery < earliest) {
        earliest = wc.next_recovery;
        due = w;
      }
    }
    // Elastic servers never park indefinitely — the next tick bounds every
    // wait so the scaling policy keeps sampling even without trips.
    Clock::time_point wake = earliest;
    if (factory_) {
      wake = std::min(wake, last_tick_ + cfg_.autoscale_interval);
    }
    if (wake == Clock::time_point::max()) {
      supervisor_cv_.wait(lock);  // woken by trips and shutdown
      continue;
    }
    if (now < wake) {
      supervisor_cv_.wait_until(lock, wake);
      continue;
    }
    if (due < 0 || Clock::now() < earliest) continue;  // only the tick is due
    WorkerControl& wc = control_[static_cast<size_t>(due)];
    wc.health = WorkerHealth::kRecovering;
    RecoverFn recover = recovery_[static_cast<size_t>(due)];
    lock.unlock();
    // The RecoverFn (e.g. DeployedTBNet::reopen + canary) runs outside the
    // lock: it re-deploys a TA image and runs an inference, which must not
    // stall submitters or the healthy workers. The recovering worker's own
    // thread is parked (non-Healthy workers never claim), so the engine is
    // not invoked concurrently.
    bool recovered = true;
    std::string error;
    try {
      recover();
    } catch (const std::exception& e) {
      recovered = false;
      error = e.what();
    } catch (...) {
      recovered = false;
      error = "unknown recovery failure";
    }
    lock.lock();
    std::deque<Pending> flushed;
    if (recovered) {
      wc.health = WorkerHealth::kHealthy;
      wc.strikes = 0;
      wc.recovery_attempts = 0;
      ++stats_.recoveries;
      ++stats_.per_worker[static_cast<size_t>(due)].recoveries;
      park_cv_.notify_all();  // the re-admitted worker may claim again
    } else {
      ++stats_.canary_failures;
      ++wc.recovery_attempts;
      if (cfg_.max_recovery_attempts > 0 &&
          wc.recovery_attempts >= cfg_.max_recovery_attempts) {
        wc.health = WorkerHealth::kDead;
        if (live_workers_locked() == 0) {
          flushed = take_queue_locked();
          stats_.requests += static_cast<int64_t>(flushed.size());
          stats_.engine_errors += static_cast<int64_t>(flushed.size());
        }
      } else {
        // Capped exponential backoff: attempt k waits base * 2^(k-1).
        auto backoff = cfg_.recovery_backoff;
        for (int k = 1; k < wc.recovery_attempts + 1 &&
                        backoff < cfg_.recovery_max_backoff;
             ++k) {
          backoff *= 2;
        }
        wc.next_recovery =
            Clock::now() + std::min(backoff, cfg_.recovery_max_backoff);
        wc.health = WorkerHealth::kQuarantined;
      }
    }
    if (!flushed.empty()) {
      lock.unlock();
      for (Pending& p : flushed) {
        resolve_failure(p, Status::kEngineError,
                        "no live workers (recovery exhausted: " + error + ")");
      }
      lock.lock();
      in_flight_ -= static_cast<int64_t>(flushed.size());
      if (in_flight_ == 0) idle_cv_.notify_all();
      space_cv_.notify_all();
    }
  }
}

}  // namespace tbnet::runtime
