#include "runtime/server.h"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "tensor/simd.h"

namespace tbnet::runtime {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

InferenceServer::InferenceServer(std::vector<BatchFn> engines, Config cfg)
    : engines_(std::move(engines)), cfg_(cfg), start_(Clock::now()) {
  if (engines_.empty()) {
    throw std::invalid_argument("InferenceServer: no engine functions");
  }
  for (const BatchFn& e : engines_) {
    if (!e) {
      throw std::invalid_argument("InferenceServer: null engine function");
    }
  }
  if (cfg_.max_batch <= 0) {
    throw std::invalid_argument("InferenceServer: max_batch must be positive");
  }
  stats_.per_worker.resize(engines_.size());
  workers_.reserve(engines_.size());
  for (int w = 0; w < static_cast<int>(engines_.size()); ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

InferenceServer::InferenceServer(BatchFn engine, Config cfg)
    : InferenceServer(
          [&engine] {
            std::vector<BatchFn> one;
            one.push_back(std::move(engine));
            return one;
          }(),
          cfg) {}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<InferenceResult> InferenceServer::submit(Tensor image_chw) {
  if (image_chw.shape().ndim() != 3) {
    throw std::invalid_argument("InferenceServer::submit: expected CHW, got " +
                                image_chw.shape().str());
  }
  Pending p;
  p.image = std::move(image_chw);
  p.enqueued = Clock::now();
  std::future<InferenceResult> fut = p.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      throw std::logic_error("InferenceServer::submit after shutdown");
    }
    queue_.push_back(std::move(p));
    ++in_flight_;
    stats_.max_queue_depth = std::max(
        stats_.max_queue_depth, static_cast<int64_t>(queue_.size()));
  }
  queue_cv_.notify_one();
  return fut;
}

void InferenceServer::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void InferenceServer::shutdown() {
  // Claim the worker handles under the lock so concurrent shutdown() calls
  // (or shutdown racing the destructor) never join the same thread twice.
  std::vector<std::thread> claimed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    for (std::thread& w : workers_) {
      if (w.joinable()) claimed.push_back(std::move(w));
    }
  }
  queue_cv_.notify_all();
  for (std::thread& w : claimed) w.join();
}

ServingStats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServingStats snap = stats_;
  snap.uptime_s = seconds_between(start_, Clock::now());
  snap.isa = simd::isa_name();
  snap.int8_isa = simd::int8_isa_name();
  return snap;
}

void InferenceServer::worker_loop(int worker) {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      // Coalesce: wait (bounded by the oldest request's flush deadline) for
      // the queue to fill up to max_batch, then take up to max_batch. With
      // several workers parked here, whichever wakes first claims the
      // batch; the others observe an empty queue and loop back.
      const auto deadline = queue_.front().enqueued + cfg_.max_queue_delay;
      queue_cv_.wait_until(lock, deadline, [this] {
        return stop_ ||
               static_cast<int64_t>(queue_.size()) >= cfg_.max_batch;
      });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      const size_t take =
          std::min(queue_.size(), static_cast<size_t>(cfg_.max_batch));
      batch.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.begin() +
                                           static_cast<std::ptrdiff_t>(take)));
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(take));
      // Requests may remain (more than max_batch queued): hand them to a
      // sibling worker instead of serializing behind this batch.
      if (!queue_.empty()) queue_cv_.notify_one();
    }
    // run_batch handles the in_flight_ decrement and the drain() wakeup.
    run_batch(worker, std::move(batch));
    bool done;
    {
      std::lock_guard<std::mutex> lock(mu_);
      done = stop_ && queue_.empty();
    }
    if (done) return;
  }
}

void InferenceServer::run_batch(int worker, std::vector<Pending> batch) {
  const int64_t n = static_cast<int64_t>(batch.size());
  const auto batch_start = Clock::now();

  Tensor logits;
  std::exception_ptr failure;
  try {
    // Stack the CHW images into one NCHW batch (shapes must agree).
    const Shape& chw = batch.front().image.shape();
    Shape batched{n, chw.dim(0), chw.dim(1), chw.dim(2)};
    Tensor input(batched);
    const int64_t stride = chw.numel();
    for (int64_t i = 0; i < n; ++i) {
      if (batch[static_cast<size_t>(i)].image.shape() != chw) {
        throw std::invalid_argument(
            "InferenceServer: mixed image shapes in one batch (" +
            batch[static_cast<size_t>(i)].image.shape().str() + " vs " +
            chw.str() + ")");
      }
      const float* src = batch[static_cast<size_t>(i)].image.data();
      std::copy(src, src + stride, input.data() + i * stride);
    }
    logits = engines_[static_cast<size_t>(worker)](input);
    if (logits.shape().ndim() != 2 || logits.dim(0) != n) {
      throw std::runtime_error("InferenceServer: engine returned " +
                               logits.shape().str() + " for batch of " +
                               std::to_string(n));
    }
  } catch (...) {
    failure = std::current_exception();
  }
  const auto batch_end = Clock::now();

  // Stats first, promises second: anyone who has observed a request's
  // future resolve must also see it in stats().
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.requests += n;
    stats_.batches += 1;
    // Images that actually rode along: the first image of a batch would have
    // been served anyway, so a batch of n coalesces n - 1 (counting all n
    // would let coalesced_images exceed requests - batches and overstate the
    // benefit).
    if (n > 1) stats_.coalesced_images += n - 1;
    stats_.max_batch_observed = std::max(stats_.max_batch_observed, n);
    stats_.batch_latency.record(seconds_between(batch_start, batch_end));
    for (const Pending& p : batch) {
      stats_.request_latency.record(seconds_between(p.enqueued, batch_end));
    }
    WorkerStats& ws = stats_.per_worker[static_cast<size_t>(worker)];
    ws.batches += 1;
    ws.images += n;
    ws.busy_s += seconds_between(batch_start, batch_end);
  }

  for (int64_t i = 0; i < n; ++i) {
    Pending& p = batch[static_cast<size_t>(i)];
    if (failure) {
      p.promise.set_exception(failure);
      continue;
    }
    InferenceResult r;
    const int64_t classes = logits.dim(1);
    r.logits = Tensor(Shape{classes});
    const float* row = logits.data() + i * classes;
    std::copy(row, row + classes, r.logits.data());
    r.label = 0;
    for (int64_t j = 1; j < classes; ++j) {
      if (row[j] > row[r.label]) r.label = j;
    }
    r.batch_size = n;
    r.queue_s = seconds_between(p.enqueued, batch_start);
    r.total_s = seconds_between(p.enqueued, batch_end);
    p.promise.set_value(std::move(r));
  }

  std::lock_guard<std::mutex> lock(mu_);
  in_flight_ -= n;
  if (in_flight_ == 0) idle_cv_.notify_all();
}

}  // namespace tbnet::runtime
