#pragma once
// Footprint measurement: per-stage MACs, transfer sizes, and memory needs of
// deployable models. These feed the tee:: cost model (latency, Tab. 3) and
// the secure-memory accounting (Fig. 3).

#include <cstdint>
#include <string>
#include <vector>

#include "core/two_branch.h"
#include "nn/sequential.h"
#include "tee/cost_model.h"

namespace tbnet::runtime {

/// Accumulates latency samples and answers percentile queries. Used for the
/// serving path's per-request and per-batch numbers (p50/p99 in Tab. style
/// reports and bench_serving's JSON).
///
/// Memory is bounded: count/total/mean/min/max are exact running values, but
/// at most `capacity` samples are retained for percentile queries, via
/// uniform reservoir sampling (Algorithm R with a fixed-seed splitmix64, so
/// runs are reproducible). Below capacity every sample is retained and
/// percentiles are exact — identical to the unbounded recorder; beyond it
/// they are unbiased estimates, which is what lets a week-long soak keep a
/// live p99 without `samples_` growing with uptime.
///
/// Concurrency contract: NOT internally synchronized. The recorders embedded
/// in ServingStats live inside InferenceServer behind its mutex (the stats_
/// member is TS_GUARDED_BY(mu_), which covers these fields transitively),
/// and stats() hands out value copies — a snapshot is never written again.
/// Standalone recorders in benches are single-threaded.
class LatencyRecorder {
 public:
  static constexpr int64_t kDefaultCapacity = 4096;

  explicit LatencyRecorder(int64_t capacity = kDefaultCapacity);

  void record(double seconds);

  int64_t count() const { return count_; }  ///< exact (not reservoir size)
  double total() const { return total_; }
  double mean() const;
  double min() const;
  double max() const;

  /// Nearest-rank percentile over the retained samples, p in [0, 100]
  /// (exact while count() <= capacity()). Returns 0 with no samples.
  double percentile(double p) const;

  /// The retained reservoir — all samples while count() <= capacity().
  const std::vector<double>& samples() const { return samples_; }
  int64_t capacity() const { return capacity_; }

 private:
  int64_t capacity_;
  int64_t count_ = 0;
  double total_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  uint64_t rng_state_;
  std::vector<double> samples_;
};

/// Lifecycle state of one dispatch worker under the supervision layer
/// (PR 8). Transitions: Healthy -> Quarantined on a tripped circuit breaker
/// (K consecutive engine-error batches, any PermanentFault/IntegrityFault,
/// or a watchdog overrun); Quarantined -> Recovering when the supervisor's
/// backoff elapses and its RecoverFn runs; Recovering -> Healthy on success
/// (canary passed) or back to Quarantined with doubled backoff on failure;
/// -> Dead when the worker has no RecoverFn or the recovery-attempt budget
/// is exhausted. Dead is terminal for the server's lifetime.
///
/// The autoscaler (PR 10) adds Parked: a deliberately idle worker that the
/// scaling policy has taken out of rotation (Healthy <-> Parked only — a
/// parked worker is not broken, so it never enters the recovery machinery,
/// and an elastic server's workers above `min_workers` start Parked until
/// load warrants spawning them). Parked workers count as live for
/// admission: a queued request is servable because the supervisor can
/// unpark capacity at the next tick.
enum class WorkerHealth {
  kHealthy = 0,
  kQuarantined,
  kRecovering,
  kDead,
  kParked,
};

/// Printable state name
/// ("healthy"/"quarantined"/"recovering"/"dead"/"parked").
/// Exhaustive switch, no default — adding a state breaks this build.
const char* worker_health_name(WorkerHealth health);

/// Per-dispatch-worker accounting inside runtime::InferenceServer: which
/// worker ran how many batches and how long it spent inside its engine.
/// Utilization (busy_s / ServingStats::uptime_s) is the load-balance
/// observable — with inter-op parallelism, one saturated worker next to
/// idle ones means the queue is starving, not the hardware.
struct WorkerStats {
  int64_t batches = 0;  ///< engine invocations dispatched by this worker
  int64_t images = 0;   ///< images across those batches
  double busy_s = 0.0;  ///< wall time spent inside the engine function
  WorkerHealth health = WorkerHealth::kHealthy;  ///< snapshot at stats()
  int64_t quarantines = 0;  ///< breaker trips on this worker
  int64_t recoveries = 0;   ///< successful recoveries (back to Healthy)
};

/// Aggregate serving statistics reported by runtime::InferenceServer.
/// Plain data, externally synchronized: the server's live instance is
/// guarded by its mutex; what stats() returns is an independent copy.
struct ServingStats {
  int64_t requests = 0;        ///< images an engine answered (Ok/EngineError)
  int64_t batches = 0;         ///< engine invocations
  /// Images that rode along with an already-pending request: each batch of
  /// n > 1 contributes n - 1 (its first image would have been served
  /// anyway). Equals requests - batches when every request was answered, so
  /// it directly counts the engine invocations coalescing saved; never
  /// exceeds requests - batches.
  int64_t coalesced_images = 0;
  int64_t max_batch_observed = 0;
  /// High-water mark of the submit queue (requests accepted but not yet
  /// claimed by a dispatch worker), sampled at every submit. A depth that
  /// keeps climbing past max_batch * workers means the worker pool is
  /// undersized for the offered load.
  int64_t max_queue_depth = 0;
  // ---- overload / fault accounting (PR 7). A request resolves through
  // exactly one of: requests (an engine ran it — engine_errors marks the
  // failed subset), rejected, shed, or expired; so every submit() is
  // requests + rejected + shed + expired.
  /// Requests never admitted: full queue under AdmissionPolicy::kReject, a
  /// malformed/mismatched input shape, or a submit after shutdown (all
  /// resolve Status::kRejected without touching the queue).
  int64_t rejected = 0;
  /// Admitted requests dropped from the queue FRONT by kShedOldest to make
  /// room for a newer one (they also resolve Status::kRejected — shedding
  /// keeps the freshest work when the queue is full).
  int64_t shed = 0;
  /// Admitted requests whose deadline passed before a worker claimed them;
  /// resolved Status::kExpired at batch-formation time, no engine ran them.
  int64_t expired = 0;
  /// Requests whose batch reached an engine that then failed; each resolves
  /// Status::kEngineError (counted per request, so a failed batch of n adds
  /// n). These ARE included in `requests`.
  int64_t engine_errors = 0;
  /// Requests that failed an integrity check (corrupted transfer frame or
  /// model image, surfaced as tee::IntegrityFault / nn::IntegrityError);
  /// each resolves Status::kIntegrityError and IS included in `requests`,
  /// like engine_errors. Corruption is never served as wrong logits.
  int64_t integrity_errors = 0;
  // ---- supervision accounting (PR 8). Riders of a failed batch that are
  // requeued do NOT count as `requests` until the batch that finally
  // resolves them runs, so the PR-7 identity above is preserved verbatim.
  int64_t quarantines = 0;       ///< circuit-breaker trips (all workers)
  int64_t recoveries = 0;        ///< workers returned Quarantined -> Healthy
  int64_t requeued = 0;          ///< riders re-queued off a tripped worker
  int64_t canary_failures = 0;   ///< recovery attempts that failed
  int64_t watchdog_trips = 0;    ///< batches exceeding Config::watchdog_timeout
  /// Engine-side counters the server cannot observe through BatchFn:
  /// transient-fault retries performed (DeployedTBNet::retries()) and
  /// faults injected (TeeContext::faults().faults_injected()). The
  /// integration (bench_serving, tests) folds them into its snapshot before
  /// reporting; the server itself leaves them 0.
  int64_t retries = 0;
  int64_t faults_injected = 0;
  // ---- elasticity accounting (PR 10). Autoscaler decisions made by the
  // supervisor tick; all 0 on a fixed-pool server.
  int64_t scale_ups = 0;    ///< supervisor unparked (or spawned) a worker
  int64_t scale_downs = 0;  ///< supervisor parked a worker
  /// Most workers simultaneously active (Healthy/Quarantined/Recovering —
  /// i.e. in rotation, not Parked/Dead) at any point; on a fixed pool this
  /// is simply the worker count.
  int64_t workers_high_water = 0;
  /// Seconds since the server started, stamped when stats() snapshots —
  /// the denominator for worker utilization.
  double uptime_s = 0.0;
  /// Kernel tiers the runtime dispatch selected for this process, stamped
  /// when stats() snapshots — the f32 and int8 ladders probe different CPU
  /// features (simd::isa_name / simd::int8_isa_name), and both read
  /// "scalar" under TBNET_DETERMINISTIC=1. Serving numbers are only
  /// comparable between runs that report the same tiers, so bench_serving
  /// embeds them in its JSON.
  std::string isa;
  std::string int8_isa;
  LatencyRecorder request_latency;  ///< submit -> result, per request
  LatencyRecorder batch_latency;    ///< engine call, per batch
  std::vector<WorkerStats> per_worker;  ///< one entry per dispatch worker

  double mean_batch_size() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(requests) /
                              static_cast<double>(batches);
  }

  /// Fraction of the server's lifetime worker `w` spent inside its engine.
  double worker_utilization(int w) const {
    if (w < 0 || w >= static_cast<int>(per_worker.size()) || uptime_s <= 0.0) {
      return 0.0;
    }
    return per_worker[static_cast<size_t>(w)].busy_s / uptime_s;
  }
};

/// Static footprint of a two-branch deployment (batch size 1).
struct TwoBranchFootprint {
  std::vector<tee::StageCost> stages;
  int64_t secure_model_bytes = 0;     ///< M_T parameters + BN buffers
  int64_t exposed_model_bytes = 0;    ///< M_R parameters + BN buffers
  int64_t secure_activation_peak = 0; ///< analytic activation peak in TEE
  int64_t secure_total_bytes = 0;     ///< model + activation peak
  int64_t input_bytes = 0;
  int64_t total_transfer_bytes = 0;
};

/// Measures a two-branch model for a CHW input (batch dimension added
/// internally). Uses shape inference only — no forward pass is run.
TwoBranchFootprint measure_two_branch(const core::TwoBranchModel& model,
                                      const Shape& input_chw);

/// Static footprint of a single-branch (victim) model deployed whole.
struct VictimFootprint {
  std::vector<int64_t> stage_macs;
  std::vector<int64_t> stage_out_bytes;
  int64_t model_bytes = 0;
  int64_t activation_peak = 0;
  int64_t total_bytes = 0;  ///< model + activation peak
  int64_t input_bytes = 0;
};

VictimFootprint measure_victim(const nn::Sequential& victim,
                               const Shape& input_chw);

}  // namespace tbnet::runtime
