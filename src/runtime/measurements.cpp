#include "runtime/measurements.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace tbnet::runtime {

namespace {

/// splitmix64 — the reservoir's replacement-index source. Fixed-seeded per
/// recorder so identical sample streams keep identical reservoirs.
uint64_t next_u64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // anonymous namespace

const char* worker_health_name(WorkerHealth health) {
  switch (health) {
    case WorkerHealth::kHealthy:
      return "healthy";
    case WorkerHealth::kQuarantined:
      return "quarantined";
    case WorkerHealth::kRecovering:
      return "recovering";
    case WorkerHealth::kDead:
      return "dead";
    case WorkerHealth::kParked:
      return "parked";
  }
  return "unknown";  // unreachable with a valid enum; keeps -Wreturn-type quiet
}

LatencyRecorder::LatencyRecorder(int64_t capacity)
    : capacity_(capacity), rng_state_(0x1ece5ede) {
  if (capacity_ <= 0) {
    throw std::invalid_argument("LatencyRecorder: capacity must be positive");
  }
}

void LatencyRecorder::record(double seconds) {
  ++count_;
  total_ += seconds;
  if (count_ == 1) {
    min_ = max_ = seconds;
  } else {
    min_ = std::min(min_, seconds);
    max_ = std::max(max_, seconds);
  }
  if (static_cast<int64_t>(samples_.size()) < capacity_) {
    samples_.push_back(seconds);
  } else {
    // Algorithm R: keep each of the count_ samples with probability
    // capacity_/count_ by replacing a uniformly random slot.
    const uint64_t j = next_u64(&rng_state_) % static_cast<uint64_t>(count_);
    if (j < static_cast<uint64_t>(capacity_)) {
      samples_[static_cast<size_t>(j)] = seconds;
    }
  }
}

double LatencyRecorder::mean() const {
  return count_ == 0 ? 0.0 : total_ / static_cast<double>(count_);
}

double LatencyRecorder::min() const { return count_ == 0 ? 0.0 : min_; }

double LatencyRecorder::max() const { return count_ == 0 ? 0.0 : max_; }

double LatencyRecorder::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("LatencyRecorder: percentile out of range");
  }
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: smallest sample with at least p% of the mass below-or-at.
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

namespace {

constexpr int64_t kFloat = static_cast<int64_t>(sizeof(float));

Shape with_batch(const Shape& chw) {
  if (chw.ndim() != 3) {
    throw std::invalid_argument("measure: expected CHW input shape, got " +
                                chw.str());
  }
  return Shape{1, chw.dim(0), chw.dim(1), chw.dim(2)};
}

}  // namespace

TwoBranchFootprint measure_two_branch(const core::TwoBranchModel& model,
                                      const Shape& input_chw) {
  TwoBranchFootprint fp;
  const Shape input = with_batch(input_chw);
  fp.input_bytes = input.numel() * kFloat;

  Shape r_in = input;
  Shape t_in = input;
  for (int i = 0; i < model.num_stages(); ++i) {
    const core::FusionStage& s = model.stage(i);
    tee::StageCost cost;
    const Shape t_out = s.secure->out_shape(t_in);
    cost.secure_macs = s.secure->macs(t_in);
    int64_t working = (t_in.numel() + t_out.numel()) * kFloat;
    if (s.fused) {
      // The REE runs the exposed block, ships its output, and the TEE adds
      // the aligned channels; non-fused stages (the head) cost only M_T
      // compute — the exposed head never executes on the device.
      cost.exposed_macs = s.exposed->macs(r_in);
      const Shape r_out = s.exposed->out_shape(r_in);
      cost.secure_macs += t_out.numel();  // fusion element-wise add
      cost.transfer_bytes = r_out.numel() * kFloat;
      fp.total_transfer_bytes += cost.transfer_bytes;
      working += t_out.numel() * kFloat;  // incoming REE contribution
      r_in = r_out;
    }
    fp.secure_activation_peak = std::max(fp.secure_activation_peak, working);
    fp.stages.push_back(cost);
    t_in = t_out;
  }
  for (int i = 0; i < model.num_stages(); ++i) {
    fp.secure_model_bytes += model.stage(i).secure->param_bytes();
    fp.exposed_model_bytes += model.stage(i).exposed->param_bytes();
  }
  fp.secure_total_bytes = fp.secure_model_bytes + fp.secure_activation_peak;
  return fp;
}

VictimFootprint measure_victim(const nn::Sequential& victim,
                               const Shape& input_chw) {
  VictimFootprint fp;
  const Shape input = with_batch(input_chw);
  fp.input_bytes = input.numel() * kFloat;
  Shape in = input;
  for (int i = 0; i < victim.size(); ++i) {
    const nn::Layer& stage = victim.layer(i);
    fp.stage_macs.push_back(stage.macs(in));
    const Shape out = stage.out_shape(in);
    fp.stage_out_bytes.push_back(out.numel() * kFloat);
    fp.activation_peak =
        std::max(fp.activation_peak, (in.numel() + out.numel()) * kFloat);
    in = out;
  }
  fp.model_bytes = victim.param_bytes();
  fp.total_bytes = fp.model_bytes + fp.activation_peak;
  return fp;
}

}  // namespace tbnet::runtime
