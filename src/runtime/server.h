#pragma once
// InferenceServer — multi-session request coalescing over a batched engine.
//
// Production serving rarely sees one request at a time: many clients submit
// single images concurrently, and the per-batch costs of the deployed TEE
// engine (world switches, TA invocations, channel traffic bookkeeping) make
// it much cheaper to push one batch of N than N batches of one. The server
// accepts concurrent submit() calls, coalesces queued requests into batches
// (up to `max_batch`, flushing a partial batch once the oldest queued
// request has waited `max_queue_delay`), runs them through a caller-provided
// batch function on a single worker thread, and fans the per-image results
// back out through futures. Per-request and per-batch latency land in
// runtime::ServingStats.
//
// The engine function runs on the worker thread only, so a non-thread-safe
// engine (DeployedTBNet, FullTeeDeployment, a bare Sequential) is fine.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/measurements.h"
#include "tensor/tensor.h"

namespace tbnet::runtime {

/// One answered request.
struct InferenceResult {
  Tensor logits;          ///< [classes] row for this image
  int64_t label = 0;      ///< argmax of the row
  int64_t batch_size = 0; ///< size of the batch this request rode in
  double queue_s = 0.0;   ///< submit -> batch start
  double total_s = 0.0;   ///< submit -> result ready
};

class InferenceServer {
 public:
  /// Maps an NCHW batch to [N, classes] logits (e.g. wraps
  /// DeployedTBNet::infer_batch). Invoked from the worker thread only.
  using BatchFn = std::function<Tensor(const Tensor& nchw)>;

  struct Config {
    /// Largest coalesced batch handed to the engine. Must not exceed what
    /// the engine accepts (e.g. DeployedTBNet::Options::max_batch) — the
    /// engine's rejection would fail every request in a full batch.
    int64_t max_batch = 16;
    /// How long the oldest queued request may wait for company before a
    /// partial batch is flushed.
    std::chrono::microseconds max_queue_delay{2000};
  };

  InferenceServer(BatchFn engine, Config cfg);
  explicit InferenceServer(BatchFn engine)
      : InferenceServer(std::move(engine), Config{}) {}

  /// Drains the queue and joins the worker.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues one CHW image; thread-safe. The future resolves once the
  /// request's batch has run (with the engine's exception on failure).
  std::future<InferenceResult> submit(Tensor image_chw);

  /// Blocks until every request submitted so far has been answered.
  void drain();

  /// Stops accepting work, drains, joins. Idempotent and safe to race: the
  /// first caller joins the worker; a concurrent caller may return before
  /// that drain completes.
  void shutdown();

  /// Snapshot of the serving statistics (thread-safe).
  ServingStats stats() const;

  const Config& config() const { return cfg_; }

 private:
  struct Pending {
    Tensor image;
    std::promise<InferenceResult> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();
  void run_batch(std::vector<Pending> batch);

  BatchFn engine_;
  Config cfg_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  // worker wakes on arrivals/shutdown
  std::condition_variable idle_cv_;   // drain() waits for in-flight == 0
  std::vector<Pending> queue_;
  int64_t in_flight_ = 0;  // submitted, not yet answered
  bool stop_ = false;
  ServingStats stats_;

  std::thread worker_;
};

}  // namespace tbnet::runtime
