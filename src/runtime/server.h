#pragma once
// InferenceServer — multi-session request coalescing over batched engines,
// with bounded admission, per-request deadlines, and typed outcomes.
//
// Production serving rarely sees one request at a time: many clients submit
// single images concurrently, and the per-batch costs of the deployed TEE
// engine (world switches, TA invocations, channel traffic bookkeeping) make
// it much cheaper to push one batch of N than N batches of one. The server
// accepts concurrent submit() calls, coalesces queued requests into batches
// (up to `max_batch`, flushing a partial batch once the oldest queued
// request has waited `max_queue_delay`), runs them through caller-provided
// batch functions on a pool of dispatch workers, and fans the per-image
// results back out through futures.
//
// Overload safety: the queue is bounded (`queue_capacity`) with a pick of
// admission policies — block the submitter (backpressure), reject the new
// request, or shed the oldest queued one — and every request can carry a
// deadline that is enforced at batch-formation time (an expired request
// resolves without ever touching an engine). Futures therefore always
// resolve with a typed InferenceResult::Status instead of submit() throwing
// mid-stream: Ok, Rejected (never admitted / shed), Expired (deadline
// passed in queue), or EngineError (its batch ran and the engine failed —
// e.g. TEE retry exhaustion, see runtime/deployed.h). The failure counters
// land in runtime::ServingStats alongside the latency recorders.
//
// Inter-op parallelism: the server runs one dispatch worker PER ENGINE
// function it is given. Each engine is invoked from exactly one worker
// thread, only ever for one batch at a time, so a non-thread-safe engine
// (DeployedTBNet, FullTeeDeployment, a bare Sequential) is fine — the
// caller supplies N independent engines (each with its own
// ExecutionContext/arena; for DeployedTBNet that means one engine instance
// per worker) to serve N batches concurrently. Intra-op kernel threads nest
// under the dispatch workers on the shared ThreadPool, whose work-stealing
// scheduler lets those nested parallel_fors actually share cores.
//
// Supervision (PR 8): permanent engine loss is survivable. Each worker
// carries a circuit breaker — `breaker_threshold` consecutive failed
// batches, any tee::PermanentFault / integrity fault, or a watchdog overrun
// trips it — and a tripped worker is quarantined: it stops claiming work,
// the riders of its failing batch are re-queued ONCE to the surviving
// workers (their futures resolve from whichever batch finally runs them),
// and a supervisor thread retries the worker's RecoverFn (e.g.
// DeployedTBNet::reopen with a canary) under capped exponential backoff
// until the worker re-enters the pool or exhausts its attempt budget and is
// marked dead. Workers without a RecoverFn go straight to dead. When the
// last live worker dies, everything queued (and every later submit)
// resolves with a typed status instead of hanging. Health states and the
// quarantine/recovery counters land in ServingStats.

#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/measurements.h"
#include "tensor/tensor.h"
#include "tensor/thread_annotations.h"

namespace tbnet::runtime {

/// What to do with a new submit() when the queue is at queue_capacity.
enum class AdmissionPolicy {
  /// Block the submitting thread until a worker frees queue space
  /// (backpressure: the client's own submit rate is throttled). A submit
  /// blocked at shutdown resolves Rejected instead of hanging.
  kBlock,
  /// Resolve the NEW request Rejected immediately; queued work is untouched.
  kReject,
  /// Drop the OLDEST queued request (it resolves Rejected, counted in
  /// ServingStats::shed) and admit the new one — under sustained overload
  /// this keeps the freshest work, which is what deadline-bound clients
  /// still have a use for.
  kShedOldest,
};

/// Per-request priority lane (PR 10). Batch formation serves the highest
/// non-empty lane first, ordering WITHIN a lane by earliest deadline
/// (requests without deadlines keep FIFO order — "no deadline" sorts last,
/// stably). kShedOldest drops from the LOWEST non-empty lane, so under
/// sustained overload low-priority traffic absorbs the shedding while high
/// lanes keep their goodput. Not an admission class: every lane obeys the
/// same queue bound and the same accounting identity.
enum class Priority {
  kLow = 0,
  kNormal = 1,
  kHigh = 2,
};

inline constexpr int kPriorityLanes = 3;

/// Typed outcome of one request. The future always resolves with one of
/// these — never an exception — so one bad request or one failing engine
/// cannot tear down a submitter iterating a futures vector.
enum class Status {
  kOk = 0,          ///< logits/label are valid
  kRejected,        ///< never ran: malformed shape, full queue, shed, shutdown
  kExpired,         ///< deadline passed before any engine saw it
  kEngineError,     ///< its batch ran and the engine failed (see error)
  kIntegrityError,  ///< its batch tripped an integrity check (corrupted
                    ///< transfer frame / model image) — detected, not served
};

const char* status_name(Status s);

/// One answered request.
struct InferenceResult {
  Status status = Status::kOk;
  std::string error;      ///< failure detail; empty when status == kOk
  Tensor logits;          ///< [classes] row for this image (kOk only)
  int64_t label = 0;      ///< argmax of the row (kOk only)
  int64_t batch_size = 0; ///< size of the batch this request rode in
  double queue_s = 0.0;   ///< submit -> batch start (or -> resolution)
  double total_s = 0.0;   ///< submit -> result ready

  bool ok() const { return status == Status::kOk; }
};

class InferenceServer {
 public:
  /// Maps an NCHW batch to [N, classes] logits (e.g. wraps
  /// DeployedTBNet::infer_batch). Each engine function is invoked from a
  /// single dispatch worker thread only. A throw is contained to the
  /// throwing batch: its requests resolve kEngineError, siblings are
  /// untouched, and the worker keeps serving.
  using BatchFn = std::function<Tensor(const Tensor& nchw)>;

  struct Config {
    /// Largest coalesced batch handed to an engine. Must not exceed what
    /// the engines accept (e.g. DeployedTBNet::Options::max_batch) — the
    /// engine's rejection would fail every request in a full batch.
    int64_t max_batch = 16;
    /// How long the oldest queued request may wait for company before a
    /// partial batch is flushed.
    std::chrono::microseconds max_queue_delay{2000};
    /// Bound on queued (accepted, unclaimed) requests; 0 = unbounded, which
    /// keeps the pre-PR-7 behavior but lets latency diverge under overload
    /// (see bench_serving's soak section for the receipts).
    int64_t queue_capacity = 0;
    /// Applied when the queue is full (only meaningful with a bound).
    AdmissionPolicy admission = AdmissionPolicy::kBlock;
    /// Deadline stamped on every submit() that doesn't carry its own;
    /// <= 0 = none. Enforced when a worker forms a batch: a request whose
    /// deadline has passed resolves kExpired without running, which bounds
    /// an accepted request's latency by deadline + one batch.
    std::chrono::microseconds default_deadline{0};
    /// Expected CHW shape of every request. When set, a mismatched submit
    /// resolves kRejected alone instead of poisoning its whole coalesced
    /// batch; when empty, the first accepted request pins the shape.
    Shape input_chw;
    // ---- supervision (PR 8) -------------------------------------------
    /// Consecutive failed batches that trip a worker's circuit breaker.
    /// PermanentFault / integrity failures trip it on the first strike
    /// regardless. <= 0 disables the breaker entirely (pre-PR-8 behavior:
    /// failures resolve kEngineError and the worker keeps serving).
    int breaker_threshold = 3;
    /// Supervisor backoff before recovery attempt k is
    /// recovery_backoff * 2^(k-1), capped at recovery_max_backoff.
    std::chrono::microseconds recovery_backoff{5000};
    std::chrono::microseconds recovery_max_backoff{1000000};
    /// Failed recovery attempts before a quarantined worker is marked dead;
    /// <= 0 = keep trying for the server's lifetime.
    int max_recovery_attempts = 0;
    /// A batch whose engine call exceeds this marks the worker suspect: one
    /// breaker strike (counted in ServingStats::watchdog_trips) even when
    /// the batch succeeded, so a wedged-but-eventually-returning engine
    /// drains into quarantine instead of silently serving at 100x latency.
    /// <= 0 disables the watchdog.
    std::chrono::microseconds watchdog_timeout{0};
    // ---- elasticity (PR 10) -------------------------------------------
    // Only read by the EngineFactory constructor; the fixed-pool
    // constructors ignore all five (their worker count is engines.size()).
    /// Workers the elastic server keeps active at all times; the factory is
    /// invoked for them at construction. Must be >= 1 and <= max_workers.
    int min_workers = 1;
    /// Hard ceiling on concurrently active workers. The factory is invoked
    /// lazily (on the supervisor thread, first time a slot scales up), so an
    /// engine that is never needed is never built.
    int max_workers = 1;
    /// How often the supervisor evaluates the scaling policy.
    std::chrono::microseconds autoscale_interval{10000};
    /// Minimum gap between two scaling actions (up OR down). Hysteresis: a
    /// load spike that scales up cannot bounce straight back down — the
    /// utilization signal gets at least one cooldown to reflect the new
    /// pool before the next decision.
    std::chrono::microseconds autoscale_cooldown{100000};
    /// Scale up when queued > scale_up_queue_factor * max_batch * healthy
    /// workers — i.e. the backlog exceeds what the active pool can clear in
    /// one batch round per worker.
    double scale_up_queue_factor = 1.0;
    /// Park a worker when mean active-worker utilization since the last
    /// tick falls below this AND the queue is empty. 0 disables scale-down.
    double scale_down_utilization = 0.3;
  };

  /// Restores a broken worker's engine (e.g. a lambda calling
  /// DeployedTBNet::reopen with a canary batch). Runs on the supervisor
  /// thread while the worker is quarantined — never concurrently with the
  /// worker's BatchFn. A throw means the attempt failed; the supervisor
  /// backs off and retries.
  using RecoverFn = std::function<void()>;

  /// One dispatch worker per engine; engines must all serve the same model
  /// (the server round-robins batches across them by availability, so any
  /// request may land on any engine). `recovery` is empty (no worker can
  /// recover: a tripped breaker is terminal) or one entry per engine (a
  /// null entry makes that worker unrecoverable).
  InferenceServer(std::vector<BatchFn> engines, std::vector<RecoverFn> recovery,
                  Config cfg);
  InferenceServer(std::vector<BatchFn> engines, Config cfg)
      : InferenceServer(std::move(engines), std::vector<RecoverFn>{},
                        std::move(cfg)) {}
  InferenceServer(BatchFn engine, Config cfg);
  explicit InferenceServer(BatchFn engine)
      : InferenceServer(std::move(engine), Config{}) {}

  /// Builds one worker's engine + recovery pair — e.g. deploy a fresh
  /// DeployedTBNet (the reopen()-style deploy path) and wrap it. Invoked on
  /// the constructing thread for the first min_workers slots and on the
  /// supervisor thread (outside the server lock) when the autoscaler spawns
  /// a later slot; never invoked concurrently with itself. A throw during
  /// construction propagates; a throw during scale-up cancels that scale-up
  /// (counted in ServingStats::canary_failures) and the slot stays parked.
  using EngineFactory = std::function<std::pair<BatchFn, RecoverFn>(int worker)>;

  /// Elastic server: cfg.min_workers..cfg.max_workers dispatch workers,
  /// scaled by the supervisor off queue depth and worker utilization (see
  /// the Config knobs). Slots above min_workers start Parked with no engine
  /// built; scale-up activates them (building the engine on first use) and
  /// scale-down parks the highest active slot again. Parked workers hold no
  /// batch mid-park — a worker finishes its claimed batch before it stops
  /// claiming — so drain()/shutdown() accounting is unchanged.
  InferenceServer(EngineFactory factory, Config cfg);

  /// Drains the queue and joins the workers.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues one CHW image; thread-safe. The future always resolves with a
  /// typed status (see InferenceResult) — malformed shapes, a full queue
  /// under kReject, or a post-shutdown submit resolve kRejected instead of
  /// throwing. Under kBlock with a full queue this call blocks (that is the
  /// backpressure). The one-argument form applies cfg.default_deadline; the
  /// short forms submit at Priority::kNormal.
  std::future<InferenceResult> submit(Tensor image_chw);
  std::future<InferenceResult> submit(Tensor image_chw,
                                      std::chrono::microseconds deadline);
  std::future<InferenceResult> submit(Tensor image_chw,
                                      std::chrono::microseconds deadline,
                                      Priority priority);

  /// Blocks until every request submitted so far has been answered.
  void drain();

  /// Stops accepting work, drains, joins. Queued requests are still served
  /// (or expired); submitters blocked on admission resolve kRejected.
  /// Idempotent and safe to race: the first caller joins the workers; a
  /// concurrent caller may return before that drain completes.
  void shutdown();

  /// Snapshot of the serving statistics (thread-safe). per_worker holds one
  /// entry per dispatch worker; uptime_s is stamped at the snapshot.
  ServingStats stats() const;

  const Config& config() const { return cfg_; }
  /// Worker SLOTS (fixed pool: the engine count; elastic: max_workers —
  /// ServingStats::per_worker has this many entries; parked slots show
  /// health kParked with zero batches).
  int workers() const { return static_cast<int>(engines_.size()); }

 private:
  struct Pending {
    Tensor image;
    std::promise<InferenceResult> promise;
    std::chrono::steady_clock::time_point enqueued;
    /// Absolute expiry; time_point::max() = none.
    std::chrono::steady_clock::time_point deadline;
    Priority priority = Priority::kNormal;
    /// Already survived one failed batch. A rider is re-queued AT MOST once
    /// (bounding the work one request can consume); a second failure
    /// resolves it with the failing batch's status.
    bool requeued = false;
  };

  /// Supervisor-side state of one worker; guarded by mu_.
  struct WorkerControl {
    WorkerHealth health = WorkerHealth::kHealthy;
    int strikes = 0;            ///< consecutive failed batches while Healthy
    int recovery_attempts = 0;  ///< failed recoveries since quarantine
    std::chrono::steady_clock::time_point next_recovery{};
    /// busy_s at the previous autoscaler tick (utilization delta base).
    double tick_busy_s = 0.0;
  };

  void worker_loop(int worker);
  void supervisor_loop();
  /// One autoscaler evaluation (elastic servers only), run entirely under
  /// mu_. Unpark/park actions apply inline; when scale-up needs an engine
  /// BUILT, returns the slot (marked Recovering so no tick re-picks it) for
  /// supervisor_loop to run the factory outside the lock. Returns -1 when
  /// no build is needed.
  int autoscale_tick(std::chrono::steady_clock::time_point now)
      TS_REQUIRES(mu_);
  void run_batch(int worker, std::vector<Pending> batch);
  /// Trips worker `w`'s breaker: quarantined (supervisor woken) when it has
  /// a RecoverFn, dead otherwise. Returns true if this call transitioned it
  /// out of Healthy.
  bool trip_breaker_locked(int w) TS_REQUIRES(mu_);
  /// Counts workers not Dead (Parked workers ARE live: the autoscaler can
  /// return them to rotation, so queued work remains servable).
  int live_workers_locked() const TS_REQUIRES(mu_);
  /// Counts workers in rotation (Healthy / Quarantined / Recovering).
  int active_workers_locked() const TS_REQUIRES(mu_);
  /// Requests across all lanes (the queue-bound observable).
  int64_t queued_total_locked() const TS_REQUIRES(mu_);
  bool lanes_empty_locked() const TS_REQUIRES(mu_);
  /// Inserts into its priority lane in earliest-deadline-first order
  /// (stable: no-deadline requests stay FIFO behind deadlined ones).
  void enqueue_locked(Pending p) TS_REQUIRES(mu_);
  /// Pops the shed victim: the front of the LOWEST non-empty lane.
  Pending pop_shed_victim_locked() TS_REQUIRES(mu_);
  /// Fails everything still queued (used when the last live worker dies and
  /// at shutdown when no healthy worker remains to serve the backlog).
  /// Returns the extracted requests (highest lane first) to resolve outside
  /// the lock.
  std::deque<Pending> take_queue_locked() TS_REQUIRES(mu_);
  /// Resolves `p` with a non-Ok status, stamping latency fields.
  static void resolve_failure(Pending& p, Status status, std::string error);

  std::vector<BatchFn> engines_;  ///< engines_[w] runs on workers_[w] only
  std::vector<RecoverFn> recovery_;  ///< empty, or one (maybe null) per engine
  /// Builds engines for scaled-up slots; null on a fixed pool. Only the
  /// supervisor thread invokes it after construction, always outside mu_.
  EngineFactory factory_;
  Config cfg_;
  std::chrono::steady_clock::time_point start_;

  mutable Mutex mu_;
  /// Healthy workers wake on arrivals/leftovers/shutdown. Only CLAIMABLE
  /// workers ever wait here: a non-Healthy waiter could consume a wakeup
  /// meant for the worker that can actually serve the request (lost
  /// wakeup), and in an elastic server non-Healthy slots are the steady-
  /// state majority — they wait on park_cv_ instead.
  CondVar queue_cv_;
  /// Non-Healthy workers wait here to be restored (recovery, scale-up) or
  /// shut down.
  CondVar park_cv_;
  CondVar idle_cv_;        // drain() waits for in-flight == 0
  CondVar space_cv_;       // kBlock submitters wait for room
  CondVar supervisor_cv_;  // supervisor waits for quarantines
  /// lanes_[p] holds Priority p's queued requests, earliest deadline first.
  std::array<std::deque<Pending>, kPriorityLanes> lanes_ TS_GUARDED_BY(mu_);
  /// Pinned input shape ({} until first accept).
  Shape expected_chw_ TS_GUARDED_BY(mu_);
  /// Submitted, not yet answered.
  int64_t in_flight_ TS_GUARDED_BY(mu_) = 0;
  bool stop_ TS_GUARDED_BY(mu_) = false;
  ServingStats stats_ TS_GUARDED_BY(mu_);
  std::vector<WorkerControl> control_ TS_GUARDED_BY(mu_);  // one per worker
  /// Cooldown gate: no scaling action before this instant.
  std::chrono::steady_clock::time_point next_scale_allowed_ TS_GUARDED_BY(mu_);
  /// Previous autoscaler tick (utilization-delta denominator).
  std::chrono::steady_clock::time_point last_tick_ TS_GUARDED_BY(mu_);

  std::vector<std::thread> workers_;
  std::thread supervisor_;
};

}  // namespace tbnet::runtime
