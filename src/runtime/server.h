#pragma once
// InferenceServer — multi-session request coalescing over batched engines.
//
// Production serving rarely sees one request at a time: many clients submit
// single images concurrently, and the per-batch costs of the deployed TEE
// engine (world switches, TA invocations, channel traffic bookkeeping) make
// it much cheaper to push one batch of N than N batches of one. The server
// accepts concurrent submit() calls, coalesces queued requests into batches
// (up to `max_batch`, flushing a partial batch once the oldest queued
// request has waited `max_queue_delay`), runs them through caller-provided
// batch functions on a pool of dispatch workers, and fans the per-image
// results back out through futures. Per-request and per-batch latency,
// queue depth, and per-worker utilization land in runtime::ServingStats.
//
// Inter-op parallelism: the server runs one dispatch worker PER ENGINE
// function it is given. Each engine is invoked from exactly one worker
// thread, only ever for one batch at a time, so a non-thread-safe engine
// (DeployedTBNet, FullTeeDeployment, a bare Sequential) is fine — the
// caller supplies N independent engines (each with its own
// ExecutionContext/arena; for DeployedTBNet that means one engine instance
// per worker) to serve N batches concurrently. Intra-op kernel threads nest
// under the dispatch workers on the shared ThreadPool, whose work-stealing
// scheduler lets those nested parallel_fors actually share cores.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/measurements.h"
#include "tensor/tensor.h"

namespace tbnet::runtime {

/// One answered request.
struct InferenceResult {
  Tensor logits;          ///< [classes] row for this image
  int64_t label = 0;      ///< argmax of the row
  int64_t batch_size = 0; ///< size of the batch this request rode in
  double queue_s = 0.0;   ///< submit -> batch start
  double total_s = 0.0;   ///< submit -> result ready
};

class InferenceServer {
 public:
  /// Maps an NCHW batch to [N, classes] logits (e.g. wraps
  /// DeployedTBNet::infer_batch). Each engine function is invoked from a
  /// single dispatch worker thread only.
  using BatchFn = std::function<Tensor(const Tensor& nchw)>;

  struct Config {
    /// Largest coalesced batch handed to an engine. Must not exceed what
    /// the engines accept (e.g. DeployedTBNet::Options::max_batch) — the
    /// engine's rejection would fail every request in a full batch.
    int64_t max_batch = 16;
    /// How long the oldest queued request may wait for company before a
    /// partial batch is flushed.
    std::chrono::microseconds max_queue_delay{2000};
  };

  /// One dispatch worker per engine; engines must all serve the same model
  /// (the server round-robins batches across them by availability, so any
  /// request may land on any engine).
  InferenceServer(std::vector<BatchFn> engines, Config cfg);
  InferenceServer(BatchFn engine, Config cfg);
  explicit InferenceServer(BatchFn engine)
      : InferenceServer(std::move(engine), Config{}) {}

  /// Drains the queue and joins the workers.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues one CHW image; thread-safe. The future resolves once the
  /// request's batch has run (with the engine's exception on failure).
  std::future<InferenceResult> submit(Tensor image_chw);

  /// Blocks until every request submitted so far has been answered.
  void drain();

  /// Stops accepting work, drains, joins. Idempotent and safe to race: the
  /// first caller joins the workers; a concurrent caller may return before
  /// that drain completes.
  void shutdown();

  /// Snapshot of the serving statistics (thread-safe). per_worker holds one
  /// entry per dispatch worker; uptime_s is stamped at the snapshot.
  ServingStats stats() const;

  const Config& config() const { return cfg_; }
  int workers() const { return static_cast<int>(engines_.size()); }

 private:
  struct Pending {
    Tensor image;
    std::promise<InferenceResult> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop(int worker);
  void run_batch(int worker, std::vector<Pending> batch);

  std::vector<BatchFn> engines_;  ///< engines_[w] runs on workers_[w] only
  Config cfg_;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  // workers wake on arrivals/shutdown
  std::condition_variable idle_cv_;   // drain() waits for in-flight == 0
  std::vector<Pending> queue_;
  int64_t in_flight_ = 0;  // submitted, not yet answered
  bool stop_ = false;
  ServingStats stats_;

  std::vector<std::thread> workers_;
};

}  // namespace tbnet::runtime
