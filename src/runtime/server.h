#pragma once
// InferenceServer — multi-session request coalescing over batched engines,
// with bounded admission, per-request deadlines, and typed outcomes.
//
// Production serving rarely sees one request at a time: many clients submit
// single images concurrently, and the per-batch costs of the deployed TEE
// engine (world switches, TA invocations, channel traffic bookkeeping) make
// it much cheaper to push one batch of N than N batches of one. The server
// accepts concurrent submit() calls, coalesces queued requests into batches
// (up to `max_batch`, flushing a partial batch once the oldest queued
// request has waited `max_queue_delay`), runs them through caller-provided
// batch functions on a pool of dispatch workers, and fans the per-image
// results back out through futures.
//
// Overload safety: the queue is bounded (`queue_capacity`) with a pick of
// admission policies — block the submitter (backpressure), reject the new
// request, or shed the oldest queued one — and every request can carry a
// deadline that is enforced at batch-formation time (an expired request
// resolves without ever touching an engine). Futures therefore always
// resolve with a typed InferenceResult::Status instead of submit() throwing
// mid-stream: Ok, Rejected (never admitted / shed), Expired (deadline
// passed in queue), or EngineError (its batch ran and the engine failed —
// e.g. TEE retry exhaustion, see runtime/deployed.h). The failure counters
// land in runtime::ServingStats alongside the latency recorders.
//
// Inter-op parallelism: the server runs one dispatch worker PER ENGINE
// function it is given. Each engine is invoked from exactly one worker
// thread, only ever for one batch at a time, so a non-thread-safe engine
// (DeployedTBNet, FullTeeDeployment, a bare Sequential) is fine — the
// caller supplies N independent engines (each with its own
// ExecutionContext/arena; for DeployedTBNet that means one engine instance
// per worker) to serve N batches concurrently. Intra-op kernel threads nest
// under the dispatch workers on the shared ThreadPool, whose work-stealing
// scheduler lets those nested parallel_fors actually share cores.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/measurements.h"
#include "tensor/tensor.h"

namespace tbnet::runtime {

/// What to do with a new submit() when the queue is at queue_capacity.
enum class AdmissionPolicy {
  /// Block the submitting thread until a worker frees queue space
  /// (backpressure: the client's own submit rate is throttled). A submit
  /// blocked at shutdown resolves Rejected instead of hanging.
  kBlock,
  /// Resolve the NEW request Rejected immediately; queued work is untouched.
  kReject,
  /// Drop the OLDEST queued request (it resolves Rejected, counted in
  /// ServingStats::shed) and admit the new one — under sustained overload
  /// this keeps the freshest work, which is what deadline-bound clients
  /// still have a use for.
  kShedOldest,
};

/// Typed outcome of one request. The future always resolves with one of
/// these — never an exception — so one bad request or one failing engine
/// cannot tear down a submitter iterating a futures vector.
enum class Status {
  kOk = 0,       ///< logits/label are valid
  kRejected,     ///< never ran: malformed shape, full queue, shed, shutdown
  kExpired,      ///< deadline passed before any engine saw it
  kEngineError,  ///< its batch ran and the engine failed (see error)
};

const char* status_name(Status s);

/// One answered request.
struct InferenceResult {
  Status status = Status::kOk;
  std::string error;      ///< failure detail; empty when status == kOk
  Tensor logits;          ///< [classes] row for this image (kOk only)
  int64_t label = 0;      ///< argmax of the row (kOk only)
  int64_t batch_size = 0; ///< size of the batch this request rode in
  double queue_s = 0.0;   ///< submit -> batch start (or -> resolution)
  double total_s = 0.0;   ///< submit -> result ready

  bool ok() const { return status == Status::kOk; }
};

class InferenceServer {
 public:
  /// Maps an NCHW batch to [N, classes] logits (e.g. wraps
  /// DeployedTBNet::infer_batch). Each engine function is invoked from a
  /// single dispatch worker thread only. A throw is contained to the
  /// throwing batch: its requests resolve kEngineError, siblings are
  /// untouched, and the worker keeps serving.
  using BatchFn = std::function<Tensor(const Tensor& nchw)>;

  struct Config {
    /// Largest coalesced batch handed to an engine. Must not exceed what
    /// the engines accept (e.g. DeployedTBNet::Options::max_batch) — the
    /// engine's rejection would fail every request in a full batch.
    int64_t max_batch = 16;
    /// How long the oldest queued request may wait for company before a
    /// partial batch is flushed.
    std::chrono::microseconds max_queue_delay{2000};
    /// Bound on queued (accepted, unclaimed) requests; 0 = unbounded, which
    /// keeps the pre-PR-7 behavior but lets latency diverge under overload
    /// (see bench_serving's soak section for the receipts).
    int64_t queue_capacity = 0;
    /// Applied when the queue is full (only meaningful with a bound).
    AdmissionPolicy admission = AdmissionPolicy::kBlock;
    /// Deadline stamped on every submit() that doesn't carry its own;
    /// <= 0 = none. Enforced when a worker forms a batch: a request whose
    /// deadline has passed resolves kExpired without running, which bounds
    /// an accepted request's latency by deadline + one batch.
    std::chrono::microseconds default_deadline{0};
    /// Expected CHW shape of every request. When set, a mismatched submit
    /// resolves kRejected alone instead of poisoning its whole coalesced
    /// batch; when empty, the first accepted request pins the shape.
    Shape input_chw;
  };

  /// One dispatch worker per engine; engines must all serve the same model
  /// (the server round-robins batches across them by availability, so any
  /// request may land on any engine).
  InferenceServer(std::vector<BatchFn> engines, Config cfg);
  InferenceServer(BatchFn engine, Config cfg);
  explicit InferenceServer(BatchFn engine)
      : InferenceServer(std::move(engine), Config{}) {}

  /// Drains the queue and joins the workers.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues one CHW image; thread-safe. The future always resolves with a
  /// typed status (see InferenceResult) — malformed shapes, a full queue
  /// under kReject, or a post-shutdown submit resolve kRejected instead of
  /// throwing. Under kBlock with a full queue this call blocks (that is the
  /// backpressure). The one-argument form applies cfg.default_deadline.
  std::future<InferenceResult> submit(Tensor image_chw);
  std::future<InferenceResult> submit(Tensor image_chw,
                                      std::chrono::microseconds deadline);

  /// Blocks until every request submitted so far has been answered.
  void drain();

  /// Stops accepting work, drains, joins. Queued requests are still served
  /// (or expired); submitters blocked on admission resolve kRejected.
  /// Idempotent and safe to race: the first caller joins the workers; a
  /// concurrent caller may return before that drain completes.
  void shutdown();

  /// Snapshot of the serving statistics (thread-safe). per_worker holds one
  /// entry per dispatch worker; uptime_s is stamped at the snapshot.
  ServingStats stats() const;

  const Config& config() const { return cfg_; }
  int workers() const { return static_cast<int>(engines_.size()); }

 private:
  struct Pending {
    Tensor image;
    std::promise<InferenceResult> promise;
    std::chrono::steady_clock::time_point enqueued;
    /// Absolute expiry; time_point::max() = none.
    std::chrono::steady_clock::time_point deadline;
  };

  void worker_loop(int worker);
  void run_batch(int worker, std::vector<Pending> batch);
  /// Resolves `p` with a non-Ok status, stamping latency fields.
  static void resolve_failure(Pending& p, Status status, std::string error);

  std::vector<BatchFn> engines_;  ///< engines_[w] runs on workers_[w] only
  Config cfg_;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  // workers wake on arrivals/shutdown
  std::condition_variable idle_cv_;   // drain() waits for in-flight == 0
  std::condition_variable space_cv_;  // kBlock submitters wait for room
  std::deque<Pending> queue_;
  Shape expected_chw_;     // pinned input shape ({} until first accept)
  int64_t in_flight_ = 0;  // submitted, not yet answered
  bool stop_ = false;
  ServingStats stats_;

  std::vector<std::thread> workers_;
};

}  // namespace tbnet::runtime
