#include "data/dataloader.h"

#include <cstring>
#include <stdexcept>

#include "data/augment.h"

namespace tbnet::data {

DataLoader::DataLoader(const Dataset& dataset, const Options& opt)
    : dataset_(dataset), opt_(opt), aug_rng_(opt.seed) {
  if (opt.batch_size <= 0) {
    throw std::invalid_argument("DataLoader: batch_size must be positive");
  }
  order_.resize(static_cast<size_t>(dataset.size()));
  for (size_t i = 0; i < order_.size(); ++i) order_[i] = static_cast<int64_t>(i);
  start_epoch(0);
}

void DataLoader::start_epoch(int epoch) {
  cursor_ = 0;
  aug_rng_ = Rng(opt_.seed ^ (0xA5A5A5A5ull * static_cast<uint64_t>(epoch + 1)));
  if (opt_.shuffle) {
    Rng shuffle_rng(opt_.seed + 0x51ED270ull * static_cast<uint64_t>(epoch + 1));
    shuffle_rng.shuffle(order_);
  }
}

int64_t DataLoader::batches_per_epoch() const {
  const int64_t n = dataset_.size();
  if (opt_.drop_last) return n / opt_.batch_size;
  return (n + opt_.batch_size - 1) / opt_.batch_size;
}

bool DataLoader::next(Batch& batch) {
  const int64_t n = dataset_.size();
  if (cursor_ >= n) return false;
  int64_t count = std::min(opt_.batch_size, n - cursor_);
  if (opt_.drop_last && count < opt_.batch_size) return false;

  const Shape img = dataset_.image_shape();
  batch.images = Tensor(Shape{count, img.dim(0), img.dim(1), img.dim(2)});
  batch.labels.assign(static_cast<size_t>(count), 0);
  const int64_t stride = img.numel();
  for (int64_t i = 0; i < count; ++i) {
    Sample s = dataset_.get(order_[static_cast<size_t>(cursor_ + i)]);
    Tensor image = opt_.augment ? augment_standard(s.image, aug_rng_) : s.image;
    std::memcpy(batch.images.data() + i * stride, image.data(),
                static_cast<size_t>(stride) * sizeof(float));
    batch.labels[static_cast<size_t>(i)] = s.label;
  }
  cursor_ += count;
  return true;
}

Batch collect_batch(const Dataset& dataset,
                    const std::vector<int64_t>& indices) {
  if (indices.empty()) throw std::invalid_argument("collect_batch: empty");
  const Shape img = dataset.image_shape();
  Batch batch;
  const int64_t count = static_cast<int64_t>(indices.size());
  batch.images = Tensor(Shape{count, img.dim(0), img.dim(1), img.dim(2)});
  batch.labels.assign(indices.size(), 0);
  const int64_t stride = img.numel();
  for (int64_t i = 0; i < count; ++i) {
    Sample s = dataset.get(indices[static_cast<size_t>(i)]);
    std::memcpy(batch.images.data() + i * stride, s.image.data(),
                static_cast<size_t>(stride) * sizeof(float));
    batch.labels[static_cast<size_t>(i)] = s.label;
  }
  return batch;
}

}  // namespace tbnet::data
