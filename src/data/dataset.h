#pragma once
// Dataset interface: indexable, labeled image collections.

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace tbnet::data {

/// One labeled example. Images are CHW float tensors.
struct Sample {
  Tensor image;
  int64_t label = 0;
};

/// Abstract random-access dataset.
class Dataset {
 public:
  virtual ~Dataset() = default;

  virtual int64_t size() const = 0;
  virtual Sample get(int64_t index) const = 0;
  virtual int64_t num_classes() const = 0;
  /// CHW shape of every image.
  virtual Shape image_shape() const = 0;
};

/// View over a subset of another dataset (attacker data-availability sweeps,
/// train/val splits). Does not own the base dataset.
class SubsetDataset : public Dataset {
 public:
  SubsetDataset(const Dataset& base, std::vector<int64_t> indices)
      : base_(base), indices_(std::move(indices)) {}

  int64_t size() const override {
    return static_cast<int64_t>(indices_.size());
  }
  Sample get(int64_t index) const override {
    return base_.get(indices_.at(static_cast<size_t>(index)));
  }
  int64_t num_classes() const override { return base_.num_classes(); }
  Shape image_shape() const override { return base_.image_shape(); }

 private:
  const Dataset& base_;
  std::vector<int64_t> indices_;
};

/// First ceil(fraction * size) examples of a deterministic shuffle of `base`.
/// This is how the attacker's "x% of the training dataset" (paper Fig. 2)
/// is materialized.
SubsetDataset fraction_of(const Dataset& base, double fraction, uint64_t seed);

}  // namespace tbnet::data
