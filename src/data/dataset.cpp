#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/rng.h"

namespace tbnet::data {

SubsetDataset fraction_of(const Dataset& base, double fraction, uint64_t seed) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("fraction_of: fraction must be in [0, 1]");
  }
  std::vector<int64_t> idx(static_cast<size_t>(base.size()));
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int64_t>(i);
  Rng rng(seed);
  rng.shuffle(idx);
  const auto keep = static_cast<size_t>(
      std::ceil(fraction * static_cast<double>(base.size())));
  idx.resize(std::min(idx.size(), keep));
  return SubsetDataset(base, std::move(idx));
}

}  // namespace tbnet::data
