#include "data/augment.h"

#include <stdexcept>

namespace tbnet::data {

Tensor flip_horizontal(const Tensor& chw) {
  if (chw.shape().ndim() != 3) {
    throw std::invalid_argument("flip_horizontal: expected CHW tensor");
  }
  const int64_t c = chw.dim(0), h = chw.dim(1), w = chw.dim(2);
  Tensor out(chw.shape());
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t y = 0; y < h; ++y) {
      const float* src = chw.data() + (ch * h + y) * w;
      float* dst = out.data() + (ch * h + y) * w;
      for (int64_t x = 0; x < w; ++x) dst[x] = src[w - 1 - x];
    }
  }
  return out;
}

Tensor random_pad_crop(const Tensor& chw, int64_t pad, Rng& rng) {
  if (chw.shape().ndim() != 3) {
    throw std::invalid_argument("random_pad_crop: expected CHW tensor");
  }
  if (pad < 0) throw std::invalid_argument("random_pad_crop: pad must be >= 0");
  if (pad == 0) return chw;
  const int64_t c = chw.dim(0), h = chw.dim(1), w = chw.dim(2);
  const int64_t oy = rng.uniform_int(2 * pad + 1) - pad;  // offset in [-pad, pad]
  const int64_t ox = rng.uniform_int(2 * pad + 1) - pad;
  Tensor out(chw.shape());
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t y = 0; y < h; ++y) {
      const int64_t sy = y + oy;
      float* dst = out.data() + (ch * h + y) * w;
      if (sy < 0 || sy >= h) continue;  // stays zero
      const float* src = chw.data() + (ch * h + sy) * w;
      for (int64_t x = 0; x < w; ++x) {
        const int64_t sx = x + ox;
        dst[x] = (sx >= 0 && sx < w) ? src[sx] : 0.0f;
      }
    }
  }
  return out;
}

Tensor augment_standard(const Tensor& chw, Rng& rng) {
  Tensor out = (rng.uniform() < 0.5) ? flip_horizontal(chw) : chw;
  return random_pad_crop(out, 4, rng);
}

}  // namespace tbnet::data
