#pragma once
// Training-time image augmentation (CHW tensors).

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace tbnet::data {

/// Mirrors the image horizontally (W axis).
Tensor flip_horizontal(const Tensor& chw);

/// Zero-pads by `pad` on every side and crops a random window back to the
/// original size — the standard CIFAR recipe.
Tensor random_pad_crop(const Tensor& chw, int64_t pad, Rng& rng);

/// Applies the standard recipe: 50% horizontal flip + pad-4 random crop.
Tensor augment_standard(const Tensor& chw, Rng& rng);

}  // namespace tbnet::data
