#pragma once
// DataLoader: shuffled mini-batch iteration over a Dataset.

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "tensor/rng.h"

namespace tbnet::data {

/// A mini-batch: images stacked into NCHW + integer labels.
struct Batch {
  Tensor images;
  std::vector<int64_t> labels;
  int64_t size() const { return static_cast<int64_t>(labels.size()); }
};

/// Deterministic mini-batch loader.
///
/// Shuffling is a pure function of (seed, epoch); augmentation draws from a
/// per-epoch stream so runs are reproducible regardless of thread count.
class DataLoader {
 public:
  struct Options {
    int64_t batch_size = 64;
    bool shuffle = true;
    bool augment = false;     ///< flip + pad-crop (training only)
    bool drop_last = false;   ///< drop a trailing partial batch
    uint64_t seed = 7;
  };

  DataLoader(const Dataset& dataset, const Options& opt);

  /// Re-deals the deck for `epoch` and rewinds to the first batch.
  void start_epoch(int epoch);

  /// Fills `batch` with the next mini-batch; returns false at epoch end.
  bool next(Batch& batch);

  int64_t batches_per_epoch() const;

 private:
  const Dataset& dataset_;
  Options opt_;
  std::vector<int64_t> order_;
  int64_t cursor_ = 0;
  Rng aug_rng_;
};

/// Stacks dataset[indices] into one batch (no augmentation).
Batch collect_batch(const Dataset& dataset,
                    const std::vector<int64_t>& indices);

}  // namespace tbnet::data
