#include "data/synthetic_cifar.h"

#include <cmath>
#include <stdexcept>

#include "tensor/rng.h"

namespace tbnet::data {
namespace {

/// Stable 64-bit mix of the identifying fields (SplitMix finalizer).
uint64_t mix(uint64_t a, uint64_t b, uint64_t c) {
  uint64_t z = a + 0x9E3779B97F4A7C15ull * (b + 1) + 0xBF58476D1CE4E5B9ull * (c + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

SyntheticCifar::SyntheticCifar(const Options& opt) : opt_(opt) {
  if (opt.classes <= 1) {
    throw std::invalid_argument("SyntheticCifar: need at least 2 classes");
  }
  if (opt.samples < 0 || opt.image_size < 4 || opt.channels < 1) {
    throw std::invalid_argument("SyntheticCifar: bad geometry");
  }
  if (opt.difficulty < 0.0 || opt.difficulty > 1.0) {
    throw std::invalid_argument("SyntheticCifar: difficulty must be in [0,1]");
  }
}

Sample SyntheticCifar::get(int64_t index) const {
  if (index < 0 || index >= opt_.samples) {
    throw std::out_of_range("SyntheticCifar::get: index out of range");
  }
  const int64_t k = index % opt_.classes;  // balanced labels
  Rng rng(mix(opt_.seed, opt_.split, static_cast<uint64_t>(index)));

  const int64_t s = opt_.image_size, C = opt_.channels;
  const double K = static_cast<double>(opt_.classes);
  const double diff = opt_.difficulty;

  // Class signature -----------------------------------------------------
  const double theta =
      M_PI * static_cast<double>(k) / K + 0.12 * diff * rng.normal();
  const double freq =
      2.0 + static_cast<double>((k * 7) % 11) * 0.55 + 0.15 * diff * rng.normal();
  const double phase = rng.uniform(0.0, 2.0 * M_PI);

  // Class color profile for the grating and the blob (distinct projections
  // so classes sharing an orientation at K > 16 stay separable).
  double grating_color[3], blob_color[3];
  for (int c = 0; c < 3; ++c) {
    grating_color[c] =
        0.55 + 0.45 * std::sin(2.0 * M_PI * static_cast<double>(k) / K +
                               2.1 * static_cast<double>(c));
    blob_color[c] =
        0.55 + 0.45 * std::cos(2.0 * M_PI * static_cast<double>(k * 3 + 1) / K +
                               1.7 * static_cast<double>(c));
  }

  // Blob position from a class-specific lattice cell + per-sample jitter.
  const double cell = static_cast<double>(s) / 4.0;
  const double bx = cell * (1.0 + static_cast<double>(k % 3)) +
                    0.8 * diff * cell * (rng.uniform() - 0.5);
  const double by = cell * (1.0 + static_cast<double>((k / 3) % 3)) +
                    0.8 * diff * cell * (rng.uniform() - 0.5);
  const double sigma = static_cast<double>(s) / 6.0;

  const double noise_sd = 0.15 + 0.45 * diff;
  const double ct = std::cos(theta), st = std::sin(theta);

  Tensor img(image_shape());
  for (int64_t c = 0; c < C; ++c) {
    const double gc = grating_color[c % 3];
    const double bc = blob_color[c % 3];
    float* plane = img.data() + c * s * s;
    for (int64_t y = 0; y < s; ++y) {
      for (int64_t x = 0; x < s; ++x) {
        const double u = (static_cast<double>(x) * ct +
                          static_cast<double>(y) * st) /
                         static_cast<double>(s);
        const double grating = std::sin(2.0 * M_PI * freq * u + phase);
        const double dx = static_cast<double>(x) - bx;
        const double dy = static_cast<double>(y) - by;
        const double blob = std::exp(-(dx * dx + dy * dy) / (2.0 * sigma * sigma));
        const double v = 0.5 * gc * grating + 1.1 * bc * blob +
                         noise_sd * rng.normal();
        plane[y * s + x] = static_cast<float>(v);
      }
    }
  }
  return Sample{std::move(img), k};
}

std::pair<SyntheticCifar, SyntheticCifar> SyntheticCifar::make_split(
    int64_t classes, int64_t train_size, int64_t test_size, uint64_t seed,
    int64_t image_size, double difficulty) {
  Options train;
  train.classes = classes;
  train.samples = train_size;
  train.image_size = image_size;
  train.seed = seed;
  train.split = 0;
  train.difficulty = difficulty;
  Options test = train;
  test.samples = test_size;
  test.split = 1;
  return {SyntheticCifar(train), SyntheticCifar(test)};
}

}  // namespace tbnet::data
