#pragma once
// SyntheticCifar — procedurally generated stand-in for CIFAR-10/100.
//
// The evaluation environment has no dataset files, so we synthesize a
// classification task with the same tensor geometry (3x32x32 by default) and
// class counts (10 or 100). Each class defines a signature combining:
//   * an oriented sinusoidal grating (class-specific angle & frequency),
//   * a colored Gaussian blob at a class-specific position,
//   * a class-specific RGB color profile,
// plus per-sample jitter (random phase, position & angle noise) and additive
// Gaussian pixel noise controlled by `difficulty`. Images are generated
// deterministically from (seed, split, index) — nothing is stored, so a
// 50k-image dataset costs no memory.
//
// Why this preserves the paper's evaluation: TBNet's claims are about the
// *relative* accuracy of (victim, TBNet, attacker-visible branch) and about
// TEE memory/latency, none of which depend on natural image statistics —
// only on having a task where knowledge transfer, pruning damage, and partial
// model degradation are all measurable. See DESIGN.md §2.

#include <cstdint>

#include "data/dataset.h"

namespace tbnet::data {

class SyntheticCifar : public Dataset {
 public:
  struct Options {
    int64_t classes = 10;
    int64_t samples = 2000;     ///< examples in this split
    int64_t image_size = 32;    ///< square images
    int64_t channels = 3;
    uint64_t seed = 42;         ///< dataset identity
    uint32_t split = 0;         ///< 0 = train, 1 = test (decorrelates samples)
    double difficulty = 0.5;    ///< 0 = clean, 1 = very noisy
  };

  explicit SyntheticCifar(const Options& opt);

  int64_t size() const override { return opt_.samples; }
  Sample get(int64_t index) const override;
  int64_t num_classes() const override { return opt_.classes; }
  Shape image_shape() const override {
    return Shape{opt_.channels, opt_.image_size, opt_.image_size};
  }

  const Options& options() const { return opt_; }

  /// Train/test pair with the same class structure but disjoint sample
  /// randomness.
  static std::pair<SyntheticCifar, SyntheticCifar> make_split(
      int64_t classes, int64_t train_size, int64_t test_size, uint64_t seed,
      int64_t image_size = 32, double difficulty = 0.5);

 private:
  Options opt_;
};

}  // namespace tbnet::data
