#pragma once
// SecureMemoryPool — byte accounting for the TEE's dedicated secure memory.
//
// OP-TEE on a Raspberry Pi class device has a small, fixed carve-out of
// secure DRAM (default 16-32 MiB, minus runtime overhead). The pool tracks
// live and peak usage of the simulated trusted application and enforces the
// budget, which is what makes "does the victim model even fit in the TEE?"
// a measurable question (paper Fig. 3).

#include <cstdint>
#include <string>
#include <unordered_map>

#include "tee/world.h"
#include "tensor/thread_annotations.h"

namespace tbnet::tee {

class SecureMemoryPool {
 public:
  /// budget_bytes = 0 means unlimited (accounting only).
  explicit SecureMemoryPool(int64_t budget_bytes = 0)
      : budget_(budget_bytes) {}

  /// RAII handle for one allocation.
  class Allocation {
   public:
    Allocation() = default;
    Allocation(SecureMemoryPool* pool, int64_t id, int64_t bytes)
        : pool_(pool), id_(id), bytes_(bytes) {}
    Allocation(Allocation&& other) noexcept { swap(other); }
    Allocation& operator=(Allocation&& other) noexcept {
      release();
      swap(other);
      return *this;
    }
    Allocation(const Allocation&) = delete;
    Allocation& operator=(const Allocation&) = delete;
    ~Allocation() { release(); }

    int64_t bytes() const { return bytes_; }
    bool valid() const { return pool_ != nullptr; }
    void release();

   private:
    void swap(Allocation& other) {
      std::swap(pool_, other.pool_);
      std::swap(id_, other.id_);
      std::swap(bytes_, other.bytes_);
    }
    SecureMemoryPool* pool_ = nullptr;
    int64_t id_ = 0;
    int64_t bytes_ = 0;
  };

  /// Reserves `bytes` of secure memory; throws SecurityViolation when the
  /// budget would be exceeded. Thread-safe: in parallel serving each worker
  /// session's TA allocates from the shared world's pool while monitors
  /// read live/peak from other threads.
  Allocation allocate(int64_t bytes, const std::string& tag);

  int64_t budget() const { return budget_; }
  int64_t live_bytes() const {
    MutexLock lock(mu_);
    return live_;
  }
  int64_t peak_bytes() const {
    MutexLock lock(mu_);
    return peak_;
  }
  void reset_peak() {
    MutexLock lock(mu_);
    peak_ = live_;
  }

 private:
  friend class Allocation;
  void free_allocation(int64_t id, int64_t bytes);

  const int64_t budget_ = 0;  ///< fixed at construction, read unlocked
  mutable Mutex mu_;
  int64_t live_ TS_GUARDED_BY(mu_) = 0;
  int64_t peak_ TS_GUARDED_BY(mu_) = 0;
  int64_t next_id_ TS_GUARDED_BY(mu_) = 1;
  std::unordered_map<int64_t, std::string> tags_ TS_GUARDED_BY(mu_);
};

}  // namespace tbnet::tee
