#pragma once
// CostModel + Timeline — the analytic latency machinery.
//
// Inference latency is simulated on two "processors" (the REE core and the
// TEE core) connected by the one-way channel. Each fusion stage contributes
// three work items:
//   R_i (REE compute)  ->  X_i (transfer R_i's output)  ->  T_i (TEE compute)
// with dependencies R_i -> R_{i+1}, T_i -> T_{i+1}, X_i -> T_{i+1} (the TEE
// needs the fused input), plus X_{last} -> completion. The REE can therefore
// run ahead of the TEE (software pipelining across stages), which is where
// TBNet's latency win over the all-in-TEE baseline comes from: the heavy
// lifting moves to the faster normal world while the TEE only runs the
// pruned secure branch.

#include <cstdint>
#include <vector>

#include "tee/device_profile.h"
#include "tee/world.h"

namespace tbnet::tee {

class CostModel {
 public:
  explicit CostModel(DeviceProfile profile) : profile_(std::move(profile)) {}

  const DeviceProfile& profile() const { return profile_; }

  /// Seconds to execute `macs` multiply-accumulates in `world`.
  double compute_seconds(World world, int64_t macs) const;

  /// Seconds to move `bytes` across worlds, including one world switch.
  double transfer_seconds(int64_t bytes) const;

  double switch_seconds() const { return profile_.world_switch_s; }

 private:
  DeviceProfile profile_;
};

/// Per-fusion-stage work description.
struct StageCost {
  int64_t exposed_macs = 0;    ///< R_i work (REE)
  int64_t secure_macs = 0;     ///< T_i work (TEE), including the fusion add
  int64_t transfer_bytes = 0;  ///< R_i output feature map size
};

/// Simulation output.
struct TimelineResult {
  double makespan_s = 0.0;      ///< end-to-end inference latency
  double ree_busy_s = 0.0;      ///< total REE compute time
  double tee_busy_s = 0.0;      ///< total TEE compute time
  double transfer_s = 0.0;      ///< total channel time (incl. switches)
  /// Per-stage completion times of the TEE work items (diagnostics).
  std::vector<double> stage_finish_s;
};

/// TBNet split execution: pipelined two-processor schedule.
TimelineResult simulate_two_branch(const CostModel& model,
                                   const std::vector<StageCost>& stages);

/// Baseline: the entire victim runs serialized inside the TEE; input upload
/// is one transfer.
TimelineResult simulate_full_tee(const CostModel& model,
                                 const std::vector<int64_t>& stage_macs,
                                 int64_t input_bytes);

/// Prior-art layer partition (DarkneTZ-style): first REE stages, then TEE
/// stages, strictly sequential, with a transfer at each boundary crossing.
TimelineResult simulate_partition(const CostModel& model,
                                  const std::vector<int64_t>& stage_macs,
                                  const std::vector<int64_t>& stage_out_bytes,
                                  int first_tee_stage, int64_t input_bytes);

}  // namespace tbnet::tee
