#include "tee/fault.h"

#include <algorithm>
#include <cstdlib>

namespace tbnet::tee {
namespace {

constexpr uint64_t kDefaultSeed = 0x5eed;

/// splitmix64: tiny, seedable, and good enough for Bernoulli sampling.
uint64_t splitmix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double uniform01(uint64_t* state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

double clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

double env_double(const char* name, double fallback) {
  const char* s = std::getenv(name);
  return s != nullptr && *s != '\0' ? std::atof(s) : fallback;
}

uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* s = std::getenv(name);
  return s != nullptr && *s != '\0'
             ? std::strtoull(s, nullptr, 0)
             : fallback;
}

}  // namespace

FaultInjector::FaultInjector()
    : FaultInjector(env_u64("TBNET_FAULT_SEED", kDefaultSeed),
                    env_double("TBNET_FAULT_RATE", 0.0),
                    env_double("TBNET_FAULT_PERMANENT", 0.0),
                    env_double("TBNET_FAULT_CORRUPTION", 0.0)) {}

FaultInjector::FaultInjector(uint64_t seed, double rate,
                             double permanent_fraction,
                             double corruption_fraction)
    : state_(seed),
      rate_(clamp01(rate)),
      permanent_fraction_(clamp01(permanent_fraction)),
      corruption_fraction_(clamp01(corruption_fraction)) {}

void FaultInjector::set_rate(double rate, double permanent_fraction,
                             double corruption_fraction) {
  MutexLock lock(mu_);
  rate_ = clamp01(rate);
  permanent_fraction_ = clamp01(permanent_fraction);
  corruption_fraction_ = clamp01(corruption_fraction);
}

double FaultInjector::rate() const {
  MutexLock lock(mu_);
  return rate_;
}

void FaultInjector::script(Kind kind, int count) {
  MutexLock lock(mu_);
  for (int i = 0; i < count; ++i) scripted_.push_back(kind);
}

void FaultInjector::script_at(Kind kind, const char* site, int64_t nth) {
  MutexLock lock(mu_);
  if (nth < 1) nth = 1;
  targeted_.push_back(Target{kind, site, crossings_[site] + nth});
}

void FaultInjector::clear_script() {
  MutexLock lock(mu_);
  scripted_.clear();
  targeted_.clear();
}

int64_t FaultInjector::scripted_pending() const {
  MutexLock lock(mu_);
  return static_cast<int64_t>(scripted_.size() + targeted_.size());
}

FaultInjector::Kind FaultInjector::consume_locked(const char* site) {
  const int64_t crossing = ++crossings_[site];
  // Site-targeted entries outrank the FIFO: a test that pinned "the 3rd
  // invoke" must fire there even if a rate or FIFO script is also active.
  for (auto it = targeted_.begin(); it != targeted_.end(); ++it) {
    if (it->site == site && it->at_crossing == crossing) {
      Kind kind = it->kind;
      targeted_.erase(it);
      return kind;
    }
  }
  if (!scripted_.empty()) {
    Kind kind = scripted_.front();
    scripted_.pop_front();
    return kind;
  }
  if (rate_ > 0.0 && uniform01(&state_) < rate_) {
    const double which = uniform01(&state_);
    if (which < permanent_fraction_) return Kind::kPermanent;
    if (which < permanent_fraction_ + corruption_fraction_) {
      return Kind::kCorruption;
    }
    return Kind::kTransient;
  }
  return Kind::kNone;
}

void FaultInjector::check(const char* site) {
  Kind kind;
  {
    MutexLock lock(mu_);
    kind = consume_locked(site);
    if (kind == Kind::kTransient) ++transients_;
    if (kind == Kind::kPermanent) ++permanents_;
    // kCorruption at a payload-less crossing: consumed, nothing to flip.
  }
  if (kind == Kind::kTransient) {
    throw TransientFault(std::string("injected transient fault at ") + site);
  }
  if (kind == Kind::kPermanent) {
    throw PermanentFault(std::string("injected permanent fault at ") + site);
  }
}

std::optional<std::vector<uint8_t>> FaultInjector::check_transfer(
    const char* site, const std::vector<uint8_t>& payload) {
  Kind kind;
  uint64_t damage_seed = 0;
  {
    MutexLock lock(mu_);
    kind = consume_locked(site);
    if (kind == Kind::kCorruption && payload.empty()) kind = Kind::kNone;
    if (kind == Kind::kTransient) ++transients_;
    if (kind == Kind::kPermanent) ++permanents_;
    if (kind == Kind::kCorruption) {
      ++corruptions_;
      damage_seed = splitmix64(&state_);
    }
  }
  if (kind == Kind::kTransient) {
    throw TransientFault(std::string("injected transient fault at ") + site);
  }
  if (kind == Kind::kPermanent) {
    throw PermanentFault(std::string("injected permanent fault at ") + site);
  }
  if (kind != Kind::kCorruption) return std::nullopt;
  std::vector<uint8_t> damaged = payload;
  const int flips = 1 + static_cast<int>(damage_seed % 8);
  for (int i = 0; i < flips; ++i) {
    const uint64_t r = splitmix64(&damage_seed);
    damaged[r % damaged.size()] ^= static_cast<uint8_t>(1u << (r >> 32) % 8);
  }
  return damaged;
}

int64_t FaultInjector::crossings(const char* site) const {
  MutexLock lock(mu_);
  auto it = crossings_.find(site);
  return it == crossings_.end() ? 0 : it->second;
}

int64_t FaultInjector::faults_injected() const {
  MutexLock lock(mu_);
  return transients_ + permanents_ + corruptions_;
}

int64_t FaultInjector::transients_injected() const {
  MutexLock lock(mu_);
  return transients_;
}

int64_t FaultInjector::permanents_injected() const {
  MutexLock lock(mu_);
  return permanents_;
}

int64_t FaultInjector::corruptions_injected() const {
  MutexLock lock(mu_);
  return corruptions_;
}

}  // namespace tbnet::tee
