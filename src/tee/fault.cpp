#include "tee/fault.h"

#include <algorithm>
#include <cstdlib>

namespace tbnet::tee {
namespace {

constexpr uint64_t kDefaultSeed = 0x5eed;

/// splitmix64: tiny, seedable, and good enough for Bernoulli sampling.
uint64_t splitmix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double uniform01(uint64_t* state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

double clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

double env_double(const char* name, double fallback) {
  const char* s = std::getenv(name);
  return s != nullptr && *s != '\0' ? std::atof(s) : fallback;
}

uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* s = std::getenv(name);
  return s != nullptr && *s != '\0'
             ? std::strtoull(s, nullptr, 0)
             : fallback;
}

}  // namespace

FaultInjector::FaultInjector()
    : FaultInjector(env_u64("TBNET_FAULT_SEED", kDefaultSeed),
                    env_double("TBNET_FAULT_RATE", 0.0),
                    env_double("TBNET_FAULT_PERMANENT", 0.0)) {}

FaultInjector::FaultInjector(uint64_t seed, double rate,
                             double permanent_fraction)
    : state_(seed),
      rate_(clamp01(rate)),
      permanent_fraction_(clamp01(permanent_fraction)) {}

void FaultInjector::set_rate(double rate, double permanent_fraction) {
  std::lock_guard<std::mutex> lock(mu_);
  rate_ = clamp01(rate);
  permanent_fraction_ = clamp01(permanent_fraction);
}

double FaultInjector::rate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rate_;
}

void FaultInjector::script(Kind kind, int count) {
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < count; ++i) scripted_.push_back(kind);
}

void FaultInjector::clear_script() {
  std::lock_guard<std::mutex> lock(mu_);
  scripted_.clear();
}

int64_t FaultInjector::scripted_pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(scripted_.size());
}

void FaultInjector::check(const char* site) {
  Kind kind = Kind::kNone;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!scripted_.empty()) {
      kind = scripted_.front();
      scripted_.pop_front();
    } else if (rate_ > 0.0 && uniform01(&state_) < rate_) {
      kind = uniform01(&state_) < permanent_fraction_ ? Kind::kPermanent
                                                      : Kind::kTransient;
    }
    if (kind == Kind::kTransient) ++transients_;
    if (kind == Kind::kPermanent) ++permanents_;
  }
  if (kind == Kind::kTransient) {
    throw TransientFault(std::string("injected transient fault at ") + site);
  }
  if (kind == Kind::kPermanent) {
    throw PermanentFault(std::string("injected permanent fault at ") + site);
  }
}

int64_t FaultInjector::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transients_ + permanents_;
}

int64_t FaultInjector::transients_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transients_;
}

int64_t FaultInjector::permanents_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return permanents_;
}

}  // namespace tbnet::tee
