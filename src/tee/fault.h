#pragma once
// Deterministic fault injection for the simulated TEE boundary.
//
// Real TrustZone deployments fail: SMC calls abort under scheduler pressure,
// shared-memory registrations fail transiently, TAs crash and take their
// sessions with them. The serving stack's robustness machinery (bounded
// retry with backoff in DeployedTBNet, typed EngineError results at the
// InferenceServer) needs those failures on demand, so the FaultInjector sits
// at the optee_api boundaries — session open, command invoke, payload
// transfer — and throws TransientFault / PermanentFault either by seeded
// random sampling (env TBNET_FAULT_RATE / TBNET_FAULT_SEED /
// TBNET_FAULT_PERMANENT) or from a scripted queue that tests use to target
// exact boundaries (script kNone to let one check pass, then the fault kind
// to fire on the next).
//
// Every injection site fires BEFORE the TA executes, so a faulted open or
// invoke has no secure-world side effects and retrying it is always safe.
// Exit-path faults (result lost after the TA already ran) would need
// sequence-numbered commands to retry safely; the simulated TAs don't
// implement that protocol, so the injector deliberately doesn't model them.
//
// One injector lives on each TeeContext and is shared by every session the
// context opens; sessions constructed directly (no context) inject nothing.
// All methods are thread-safe — parallel serving opens one session per
// dispatch worker, but multi-context benches may share an injector.

#include <cstdint>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <string>

namespace tbnet::tee {

/// A failure the caller may retry: the boundary crossing failed before the
/// TA executed (SMC abort, transient shared-memory failure). Bounded
/// retry with backoff is the correct response.
class TransientFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A failure retry cannot fix (TA panicked, session torn down). Callers
/// must surface it immediately instead of burning retry budget.
class PermanentFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class FaultInjector {
 public:
  enum class Kind {
    kNone = 0,   ///< scripted no-op: lets exactly one check() pass
    kTransient,  ///< check() throws TransientFault
    kPermanent,  ///< check() throws PermanentFault
  };

  /// Env-configured: TBNET_FAULT_RATE (per-boundary probability, default 0),
  /// TBNET_FAULT_SEED (PRNG seed, default 0x5eed), TBNET_FAULT_PERMANENT
  /// (fraction of injected faults that are permanent, default 0).
  FaultInjector();
  FaultInjector(uint64_t seed, double rate, double permanent_fraction = 0.0);

  /// Reconfigures the random sampler (benches flip the rate mid-run).
  /// Scripted faults are unaffected. Rate and fraction clamp to [0, 1].
  void set_rate(double rate, double permanent_fraction = 0.0);
  double rate() const;

  /// Enqueues `count` scripted outcomes, consumed FIFO by check() ahead of
  /// any random sampling. kNone entries deterministically skip boundaries:
  /// to fault the second crossing only, script {kNone, kTransient}.
  void script(Kind kind, int count = 1);
  void clear_script();
  int64_t scripted_pending() const;

  /// One boundary crossing: throws TransientFault or PermanentFault when a
  /// fault (scripted or sampled) fires, else returns. `site` names the
  /// boundary ("open" / "invoke" / "transfer") in the exception text.
  void check(const char* site);

  int64_t faults_injected() const;   ///< total thrown (both kinds)
  int64_t transients_injected() const;
  int64_t permanents_injected() const;

 private:
  mutable std::mutex mu_;
  uint64_t state_;
  double rate_;
  double permanent_fraction_;
  std::deque<Kind> scripted_;
  int64_t transients_ = 0;
  int64_t permanents_ = 0;
};

}  // namespace tbnet::tee
