#pragma once
// Deterministic fault injection for the simulated TEE boundary.
//
// Real TrustZone deployments fail: SMC calls abort under scheduler pressure,
// shared-memory registrations fail transiently, TAs crash and take their
// sessions with them, and DMA'd payloads arrive with flipped bits. The
// serving stack's robustness machinery (bounded retry with backoff in
// DeployedTBNet, typed EngineError results and circuit breakers at the
// InferenceServer) needs those failures on demand, so the FaultInjector sits
// at the optee_api boundaries — session open, command invoke, payload
// transfer — and throws TransientFault / PermanentFault (or flips payload
// bits, for kCorruption) either by seeded random sampling (env
// TBNET_FAULT_RATE / TBNET_FAULT_SEED / TBNET_FAULT_PERMANENT /
// TBNET_FAULT_CORRUPTION; see README "Fault injection" for the knob table)
// or from scripted outcomes tests use to target exact boundaries:
//   * script(kind, count) — a site-agnostic FIFO consumed by every check()
//     (script kNone to let one crossing pass, then the fault kind to fire on
//     the next), and
//   * script_at(kind, site, nth) — per-site targeting that fires on exactly
//     the nth FUTURE crossing of that site ("open" / "invoke" / "transfer"),
//     so recovery tests don't depend on rate-based sampling or on knowing
//     the global crossing order.
//
// Every injection site fires BEFORE the TA executes, so a faulted open or
// invoke has no secure-world side effects and retrying it is always safe.
// Exit-path faults (result lost after the TA already ran) would need
// sequence-numbered commands to retry safely; the simulated TAs don't
// implement that protocol, so the injector deliberately doesn't model them.
//
// One injector lives on each TeeContext and is shared by every session the
// context opens; sessions constructed directly (no context) inject nothing.
// All methods are thread-safe — parallel serving opens one session per
// dispatch worker, but multi-context benches may share an injector.

#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/thread_annotations.h"

namespace tbnet::tee {

/// A failure the caller may retry: the boundary crossing failed before the
/// TA executed (SMC abort, transient shared-memory failure). Bounded
/// retry with backoff is the correct response.
class TransientFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A failure retry cannot fix (TA panicked, session torn down). Callers
/// must surface it immediately instead of burning retry budget.
class PermanentFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Data corruption detected at a boundary (wire-frame checksum mismatch on
/// a transfer). Deliberately NOT retried inline: a channel that corrupts
/// payloads is not trustworthy for a blind replay, so serving surfaces it
/// as Status::kIntegrityError and the supervision layer quarantines and
/// recovers the worker (tear down + re-deploy + canary) instead.
class IntegrityFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class FaultInjector {
 public:
  enum class Kind {
    kNone = 0,    ///< scripted no-op: lets exactly one check() pass
    kTransient,   ///< check() throws TransientFault
    kPermanent,   ///< check() throws PermanentFault
    kCorruption,  ///< check_transfer() flips seeded payload bits in transit
  };

  /// Env-configured: TBNET_FAULT_RATE (per-boundary probability, default 0),
  /// TBNET_FAULT_SEED (PRNG seed, default 0x5eed), TBNET_FAULT_PERMANENT
  /// (fraction of injected faults that are permanent, default 0),
  /// TBNET_FAULT_CORRUPTION (fraction that are payload corruptions,
  /// default 0; only meaningful at the payload-bearing transfer boundary).
  FaultInjector();
  FaultInjector(uint64_t seed, double rate, double permanent_fraction = 0.0,
                double corruption_fraction = 0.0);

  /// Reconfigures the random sampler (benches flip the rate mid-run, and
  /// the chaos soak kills a worker by setting rate=1, permanent=1 on its
  /// context). Scripted faults are unaffected. All fractions clamp to
  /// [0, 1]; a sampled fault is permanent with `permanent_fraction`, else a
  /// corruption with `corruption_fraction`, else transient.
  void set_rate(double rate, double permanent_fraction = 0.0,
                double corruption_fraction = 0.0);
  double rate() const;

  /// Enqueues `count` scripted outcomes, consumed FIFO by any-site check()
  /// ahead of random sampling. kNone entries deterministically skip
  /// boundaries: to fault the second crossing only, script {kNone,
  /// kTransient}.
  void script(Kind kind, int count = 1);

  /// Targets one specific boundary: fires on exactly the `nth` FUTURE
  /// crossing of `site` (nth = 1 means the very next one), regardless of
  /// what other sites do in between. Site-targeted entries are consulted
  /// before the FIFO queue. kCorruption entries only have an effect at a
  /// payload-bearing crossing (check_transfer); elsewhere they are consumed
  /// and counted but inject nothing.
  void script_at(Kind kind, const char* site, int64_t nth = 1);

  void clear_script();
  int64_t scripted_pending() const;  ///< FIFO + site-targeted entries

  /// One boundary crossing: throws TransientFault or PermanentFault when a
  /// fault (scripted or sampled) fires, else returns. `site` names the
  /// boundary ("open" / "invoke" / "transfer") in the exception text and is
  /// what script_at() entries match against. A kCorruption outcome at this
  /// payload-less overload is consumed and counted but injects nothing.
  void check(const char* site);

  /// A payload-bearing crossing (the "transfer" boundary): behaves like
  /// check(), and when the outcome is kCorruption returns a copy of
  /// `payload` with 1–8 seeded bit-flips (the in-transit damage) instead of
  /// throwing. Returns nullopt when nothing fired (or the payload is empty —
  /// there is nothing to corrupt). The caller models the secure side's
  /// frame verification; see tee/optee_api.cpp.
  std::optional<std::vector<uint8_t>> check_transfer(
      const char* site, const std::vector<uint8_t>& payload);

  /// Crossings of `site` observed so far (check + check_transfer), for
  /// tests that pin Nth-crossing scripts to absolute positions.
  int64_t crossings(const char* site) const;

  int64_t faults_injected() const;  ///< total injected (all kinds)
  int64_t transients_injected() const;
  int64_t permanents_injected() const;
  int64_t corruptions_injected() const;

 private:
  struct Target {
    Kind kind;
    std::string site;
    int64_t at_crossing;  ///< absolute crossing number of `site` to fire on
  };

  /// Consumes the outcome for one crossing of `site` (targeted entries
  /// first, then the FIFO, then sampling) and bumps the crossing counter.
  Kind consume_locked(const char* site) TS_REQUIRES(mu_);

  mutable Mutex mu_;
  uint64_t state_ TS_GUARDED_BY(mu_);
  double rate_ TS_GUARDED_BY(mu_);
  double permanent_fraction_ TS_GUARDED_BY(mu_);
  double corruption_fraction_ TS_GUARDED_BY(mu_);
  std::deque<Kind> scripted_ TS_GUARDED_BY(mu_);
  std::vector<Target> targeted_ TS_GUARDED_BY(mu_);
  std::unordered_map<std::string, int64_t> crossings_ TS_GUARDED_BY(mu_);
  int64_t transients_ TS_GUARDED_BY(mu_) = 0;
  int64_t permanents_ TS_GUARDED_BY(mu_) = 0;
  int64_t corruptions_ TS_GUARDED_BY(mu_) = 0;
};

}  // namespace tbnet::tee
