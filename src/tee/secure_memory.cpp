#include "tee/secure_memory.h"

#include <stdexcept>

namespace tbnet::tee {

SecureMemoryPool::Allocation SecureMemoryPool::allocate(
    int64_t bytes, const std::string& tag) {
  if (bytes < 0) {
    throw std::invalid_argument("SecureMemoryPool: negative allocation");
  }
  MutexLock lock(mu_);
  if (budget_ > 0 && live_ + bytes > budget_) {
    throw SecurityViolation(
        "secure memory exhausted: need " + std::to_string(bytes) +
        " B for '" + tag + "', live " + std::to_string(live_) +
        " B, budget " + std::to_string(budget_) + " B");
  }
  live_ += bytes;
  if (live_ > peak_) peak_ = live_;
  const int64_t id = next_id_++;
  tags_[id] = tag;
  return Allocation(this, id, bytes);
}

void SecureMemoryPool::free_allocation(int64_t id, int64_t bytes) {
  MutexLock lock(mu_);
  live_ -= bytes;
  tags_.erase(id);
}

void SecureMemoryPool::Allocation::release() {
  if (pool_ != nullptr) {
    pool_->free_allocation(id_, bytes_);
    pool_ = nullptr;
    bytes_ = 0;
  }
}

}  // namespace tbnet::tee
