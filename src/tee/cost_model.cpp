#include "tee/cost_model.h"

#include <algorithm>
#include <stdexcept>

namespace tbnet::tee {

double CostModel::compute_seconds(World world, int64_t macs) const {
  if (macs < 0) throw std::invalid_argument("compute_seconds: negative MACs");
  const double rate = (world == World::kNormal) ? profile_.ree_macs_per_s
                                                : profile_.tee_macs_per_s;
  return static_cast<double>(macs) / rate;
}

double CostModel::transfer_seconds(int64_t bytes) const {
  if (bytes < 0) throw std::invalid_argument("transfer_seconds: negative size");
  return profile_.world_switch_s +
         static_cast<double>(bytes) / profile_.channel_bytes_per_s;
}

TimelineResult simulate_two_branch(const CostModel& model,
                                   const std::vector<StageCost>& stages) {
  TimelineResult result;
  const size_t n = stages.size();
  if (n == 0) return result;

  // r_done[i]: R_i finished on the REE core; x_done[i]: its output landed in
  // the TEE; t_done[i]: T_i finished AND the stage's fusion add completed.
  std::vector<double> r_done(n), x_done(n), t_done(n);
  double ree_clock = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double r = model.compute_seconds(World::kNormal,
                                           stages[i].exposed_macs);
    ree_clock += r;
    r_done[i] = ree_clock;
    result.ree_busy_s += r;
    // The transfer starts as soon as R_i is done (shared-memory DMA model;
    // serialized with other transfers implicitly by R's serial order).
    const double x = model.transfer_seconds(stages[i].transfer_bytes);
    x_done[i] = r_done[i] + x;
    result.transfer_s += x;
  }
  double tee_clock = 0.0;
  for (size_t i = 0; i < n; ++i) {
    // T_i consumes fused[i-1], available once T_{i-1} finished its add —
    // which itself waited for x_done[i-1].
    const double ready = (i == 0) ? 0.0 : t_done[i - 1];
    const double t = model.compute_seconds(World::kSecure,
                                           stages[i].secure_macs);
    const double t_compute_done = std::max(tee_clock, ready) + t;
    // The fusion add needs R_i's transferred output.
    t_done[i] = std::max(t_compute_done, x_done[i]);
    tee_clock = t_done[i];
    result.tee_busy_s += t;
    result.stage_finish_s.push_back(t_done[i]);
  }
  result.makespan_s = t_done[n - 1];
  return result;
}

TimelineResult simulate_full_tee(const CostModel& model,
                                 const std::vector<int64_t>& stage_macs,
                                 int64_t input_bytes) {
  TimelineResult result;
  double clock = model.transfer_seconds(input_bytes);
  result.transfer_s = clock;
  for (int64_t macs : stage_macs) {
    const double t = model.compute_seconds(World::kSecure, macs);
    clock += t;
    result.tee_busy_s += t;
    result.stage_finish_s.push_back(clock);
  }
  result.makespan_s = clock;
  return result;
}

TimelineResult simulate_partition(const CostModel& model,
                                  const std::vector<int64_t>& stage_macs,
                                  const std::vector<int64_t>& stage_out_bytes,
                                  int first_tee_stage, int64_t input_bytes) {
  if (stage_macs.size() != stage_out_bytes.size()) {
    throw std::invalid_argument("simulate_partition: size mismatch");
  }
  TimelineResult result;
  double clock = 0.0;
  for (size_t i = 0; i < stage_macs.size(); ++i) {
    const bool in_tee = static_cast<int>(i) >= first_tee_stage;
    if (static_cast<int>(i) == first_tee_stage) {
      const double x = model.transfer_seconds(
          i == 0 ? input_bytes : stage_out_bytes[i - 1]);
      clock += x;
      result.transfer_s += x;
    }
    const double t = model.compute_seconds(
        in_tee ? World::kSecure : World::kNormal, stage_macs[i]);
    clock += t;
    (in_tee ? result.tee_busy_s : result.ree_busy_s) += t;
    result.stage_finish_s.push_back(clock);
  }
  // Result (or feature map, in DarkneTZ's middle-partition case) returns to
  // the REE: one more switch.
  clock += model.switch_seconds();
  result.makespan_s = clock;
  return result;
}

}  // namespace tbnet::tee
