#pragma once
// DeviceProfile — throughput/overhead coefficients of a simulated edge
// device, calibrated to the paper's testbed class (Raspberry Pi 3 Model B,
// Broadcom BCM2837 Cortex-A53 @ 1.2 GHz, 1 GB RAM, OP-TEE).
//
// Calibration rationale: the paper reports 2.3983 s for one full VGG18
// inference inside the TEE (Tab. 3). A CIFAR-scale VGG18 forward is roughly
// 0.35 GMAC, implying ~0.15 GMAC/s effective secure-world throughput for an
// unoptimized single-thread float kernel. The normal world runs the same
// kernels slightly faster (better cache behavior, no secure-memory
// round-trips); OP-TEE world switches cost tens of microseconds and shared
// memory copies move ~1 GB/s on this SoC.

#include <cstdint>
#include <string>

namespace tbnet::tee {

struct DeviceProfile {
  std::string name = "generic";
  /// Effective multiply-accumulates per second, normal world.
  double ree_macs_per_s = 2.5e8;
  /// Effective MACs per second inside the TEE (slower: secure-memory
  /// latency, no big caches, conservative kernels).
  double tee_macs_per_s = 1.5e8;
  /// One REE<->TEE world switch (SMC + context save/restore), seconds.
  double world_switch_s = 50e-6;
  /// Fixed cost of one TEEC_InvokeCommand round trip on top of the bare
  /// switches: client-API dispatch, parameter/shared-memory registration,
  /// and the cache maintenance both worlds perform per call (no cross-world
  /// cache coherency on this SoC class). Published OP-TEE client-API
  /// latencies on Armv8 boards sit in the hundreds of microseconds; this is
  /// the per-invocation overhead TBNet's one-invoke-per-stage design (and
  /// batching, which amortizes it over N images) attacks.
  double invoke_overhead_s = 300e-6;
  /// Shared-memory bandwidth for cross-world payloads, bytes/second.
  double channel_bytes_per_s = 1.0e9;
  /// Secure memory carve-out available to the trusted application, bytes.
  int64_t secure_mem_budget = 16ll * 1024 * 1024;

  /// Raspberry Pi 3 Model B + OP-TEE, the paper's testbed.
  static DeviceProfile rpi3() {
    DeviceProfile p;
    p.name = "raspberry-pi-3b/op-tee";
    p.ree_macs_per_s = 2.5e8;
    p.tee_macs_per_s = 1.5e8;
    p.world_switch_s = 50e-6;
    p.invoke_overhead_s = 300e-6;
    p.channel_bytes_per_s = 1.0e9;
    p.secure_mem_budget = 16ll * 1024 * 1024;
    return p;
  }

  /// A faster REE (e.g. NEON-optimized kernels) — used by the discussion
  /// §5.3 experiments about REE-side acceleration.
  static DeviceProfile rpi3_accelerated_ree(double speedup) {
    DeviceProfile p = rpi3();
    p.name = "raspberry-pi-3b/op-tee (REE x" + std::to_string(speedup) + ")";
    p.ree_macs_per_s *= speedup;
    return p;
  }
};

}  // namespace tbnet::tee
