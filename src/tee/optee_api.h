#pragma once
// A miniature OP-TEE-style client/TA interface.
//
// Mirrors the GlobalPlatform Client API surface that real OP-TEE deployments
// use (contexts, sessions, command invocation with byte-buffer parameters),
// backed by the simulated secure world. A real TrustZone backend could be
// slotted behind the same interface; everything above it (runtime/, bench/)
// would not change.
//
// Security semantics enforced here:
//   * command inputs cross the channel normal->secure (always legal),
//   * command outputs cross secure->normal and are capped at
//     `max_result_bytes` — large enough for logits, far too small for
//     feature maps. Oversized outputs throw SecurityViolation. This is the
//     mechanical form of TBNet's one-way design: the TEE only ever releases
//     final inference results.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "tee/channel.h"
#include "tee/device_profile.h"
#include "tee/secure_memory.h"
#include "tee/world.h"

namespace tbnet::tee {

/// Facilities a trusted application sees inside the secure world.
struct TaContext {
  SecureMemoryPool* memory = nullptr;
};

/// Base class for simulated trusted applications.
class TrustedApp {
 public:
  virtual ~TrustedApp() = default;

  /// Called once when the TA is installed; the place to claim secure memory
  /// for model weights and other resident state.
  virtual void on_install(TaContext& ctx) { (void)ctx; }

  /// Handles one command; writes the (small) result into `out`.
  /// Returns a TEE-style status code (0 = TEE_SUCCESS).
  virtual uint32_t invoke(uint32_t command, const std::vector<uint8_t>& in,
                          std::vector<uint8_t>& out, TaContext& ctx) = 0;
};

/// The device's secure world: secure memory + installed TAs.
class SecureWorld {
 public:
  explicit SecureWorld(int64_t secure_mem_budget = 0)
      : memory_(secure_mem_budget) {}

  /// Installs a TA under a UUID-like name.
  void install(const std::string& uuid, std::unique_ptr<TrustedApp> ta);
  bool has_ta(const std::string& uuid) const {
    return tas_.count(uuid) != 0;
  }

  SecureMemoryPool& memory() { return memory_; }

 private:
  friend class TeeSession;
  TrustedApp* lookup(const std::string& uuid);

  SecureMemoryPool memory_;
  std::unordered_map<std::string, std::unique_ptr<TrustedApp>> tas_;
};

inline constexpr uint32_t kTeeSuccess = 0;
inline constexpr uint32_t kTeeErrorBadParameters = 0xFFFF0006;
inline constexpr uint32_t kTeeErrorBadState = 0xFFFF0007;
inline constexpr int64_t kDefaultMaxResultBytes = 4096;

/// A session from normal-world client code to one TA.
class TeeSession {
 public:
  TeeSession(SecureWorld& world, OneWayChannel& channel,
             const std::string& uuid,
             int64_t max_result_bytes = kDefaultMaxResultBytes);

  /// Invokes a TA command. Input bytes are pushed normal->secure through the
  /// channel; output bytes are checked against the result cap.
  uint32_t invoke(uint32_t command, const std::vector<uint8_t>& in,
                  std::vector<uint8_t>* out = nullptr);

  int64_t world_switches() const { return switches_; }

  /// Device-faithful timing: when set, every invoke stalls the caller for
  /// the profile's world-switch latency (entry, plus exit when a result
  /// crosses back) and the payload's shared-memory transfer time. TA compute
  /// still runs at host speed; only the cross-world overheads the paper's
  /// Tables 1-3 attribute to TrustZone are injected. Used by the serving
  /// bench; off by default (invoke costs nothing but the simulation itself).
  void simulate_timing(const DeviceProfile& profile) { timing_ = profile; }
  /// Wall-clock seconds spent in injected switch/transfer stalls.
  double simulated_overhead_s() const { return simulated_overhead_s_; }

 private:
  SecureWorld& world_;
  OneWayChannel& channel_;
  TrustedApp* ta_;
  int64_t max_result_bytes_;
  int64_t switches_ = 0;
  std::optional<DeviceProfile> timing_;
  double simulated_overhead_s_ = 0.0;
};

/// Normal-world entry point, analogous to TEEC_Context.
class TeeContext {
 public:
  explicit TeeContext(SecureWorld& world,
                      OneWayChannel::Policy policy =
                          OneWayChannel::Policy::kOneWayIntoTee)
      : world_(world), channel_(policy) {}

  TeeSession open_session(const std::string& uuid,
                          int64_t max_result_bytes = kDefaultMaxResultBytes) {
    return TeeSession(world_, channel_, uuid, max_result_bytes);
  }

  OneWayChannel& channel() { return channel_; }
  SecureWorld& world() { return world_; }

 private:
  SecureWorld& world_;
  OneWayChannel channel_;
};

/// Byte-packing helpers for command payloads.
void pack_i64(std::vector<uint8_t>& buf, int64_t v);
int64_t unpack_i64(const std::vector<uint8_t>& buf, size_t* offset);
void pack_floats(std::vector<uint8_t>& buf, const float* data, int64_t count);
std::vector<float> unpack_floats(const std::vector<uint8_t>& buf,
                                 size_t* offset, int64_t count);

}  // namespace tbnet::tee
