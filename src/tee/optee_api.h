#pragma once
// A miniature OP-TEE-style client/TA interface.
//
// Mirrors the GlobalPlatform Client API surface that real OP-TEE deployments
// use (contexts, sessions, command invocation with byte-buffer parameters),
// backed by the simulated secure world. A real TrustZone backend could be
// slotted behind the same interface; everything above it (runtime/, bench/)
// would not change.
//
// Security semantics enforced here:
//   * command inputs cross the channel normal->secure (always legal),
//   * command outputs cross secure->normal and are capped at
//     `max_result_bytes` — large enough for logits, far too small for
//     feature maps. Oversized outputs throw SecurityViolation. This is the
//     mechanical form of TBNet's one-way design: the TEE only ever releases
//     final inference results.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "tee/channel.h"
#include "tee/device_profile.h"
#include "tee/fault.h"
#include "tee/secure_memory.h"
#include "tee/world.h"
#include "tensor/thread_annotations.h"

namespace tbnet::tee {

/// Facilities a trusted application sees inside the secure world.
struct TaContext {
  SecureMemoryPool* memory = nullptr;
};

/// Base class for simulated trusted applications.
class TrustedApp {
 public:
  virtual ~TrustedApp() = default;

  /// Called once when the TA is installed; the place to claim secure memory
  /// for model weights and other resident state.
  virtual void on_install(TaContext& ctx) { (void)ctx; }

  /// Handles one command; writes the (small) result into `out`.
  /// Returns a TEE-style status code (0 = TEE_SUCCESS).
  virtual uint32_t invoke(uint32_t command, const std::vector<uint8_t>& in,
                          std::vector<uint8_t>& out, TaContext& ctx) = 0;
};

/// The device's secure world: secure memory + installed TAs. The TA table
/// is mutex-guarded: in supervised serving the recovery path re-installs a
/// TA from the supervisor thread while healthy workers' sessions look TAs
/// up concurrently.
class SecureWorld {
 public:
  explicit SecureWorld(int64_t secure_mem_budget = 0)
      : memory_(secure_mem_budget) {}

  /// Installs a TA under a UUID-like name. on_install (which may claim
  /// secure memory for weights) runs before the TA becomes visible, so a
  /// concurrent lookup never sees a half-installed TA.
  void install(const std::string& uuid, std::unique_ptr<TrustedApp> ta);
  bool has_ta(const std::string& uuid) const {
    MutexLock lock(mu_);
    return tas_.count(uuid) != 0;
  }

  SecureMemoryPool& memory() { return memory_; }

 private:
  friend class TeeSession;
  TrustedApp* lookup(const std::string& uuid);

  SecureMemoryPool memory_;
  mutable Mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<TrustedApp>> tas_
      TS_GUARDED_BY(mu_);
};

inline constexpr uint32_t kTeeSuccess = 0;
inline constexpr uint32_t kTeeErrorBadParameters = 0xFFFF0006;
inline constexpr uint32_t kTeeErrorBadState = 0xFFFF0007;
inline constexpr int64_t kDefaultMaxResultBytes = 4096;

/// A session from normal-world client code to one TA.
class TeeSession {
 public:
  /// `faults` (usually the owning TeeContext's injector) gates every
  /// boundary crossing this session performs: "open" once here, then
  /// "invoke" and "transfer" at the top of every invoke(). All sites fire
  /// before the TA executes, so a faulted call has no secure-world side
  /// effects and is safe to retry. A kCorruption fault at the "transfer"
  /// site flips payload bits in transit; the frame checksum the secure side
  /// verifies catches it and the invoke throws IntegrityFault (not retried —
  /// see tee/fault.h). nullptr = no injection.
  TeeSession(SecureWorld& world, OneWayChannel& channel,
             const std::string& uuid,
             int64_t max_result_bytes = kDefaultMaxResultBytes,
             FaultInjector* faults = nullptr);

  /// Move-construction is the single-threaded handoff out of
  /// TeeContext::open_session into its long-term owner (e.g. DeployedTBNet's
  /// unique_ptr): the source is a temporary no other thread has seen, so
  /// reading its counters without the (non-movable) mutex is safe.
  /// Constructors are outside the thread-safety analysis.
  TeeSession(TeeSession&& other) noexcept;
  TeeSession& operator=(TeeSession&&) = delete;

  /// Invokes a TA command. Input bytes are pushed normal->secure through the
  /// channel; output bytes are checked against the result cap.
  uint32_t invoke(uint32_t command, const std::vector<uint8_t>& in,
                  std::vector<uint8_t>* out = nullptr);

  int64_t world_switches() const {
    MutexLock lock(mu_);
    return switches_;
  }

  /// Device-faithful timing: when set, every invoke stalls the caller for
  /// the profile's world-switch latency (entry, plus exit when a result
  /// crosses back) and the payload's shared-memory transfer time. TA compute
  /// still runs at host speed; only the cross-world overheads the paper's
  /// Tables 1-3 attribute to TrustZone are injected. Used by the serving
  /// bench; off by default (invoke costs nothing but the simulation itself).
  void simulate_timing(const DeviceProfile& profile) {
    MutexLock lock(mu_);
    timing_ = profile;
  }
  /// Wall-clock seconds spent in injected switch/transfer stalls.
  double simulated_overhead_s() const {
    MutexLock lock(mu_);
    return simulated_overhead_s_;
  }

 private:
  SecureWorld& world_;
  OneWayChannel& channel_;
  TrustedApp* ta_;
  int64_t max_result_bytes_;
  /// Guards the counters a monitoring thread may poll (world_switches,
  /// simulated overhead) while a dispatch worker is mid-invoke. The lock is
  /// never held across TA execution or a timing stall — invoke copies
  /// timing_ out once and takes short lock scopes for each counter bump.
  mutable Mutex mu_;
  int64_t switches_ TS_GUARDED_BY(mu_) = 0;
  std::optional<DeviceProfile> timing_ TS_GUARDED_BY(mu_);
  double simulated_overhead_s_ TS_GUARDED_BY(mu_) = 0.0;
  FaultInjector* faults_ = nullptr;  ///< not owned; nullptr = no injection
};

/// Normal-world entry point, analogous to TEEC_Context.
class TeeContext {
 public:
  explicit TeeContext(SecureWorld& world,
                      OneWayChannel::Policy policy =
                          OneWayChannel::Policy::kOneWayIntoTee)
      : world_(world),
        channel_(policy),
        faults_(std::make_unique<FaultInjector>()) {}

  /// May throw TransientFault/PermanentFault when the context's injector
  /// fires at the "open" boundary (env-rated or scripted); the session is
  /// not created in that case, so re-opening is always safe.
  TeeSession open_session(const std::string& uuid,
                          int64_t max_result_bytes = kDefaultMaxResultBytes) {
    return TeeSession(world_, channel_, uuid, max_result_bytes,
                      faults_.get());
  }

  OneWayChannel& channel() { return channel_; }
  SecureWorld& world() { return world_; }

  /// The injector shared by every session this context opens —
  /// env-configured (TBNET_FAULT_*), scriptable for tests.
  FaultInjector& faults() { return *faults_; }
  const FaultInjector& faults() const { return *faults_; }

 private:
  SecureWorld& world_;
  OneWayChannel channel_;
  std::unique_ptr<FaultInjector> faults_;
};

/// Byte-packing helpers for command payloads.
void pack_i64(std::vector<uint8_t>& buf, int64_t v);
int64_t unpack_i64(const std::vector<uint8_t>& buf, size_t* offset);
void pack_floats(std::vector<uint8_t>& buf, const float* data, int64_t count);
std::vector<float> unpack_floats(const std::vector<uint8_t>& buf,
                                 size_t* offset, int64_t count);

}  // namespace tbnet::tee
