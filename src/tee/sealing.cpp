#include "tee/sealing.h"

#include <cstring>
#include <stdexcept>

namespace tbnet::tee {
namespace {

uint64_t splitmix(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Keyed keystream XOR over the buffer (in place).
void keystream_xor(const DeviceKey& key, uint64_t nonce,
                   std::vector<uint8_t>& data) {
  uint64_t state = key.hi ^ (nonce * 0x9E3779B97F4A7C15ull);
  uint64_t mix = key.lo;
  size_t i = 0;
  while (i < data.size()) {
    const uint64_t word = splitmix(state) ^ mix;
    mix = mix * 6364136223846793005ull + 1442695040888963407ull;
    for (int b = 0; b < 8 && i < data.size(); ++b, ++i) {
      data[i] ^= static_cast<uint8_t>(word >> (8 * b));
    }
  }
}

/// Keyed FNV-ish tag over nonce + ciphertext.
uint64_t compute_tag(const DeviceKey& key, uint64_t nonce,
                     const std::vector<uint8_t>& data) {
  uint64_t h = 1469598103934665603ull ^ key.lo;
  auto mix_byte = [&h](uint8_t c) {
    h ^= c;
    h *= 1099511628211ull;
  };
  for (int b = 0; b < 8; ++b) mix_byte(static_cast<uint8_t>(nonce >> (8 * b)));
  for (uint8_t c : data) mix_byte(c);
  for (int b = 0; b < 8; ++b) {
    mix_byte(static_cast<uint8_t>(key.hi >> (8 * b)));
  }
  return h;
}

}  // namespace

DeviceKey DeviceKey::derive(const std::string& seed_material) {
  uint64_t state = 0xD0E5C0DE;
  for (unsigned char c : seed_material) {
    state = state * 1099511628211ull + c;
  }
  DeviceKey key;
  key.hi = splitmix(state);
  key.lo = splitmix(state);
  return key;
}

std::vector<uint8_t> SealedBlob::serialize() const {
  std::vector<uint8_t> wire;
  wire.reserve(ciphertext.size() + 24);
  auto put_u64 = [&wire](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      wire.push_back(static_cast<uint8_t>(v >> (8 * b)));
    }
  };
  put_u64(version);
  put_u64(nonce);
  put_u64(tag);
  put_u64(ciphertext.size());
  wire.insert(wire.end(), ciphertext.begin(), ciphertext.end());
  return wire;
}

SealedBlob SealedBlob::deserialize(const std::vector<uint8_t>& wire) {
  if (wire.size() < 32) {
    throw std::invalid_argument("SealedBlob: wire too short");
  }
  size_t off = 0;
  auto get_u64 = [&wire, &off]() {
    uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
      v |= static_cast<uint64_t>(wire[off++]) << (8 * b);
    }
    return v;
  };
  SealedBlob blob;
  blob.version = static_cast<uint32_t>(get_u64());
  blob.nonce = get_u64();
  blob.tag = get_u64();
  const uint64_t len = get_u64();
  if (off + len != wire.size()) {
    throw std::invalid_argument("SealedBlob: length mismatch");
  }
  blob.ciphertext.assign(wire.begin() + static_cast<std::ptrdiff_t>(off),
                         wire.end());
  return blob;
}

SealedBlob seal(const DeviceKey& key, uint64_t nonce,
                const std::vector<uint8_t>& plaintext) {
  SealedBlob blob;
  blob.nonce = nonce;
  blob.ciphertext = plaintext;
  keystream_xor(key, nonce, blob.ciphertext);
  blob.tag = compute_tag(key, nonce, blob.ciphertext);
  return blob;
}

std::vector<uint8_t> unseal(const DeviceKey& key, const SealedBlob& blob) {
  if (compute_tag(key, blob.nonce, blob.ciphertext) != blob.tag) {
    throw SecurityViolation(
        "sealed TA image failed integrity verification (wrong device key or "
        "tampered image)");
  }
  std::vector<uint8_t> plaintext = blob.ciphertext;
  keystream_xor(key, blob.nonce, plaintext);
  return plaintext;
}

}  // namespace tbnet::tee
