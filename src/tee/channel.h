#pragma once
// OneWayChannel — the REE -> TEE data path with direction enforcement.
//
// TBNet's security argument (paper §3.2) hinges on intermediate feature maps
// flowing only from the normal world into the secure world. The channel is a
// hard invariant here: any attempt to push a payload in the secure->normal
// direction throws SecurityViolation. The channel also keeps transfer
// statistics (count, bytes, per-transfer log) that feed the latency model
// and the experiment reports.
//
// A `Policy::kBidirectional` mode exists solely to model *prior-art*
// baselines (DarkneTZ-style partitioning returns TEE feature maps to the
// REE in plaintext); payloads sent secure->normal under that policy are
// tallied as leaked bytes, which is what the substitute-layer attack feeds
// on.

#include <cstdint>
#include <vector>

#include "tee/world.h"

namespace tbnet::tee {

class OneWayChannel {
 public:
  enum class Policy {
    kOneWayIntoTee,  ///< TBNet: normal->secure only
    kBidirectional,  ///< prior-art baselines; secure->normal counted as leak
  };

  explicit OneWayChannel(Policy policy = Policy::kOneWayIntoTee)
      : policy_(policy) {}

  struct Transfer {
    World from = World::kNormal;
    World to = World::kSecure;
    int64_t bytes = 0;
  };

  /// Registers a payload crossing worlds. Throws SecurityViolation for a
  /// secure->normal push under the one-way policy.
  void push(World from, World to, int64_t bytes);

  Policy policy() const { return policy_; }
  int64_t transfer_count() const { return static_cast<int64_t>(log_.size()); }
  int64_t total_bytes() const { return total_bytes_; }
  int64_t bytes_into_tee() const { return into_tee_; }
  /// Bytes that left the TEE in plaintext (0 under the one-way policy).
  int64_t leaked_bytes() const { return leaked_; }
  const std::vector<Transfer>& log() const { return log_; }

  void reset();

 private:
  Policy policy_;
  std::vector<Transfer> log_;
  int64_t total_bytes_ = 0;
  int64_t into_tee_ = 0;
  int64_t leaked_ = 0;
};

}  // namespace tbnet::tee
