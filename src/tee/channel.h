#pragma once
// OneWayChannel — the REE -> TEE data path with direction enforcement.
//
// TBNet's security argument (paper §3.2) hinges on intermediate feature maps
// flowing only from the normal world into the secure world. The channel is a
// hard invariant here: any attempt to push a payload in the secure->normal
// direction throws SecurityViolation. The channel also keeps transfer
// statistics (count, bytes, per-transfer log) that feed the latency model
// and the experiment reports.
//
// A `Policy::kBidirectional` mode exists solely to model *prior-art*
// baselines (DarkneTZ-style partitioning returns TEE feature maps to the
// REE in plaintext); payloads sent secure->normal under that policy are
// tallied as leaked bytes, which is what the substitute-layer attack feeds
// on.

#include <cstdint>
#include <vector>

#include "tee/world.h"
#include "tensor/thread_annotations.h"

namespace tbnet::tee {

class OneWayChannel {
 public:
  enum class Policy {
    kOneWayIntoTee,  ///< TBNet: normal->secure only
    kBidirectional,  ///< prior-art baselines; secure->normal counted as leak
  };

  explicit OneWayChannel(Policy policy = Policy::kOneWayIntoTee)
      : policy_(policy) {}

  struct Transfer {
    World from = World::kNormal;
    World to = World::kSecure;
    int64_t bytes = 0;
  };

  /// Registers a payload crossing worlds. Throws SecurityViolation for a
  /// secure->normal push under the one-way policy.
  ///
  /// All methods are thread-safe: in parallel serving every dispatch
  /// worker's session pushes through its context's channel while bench /
  /// example code polls the byte counters from the submitting thread.
  void push(World from, World to, int64_t bytes);

  Policy policy() const { return policy_; }
  int64_t transfer_count() const {
    MutexLock lock(mu_);
    return static_cast<int64_t>(log_.size());
  }
  int64_t total_bytes() const {
    MutexLock lock(mu_);
    return total_bytes_;
  }
  int64_t bytes_into_tee() const {
    MutexLock lock(mu_);
    return into_tee_;
  }
  /// Bytes that left the TEE in plaintext (0 under the one-way policy).
  int64_t leaked_bytes() const {
    MutexLock lock(mu_);
    return leaked_;
  }
  /// Snapshot of the per-transfer log (by value: the live log may grow
  /// concurrently, so handing out a reference would be a data race).
  std::vector<Transfer> log() const {
    MutexLock lock(mu_);
    return log_;
  }

  void reset();

 private:
  const Policy policy_;  ///< fixed at construction, safe to read unlocked
  mutable Mutex mu_;
  std::vector<Transfer> log_ TS_GUARDED_BY(mu_);
  int64_t total_bytes_ TS_GUARDED_BY(mu_) = 0;
  int64_t into_tee_ TS_GUARDED_BY(mu_) = 0;
  int64_t leaked_ TS_GUARDED_BY(mu_) = 0;
};

}  // namespace tbnet::tee
