#pragma once
// Sealed TA images — confidentiality & integrity for the model at rest.
//
// On a real device the secure branch must not sit in flash as plaintext:
// OP-TEE ships trusted applications encrypted/signed and unseals them inside
// the secure world. This module provides the simulation equivalent: a
// stream-cipher seal (keyed keystream XOR) plus an integrity tag, with the
// device key held by the SecureWorld only. The cipher is a SplitMix64
// keystream — NOT production cryptography, but it exercises the exact
// dataflow (seal at packaging time, unseal only inside the TEE, reject
// tampering) that a real AES-GCM implementation would.

#include <cstdint>
#include <string>
#include <vector>

#include "tee/world.h"

namespace tbnet::tee {

/// 128-bit device key (simulated hardware-unique key).
struct DeviceKey {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const DeviceKey&) const = default;

  /// Derives a key from a passphrase-like string (deterministic).
  static DeviceKey derive(const std::string& seed_material);
};

/// A sealed blob: version, nonce, ciphertext and integrity tag.
struct SealedBlob {
  uint32_t version = 1;
  uint64_t nonce = 0;
  std::vector<uint8_t> ciphertext;
  uint64_t tag = 0;

  /// Flat wire format (for storing/shipping).
  std::vector<uint8_t> serialize() const;
  static SealedBlob deserialize(const std::vector<uint8_t>& wire);
};

/// Seals `plaintext` under `key` with the given nonce.
SealedBlob seal(const DeviceKey& key, uint64_t nonce,
                const std::vector<uint8_t>& plaintext);

/// Unseals; throws SecurityViolation if the tag does not verify (wrong key
/// or tampered ciphertext).
std::vector<uint8_t> unseal(const DeviceKey& key, const SealedBlob& blob);

}  // namespace tbnet::tee
