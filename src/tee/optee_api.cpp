#include "tee/optee_api.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "tensor/crc32c.h"

namespace tbnet::tee {
namespace {

/// TBNET_SPIN_STALLS=1 forces injected stalls to busy-wait for their whole
/// duration (the pre-PR-10 behavior) — the most faithful model of the CPU
/// being seized by SMC + context save/restore, at the cost of burning a
/// core. Read once; a process-lifetime switch like the fault-injection envs.
bool pure_spin_stalls() {
  static const bool enabled = [] {
    const char* v = std::getenv("TBNET_SPIN_STALLS");
    return v != nullptr && v[0] == '1';
  }();
  return enabled;
}

/// Waits for `seconds` on the steady clock. OP-TEE world switches are tens
/// of microseconds — far below sleep granularity — so short stalls spin,
/// modeling the CPU being unavailable during SMC + context save/restore.
/// Long stalls (device-timing profiles inject hundreds of microseconds per
/// invocation) sleep most of the interval and spin only the final ~100us to
/// the deadline: on machines with fewer cores than serving workers, N
/// workers pure-spinning their stalls serialize on the core instead of
/// overlapping, which inverts every multi-worker scaling measurement.
/// TBNET_SPIN_STALLS=1 restores the pure spin.
void spin_for(double seconds) {
  if (seconds <= 0.0) return;
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::duration<double>(seconds));
  constexpr auto kSpinTail = std::chrono::microseconds(100);
  if (!pure_spin_stalls() && seconds > 200e-6) {
    std::this_thread::sleep_until(until - kSpinTail);
  }
  while (std::chrono::steady_clock::now() < until) {
  }
}

}  // namespace

void SecureWorld::install(const std::string& uuid,
                          std::unique_ptr<TrustedApp> ta) {
  if (!ta) throw std::invalid_argument("SecureWorld::install: null TA");
  // on_install may claim secure memory for weights — potentially slow and
  // self-locking (the pool has its own mutex), so it runs before the table
  // lock; the TA only becomes visible to lookup() fully initialized.
  TaContext ctx{&memory_};
  ta->on_install(ctx);
  MutexLock lock(mu_);
  tas_[uuid] = std::move(ta);
}

TrustedApp* SecureWorld::lookup(const std::string& uuid) {
  MutexLock lock(mu_);
  auto it = tas_.find(uuid);
  if (it == tas_.end()) {
    throw std::invalid_argument("SecureWorld: no TA installed as " + uuid);
  }
  return it->second.get();
}

TeeSession::TeeSession(SecureWorld& world, OneWayChannel& channel,
                       const std::string& uuid, int64_t max_result_bytes,
                       FaultInjector* faults)
    : world_(world),
      channel_(channel),
      ta_(world.lookup(uuid)),
      max_result_bytes_(max_result_bytes),
      faults_(faults) {
  // The open boundary can fail like any other crossing; firing here (after
  // TA lookup, before the caller holds a session) keeps re-opening safe.
  if (faults_ != nullptr) faults_->check("open");
}

// Single-threaded handoff out of TeeContext::open_session: `other` is a
// temporary no second thread can reach yet, so its guarded counters are
// read without its mutex (the mutex itself is not movable, and constructors
// are outside the thread-safety analysis anyway).
TeeSession::TeeSession(TeeSession&& other) noexcept
    : world_(other.world_),
      channel_(other.channel_),
      ta_(other.ta_),
      max_result_bytes_(other.max_result_bytes_),
      switches_(other.switches_),
      timing_(other.timing_),
      simulated_overhead_s_(other.simulated_overhead_s_),
      faults_(other.faults_) {}

uint32_t TeeSession::invoke(uint32_t command, const std::vector<uint8_t>& in,
                            std::vector<uint8_t>* out) {
  // One timing snapshot per invoke: simulate_timing() is a setup-time call,
  // and copying the profile out here keeps every spin_for stall below
  // outside the lock (a counter poll must never block behind a simulated
  // world switch).
  std::optional<DeviceProfile> timing;
  {
    MutexLock lock(mu_);
    timing = timing_;
  }
  // Both fault sites fire BEFORE the channel push and the TA execution, so
  // a faulted invoke leaves no secure-world state behind and retrying the
  // identical command is safe (see tee/fault.h).
  const std::vector<uint8_t>* body = &in;
  std::optional<std::vector<uint8_t>> damaged;
  if (faults_ != nullptr) {
    faults_->check("invoke");
    damaged = faults_->check_transfer("transfer", in);
    if (damaged) {
      // The secure side verifies a CRC32C frame checksum over each shared-
      // memory transfer before touching the payload. A flipped bit fails
      // that verification here; a collision (2^-32) would let the damaged
      // payload through, which is exactly the residual risk of a 32-bit
      // frame check — so the damaged bytes flow on in that case.
      if (crc32c(damaged->data(), damaged->size()) !=
          crc32c(in.data(), in.size())) {
        throw IntegrityFault(
            "transfer frame checksum mismatch — payload corrupted in "
            "transit");
      }
      body = &*damaged;
    }
  }
  // Entry switch: parameters cross into the secure world.
  channel_.push(World::kNormal, World::kSecure,
                static_cast<int64_t>(body->size()));
  {
    MutexLock lock(mu_);
    ++switches_;
  }
  if (timing) {
    // Entry: client-API invoke overhead + SMC switch + payload transfer.
    const double stall =
        timing->invoke_overhead_s + timing->world_switch_s +
        static_cast<double>(body->size()) / timing->channel_bytes_per_s;
    spin_for(stall);
    MutexLock lock(mu_);
    simulated_overhead_s_ += stall;
  }

  std::vector<uint8_t> result;
  TaContext ctx{&world_.memory()};
  const uint32_t status = ta_->invoke(command, *body, result, ctx);

  // Exit switch: only the (capped) result may leave.
  if (static_cast<int64_t>(result.size()) > max_result_bytes_) {
    throw SecurityViolation(
        "TA attempted to return " + std::to_string(result.size()) +
        " B (cap " + std::to_string(max_result_bytes_) +
        " B) — intermediate data must not leave the TEE");
  }
  if (!result.empty()) {
    // Returning the final result is the one sanctioned secure->normal flow;
    // it bypasses the feature-map channel by construction (it is the
    // API-level return value), so it is not pushed through `channel_`.
    MutexLock lock(mu_);
    ++switches_;
  }
  if (timing) {
    // Control always returns to the normal world after an invoke (the SMC
    // return path), so the exit switch is stalled for even when no result
    // bytes cross. `switches_` keeps the result-bearing counting convention
    // used by the experiment reports.
    const double stall =
        timing->world_switch_s +
        static_cast<double>(result.size()) / timing->channel_bytes_per_s;
    spin_for(stall);
    MutexLock lock(mu_);
    simulated_overhead_s_ += stall;
  }
  if (out != nullptr) *out = std::move(result);
  return status;
}

void pack_i64(std::vector<uint8_t>& buf, int64_t v) {
  const size_t at = buf.size();
  buf.resize(at + sizeof(v));
  std::memcpy(buf.data() + at, &v, sizeof(v));
}

int64_t unpack_i64(const std::vector<uint8_t>& buf, size_t* offset) {
  if (*offset + sizeof(int64_t) > buf.size()) {
    throw std::out_of_range("unpack_i64: truncated payload");
  }
  int64_t v = 0;
  std::memcpy(&v, buf.data() + *offset, sizeof(v));
  *offset += sizeof(v);
  return v;
}

void pack_floats(std::vector<uint8_t>& buf, const float* data, int64_t count) {
  const size_t at = buf.size();
  buf.resize(at + static_cast<size_t>(count) * sizeof(float));
  std::memcpy(buf.data() + at, data,
              static_cast<size_t>(count) * sizeof(float));
}

std::vector<float> unpack_floats(const std::vector<uint8_t>& buf,
                                 size_t* offset, int64_t count) {
  const size_t bytes = static_cast<size_t>(count) * sizeof(float);
  if (*offset + bytes > buf.size()) {
    throw std::out_of_range("unpack_floats: truncated payload");
  }
  std::vector<float> out(static_cast<size_t>(count));
  std::memcpy(out.data(), buf.data() + *offset, bytes);
  *offset += bytes;
  return out;
}

}  // namespace tbnet::tee
