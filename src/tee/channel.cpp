#include "tee/channel.h"

#include <stdexcept>

namespace tbnet::tee {

void OneWayChannel::push(World from, World to, int64_t bytes) {
  if (bytes < 0) throw std::invalid_argument("OneWayChannel: negative payload");
  if (from == to) {
    throw std::invalid_argument("OneWayChannel: transfer within one world");
  }
  if (from == World::kSecure && policy_ == Policy::kOneWayIntoTee) {
    throw SecurityViolation(
        "one-way channel violation: attempted to push " +
        std::to_string(bytes) + " B from TEE to REE");
  }
  MutexLock lock(mu_);
  log_.push_back(Transfer{from, to, bytes});
  total_bytes_ += bytes;
  if (to == World::kSecure) into_tee_ += bytes;
  if (from == World::kSecure) leaked_ += bytes;
}

void OneWayChannel::reset() {
  MutexLock lock(mu_);
  log_.clear();
  total_bytes_ = 0;
  into_tee_ = 0;
  leaked_ = 0;
}

}  // namespace tbnet::tee
