#pragma once
// World identifiers for the simulated ARM TrustZone device.

#include <string>

namespace tbnet::tee {

/// TrustZone worlds: the Rich Execution Environment (normal world, attacker
/// visible) and the Trusted Execution Environment (secure world).
enum class World {
  kNormal,  ///< REE
  kSecure,  ///< TEE
};

inline std::string to_string(World w) {
  return w == World::kNormal ? "REE" : "TEE";
}

/// Thrown whenever simulated code attempts something the TrustZone hardware
/// would forbid (secure->normal data push, secure memory overflow, ...).
class SecurityViolation : public std::exception {
 public:
  explicit SecurityViolation(std::string what) : what_(std::move(what)) {}
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  std::string what_;
};

}  // namespace tbnet::tee
