#include "core/report.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tbnet::core {

void JsonWriter::comma() {
  if (!first_in_scope_.empty()) {
    if (!first_in_scope_.back() && !pending_key_) out_ += ",";
    first_in_scope_.back() = false;
  }
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  pending_key_ = false;
  out_ += "{";
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (first_in_scope_.empty()) {
    throw std::logic_error("JsonWriter: end_object without begin");
  }
  first_in_scope_.pop_back();
  out_ += "}";
  return *this;
}

JsonWriter& JsonWriter::begin_array(const std::string& k) {
  if (!k.empty()) key(k);
  comma();
  pending_key_ = false;
  out_ += "[";
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (first_in_scope_.empty()) {
    throw std::logic_error("JsonWriter: end_array without begin");
  }
  first_in_scope_.pop_back();
  out_ += "]";
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  comma();
  out_ += "\"" + escape(k) + "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  pending_key_ = false;
  if (std::isfinite(v)) {
    std::ostringstream os;
    os << v;
    out_ += os.str();
  } else {
    out_ += "null";
  }
  return *this;
}

JsonWriter& JsonWriter::value(int64_t v) {
  comma();
  pending_key_ = false;
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  pending_key_ = false;
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  pending_key_ = false;
  out_ += "\"" + escape(v) + "\"";
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& k, double v) {
  return key(k).value(v);
}
JsonWriter& JsonWriter::field(const std::string& k, int64_t v) {
  return key(k).value(v);
}
JsonWriter& JsonWriter::field(const std::string& k, bool v) {
  return key(k).value(v);
}
JsonWriter& JsonWriter::field(const std::string& k, const std::string& v) {
  return key(k).value(v);
}

std::string to_json(const PipelineReport& r, const std::string& label) {
  JsonWriter w;
  w.begin_object()
      .field("label", label)
      .field("transfer_acc", r.transfer_acc)
      .field("pruned_acc", r.pruned_acc)
      .field("final_acc", r.final_acc)
      .field("attack_direct_acc", r.attack_direct_acc)
      .field("accepted_prune_iterations", r.accepted_prune_iterations)
      .field("rollback_applied", r.rollback_applied)
      .field("remapped_stages", r.remapped_stages)
      .field("arch_divergence", r.arch_divergence)
      .field("secure_bytes_initial", r.secure_bytes_initial)
      .field("secure_bytes_final", r.secure_bytes_final)
      .field("exposed_bytes_final", r.exposed_bytes_final);
  w.begin_array("prune_iterations");
  for (const PruneIteration& it : r.prune_iterations) {
    w.begin_object()
        .field("index", it.index)
        .field("accepted", it.accepted)
        .field("acc_after_finetune", it.acc_after_finetune)
        .field("secure_param_bytes_after", it.secure_param_bytes_after)
        .end_object();
  }
  w.end_array().end_object();
  return w.str();
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("write_text_file: cannot open " + path);
  f << text;
  if (!f) throw std::runtime_error("write_text_file: write failed for " + path);
}

}  // namespace tbnet::core
