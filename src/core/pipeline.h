#pragma once
// TbnetPipeline — end-to-end orchestration of the six-step workflow of
// Fig. 1: two-branch initialization is done by the caller (it needs the model
// family builders); this class runs steps 2-6 and measures everything the
// paper's evaluation reports.

#include <vector>

#include "core/knowledge_transfer.h"
#include "core/prune_point.h"
#include "core/pruner.h"
#include "core/rollback.h"
#include "core/two_branch.h"
#include "data/dataset.h"

namespace tbnet::core {

struct PipelineConfig {
  /// Step 2: knowledge transfer (Eq. 1).
  TransferConfig transfer;
  /// Steps 3-5: iterative two-branch pruning (Alg. 1).
  PruneConfig prune;
  /// Step 6: rollback finalization on/off (off = ablation).
  bool rollback = true;
  /// Optional post-rollback recovery fine-tune of M_T with M_R frozen
  /// (epochs = 0 disables). Keeps M_R bit-identical to the rolled-back state
  /// the attacker sees while letting M_T re-adapt to the wider REE input.
  TransferConfig recovery;

  PipelineConfig() {
    recovery.epochs = 0;
    recovery.freeze_exposed = true;
    recovery.lambda = 0.0;  // no sparsity pressure after pruning is done
  }
};

struct PipelineReport {
  // Step 2.
  double transfer_acc = 0.0;
  // Steps 3-5.
  double pruned_acc = 0.0;
  int accepted_prune_iterations = 0;
  std::vector<PruneIteration> prune_iterations;
  // Step 6.
  bool rollback_applied = false;
  int remapped_stages = 0;
  double final_acc = 0.0;  ///< fused accuracy of the deployable model

  // Security metrics.
  double attack_direct_acc = 0.0;   ///< attacker runs extracted M_R directly
  int arch_divergence = 0;          ///< stages where arch(M_R) != arch(M_T)

  // Resource metrics (bytes of parameters + BN buffers).
  int64_t secure_bytes_initial = 0;
  int64_t secure_bytes_final = 0;
  int64_t exposed_bytes_final = 0;
};

class TbnetPipeline {
 public:
  explicit TbnetPipeline(PipelineConfig cfg) : cfg_(std::move(cfg)) {}

  /// Runs steps 2-6 in place on `model` (a freshly initialized two-branch
  /// substitution from models::build_two_branch).
  PipelineReport run(TwoBranchModel& model,
                     const std::vector<PrunePoint>& points,
                     const data::Dataset& train, const data::Dataset& test);

 private:
  PipelineConfig cfg_;
};

}  // namespace tbnet::core
