#include "core/knowledge_transfer.h"

#include <cmath>
#include <cstdio>
#include <unordered_set>

#include "core/pruner.h"
#include "data/dataloader.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace tbnet::core {
namespace {

bool is_bn_gamma(const std::string& name) {
  return name.size() >= 5 && name.compare(name.size() - 5, 5, "gamma") == 0;
}

/// Applies the Eq. 1 sparsity subgradient and returns the penalty value.
///
/// Paired (prunable) BNs get the composite form d|gR+gT| = sign(gR+gT) on
/// both branches; BNs outside any pair fall back to an independent |gamma|
/// so every scale parameter feels sparsity pressure (network-slimming).
double apply_sparsity(TwoBranchModel& model,
                      const std::vector<PrunePoint>& points, double lambda,
                      TransferConfig::Penalty penalty) {
  if (lambda == 0.0) return 0.0;
  const float l = static_cast<float>(lambda);
  double value = 0.0;
  std::unordered_set<const Tensor*> paired;

  if (penalty == TransferConfig::Penalty::kCompositeL1) {
    for (const PrunePoint& pt : points) {
      const ResolvedPoint rp = resolve_point(model, pt);
      Tensor& gr = rp.bn_exposed->gamma();
      Tensor& gt = rp.bn_secure->gamma();
      Tensor& dgr = rp.bn_exposed->gamma_grad();
      Tensor& dgt = rp.bn_secure->gamma_grad();
      paired.insert(&gr);
      paired.insert(&gt);
      for (int64_t c = 0; c < gr.numel(); ++c) {
        const float s = gr[c] + gt[c];
        value += std::fabs(s);
        const float sg = (s > 0.0f) ? l : (s < 0.0f ? -l : 0.0f);
        dgr[c] += sg;
        dgt[c] += sg;
      }
    }
  }
  // Independent L1 on everything not covered above.
  for (nn::ParamRef& p : model.params()) {
    if (!is_bn_gamma(p.name) || paired.count(p.value) != 0) continue;
    for (int64_t c = 0; c < p.value->numel(); ++c) {
      const float g = (*p.value)[c];
      value += std::fabs(g);
      (*p.grad)[c] += (g > 0.0f) ? l : (g < 0.0f ? -l : 0.0f);
    }
  }
  return lambda * value;
}

double evaluate_mode(TwoBranchModel& model, const data::Dataset& dataset,
                     int64_t batch_size, ForwardMode mode) {
  data::DataLoader::Options lo;
  lo.batch_size = batch_size;
  lo.shuffle = false;
  lo.augment = false;
  data::DataLoader loader(dataset, lo);
  loader.start_epoch(0);
  data::Batch batch;
  int64_t hits = 0, total = 0;
  while (loader.next(batch)) {
    Tensor logits;
    switch (mode) {
      case ForwardMode::kFused:
        logits = model.forward(batch.images, /*train=*/false);
        break;
      case ForwardMode::kSecureOnly:
        logits = model.forward_secure_only(batch.images, /*train=*/false);
        break;
      case ForwardMode::kExposedOnly:
        logits = model.forward_exposed_only(batch.images, /*train=*/false);
        break;
      case ForwardMode::kNone:
        throw std::logic_error("evaluate_mode: bad mode");
    }
    const auto pred = argmax_rows(logits);
    for (size_t i = 0; i < pred.size(); ++i) hits += (pred[i] == batch.labels[i]);
    total += batch.size();
  }
  return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
}

}  // namespace

TransferResult knowledge_transfer(TwoBranchModel& model,
                                  const std::vector<PrunePoint>& points,
                                  const data::Dataset& train,
                                  const data::Dataset& test,
                                  const TransferConfig& cfg) {
  data::DataLoader::Options lo;
  lo.batch_size = cfg.batch_size;
  lo.shuffle = true;
  lo.augment = cfg.augment;
  lo.seed = cfg.seed;
  data::DataLoader loader(train, lo);

  nn::SGD sgd(cfg.lr, cfg.momentum, cfg.weight_decay);
  nn::StepLR schedule(cfg.lr, cfg.lr_step, cfg.lr_gamma);

  TransferResult result;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    sgd.set_lr(schedule.lr_at(epoch));
    loader.start_epoch(epoch);
    data::Batch batch;
    double ce_sum = 0.0, pen_sum = 0.0;
    int64_t batches = 0;
    while (loader.next(batch)) {
      model.zero_grad();
      Tensor logits = model.forward(batch.images, /*train=*/true,
                                    /*train_exposed=*/!cfg.freeze_exposed);
      Tensor grad;
      ce_sum += softmax_cross_entropy(logits, batch.labels, &grad);
      model.backward(grad, /*freeze_exposed=*/cfg.freeze_exposed);
      pen_sum += apply_sparsity(model, points, cfg.lambda, cfg.penalty);
      sgd.step(cfg.freeze_exposed ? model.params_secure() : model.params());
      ++batches;
    }
    TransferEpoch ep;
    ep.ce_loss = batches ? ce_sum / static_cast<double>(batches) : 0.0;
    ep.sparsity_penalty = batches ? pen_sum / static_cast<double>(batches) : 0.0;
    ep.test_acc = evaluate_fused(model, test);
    if (cfg.log_every > 0 && epoch % cfg.log_every == 0) {
      std::printf("  transfer epoch %3d  ce %.4f  penalty %.5f  acc %.2f%%\n",
                  epoch, ep.ce_loss, ep.sparsity_penalty, 100.0 * ep.test_acc);
      std::fflush(stdout);
    }
    result.epochs.push_back(ep);
  }
  result.final_acc =
      result.epochs.empty() ? evaluate_fused(model, test)
                            : result.epochs.back().test_acc;
  return result;
}

TransferResult retrain_secure_standalone(TwoBranchModel& model,
                                         const data::Dataset& train,
                                         const data::Dataset& test,
                                         const TransferConfig& cfg) {
  data::DataLoader::Options lo;
  lo.batch_size = cfg.batch_size;
  lo.shuffle = true;
  lo.augment = cfg.augment;
  lo.seed = cfg.seed;
  data::DataLoader loader(train, lo);

  nn::SGD sgd(cfg.lr, cfg.momentum, cfg.weight_decay);
  nn::StepLR schedule(cfg.lr, cfg.lr_step, cfg.lr_gamma);

  TransferResult result;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    sgd.set_lr(schedule.lr_at(epoch));
    loader.start_epoch(epoch);
    data::Batch batch;
    double ce_sum = 0.0;
    int64_t batches = 0;
    while (loader.next(batch)) {
      model.zero_grad();
      Tensor logits = model.forward_secure_only(batch.images, /*train=*/true);
      Tensor grad;
      ce_sum += softmax_cross_entropy(logits, batch.labels, &grad);
      model.backward(grad);
      sgd.step(model.params_secure());
      ++batches;
    }
    TransferEpoch ep;
    ep.ce_loss = batches ? ce_sum / static_cast<double>(batches) : 0.0;
    ep.test_acc = evaluate_secure_only(model, test);
    if (cfg.log_every > 0 && epoch % cfg.log_every == 0) {
      std::printf("  standalone epoch %3d  ce %.4f  acc %.2f%%\n", epoch,
                  ep.ce_loss, 100.0 * ep.test_acc);
      std::fflush(stdout);
    }
    result.epochs.push_back(ep);
  }
  result.final_acc = result.epochs.empty()
                         ? evaluate_secure_only(model, test)
                         : result.epochs.back().test_acc;
  return result;
}

double evaluate_fused(TwoBranchModel& model, const data::Dataset& dataset,
                      int64_t batch_size) {
  return evaluate_mode(model, dataset, batch_size, ForwardMode::kFused);
}

double evaluate_secure_only(TwoBranchModel& model,
                            const data::Dataset& dataset, int64_t batch_size) {
  return evaluate_mode(model, dataset, batch_size, ForwardMode::kSecureOnly);
}

double evaluate_exposed_only(TwoBranchModel& model,
                             const data::Dataset& dataset,
                             int64_t batch_size) {
  return evaluate_mode(model, dataset, batch_size, ForwardMode::kExposedOnly);
}

BnGammas collect_bn_gammas(TwoBranchModel& model,
                           const std::vector<PrunePoint>& points) {
  BnGammas out;
  for (const PrunePoint& pt : points) {
    const ResolvedPoint rp = resolve_point(model, pt);
    const Tensor& gr = rp.bn_exposed->gamma();
    const Tensor& gt = rp.bn_secure->gamma();
    for (int64_t c = 0; c < gr.numel(); ++c) out.exposed.push_back(gr[c]);
    for (int64_t c = 0; c < gt.numel(); ++c) out.secure.push_back(gt[c]);
  }
  return out;
}

}  // namespace tbnet::core
