#include "core/pruner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/depthwise.h"
#include "nn/residual.h"
#include "nn/sequential.h"

namespace tbnet::core {
namespace {

using nn::BatchNorm2d;
using nn::Conv2d;
using nn::Dense;
using nn::DepthwiseConv2d;
using nn::ResidualBlock;
using nn::Sequential;

Sequential* as_sequential(nn::Layer* block, const char* what) {
  auto* seq = dynamic_cast<Sequential*>(block);
  if (seq == nullptr) {
    throw std::logic_error(std::string("pruner: expected Sequential block for ") +
                           what);
  }
  return seq;
}

template <typename L>
L* find_nth_layer(Sequential& seq, int n) {
  for (int i = 0; i < seq.size(); ++i) {
    if (auto* typed = dynamic_cast<L*>(&seq.layer(i))) {
      if (n-- == 0) return typed;
    }
  }
  return nullptr;
}

template <typename L>
L* find_last_layer(Sequential& seq) {
  L* last = nullptr;
  for (int i = 0; i < seq.size(); ++i) {
    if (auto* typed = dynamic_cast<L*>(&seq.layer(i))) last = typed;
  }
  return last;
}

/// Shrinks the input-channel expectation of the block consuming a pruned
/// interface: either its first Conv2d, or (for the head) its first Dense.
void shrink_consumer(nn::Layer* block, const std::vector<int64_t>& keep) {
  if (auto* res = dynamic_cast<ResidualBlock*>(block)) {
    (void)res;
    throw std::logic_error(
        "pruner: interface feeding a ResidualBlock is not prunable (the skip "
        "path pins its input width)");
  }
  auto* seq = as_sequential(block, "interface consumer");
  if (auto* dw = find_nth_layer<DepthwiseConv2d>(*seq, 0)) {
    // Depthwise-separable consumer: the depthwise conv's channel set IS its
    // input set, so the following BN and the pointwise conv's inputs shrink
    // with it.
    dw->select_channels(keep);
    if (auto* bn = find_nth_layer<BatchNorm2d>(*seq, 0)) {
      bn->select_channels(keep);
    }
    if (auto* pw = find_nth_layer<Conv2d>(*seq, 0)) {
      pw->select_in_channels(keep);
    }
    return;
  }
  if (auto* conv = find_nth_layer<Conv2d>(*seq, 0)) {
    conv->select_in_channels(keep);
    return;
  }
  if (auto* dense = find_nth_layer<Dense>(*seq, 0)) {
    // Head stages pool to 1x1 before Flatten, so one feature per channel.
    dense->select_in_channels(keep, /*features_per_channel=*/1);
    return;
  }
  throw std::logic_error("pruner: consumer block has no Conv2d or Dense");
}

struct InterfaceLayers {
  Conv2d* conv = nullptr;
  BatchNorm2d* bn = nullptr;
};

InterfaceLayers interface_layers(nn::Layer* block) {
  auto* seq = as_sequential(block, "interface stage");
  InterfaceLayers out;
  out.conv = find_last_layer<Conv2d>(*seq);
  out.bn = find_last_layer<BatchNorm2d>(*seq);
  if (out.conv == nullptr || out.bn == nullptr) {
    throw std::logic_error("pruner: interface stage lacks Conv2d+BatchNorm2d");
  }
  if (out.conv->out_channels() != out.bn->channels()) {
    throw std::logic_error("pruner: interface Conv/BN width mismatch");
  }
  return out;
}

struct InternalLayers {
  Conv2d* conv1 = nullptr;
  BatchNorm2d* bn1 = nullptr;
  Conv2d* conv2 = nullptr;
  ResidualBlock* residual = nullptr;  ///< set instead when block is residual
};

InternalLayers internal_layers(nn::Layer* block) {
  InternalLayers out;
  if (auto* res = dynamic_cast<ResidualBlock*>(block)) {
    out.residual = res;
    return out;
  }
  auto* seq = as_sequential(block, "internal stage");
  out.conv1 = find_nth_layer<Conv2d>(*seq, 0);
  out.bn1 = find_nth_layer<BatchNorm2d>(*seq, 0);
  out.conv2 = find_nth_layer<Conv2d>(*seq, 1);
  if (out.conv1 == nullptr || out.bn1 == nullptr || out.conv2 == nullptr) {
    throw std::logic_error(
        "pruner: internal stage lacks Conv-BN-...-Conv structure");
  }
  return out;
}

}  // namespace

ResolvedPoint resolve_point_lenient(TwoBranchModel& model,
                                    const PrunePoint& point) {
  if (point.stage < 0 || point.stage >= model.num_stages()) {
    throw std::out_of_range("resolve_point: stage out of range");
  }
  FusionStage& stage = model.stage(point.stage);
  ResolvedPoint out;
  if (point.kind == PrunePoint::Kind::kInterface) {
    out.bn_exposed = interface_layers(stage.exposed.get()).bn;
    out.bn_secure = interface_layers(stage.secure.get()).bn;
  } else {
    const InternalLayers r = internal_layers(stage.exposed.get());
    out.bn_exposed = r.residual ? &r.residual->bn1() : r.bn1;
    const InternalLayers t = internal_layers(stage.secure.get());
    out.bn_secure = t.residual ? &t.residual->bn1() : t.bn1;
  }
  return out;
}

ResolvedPoint resolve_point(TwoBranchModel& model, const PrunePoint& point) {
  ResolvedPoint out = resolve_point_lenient(model, point);
  if (out.bn_exposed->channels() != out.bn_secure->channels()) {
    throw std::logic_error(
        "resolve_point: branches disagree on channel count at stage " +
        std::to_string(point.stage));
  }
  return out;
}

void apply_channel_keep(TwoBranchModel& model, const PrunePoint& point,
                        const std::vector<int64_t>& keep) {
  if (keep.empty()) {
    throw std::invalid_argument("apply_channel_keep: empty keep list");
  }
  FusionStage& stage = model.stage(point.stage);
  if (point.kind == PrunePoint::Kind::kInterface) {
    if (point.stage + 1 >= model.num_stages()) {
      throw std::logic_error(
          "apply_channel_keep: interface point at the last stage");
    }
    for (nn::Layer* block : {stage.exposed.get(), stage.secure.get()}) {
      const InterfaceLayers il = interface_layers(block);
      il.conv->select_out_channels(keep);
      il.bn->select_channels(keep);
    }
    FusionStage& next = model.stage(point.stage + 1);
    shrink_consumer(next.exposed.get(), keep);
    shrink_consumer(next.secure.get(), keep);
  } else {
    for (nn::Layer* block : {stage.exposed.get(), stage.secure.get()}) {
      const InternalLayers il = internal_layers(block);
      if (il.residual != nullptr) {
        il.residual->prune_internal(keep);
      } else {
        il.conv1->select_out_channels(keep);
        il.bn1->select_channels(keep);
        il.conv2->select_in_channels(keep);
      }
    }
  }
}

std::vector<std::vector<int64_t>> compute_keep_lists(
    TwoBranchModel& model, const std::vector<PrunePoint>& points,
    double ratio, int64_t min_channels, PruneConfig::Criterion criterion) {
  if (ratio < 0.0 || ratio >= 1.0) {
    throw std::invalid_argument("compute_keep_lists: ratio must be in [0, 1)");
  }
  // Step 1-2: composite weights per point.
  std::vector<std::vector<float>> composite(points.size());
  std::vector<float> all;
  for (size_t p = 0; p < points.size(); ++p) {
    const ResolvedPoint rp = resolve_point(model, points[p]);
    const Tensor& gr = rp.bn_exposed->gamma();
    const Tensor& gt = rp.bn_secure->gamma();
    composite[p].resize(static_cast<size_t>(gr.numel()));
    for (int64_t c = 0; c < gr.numel(); ++c) {
      const float v = (criterion == PruneConfig::Criterion::kAbsCompositeSum)
                          ? std::fabs(gr[c] + gt[c])
                          : std::fabs(gr[c]) + std::fabs(gt[c]);
      composite[p][static_cast<size_t>(c)] = v;
      all.push_back(v);
    }
  }
  if (all.empty()) return {};

  // Step 3: rank all composite weights globally and mark the floor(N*p)
  // smallest for pruning (Alg. 1 line 5, with deterministic tie handling —
  // a pure threshold would prune every channel of a freshly initialized
  // model, where all gammas are identical).
  struct Entry {
    float value;
    size_t point;
    size_t channel;
  };
  std::vector<Entry> entries;
  entries.reserve(all.size());
  for (size_t p = 0; p < points.size(); ++p) {
    for (size_t c = 0; c < composite[p].size(); ++c) {
      entries.push_back(Entry{composite[p][c], p, c});
    }
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.value < b.value;
                   });
  const auto prune_count = static_cast<size_t>(
      std::floor(ratio * static_cast<double>(entries.size())));
  std::vector<std::vector<uint8_t>> pruned(points.size());
  for (size_t p = 0; p < points.size(); ++p) {
    pruned[p].assign(composite[p].size(), 0);
  }
  for (size_t i = 0; i < prune_count; ++i) {
    pruned[entries[i].point][entries[i].channel] = 1;
  }

  // Build keep lists, enforcing the per-group floor.
  std::vector<std::vector<int64_t>> keep(points.size());
  for (size_t p = 0; p < points.size(); ++p) {
    const auto& vals = composite[p];
    for (size_t c = 0; c < vals.size(); ++c) {
      if (!pruned[p][c]) keep[p].push_back(static_cast<int64_t>(c));
    }
    if (static_cast<int64_t>(keep[p].size()) < min_channels) {
      // Keep the top-min_channels by composite weight (stable order).
      std::vector<int64_t> order(vals.size());
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(),
                       [&vals](int64_t a, int64_t b) {
                         return vals[static_cast<size_t>(a)] >
                                vals[static_cast<size_t>(b)];
                       });
      const auto take = static_cast<size_t>(
          std::min<int64_t>(min_channels, static_cast<int64_t>(vals.size())));
      keep[p].assign(order.begin(),
                     order.begin() + static_cast<int64_t>(take));
      std::sort(keep[p].begin(), keep[p].end());
    }
  }
  return keep;
}

PruneResult TwoBranchPruner::run(TwoBranchModel& model,
                                 const std::vector<PrunePoint>& points,
                                 const data::Dataset& train,
                                 const data::Dataset& test) {
  PruneResult result;
  result.baseline_acc = evaluate_fused(model, test);
  result.final_acc = result.baseline_acc;

  for (int iter = 0; iter < cfg_.max_iterations; ++iter) {
    TwoBranchModel snapshot = model.clone();
    auto keep = compute_keep_lists(model, points, cfg_.ratio,
                                   cfg_.min_channels, cfg_.criterion);
    // Stop when the threshold no longer removes anything (fully saturated).
    bool pruned_any = false;
    for (size_t p = 0; p < points.size(); ++p) {
      const ResolvedPoint rp = resolve_point(model, points[p]);
      if (static_cast<int64_t>(keep[p].size()) < rp.bn_secure->channels()) {
        pruned_any = true;
      }
    }
    if (!pruned_any) {
      if (cfg_.log_every > 0) {
        std::printf("  prune iter %d: nothing under threshold, stopping\n",
                    iter);
      }
      break;
    }

    for (size_t p = 0; p < points.size(); ++p) {
      apply_channel_keep(model, points[p], keep[p]);
    }
    TransferConfig ft = cfg_.finetune;
    ft.seed = cfg_.finetune.seed + static_cast<uint64_t>(iter) * 977;
    knowledge_transfer(model, points, train, test, ft);
    const double acc = evaluate_fused(model, test);

    PruneIteration record;
    record.index = iter;
    record.acc_after_finetune = acc;
    record.keep = keep;
    record.secure_param_bytes_after = model.secure_param_bytes();
    record.accepted = (result.baseline_acc - acc) <= cfg_.acc_drop_budget;
    if (cfg_.log_every > 0) {
      std::printf("  prune iter %d: acc %.2f%% (baseline %.2f%%, budget %.2f%%) -> %s\n",
                  iter, 100.0 * acc, 100.0 * result.baseline_acc,
                  100.0 * cfg_.acc_drop_budget,
                  record.accepted ? "accepted" : "reverted");
      std::fflush(stdout);
    }
    if (!record.accepted) {
      model = std::move(snapshot);  // revert (Alg. 1 halt-and-revert)
      result.iterations.push_back(std::move(record));
      break;
    }
    result.pre_last_accepted = std::move(snapshot);
    result.last_keep = keep;
    result.final_acc = acc;
    ++result.accepted_count;
    result.any_accepted = true;
    result.iterations.push_back(std::move(record));
  }
  return result;
}

}  // namespace tbnet::core
