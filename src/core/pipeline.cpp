#include "core/pipeline.h"

namespace tbnet::core {

PipelineReport TbnetPipeline::run(TwoBranchModel& model,
                                  const std::vector<PrunePoint>& points,
                                  const data::Dataset& train,
                                  const data::Dataset& test) {
  PipelineReport report;
  report.secure_bytes_initial = model.secure_param_bytes();

  // Step 2: knowledge transfer.
  const TransferResult transfer =
      knowledge_transfer(model, points, train, test, cfg_.transfer);
  report.transfer_acc = transfer.final_acc;

  // Steps 3-5: iterative two-branch pruning.
  TwoBranchPruner pruner(cfg_.prune);
  PruneResult prune = pruner.run(model, points, train, test);
  report.pruned_acc = prune.final_acc;
  report.accepted_prune_iterations = prune.accepted_count;
  report.prune_iterations = prune.iterations;

  // Step 6: rollback finalization.
  if (cfg_.rollback && prune.any_accepted) {
    const RollbackReport rb = rollback_finalize(
        model, std::move(prune.pre_last_accepted), points, prune.last_keep);
    report.rollback_applied = rb.applied;
    report.remapped_stages = static_cast<int>(rb.remapped_stages.size());
    if (cfg_.recovery.epochs > 0) {
      TransferConfig rec = cfg_.recovery;
      rec.freeze_exposed = true;  // M_R must stay exactly as rolled back
      knowledge_transfer(model, points, train, test, rec);
    }
  }

  report.final_acc = evaluate_fused(model, test);
  report.attack_direct_acc = evaluate_exposed_only(model, test);
  report.arch_divergence = architectural_divergence(model, points);
  report.secure_bytes_final = model.secure_param_bytes();
  report.exposed_bytes_final = model.exposed_param_bytes();
  return report;
}

}  // namespace tbnet::core
