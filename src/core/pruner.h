#pragma once
// Iterative two-branch pruning (paper §3.4, Alg. 1).
//
// Per iteration:
//   1. extract BN scale weights gamma_R, gamma_T for every prunable channel
//      group (both branches),
//   2. form composite weights BN = gamma_R + gamma_T per channel,
//   3. sort all composite weights globally and threshold at the pruning
//      ratio p, producing one shared 0/1 mask,
//   4. physically prune the masked channels from *both* branches
//      (conv out/in, BN, dense in as required),
//   5. fine-tune the two-branch model to recover accuracy,
//   6. accept if the accuracy drop vs. the pre-pruning baseline stays within
//      theta_drop; otherwise revert to the pre-iteration snapshot and stop.
//
// The pruner records the snapshot preceding the last *accepted* iteration
// and that iteration's keep lists — exactly the state rollback finalization
// (step 6) needs.

#include <vector>

#include "core/knowledge_transfer.h"
#include "core/prune_point.h"
#include "core/two_branch.h"
#include "data/dataset.h"
#include "nn/batchnorm.h"

namespace tbnet::core {

struct PruneConfig {
  double ratio = 0.10;            ///< fraction of total channels per iteration (paper: 10%)
  double acc_drop_budget = 0.02;  ///< theta_drop, absolute accuracy fraction
  int max_iterations = 10;
  int64_t min_channels = 2;       ///< never prune a group below this width
  TransferConfig finetune;        ///< per-iteration recovery fine-tune

  /// Channel-importance criterion.
  enum class Criterion {
    kAbsCompositeSum,  ///< |gamma_R + gamma_T| — the literal Alg. 1 line 4
    kSumOfAbs,         ///< |gamma_R| + |gamma_T| — ablation variant
  };
  Criterion criterion = Criterion::kAbsCompositeSum;
  int log_every = 0;  ///< 1 = print per-iteration lines
};

/// One pruning iteration's outcome.
struct PruneIteration {
  int index = 0;
  bool accepted = false;
  double acc_after_finetune = 0.0;
  /// Per prune point: indices of the channels kept (relative to the model
  /// state *before* this iteration).
  std::vector<std::vector<int64_t>> keep;
  int64_t secure_param_bytes_after = 0;
};

struct PruneResult {
  double baseline_acc = 0.0;  ///< fused accuracy before any pruning
  double final_acc = 0.0;     ///< fused accuracy of the accepted model
  std::vector<PruneIteration> iterations;
  int accepted_count = 0;
  bool any_accepted = false;
  /// Snapshot of the model *before* the last accepted iteration — the state
  /// M_R rolls back to in step 6.
  TwoBranchModel pre_last_accepted;
  /// Keep lists of the last accepted iteration (channel alignment maps).
  std::vector<std::vector<int64_t>> last_keep;
};

/// The BN pair a prune point resolves to on a concrete model.
struct ResolvedPoint {
  nn::BatchNorm2d* bn_exposed = nullptr;
  nn::BatchNorm2d* bn_secure = nullptr;
};

/// Locates the paired BNs of `point` in `model` (throws if the model does not
/// have the expected block structure, or if the branches disagree on width —
/// which is only legal after rollback finalization).
ResolvedPoint resolve_point(TwoBranchModel& model, const PrunePoint& point);

/// Same lookup without the equal-width check (for post-rollback inspection,
/// where arch(M_R) != arch(M_T) is the whole point).
ResolvedPoint resolve_point_lenient(TwoBranchModel& model,
                                    const PrunePoint& point);

/// Physically prunes the channels NOT listed in `keep` at `point`, editing
/// both branches and (for interface points) the consumers in the next stage.
void apply_channel_keep(TwoBranchModel& model, const PrunePoint& point,
                        const std::vector<int64_t>& keep);

/// Computes this iteration's keep lists from the composite BN weights
/// (steps 1-3 of Alg. 1). Exposed for tests and ablations.
std::vector<std::vector<int64_t>> compute_keep_lists(
    TwoBranchModel& model, const std::vector<PrunePoint>& points,
    double ratio, int64_t min_channels, PruneConfig::Criterion criterion);

class TwoBranchPruner {
 public:
  explicit TwoBranchPruner(PruneConfig cfg) : cfg_(std::move(cfg)) {}

  /// Runs Alg. 1 in place on `model`.
  PruneResult run(TwoBranchModel& model, const std::vector<PrunePoint>& points,
                  const data::Dataset& train, const data::Dataset& test);

 private:
  PruneConfig cfg_;
};

}  // namespace tbnet::core
