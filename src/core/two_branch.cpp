#include "core/two_branch.h"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "nn/fuse.h"
#include "nn/sequential.h"
#include "nn/serialize.h"
#include "tensor/ops.h"

namespace tbnet::core {
namespace {

/// Splits a rank-2/4 activation shape into [N, C, inner].
void nchw_view(const Shape& s, int64_t* n, int64_t* c, int64_t* inner) {
  if (s.ndim() == 4) {
    *n = s.dim(0);
    *c = s.dim(1);
    *inner = s.dim(2) * s.dim(3);
  } else if (s.ndim() == 2) {
    *n = s.dim(0);
    *c = s.dim(1);
    *inner = 1;
  } else {
    throw std::invalid_argument("gather/scatter: expected rank-2 or 4, got " +
                                s.str());
  }
}

}  // namespace

Tensor gather_channels(const Tensor& in, const std::vector<int64_t>& map) {
  if (map.empty()) return in;
  int64_t n = 0, c = 0, inner = 0;
  nchw_view(in.shape(), &n, &c, &inner);
  std::vector<int64_t> dims = in.shape().dims();
  dims[1] = static_cast<int64_t>(map.size());
  Tensor out{Shape(dims)};
  const int64_t kc = static_cast<int64_t>(map.size());
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < kc; ++j) {
      const int64_t src_c = map[static_cast<size_t>(j)];
      if (src_c < 0 || src_c >= c) {
        throw std::out_of_range("gather_channels: map index out of range");
      }
      const float* src = in.data() + (i * c + src_c) * inner;
      float* dst = out.data() + (i * kc + j) * inner;
      for (int64_t p = 0; p < inner; ++p) dst[p] = src[p];
    }
  }
  return out;
}

Tensor scatter_channels(const Tensor& grad, const std::vector<int64_t>& map,
                        const Shape& full_shape) {
  if (map.empty()) {
    if (grad.shape() != full_shape) {
      throw std::invalid_argument("scatter_channels: identity shape mismatch");
    }
    return grad;
  }
  int64_t n = 0, c = 0, inner = 0;
  nchw_view(full_shape, &n, &c, &inner);
  const int64_t kc = static_cast<int64_t>(map.size());
  Tensor out(full_shape);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < kc; ++j) {
      const int64_t dst_c = map[static_cast<size_t>(j)];
      const float* src = grad.data() + (i * kc + j) * inner;
      float* dst = out.data() + (i * c + dst_c) * inner;
      for (int64_t p = 0; p < inner; ++p) dst[p] += src[p];
    }
  }
  return out;
}

TwoBranchModel TwoBranchModel::clone() const {
  TwoBranchModel copy;
  for (const FusionStage& s : stages_) {
    copy.stages_.push_back(FusionStage{s.exposed->clone(), s.secure->clone(),
                                       s.channel_map, s.fused});
  }
  return copy;
}

void TwoBranchModel::add_stage(std::unique_ptr<nn::Layer> exposed,
                               std::unique_ptr<nn::Layer> secure) {
  if (!exposed || !secure) {
    throw std::invalid_argument("TwoBranchModel::add_stage: null block");
  }
  stages_.push_back(
      FusionStage{std::move(exposed), std::move(secure), {}, true});
}

Tensor TwoBranchModel::forward(const Tensor& input, bool train,
                               bool train_exposed) {
  return forward(default_execution_context(), input, train, train_exposed);
}

Tensor TwoBranchModel::forward(ExecutionContext& ctx, const Tensor& input,
                               bool train, bool train_exposed) {
  if (stages_.empty()) throw std::logic_error("TwoBranchModel: no stages");
  exposed_out_shapes_.clear();
  Tensor out_r = input;
  Tensor fused = input;
  for (FusionStage& s : stages_) {
    Tensor out_t = s.secure->forward(ctx, fused, train);
    if (s.fused) {
      out_r = s.exposed->forward(ctx, out_r, train && train_exposed);
      Tensor aligned = gather_channels(out_r, s.channel_map);
      if (aligned.shape() != out_t.shape()) {
        throw std::logic_error(
            "TwoBranchModel: fusion shape mismatch (exposed " +
            aligned.shape().str() + " vs secure " + out_t.shape().str() + ")");
      }
      add(ctx, out_t, aligned, out_t);
      exposed_out_shapes_.push_back(out_r.shape());
    } else {
      // Non-fused stage (the classifier head): the exposed block is not
      // executed — the TBNet output is derived from M_T alone.
      exposed_out_shapes_.push_back(Shape());
    }
    fused = std::move(out_t);
  }
  last_mode_ = train ? ForwardMode::kFused : ForwardMode::kNone;
  last_train_exposed_ = train_exposed;
  return fused;
}

Tensor TwoBranchModel::forward_secure_only(const Tensor& input, bool train) {
  return forward_secure_only(default_execution_context(), input, train);
}

Tensor TwoBranchModel::forward_secure_only(ExecutionContext& ctx,
                                           const Tensor& input, bool train) {
  if (stages_.empty()) throw std::logic_error("TwoBranchModel: no stages");
  Tensor x = input;
  for (FusionStage& s : stages_) x = s.secure->forward(ctx, x, train);
  last_mode_ = train ? ForwardMode::kSecureOnly : ForwardMode::kNone;
  return x;
}

Tensor TwoBranchModel::forward_exposed_only(const Tensor& input, bool train) {
  return forward_exposed_only(default_execution_context(), input, train);
}

Tensor TwoBranchModel::forward_exposed_only(ExecutionContext& ctx,
                                            const Tensor& input, bool train) {
  if (stages_.empty()) throw std::logic_error("TwoBranchModel: no stages");
  Tensor x = input;
  for (FusionStage& s : stages_) x = s.exposed->forward(ctx, x, train);
  last_mode_ = train ? ForwardMode::kExposedOnly : ForwardMode::kNone;
  return x;
}

void TwoBranchModel::backward(const Tensor& grad_logits, bool freeze_exposed) {
  backward(default_execution_context(), grad_logits, freeze_exposed);
}

void TwoBranchModel::backward(ExecutionContext& ctx, const Tensor& grad_logits,
                              bool freeze_exposed) {
  const int n = num_stages();
  switch (last_mode_) {
    case ForwardMode::kFused: {
      if (!last_train_exposed_ && !freeze_exposed) {
        throw std::logic_error(
            "TwoBranchModel::backward: exposed branch ran in eval mode; "
            "call backward(grad, /*freeze_exposed=*/true)");
      }
      Tensor g_fused = grad_logits;
      Tensor g_r_carry;  // grad wrt out_R[i] from exposed block i+1
      for (int i = n - 1; i >= 0; --i) {
        FusionStage& s = stages_[static_cast<size_t>(i)];
        Tensor g_out_t = g_fused;  // fused = out_T (+ gather(out_R) if fused)
        Tensor g_fused_prev = s.secure->backward(ctx, g_out_t);
        if (!freeze_exposed) {
          if (s.fused) {
            Tensor g_out_r =
                scatter_channels(g_fused, s.channel_map,
                                 exposed_out_shapes_[static_cast<size_t>(i)]);
            if (!g_r_carry.empty()) g_out_r.add_(g_r_carry);
            g_r_carry = s.exposed->backward(ctx, g_out_r);
          } else if (!g_r_carry.empty()) {
            // Non-fused stages form a suffix (the head); nothing upstream of
            // them can have produced a carry.
            throw std::logic_error(
                "TwoBranchModel: non-fused stage below a fused one");
          }
        }
        g_fused = std::move(g_fused_prev);
      }
      break;
    }
    case ForwardMode::kSecureOnly: {
      Tensor g = grad_logits;
      for (int i = n - 1; i >= 0; --i) {
        g = stages_[static_cast<size_t>(i)].secure->backward(ctx, g);
      }
      break;
    }
    case ForwardMode::kExposedOnly: {
      Tensor g = grad_logits;
      for (int i = n - 1; i >= 0; --i) {
        g = stages_[static_cast<size_t>(i)].exposed->backward(ctx, g);
      }
      break;
    }
    case ForwardMode::kNone:
      throw std::logic_error(
          "TwoBranchModel::backward without a training forward pass");
  }
  last_mode_ = ForwardMode::kNone;
}

namespace {

void append_params(std::vector<nn::ParamRef>& all, nn::Layer& block,
                   const std::string& prefix) {
  for (nn::ParamRef p : block.params()) {
    p.name = prefix + "." + p.name;
    all.push_back(p);
  }
}

}  // namespace

std::vector<nn::ParamRef> TwoBranchModel::params() {
  std::vector<nn::ParamRef> all = params_exposed();
  std::vector<nn::ParamRef> sec = params_secure();
  all.insert(all.end(), sec.begin(), sec.end());
  return all;
}

std::vector<nn::ParamRef> TwoBranchModel::params_secure() {
  std::vector<nn::ParamRef> all;
  for (size_t i = 0; i < stages_.size(); ++i) {
    append_params(all, *stages_[i].secure, "stage" + std::to_string(i) + ".T");
  }
  return all;
}

std::vector<nn::ParamRef> TwoBranchModel::params_exposed() {
  std::vector<nn::ParamRef> all;
  for (size_t i = 0; i < stages_.size(); ++i) {
    append_params(all, *stages_[i].exposed, "stage" + std::to_string(i) + ".R");
  }
  return all;
}

void TwoBranchModel::zero_grad() {
  for (FusionStage& s : stages_) {
    s.exposed->zero_grad();
    s.secure->zero_grad();
  }
}

int64_t TwoBranchModel::secure_param_bytes() const {
  int64_t total = 0;
  for (const FusionStage& s : stages_) total += s.secure->param_bytes();
  return total;
}

int64_t TwoBranchModel::exposed_param_bytes() const {
  int64_t total = 0;
  for (const FusionStage& s : stages_) total += s.exposed->param_bytes();
  return total;
}

namespace {
// Two-branch streams were historically unversioned, starting directly with
// the i64 stage count (validated to [1, 4096] on load). Newer streams lead
// with an impossible stage count as a sentinel followed by the
// nn/serialize.h model-format version, so the nested layer records can
// evolve (DepthwiseConv2d bias, format v2) without breaking files written
// by older builds — those parse as format v1.
constexpr int64_t kTwoBranchVersionSentinel = -2;
}  // namespace

void save_two_branch(std::ostream& os, const TwoBranchModel& model) {
  const int64_t sentinel = kTwoBranchVersionSentinel;
  os.write(reinterpret_cast<const char*>(&sentinel), sizeof(sentinel));
  const int64_t version = nn::kModelFormatVersion;
  os.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const int64_t stages = model.num_stages();
  os.write(reinterpret_cast<const char*>(&stages), sizeof(stages));
  for (int i = 0; i < stages; ++i) {
    const FusionStage& s = model.stage(i);
    const int64_t map_len = static_cast<int64_t>(s.channel_map.size());
    os.write(reinterpret_cast<const char*>(&map_len), sizeof(map_len));
    for (int64_t v : s.channel_map) {
      os.write(reinterpret_cast<const char*>(&v), sizeof(v));
    }
    const int64_t fused = s.fused ? 1 : 0;
    os.write(reinterpret_cast<const char*>(&fused), sizeof(fused));
    nn::save_layer(os, *s.exposed);
    nn::save_layer(os, *s.secure);
  }
}

TwoBranchModel load_two_branch(std::istream& is) {
  int64_t stages = 0;
  is.read(reinterpret_cast<char*>(&stages), sizeof(stages));
  uint32_t version = 1;  // unversioned streams predate model format v2
  if (is && stages == kTwoBranchVersionSentinel) {
    int64_t v = 0;
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    if (!is || v < 1 || v > nn::kModelFormatVersion) {
      throw std::runtime_error("load_two_branch: unsupported version " +
                               std::to_string(v));
    }
    version = static_cast<uint32_t>(v);
    is.read(reinterpret_cast<char*>(&stages), sizeof(stages));
  }
  if (!is || stages <= 0 || stages > 4096) {
    throw std::runtime_error("load_two_branch: corrupt stage count");
  }
  TwoBranchModel model;
  for (int64_t i = 0; i < stages; ++i) {
    int64_t map_len = 0;
    is.read(reinterpret_cast<char*>(&map_len), sizeof(map_len));
    if (!is || map_len < 0 || map_len > (1 << 20)) {
      throw std::runtime_error("load_two_branch: corrupt channel map");
    }
    std::vector<int64_t> map(static_cast<size_t>(map_len));
    for (int64_t& v : map) {
      is.read(reinterpret_cast<char*>(&v), sizeof(v));
    }
    int64_t fused = 1;
    is.read(reinterpret_cast<char*>(&fused), sizeof(fused));
    if (!is) throw std::runtime_error("load_two_branch: truncated stage");
    auto exposed = nn::load_layer(is, version);
    auto secure = nn::load_layer(is, version);
    model.add_stage(std::move(exposed), std::move(secure));
    model.stage(static_cast<int>(i)).channel_map = std::move(map);
    model.stage(static_cast<int>(i)).fused = (fused != 0);
  }
  return model;
}

int64_t TwoBranchModel::secure_bn_channels() {
  int64_t total = 0;
  for (nn::ParamRef& p : params_secure()) {
    const std::string& n = p.name;
    if (n.size() >= 5 && n.compare(n.size() - 5, 5, "gamma") == 0) {
      total += p.value->numel();
    }
  }
  return total;
}

int TwoBranchModel::fold_batchnorm() {
  int folds = 0;
  for (FusionStage& stage : stages_) {
    if (auto* seq = dynamic_cast<nn::Sequential*>(stage.exposed.get())) {
      folds += nn::fold_batchnorm_inference(*seq);
    }
    if (auto* seq = dynamic_cast<nn::Sequential*>(stage.secure.get())) {
      folds += nn::fold_batchnorm_inference(*seq);
    }
  }
  return folds;
}

}  // namespace tbnet::core
