#pragma once
// TwoBranchModel — TBNet's central data structure (paper §3, Fig. 1).
//
// The model is a list of fusion stages. Stage i holds a block for each
// branch:
//   * `exposed`  (M_R) — runs in the REE; fully visible to the attacker.
//   * `secure`   (M_T) — runs in the TEE; confidential.
//
// Per-stage dataflow (one-way REE -> TEE):
//
//   out_R[i]   = exposed_i(out_R[i-1])
//   out_T[i]   = secure_i(fused[i-1])
//   fused[i]   = out_T[i] + gather(out_R[i], channel_map[i])
//
// The model's user-visible output is fused[last] — produced inside the TEE.
// `channel_map` implements the paper's step 6 alignment: after rollback
// finalization M_R stages emit more channels than M_T consumes, and the TEE
// side extracts exactly the channels matching its own retained ones before
// the element-wise add (paper §3.5). An empty map means identity.

#include <iosfwd>
#include <memory>
#include <vector>

#include "nn/layer.h"

namespace tbnet::core {

/// One fusion stage: paired REE/TEE blocks + the channel alignment map.
struct FusionStage {
  std::unique_ptr<nn::Layer> exposed;  ///< M_R block (REE)
  std::unique_ptr<nn::Layer> secure;   ///< M_T block (TEE)
  /// Indices into the exposed block's output channels selected for fusion;
  /// empty = identity (all channels, orders match).
  std::vector<int64_t> channel_map;
  /// Whether this stage's REE output is transferred and added into the TEE
  /// branch. The classifier-head stage is NOT fused: the TBNet output is
  /// derived from M_T alone (paper §3.3), and M_R's head — inherited from
  /// the victim — never receives gradients. That is what leaves the
  /// extracted M_R of a ResNet victim at chance accuracy (paper Tab. 1)
  /// while a VGG M_R degrades but stays usable.
  bool fused = true;
};

/// Which chain(s) a forward pass ran through; backward() must match.
enum class ForwardMode {
  kNone,
  kFused,        ///< both branches + per-stage fusion (normal TBNet)
  kSecureOnly,   ///< M_T alone, no REE contribution (paper Tab. 2 ablation)
  kExposedOnly,  ///< M_R alone (what the attacker can run)
};

class TwoBranchModel {
 public:
  TwoBranchModel() = default;
  TwoBranchModel(TwoBranchModel&&) = default;
  TwoBranchModel& operator=(TwoBranchModel&&) = default;

  /// Deep copy (used for pruning snapshots / rollback).
  TwoBranchModel clone() const;

  void add_stage(std::unique_ptr<nn::Layer> exposed,
                 std::unique_ptr<nn::Layer> secure);

  int num_stages() const { return static_cast<int>(stages_.size()); }
  FusionStage& stage(int i) { return stages_.at(static_cast<size_t>(i)); }
  const FusionStage& stage(int i) const {
    return stages_.at(static_cast<size_t>(i));
  }

  /// TBNet inference/training pass: returns fused logits (the TEE output).
  /// When `train_exposed` is false the REE branch runs in eval mode and its
  /// activations are not cached (used for the post-rollback fine-tune where
  /// M_R is frozen). The context-taking forms thread `ctx` through every
  /// stage block (arena scratch + pool); the others run on the calling
  /// thread's default context.
  Tensor forward(ExecutionContext& ctx, const Tensor& input, bool train,
                 bool train_exposed = true);
  Tensor forward(const Tensor& input, bool train, bool train_exposed = true);

  /// Runs only the secure chain (in_T[i+1] = out_T[i], no fusion).
  Tensor forward_secure_only(ExecutionContext& ctx, const Tensor& input,
                             bool train);
  Tensor forward_secure_only(const Tensor& input, bool train);

  /// Runs only the exposed chain — exactly what an attacker who extracted
  /// M_R from REE memory can execute.
  Tensor forward_exposed_only(ExecutionContext& ctx, const Tensor& input,
                              bool train);
  Tensor forward_exposed_only(const Tensor& input, bool train);

  /// Back-propagates dLoss/dlogits through whatever the last forward ran.
  /// With `freeze_exposed` (fused mode only) gradients are not propagated
  /// into the REE branch.
  void backward(ExecutionContext& ctx, const Tensor& grad_logits,
                bool freeze_exposed = false);
  void backward(const Tensor& grad_logits, bool freeze_exposed = false);

  /// All parameters / per-branch parameter views (names are stage-prefixed).
  std::vector<nn::ParamRef> params();
  std::vector<nn::ParamRef> params_secure();
  std::vector<nn::ParamRef> params_exposed();

  void zero_grad();

  /// Bytes of parameters+buffers resident in the TEE (M_T) / REE (M_R).
  int64_t secure_param_bytes() const;
  int64_t exposed_param_bytes() const;

  /// Total channels over the secure branch's BN layers (pruning bookkeeping).
  int64_t secure_bn_channels();

  /// Deploy-time finalization: folds inference-mode BatchNorm into adjacent
  /// conv weights in every stage block of both branches (see nn/fuse.h).
  /// Returns the number of folds. Destructive for further training/pruning —
  /// call it on a clone() kept for serving, as DeployedTBNet does
  /// automatically when building its engine-side copies.
  int fold_batchnorm();

 private:
  std::vector<FusionStage> stages_;

  // Forward bookkeeping for backward().
  ForwardMode last_mode_ = ForwardMode::kNone;
  bool last_train_exposed_ = true;
  std::vector<Shape> exposed_out_shapes_;
};

/// Serializes a two-branch model (both branches + channel maps). Streams
/// carry the nn/serialize.h model-format version (sentinel-prefixed);
/// unversioned streams from older builds load as format v1.
void save_two_branch(std::ostream& os, const TwoBranchModel& model);
TwoBranchModel load_two_branch(std::istream& is);

/// out[:, j, ...] = in[:, map[j], ...] over channel dim 1 (rank 2 or 4).
Tensor gather_channels(const Tensor& in, const std::vector<int64_t>& map);

/// Adjoint of gather_channels: scatters grad rows back into a zero tensor of
/// `full_shape` (duplicated indices accumulate).
Tensor scatter_channels(const Tensor& grad, const std::vector<int64_t>& map,
                        const Shape& full_shape);

}  // namespace tbnet::core
