#pragma once
// PrunePoint — a structural descriptor of one prunable channel group.
//
// The iterative two-branch pruner (Alg. 1) operates on *pairs* of BatchNorm
// layers, one per branch, whose channels are pruned with a single shared
// mask. Because pruning snapshots/rollbacks clone whole models, prune points
// are described structurally (stage index + kind) and resolved against a
// concrete model instance on demand, never stored as raw pointers.

#include <vector>

namespace tbnet::core {

struct PrunePoint {
  enum class Kind {
    /// Prunes a stage's *output* channels — the fusion interface. Shrinks the
    /// stage's last Conv+BN in both branches plus the consumers in stage+1
    /// (next Conv's input channels, or the head Dense's input features).
    /// Used for VGG-style chains.
    kInterface,
    /// Prunes channels *internal* to a block pair (conv1-out/bn1/conv2-in),
    /// leaving the block's external interface intact. Used for residual /
    /// plain block pairs, where the skip path pins the interface width.
    kInternal,
  };

  Kind kind = Kind::kInterface;
  int stage = 0;
};

}  // namespace tbnet::core
