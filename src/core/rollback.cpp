#include "core/rollback.h"

#include <stdexcept>

#include "core/pruner.h"

namespace tbnet::core {

RollbackReport rollback_finalize(
    TwoBranchModel& model, TwoBranchModel&& pre_last,
    const std::vector<PrunePoint>& points,
    const std::vector<std::vector<int64_t>>& last_keep) {
  RollbackReport report;
  report.exposed_bytes_before = model.exposed_param_bytes();
  if (pre_last.num_stages() == 0) return report;  // nothing accepted
  if (pre_last.num_stages() != model.num_stages()) {
    throw std::invalid_argument(
        "rollback_finalize: snapshot stage count mismatch");
  }
  if (last_keep.size() != points.size()) {
    throw std::invalid_argument(
        "rollback_finalize: keep lists do not match prune points");
  }

  // M_R <- pre-prune state (architecture + weights).
  for (int i = 0; i < model.num_stages(); ++i) {
    model.stage(i).exposed = std::move(pre_last.stage(i).exposed);
    model.stage(i).channel_map.clear();
  }

  // Install alignment maps at the interfaces the last iteration narrowed.
  // (The branches now legitimately disagree on widths — lenient lookup.)
  for (size_t p = 0; p < points.size(); ++p) {
    if (points[p].kind != PrunePoint::Kind::kInterface) continue;
    const std::vector<int64_t>& keep = last_keep[p];
    const ResolvedPoint rp = resolve_point_lenient(model, points[p]);
    if (static_cast<int64_t>(keep.size()) != rp.bn_secure->channels()) {
      throw std::logic_error(
          "rollback_finalize: keep list width does not match secure branch");
    }
    if (static_cast<int64_t>(keep.size()) == rp.bn_exposed->channels()) {
      continue;  // nothing was pruned at this interface in the last round
    }
    model.stage(points[p].stage).channel_map = keep;
    report.remapped_stages.push_back(points[p].stage);
  }
  report.applied = true;
  report.exposed_bytes_after = model.exposed_param_bytes();
  return report;
}

int architectural_divergence(TwoBranchModel& model,
                             const std::vector<PrunePoint>& points) {
  int diverged = 0;
  for (const PrunePoint& pt : points) {
    const ResolvedPoint rp = resolve_point_lenient(model, pt);
    if (rp.bn_exposed != nullptr && rp.bn_secure != nullptr &&
        rp.bn_exposed->channels() > rp.bn_secure->channels()) {
      ++diverged;
    }
  }
  return diverged;
}

}  // namespace tbnet::core
