#pragma once
// Rollback finalization (paper §3.5, step 6).
//
// After iterative pruning both branches share one architecture; since M_R is
// fully exposed in REE, an attacker could read M_T's architecture off it.
// Rollback restores M_R (architecture AND weights) to the state preceding
// the most recent accepted pruning iteration, making arch(M_R) != arch(M_T),
// and installs per-stage channel maps so the TEE can gather the channels of
// the incoming (wider) REE feature maps that align with its own retained
// channels before the element-wise add.

#include <vector>

#include "core/prune_point.h"
#include "core/two_branch.h"

namespace tbnet::core {

struct RollbackReport {
  bool applied = false;
  /// Stages whose fusion now uses a non-identity channel map.
  std::vector<int> remapped_stages;
  int64_t exposed_bytes_before = 0;
  int64_t exposed_bytes_after = 0;
};

/// Replaces `model`'s exposed branch with `pre_last`'s (consuming it) and
/// installs the channel maps derived from `last_keep` (the keep lists of the
/// last accepted pruning iteration, index-aligned with `points`).
///
/// Only interface points change the fusion width and therefore produce a
/// channel map; internal points leave the interface intact.
RollbackReport rollback_finalize(
    TwoBranchModel& model, TwoBranchModel&& pre_last,
    const std::vector<PrunePoint>& points,
    const std::vector<std::vector<int64_t>>& last_keep);

/// A summary measure of architectural divergence between the branches:
/// number of stages where the exposed branch carries more channels than the
/// secure branch (0 means the attacker can read M_T's architecture off M_R).
int architectural_divergence(TwoBranchModel& model,
                             const std::vector<PrunePoint>& points);

}  // namespace tbnet::core
