#pragma once
// Knowledge transfer (paper §3.3, step 2) — joint training of the two-branch
// model with the Eq. 1 objective:
//
//   L = sum CE(f(x, W_R, W_T), y)  +  lambda * sum g(gamma_R + gamma_T)
//
// where g is the L1 sparsity penalty on BatchNorm scale weights. Minimizing L
// (a) distributes the victim's knowledge across both branches (the fused
// output is the model's prediction, so gradients reach both), and (b) drives
// BN gammas toward zero, preparing the composite-weight channel ranking used
// by the iterative two-branch pruner.

#include <cstdint>
#include <vector>

#include "core/prune_point.h"
#include "core/two_branch.h"
#include "data/dataset.h"

namespace tbnet::core {

struct TransferConfig {
  int epochs = 10;
  int64_t batch_size = 64;
  double lr = 0.05;
  double momentum = 0.9;
  double weight_decay = 1e-4;
  int lr_step = 100;       ///< paper: /10 every 100 epochs
  double lr_gamma = 0.1;
  double lambda = 1e-4;    ///< sparsity regularization strength (paper: 1e-4)
  uint64_t seed = 11;
  bool augment = true;
  /// Freeze M_R and train only M_T (post-rollback recovery fine-tune).
  bool freeze_exposed = false;
  int log_every = 0;

  /// Form of the sparsity penalty g.
  enum class Penalty {
    /// |gamma_R + gamma_T| on paired (prunable) BNs — the literal Eq. 1;
    /// unpaired BNs (e.g. ResNet downsample) get an independent |gamma|.
    kCompositeL1,
    /// |gamma_R| + |gamma_T| on every BN independently (network-slimming
    /// style); used by the ablation bench.
    kIndependentL1,
  };
  Penalty penalty = Penalty::kCompositeL1;
};

struct TransferEpoch {
  double ce_loss = 0.0;
  double sparsity_penalty = 0.0;
  double test_acc = 0.0;
};

struct TransferResult {
  std::vector<TransferEpoch> epochs;
  double final_acc = 0.0;
};

/// Runs knowledge-transfer training in place on `model`.
/// `points` identifies the paired BNs for the composite penalty (pass the
/// family's prune points; may be empty, degrading to independent L1).
TransferResult knowledge_transfer(TwoBranchModel& model,
                                  const std::vector<PrunePoint>& points,
                                  const data::Dataset& train,
                                  const data::Dataset& test,
                                  const TransferConfig& cfg);

/// Accuracy of the fused (user-visible) output over `dataset`.
double evaluate_fused(TwoBranchModel& model, const data::Dataset& dataset,
                      int64_t batch_size = 128);

/// Accuracy of M_T alone (no REE contribution) — paper Tab. 2.
double evaluate_secure_only(TwoBranchModel& model,
                            const data::Dataset& dataset,
                            int64_t batch_size = 128);

/// Accuracy an attacker gets by running the extracted M_R directly —
/// paper Tab. 1 "Attack Acc.".
double evaluate_exposed_only(TwoBranchModel& model,
                             const data::Dataset& dataset,
                             int64_t batch_size = 128);

/// Retrains M_T as a standalone network (no REE contribution), the paper's
/// Tab. 2 ablation: "remove M_R and retrain M_T with the entire training
/// dataset to evaluate its optimal performance". Only secure-branch
/// parameters are updated; returns per-epoch stats on the secure-only path.
TransferResult retrain_secure_standalone(TwoBranchModel& model,
                                         const data::Dataset& train,
                                         const data::Dataset& test,
                                         const TransferConfig& cfg);

/// Gathers the BN scale weights of each branch (for Fig. 4's distributions).
/// Pairs are taken from `points`; values are the raw gammas.
struct BnGammas {
  std::vector<float> exposed;  ///< gamma_R values
  std::vector<float> secure;   ///< gamma_T values
};
BnGammas collect_bn_gammas(TwoBranchModel& model,
                           const std::vector<PrunePoint>& points);

}  // namespace tbnet::core
