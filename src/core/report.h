#pragma once
// Machine-readable experiment reports.
//
// The bench harnesses print human-readable tables AND can dump the same
// numbers as JSON so downstream tooling (plots, CI regression checks) never
// scrapes stdout. The writer is a tiny purpose-built emitter — the values
// involved are flat records of numbers and strings.

#include <string>
#include <vector>

#include "core/pipeline.h"

namespace tbnet::core {

/// Minimal JSON document builder (objects, arrays, numbers, strings, bools).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array(const std::string& key = "");
  JsonWriter& end_array();
  JsonWriter& key(const std::string& k);
  JsonWriter& value(double v);
  JsonWriter& value(int64_t v);
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(const std::string& v);
  JsonWriter& field(const std::string& k, double v);
  JsonWriter& field(const std::string& k, int64_t v);
  JsonWriter& field(const std::string& k, int v) {
    return field(k, static_cast<int64_t>(v));
  }
  JsonWriter& field(const std::string& k, bool v);
  JsonWriter& field(const std::string& k, const std::string& v);

  /// The accumulated document.
  std::string str() const { return out_; }

 private:
  void comma();
  static std::string escape(const std::string& s);

  std::string out_;
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
};

/// Serializes a pipeline report (all accuracy/resource fields).
std::string to_json(const PipelineReport& report, const std::string& label);

/// Writes `json` to `path` (creating parent directories is the caller's
/// job); throws std::runtime_error on I/O failure.
void write_text_file(const std::string& path, const std::string& text);

}  // namespace tbnet::core
