#pragma once
// Clang Thread Safety Analysis vocabulary for the concurrency core.
//
// The TS_* macros wrap clang's capability attributes so lock discipline is a
// COMPILE-TIME contract: a field annotated TS_GUARDED_BY(mu_) cannot be read
// or written without holding mu_, a function annotated TS_REQUIRES(mu_)
// cannot be called without it, and the clang CI leg builds with
// `-Werror=thread-safety` so a violation is a build break, not a TSan repro.
// On gcc (and any compiler without the attributes) every macro expands to
// nothing, so the annotations cost non-clang builds exactly zero.
//
// Because libstdc++'s std::mutex carries no capability attributes, the
// analysis cannot see through std::lock_guard/std::unique_lock. The
// concurrency core therefore locks through the annotated wrappers below:
//
//   tbnet::Mutex      an annotated std::mutex (a TS_CAPABILITY)
//   tbnet::MutexLock  RAII guard (TS_SCOPED_CAPABILITY) that is also
//                     BasicLockable, so a tbnet::CondVar can release and
//                     re-acquire it around a park
//   tbnet::CondVar    std::condition_variable_any (works with MutexLock)
//
// Reading a -Wthread-safety failure, adding annotations, and the waiver
// policy (TS_NO_ANALYSIS + an inline invariant comment) are documented in
// README "Static analysis".

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define TS_ATTRIBUTE__(x) __attribute__((x))
#else
#define TS_ATTRIBUTE__(x)  // no-op off clang
#endif

/// Marks a type as a capability (a lock) the analysis tracks.
#define TS_CAPABILITY(x) TS_ATTRIBUTE__(capability(x))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define TS_SCOPED_CAPABILITY TS_ATTRIBUTE__(scoped_lockable)
/// Field may only be accessed while holding the given capability.
#define TS_GUARDED_BY(x) TS_ATTRIBUTE__(guarded_by(x))
/// Pointer field: the POINTED-TO data needs the capability (the pointer
/// itself does not).
#define TS_PT_GUARDED_BY(x) TS_ATTRIBUTE__(pt_guarded_by(x))
/// Function requires the capabilities held on entry (and keeps them held).
#define TS_REQUIRES(...) TS_ATTRIBUTE__(requires_capability(__VA_ARGS__))
/// Function acquires the capabilities (not held on entry, held on exit).
#define TS_ACQUIRE(...) TS_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
/// Function releases the capabilities (held on entry, not on exit).
#define TS_RELEASE(...) TS_ATTRIBUTE__(release_capability(__VA_ARGS__))
/// Function acquires the capability when it returns the given value.
#define TS_TRY_ACQUIRE(...) TS_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
/// Function must NOT be called with the capabilities held (deadlock guard
/// for public entry points of self-locking classes).
#define TS_EXCLUDES(...) TS_ATTRIBUTE__(locks_excluded(__VA_ARGS__))
/// Declares (without runtime effect) that the capability is held — the
/// escape hatch for predicates invoked by a CondVar wait, which run with the
/// lock held but in a context the analysis cannot see into.
#define TS_ASSERT_CAPABILITY(...) TS_ATTRIBUTE__(assert_capability(__VA_ARGS__))
/// Function returns a reference to the given capability.
#define TS_RETURN_CAPABILITY(x) TS_ATTRIBUTE__(lock_returned(x))
/// Waiver: disables the analysis for one function. Every use MUST carry an
/// inline comment stating the invariant that makes the unchecked code safe.
#define TS_NO_ANALYSIS TS_ATTRIBUTE__(no_thread_safety_analysis)

namespace tbnet {

/// std::mutex with capability attributes. Same cost, same semantics — the
/// wrapper exists only so the analysis can track acquire/release.
class TS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TS_ACQUIRE() { mu_.lock(); }
  void unlock() TS_RELEASE() { mu_.unlock(); }
  bool try_lock() TS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// No-op assertion that this mutex is held, for lambdas the analysis
  /// treats as separate functions (CondVar wait predicates run under the
  /// lock, but the analysis cannot see the wait re-acquiring it).
  void assert_held() const TS_ASSERT_CAPABILITY() {}

 private:
  std::mutex mu_;
};

/// RAII lock for tbnet::Mutex, annotated as a scoped capability so the
/// analysis tracks its constructor/destructor — and relockable (the
/// lock()/unlock() members) so std::condition_variable_any can park on it
/// and so long-lived loops (the server's supervisor) can drop the lock
/// around slow work. The caller, not the class, is responsible for the usual
/// single-thread ownership discipline of any lock guard.
class TS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TS_ACQUIRE(mu) : mu_(&mu), owns_(true) {
    mu_->lock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() TS_RELEASE() {
    if (owns_) mu_->unlock();
  }

  /// BasicLockable surface (CondVar::wait releases and re-acquires through
  /// these; the analysis models them as release/reacquire of the scope).
  void lock() TS_ACQUIRE() {
    mu_->lock();
    owns_ = true;
  }
  void unlock() TS_RELEASE() {
    mu_->unlock();
    owns_ = false;
  }

 private:
  Mutex* mu_;
  bool owns_;
};

/// Condition variable compatible with MutexLock. condition_variable_any's
/// extra indirection (an internal mutex) is only touched on park/notify —
/// never on the uncontended fast paths the kernels care about.
using CondVar = std::condition_variable_any;

}  // namespace tbnet
