#pragma once
// Work-stealing thread pool used by the GEMM / convolution kernels and the
// serving dispatch layer.
//
// The pool exposes one primitive, parallel_for, which splits an index range
// into contiguous chunks and executes them on worker threads. Determinism:
// the chunking is a pure function of (range, worker count), and all kernels
// write disjoint output ranges, so results do not depend on which thread
// executes which chunk — stealing reschedules chunks, it never re-splits
// them.
//
// Scheduler shape (PR 5): each worker owns a deque of pending chunks;
// external callers (non-worker threads) submit to a shared overflow queue.
// A free worker drains its own deque first, then the overflow queue, then
// steals from siblings — always taking the OLDEST chunk (front), so
// concurrent jobs keep the FIFO fairness the single-queue pool had. A
// thread blocked on its own parallel_for does not sleep while runnable
// chunks exist: it keeps acquiring and executing pending chunks (its own
// job's first, then anyone's) and only parks on the job's condition
// variable once every remaining chunk of its job is claimed by another
// thread. That helping loop is what lets NESTED parallel_for scale: a
// worker that issues one pushes the inner chunks onto its own deque where
// idle siblings steal them, instead of the PR-4 behavior of running them
// inline, serially.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "tensor/thread_annotations.h"

namespace tbnet {

/// Fixed-size work-stealing thread pool with a blocking parallel_for.
class ThreadPool {
 public:
  /// Creates `threads` workers (0 = hardware_concurrency, at least 1).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(begin, end) over [0, n) split into per-worker chunks; blocks
  /// until all chunks complete. The calling thread participates: it runs the
  /// first chunk itself, then helps — executing pending chunks from any
  /// queue — until its own job has completed. A call with n <= 0 is a no-op
  /// that touches no pool state. Safe to call from several non-worker
  /// threads at once (completion is tracked per call, so a caller only waits
  /// for its own chunks) and from inside a task running on this pool: a
  /// nested call pushes its chunks onto the issuing worker's deque — same
  /// chunk boundaries as chunk_size(n), so callers keying scratch by chunk
  /// origin see the identical layout — where idle workers steal them while
  /// the issuer chews through the rest. Because a blocked thread always
  /// executes claimable chunks before parking, the every-worker-blocked
  /// deadlock of the pre-PR-4 pool cannot re-form.
  ///
  /// fn may therefore run chunks of DIFFERENT jobs interleaved on one OS
  /// thread (a helping thread picks up foreign chunks between its own):
  /// bodies must not key state on thread identity beyond stack discipline —
  /// the existing contracts (disjoint writes, no arena use, thread-safety)
  /// already guarantee this for every kernel body in the tree.
  ///
  /// `max_width` caps how many chunks the range splits into (<= 0 = no cap,
  /// i.e. num_threads()). The cap changes ONLY the split — which indices
  /// land in which chunk — never per-element arithmetic order, so results
  /// stay bit-identical across widths (the same invariance the 1-vs-N
  /// determinism tests enforce). It exists for inter-op callers: N dispatch
  /// workers each issuing full-width intra-op chunks oversubscribe an
  /// N-core machine N-fold; capping each at num_threads()/N keeps the
  /// steal-scheduler fed without the oversubscription (see
  /// ExecutionContext::set_intra_op_width, which threads the cap here).
  void parallel_for(int64_t n, const std::function<void(int64_t, int64_t)>& fn,
                    int max_width = 0);

  /// The chunk width parallel_for(n, fn, max_width) splits [0, n) into:
  /// every task's begin index is a multiple of chunk_size(n, max_width).
  /// Callers that pre-allocate per-task scratch (the fused-lowering GEMM
  /// driver) key it by begin / chunk_size(n, max_width); the two functions
  /// must stay in sync — and must be called with the SAME width. Stealing
  /// never changes the split — only which thread runs a chunk.
  int64_t chunk_size(int64_t n, int max_width = 0) const;

  /// Process-wide shared pool. Lazy initialization is thread-safe against
  /// concurrent first use (C++11 magic static over a leaked instance).
  /// Lifetime: the pool is intentionally leaked and its workers run until
  /// process exit, so kernels invoked from static destructors or detached
  /// threads during shutdown never touch a destroyed pool (the classic
  /// static-destruction-order fiasco). Worker count comes from the
  /// TBNET_THREADS environment variable when set (>= 1), else
  /// hardware_concurrency.
  static ThreadPool& global();

  /// Test hook: makes global() return `pool` until reset with nullptr, so
  /// pool-size-invariance tests can steer components (deployed engines, TA
  /// contexts) whose ExecutionContexts fall back to the shared pool. The
  /// caller keeps ownership and must outlive any use; swap only while no
  /// kernel is in flight on the previous pool.
  static void set_global_for_testing(ThreadPool* pool);

 private:
  /// Per-parallel_for completion state, owned by the caller's stack frame.
  /// `pending` is guarded by `mu` and the final decrement happens under it,
  /// so a waiter that observes pending == 0 after acquiring `mu` knows the
  /// completing thread has released it — the frame can die immediately
  /// after, even when the completer was an unrelated helping thread.
  struct Job {
    const std::function<void(int64_t, int64_t)>* fn = nullptr;
    Mutex mu;
    CondVar cv;
    int pending TS_GUARDED_BY(mu) = 0;
  };

  struct Task {
    Job* job = nullptr;
    int64_t begin = 0;
    int64_t end = 0;
  };

  /// One worker's deque. Pushed at the back (issue order), popped at the
  /// front by owner and thieves alike, so chunks of concurrent jobs drain
  /// oldest-first from every queue.
  struct TaskQueue {
    Mutex mu;
    std::deque<Task> q TS_GUARDED_BY(mu);
  };

  void worker_loop(int slot);
  /// Runs one task and performs the under-lock completion decrement.
  void execute(const Task& task);
  /// Pops the oldest claimable chunk: own deque, then overflow, then steal
  /// round-robin from siblings. slot == -1 marks an external caller (no own
  /// deque). Returns false only if every queue was empty at its scan.
  bool try_acquire(Task& out, int slot);
  /// Publishes pushed tasks: bumps the work epoch and wakes sleeping
  /// workers.
  void signal_work();

  std::vector<std::thread> workers_;
  /// deques_[i] belongs to workers_[i]; unique_ptr because TaskQueue holds a
  /// mutex and the vector is sized once in the constructor.
  std::vector<std::unique_ptr<TaskQueue>> deques_;
  TaskQueue overflow_;  ///< submissions from non-worker threads, FIFO

  /// Sleep machinery: workers park on cv_ when every queue is empty.
  /// `epoch_` increments (under mu_) on every push batch, so a worker that
  /// records the epoch BEFORE scanning the queues cannot miss work pushed
  /// after its scan — the wait predicate sees the epoch move.
  Mutex mu_;
  CondVar cv_;
  uint64_t epoch_ TS_GUARDED_BY(mu_) = 0;
  bool stop_ TS_GUARDED_BY(mu_) = false;
};

}  // namespace tbnet
