#pragma once
// Minimal work-sharing thread pool used by the GEMM / convolution kernels.
//
// The pool exposes one primitive, parallel_for, which splits an index range
// into contiguous chunks and executes them on worker threads. Determinism:
// the chunking is a pure function of (range, worker count), and all kernels
// write disjoint output ranges, so results do not depend on scheduling.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tbnet {

/// Fixed-size thread pool with a blocking parallel_for.
class ThreadPool {
 public:
  /// Creates `threads` workers (0 = hardware_concurrency, at least 1).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(begin, end) over [0, n) split into per-worker chunks; blocks
  /// until all chunks complete. The calling thread participates. A call with
  /// n <= 0 is a no-op that touches no pool state. Safe to call from several
  /// non-worker threads at once: queued chunks drain oldest-job-first
  /// (FIFO), and completion is tracked per call, so a caller only waits for
  /// its own chunks (workers may still be busy with another caller's chunks,
  /// which bounds speedup, not correctness). Safe to call from inside a task
  /// running on this pool: a nested call is detected (thread-local worker
  /// tag) and runs its chunks inline on the calling worker — same chunk
  /// boundaries as chunk_size(n), so callers keying scratch by chunk origin
  /// see the identical layout — instead of queueing work and blocking a
  /// worker that other chunks may be queued behind (the PR-3 deadlock).
  void parallel_for(int64_t n, const std::function<void(int64_t, int64_t)>& fn);

  /// The chunk width parallel_for(n, fn) splits [0, n) into: every task's
  /// begin index is a multiple of chunk_size(n). Callers that pre-allocate
  /// per-task scratch (the fused-lowering GEMM driver) key it by
  /// begin / chunk_size(n); the two functions must stay in sync.
  int64_t chunk_size(int64_t n) const;

  /// Process-wide shared pool. Lazy initialization is thread-safe against
  /// concurrent first use (C++11 magic static over a leaked instance).
  /// Lifetime: the pool is intentionally leaked and its workers run until
  /// process exit, so kernels invoked from static destructors or detached
  /// threads during shutdown never touch a destroyed pool (the classic
  /// static-destruction-order fiasco). Worker count comes from the
  /// TBNET_THREADS environment variable when set (>= 1), else
  /// hardware_concurrency.
  static ThreadPool& global();

 private:
  /// Per-parallel_for completion state, owned by the caller's stack frame;
  /// tasks hold a pointer so concurrent callers never wait on each other's
  /// counters.
  struct Job {
    const std::function<void(int64_t, int64_t)>* fn = nullptr;
    int pending = 0;
  };

  struct Task {
    Job* job = nullptr;
    int64_t begin = 0;
    int64_t end = 0;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  /// Pending chunks, drained front-to-back: pushing at the back and popping
  /// at the front keeps concurrent jobs fair — a LIFO pop would starve the
  /// older job's chunks whenever a newer job keeps the queue non-empty.
  std::deque<Task> queue_;
  bool stop_ = false;
};

}  // namespace tbnet
