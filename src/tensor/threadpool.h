#pragma once
// Minimal work-sharing thread pool used by the GEMM / convolution kernels.
//
// The pool exposes one primitive, parallel_for, which splits an index range
// into contiguous chunks and executes them on worker threads. Determinism:
// the chunking is a pure function of (range, worker count), and all kernels
// write disjoint output ranges, so results do not depend on scheduling.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tbnet {

/// Fixed-size thread pool with a blocking parallel_for.
class ThreadPool {
 public:
  /// Creates `threads` workers (0 = hardware_concurrency, at least 1).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(begin, end) over [0, n) split into per-worker chunks; blocks
  /// until all chunks complete. The calling thread participates.
  void parallel_for(int64_t n, const std::function<void(int64_t, int64_t)>& fn);

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(int64_t, int64_t)>* fn = nullptr;
    int64_t begin = 0;
    int64_t end = 0;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<Task> queue_;
  int pending_ = 0;
  bool stop_ = false;
};

}  // namespace tbnet
