#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace tbnet {

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (static_cast<int64_t>(data_.size()) != shape_.numel()) {
    throw std::invalid_argument("Tensor: data size " +
                                std::to_string(data_.size()) +
                                " does not match shape " + shape_.str());
  }
}

Tensor Tensor::full(const Shape& shape, float value) {
  Tensor t(shape);
  t.fill(value);
  return t;
}

Tensor Tensor::randn(const Shape& shape, Rng& rng, float mean, float stddev) {
  Tensor t(shape);
  for (float& x : t.data_) x = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::rand(const Shape& shape, Rng& rng, float lo, float hi) {
  Tensor t(shape);
  for (float& x : t.data_) x = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::from(std::vector<float> values) {
  const int64_t n = static_cast<int64_t>(values.size());
  return Tensor(Shape{n}, std::move(values));
}

Tensor Tensor::reshaped(const Shape& shape) const {
  if (shape.numel() != numel()) {
    throw std::invalid_argument("Tensor::reshaped: cannot view " +
                                shape_.str() + " as " + shape.str());
  }
  return Tensor(shape, data_);
}

int64_t Tensor::flat_index(std::initializer_list<int64_t> idx) const {
  if (static_cast<int>(idx.size()) != shape_.ndim()) {
    throw std::invalid_argument("Tensor::at: rank mismatch");
  }
  int64_t flat = 0;
  int i = 0;
  for (int64_t v : idx) {
    const int64_t extent = shape_.dim(i);
    if (v < 0 || v >= extent) {
      throw std::out_of_range("Tensor::at: index out of range in dim " +
                              std::to_string(i));
    }
    flat = flat * extent + v;
    ++i;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<int64_t> idx) {
  return data_[static_cast<size_t>(flat_index(idx))];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return data_[static_cast<size_t>(flat_index(idx))];
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::add_(const Tensor& other) { axpy_(1.0f, other); }

void Tensor::axpy_(float alpha, const Tensor& other) {
  if (other.shape_ != shape_) {
    throw std::invalid_argument("Tensor::axpy_: shape mismatch " +
                                shape_.str() + " vs " + other.shape_.str());
  }
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Tensor::scale_(float alpha) {
  for (float& x : data_) x *= alpha;
}

float Tensor::sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return static_cast<float>(s);
}

float Tensor::mean() const {
  return data_.empty() ? 0.0f : sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
  float m = std::numeric_limits<float>::infinity();
  for (float x : data_) m = std::min(m, x);
  return m;
}

float Tensor::max() const {
  float m = -std::numeric_limits<float>::infinity();
  for (float x : data_) m = std::max(m, x);
  return m;
}

float Tensor::abs_sum() const {
  double s = 0.0;
  for (float x : data_) s += std::fabs(x);
  return static_cast<float>(s);
}

int64_t Tensor::argmax() const {
  if (data_.empty()) throw std::logic_error("Tensor::argmax on empty tensor");
  return static_cast<int64_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

bool allclose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (a.shape() != b.shape()) return false;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const float diff = std::fabs(a[i] - b[i]);
    if (diff > atol + rtol * std::fabs(b[i])) return false;
  }
  return true;
}

}  // namespace tbnet
