#include "tensor/im2col.h"

#include <cstring>

namespace tbnet {

void im2col(const Conv2dGeom& g, const float* image, float* cols) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t col_cols = oh * ow;
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_c; ++c) {
    const float* plane = image + c * g.in_h * g.in_w;
    for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* out = cols + row * col_cols;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * g.stride_h - g.pad_h + kh;
          if (iy < 0 || iy >= g.in_h) {
            std::memset(out + oy * ow, 0, static_cast<size_t>(ow) * sizeof(float));
            continue;
          }
          const float* src = plane + iy * g.in_w;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * g.stride_w - g.pad_w + kw;
            out[oy * ow + ox] = (ix >= 0 && ix < g.in_w) ? src[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const Conv2dGeom& g, const float* cols, float* image) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t col_cols = oh * ow;
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_c; ++c) {
    float* plane = image + c * g.in_h * g.in_w;
    for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* src = cols + row * col_cols;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * g.stride_h - g.pad_h + kh;
          if (iy < 0 || iy >= g.in_h) continue;
          float* dst = plane + iy * g.in_w;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * g.stride_w - g.pad_w + kw;
            if (ix >= 0 && ix < g.in_w) dst[ix] += src[oy * ow + ox];
          }
        }
      }
    }
  }
}

}  // namespace tbnet
