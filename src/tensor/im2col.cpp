#include "tensor/im2col.h"

#include <algorithm>
#include <cstring>

#include "tensor/simd.h"
#include "tensor/threadpool.h"

namespace tbnet {
namespace {

/// Fills one row of the column matrix: the (c, kh, kw) tap across all output
/// positions. Rows are independent, which is what lets the context form
/// shard them.
inline void im2col_row(const Conv2dGeom& g, const float* image, int64_t row,
                       float* out) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t kw = row % g.kernel_w;
  const int64_t kh = (row / g.kernel_w) % g.kernel_h;
  const int64_t c = row / (g.kernel_w * g.kernel_h);
  const float* plane = image + c * g.in_h * g.in_w;
  for (int64_t oy = 0; oy < oh; ++oy) {
    const int64_t iy = oy * g.stride_h - g.pad_h + kh;
    if (iy < 0 || iy >= g.in_h) {
      std::memset(out + oy * ow, 0, static_cast<size_t>(ow) * sizeof(float));
      continue;
    }
    const float* src = plane + iy * g.in_w;
    for (int64_t ox = 0; ox < ow; ++ox) {
      const int64_t ix = ox * g.stride_w - g.pad_w + kw;
      out[oy * ow + ox] = (ix >= 0 && ix < g.in_w) ? src[ix] : 0.0f;
    }
  }
}

}  // namespace

void im2col(const Conv2dGeom& g, const float* image, float* cols) {
  const int64_t col_cols = g.col_cols();
  for (int64_t row = 0; row < g.col_rows(); ++row) {
    im2col_row(g, image, row, cols + row * col_cols);
  }
}

void im2col(const ExecutionContext& ctx, const Conv2dGeom& g,
            const float* image, float* cols) {
  const int64_t col_cols = g.col_cols();
  ctx.parallel_for(g.col_rows(), [&](int64_t r0, int64_t r1) {
    for (int64_t row = r0; row < r1; ++row) {
      im2col_row(g, image, row, cols + row * col_cols);
    }
  });
}

void im2col_pack_panel(const Conv2dGeom& g, const float* image, int64_t kk,
                       int64_t kc, int64_t j0, int nr, int64_t panel_stride,
                       float* panel) {
  const int64_t ow = g.out_w();
  const int64_t khw = g.kernel_h * g.kernel_w;
  // The column range [j0, j0+nr) decomposes into runs within single output
  // rows. The decomposition (and each run's base input row/column before the
  // kernel-tap offset) is shared by every tap row of the panel, so it is
  // computed once here instead of kc times in the tap loop. A panel is at
  // most panel_stride columns, so `nr` bounds the segment count.
  struct Seg {
    int64_t j;    ///< first panel column of the run
    int64_t len;  ///< run length
    int64_t iy0;  ///< oy * stride_h - pad_h (add kh for the tap's input row)
    int64_t ix0;  ///< ox0 * stride_w - pad_w (add kw; stride-1 run base)
  };
  Seg segs[simd::kNR];
  int nsegs = 0;
  for (int64_t j = 0, col = j0; j < nr; ++nsegs) {
    const int64_t oy = col / ow;
    const int64_t ox0 = col - oy * ow;
    segs[nsegs] = Seg{j, std::min<int64_t>(nr - j, ow - ox0),
                      oy * g.stride_h - g.pad_h, ox0 * g.stride_w - g.pad_w};
    j += segs[nsegs].len;
    col += segs[nsegs].len;
  }
  // Tap coordinates advance incrementally over the panel's rows — no
  // division in the kc loop.
  int64_t kw = (kk % khw) % g.kernel_w;
  int64_t kh = (kk % khw) / g.kernel_w;
  int64_t c = kk / khw;
  const float* plane = image + c * g.in_h * g.in_w;
  for (int64_t p = 0; p < kc; ++p) {
    float* out = panel + p * panel_stride;
    for (int s = 0; s < nsegs; ++s) {
      const Seg& seg = segs[s];
      const int64_t iy = seg.iy0 + kh;
      if (iy < 0 || iy >= g.in_h) {
        std::memset(out + seg.j, 0,
                    static_cast<size_t>(seg.len) * sizeof(float));
        continue;
      }
      const float* src = plane + iy * g.in_w;
      const int64_t ix0 = seg.ix0 + kw;
      if (g.stride_w == 1) {
        // In-bounds interior of the run is a straight copy.
        const int64_t lo = std::clamp<int64_t>(-ix0, 0, seg.len);
        const int64_t hi = std::clamp<int64_t>(g.in_w - ix0, lo, seg.len);
        for (int64_t t = 0; t < lo; ++t) out[seg.j + t] = 0.0f;
        if (hi > lo) {
          std::memcpy(out + seg.j + lo, src + ix0 + lo,
                      static_cast<size_t>(hi - lo) * sizeof(float));
        }
        for (int64_t t = hi; t < seg.len; ++t) out[seg.j + t] = 0.0f;
      } else {
        for (int64_t t = 0; t < seg.len; ++t) {
          const int64_t ix = ix0 + t * g.stride_w;
          out[seg.j + t] = (ix >= 0 && ix < g.in_w) ? src[ix] : 0.0f;
        }
      }
    }
    for (int64_t j = nr; j < panel_stride; ++j) out[j] = 0.0f;
    // Advance (c, kh, kw) to the next column-matrix row.
    if (++kw == g.kernel_w) {
      kw = 0;
      if (++kh == g.kernel_h) {
        kh = 0;
        ++c;
        plane += g.in_h * g.in_w;
      }
    }
  }
}

void im2col_pack_panel_u8(const Conv2dGeom& g, const float* image, int64_t kk,
                          int64_t kc, int64_t j0, int nr, float inv_scale,
                          int32_t zero_point, uint8_t* panel) {
  // Stage one k-group of f32 column rows at a time through the existing
  // fused lowering, then quantize-interleave into the grouped byte layout.
  // The staging tile is 4x16 floats — the f32 column matrix never exists
  // beyond it.
  alignas(simd::kAlign) float staged[simd::kKG][simd::kNR];
  const simd::QuantizeU7GroupFn qgroup = simd::quantize_u7_group();
  const int64_t kg = (kc + simd::kKG - 1) / simd::kKG;
  for (int64_t gi = 0; gi < kg; ++gi) {
    const int64_t p0 = gi * simd::kKG;
    const int64_t rows = std::min<int64_t>(simd::kKG, kc - p0);
    im2col_pack_panel(g, image, kk + p0, rows, j0, nr, simd::kNR, staged[0]);
    uint8_t* grp = panel + gi * simd::kNR * simd::kKG;
    if (rows == simd::kKG && nr == simd::kNR) {
      qgroup(staged[0], staged[1], staged[2], staged[3], grp, inv_scale,
             zero_point);
      continue;
    }
    for (int64_t j = 0; j < simd::kNR; ++j) {
      for (int64_t t = 0; t < simd::kKG; ++t) {
        grp[j * simd::kKG + t] =
            t < rows && j < nr
                ? simd::quantize_u7(staged[t][j], inv_scale, zero_point)
                : uint8_t{0};
      }
    }
  }
}

void col2im(const Conv2dGeom& g, const float* cols, float* image) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t col_cols = oh * ow;
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_c; ++c) {
    float* plane = image + c * g.in_h * g.in_w;
    for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* src = cols + row * col_cols;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * g.stride_h - g.pad_h + kh;
          if (iy < 0 || iy >= g.in_h) continue;
          float* dst = plane + iy * g.in_w;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * g.stride_w - g.pad_w + kw;
            if (ix >= 0 && ix < g.in_w) dst[ix] += src[oy * ow + ox];
          }
        }
      }
    }
  }
}

}  // namespace tbnet
