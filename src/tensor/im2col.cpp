#include "tensor/im2col.h"

#include <cstring>

#include "tensor/threadpool.h"

namespace tbnet {
namespace {

/// Fills one row of the column matrix: the (c, kh, kw) tap across all output
/// positions. Rows are independent, which is what lets the context form
/// shard them.
inline void im2col_row(const Conv2dGeom& g, const float* image, int64_t row,
                       float* out) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t kw = row % g.kernel_w;
  const int64_t kh = (row / g.kernel_w) % g.kernel_h;
  const int64_t c = row / (g.kernel_w * g.kernel_h);
  const float* plane = image + c * g.in_h * g.in_w;
  for (int64_t oy = 0; oy < oh; ++oy) {
    const int64_t iy = oy * g.stride_h - g.pad_h + kh;
    if (iy < 0 || iy >= g.in_h) {
      std::memset(out + oy * ow, 0, static_cast<size_t>(ow) * sizeof(float));
      continue;
    }
    const float* src = plane + iy * g.in_w;
    for (int64_t ox = 0; ox < ow; ++ox) {
      const int64_t ix = ox * g.stride_w - g.pad_w + kw;
      out[oy * ow + ox] = (ix >= 0 && ix < g.in_w) ? src[ix] : 0.0f;
    }
  }
}

}  // namespace

void im2col(const Conv2dGeom& g, const float* image, float* cols) {
  const int64_t col_cols = g.col_cols();
  for (int64_t row = 0; row < g.col_rows(); ++row) {
    im2col_row(g, image, row, cols + row * col_cols);
  }
}

void im2col(const ExecutionContext& ctx, const Conv2dGeom& g,
            const float* image, float* cols) {
  const int64_t col_cols = g.col_cols();
  ctx.pool().parallel_for(g.col_rows(), [&](int64_t r0, int64_t r1) {
    for (int64_t row = r0; row < r1; ++row) {
      im2col_row(g, image, row, cols + row * col_cols);
    }
  });
}

void col2im(const Conv2dGeom& g, const float* cols, float* image) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t col_cols = oh * ow;
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_c; ++c) {
    float* plane = image + c * g.in_h * g.in_w;
    for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* src = cols + row * col_cols;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * g.stride_h - g.pad_h + kh;
          if (iy < 0 || iy >= g.in_h) continue;
          float* dst = plane + iy * g.in_w;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * g.stride_w - g.pad_w + kw;
            if (ix >= 0 && ix < g.in_w) dst[ix] += src[oy * ow + ox];
          }
        }
      }
    }
  }
}

}  // namespace tbnet
