#pragma once
// Deterministic pseudo random number generation.
//
// Every stochastic component in tbnet (weight init, data synthesis, shuffling,
// augmentation) draws from an explicitly seeded Rng so experiments are
// reproducible bit-for-bit across runs and machines.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tbnet {

/// SplitMix64-based generator with uniform / normal / integer draws.
///
/// SplitMix64 passes BigCrush, needs only a 64-bit state word, and is trivial
/// to seed robustly (unlike raw xorshift, any seed including 0 is fine).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {}

  /// Next raw 64-bit word.
  uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal();

  /// Normal with the given mean / stddev.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t uniform_int(int64_t n);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (int64_t i = static_cast<int64_t>(v.size()) - 1; i > 0; --i) {
      const int64_t j = uniform_int(i + 1);
      std::swap(v[static_cast<size_t>(i)], v[static_cast<size_t>(j)]);
    }
  }

  /// Derive an independent child generator (for per-worker streams).
  Rng split();

 private:
  uint64_t state_;
};

}  // namespace tbnet
