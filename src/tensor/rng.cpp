#include "tensor/rng.h"

#include <cmath>
#include <stdexcept>

namespace tbnet {

uint64_t Rng::next_u64() {
  // SplitMix64 (Steele, Lea, Flood 2014).
  state_ += 0x9E3779B97F4A7C15ull;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  // Box-Muller; draw u in (0,1] to avoid log(0).
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  const double v = uniform();
  return std::sqrt(-2.0 * std::log(u)) * std::cos(2.0 * M_PI * v);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

int64_t Rng::uniform_int(int64_t n) {
  if (n <= 0) throw std::invalid_argument("Rng::uniform_int: n must be > 0");
  // Rejection sampling to remove modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t x = 0;
  do {
    x = next_u64();
  } while (x >= limit);
  return static_cast<int64_t>(x % un);
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace tbnet
