#include "tensor/threadpool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace tbnet {

namespace {

/// Identifies the pool (and worker slot) whose worker_loop is running on
/// this thread; {nullptr, -1} on non-worker threads, including pool callers.
/// parallel_for consults it to route nested submissions onto the issuing
/// worker's own deque.
struct WorkerTag {
  ThreadPool* pool = nullptr;
  int slot = -1;
};
thread_local WorkerTag tls_worker;

}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  // The calling thread acts as one worker; spawn the rest, each owning one
  // deque. The deques must exist before any worker runs.
  const int spawned = threads - 1;
  deques_.reserve(static_cast<size_t>(spawned));
  for (int i = 0; i < spawned; ++i) {
    deques_.push_back(std::make_unique<TaskQueue>());
  }
  workers_.reserve(static_cast<size_t>(spawned));
  for (int i = 0; i < spawned; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::execute(const Task& task) {
  (*task.job->fn)(task.begin, task.end);
  // The final decrement is made under the job's mutex so the waiting frame
  // (which owns the Job) cannot return and die before this thread has
  // released every reference to it.
  MutexLock lock(task.job->mu);
  if (--task.job->pending == 0) task.job->cv.notify_all();
}

bool ThreadPool::try_acquire(Task& out, int slot) {
  auto pop_front = [&out](TaskQueue& tq) {
    MutexLock lock(tq.mu);
    if (tq.q.empty()) return false;
    out = tq.q.front();
    tq.q.pop_front();
    return true;
  };
  // Own deque first: a nested job's chunks live there, and the issuer must
  // prefer them (run-to-completion) over picking up foreign work.
  if (slot >= 0 && pop_front(*deques_[static_cast<size_t>(slot)])) return true;
  // Shared overflow next: external jobs, oldest first.
  if (pop_front(overflow_)) return true;
  // Steal: round-robin over siblings starting after our own slot, taking
  // the FRONT (oldest chunk) — LIFO steals would starve an older job
  // whenever a newer one keeps a deque non-empty.
  const int nq = static_cast<int>(deques_.size());
  for (int i = 0; i < nq; ++i) {
    const int victim = (slot + 1 + i) % nq;
    if (victim == slot) continue;
    if (pop_front(*deques_[static_cast<size_t>(victim)])) return true;
  }
  return false;
}

void ThreadPool::signal_work() {
  {
    MutexLock lock(mu_);
    ++epoch_;
  }
  cv_.notify_all();
}

void ThreadPool::worker_loop(int slot) {
  tls_worker = WorkerTag{this, slot};
  for (;;) {
    // Steady-state fast path: no global lock while work keeps arriving.
    Task task;
    if (try_acquire(task, slot)) {
      execute(task);
      continue;
    }
    // Sleep path. Epoch BEFORE the confirming re-scan: a push the re-scan
    // misses must bump the epoch after this read (the pusher inserts into
    // its queue before incrementing), so the wait predicate catches it.
    uint64_t seen;
    {
      MutexLock lock(mu_);
      seen = epoch_;
    }
    if (try_acquire(task, slot)) {
      execute(task);
      continue;
    }
    MutexLock lock(mu_);
    // Every queue was empty at the re-scan; with stop_ set nothing new may
    // be pushed, so the queues really are drained and the worker may exit.
    if (stop_) return;
    cv_.wait(lock, [&] {
      mu_.assert_held();  // wait re-acquires mu_ before evaluating
      return stop_ || epoch_ != seen;
    });
  }
}

int64_t ThreadPool::chunk_size(int64_t n, int max_width) const {
  int threads = num_threads();
  if (max_width > 0 && max_width < threads) threads = max_width;
  return std::max<int64_t>(1, (n + threads - 1) / threads);
}

void ThreadPool::parallel_for(int64_t n,
                              const std::function<void(int64_t, int64_t)>& fn,
                              int max_width) {
  // Empty ranges (n == 0, or negative from a degenerate shape) are complete
  // by definition: fn is never invoked and no pool state is touched.
  if (n <= 0) return;
  int threads = num_threads();
  if (max_width > 0 && max_width < threads) threads = max_width;
  const int64_t chunk = chunk_size(n, max_width);
  if (threads == 1 || n <= chunk) {
    fn(0, n);
    return;
  }
  // The job lives on this stack frame; the wait loop below keeps it alive
  // until every chunk has completed (execute()'s under-lock decrement makes
  // that safe even when a foreign helping thread runs the last chunk).
  Job job;
  job.fn = &fn;
  std::vector<Task> tasks;
  for (int64_t b = chunk; b < n; b += chunk) {
    tasks.push_back(Task{&job, b, std::min(n, b + chunk)});
  }
  {
    // The job is not yet visible to any other thread, but pending is
    // mu-guarded and the uncontended lock costs nothing here.
    MutexLock lock(job.mu);
    job.pending = static_cast<int>(tasks.size());
  }
  // Nested calls from a worker push onto that worker's own deque (idle
  // siblings steal from there); external callers push onto the shared
  // overflow queue. Either way chunks enter in index order and leave from
  // the front, and the boundaries are exactly chunk_size(n)'s — stealing
  // moves chunks between threads, never re-splits them.
  const int slot = tls_worker.pool == this ? tls_worker.slot : -1;
  TaskQueue& submit_q =
      slot >= 0 ? *deques_[static_cast<size_t>(slot)] : overflow_;
  {
    MutexLock lock(submit_q.mu);
    for (const Task& t : tasks) submit_q.q.push_back(t);
  }
  signal_work();
  fn(0, std::min(n, chunk));
  // Helping wait: while our chunks are outstanding, execute pending chunks
  // (ours first — try_acquire scans the submission queue before stealing)
  // instead of sleeping. Only when every remaining chunk of this job is
  // claimed by another thread — try_acquire found nothing anywhere — does
  // the caller park on the job's cv; the claimants are executing, so the
  // wakeup is guaranteed. This is what replaces both the PR-4 inline-serial
  // nested path and the old sleep-only external wait.
  for (;;) {
    {
      MutexLock lock(job.mu);
      if (job.pending == 0) return;
    }
    Task task;
    if (try_acquire(task, slot)) {
      execute(task);
      continue;
    }
    MutexLock lock(job.mu);
    job.cv.wait(lock, [&job] {
      job.mu.assert_held();  // wait re-acquires job.mu before evaluating
      return job.pending == 0;
    });
    return;
  }
}

namespace {
std::atomic<ThreadPool*> g_global_override{nullptr};
}  // namespace

ThreadPool& ThreadPool::global() {
  if (ThreadPool* override_pool =
          g_global_override.load(std::memory_order_acquire)) {
    return *override_pool;
  }
  // Magic-static init is thread-safe for concurrent first use; racing
  // callers block until one constructor finishes. The instance is leaked on
  // purpose (see header): joining workers from a static destructor while
  // other static destructors may still run kernels is the order fiasco this
  // avoids, and the OS reclaims the threads at process exit anyway.
  static ThreadPool* pool = [] {
    int threads = 0;
    if (const char* env = std::getenv("TBNET_THREADS")) {
      threads = std::atoi(env);
      if (threads < 1) threads = 0;  // malformed -> hardware_concurrency
    }
    return new ThreadPool(threads);
  }();
  return *pool;
}

void ThreadPool::set_global_for_testing(ThreadPool* pool) {
  g_global_override.store(pool, std::memory_order_release);
}

}  // namespace tbnet
