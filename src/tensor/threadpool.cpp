#include "tensor/threadpool.h"

#include <algorithm>
#include <cstdlib>

namespace tbnet {

namespace {

/// The pool whose worker_loop is running on this thread (nullptr on
/// non-worker threads, including pool callers). parallel_for consults it to
/// detect re-entrant calls: a worker blocking in done_cv_.wait while its
/// queued chunks sit behind other blocked workers is a deadlock, so nested
/// calls execute inline instead.
thread_local ThreadPool* tls_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  // The calling thread acts as one worker; spawn the rest.
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  tls_worker_pool = this;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      // FIFO: concurrent jobs (the InferenceServer worker plus a trainer on
      // the global pool) drain oldest-first; popping the back would starve
      // the older job's chunks for as long as newer jobs keep arriving.
      task = queue_.front();
      queue_.pop_front();
    }
    (*task.job->fn)(task.begin, task.end);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--task.job->pending == 0) done_cv_.notify_all();
    }
  }
}

int64_t ThreadPool::chunk_size(int64_t n) const {
  const int threads = num_threads();
  return std::max<int64_t>(1, (n + threads - 1) / threads);
}

void ThreadPool::parallel_for(int64_t n,
                              const std::function<void(int64_t, int64_t)>& fn) {
  // Empty ranges (n == 0, or negative from a degenerate shape) are complete
  // by definition: fn is never invoked and no pool state is touched.
  if (n <= 0) return;
  const int threads = num_threads();
  const int64_t chunk = chunk_size(n);
  if (threads == 1 || n <= chunk) {
    fn(0, n);
    return;
  }
  if (tls_worker_pool == this) {
    // Re-entrant call from one of this pool's own tasks. Queueing would let
    // every worker end up blocked in the wait below while the chunks that
    // could release them sit behind those very workers — so run the chunks
    // inline, serially, on this worker. The chunk boundaries stay exactly
    // chunk_size(n)'s so callers that key per-chunk scratch by begin /
    // chunk_size(n) (the producer-fed GEMM driver) observe the contract.
    for (int64_t b = 0; b < n; b += chunk) {
      fn(b, std::min(n, b + chunk));
    }
    return;
  }
  // Enqueue all chunks except the first, which the caller runs itself. The
  // job lives on this stack frame; the final wait below keeps it alive until
  // every worker chunk has completed.
  Job job{&fn, 0};
  std::vector<Task> tasks;
  for (int64_t b = chunk; b < n; b += chunk) {
    tasks.push_back(Task{&job, b, std::min(n, b + chunk)});
  }
  job.pending = static_cast<int>(tasks.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Task& t : tasks) queue_.push_back(t);
  }
  cv_.notify_all();
  fn(0, std::min(n, chunk));
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&job] { return job.pending == 0; });
}

ThreadPool& ThreadPool::global() {
  // Magic-static init is thread-safe for concurrent first use; racing
  // callers block until one constructor finishes. The instance is leaked on
  // purpose (see header): joining workers from a static destructor while
  // other static destructors may still run kernels is the order fiasco this
  // avoids, and the OS reclaims the threads at process exit anyway.
  static ThreadPool* pool = [] {
    int threads = 0;
    if (const char* env = std::getenv("TBNET_THREADS")) {
      threads = std::atoi(env);
      if (threads < 1) threads = 0;  // malformed -> hardware_concurrency
    }
    return new ThreadPool(threads);
  }();
  return *pool;
}

}  // namespace tbnet
