#include "tensor/threadpool.h"

#include <algorithm>

namespace tbnet {

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  // The calling thread acts as one worker; spawn the rest.
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = queue_.back();
      queue_.pop_back();
    }
    (*task.fn)(task.begin, task.end);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(int64_t n,
                              const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  const int threads = num_threads();
  const int64_t chunk = std::max<int64_t>(1, (n + threads - 1) / threads);
  if (threads == 1 || n <= chunk) {
    fn(0, n);
    return;
  }
  // Enqueue all chunks except the first, which the caller runs itself.
  std::vector<Task> tasks;
  for (int64_t b = chunk; b < n; b += chunk) {
    tasks.push_back(Task{&fn, b, std::min(n, b + chunk)});
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_ += static_cast<int>(tasks.size());
    for (const Task& t : tasks) queue_.push_back(t);
  }
  cv_.notify_all();
  fn(0, std::min(n, chunk));
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace tbnet
